(* A miniature YCSB-style key-value benchmark over any of the four trees.

     dune exec examples/kvstore.exe -- --tree euno --threads 8 \
       --theta 0.9 --get 50 --ops 2000

   Prints throughput and the abort breakdown for the chosen setup. *)

module Runner = Euno_harness.Runner
module Kv = Euno_harness.Kv
module Dist = Euno_workload.Dist
module Opgen = Euno_workload.Opgen

let usage = "kvstore [--tree euno|htm|masstree|htm-masstree|lock] [--threads N] [--theta F] [--get PCT] [--ops N] [--keys LOG2] [--seed N]"

let () =
  let tree = ref "euno" in
  let threads = ref 8 in
  let theta = ref 0.9 in
  let get_pct = ref 50 in
  let ops = ref 2000 in
  let keys_log2 = ref 16 in
  let seed = ref 42 in
  Arg.parse
    [
      ("--tree", Arg.Set_string tree, "tree variant (euno|htm|masstree|htm-masstree)");
      ("--threads", Arg.Set_int threads, "simulated threads (default 8)");
      ("--theta", Arg.Set_float theta, "Zipfian skew in [0,1) (default 0.9)");
      ("--get", Arg.Set_int get_pct, "percentage of gets (default 50)");
      ("--ops", Arg.Set_int ops, "operations per thread (default 2000)");
      ("--keys", Arg.Set_int keys_log2, "log2 of the key space (default 16)");
      ("--seed", Arg.Set_int seed, "simulation seed");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    usage;
  let kind =
    match !tree with
    | "euno" -> Kv.Euno Eunomia.Config.full
    | "htm" -> Kv.Htm_bptree
    | "masstree" -> Kv.Masstree
    | "htm-masstree" -> Kv.Htm_masstree
    | "lock" -> Kv.Lock_bptree
    | other -> failwith ("unknown tree: " ^ other)
  in
  let workload =
    {
      Runner.default_workload with
      Runner.dist = Dist.Zipfian !theta;
      mix = Opgen.read_write ~get_pct:!get_pct;
      key_space = 1 lsl !keys_log2;
    }
  in
  let setup =
    {
      Runner.default_setup with
      Runner.threads = !threads;
      ops_per_thread = !ops;
      seed = !seed;
      check_after = true (* validate tree invariants when the run ends *);
    }
  in
  let r = Runner.run kind workload setup in
  Printf.printf "%s: %d threads, zipf %.2f, %d%% get / %d%% put, %d keys\n"
    r.Runner.r_name !threads !theta !get_pct (100 - !get_pct)
    (1 lsl !keys_log2);
  Printf.printf "  throughput        %.2f Mops/s\n" r.Runner.r_mops;
  Printf.printf "  ops completed     %d\n" r.Runner.r_ops;
  Printf.printf "  aborts/op         %.3f\n" r.Runner.r_aborts_per_op;
  Printf.printf "    same record     %.3f\n" (Runner.class_true r);
  Printf.printf "    diff record     %.3f\n" (Runner.class_false_record r);
  Printf.printf "    metadata        %.3f\n" (Runner.class_false_meta r);
  Printf.printf "    lock subscr.    %.3f\n" (Runner.class_subscription r);
  Printf.printf "    other           %.3f\n" (Runner.class_other r);
  Printf.printf "  fallbacks/op      %.4f\n" r.Runner.r_fallbacks_per_op;
  Printf.printf "  wasted CPU        %.1f%%\n" r.Runner.r_wasted_pct;
  Printf.printf "  accesses/op       %.0f\n" r.Runner.r_instr_per_op;
  Printf.printf "  live memory       %.2f MB\n"
    (float_of_int r.Runner.r_mem_live_bytes /. 1048576.0);
  print_endline "  invariants        ok (validated after the run)"
