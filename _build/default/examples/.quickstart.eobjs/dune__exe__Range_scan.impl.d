examples/range_scan.ml: Euno_mem Euno_sim Eunomia List Printf String
