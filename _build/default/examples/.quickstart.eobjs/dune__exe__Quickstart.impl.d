examples/quickstart.ml: Euno_mem Euno_sim Eunomia List Printf String
