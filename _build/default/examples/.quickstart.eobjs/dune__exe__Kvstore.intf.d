examples/kvstore.mli:
