examples/htm_trace.ml: Euno_htm Euno_mem Euno_sim List Printf
