examples/range_scan.mli:
