examples/kvstore.ml: Arg Euno_harness Euno_workload Eunomia Printf
