examples/quickstart.mli:
