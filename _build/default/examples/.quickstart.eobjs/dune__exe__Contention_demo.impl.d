examples/contention_demo.ml: Euno_harness Euno_stats Euno_workload Eunomia List
