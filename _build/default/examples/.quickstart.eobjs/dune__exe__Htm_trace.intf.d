examples/htm_trace.mli:
