(* Contention demo: the paper's headline result in one screen.

   Runs the same highly skewed YCSB workload (Zipfian 0.9, 50% get /
   50% put, 16 simulated threads) against the conventional monolithic
   HTM-B+Tree and against the Euno-B+Tree, and prints throughput, aborts
   and wasted CPU side by side.

     dune exec examples/contention_demo.exe
*)

module Runner = Euno_harness.Runner
module Kv = Euno_harness.Kv
module Dist = Euno_workload.Dist
module Table = Euno_stats.Table

let () =
  let workload =
    {
      Runner.default_workload with
      Runner.dist = Dist.Zipfian 0.9;
      key_space = 1 lsl 16;
    }
  in
  let setup =
    { Runner.default_setup with Runner.threads = 16; ops_per_thread = 1500 }
  in
  print_endline
    "YCSB 50/50, Zipfian theta=0.9, 16 simulated threads, 64Ki keys";
  print_endline "(this is the contention level where Figure 1 collapses)\n";
  let t =
    Table.create ~title:"HTM-B+Tree vs Euno-B+Tree under high contention"
      ~headers:
        [ "tree"; "Mops/s"; "aborts/op"; "fallbacks/op"; "wasted CPU" ]
  in
  List.iter
    (fun kind ->
      let r = Runner.run kind workload setup in
      Table.add_row t
        [
          r.Runner.r_name;
          Table.cell_f r.Runner.r_mops;
          Table.cell_f r.Runner.r_aborts_per_op;
          Table.cell_f r.Runner.r_fallbacks_per_op;
          Table.cell_pct r.Runner.r_wasted_pct;
        ])
    [ Kv.Htm_bptree; Kv.Euno Eunomia.Config.full ];
  Table.print t;
  print_endline
    "\nThe monolithic tree burns its CPU in aborted transactions and\n\
     fallback-lock serialization; Eunomia's split regions, scattered\n\
     leaves and conflict control keep it at full speed."
