(* Ordered iteration: range queries on the Euno-B+Tree while concurrent
   writers keep inserting (Section 4.2.4 of the paper).

   The scattered leaves hold records unsorted across segments; a scan
   locks each leaf's advisory lock and sorts its segments through a
   transient reserved-keys buffer, so iterators still see globally ordered
   results even mid-insertion.

     dune exec examples/range_scan.exe
*)

module Memory = Euno_mem.Memory
module Linemap = Euno_mem.Linemap
module Alloc = Euno_mem.Alloc
module Machine = Euno_sim.Machine
module Cost = Euno_sim.Cost
module Api = Euno_sim.Api
module Euno = Eunomia.Euno_tree
module Config = Eunomia.Config

let () =
  let mem = Memory.create () in
  let map = Linemap.create () in
  let alloc = Alloc.create mem map in
  (* Preload even keys 0..998 single-threaded. *)
  let tree =
    Machine.run_single ~mem ~map ~alloc (fun () ->
        let tree = Euno.create ~cfg:Config.default ~map () in
        for k = 0 to 499 do
          Euno.put tree (2 * k) (2 * k)
        done;
        tree)
  in
  (* Two writer threads fill in odd keys while two reader threads run
     range queries; every scan must come back sorted and duplicate-free. *)
  let machine =
    Machine.create ~threads:4 ~seed:7 ~cost:Cost.default ~mem ~map ~alloc
  in
  let bad_scans = ref 0 and scans = ref 0 in
  Machine.run machine (fun tid ->
      if tid < 2 then
        for i = 0 to 249 do
          let k = (2 * ((tid * 250) + i)) + 1 in
          Euno.put tree k k;
          Api.op_done ()
        done
      else
        for i = 0 to 49 do
          let from = Api.rand 900 in
          let r = Euno.scan tree ~from ~count:20 in
          let keys = List.map fst r in
          incr scans;
          if keys <> List.sort_uniq compare keys then incr bad_scans;
          if i = 25 && tid = 2 then begin
            Printf.printf "a mid-run scan from %d: %s...\n" from
              (String.concat ", "
                 (List.filteri (fun i _ -> i < 8)
                    (List.map string_of_int keys)))
          end;
          Api.op_done ()
        done);
  Printf.printf "%d concurrent scans, %d unsorted or duplicated: %s\n" !scans
    !bad_scans
    (if !bad_scans = 0 then "all consistent" else "BROKEN");
  (* After the dust settles, the full ordered iteration sees every key. *)
  Machine.run_single ~mem ~map ~alloc (fun () ->
      let all = Euno.scan tree ~from:0 ~count:max_int in
      Printf.printf "final ordered iteration: %d records, first %d, last %d\n"
        (List.length all)
        (fst (List.hd all))
        (fst (List.nth all (List.length all - 1)));
      Euno.check_invariants tree;
      print_endline "invariants hold")
