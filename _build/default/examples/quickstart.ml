(* Quickstart: build an Euno-B+Tree on the simulated machine, run a few
   operations single-threaded, and read the machine counters.

     dune exec examples/quickstart.exe
*)

module Memory = Euno_mem.Memory
module Linemap = Euno_mem.Linemap
module Alloc = Euno_mem.Alloc
module Machine = Euno_sim.Machine
module Euno = Eunomia.Euno_tree
module Config = Eunomia.Config

let () =
  (* Every simulated world is three pieces: word memory, a line-kind map,
     and an allocator over them. *)
  let mem = Memory.create () in
  let map = Linemap.create () in
  let alloc = Alloc.create mem map in
  (* Tree code performs effects, so it must run on a machine.  run_single
     is the one-thread convenience wrapper. *)
  Machine.run_single ~mem ~map ~alloc (fun () ->
      let tree = Euno.create ~cfg:Config.default ~map () in
      (* Store a few keys. *)
      for k = 1 to 100 do
        Euno.put tree k (k * k)
      done;
      (* Point lookups. *)
      Printf.printf "get 7      = %s\n"
        (match Euno.get tree 7 with
        | Some v -> string_of_int v
        | None -> "None");
      Printf.printf "get 12345  = %s\n"
        (match Euno.get tree 12345 with
        | Some v -> string_of_int v
        | None -> "None");
      (* Updates overwrite in place. *)
      Euno.put tree 7 999;
      Printf.printf "updated 7  = %s\n"
        (match Euno.get tree 7 with
        | Some v -> string_of_int v
        | None -> "None");
      (* Ordered range query. *)
      let range = Euno.scan tree ~from:40 ~count:5 in
      Printf.printf "scan 40..  = %s\n"
        (String.concat ", "
           (List.map (fun (k, v) -> Printf.sprintf "%d->%d" k v) range));
      (* Deletion. *)
      ignore (Euno.delete tree 50);
      Printf.printf "deleted 50 = %b (gone: %b)\n"
        true
        (Euno.get tree 50 = None);
      Printf.printf "tree size  = %d\n" (Euno.size tree);
      (* The structural validator is cheap insurance in examples. *)
      Euno.check_invariants tree;
      print_endline "invariants hold");
  Printf.printf "simulated memory in use: %d bytes\n" (Alloc.live_bytes alloc)
