(* Tests of the conventional B+Tree and its monolithic-HTM wrapper:
   model-based correctness, structural invariants, and concurrent
   atomicity under the simulated machine. *)

open Util
module Api = Euno_sim.Api
module Cost = Euno_sim.Cost
module Machine = Euno_sim.Machine
module Bptree = Euno_bptree.Bptree
module Htm_bptree = Euno_bptree.Htm_bptree
module IntMap = Map.Make (Int)

let with_tree ?(fanout = 8) w f =
  run_one w (fun () ->
      let t = Bptree.create ~fanout ~map:w.map () in
      f t)

let test_empty_tree () =
  let w = fresh_world () in
  with_tree w (fun t ->
      check_bool "get on empty" true (Bptree.get t 5 = None);
      check_int "size 0" 0 (Bptree.size t);
      Bptree.check_invariants t)

let test_insert_get_sequential () =
  let w = fresh_world () in
  with_tree w (fun t ->
      for k = 0 to 499 do
        Bptree.put t k (k * 10)
      done;
      for k = 0 to 499 do
        match Bptree.get t k with
        | Some v -> check_int "value" (k * 10) v
        | None -> Alcotest.failf "missing key %d" k
      done;
      check_bool "absent key" true (Bptree.get t 1000 = None);
      Bptree.check_invariants t)

let test_insert_shuffled () =
  let w = fresh_world () in
  let keys = Array.init 1000 (fun i -> i) in
  let rng = Euno_sim.Rng.create 33 in
  for i = 999 downto 1 do
    let j = Euno_sim.Rng.int rng (i + 1) in
    let tmp = keys.(i) in
    keys.(i) <- keys.(j);
    keys.(j) <- tmp
  done;
  with_tree w (fun t ->
      Array.iter (fun k -> Bptree.put t k (k + 7)) keys;
      Bptree.check_invariants t;
      check_int "all present" 1000 (Bptree.size t);
      let l = Bptree.to_list t in
      check_bool "sorted output" true
        (List.map fst l = List.init 1000 (fun i -> i)))

let test_update_overwrites () =
  let w = fresh_world () in
  with_tree w (fun t ->
      Bptree.put t 42 1;
      Bptree.put t 42 2;
      check_bool "updated" true (Bptree.get t 42 = Some 2);
      check_int "no duplicate" 1 (Bptree.size t))

let test_depth_grows () =
  let w = fresh_world () in
  with_tree ~fanout:4 w (fun t ->
      check_int "initial depth" 1 (Bptree.depth t);
      for k = 0 to 199 do
        Bptree.put t k k
      done;
      check_bool "depth grew" true (Bptree.depth t >= 4);
      Bptree.check_invariants t)

let test_delete () =
  let w = fresh_world () in
  with_tree w (fun t ->
      for k = 0 to 99 do
        Bptree.put t k k
      done;
      for k = 0 to 99 do
        if k mod 2 = 0 then check_bool "deleted" true (Bptree.delete t k)
      done;
      check_bool "delete absent" false (Bptree.delete t 0);
      check_int "half remain" 50 (Bptree.size t);
      for k = 0 to 99 do
        let expect = if k mod 2 = 0 then None else Some k in
        check_bool "presence" true (Bptree.get t k = expect)
      done;
      Bptree.check_invariants t)

let test_scan () =
  let w = fresh_world () in
  with_tree w (fun t ->
      for k = 0 to 299 do
        Bptree.put t (k * 2) k (* even keys only *)
      done;
      let r = Bptree.scan t ~from:100 ~count:10 in
      check_int "scan length" 10 (List.length r);
      check_bool "scan starts at 100" true (fst (List.hd r) = 100);
      let keys = List.map fst r in
      check_bool "scan sorted ascending" true
        (keys = List.sort compare keys);
      (* from between keys *)
      let r2 = Bptree.scan t ~from:101 ~count:3 in
      check_bool "starts above" true (fst (List.hd r2) = 102);
      (* scan past the end *)
      let r3 = Bptree.scan t ~from:598 ~count:10 in
      check_int "tail scan" 1 (List.length r3))

(* Random op sequences vs a Map model. *)
let prop_model_based =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"bptree matches Map model"
       QCheck.(
         pair (int_bound 1_000_000)
           (list_of_size Gen.(50 -- 400) (pair (int_bound 200) (int_bound 3))))
       (fun (salt, ops) ->
         let w = fresh_world () in
         with_tree ~fanout:8 w (fun t ->
             let model = ref IntMap.empty in
             let ok = ref true in
             List.iteri
               (fun i (key, kind) ->
                 let key = (key + salt) mod 200 in
                 match kind with
                 | 0 | 3 ->
                     Bptree.put t key i;
                     model := IntMap.add key i !model
                 | 1 ->
                     let got = Bptree.get t key in
                     if got <> IntMap.find_opt key !model then ok := false
                 | _ ->
                     let deleted = Bptree.delete t key in
                     if deleted <> IntMap.mem key !model then ok := false;
                     model := IntMap.remove key !model)
               ops;
             Bptree.check_invariants t;
             let final = Bptree.to_list t in
             !ok && final = IntMap.bindings !model)))

(* Invariants hold after every single operation on a tiny-fanout tree
   (stresses splits and root growth). *)
let prop_invariants_every_step =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:25 ~name:"invariants after every op"
       QCheck.(list_of_size Gen.(10 -- 120) (int_bound 60))
       (fun keys ->
         let w = fresh_world () in
         with_tree ~fanout:4 w (fun t ->
             List.iter
               (fun k ->
                 Bptree.put t k k;
                 Bptree.check_invariants t)
               keys;
             true)))

(* ---------- concurrent (HTM-wrapped) ---------- *)

let preload w ~fanout ~n =
  run_one w (fun () ->
      let t = Bptree.create ~fanout ~map:w.map () in
      for k = 0 to n - 1 do
        Bptree.put t k k
      done;
      t)

let test_concurrent_disjoint_inserts () =
  let w = fresh_world () in
  let tree = run_one w (fun () -> Bptree.create ~fanout:8 ~map:w.map ()) in
  let ht = run_one w (fun () -> Htm_bptree.of_tree tree) in
  let threads = 8 and per = 100 in
  let (_ : Machine.t) =
    run_threads ~threads ~cost:Cost.default ~seed:17 w (fun tid ->
        for i = 0 to per - 1 do
          let k = (tid * 10_000) + i in
          Htm_bptree.put ht k (k * 2)
        done)
  in
  run_one w (fun () ->
      Bptree.check_invariants tree;
      check_int "all inserted" (threads * per) (Bptree.size tree);
      for tid = 0 to threads - 1 do
        for i = 0 to per - 1 do
          let k = (tid * 10_000) + i in
          if Bptree.get tree k <> Some (k * 2) then
            Alcotest.failf "missing %d" k
        done
      done)

let test_concurrent_hot_updates_no_lost_value () =
  let w = fresh_world () in
  let tree = preload w ~fanout:8 ~n:64 in
  let ht = run_one w (fun () -> Htm_bptree.of_tree tree) in
  let threads = 6 and per = 60 in
  let m =
    run_threads ~threads ~cost:Cost.default ~seed:19 w (fun tid ->
        for i = 1 to per do
          (* Everyone hammers the same few keys: guaranteed conflicts. *)
          let k = i mod 4 in
          Htm_bptree.put ht k ((tid * 1000) + i)
        done)
  in
  let s = Machine.aggregate m in
  check_bool "contention produced aborts" true (Machine.total_aborts s > 0);
  run_one w (fun () ->
      Bptree.check_invariants tree;
      for k = 0 to 3 do
        match Bptree.get tree k with
        | Some v ->
            (* Final value must be one some thread actually wrote. *)
            let tid = v / 1000 and i = v mod 1000 in
            if not (tid >= 0 && tid < threads && i >= 1 && i <= per) then
              Alcotest.failf "impossible value %d at key %d" v k
        | None -> Alcotest.failf "key %d vanished" k
      done)

let test_concurrent_mixed_ops_invariants () =
  let w = fresh_world () in
  let tree = preload w ~fanout:8 ~n:200 in
  let ht = run_one w (fun () -> Htm_bptree.of_tree tree) in
  let (_ : Machine.t) =
    run_threads ~threads:6 ~cost:Cost.default ~seed:23 w (fun tid ->
        for i = 1 to 80 do
          let k = Api.rand 400 in
          match (tid + i) mod 4 with
          | 0 -> ignore (Htm_bptree.get ht k)
          | 1 | 2 -> Htm_bptree.put ht k ((tid * 10_000) + i)
          | _ -> ignore (Htm_bptree.delete ht k)
        done)
  in
  run_one w (fun () -> Bptree.check_invariants tree)

let test_concurrent_scan_consistent () =
  let w = fresh_world () in
  let tree = preload w ~fanout:8 ~n:100 in
  let ht = run_one w (fun () -> Htm_bptree.of_tree tree) in
  let bad = ref 0 in
  let (_ : Machine.t) =
    run_threads ~threads:4 ~cost:Cost.default ~seed:29 w (fun tid ->
        if tid < 2 then
          for i = 0 to 40 do
            Htm_bptree.put ht (100 + (tid * 1000) + i) i
          done
        else
          for _ = 0 to 20 do
            let r = Htm_bptree.scan ht ~from:0 ~count:50 in
            let keys = List.map fst r in
            if keys <> List.sort compare keys then incr bad
          done)
  in
  check_int "scans always sorted" 0 !bad

let test_bulk_load_matches_incremental () =
  let w = fresh_world () in
  let records = List.init 1000 (fun i -> (i * 3, i)) in
  let t =
    run_one w (fun () -> Bptree.bulk_load ~fanout:16 ~map:w.map records)
  in
  run_one w (fun () ->
      Bptree.check_invariants t;
      check_bool "contents" true (Bptree.to_list t = records);
      check_bool "lookup hit" true (Bptree.get t 30 = Some 10);
      check_bool "lookup miss" true (Bptree.get t 31 = None);
      (* the tree remains fully usable *)
      Bptree.put t 31 999;
      check_bool "insert after bulk load" true (Bptree.get t 31 = Some 999);
      check_bool "delete after bulk load" true (Bptree.delete t 30);
      Bptree.check_invariants t)

let test_tree_stats () =
  let w = fresh_world () in
  with_tree ~fanout:8 w (fun t ->
      for k = 0 to 199 do
        Bptree.put t k k
      done;
      let st = Bptree.stats t in
      check_int "records" 200 st.Bptree.st_records;
      check_int "depth agrees" (Bptree.depth t) st.Bptree.st_depth;
      check_bool "fill in (0,1]" true
        (st.Bptree.st_avg_leaf_fill > 0.0 && st.Bptree.st_avg_leaf_fill <= 1.0);
      check_bool "leaves x fill ~ records" true
        (st.Bptree.st_leaves * 8 >= st.Bptree.st_records))

let test_bulk_load_empty_and_tiny () =
  let w = fresh_world () in
  run_one w (fun () ->
      let t0 = Bptree.bulk_load ~fanout:8 ~map:w.map [] in
      check_int "empty" 0 (Bptree.size t0);
      Bptree.check_invariants t0;
      let t1 = Bptree.bulk_load ~fanout:8 ~map:w.map [ (5, 50) ] in
      check_bool "single" true (Bptree.get t1 5 = Some 50);
      Bptree.check_invariants t1)

let prop_bulk_load_any_size =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:40 ~name:"bulk load valid for any size"
       QCheck.(int_range 0 600)
       (fun n ->
         let w = fresh_world () in
         let records = List.init n (fun i -> (i, i)) in
         run_one w (fun () ->
             let t = Bptree.bulk_load ~fanout:8 ~map:w.map records in
             Bptree.check_invariants t;
             Bptree.to_list t = records)))

let suite =
  [
    Alcotest.test_case "empty tree" `Quick test_empty_tree;
    Alcotest.test_case "bulk load matches incremental" `Quick
      test_bulk_load_matches_incremental;
    Alcotest.test_case "bulk load empty/tiny" `Quick
      test_bulk_load_empty_and_tiny;
    Alcotest.test_case "tree stats" `Quick test_tree_stats;
    prop_bulk_load_any_size;
    Alcotest.test_case "insert+get sequential" `Quick
      test_insert_get_sequential;
    Alcotest.test_case "insert shuffled" `Quick test_insert_shuffled;
    Alcotest.test_case "update overwrites" `Quick test_update_overwrites;
    Alcotest.test_case "depth grows" `Quick test_depth_grows;
    Alcotest.test_case "delete" `Quick test_delete;
    Alcotest.test_case "scan" `Quick test_scan;
    prop_model_based;
    prop_invariants_every_step;
    Alcotest.test_case "concurrent disjoint inserts" `Quick
      test_concurrent_disjoint_inserts;
    Alcotest.test_case "concurrent hot updates" `Quick
      test_concurrent_hot_updates_no_lost_value;
    Alcotest.test_case "concurrent mixed ops keep invariants" `Quick
      test_concurrent_mixed_ops_invariants;
    Alcotest.test_case "concurrent scans see sorted data" `Quick
      test_concurrent_scan_consistent;
  ]
