(* Unit tests of the scattered-leaf machinery (Eunomia.Leaf): segment
   primitives, locate, reorganization round-trips, and the round-robin
   scatter property that underpins the false-sharing reduction. *)

open Util
module Api = Euno_sim.Api
module Memory = Euno_mem.Memory
module Config = Eunomia.Config
module Leaf = Eunomia.Leaf
module Ccm = Euno_ccm.Ccm

let with_leaf ?(cfg = Config.part_leaf) w f =
  run_one w (fun () ->
      let s = Leaf.shape cfg ~map:w.map in
      let leaf = Leaf.alloc s in
      f s leaf)

let test_fresh_leaf_empty () =
  let w = fresh_world () in
  with_leaf w (fun s leaf ->
      check_int "total count" 0 (Leaf.total_count s leaf);
      check_bool "locate misses" true (Leaf.locate s leaf 42 = None);
      check_bool "gather empty" true (Leaf.gather s leaf = []))

let test_insert_and_locate () =
  let w = fresh_world () in
  with_leaf w (fun s leaf ->
      Leaf.insert_into_seg s leaf 0 10 100;
      Leaf.insert_into_seg s leaf 0 5 50;
      Leaf.insert_into_seg s leaf 2 7 70;
      check_int "count" 3 (Leaf.total_count s leaf);
      (match Leaf.locate s leaf 5 with
      | Some pos -> check_int "value of 5" 50 (Api.read (Leaf.value_addr_of s leaf pos))
      | None -> Alcotest.fail "missing 5");
      (match Leaf.locate s leaf 7 with
      | Some pos -> check_int "value of 7" 70 (Api.read (Leaf.value_addr_of s leaf pos))
      | None -> Alcotest.fail "missing 7");
      check_bool "absent key" true (Leaf.locate s leaf 6 = None);
      (* keys sorted within segment 0 after out-of-order insert *)
      check_int "seg0 first key" 5 (Api.read (Leaf.seg_key_addr s leaf 0 0));
      check_int "seg0 second key" 10 (Api.read (Leaf.seg_key_addr s leaf 0 1)))

let test_remove_at () =
  let w = fresh_world () in
  with_leaf w (fun s leaf ->
      Leaf.insert_into_seg s leaf 1 1 10;
      Leaf.insert_into_seg s leaf 1 2 20;
      Leaf.insert_into_seg s leaf 1 3 30;
      (match Leaf.locate s leaf 2 with
      | Some pos -> Leaf.remove_at s leaf pos
      | None -> Alcotest.fail "missing 2");
      check_int "count after remove" 2 (Leaf.total_count s leaf);
      check_bool "2 gone" true (Leaf.locate s leaf 2 = None);
      check_bool "1 stays" true (Leaf.locate s leaf 1 <> None);
      check_bool "3 stays" true (Leaf.locate s leaf 3 <> None))

let test_gather_sorted () =
  let w = fresh_world () in
  with_leaf w (fun s leaf ->
      List.iteri
        (fun i k -> Leaf.insert_into_seg s leaf (i mod 5) k (k * 2))
        [ 50; 10; 40; 20; 30 ];
      let g = Leaf.gather s leaf in
      check_bool "gather sorted" true
        (List.map fst g = [ 10; 20; 30; 40; 50 ]);
      check_bool "values follow" true (List.map snd g = [ 20; 40; 60; 80; 100 ]))

let check_segments_sorted s leaf =
  for i = 0 to 4 do
    let c = Leaf.seg_count s leaf i in
    for j = 1 to c - 1 do
      if
        Api.read (Leaf.seg_key_addr s leaf i j)
        <= Api.read (Leaf.seg_key_addr s leaf i (j - 1))
      then Alcotest.failf "segment %d unsorted" i
    done
  done

(* The scatter property: after redistribution, keys adjacent in sort
   order land in different segments (hence different cache lines). *)
let test_round_robin_scatter () =
  let w = fresh_world () in
  with_leaf w (fun s leaf ->
      for k = 1 to 10 do
        Leaf.insert_into_seg s leaf (k mod 5) (k * 100) k
      done;
      Leaf.compact s leaf;
      check_int "nothing lost" 10 (Leaf.total_count s leaf);
      let seg_of k =
        match Leaf.locate s leaf k with
        | Some (i, _) -> i
        | None -> Alcotest.failf "lost key %d" k
      in
      let segs = List.init 10 (fun i -> seg_of ((i + 1) * 100)) in
      List.iteri
        (fun i seg ->
          if i > 0 && seg = List.nth segs (i - 1) then
            Alcotest.failf "adjacent keys %d,%d share segment %d" i (i + 1) seg)
        segs;
      (* segments stay internally sorted *)
      check_segments_sorted s leaf)

let test_compact_makes_room () =
  let w = fresh_world () in
  with_leaf w (fun s leaf ->
      (* Fill segment 0 completely, leave others empty: the draw can fail
         even though the leaf has room — compaction must fix that. *)
      Leaf.insert_into_seg s leaf 0 1 1;
      Leaf.insert_into_seg s leaf 0 2 2;
      Leaf.insert_into_seg s leaf 0 3 3;
      check_bool "seg0 full" true (Leaf.seg_full s leaf 0);
      Leaf.compact s leaf;
      check_bool "seg0 no longer full" false (Leaf.seg_full s leaf 0);
      check_int "all kept" 3 (Leaf.total_count s leaf);
      List.iter
        (fun k -> check_bool "still present" true (Leaf.locate s leaf k <> None))
        [ 1; 2; 3 ])

let test_stash_reserved_roundtrip_and_accounting () =
  let w = fresh_world () in
  with_leaf w (fun s leaf ->
      ignore leaf;
      ignore s;
      let live0 = Euno_mem.Alloc.live_words w.alloc in
      let stash = Leaf.stash_reserved [ (1, 10); (2, 20); (3, 30) ] in
      let buf, _ = stash in
      check_int "stash key" 2 (Api.read (buf + 2));
      check_int "stash value" 20 (Api.read (buf + 3));
      check_bool "reserved memory live" true
        (Euno_mem.Alloc.live_words w.alloc > live0);
      Leaf.free_reserved stash;
      check_int "reserved memory freed" live0 (Euno_mem.Alloc.live_words w.alloc))

let test_marks_word_and_collision () =
  let w = fresh_world () in
  with_leaf w (fun s leaf ->
      let c = Leaf.ccm s leaf in
      Leaf.insert_into_seg s leaf 0 11 1;
      Leaf.insert_into_seg s leaf 1 22 2;
      let word = Leaf.marks_word_for c [ 11; 22 ] in
      check_bool "covers key 11" true (word land (1 lsl Ccm.hash c 11) <> 0);
      check_bool "covers key 22" true (word land (1 lsl Ccm.hash c 22) <> 0);
      (* collision query: another key mapping to 11's slot? *)
      let collides =
        Leaf.slot_collision s leaf c ~key:11 ~slot:(Ccm.hash c 11)
      in
      check_bool "collision matches ground truth" true
        (collides = (Ccm.hash c 22 = Ccm.hash c 11)))

let prop_segment_model =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"leaf segments match a set model"
       QCheck.(list_of_size Gen.(1 -- 14) (int_bound 1000))
       (fun keys ->
         let keys = List.sort_uniq compare keys in
         let w = fresh_world () in
         with_leaf w (fun s leaf ->
             List.iteri
               (fun i k -> Leaf.insert_into_seg s leaf (i mod 5) k (k + 1))
               keys;
             Leaf.compact s leaf;
             List.for_all
               (fun k ->
                 match Leaf.locate s leaf k with
                 | Some pos -> Api.read (Leaf.value_addr_of s leaf pos) = k + 1
                 | None -> false)
               keys
             && Leaf.gather s leaf = List.map (fun k -> (k, k + 1)) keys)))

let suite =
  [
    Alcotest.test_case "fresh leaf empty" `Quick test_fresh_leaf_empty;
    Alcotest.test_case "insert and locate" `Quick test_insert_and_locate;
    Alcotest.test_case "remove at" `Quick test_remove_at;
    Alcotest.test_case "gather sorted" `Quick test_gather_sorted;
    Alcotest.test_case "round-robin scatter" `Quick test_round_robin_scatter;
    Alcotest.test_case "compaction makes room" `Quick test_compact_makes_room;
    Alcotest.test_case "reserved stash roundtrip" `Quick
      test_stash_reserved_roundtrip_and_accounting;
    Alcotest.test_case "marks word and collision" `Quick
      test_marks_word_and_collision;
    prop_segment_model;
  ]
