(* Tests of the benchmark harness: the uniform Kv interface behaves
   identically across all four trees, and the Runner produces sane,
   deterministic results. *)

open Util
module Runner = Euno_harness.Runner
module Kv = Euno_harness.Kv
module Dist = Euno_workload.Dist
module Opgen = Euno_workload.Opgen
module Config = Eunomia.Config
module IntMap = Map.Make (Int)

let small_workload ?(theta = 0.6) () =
  {
    Runner.default_workload with
    Runner.dist = Dist.Zipfian theta;
    key_space = 1 lsl 10;
  }

let small_setup ?(threads = 4) () =
  {
    Runner.default_setup with
    Runner.threads;
    ops_per_thread = 150;
    check_after = true;
  }

(* Same random op sequence applied through the Kv facade of every tree
   kind must produce exactly the same observable results. *)
let test_kv_semantic_parity () =
  let trace =
    let rng = Euno_sim.Rng.create 77 in
    List.init 400 (fun i ->
        let k = Euno_sim.Rng.int rng 120 in
        match Euno_sim.Rng.int rng 4 with
        | 0 -> `Put (k, i)
        | 1 -> `Get k
        | 2 -> `Del k
        | _ -> `Scan k)
  in
  let observe kind =
    let w = fresh_world () in
    run_one w (fun () ->
        let kv = Kv.build kind ~fanout:8 ~map:w.map in
        List.map
          (function
            | `Put (k, v) ->
                kv.Kv.put k v;
                `Unit
            | `Get k -> `Got (kv.Kv.get k)
            | `Del k -> `Deleted (kv.Kv.delete k)
            | `Scan k -> `Scanned (kv.Kv.scan ~from:k ~count:5))
          trace)
  in
  let reference = observe Kv.Htm_bptree in
  List.iter
    (fun kind ->
      if observe kind <> reference then
        Alcotest.failf "%s disagrees with HTM-B+Tree" (Kv.kind_name kind))
    [ Kv.Euno Config.full; Kv.Masstree; Kv.Htm_masstree; Kv.Lock_bptree ]

let test_runner_produces_sane_result () =
  let r = Runner.run Kv.Htm_bptree (small_workload ()) (small_setup ()) in
  check_int "all ops accounted" (4 * 150) r.Runner.r_ops;
  check_bool "positive throughput" true (r.Runner.r_mops > 0.0);
  check_bool "cycles advanced" true (r.Runner.r_cycles > 0);
  check_bool "commits at least upper+lower" true (r.Runner.r_commits_per_op >= 0.9);
  check_bool "instr/op sensible" true
    (r.Runner.r_instr_per_op > 10.0 && r.Runner.r_instr_per_op < 10_000.0);
  check_bool "memory recorded" true (r.Runner.r_mem_live_bytes > 0)

let test_runner_deterministic () =
  let go () =
    let r = Runner.run (Kv.Euno Config.full) (small_workload ()) (small_setup ()) in
    (r.Runner.r_mops, r.Runner.r_cycles, r.Runner.r_aborts_per_op)
  in
  check_bool "identical results across runs" true (go () = go ())

let test_runner_seed_changes_schedule () =
  let go seed =
    Runner.run Kv.Htm_bptree (small_workload ~theta:0.9 ())
      { (small_setup ~threads:6 ()) with Runner.seed }
  in
  let a = go 1 and b = go 2 in
  check_bool "different seeds give different cycle counts" true
    (a.Runner.r_cycles <> b.Runner.r_cycles)

let test_abort_classes_sum () =
  let r =
    Runner.run Kv.Htm_bptree (small_workload ~theta:0.95 ())
      (small_setup ~threads:8 ())
  in
  let parts =
    Runner.class_true r +. Runner.class_false_record r
    +. Runner.class_false_meta r +. Runner.class_subscription r
    +. Runner.class_other r
  in
  check_bool "classes sum to total" true
    (abs_float (parts -. r.Runner.r_aborts_per_op) < 1e-9)

let test_more_threads_do_not_lose_ops () =
  List.iter
    (fun threads ->
      let r =
        Runner.run (Kv.Euno Config.full) (small_workload ())
          (small_setup ~threads ())
      in
      check_int
        (Printf.sprintf "%d threads all ops" threads)
        (threads * 150) r.Runner.r_ops)
    [ 1; 2; 8 ]

let test_scan_and_delete_mix_supported () =
  let workload =
    {
      (small_workload ()) with
      Runner.mix = { Opgen.get = 30; put = 40; scan = 10; delete = 10; rmw = 10 };
    }
  in
  List.iter
    (fun kind ->
      let r = Runner.run kind workload (small_setup ()) in
      check_int
        (Kv.kind_name kind ^ " completes mixed ops")
        (4 * 150) r.Runner.r_ops)
    Kv.all_kinds

let test_memory_accounting_reserved_transient () =
  (* Eunomia's reserved buffers are transient: live reserved bytes after a
     run must be zero even though the peak is positive. *)
  let w =
    { (small_workload ()) with Runner.mix = Opgen.read_write ~get_pct:0 }
  in
  let r = Runner.run (Kv.Euno Config.full) w (small_setup ()) in
  check_bool "reserved peak observed" true (r.Runner.r_mem_reserved_peak_bytes > 0);
  check_bool "ccm lines accounted" true (r.Runner.r_mem_lock_bytes > 0)

let test_run_many_aggregates () =
  let a =
    Runner.run_many ~seeds:3 Kv.Htm_bptree (small_workload ()) (small_setup ())
  in
  check_int "three runs" 3 (List.length a.Runner.a_runs);
  check_bool "mean within bounds" true
    (a.Runner.a_mean_mops >= a.Runner.a_min_mops
    && a.Runner.a_mean_mops <= a.Runner.a_max_mops);
  check_bool "stddev non-negative" true (a.Runner.a_stddev_mops >= 0.0)

let test_lock_tree_correct_under_concurrency () =
  let r =
    Runner.run Kv.Lock_bptree (small_workload ~theta:0.9 ())
      (small_setup ~threads:8 ())
  in
  check_int "all ops" (8 * 150) r.Runner.r_ops;
  (* a pure lock tree never enters a transaction *)
  check_bool "no commits" true (r.Runner.r_commits_per_op = 0.0);
  check_bool "no aborts" true (r.Runner.r_aborts_per_op = 0.0)

let test_key_space_must_be_power_of_two () =
  let w = { (small_workload ()) with Runner.key_space = 1000 } in
  match Runner.run Kv.Htm_bptree w (small_setup ()) with
  | (_ : Runner.result) -> Alcotest.fail "accepted non-power-of-two"
  | exception Invalid_argument _ -> ()

(* Marathon: a heavier contended run per tree with full invariant
   validation at the end.  Catches rare interleavings the quick tests
   miss; tagged Slow. *)
let test_stress_marathon () =
  let workload =
    {
      Runner.default_workload with
      Runner.dist = Dist.Zipfian 0.95;
      key_space = 1 lsl 12;
      mix = { Opgen.get = 40; put = 40; scan = 5; delete = 10; rmw = 5 };
    }
  in
  List.iter
    (fun kind ->
      List.iter
        (fun seed ->
          let r =
            Runner.run kind workload
              {
                Runner.default_setup with
                Runner.threads = 12;
                ops_per_thread = 400;
                seed;
                check_after = true;
              }
          in
          check_int
            (Printf.sprintf "%s seed %d all ops" (Kv.kind_name kind) seed)
            (12 * 400) r.Runner.r_ops)
        [ 42; 1234 ])
    (Kv.all_kinds @ [ Kv.Lock_bptree ])

let suite =
  [
    Alcotest.test_case "stress marathon (all trees)" `Slow
      test_stress_marathon;
    Alcotest.test_case "kv semantic parity across trees" `Slow
      test_kv_semantic_parity;
    Alcotest.test_case "runner sane result" `Quick
      test_runner_produces_sane_result;
    Alcotest.test_case "runner deterministic" `Quick test_runner_deterministic;
    Alcotest.test_case "seed changes schedule" `Quick
      test_runner_seed_changes_schedule;
    Alcotest.test_case "abort classes sum to total" `Quick
      test_abort_classes_sum;
    Alcotest.test_case "no ops lost across thread counts" `Quick
      test_more_threads_do_not_lose_ops;
    Alcotest.test_case "scan+delete mix supported" `Slow
      test_scan_and_delete_mix_supported;
    Alcotest.test_case "reserved memory is transient" `Quick
      test_memory_accounting_reserved_transient;
    Alcotest.test_case "run_many aggregates" `Quick test_run_many_aggregates;
    Alcotest.test_case "lock tree under concurrency" `Quick
      test_lock_tree_correct_under_concurrency;
    Alcotest.test_case "key space validation" `Quick
      test_key_space_must_be_power_of_two;
  ]
