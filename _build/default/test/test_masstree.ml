(* Tests of the Masstree-like OLC baseline and HTM-Masstree: model-based
   correctness, invariants, and concurrent atomicity of both sync modes. *)

open Util
module Api = Euno_sim.Api
module Cost = Euno_sim.Cost
module Machine = Euno_sim.Machine
module Mt = Euno_masstree.Masstree
module Hmt = Euno_masstree.Htm_masstree
module IntMap = Map.Make (Int)

let with_tree ?(fanout = 8) w f =
  run_one w (fun () ->
      let t = Mt.create ~fanout ~map:w.map () in
      f t)

let test_insert_get () =
  let w = fresh_world () in
  with_tree w (fun t ->
      for k = 0 to 499 do
        Mt.put t k (k * 5)
      done;
      for k = 0 to 499 do
        if Mt.get t k <> Some (k * 5) then Alcotest.failf "missing %d" k
      done;
      check_bool "absent" true (Mt.get t 9999 = None);
      Mt.check_invariants t;
      check_int "size" 500 (Mt.size t))

let test_update_delete () =
  let w = fresh_world () in
  with_tree w (fun t ->
      for k = 0 to 99 do
        Mt.put t k k
      done;
      Mt.put t 50 1234;
      check_bool "updated" true (Mt.get t 50 = Some 1234);
      check_bool "delete" true (Mt.delete t 50);
      check_bool "gone" true (Mt.get t 50 = None);
      check_bool "re-delete" false (Mt.delete t 50);
      Mt.check_invariants t)

let test_scan () =
  let w = fresh_world () in
  with_tree w (fun t ->
      for k = 0 to 299 do
        Mt.put t (k * 3) k
      done;
      let r = Mt.scan t ~from:30 ~count:10 in
      check_int "length" 10 (List.length r);
      check_bool "starts at 30" true (fst (List.hd r) = 30);
      check_bool "sorted" true
        (List.map fst r = List.sort compare (List.map fst r)))

let prop_model_based =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:50 ~name:"masstree matches Map model"
       QCheck.(
         pair (int_bound 1_000_000)
           (list_of_size Gen.(50 -- 300) (pair (int_bound 150) (int_bound 3))))
       (fun (salt, ops) ->
         let w = fresh_world () in
         with_tree w (fun t ->
             let model = ref IntMap.empty in
             let ok = ref true in
             List.iteri
               (fun i (key, kind) ->
                 let key = (key + salt) mod 150 in
                 match kind with
                 | 0 | 3 ->
                     Mt.put t key i;
                     model := IntMap.add key i !model
                 | 1 ->
                     if Mt.get t key <> IntMap.find_opt key !model then
                       ok := false
                 | _ ->
                     if Mt.delete t key <> IntMap.mem key !model then
                       ok := false;
                     model := IntMap.remove key !model)
               ops;
             Mt.check_invariants t;
             !ok && Mt.to_list t = IntMap.bindings !model)))

(* ---------- concurrent, locked mode ---------- *)

let test_concurrent_disjoint_inserts () =
  let w = fresh_world () in
  let t = run_one w (fun () -> Mt.create ~fanout:8 ~map:w.map ()) in
  let threads = 8 and per = 80 in
  let (_ : Machine.t) =
    run_threads ~threads ~cost:Cost.default ~seed:73 w (fun tid ->
        for i = 0 to per - 1 do
          let k = (tid * 10_000) + i in
          Mt.put t k (k * 2)
        done)
  in
  run_one w (fun () ->
      Mt.check_invariants t;
      check_int "all inserted" (threads * per) (Mt.size t);
      for tid = 0 to threads - 1 do
        for i = 0 to per - 1 do
          let k = (tid * 10_000) + i in
          if Mt.get t k <> Some (k * 2) then Alcotest.failf "missing %d" k
        done
      done)

let test_concurrent_hot_updates () =
  let w = fresh_world () in
  let t = run_one w (fun () -> Mt.create ~fanout:8 ~map:w.map ()) in
  run_one w (fun () ->
      for k = 0 to 63 do
        Mt.put t k k
      done);
  let threads = 6 and per = 60 in
  let (_ : Machine.t) =
    run_threads ~threads ~cost:Cost.default ~seed:79 w (fun tid ->
        for i = 1 to per do
          Mt.put t (i mod 4) ((tid * 1000) + i)
        done)
  in
  run_one w (fun () ->
      Mt.check_invariants t;
      for k = 0 to 3 do
        match Mt.get t k with
        | Some v ->
            let tid = v / 1000 and i = v mod 1000 in
            if not (tid >= 0 && tid < threads && i >= 1 && i <= per) then
              Alcotest.failf "impossible value %d at %d" v k
        | None -> Alcotest.failf "key %d vanished" k
      done)

let test_concurrent_readers_during_inserts () =
  let w = fresh_world () in
  let t = run_one w (fun () -> Mt.create ~fanout:8 ~map:w.map ()) in
  run_one w (fun () ->
      for k = 0 to 199 do
        Mt.put t k k
      done);
  let bad = ref 0 in
  let (_ : Machine.t) =
    run_threads ~threads:6 ~cost:Cost.default ~seed:83 w (fun tid ->
        if tid < 3 then
          for i = 0 to 60 do
            Mt.put t (200 + (tid * 1000) + i) i
          done
        else
          for k = 0 to 60 do
            (* Preloaded keys must remain visible through concurrent
               structural changes. *)
            if Mt.get t (k * 3) <> Some (k * 3) then incr bad
          done)
  in
  check_int "readers never miss preloaded keys" 0 !bad

(* Scans racing inserts: versioned hand-over-hand must stay sorted and
   never lose preloaded keys. *)
let test_concurrent_scan_under_churn () =
  let w = fresh_world () in
  let t = run_one w (fun () -> Mt.create ~fanout:8 ~map:w.map ()) in
  run_one w (fun () ->
      for k = 0 to 99 do
        Mt.put t (k * 2) k
      done);
  let bad = ref 0 in
  let (_ : Machine.t) =
    run_threads ~threads:4 ~cost:Cost.default ~seed:87 w (fun tid ->
        if tid < 2 then
          for i = 0 to 60 do
            Mt.put t ((2 * ((tid * 200) + i)) + 1) i
          done
        else
          for _ = 0 to 15 do
            let r = Mt.scan t ~from:0 ~count:80 in
            let keys = List.map fst r in
            if keys <> List.sort_uniq compare keys then incr bad;
            (* even preloaded keys inside the scanned range must appear *)
            (match keys with
            | [] -> incr bad
            | _ ->
                let upto = List.nth keys (List.length keys - 1) in
                for k = 0 to 99 do
                  if 2 * k <= upto && not (List.mem (2 * k) keys) then incr bad
                done)
          done)
  in
  check_int "scans sorted and complete" 0 !bad

let test_bulk_load_roundtrip () =
  let w = fresh_world () in
  let records = List.init 700 (fun i -> (i * 5, i)) in
  let t = run_one w (fun () -> Mt.bulk_load ~fanout:16 ~map:w.map records) in
  run_one w (fun () ->
      Mt.check_invariants t;
      check_bool "contents" true (Mt.to_list t = records);
      Mt.put t 3 33;
      check_bool "insert after bulk load" true (Mt.get t 3 = Some 33);
      Mt.check_invariants t)

(* ---------- HTM-Masstree ---------- *)

let test_htm_masstree_sequential () =
  let w = fresh_world () in
  let t = run_one w (fun () -> Hmt.create ~fanout:8 ~map:w.map ()) in
  run_one w (fun () ->
      for k = 0 to 299 do
        Hmt.put t k (k * 7)
      done;
      for k = 0 to 299 do
        if Hmt.get t k <> Some (k * 7) then Alcotest.failf "missing %d" k
      done;
      check_bool "delete" true (Hmt.delete t 5);
      check_bool "gone" true (Hmt.get t 5 = None);
      Mt.check_invariants (Hmt.tree t))

let test_htm_masstree_concurrent () =
  let w = fresh_world () in
  let t = run_one w (fun () -> Hmt.create ~fanout:8 ~map:w.map ()) in
  let threads = 6 and per = 50 in
  let m =
    run_threads ~threads ~cost:Cost.default ~seed:89 w (fun tid ->
        for i = 0 to per - 1 do
          let k = (tid * 10_000) + i in
          Hmt.put t k k
        done)
  in
  run_one w (fun () ->
      Mt.check_invariants (Hmt.tree t);
      check_int "all inserted" (threads * per) (Mt.size (Hmt.tree t)));
  ignore m

let test_htm_masstree_hot_contention () =
  let w = fresh_world () in
  let t = run_one w (fun () -> Hmt.create ~fanout:8 ~map:w.map ()) in
  run_one w (fun () ->
      for k = 0 to 63 do
        Hmt.put t k k
      done);
  let m =
    run_threads ~threads:8 ~cost:Cost.default ~seed:97 w (fun tid ->
        for i = 1 to 40 do
          Hmt.put t (i mod 4) ((tid * 1000) + i)
        done)
  in
  let s = Machine.aggregate m in
  check_bool "hot contention causes aborts" true (Machine.total_aborts s > 0);
  run_one w (fun () -> Mt.check_invariants (Hmt.tree t))

let test_deterministic_replay () =
  let run () =
    let w = fresh_world () in
    let t = run_one w (fun () -> Mt.create ~fanout:8 ~map:w.map ()) in
    let m =
      run_threads ~threads:4 ~cost:Cost.default ~seed:101 w (fun tid ->
          for i = 0 to 60 do
            Mt.put t ((tid * 500) + i) i
          done)
    in
    (Machine.elapsed m, run_one w (fun () -> Mt.to_list t))
  in
  check_bool "identical replay" true (run () = run ())

let suite =
  [
    Alcotest.test_case "insert+get" `Quick test_insert_get;
    Alcotest.test_case "update+delete" `Quick test_update_delete;
    Alcotest.test_case "scan" `Quick test_scan;
    prop_model_based;
    Alcotest.test_case "concurrent disjoint inserts" `Quick
      test_concurrent_disjoint_inserts;
    Alcotest.test_case "concurrent hot updates" `Quick
      test_concurrent_hot_updates;
    Alcotest.test_case "readers during inserts" `Quick
      test_concurrent_readers_during_inserts;
    Alcotest.test_case "scan under churn" `Quick
      test_concurrent_scan_under_churn;
    Alcotest.test_case "bulk load roundtrip" `Quick test_bulk_load_roundtrip;
    Alcotest.test_case "htm-masstree sequential" `Quick
      test_htm_masstree_sequential;
    Alcotest.test_case "htm-masstree concurrent inserts" `Quick
      test_htm_masstree_concurrent;
    Alcotest.test_case "htm-masstree hot contention aborts" `Quick
      test_htm_masstree_hot_contention;
    Alcotest.test_case "deterministic replay" `Quick test_deterministic_replay;
  ]
