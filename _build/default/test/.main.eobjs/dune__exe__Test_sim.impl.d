test/test_sim.ml: Alcotest Array Euno_htm Euno_mem Euno_sim Euno_sync List QCheck QCheck_alcotest String Util
