test/test_bptree.ml: Alcotest Array Euno_bptree Euno_sim Gen Int List Map QCheck QCheck_alcotest Util
