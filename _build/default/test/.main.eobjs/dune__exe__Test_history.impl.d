test/test_history.ml: Alcotest Euno_harness Euno_sim Eunomia Int List Map Printf QCheck QCheck_alcotest Util
