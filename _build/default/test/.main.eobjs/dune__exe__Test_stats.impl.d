test/test_stats.ml: Alcotest Euno_stats Gen List QCheck QCheck_alcotest String Util
