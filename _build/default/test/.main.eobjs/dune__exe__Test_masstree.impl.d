test/test_masstree.ml: Alcotest Euno_masstree Euno_sim Gen Int List Map QCheck QCheck_alcotest Util
