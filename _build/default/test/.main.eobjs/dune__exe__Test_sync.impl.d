test/test_sync.ml: Alcotest Euno_mem Euno_sim Euno_sync List Util
