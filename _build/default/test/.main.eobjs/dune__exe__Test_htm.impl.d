test/test_htm.ml: Alcotest Array Euno_htm Euno_mem Euno_sim Euno_sync List String Util
