test/test_harness.ml: Alcotest Euno_harness Euno_sim Euno_workload Eunomia Int List Map Printf Util
