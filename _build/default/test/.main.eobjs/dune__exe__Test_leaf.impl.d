test/test_leaf.ml: Alcotest Euno_ccm Euno_mem Euno_sim Eunomia Gen List QCheck QCheck_alcotest Util
