test/test_mem.ml: Alcotest Euno_mem Gen Hashtbl List QCheck QCheck_alcotest Util
