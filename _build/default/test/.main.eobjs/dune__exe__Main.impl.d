test/main.ml: Alcotest Test_bptree Test_eunomia Test_harness Test_history Test_htm Test_index Test_leaf Test_masstree Test_mem Test_sim Test_stats Test_sync Test_workload
