test/main.mli:
