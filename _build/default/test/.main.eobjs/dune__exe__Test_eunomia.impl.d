test/test_eunomia.ml: Alcotest Array Euno_ccm Euno_mem Euno_sim Eunomia Gen Int List Map Printf QCheck QCheck_alcotest Util
