test/test_workload.ml: Alcotest Array Euno_workload Float Hashtbl List Printf QCheck QCheck_alcotest Util
