test/test_index.ml: Alcotest Euno_bptree Euno_mem Euno_sim Util
