test/util.ml: Alcotest Euno_mem Euno_sim
