(* Tests of the statistics utilities: table rendering and summary
   statistics. *)

open Util
module Table = Euno_stats.Table
module Summary = Euno_stats.Summary

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i =
    if i + n > h then false
    else if String.sub haystack i n = needle then true
    else go (i + 1)
  in
  go 0

let test_table_alignment () =
  let t = Table.create ~title:"T" ~headers:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1.00" ];
  Table.add_row t [ "a-much-longer-name"; "2.50" ];
  let out = Table.render t in
  let lines = String.split_on_char '\n' out in
  (match lines with
  | title :: header :: rule :: row1 :: row2 :: _ ->
      check_bool "title marker" true (String.length title > 0 && title.[0] = '=');
      check_int "header and rule same width" (String.length header)
        (String.length rule);
      check_int "rows same width" (String.length row1) (String.length row2)
  | _ -> Alcotest.fail "unexpected shape");
  check_bool "contains first row" true (contains out "alpha")

let test_table_rows_in_order () =
  let t = Table.create ~title:"T" ~headers:[ "k" ] in
  Table.add_row t [ "first" ];
  Table.add_row t [ "second" ];
  let out = Table.render t in
  let pos needle =
    let n = String.length needle in
    let rec find i =
      if i + n > String.length out then -1
      else if String.sub out i n = needle then i
      else find (i + 1)
    in
    find 0
  in
  check_bool "rows render in insertion order" true
    (pos "first" >= 0 && pos "second" > pos "first")

let test_table_cells () =
  check_bool "cell_f" true (Table.cell_f 1.234 = "1.23");
  check_bool "cell_f1" true (Table.cell_f1 1.26 = "1.3");
  check_bool "cell_i" true (Table.cell_i 42 = "42");
  check_bool "cell_pct" true (Table.cell_pct 12.34 = "12.3%")

let test_summary_basic () =
  let s = Summary.create () in
  List.iter (Summary.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_int "count" 8 (Summary.count s);
  check_bool "mean" true (abs_float (Summary.mean s -. 5.0) < 1e-9);
  check_bool "stddev" true (abs_float (Summary.stddev s -. 2.13809) < 1e-3);
  check_bool "min" true (Summary.min_value s = 2.0);
  check_bool "max" true (Summary.max_value s = 9.0)

let test_summary_percentiles () =
  let s = Summary.create () in
  for i = 1 to 100 do
    Summary.add s (float_of_int i)
  done;
  check_bool "p50" true (abs_float (Summary.percentile s 50.0 -. 50.5) < 1e-9);
  check_bool "p0" true (Summary.percentile s 0.0 = 1.0);
  check_bool "p100" true (Summary.percentile s 100.0 = 100.0);
  check_bool "p99 close to 99" true
    (abs_float (Summary.percentile s 99.0 -. 99.01) < 0.1)

let test_summary_no_sample () =
  let s = Summary.create ~keep_sample:false () in
  Summary.add s 1.0;
  match Summary.percentile s 50.0 with
  | (_ : float) -> Alcotest.fail "percentile without sample"
  | exception Invalid_argument _ -> ()

let prop_summary_mean_matches_naive =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"welford mean = naive mean"
       QCheck.(list_of_size Gen.(1 -- 100) (float_range 0.0 1000.0))
       (fun xs ->
         let s = Summary.create ~keep_sample:false () in
         List.iter (Summary.add s) xs;
         let naive =
           List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
         in
         abs_float (Summary.mean s -. naive) < 1e-6))

module Chart = Euno_stats.Chart

let test_chart_renders () =
  let out =
    Chart.render ~width:40 ~height:8 ~title:"T" ~x_labels:[ "a"; "b"; "c" ]
      [
        { Chart.label = "up"; points = [ 1.0; 2.0; 3.0 ] };
        { Chart.label = "down"; points = [ 3.0; 2.0; 1.0 ] };
      ]
  in
  check_bool "has title" true (contains out "T");
  check_bool "has legend up" true (contains out "* up");
  check_bool "has legend down" true (contains out "o down");
  check_bool "has x labels" true (contains out "a" && contains out "c");
  check_bool "has marks" true (contains out "*" && contains out "o");
  (* every line bounded by the grid width *)
  List.iter
    (fun l ->
      if String.length l > 8 + 40 + 2 then
        Alcotest.failf "line too long: %d" (String.length l))
    (String.split_on_char '
' out)

let test_chart_rejects_single_point () =
  match
    Chart.render ~title:"T" ~x_labels:[ "a" ]
      [ { Chart.label = "s"; points = [ 1.0 ] } ]
  with
  | (_ : string) -> Alcotest.fail "accepted single point"
  | exception Invalid_argument _ -> ()

let test_chart_axis_rounding () =
  (* max 23 should give a 25-high axis, not 50 *)
  let out =
    Chart.render ~width:30 ~height:6 ~title:"T" ~x_labels:[]
      [ { Chart.label = "s"; points = [ 3.0; 23.0 ] } ]
  in
  check_bool "nice axis top" true (contains out "25.0")

let suite =
  [
    Alcotest.test_case "chart renders" `Quick test_chart_renders;
    Alcotest.test_case "chart rejects single point" `Quick
      test_chart_rejects_single_point;
    Alcotest.test_case "chart axis rounding" `Quick test_chart_axis_rounding;
    Alcotest.test_case "table alignment" `Quick test_table_alignment;
    Alcotest.test_case "table row order" `Quick test_table_rows_in_order;
    Alcotest.test_case "table cells" `Quick test_table_cells;
    Alcotest.test_case "summary basics" `Quick test_summary_basic;
    Alcotest.test_case "summary percentiles" `Quick test_summary_percentiles;
    Alcotest.test_case "summary without sample" `Quick test_summary_no_sample;
    prop_summary_mean_matches_naive;
  ]
