(* Tests of the linearizability checker itself, followed by live
   linearizability checks of all four trees under concurrent execution on
   the simulated machine. *)

open Util
module Api = Euno_sim.Api
module Cost = Euno_sim.Cost
module Machine = Euno_sim.Machine
module History = Euno_harness.History
module Kv = Euno_harness.Kv
module Config = Eunomia.Config
module IntMap = Map.Make (Int)

let ev tid invoked responded op = { History.tid; invoked; responded; op }

(* ---------- checker unit tests ---------- *)

let test_sequential_history_ok () =
  let h =
    [
      ev 0 0 10 (History.Put (1, 100));
      ev 0 20 30 (History.Get (1, Some 100));
      ev 0 40 50 (History.Delete (1, true));
      ev 0 60 70 (History.Get (1, None));
    ]
  in
  check_bool "sequential valid history" true (History.linearizable h)

let test_stale_read_rejected () =
  (* put completes strictly before the get is invoked, yet the get misses
     it: not linearizable. *)
  let h =
    [
      ev 0 0 10 (History.Put (1, 100));
      ev 1 20 30 (History.Get (1, None));
    ]
  in
  check_bool "stale read rejected" false (History.linearizable h)

let test_overlap_allows_either_order () =
  (* concurrent put and get: the get may see either state *)
  let miss =
    [ ev 0 0 100 (History.Put (1, 5)); ev 1 10 90 (History.Get (1, None)) ]
  in
  let hit =
    [ ev 0 0 100 (History.Put (1, 5)); ev 1 10 90 (History.Get (1, Some 5)) ]
  in
  check_bool "overlapping miss ok" true (History.linearizable miss);
  check_bool "overlapping hit ok" true (History.linearizable hit)

let test_lost_update_rejected () =
  (* Two sequential puts, then a get returning the first value: the
     second update was lost. *)
  let h =
    [
      ev 0 0 10 (History.Put (1, 5));
      ev 0 20 30 (History.Put (1, 6));
      ev 1 40 50 (History.Get (1, Some 5));
    ]
  in
  check_bool "lost update rejected" false (History.linearizable h)

let test_delete_semantics () =
  let good =
    [
      ev 0 0 10 (History.Put (3, 1));
      ev 0 20 30 (History.Delete (3, true));
      ev 0 40 50 (History.Delete (3, false));
    ]
  in
  let bad =
    [ ev 0 0 10 (History.Put (3, 1)); ev 0 20 30 (History.Delete (3, false)) ]
  in
  check_bool "delete once" true (History.linearizable good);
  check_bool "wrong delete result" false (History.linearizable bad)

let test_initial_state () =
  let init = IntMap.add 7 70 IntMap.empty in
  let h = [ ev 0 0 10 (History.Get (7, Some 70)) ] in
  check_bool "initial state respected" true (History.linearizable ~init h);
  check_bool "without init it fails" false (History.linearizable h)

(* ---------- live checks against the trees ---------- *)

(* Run a small contended workload on the machine, recording exact
   invocation/response cycles, and check the observed history is
   linearizable.  The key set is tiny so operations genuinely race. *)
let live_history kind ~seed =
  let w = fresh_world () in
  let preload = List.init 4 (fun i -> (i, 1000 + i)) in
  let kv =
    run_one w (fun () -> Kv.build ~records:preload kind ~fanout:8 ~map:w.map)
  in
  let r = History.recorder () in
  let m =
    Machine.create ~threads:4 ~seed ~cost:Cost.default ~mem:w.mem ~map:w.map
      ~alloc:w.alloc
  in
  Machine.run m (fun tid ->
      for i = 1 to 10 do
        let k = Api.rand 6 in
        let invoked = Api.clock () in
        let op =
          match (tid + i) mod 3 with
          | 0 -> History.Get (k, kv.Kv.get k)
          | 1 ->
              let v = (tid * 100) + i in
              kv.Kv.put k v;
              History.Put (k, v)
          | _ -> History.Delete (k, kv.Kv.delete k)
        in
        let responded = Api.clock () in
        History.record r ~tid ~invoked ~responded op
      done);
  (History.events r, IntMap.of_seq (List.to_seq preload))

let test_trees_linearizable () =
  List.iter
    (fun kind ->
      List.iter
        (fun seed ->
          let evs, init = live_history kind ~seed in
          if not (History.linearizable ~init evs) then
            Alcotest.failf "%s: non-linearizable history (seed %d):\n%s"
              (Kv.kind_name kind) seed
              (History.to_string evs))
        [ 1; 2; 3 ])
    Kv.all_kinds

(* Property: any short random contended execution of any tree yields a
   linearizable history. *)
let prop_linearizable_fuzz =
  List.map
    (fun kind ->
      QCheck_alcotest.to_alcotest
        (QCheck.Test.make ~count:15
           ~name:
             (Printf.sprintf "%s histories linearizable (fuzz)"
                (Kv.kind_name kind))
           QCheck.(int_bound 100_000)
           (fun seed ->
             let evs, init = live_history kind ~seed:(seed + 7) in
             History.linearizable ~init evs)))
    Kv.all_kinds

(* The checker must also reject corrupted real histories: flip one
   observed get result and linearizability must (almost always) break. *)
let test_checker_detects_corruption () =
  let evs, init = live_history Kv.Htm_bptree ~seed:5 in
  check_bool "original linearizable" true (History.linearizable ~init evs);
  (* Corrupt: change some get's observed value to an impossible one. *)
  let corrupted =
    List.map
      (fun e ->
        match e.History.op with
        | History.Get (k, _) ->
            { e with History.op = History.Get (k, Some 999_999_999) }
        | History.Put _ | History.Delete _ -> e)
      evs
  in
  let has_get =
    List.exists
      (fun e ->
        match e.History.op with History.Get _ -> true | _ -> false)
      corrupted
  in
  if has_get then
    check_bool "corrupted history rejected" false
      (History.linearizable ~init corrupted)

let suite =
  [
    Alcotest.test_case "sequential history" `Quick test_sequential_history_ok;
    Alcotest.test_case "checker detects corruption" `Quick
      test_checker_detects_corruption;
    Alcotest.test_case "stale read rejected" `Quick test_stale_read_rejected;
    Alcotest.test_case "overlap allows either order" `Quick
      test_overlap_allows_either_order;
    Alcotest.test_case "lost update rejected" `Quick test_lost_update_rejected;
    Alcotest.test_case "delete semantics" `Quick test_delete_semantics;
    Alcotest.test_case "initial state" `Quick test_initial_state;
    Alcotest.test_case "all four trees produce linearizable histories" `Slow
      test_trees_linearizable;
  ]
  @ prop_linearizable_fuzz
