(* Unit and property tests for the simulated memory substrate. *)

open Util
module Memory = Euno_mem.Memory
module Linemap = Euno_mem.Linemap
module Alloc = Euno_mem.Alloc
module Epoch = Euno_mem.Epoch

let test_memory_roundtrip () =
  let m = Memory.create () in
  Memory.set m 0 17;
  Memory.set m 123_456 99;
  check_int "word 0" 17 (Memory.get m 0);
  check_int "far word" 99 (Memory.get m 123_456);
  check_int "unwritten reads 0" 0 (Memory.get m 7_000_000)

let test_line_arithmetic () =
  check_int "line of 0" 0 (Memory.line_of_addr 0);
  check_int "line of 7" 0 (Memory.line_of_addr 7);
  check_int "line of 8" 1 (Memory.line_of_addr 8);
  check_int "addr of line 3" 24 (Memory.addr_of_line 3)

let test_alloc_alignment_and_separation () =
  let w = fresh_world () in
  let a = Alloc.alloc w.alloc ~kind:Linemap.Record ~words:5 in
  let b = Alloc.alloc w.alloc ~kind:Linemap.Node_meta ~words:1 in
  check_int "a line-aligned" 0 (a mod Memory.line_words);
  check_int "b line-aligned" 0 (b mod Memory.line_words);
  check_bool "distinct allocations never share a line" true
    (Memory.line_of_addr a <> Memory.line_of_addr b);
  check_bool "null address never returned" true (a <> 0 && b <> 0)

let test_alloc_kind_tagging () =
  let w = fresh_world () in
  let a = Alloc.alloc w.alloc ~kind:Linemap.Record ~words:20 in
  check_bool "first line tagged" true
    (Linemap.kind_of_line w.map (Memory.line_of_addr a) = Linemap.Record);
  check_bool "last line tagged" true
    (Linemap.kind_of_line w.map (Memory.line_of_addr (a + 19)) = Linemap.Record)

let test_alloc_accounting () =
  let w = fresh_world () in
  let a = Alloc.alloc w.alloc ~kind:Linemap.Reserved ~words:10 in
  let rounded = Alloc.round_to_lines 10 in
  check_int "live after alloc" rounded (Alloc.live_words w.alloc);
  Alloc.free w.alloc ~kind:Linemap.Reserved ~addr:a ~words:10;
  check_int "live after free" 0 (Alloc.live_words w.alloc);
  check_int "peak survives free" rounded (Alloc.peak_words w.alloc);
  let st = Alloc.stats_of_kind w.alloc Linemap.Reserved in
  check_int "kind alloc count" 1 st.Alloc.alloc_count;
  check_int "kind free count" 1 st.Alloc.free_count

let test_alloc_reuse_zeroed () =
  let w = fresh_world () in
  let a = Alloc.alloc w.alloc ~kind:Linemap.Scratch ~words:8 in
  Memory.set w.mem a 777;
  Alloc.free w.alloc ~kind:Linemap.Scratch ~addr:a ~words:8;
  let b = Alloc.alloc w.alloc ~kind:Linemap.Scratch ~words:8 in
  check_int "free list reuses the block" a b;
  check_int "recycled memory is zeroed" 0 (Memory.get w.mem b)

let test_epoch_defers_until_quiescent () =
  let e = Epoch.create ~slots:2 () in
  let freed = ref false in
  Epoch.pin e 0;
  Epoch.retire e (fun () -> freed := true);
  (* Thread 0 still pinned: a flood of pins from thread 1 must not free. *)
  for _ = 1 to 1000 do
    Epoch.pin e 1;
    Epoch.unpin e 1
  done;
  check_bool "not freed while pinned" false !freed;
  Epoch.unpin e 0;
  Epoch.flush e;
  check_bool "freed after quiescence" true !freed;
  check_int "freed count" 1 (Epoch.freed e)

let test_epoch_advances () =
  let e = Epoch.create ~slots:1 ~advance_every:1 () in
  let g0 = Epoch.global_epoch e in
  for _ = 1 to 10 do
    Epoch.pin e 0;
    Epoch.unpin e 0
  done;
  check_bool "global epoch advanced" true (Epoch.global_epoch e > g0)

let prop_memory_model =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"memory matches a Hashtbl model"
       QCheck.(list (pair (int_bound 100_000) int))
       (fun writes ->
         let m = Memory.create () in
         let model = Hashtbl.create 64 in
         List.iter
           (fun (a, v) ->
             Memory.set m a v;
             Hashtbl.replace model a v)
           writes;
         List.for_all (fun (a, _) -> Memory.get m a = Hashtbl.find model a) writes))

let prop_alloc_no_overlap =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"allocations never overlap"
       QCheck.(list_of_size Gen.(1 -- 50) (int_range 1 100))
       (fun sizes ->
         let w = fresh_world () in
         let blocks =
           List.map
             (fun words -> (Alloc.alloc w.alloc ~kind:Linemap.Record ~words, words))
             sizes
         in
         let ends (a, n) = (a, a + Alloc.round_to_lines n) in
         let ranges = List.map ends blocks in
         List.for_all
           (fun (a1, e1) ->
             List.for_all
               (fun (a2, e2) -> a1 = a2 || e1 <= a2 || e2 <= a1)
               ranges)
           ranges))

let suite =
  [
    Alcotest.test_case "memory roundtrip" `Quick test_memory_roundtrip;
    Alcotest.test_case "line arithmetic" `Quick test_line_arithmetic;
    Alcotest.test_case "alloc alignment/separation" `Quick
      test_alloc_alignment_and_separation;
    Alcotest.test_case "alloc kind tagging" `Quick test_alloc_kind_tagging;
    Alcotest.test_case "alloc accounting" `Quick test_alloc_accounting;
    Alcotest.test_case "alloc reuse zeroed" `Quick test_alloc_reuse_zeroed;
    Alcotest.test_case "epoch defers until quiescent" `Quick
      test_epoch_defers_until_quiescent;
    Alcotest.test_case "epoch advances" `Quick test_epoch_advances;
    prop_memory_model;
    prop_alloc_no_overlap;
  ]
