(* Shared helpers for the test suites. *)

module Memory = Euno_mem.Memory
module Linemap = Euno_mem.Linemap
module Alloc = Euno_mem.Alloc
module Machine = Euno_sim.Machine
module Cost = Euno_sim.Cost
module Api = Euno_sim.Api

type world = {
  mem : Memory.t;
  map : Linemap.t;
  alloc : Alloc.t;
}

let fresh_world () =
  let mem = Memory.create () in
  let map = Linemap.create () in
  let alloc = Alloc.create mem map in
  { mem; map; alloc }

(* Run [body tid] on [threads] simulated threads and return the machine. *)
let run_threads ?(seed = 42) ?(cost = Cost.unit_costs) ?(threads = 2) w body =
  let m =
    Machine.create ~threads ~seed ~cost ~mem:w.mem ~map:w.map ~alloc:w.alloc
  in
  Machine.run m body;
  m

let run_one ?(seed = 42) ?(cost = Cost.unit_costs) w f =
  Machine.run_single ~seed ~cost ~mem:w.mem ~map:w.map ~alloc:w.alloc f

let scratch w ~words =
  Alloc.alloc w.alloc ~kind:Linemap.Scratch ~words

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
