(* Direct tests of the shared internal-node index, including negative
   tests that corrupt a tree in simulated memory and check that the
   structural validator actually catches each class of violation. *)

open Util
module Api = Euno_sim.Api
module Memory = Euno_mem.Memory
module Bptree = Euno_bptree.Bptree
module Index = Euno_bptree.Index
module L = Euno_bptree.Layout

let build_tree w ~n =
  run_one w (fun () ->
      let t = Bptree.create ~fanout:8 ~map:w.map () in
      for k = 0 to n - 1 do
        Bptree.put t k k
      done;
      t)

let expect_invariant w t =
  run_one w (fun () ->
      match Bptree.check_invariants t with
      | () -> Alcotest.fail "checker accepted a corrupted tree"
      | exception Bptree.Invariant _ -> ())

let test_checker_accepts_valid () =
  let w = fresh_world () in
  let t = build_tree w ~n:300 in
  run_one w (fun () -> Bptree.check_invariants t)

let test_checker_catches_unsorted_leaf () =
  let w = fresh_world () in
  let t = build_tree w ~n:300 in
  (* Swap two record keys in some leaf, behind the API's back. *)
  let leaf = run_one w (fun () -> Bptree.find_leaf t 150) in
  let lay = L.make ~fanout:8 in
  let k0 = Memory.get w.mem (L.record_key lay leaf 0) in
  let k1 = Memory.get w.mem (L.record_key lay leaf 1) in
  Memory.set w.mem (L.record_key lay leaf 0) k1;
  Memory.set w.mem (L.record_key lay leaf 1) k0;
  expect_invariant w t

let test_checker_catches_bad_parent () =
  let w = fresh_world () in
  let t = build_tree w ~n:300 in
  let leaf = run_one w (fun () -> Bptree.find_leaf t 42) in
  Memory.set w.mem (L.parent leaf) 12345;
  expect_invariant w t

let test_checker_catches_bound_violation () =
  let w = fresh_world () in
  let t = build_tree w ~n:300 in
  let leaf = run_one w (fun () -> Bptree.find_leaf t 150) in
  let lay = L.make ~fanout:8 in
  (* A key far outside the leaf's separator bounds. *)
  Memory.set w.mem (L.record_key lay leaf 0) 100_000;
  expect_invariant w t

let test_checker_catches_broken_chain () =
  let w = fresh_world () in
  let t = build_tree w ~n:300 in
  let leaf = run_one w (fun () -> Bptree.find_leaf t 0) in
  (* Truncate the leaf chain: scan will miss records. *)
  Memory.set w.mem (L.next leaf) 0;
  expect_invariant w t

let test_lower_bound_matches_model () =
  let w = fresh_world () in
  run_one w (fun () ->
      let t = Bptree.create ~fanout:16 ~map:w.map () in
      let idx =
        (* exercise Index.lower_bound through an internal node once the
           tree has grown some *)
        for k = 0 to 999 do
          Bptree.put t (2 * k) k
        done;
        Bptree.root t
      in
      ignore idx;
      (* every present key resolves, every absent neighbour does not *)
      for k = 0 to 999 do
        if Bptree.get t (2 * k) <> Some k then Alcotest.failf "missing %d" (2 * k);
        if Bptree.get t ((2 * k) + 1) <> None then
          Alcotest.failf "phantom %d" ((2 * k) + 1)
      done)

let test_split_internal_on_alloc_hook () =
  let w = fresh_world () in
  run_one w (fun () ->
      let t = Bptree.create ~fanout:4 ~map:w.map () in
      (* Grow enough to force internal splits. *)
      let seen = ref 0 in
      ignore seen;
      for k = 0 to 199 do
        Bptree.put t k k
      done;
      (* on_alloc fires on the fresh node before it is linked *)
      let idx_depth = Bptree.depth t in
      check_bool "internal splits happened" true (idx_depth >= 3))

let suite =
  [
    Alcotest.test_case "checker accepts valid tree" `Quick
      test_checker_accepts_valid;
    Alcotest.test_case "checker catches unsorted leaf" `Quick
      test_checker_catches_unsorted_leaf;
    Alcotest.test_case "checker catches bad parent" `Quick
      test_checker_catches_bad_parent;
    Alcotest.test_case "checker catches bound violation" `Quick
      test_checker_catches_bound_violation;
    Alcotest.test_case "checker catches broken chain" `Quick
      test_checker_catches_broken_chain;
    Alcotest.test_case "lookups match model through internal levels" `Quick
      test_lower_bound_matches_model;
    Alcotest.test_case "internal splits grow depth" `Quick
      test_split_internal_on_alloc_hook;
  ]
