(* Euno-B+Tree configuration.

   Every Eunomia design guideline is independently switchable so the
   Figure 13 ablation can be expressed as a sequence of configurations.
   (The "Baseline" ablation column is the monolithic Htm_bptree, not a
   configuration of this tree.) *)

type t = {
  fanout : int; (* internal-node fanout *)
  nsegs : int; (* segments per leaf *)
  seg_slots : int; (* record slots per segment *)
  use_lock_bits : bool; (* CCM advisory per-slot locks *)
  use_mark_bits : bool; (* CCM Bloom-style existence bits *)
  adaptive : bool; (* per-leaf contention detector; false = always on *)
  sched_retries : int; (* write-scheduler re-draws before compaction *)
  near_full_margin : int; (* free slots under which inserts take the split lock *)
  ccm_thresholds : Euno_ccm.Ccm.thresholds;
  policy : Euno_htm.Htm.policy;
}

let capacity t = t.nsegs * t.seg_slots

let validate t =
  if t.fanout < 4 || t.fanout land 1 <> 0 then
    invalid_arg "Config: fanout must be even and >= 4";
  if t.nsegs < 1 then invalid_arg "Config: nsegs < 1";
  if t.seg_slots < 1 then invalid_arg "Config: seg_slots < 1";
  if 2 * capacity t > Euno_ccm.Ccm.max_slots && (t.use_lock_bits || t.use_mark_bits)
  then
    invalid_arg "Config: leaf capacity too large for CCM bit vectors";
  if t.use_mark_bits && not t.use_lock_bits then
    invalid_arg "Config: mark bits require lock bits (insert/delete atomicity)";
  if t.near_full_margin < 1 then invalid_arg "Config: near_full_margin < 1";
  t

(* The full Euno-B+Tree: all four design guidelines enabled.
   5 segments x 3 slots: one cache line per segment (count word + three
   combined key/value pairs), leaf capacity 15 ~ the paper's fanout 16.

   Retry policy: the paper "sets different thresholds for different types
   of aborts" (Section 4.2.1).  A retry of Eunomia's lower region costs an
   order of magnitude less than re-running a monolithic operation, so its
   conflict budget is proportionally larger than the DBX default — which
   also keeps contended leaves from ever reaching the fallback lock and
   triggering the subscription cascade the baseline suffers. *)
let default =
  validate
    {
      fanout = 16;
      nsegs = 5;
      seg_slots = 3;
      use_lock_bits = true;
      use_mark_bits = true;
      adaptive = true;
      sched_retries = 2;
      near_full_margin = 2;
      ccm_thresholds = Euno_ccm.Ccm.default_thresholds;
      policy =
        { Euno_htm.Htm.default_policy with Euno_htm.Htm.conflict_retries = 16 };
    }

(* ---------- Figure 13 ablation ladder ---------- *)

(* +Split HTM: two-step traversal with version validation, but a single
   consecutive segment per leaf (the conventional sorted layout) and no
   conflict control. *)
let split_htm_only =
  validate
    {
      default with
      nsegs = 1;
      seg_slots = 16;
      use_lock_bits = false;
      use_mark_bits = false;
      adaptive = false;
    }

(* +Part Leaf: adds the scattered, segmented leaf layout. *)
let part_leaf =
  validate
    { default with use_lock_bits = false; use_mark_bits = false; adaptive = false }

(* +CCM lockbits: adds the fine-grained advisory locks. *)
let ccm_lockbits =
  validate { default with use_mark_bits = false; adaptive = false }

(* +CCM markbits: adds the Bloom-style existence filter. *)
let ccm_markbits = validate { default with adaptive = false }

(* +Adaptive: the full design (alias of default). *)
let full = default

let ablation_ladder =
  [
    ("+Split HTM", split_htm_only);
    ("+Part Leaf", part_leaf);
    ("+CCM lockbits", ccm_lockbits);
    ("+CCM markbits", ccm_markbits);
    ("+Adaptive", full);
  ]
