(* The scattered leaf node of Euno-B+Tree (Section 4.1, Figure 4).

   A leaf is laid out as:

     line 0  header (Node_meta): tag, parent, next, seqno — shares the
             common offsets of Euno_bptree.Layout so leaves hang under the
             shared internal-node Index;
     line 1  lock line (Lock): the per-leaf advisory split lock and the
             conflict control module.  This line is only ever accessed
             with atomics *outside* HTM regions;
     then    nsegs segments (Record), each line-aligned:
             [count | k0 v0 | k1 v1 | ...] with keys sorted *within* the
             segment and value pointers combined with keys, per the paper.

   Records are distributed round-robin over segments during
   reorganization, so keys adjacent in sort order live in different
   segments — different cache lines — which is what removes the false
   sharing of the conventional consecutive layout.  Reserved-keys buffers
   are transient: allocated (kind Reserved) while a split, compaction or
   scan needs sorted data, and freed immediately after, which is why the
   paper's Section 5.7 measures only a few percent of memory overhead. *)

module Api = Euno_sim.Api
module Memory = Euno_mem.Memory
module Linemap = Euno_mem.Linemap
module L = Euno_bptree.Layout
module Ccm = Euno_ccm.Ccm

type shape = {
  cfg : Config.t;
  map : Linemap.t;
  seg_words : int;
  leaf_words : int;
}

let header_words = Memory.line_words
let lock_line_off = header_words
let seg_area_off = 2 * Memory.line_words

let pad_lines w = (w + Memory.line_words - 1) / Memory.line_words * Memory.line_words

let shape cfg ~map =
  let seg_words = pad_lines (1 + (2 * cfg.Config.seg_slots)) in
  {
    cfg;
    map;
    seg_words;
    leaf_words = seg_area_off + (cfg.Config.nsegs * seg_words);
  }

let leaf_words s = s.leaf_words

(* ---------- field addresses ---------- *)

let seqno_addr leaf = L.version leaf
let next_addr leaf = L.next leaf
let parent_addr leaf = L.parent leaf
let mode_addr leaf = leaf + 5 (* adaptive mode, on the already-read header *)
let split_lock_addr leaf = leaf + lock_line_off
let ccm_base leaf = leaf + lock_line_off + 1

let seg_base s leaf i = leaf + seg_area_off + (i * s.seg_words)
let seg_count_addr s leaf i = seg_base s leaf i
let seg_key_addr s leaf i j = seg_base s leaf i + 1 + (2 * j)
let seg_value_addr s leaf i j = seg_base s leaf i + 2 + (2 * j)

let ccm s leaf =
  Ccm.make ~base:(ccm_base leaf) ~mode_addr:(mode_addr leaf)
    ~capacity:(Config.capacity s.cfg)

(* ---------- allocation ---------- *)

let alloc s =
  let leaf = Api.alloc ~kind:Linemap.Node_meta ~words:s.leaf_words in
  Linemap.set_range s.map ~addr:(split_lock_addr leaf)
    ~words:Memory.line_words Linemap.Lock;
  Api.reclassify ~from_kind:Linemap.Node_meta ~to_kind:Linemap.Lock
    ~words:Memory.line_words;
  Linemap.set_range s.map ~addr:(seg_base s leaf 0)
    ~words:(s.cfg.Config.nsegs * s.seg_words)
    Linemap.Record;
  Api.reclassify ~from_kind:Linemap.Node_meta ~to_kind:Linemap.Record
    ~words:(s.cfg.Config.nsegs * s.seg_words);
  Api.write (L.tag leaf) L.tag_leaf;
  leaf

(* Free a leaf, reversing the per-kind accounting of alloc. *)
let free s leaf =
  Api.reclassify ~from_kind:Linemap.Lock ~to_kind:Linemap.Node_meta
    ~words:Memory.line_words;
  Api.reclassify ~from_kind:Linemap.Record ~to_kind:Linemap.Node_meta
    ~words:(s.cfg.Config.nsegs * s.seg_words);
  Api.free ~kind:Linemap.Node_meta ~addr:leaf ~words:s.leaf_words

(* ---------- segment primitives ---------- *)

let seg_count s leaf i = Api.read (seg_count_addr s leaf i)
let seg_full s leaf i = seg_count s leaf i >= s.cfg.Config.seg_slots

let total_count s leaf =
  let total = ref 0 in
  for i = 0 to s.cfg.Config.nsegs - 1 do
    total := !total + seg_count s leaf i
  done;
  !total

(* Locate a key: segments are sorted internally but unordered relative to
   each other, so each segment is probed in turn (paper Section 4.1,
   "Example").  Small segments are scanned directly with an early exit —
   the first key past the target doubles as the boundary check; larger
   segments (the single-segment ablation layout) use binary search. *)
let locate s leaf key =
  let nsegs = s.cfg.Config.nsegs in
  let small = s.cfg.Config.seg_slots <= 4 in
  let rec seg i =
    if i >= nsegs then None
    else begin
      let c = seg_count s leaf i in
      if c = 0 then seg (i + 1)
      else if small then scan i c 0
      else binary i c
    end
  and scan i c j =
    if j >= c then seg (i + 1)
    else begin
      let k = Api.read (seg_key_addr s leaf i j) in
      if k = key then Some (i, j)
      else if k > key then seg (i + 1)
      else scan i c (j + 1)
    end
  and binary i c =
    let rec go lo hi =
      if lo >= hi then seg (i + 1)
      else begin
        let mid = (lo + hi) / 2 in
        let k = Api.read (seg_key_addr s leaf i mid) in
        if k = key then Some (i, mid)
        else if k < key then go (mid + 1) hi
        else go lo mid
      end
    in
    go 0 c
  in
  seg 0

let value_addr_of s leaf (i, j) = seg_value_addr s leaf i j

(* Insert into a non-full segment at its sorted position (binary search
   for the position when the segment is large). *)
let insert_into_seg s leaf i key value =
  let c = seg_count s leaf i in
  assert (c < s.cfg.Config.seg_slots);
  let p =
    if s.cfg.Config.seg_slots <= 4 then begin
      let rec pos j =
        if j >= c || Api.read (seg_key_addr s leaf i j) > key then j
        else pos (j + 1)
      in
      pos 0
    end
    else begin
      let rec go lo hi =
        if lo >= hi then lo
        else begin
          let mid = (lo + hi) / 2 in
          if Api.read (seg_key_addr s leaf i mid) > key then go lo mid
          else go (mid + 1) hi
        end
      in
      go 0 c
    end
  in
  for j = c downto p + 1 do
    Api.write (seg_key_addr s leaf i j) (Api.read (seg_key_addr s leaf i (j - 1)));
    Api.write (seg_value_addr s leaf i j)
      (Api.read (seg_value_addr s leaf i (j - 1)))
  done;
  Api.write (seg_key_addr s leaf i p) key;
  Api.write (seg_value_addr s leaf i p) value;
  Api.write (seg_count_addr s leaf i) (c + 1)

(* Remove the record at a located position, closing the gap. *)
let remove_at s leaf (i, j) =
  let c = seg_count s leaf i in
  for p = j to c - 2 do
    Api.write (seg_key_addr s leaf i p) (Api.read (seg_key_addr s leaf i (p + 1)));
    Api.write (seg_value_addr s leaf i p)
      (Api.read (seg_value_addr s leaf i (p + 1)))
  done;
  Api.write (seg_count_addr s leaf i) (c - 1)

(* ---------- gathering and reorganization ---------- *)

(* All live records of the leaf, sorted by key.  The merge of the
   already-sorted segments is charged as simulated work. *)
let gather s leaf =
  let acc = ref [] in
  for i = 0 to s.cfg.Config.nsegs - 1 do
    let c = seg_count s leaf i in
    for j = 0 to c - 1 do
      acc :=
        (Api.read (seg_key_addr s leaf i j), Api.read (seg_value_addr s leaf i j))
        :: !acc
    done
  done;
  let n = List.length !acc in
  Api.work (4 * n);
  List.sort (fun (a, _) (b, _) -> compare a b) !acc

(* Stash sorted records into a freshly allocated transient reserved-keys
   buffer: pairs of words [k, v].  The caller frees it (inside an HTM
   region the free is deferred to commit, so aborts roll it back). *)
let stash_reserved sorted =
  let n = List.length sorted in
  let words = max 1 (2 * n) in
  let buf = Api.alloc ~kind:Linemap.Reserved ~words in
  List.iteri
    (fun j (k, v) ->
      Api.write (buf + (2 * j)) k;
      Api.write (buf + (2 * j) + 1) v)
    sorted;
  (buf, words)

let free_reserved (buf, words) =
  Api.free ~kind:Linemap.Reserved ~addr:buf ~words

let clear_segs s leaf =
  for i = 0 to s.cfg.Config.nsegs - 1 do
    Api.write (seg_count_addr s leaf i) 0
  done

(* Redistribute records [lo, lo+n) of a stash buffer into the (cleared)
   segments of [leaf], round-robin: record j goes to segment j mod nsegs.
   Each segment receives a subsequence of a sorted run, so it stays sorted,
   while keys adjacent in sort order land on different cache lines. *)
let redistribute_from s leaf buf ~lo ~n =
  let nsegs = s.cfg.Config.nsegs in
  assert (n <= Config.capacity s.cfg);
  let counts = Array.make nsegs 0 in
  for j = 0 to n - 1 do
    let k = Api.read (buf + (2 * (lo + j))) in
    let v = Api.read (buf + (2 * (lo + j)) + 1) in
    let i = j mod nsegs in
    Api.write (seg_key_addr s leaf i counts.(i)) k;
    Api.write (seg_value_addr s leaf i counts.(i)) v;
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri (fun i c -> Api.write (seg_count_addr s leaf i) c) counts

(* Fill a fresh leaf's segments round-robin from a sorted record list
   (bulk loading; same scatter property as redistribute_from). *)
let fill_round_robin s leaf records =
  let nsegs = s.cfg.Config.nsegs in
  let counts = Array.make nsegs 0 in
  List.iteri
    (fun j (k, v) ->
      let i = j mod nsegs in
      Api.write (seg_key_addr s leaf i counts.(i)) k;
      Api.write (seg_value_addr s leaf i counts.(i)) v;
      counts.(i) <- counts.(i) + 1)
    records;
  Array.iteri (fun i c -> Api.write (seg_count_addr s leaf i) c) counts

(* Compaction (Algorithm 3, Figure 6b/6c): move everything to a transient
   reserved buffer, clear the segments, redistribute evenly.  After this,
   any segment has room iff total < capacity. *)
let compact s leaf =
  let sorted = gather s leaf in
  let stash = stash_reserved sorted in
  let buf, _ = stash in
  clear_segs s leaf;
  redistribute_from s leaf buf ~lo:0 ~n:(List.length sorted);
  free_reserved stash

(* Mark-bits word covering [keys] for a leaf's CCM. *)
let marks_word_for c keys =
  List.fold_left (fun acc k -> acc lor (1 lsl Ccm.hash c k)) 0 keys

(* Does any live key other than [key] hash to [slot]?  Decides whether a
   delete may clear the mark bit (a Bloom filter cannot forget a colliding
   key). *)
let slot_collision s leaf c ~key ~slot =
  let hit = ref false in
  for i = 0 to s.cfg.Config.nsegs - 1 do
    let cnt = seg_count s leaf i in
    for j = 0 to cnt - 1 do
      let k = Api.read (seg_key_addr s leaf i j) in
      if k <> key && Ccm.hash c k = slot then hit := true
    done
  done;
  !hit

(* All keys currently in the leaf (for mark rebuilds). *)
let keys s leaf = List.map fst (gather s leaf)
