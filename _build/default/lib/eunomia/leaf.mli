(** The scattered leaf node of Euno-B+Tree (paper Section 4.1, Figure 4).

    Layout: a header line (tag/parent/next/seqno/adaptive-mode, compatible
    with {!Euno_bptree.Layout} so leaves hang under the shared internal
    index), a lock line (per-leaf advisory split lock + the CCM, only ever
    accessed with atomics outside HTM regions), then [nsegs] line-aligned
    segments of [count | k,v | k,v | ...] with keys sorted within each
    segment.  Reorganization distributes sorted records round-robin so
    adjacent keys live on different cache lines; reserved-keys buffers are
    transient (allocated for a split/compaction/scan, freed right after). *)

type shape
(** Precomputed layout for one configuration. *)

val shape : Config.t -> map:Euno_mem.Linemap.t -> shape

val leaf_words : shape -> int
(** Words one leaf occupies. *)

val alloc : shape -> int
(** Allocate an empty leaf (must run on the machine). *)

val free : shape -> int -> unit
(** Free a leaf, reversing {!alloc}'s per-kind accounting. *)

(** {2 Field addresses} *)

val seqno_addr : int -> int
(** The split sequence number validated by lower regions. *)

val next_addr : int -> int
val parent_addr : int -> int

val mode_addr : int -> int
(** Adaptive mode word: on the header line every lower region already
    reads, so mode checks cost no extra cache line and mode writes doom
    all in-flight regions on the leaf. *)

val split_lock_addr : int -> int
(** Per-leaf advisory split lock (a {!Euno_sync.Spinlock} word). *)

val ccm : shape -> int -> Euno_ccm.Ccm.t
(** The leaf's conflict control module. *)

val seg_count : shape -> int -> int -> int
val seg_full : shape -> int -> int -> bool
val seg_key_addr : shape -> int -> int -> int -> int
val seg_value_addr : shape -> int -> int -> int -> int

val total_count : shape -> int -> int
(** Records currently stored (sums the per-segment counts). *)

(** {2 Record operations} *)

val locate : shape -> int -> int -> (int * int) option
(** Position (segment, slot) of a key, probing segments in turn. *)

val value_addr_of : shape -> int -> int * int -> int

val insert_into_seg : shape -> int -> int -> int -> int -> unit
(** [insert_into_seg s leaf seg key value]: sorted insert into a non-full
    segment. *)

val remove_at : shape -> int -> int * int -> unit

(** {2 Reorganization} *)

val gather : shape -> int -> (int * int) list
(** All live records sorted by key (merge cost charged as work). *)

val stash_reserved : (int * int) list -> int * int
(** Write sorted records into a fresh transient reserved-keys buffer;
    returns (address, words) for {!free_reserved}. *)

val free_reserved : int * int -> unit

val clear_segs : shape -> int -> unit

val redistribute_from : shape -> int -> int -> lo:int -> n:int -> unit
(** Scatter records [lo, lo+n) of a stash buffer round-robin into the
    (cleared) segments: record j goes to segment [j mod nsegs], keeping
    each segment sorted while separating adjacent keys. *)

val fill_round_robin : shape -> int -> (int * int) list -> unit
(** Fill a fresh leaf's segments round-robin from sorted records (bulk
    loading); at most [Config.capacity] records. *)

val compact : shape -> int -> unit
(** Algorithm 3's reorganization: gather, stash, clear, redistribute. *)

(** {2 CCM helpers} *)

val marks_word_for : Euno_ccm.Ccm.t -> int list -> int
(** Mark-bit word covering a key list. *)

val slot_collision : shape -> int -> Euno_ccm.Ccm.t -> key:int -> slot:int -> bool
(** Does any live key other than [key] hash to [slot]? *)

val keys : shape -> int -> int list
(** All live keys in ascending order. *)
