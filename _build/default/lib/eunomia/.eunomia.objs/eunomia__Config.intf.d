lib/eunomia/config.mli: Euno_ccm Euno_htm
