lib/eunomia/config.ml: Euno_ccm Euno_htm
