lib/eunomia/euno_tree.mli: Config Euno_mem
