lib/eunomia/leaf.mli: Config Euno_ccm Euno_mem
