lib/eunomia/leaf.ml: Array Config Euno_bptree Euno_ccm Euno_mem Euno_sim List
