lib/eunomia/euno_tree.ml: Config Euno_bptree Euno_ccm Euno_htm Euno_mem Euno_sim Euno_sync Hashtbl Leaf List Printf
