(** Euno-B+Tree configuration: each Eunomia design guideline independently
    switchable, so the Figure 13 ablation is a list of configurations. *)

type t = {
  fanout : int;
  nsegs : int;
  seg_slots : int;
  use_lock_bits : bool;
  use_mark_bits : bool;
  adaptive : bool;
  sched_retries : int;
  near_full_margin : int;
  ccm_thresholds : Euno_ccm.Ccm.thresholds;
  policy : Euno_htm.Htm.policy;
}

val capacity : t -> int
(** Leaf record capacity: [nsegs * seg_slots]. *)

val validate : t -> t
(** Returns the config or raises [Invalid_argument].  Mark bits require
    lock bits (the paper uses the lock bit to make mark updates atomic with
    the insert, Section 4.3). *)

val default : t
(** The full Euno-B+Tree (all four design guidelines). *)

val split_htm_only : t
val part_leaf : t
val ccm_lockbits : t
val ccm_markbits : t
val full : t

val ablation_ladder : (string * t) list
(** The Figure 13 ladder, in paper order (Baseline is {!Euno_bptree.Htm_bptree}). *)
