(** Streaming summary statistics (Welford's algorithm) with optional exact
    percentiles over the retained sample. *)

type t

val create : ?keep_sample:bool -> unit -> t
(** [keep_sample] (default true) retains observations for {!percentile}. *)

val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val variance : t -> float
(** Unbiased sample variance. *)

val stddev : t -> float
val min_value : t -> float
val max_value : t -> float

val percentile : t -> float -> float
(** Exact linear-interpolated percentile, e.g. [percentile t 99.0].
    Raises [Invalid_argument] if the sample was not kept. *)
