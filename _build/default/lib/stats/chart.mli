(** ASCII line charts for terminal-only environments.

    Renders benchmark series (e.g. throughput vs. skew or vs. threads) as
    a plotted grid with y-axis labels, interpolated connecting dots, one
    mark character per series, x tick labels and a legend.  Used by
    [euno_repro --charts]. *)

type series = { label : string; points : float list }

val render :
  ?width:int ->
  ?height:int ->
  title:string ->
  x_labels:string list ->
  series list ->
  string
(** All series must sample the same x positions (shorter series are drawn
    over their own prefix).  Raises [Invalid_argument] with fewer than two
    points. *)

val print :
  ?width:int ->
  ?height:int ->
  title:string ->
  x_labels:string list ->
  series list ->
  unit
