lib/stats/chart.mli:
