lib/stats/summary.mli:
