lib/stats/table.mli:
