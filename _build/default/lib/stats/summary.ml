(* Streaming summary statistics (Welford) plus exact percentiles over a
   retained sample, used by the harness for latency and ratio reporting. *)

type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable minv : float;
  mutable maxv : float;
  mutable sample : float list; (* all observations, for exact percentiles *)
  keep_sample : bool;
}

let create ?(keep_sample = true) () =
  {
    n = 0;
    mean = 0.0;
    m2 = 0.0;
    minv = infinity;
    maxv = neg_infinity;
    sample = [];
    keep_sample;
  }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.minv then t.minv <- x;
  if x > t.maxv then t.maxv <- x;
  if t.keep_sample then t.sample <- x :: t.sample

let count t = t.n
let mean t = if t.n = 0 then nan else t.mean

let variance t =
  if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)
let min_value t = if t.n = 0 then nan else t.minv
let max_value t = if t.n = 0 then nan else t.maxv

let percentile t p =
  if not t.keep_sample then invalid_arg "Summary.percentile: no sample kept";
  match t.sample with
  | [] -> nan
  | sample ->
      let arr = Array.of_list sample in
      Array.sort compare arr;
      let n = Array.length arr in
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = min (n - 1) (lo + 1) in
      let frac = rank -. float_of_int lo in
      (arr.(lo) *. (1.0 -. frac)) +. (arr.(hi) *. frac)
