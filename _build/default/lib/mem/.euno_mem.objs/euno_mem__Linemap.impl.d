lib/mem/linemap.ml: Hashtbl Memory
