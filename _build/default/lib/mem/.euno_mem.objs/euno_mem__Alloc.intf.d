lib/mem/alloc.mli: Linemap Memory
