lib/mem/epoch.mli:
