lib/mem/linemap.mli:
