lib/mem/memory.ml: Array
