lib/mem/memory.mli:
