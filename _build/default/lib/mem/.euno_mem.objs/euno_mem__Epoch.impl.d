lib/mem/epoch.ml: Array List
