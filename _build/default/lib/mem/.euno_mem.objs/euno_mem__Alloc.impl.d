lib/mem/alloc.ml: Array Hashtbl Linemap Memory
