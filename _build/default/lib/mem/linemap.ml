(* Side map classifying each cache line by what the allocator put there.
   Used by the HTM simulator to attribute conflict aborts to the paper's
   taxonomy (record data vs. shared metadata vs. lock words). *)

type kind =
  | Unknown
  | Record (* key/value slots of tree nodes *)
  | Node_meta (* per-node metadata: counts, versions, parent/next pointers *)
  | Tree_meta (* tree-wide metadata: root pointer, depth *)
  | Lock (* lock words, CCM bit vectors *)
  | Reserved (* Eunomia reserved-keys transient buffers *)
  | Scratch (* harness/benchmark scratch space *)

let kind_to_string = function
  | Unknown -> "unknown"
  | Record -> "record"
  | Node_meta -> "node-meta"
  | Tree_meta -> "tree-meta"
  | Lock -> "lock"
  | Reserved -> "reserved"
  | Scratch -> "scratch"

type t = { table : (int, kind) Hashtbl.t }

let create () = { table = Hashtbl.create 4096 }

let set_line t line kind = Hashtbl.replace t.table line kind

let set_range t ~addr ~words kind =
  let first = Memory.line_of_addr addr in
  let last = Memory.line_of_addr (addr + words - 1) in
  for line = first to last do
    set_line t line kind
  done

let kind_of_line t line =
  match Hashtbl.find_opt t.table line with Some k -> k | None -> Unknown
