(* Linearizability checking of concurrent key-value histories.

   Test harnesses record one event per completed operation — invocation
   and response timestamps in simulated cycles (exact, thanks to the
   deterministic machine) plus the operation and its observed result — and
   the checker searches for a linearization: a total order that respects
   real time (if op A responded before op B was invoked, A precedes B) and
   agrees with the sequential specification of a map.

   The search is Wing & Gong's algorithm with memoization on the
   (completed-set, map-state) pair; worst case exponential, fine for the
   small histories tests generate (tens of operations). *)

type op =
  | Get of int * int option (* key, observed result *)
  | Put of int * int
  | Delete of int * bool (* key, observed success *)

type event = {
  tid : int;
  invoked : int; (* simulated cycles *)
  responded : int;
  op : op;
}

let op_to_string = function
  | Get (k, Some v) -> Printf.sprintf "get %d = Some %d" k v
  | Get (k, None) -> Printf.sprintf "get %d = None" k
  | Put (k, v) -> Printf.sprintf "put %d %d" k v
  | Delete (k, ok) -> Printf.sprintf "delete %d = %b" k ok

(* A recorder for one run: threads append from the machine body. *)
type recorder = { mutable events : event list }

let recorder () = { events = [] }

let record r ~tid ~invoked ~responded op =
  r.events <- { tid; invoked; responded; op } :: r.events

let events r = List.rev r.events

module IntMap = Map.Make (Int)

(* Apply an operation to the model; None if the observed result
   contradicts the model state. *)
let apply state = function
  | Get (k, observed) ->
      if IntMap.find_opt k state = observed then Some state else None
  | Put (k, v) -> Some (IntMap.add k v state)
  | Delete (k, observed) ->
      if IntMap.mem k state = observed then Some (IntMap.remove k state)
      else None

(* Key for the memo table: which events are done plus the model state. *)
let memo_key done_mask state =
  (done_mask, IntMap.bindings state)

exception Found

(* Is the history linearizable with respect to the map specification,
   starting from [init]? *)
let linearizable ?(init = IntMap.empty) evs =
  let evs = Array.of_list evs in
  let n = Array.length evs in
  if n > 62 then invalid_arg "History.linearizable: history too long";
  let full = (1 lsl n) - 1 in
  let memo = Hashtbl.create 4096 in
  (* ev i may be linearized next (given pending set) iff no other pending
     event responded before its invocation. *)
  let minimal pending i =
    let rec go j =
      if j >= n then true
      else if
        j <> i
        && pending land (1 lsl j) <> 0
        && evs.(j).responded < evs.(i).invoked
      then false
      else go (j + 1)
    in
    go 0
  in
  let rec search done_mask state =
    if done_mask = full then raise Found;
    let key = memo_key done_mask state in
    if not (Hashtbl.mem memo key) then begin
      Hashtbl.add memo key ();
      let pending = full land lnot done_mask in
      for i = 0 to n - 1 do
        if pending land (1 lsl i) <> 0 && minimal pending i then
          match apply state evs.(i).op with
          | Some state' -> search (done_mask lor (1 lsl i)) state'
          | None -> ()
      done
    end
  in
  match search 0 init with () -> false | exception Found -> true

(* A human-readable dump for failing tests. *)
let to_string evs =
  String.concat "\n"
    (List.map
       (fun e ->
         Printf.sprintf "  t%d [%d, %d] %s" e.tid e.invoked e.responded
           (op_to_string e.op))
       evs)
