(** Linearizability checking of concurrent key-value histories.

    Record one event per completed operation (exact simulated-cycle
    invocation/response times plus the observed result), then search for a
    linearization with Wing & Gong's algorithm against a map
    specification.  Intended for test harnesses: exponential worst case,
    memoized, suitable for histories of a few dozen operations. *)

type op =
  | Get of int * int option  (** key, observed result *)
  | Put of int * int
  | Delete of int * bool  (** key, observed success *)

type event = { tid : int; invoked : int; responded : int; op : op }

val op_to_string : op -> string

type recorder

val recorder : unit -> recorder

val record : recorder -> tid:int -> invoked:int -> responded:int -> op -> unit
(** Append one completed operation (host-side; deterministic under the
    machine). *)

val events : recorder -> event list
(** All events in recording order. *)

val linearizable : ?init:int Map.Make(Int).t -> event list -> bool
(** Does a linearization exist?  [init] is the starting map state (e.g.
    the preloaded records).  Raises [Invalid_argument] beyond 62 events. *)

val to_string : event list -> string
(** Debug dump for failing tests. *)
