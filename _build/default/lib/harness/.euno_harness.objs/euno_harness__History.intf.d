lib/harness/history.mli: Int Map
