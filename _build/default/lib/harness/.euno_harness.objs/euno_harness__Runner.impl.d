lib/harness/runner.ml: Array Euno_htm Euno_mem Euno_sim Euno_stats Euno_workload Eunomia Kv List Option
