lib/harness/runner.mli: Euno_htm Euno_sim Euno_workload Kv
