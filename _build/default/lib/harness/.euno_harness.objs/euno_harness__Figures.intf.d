lib/harness/figures.mli:
