lib/harness/history.ml: Array Hashtbl Int List Map Printf String
