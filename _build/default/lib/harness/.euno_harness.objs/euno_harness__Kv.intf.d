lib/harness/kv.mli: Euno_htm Euno_mem Eunomia
