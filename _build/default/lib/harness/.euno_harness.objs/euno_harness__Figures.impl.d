lib/harness/figures.ml: Euno_htm Euno_stats Euno_workload Eunomia Filename Kv List Printf Runner
