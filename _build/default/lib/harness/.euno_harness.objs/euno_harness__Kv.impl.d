lib/harness/kv.ml: Euno_bptree Euno_htm Euno_masstree Eunomia Option
