(* Operation streams: a distribution plus a get/put/scan/delete mix.
   One instance per simulated thread (the paper's workloads are private to
   each thread, with intra-thread locality). *)

module Rng = Euno_sim.Rng

type op =
  | Get of int
  | Put of int * int (* key, value *)
  | Scan of int * int (* start key, count *)
  | Delete of int
  | Rmw of int * int (* read-modify-write: get then put (YCSB F) *)

let op_key = function
  | Get k | Put (k, _) | Scan (k, _) | Delete k | Rmw (k, _) -> k

type mix = { get : int; put : int; scan : int; delete : int; rmw : int }

let mix_total m = m.get + m.put + m.scan + m.delete + m.rmw

let read_write ~get_pct =
  { get = get_pct; put = 100 - get_pct; scan = 0; delete = 0; rmw = 0 }

let ycsb_default = read_write ~get_pct:50

(* The standard YCSB core workload mixes (A-F).  D's "latest" and E's
   "scan" character come from the distribution and the scan share; the
   paper itself uses A-style get/put mixes only. *)
let ycsb_a = read_write ~get_pct:50
let ycsb_b = read_write ~get_pct:95
let ycsb_c = read_write ~get_pct:100
let ycsb_d = read_write ~get_pct:95
let ycsb_e = { get = 5; put = 0; scan = 95; delete = 0; rmw = 0 }
let ycsb_f = { get = 50; put = 0; scan = 0; delete = 0; rmw = 50 }

type t = {
  dist : Dist.t;
  mix : mix;
  rng : Rng.t;
  scan_len : int;
  mutable seq : int; (* distinguishes successive put values *)
}

let create ?(scan_len = 16) ~dist ~mix ~seed () =
  if mix_total mix <> 100 then invalid_arg "Opgen.create: mix must sum to 100";
  { dist; mix; rng = Rng.create seed; scan_len; seq = 0 }

let next t =
  let key = Dist.next t.dist in
  let r = Rng.int t.rng 100 in
  if r < t.mix.get then Get key
  else if r < t.mix.get + t.mix.put then begin
    t.seq <- t.seq + 1;
    Put (key, (key * 1_000_003) + t.seq)
  end
  else if r < t.mix.get + t.mix.put + t.mix.scan then Scan (key, t.scan_len)
  else if r < t.mix.get + t.mix.put + t.mix.scan + t.mix.delete then Delete key
  else begin
    t.seq <- t.seq + 1;
    Rmw (key, (key * 1_000_003) + t.seq)
  end
