(** Per-thread operation streams: a key distribution plus an operation mix.

    Matches the paper's YCSB setup: 8-byte keys and values, a configurable
    get/put ratio (default 50/50), and streams private to each thread. *)

type op =
  | Get of int
  | Put of int * int
  | Scan of int * int
  | Delete of int
  | Rmw of int * int  (** read-modify-write: get then put (YCSB F) *)

val op_key : op -> int

type mix = { get : int; put : int; scan : int; delete : int; rmw : int }
(** Percentages; must sum to 100. *)

val mix_total : mix -> int

val read_write : get_pct:int -> mix
(** A get/put-only mix. *)

val ycsb_default : mix
(** 50% get / 50% put, the YCSB default the paper uses. *)

val ycsb_a : mix
(** 50/50 update/read. *)

val ycsb_b : mix
(** 95/5 read-mostly. *)

val ycsb_c : mix
(** read-only. *)

val ycsb_d : mix
(** 95/5 read-latest (pair with {!Dist.Latest}). *)

val ycsb_e : mix
(** 95% short scans. *)

val ycsb_f : mix
(** 50% read / 50% read-modify-write. *)

type t

val create : ?scan_len:int -> dist:Dist.t -> mix:mix -> seed:int -> unit -> t

val next : t -> op
