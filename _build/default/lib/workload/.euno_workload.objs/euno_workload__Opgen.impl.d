lib/workload/opgen.ml: Dist Euno_sim
