lib/workload/opgen.mli: Dist
