lib/workload/dist.ml: Euno_sim Float Hashtbl List Option Printf
