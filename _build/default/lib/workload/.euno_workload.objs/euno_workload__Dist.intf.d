lib/workload/dist.mli:
