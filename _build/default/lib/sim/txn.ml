(* Per-thread RTM transaction state: eager conflict detection (ownership is
   acquired at access time via the Line_table) with lazy versioning (stores
   are buffered and applied at commit, so an abort simply discards the
   buffer).  Allocations performed inside the transaction are recorded for
   rollback; frees are deferred until commit. *)

type t = {
  tid : int;
  start_clock : int;
  read_set : (int, unit) Hashtbl.t; (* lines *)
  write_set : (int, unit) Hashtbl.t; (* lines *)
  writes : (int, int) Hashtbl.t; (* addr -> buffered value *)
  mutable write_log : int list; (* addrs in first-write order *)
  mutable allocs : (Euno_mem.Linemap.kind * int * int) list;
  mutable frees : (Euno_mem.Linemap.kind * int * int) list;
  mutable reclassifies : (Euno_mem.Linemap.kind * Euno_mem.Linemap.kind * int) list;
  mutable reads : int; (* distinct lines in read set *)
  mutable written : int; (* distinct lines in write set *)
}

let create ~tid ~start_clock =
  {
    tid;
    start_clock;
    read_set = Hashtbl.create 64;
    write_set = Hashtbl.create 16;
    writes = Hashtbl.create 16;
    write_log = [];
    allocs = [];
    frees = [];
    reclassifies = [];
    reads = 0;
    written = 0;
  }

(* Returns true if the line is new to the read set. *)
let track_read t line =
  if Hashtbl.mem t.read_set line then false
  else begin
    Hashtbl.add t.read_set line ();
    t.reads <- t.reads + 1;
    true
  end

let track_write t line =
  if Hashtbl.mem t.write_set line then false
  else begin
    Hashtbl.add t.write_set line ();
    t.written <- t.written + 1;
    true
  end

let buffer_write t addr value =
  if not (Hashtbl.mem t.writes addr) then t.write_log <- addr :: t.write_log;
  Hashtbl.replace t.writes addr value

let buffered_value t addr = Hashtbl.find_opt t.writes addr

let in_read_set t line = Hashtbl.mem t.read_set line
let in_write_set t line = Hashtbl.mem t.write_set line

let iter_lines t f =
  Hashtbl.iter (fun line () -> f line) t.read_set;
  Hashtbl.iter
    (fun line () -> if not (Hashtbl.mem t.read_set line) then f line)
    t.write_set

(* Buffered writes in program order of first write; last value per addr. *)
let iter_writes t f =
  List.iter (fun addr -> f addr (Hashtbl.find t.writes addr))
    (List.rev t.write_log)

let record_alloc t kind addr words = t.allocs <- (kind, addr, words) :: t.allocs
let record_free t kind addr words = t.frees <- (kind, addr, words) :: t.frees

let record_reclassify t from_kind to_kind words =
  t.reclassifies <- (from_kind, to_kind, words) :: t.reclassifies
