(* SplitMix64: a small, fast, high-quality deterministic PRNG.  Every source
   of randomness in the simulator is an explicitly seeded instance so whole
   experiments replay bit-for-bit. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Non-negative 62-bit int. *)
let next t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  next t mod bound

let float t =
  (* 53 random bits mapped to [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let split t = create (Int64.to_int (next_int64 t))
