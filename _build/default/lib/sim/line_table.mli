(** Transactional cache-line ownership table.

    Models the coherence-protocol state real HTM uses for conflict
    detection: each line touched by an active transaction has at most one
    writer (M state) and a set of readers (S state).  Supports up to 62
    simulated hardware threads (reader sets are int bitmasks). *)

type t

val max_threads : int

val create : unit -> t

val add_reader : t -> int -> int -> unit
(** [add_reader t line tid]. *)

val set_writer : t -> int -> int -> unit

val writer_of : t -> int -> int option

val readers_except : t -> int -> int -> int list
(** All reader thread ids of a line except the given one. *)

val remove_thread : t -> int -> int -> unit
(** Drop a thread's ownership of one line, removing empty entries. *)

val clear : t -> unit

val size : t -> int
(** Number of lines currently owned by any transaction. *)
