(** Per-thread RTM transaction state.

    Eager conflict detection (ownership acquired at access time), lazy
    versioning (stores buffered until commit) — the combination used by
    Intel TSX, where the L1 cache holds speculative state and the coherence
    protocol detects conflicts as they happen. *)

type t = {
  tid : int;
  start_clock : int;
  read_set : (int, unit) Hashtbl.t;
  write_set : (int, unit) Hashtbl.t;
  writes : (int, int) Hashtbl.t;
  mutable write_log : int list;
  mutable allocs : (Euno_mem.Linemap.kind * int * int) list;
  mutable frees : (Euno_mem.Linemap.kind * int * int) list;
  mutable reclassifies : (Euno_mem.Linemap.kind * Euno_mem.Linemap.kind * int) list;
  mutable reads : int;
  mutable written : int;
}

val create : tid:int -> start_clock:int -> t

val track_read : t -> int -> bool
(** Add a line to the read set; true if it was not already present. *)

val track_write : t -> int -> bool

val buffer_write : t -> int -> int -> unit
val buffered_value : t -> int -> int option

val in_read_set : t -> int -> bool
val in_write_set : t -> int -> bool

val iter_lines : t -> (int -> unit) -> unit
(** Every line in either set, once. *)

val iter_writes : t -> (int -> int -> unit) -> unit
(** Buffered writes, first-write order, final value per address. *)

val record_alloc : t -> Euno_mem.Linemap.kind -> int -> int -> unit
val record_free : t -> Euno_mem.Linemap.kind -> int -> int -> unit
val record_reclassify : t -> Euno_mem.Linemap.kind -> Euno_mem.Linemap.kind -> int -> unit
