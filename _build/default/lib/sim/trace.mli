(** Event tracing for the simulated machine.

    A bounded ring of transaction lifecycle events (begin, commit, abort,
    conflict, completed operation), installed with
    {!Machine.set_tracer}.  Hooks fire only at transaction boundaries and
    conflicts, so tracing never perturbs simulated results. *)

type event =
  | Xbegin of { tid : int; clock : int }
  | Commit of { tid : int; clock : int; reads : int; writes : int }
  | Aborted of { tid : int; clock : int; code : Abort.code }
  | Conflict of {
      attacker : int;
      victim : int;
      line : int;
      kind : Euno_mem.Linemap.kind;
      clock : int;
    }
  | Op_done of { tid : int; clock : int; key : int }

val event_to_string : event -> string

type ring

val ring : capacity:int -> ring
(** Retains the most recent [capacity] events. *)

val push : ring -> event -> unit

val total : ring -> int
(** Events ever pushed (including evicted ones). *)

val events : ring -> event list
(** Retained events, oldest first. *)

val to_strings : ring -> string list

val for_thread : ring -> int -> event list
(** Retained events involving one thread (as owner, attacker or victim). *)
