(* Transactional ownership of cache lines.

   Only lines currently inside some active transaction's read or write set
   have an entry.  Readers are a bitmask over thread ids (the simulator
   supports up to 62 hardware threads); the writer is a single thread id or
   -1.  This mirrors how real HTM piggybacks on the coherence protocol:
   S-state sharers and a single M-state owner. *)

type entry = { mutable writer : int; mutable readers : int }

type t = { tbl : (int, entry) Hashtbl.t }

let max_threads = 62

let create () = { tbl = Hashtbl.create 4096 }

let find_or_add t line =
  match Hashtbl.find_opt t.tbl line with
  | Some e -> e
  | None ->
      let e = { writer = -1; readers = 0 } in
      Hashtbl.add t.tbl line e;
      e

let find t line = Hashtbl.find_opt t.tbl line

let add_reader t line tid =
  let e = find_or_add t line in
  e.readers <- e.readers lor (1 lsl tid)

let set_writer t line tid =
  let e = find_or_add t line in
  e.writer <- tid

let writer_of t line =
  match find t line with
  | Some e when e.writer >= 0 -> Some e.writer
  | Some _ | None -> None

(* Thread ids of all readers except [tid]. *)
let readers_except t line tid =
  match find t line with
  | None -> []
  | Some e ->
      let mask = e.readers land lnot (1 lsl tid) in
      if mask = 0 then []
      else begin
        let acc = ref [] in
        for i = max_threads - 1 downto 0 do
          if mask land (1 lsl i) <> 0 then acc := i :: !acc
        done;
        !acc
      end

let remove_thread t line tid =
  match find t line with
  | None -> ()
  | Some e ->
      if e.writer = tid then e.writer <- -1;
      e.readers <- e.readers land lnot (1 lsl tid);
      if e.writer = -1 && e.readers = 0 then Hashtbl.remove t.tbl line

let clear t = Hashtbl.reset t.tbl
let size t = Hashtbl.length t.tbl
