lib/sim/abort.ml: Euno_mem Printf
