lib/sim/machine.ml: Abort Array Cost Eff Effect Euno_mem Hashtbl Line_table List Rng Trace Txn
