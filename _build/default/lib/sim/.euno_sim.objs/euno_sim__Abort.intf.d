lib/sim/abort.mli: Euno_mem
