lib/sim/eff.ml: Abort Effect Euno_mem
