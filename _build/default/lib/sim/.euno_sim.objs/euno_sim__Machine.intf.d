lib/sim/machine.mli: Cost Euno_mem Trace
