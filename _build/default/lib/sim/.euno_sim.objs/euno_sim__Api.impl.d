lib/sim/api.ml: Eff Effect
