lib/sim/txn.ml: Euno_mem Hashtbl List
