lib/sim/line_table.ml: Hashtbl
