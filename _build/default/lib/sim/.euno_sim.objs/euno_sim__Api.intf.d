lib/sim/api.mli: Euno_mem
