lib/sim/rng.mli:
