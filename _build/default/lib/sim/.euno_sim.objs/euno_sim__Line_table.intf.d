lib/sim/line_table.mli:
