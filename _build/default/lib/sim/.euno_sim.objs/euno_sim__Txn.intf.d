lib/sim/txn.mli: Euno_mem Hashtbl
