lib/sim/trace.mli: Abort Euno_mem
