lib/sim/cost.mli:
