lib/sim/trace.ml: Abort Array Euno_mem List Printf
