lib/sim/eff.mli: Abort Effect Euno_mem
