lib/sim/cost.ml:
