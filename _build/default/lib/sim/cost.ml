(* Cycle-cost model of the simulated machine, loosely calibrated to the
   paper's testbed (two-socket Intel Xeon E5-2650 v3, 2.3 GHz, 64-byte
   lines, 32 KB L1D).  Absolute values only set the scale of reported
   throughput; the reproduced *shapes* come from the RTM conflict protocol. *)

type t = {
  freq_ghz : float; (* converts cycles to wall-clock ops/s *)
  cache_hit : int; (* access to a line warm in the local cache *)
  cache_miss : int; (* local LLC / DRAM fill *)
  remote_extra : int; (* additional cycles if line last written remotely *)
  write_extra : int; (* store vs. load extra *)
  cas : int; (* atomic RMW *)
  xbegin : int;
  xend : int;
  abort_penalty : int; (* pipeline flush + restart *)
  sockets : int;
  cache_entries_log2 : int; (* per-thread warmth cache, direct-mapped *)
  rs_capacity : int; (* max read-set lines before capacity abort *)
  ws_capacity : int; (* max write-set lines (L1-bounded, 32KB/64B) *)
  spurious_per_million : int; (* interrupt/GC-like aborts per tx access *)
  txn_cycle_limit : int; (* timer-interrupt abort for long transactions *)
}

let default =
  {
    freq_ghz = 2.3;
    cache_hit = 4;
    cache_miss = 170; (* LLC miss to local DRAM at 2.3 GHz *)
    remote_extra = 300; (* cross-socket HITM / dirty remote fill *)
    write_extra = 2;
    cas = 18;
    xbegin = 42;
    xend = 32;
    abort_penalty = 250;
    sockets = 2;
    cache_entries_log2 = 10;
    rs_capacity = 4096;
    ws_capacity = 512;
    spurious_per_million = 5;
    txn_cycle_limit = 500_000;
  }

(* A frictionless variant useful in unit tests: still detects conflicts but
   charges uniform unit costs so expected clocks are easy to compute. *)
let unit_costs =
  {
    default with
    cache_hit = 1;
    cache_miss = 1;
    remote_extra = 0;
    write_extra = 0;
    cas = 1;
    xbegin = 1;
    xend = 1;
    abort_penalty = 1;
    spurious_per_million = 0;
    txn_cycle_limit = max_int;
  }

let cycles_to_seconds t cycles = float_of_int cycles /. (t.freq_ghz *. 1e9)

let mops t ~ops ~cycles =
  if cycles = 0 then 0.0
  else float_of_int ops /. cycles_to_seconds t cycles /. 1e6
