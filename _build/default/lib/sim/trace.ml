(* Event tracing for the simulated machine: a bounded ring of transaction
   lifecycle events (begin / commit / abort / conflict / completed op)
   that answers the debugging question an HTM simulator always gets asked:
   "why did this transaction abort?".

   Install with Machine.set_tracer; the hooks fire only at transaction
   boundaries and conflicts, never on individual accesses, so tracing has
   negligible host cost and zero effect on simulated results. *)

type event =
  | Xbegin of { tid : int; clock : int }
  | Commit of { tid : int; clock : int; reads : int; writes : int }
  | Aborted of { tid : int; clock : int; code : Abort.code }
  | Conflict of {
      attacker : int;
      victim : int;
      line : int;
      kind : Euno_mem.Linemap.kind;
      clock : int; (* attacker's clock at the coherence request *)
    }
  | Op_done of { tid : int; clock : int; key : int }

let event_to_string = function
  | Xbegin { tid; clock } -> Printf.sprintf "[%10d] t%-2d xbegin" clock tid
  | Commit { tid; clock; reads; writes } ->
      Printf.sprintf "[%10d] t%-2d commit (rs=%d ws=%d)" clock tid reads writes
  | Aborted { tid; clock; code } ->
      Printf.sprintf "[%10d] t%-2d ABORT %s" clock tid (Abort.to_string code)
  | Conflict { attacker; victim; line; kind; clock } ->
      Printf.sprintf "[%10d] t%-2d dooms t%-2d on line %d (%s)" clock attacker
        victim line
        (Euno_mem.Linemap.kind_to_string kind)
  | Op_done { tid; clock; key } ->
      Printf.sprintf "[%10d] t%-2d op done (key %d)" clock tid key

(* Bounded ring buffer of the most recent events. *)
type ring = {
  buf : event option array;
  mutable next : int;
  mutable total : int;
}

let ring ~capacity =
  if capacity < 1 then invalid_arg "Trace.ring: capacity < 1";
  { buf = Array.make capacity None; next = 0; total = 0 }

let push r e =
  r.buf.(r.next) <- Some e;
  r.next <- (r.next + 1) mod Array.length r.buf;
  r.total <- r.total + 1

let total r = r.total

(* Oldest-first retained events. *)
let events r =
  let n = Array.length r.buf in
  let out = ref [] in
  for i = n - 1 downto 0 do
    match r.buf.((r.next + i) mod n) with
    | Some e -> out := e :: !out
    | None -> ()
  done;
  !out

let to_strings r = List.map event_to_string (events r)

(* Events selected by thread, oldest first. *)
let for_thread r tid =
  List.filter
    (function
      | Xbegin e -> e.tid = tid
      | Commit e -> e.tid = tid
      | Aborted e -> e.tid = tid
      | Conflict e -> e.attacker = tid || e.victim = tid
      | Op_done e -> e.tid = tid)
    (events r)
