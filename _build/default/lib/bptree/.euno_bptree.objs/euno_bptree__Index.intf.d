lib/bptree/index.mli: Euno_mem Layout
