lib/bptree/layout.ml: Euno_mem
