lib/bptree/layout.mli:
