lib/bptree/lock_bptree.ml: Bptree Euno_sim Euno_sync
