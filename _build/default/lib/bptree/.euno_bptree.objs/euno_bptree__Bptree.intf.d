lib/bptree/bptree.mli: Euno_mem
