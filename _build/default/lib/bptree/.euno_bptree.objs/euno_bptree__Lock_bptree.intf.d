lib/bptree/lock_bptree.mli: Bptree Euno_mem
