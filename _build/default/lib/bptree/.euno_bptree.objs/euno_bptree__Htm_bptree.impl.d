lib/bptree/htm_bptree.ml: Bptree Euno_htm Euno_sim
