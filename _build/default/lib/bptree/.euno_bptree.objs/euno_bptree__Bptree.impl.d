lib/bptree/bptree.ml: Euno_mem Euno_sim Index Layout List Printf
