lib/bptree/index.ml: Euno_mem Euno_sim Layout List Printf
