lib/bptree/htm_bptree.mli: Bptree Euno_htm Euno_mem
