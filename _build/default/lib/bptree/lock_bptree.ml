(* The coarse-grained baseline: every operation under one global spinlock,
   no HTM at all.  This is the lower bound that motivates lock elision —
   Htm_bptree is exactly this tree with the lock elided — and the classic
   flat line in scalability plots. *)

module Api = Euno_sim.Api
module Spinlock = Euno_sync.Spinlock

type t = { tree : Bptree.t; lock : int }

let create ~fanout ~map () =
  { tree = Bptree.create ~fanout ~map (); lock = Spinlock.alloc () }

let of_tree tree = { tree; lock = Spinlock.alloc () }

let tree t = t.tree

let get t key =
  Api.op_key key;
  Spinlock.with_lock t.lock (fun () -> Bptree.get t.tree key)

let put t key value =
  Api.op_key key;
  Spinlock.with_lock t.lock (fun () -> Bptree.put t.tree key value)

let delete t key =
  Api.op_key key;
  Spinlock.with_lock t.lock (fun () -> Bptree.delete t.tree key)

let scan t ~from ~count =
  Api.op_key from;
  Spinlock.with_lock t.lock (fun () -> Bptree.scan t.tree ~from ~count)
