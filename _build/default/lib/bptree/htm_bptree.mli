(** The HTM-B+Tree baseline: one monolithic RTM region per operation
    (paper Section 2.2, Algorithm 1), as adopted by DBX and DrTM.

    Thread-safe on the simulated machine.  Operations declare their target
    key ({!Euno_sim.Api.op_key}) so conflict aborts are classified per the
    paper's taxonomy. *)

type t

val create :
  ?policy:Euno_htm.Htm.policy ->
  fanout:int ->
  map:Euno_mem.Linemap.t ->
  unit ->
  t

val of_tree : ?policy:Euno_htm.Htm.policy -> Bptree.t -> t
(** Wrap an existing (e.g. preloaded) tree. *)

val tree : t -> Bptree.t
(** The underlying tree, for single-threaded inspection in tests. *)

val get : t -> int -> int option
val put : t -> int -> int -> unit
val delete : t -> int -> bool
val scan : t -> from:int -> count:int -> (int * int) list
