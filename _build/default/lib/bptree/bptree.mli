(** Conventional B+Tree over simulated memory.

    Sorted consecutive keys per node, chained leaves, split propagation, and
    lazy deletion (no eager rebalance).  The code is sequential: make it
    concurrent by wrapping operations, e.g. in one monolithic RTM region
    ({!Htm_bptree} — the DBX-style baseline) or under a lock.  All memory
    accesses go through {!Euno_sim.Api} and must run on a machine. *)

type t

exception Invariant of string

val create : fanout:int -> map:Euno_mem.Linemap.t -> unit -> t
(** Allocate an empty tree (root is an empty leaf).  Must run on the
    machine.  [map] is the machine's linemap; leaf key/value lines are
    re-tagged [Record] so conflict classification works. *)

val bulk_load :
  ?fill:float ->
  fanout:int ->
  map:Euno_mem.Linemap.t ->
  (int * int) list ->
  t
(** Build a tree from sorted, distinct records: leaves packed to [fill]
    (default 0.7, the natural steady-state fill) of the fanout, index built bottom-up.  The YCSB load
    phase; single-threaded. *)

val fanout : t -> int
val root : t -> int
val depth : t -> int

val get : t -> int -> int option
val put : t -> int -> int -> unit
val delete : t -> int -> bool

val scan : t -> from:int -> count:int -> (int * int) list
(** Up to [count] records with key >= [from], in key order. *)

val find_leaf : t -> int -> int
(** Leaf node covering a key (exposed for the HTM baseline's analysis and
    for tests). *)

val to_list : t -> (int * int) list
(** All records in key order (test helper; walks the whole tree). *)

val size : t -> int

(** Structural statistics (single-threaded inspection). *)
type tree_stats = {
  st_depth : int;
  st_internals : int;
  st_leaves : int;
  st_records : int;
  st_avg_leaf_fill : float;
}

val stats : t -> tree_stats

val check_invariants : t -> unit
(** Raise {!Invariant} if any structural invariant is violated: per-node
    sortedness, separator bounds, parent pointers, uniform leaf depth,
    fanout bounds, complete and ordered leaf chain. *)
