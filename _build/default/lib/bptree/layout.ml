(* Word-level layout of conventional B+Tree nodes in simulated memory.

   The layout mirrors what a C++ implementation does in DRAM: a header
   line of metadata, then the keys stored *sorted and consecutive* —
   exactly the arrangement whose cache-line sharing causes the false
   conflicts analyzed in Section 2.3 of the paper. *)

module Memory = Euno_mem.Memory

let pad_lines words = (words + Memory.line_words - 1) / Memory.line_words * Memory.line_words

(* Common header offsets (both node types). *)
let off_tag = 0
let off_nkeys = 1
let off_parent = 2

(* Internal-only *)
let off_level = 3

(* Leaf-only *)
let off_next = 3
let off_version = 4

let tag_internal = 0
let tag_leaf = 1

type t = {
  fanout : int;
  header_words : int;
  keys_off : int; (* internal nodes: separator keys *)
  children_off : int; (* internal: fanout+1 child pointers *)
  records_off : int; (* leaf: interleaved (key, value) records *)
  internal_words : int;
  leaf_words : int;
}

let make ~fanout =
  if fanout < 4 || fanout land 1 <> 0 then
    invalid_arg "Layout.make: fanout must be even and >= 4";
  let header_words = Memory.line_words in
  let keys_off = header_words in
  let keys_words = pad_lines fanout in
  let children_off = keys_off + keys_words in
  let records_off = header_words in
  {
    fanout;
    header_words;
    keys_off;
    children_off;
    records_off;
    internal_words = children_off + pad_lines (fanout + 1);
    (* Leaves store records as consecutive interleaved (key, value) pairs —
       four 16-byte records per cache line, the conventional layout whose
       false sharing Section 2.3 analyzes: a search reads the very lines an
       update writes. *)
    leaf_words = records_off + pad_lines (2 * fanout);
  }

(* Field addresses given a node base address. *)
let tag node = node + off_tag
let nkeys node = node + off_nkeys
let parent node = node + off_parent
let level node = node + off_level
let next node = node + off_next
let version node = node + off_version
let key l node i = node + l.keys_off + i
let child l node i = node + l.children_off + i

(* Leaf record accessors (interleaved layout). *)
let record_key l node i = node + l.records_off + (2 * i)
let record_value l node i = node + l.records_off + (2 * i) + 1

(* Tree-wide metadata line (kind Tree_meta). *)
let meta_root = 0
let meta_depth = 1 (* number of levels, 1 = root is a leaf *)
let meta_words = Memory.line_words
