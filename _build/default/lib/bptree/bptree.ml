(* Conventional B+Tree over simulated memory.

   Internal nodes come from the shared Index; leaves store sorted key/value
   pairs consecutively and are chained for range scans.  The code is plain
   sequential logic written against Euno_sim.Api: callers decide how to make
   it atomic — the HTM-B+Tree baseline wraps whole operations in one RTM
   region (Htm_bptree); unit tests run it single-threaded.

   Deletion removes in place without rebalancing (the lazy scheme of Sen &
   Tarjan adopted by the paper); underfull or empty leaves are tolerated. *)

module Api = Euno_sim.Api
module Linemap = Euno_mem.Linemap
module L = Layout

type t = { idx : Index.t }

let null = 0

(* ---------- allocation ---------- *)

let alloc_leaf ~(layout : L.t) ~map =
  let node = Api.alloc ~kind:Linemap.Node_meta ~words:layout.L.leaf_words in
  (* The header line stays Node_meta; record lines hold record data. *)
  Linemap.set_range map
    ~addr:(node + layout.L.records_off)
    ~words:(layout.L.leaf_words - layout.L.records_off)
    Linemap.Record;
  Api.reclassify ~from_kind:Linemap.Node_meta ~to_kind:Linemap.Record
    ~words:(layout.L.leaf_words - layout.L.records_off);
  Api.write (L.tag node) L.tag_leaf;
  node

let create ~fanout ~map () =
  let layout = L.make ~fanout in
  let root = alloc_leaf ~layout ~map in
  { idx = Index.create ~fanout ~map ~root () }

(* Split a sorted record list into leaf-sized chunks (at most [per_leaf],
   never a lone trailing record when it can be avoided). *)
let chunk_records per_leaf records =
  let rec go acc current n = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | r :: rest when n < per_leaf -> go acc (r :: current) (n + 1) rest
    | rest -> go (List.rev current :: acc) [] 0 rest
  in
  go [] [] 0 records

(* Bulk load sorted, distinct records into a fresh tree: leaves are packed
   to [fill] of the fanout and the index is built bottom-up (single-
   threaded; the YCSB load phase). *)
let bulk_load ?(fill = 0.7) ~fanout ~map records =
  let layout = L.make ~fanout in
  let per_leaf =
    max 1 (min fanout (int_of_float (fill *. float_of_int fanout)))
  in
  let make_leaf chunk =
    let leaf = alloc_leaf ~layout ~map in
    List.iteri
      (fun i (k, v) ->
        Api.write (L.record_key layout leaf i) k;
        Api.write (L.record_value layout leaf i) v)
      chunk;
    Api.write (L.nkeys leaf) (List.length chunk);
    (fst (List.hd chunk), leaf)
  in
  match records with
  | [] -> create ~fanout ~map ()
  | _ ->
      let leaves = List.map make_leaf (chunk_records per_leaf records) in
      (* chain the leaves *)
      let rec chain = function
        | (_, a) :: ((_, b) :: _ as rest) ->
            Api.write (L.next a) b;
            chain rest
        | [ _ ] | [] -> ()
      in
      chain leaves;
      let idx = Index.create ~fanout ~map ~root:(snd (List.hd leaves)) () in
      Index.build_levels idx leaves;
      { idx }

let layout t = t.idx.Index.layout
let root t = Index.root t.idx
let depth t = Index.depth t.idx
let fanout t = (layout t).L.fanout
let find_leaf t key = Index.find_leaf t.idx key

(* First record index with key >= [key] among a leaf's [n] sorted records.
   Linear scan, as in the paper-era implementations (small nodes favour a
   sequential sweep over binary search). *)
let lower_bound t leaf n key =
  let lay = layout t in
  let rec go i =
    if i >= n || Api.read (L.record_key lay leaf i) >= key then i
    else go (i + 1)
  in
  go 0

(* ---------- search ---------- *)

let get t key =
  let leaf = find_leaf t key in
  let n = Api.read (L.nkeys leaf) in
  let i = lower_bound t leaf n key in
  if i < n && Api.read (L.record_key (layout t) leaf i) = key then
    Some (Api.read (L.record_value (layout t) leaf i))
  else None

(* ---------- insertion ---------- *)

let leaf_insert_at t leaf n i key value =
  let lay = layout t in
  for j = n downto i + 1 do
    Api.write (L.record_key lay leaf j) (Api.read (L.record_key lay leaf (j - 1)));
    Api.write (L.record_value lay leaf j) (Api.read (L.record_value lay leaf (j - 1)))
  done;
  Api.write (L.record_key lay leaf i) key;
  Api.write (L.record_value lay leaf i) value;
  Api.write (L.nkeys leaf) (n + 1)

(* Split a full leaf; returns the new right sibling. *)
let split_leaf t leaf =
  let lay = layout t in
  let f = lay.L.fanout in
  let mid = f / 2 in
  let right = alloc_leaf ~layout:lay ~map:t.idx.Index.map in
  for j = 0 to f - mid - 1 do
    Api.write (L.record_key lay right j) (Api.read (L.record_key lay leaf (mid + j)));
    Api.write (L.record_value lay right j) (Api.read (L.record_value lay leaf (mid + j)))
  done;
  Api.write (L.nkeys leaf) mid;
  Api.write (L.nkeys right) (f - mid);
  Api.write (L.next right) (Api.read (L.next leaf));
  Api.write (L.next leaf) right;
  Api.write (L.parent right) (Api.read (L.parent leaf));
  (* Node version: the shared metadata bumped on structural change. *)
  Api.write (L.version leaf) (Api.read (L.version leaf) + 1);
  let sep = Api.read (L.record_key lay right 0) in
  Index.insert_into_parent t.idx leaf sep right;
  right

(* Put: update in place if present, else insert, splitting as needed
   (Algorithm 1 lines 10-19). *)
let put t key value =
  let lay = layout t in
  let leaf = find_leaf t key in
  let n = Api.read (L.nkeys leaf) in
  let i = lower_bound t leaf n key in
  if i < n && Api.read (L.record_key lay leaf i) = key then
    Api.write (L.record_value lay leaf i) value
  else if n < lay.L.fanout then leaf_insert_at t leaf n i key value
  else begin
    let right = split_leaf t leaf in
    let target = if key < Api.read (L.record_key lay right 0) then leaf else right in
    let tn = Api.read (L.nkeys target) in
    let ti = lower_bound t target tn key in
    leaf_insert_at t target tn ti key value
  end

(* ---------- deletion (lazy: no rebalance) ---------- *)

let delete t key =
  let lay = layout t in
  let leaf = find_leaf t key in
  let n = Api.read (L.nkeys leaf) in
  let i = lower_bound t leaf n key in
  if i < n && Api.read (L.record_key lay leaf i) = key then begin
    for j = i to n - 2 do
      Api.write (L.record_key lay leaf j) (Api.read (L.record_key lay leaf (j + 1)));
      Api.write (L.record_value lay leaf j) (Api.read (L.record_value lay leaf (j + 1)))
    done;
    Api.write (L.nkeys leaf) (n - 1);
    true
  end
  else false

(* ---------- range scan ---------- *)

let scan t ~from ~count =
  let lay = layout t in
  let rec collect leaf i n acc remaining =
    if remaining = 0 || leaf = null then List.rev acc
    else if i >= n then
      let nxt = Api.read (L.next leaf) in
      if nxt = null then List.rev acc
      else collect nxt 0 (Api.read (L.nkeys nxt)) acc remaining
    else begin
      let k = Api.read (L.record_key lay leaf i) in
      let v = Api.read (L.record_value lay leaf i) in
      collect leaf (i + 1) n ((k, v) :: acc) (remaining - 1)
    end
  in
  let leaf = find_leaf t from in
  let n = Api.read (L.nkeys leaf) in
  let i = lower_bound t leaf n from in
  collect leaf i n [] count

(* ---------- validation and inspection (tests) ---------- *)

let to_list t =
  let lay = layout t in
  let acc = ref [] in
  Index.iter_leaves t.idx (root t) (fun leaf ->
      let n = Api.read (L.nkeys leaf) in
      for i = 0 to n - 1 do
        acc := (Api.read (L.record_key lay leaf i), Api.read (L.record_value lay leaf i)) :: !acc
      done);
  List.rev !acc

exception Invariant = Index.Invariant

let fail_inv fmt = Printf.ksprintf (fun s -> raise (Invariant s)) fmt

(* Structural invariants: the shared index checks plus a leaf-fanout bound
   and a sorted, complete leaf chain. *)
let check_invariants t =
  let lay = layout t in
  let leaf_keys leaf =
    let n = Api.read (L.nkeys leaf) in
    if n > lay.L.fanout then fail_inv "leaf %d: overfull" leaf;
    List.init n (fun i -> Api.read (L.record_key lay leaf i))
  in
  Index.check_structure t.idx ~leaf_keys;
  let keys = List.map fst (to_list t) in
  let sorted = List.sort compare keys in
  if keys <> sorted then fail_inv "leaf chain out of order";
  let chained = scan t ~from:min_int ~count:max_int in
  if List.length chained <> List.length keys then
    fail_inv "leaf chain misses records (%d vs %d)" (List.length chained)
      (List.length keys)

let size t = List.length (to_list t)

(* Structural statistics (single-threaded inspection). *)
type tree_stats = {
  st_depth : int;
  st_internals : int;
  st_leaves : int;
  st_records : int;
  st_avg_leaf_fill : float; (* records / (leaves * fanout) *)
}

let stats t =
  let leaves = ref 0 and records = ref 0 in
  Index.iter_leaves t.idx (root t) (fun leaf ->
      incr leaves;
      records := !records + Api.read (L.nkeys leaf));
  {
    st_depth = depth t;
    st_internals = Index.count_internals t.idx (root t);
    st_leaves = !leaves;
    st_records = !records;
    st_avg_leaf_fill =
      float_of_int !records /. float_of_int (max 1 !leaves * fanout t);
  }
