(** Coarse-grained baseline: the conventional B+Tree under one global
    spinlock, no HTM.  {!Htm_bptree} is this tree with the lock elided;
    comparing the two shows what elision buys. *)

type t

val create : fanout:int -> map:Euno_mem.Linemap.t -> unit -> t
val of_tree : Bptree.t -> t
val tree : t -> Bptree.t

val get : t -> int -> int option
val put : t -> int -> int -> unit
val delete : t -> int -> bool
val scan : t -> from:int -> count:int -> (int * int) list
