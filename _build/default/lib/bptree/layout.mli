(** Word-level layout of conventional B+Tree nodes in simulated memory.

    Mirrors a C++ implementation's DRAM layout: one metadata header line,
    then — for internal nodes — sorted separator keys and child pointers
    in separate arrays, and — for leaves — records stored as consecutive
    interleaved (key, value) pairs, four 16-byte records per cache line.
    The interleaving is the conventional design whose false sharing
    Section 2.3 of the paper analyzes: a leaf search reads the very lines
    an update writes. *)

type t = {
  fanout : int;
  header_words : int;
  keys_off : int;
  children_off : int;
  records_off : int;
  internal_words : int;
  leaf_words : int;
}

val make : fanout:int -> t
(** Layout for an even fanout >= 4. *)

val pad_lines : int -> int
(** Round a word count up to whole cache lines. *)

(** {2 Header fields (word addresses given a node base)} *)

val tag : int -> int
val tag_internal : int
val tag_leaf : int

val nkeys : int -> int
val parent : int -> int

val level : int -> int
(** Internal nodes only. *)

val next : int -> int
(** Leaves only: the chain pointer. *)

val version : int -> int
(** Node version word (conventional-tree split counter; Masstree's OCC
    version; free for other uses). *)

(** {2 Payload fields} *)

val key : t -> int -> int -> int
(** Internal separator key [i]. *)

val child : t -> int -> int -> int
(** Internal child pointer [i] (fanout+1 of them). *)

val record_key : t -> int -> int -> int
(** Leaf record [i]'s key (interleaved layout). *)

val record_value : t -> int -> int -> int

(** {2 Tree-wide metadata line} *)

val meta_root : int
val meta_depth : int
val meta_words : int
