lib/htm/htm.ml: Euno_sim Euno_sync
