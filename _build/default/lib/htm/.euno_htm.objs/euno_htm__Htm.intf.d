lib/htm/htm.mli: Euno_sim
