lib/masstree/htm_masstree.mli: Euno_htm Euno_mem Masstree
