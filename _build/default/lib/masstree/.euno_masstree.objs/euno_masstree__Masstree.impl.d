lib/masstree/masstree.ml: Euno_bptree Euno_mem Euno_sim Euno_sync List Printf
