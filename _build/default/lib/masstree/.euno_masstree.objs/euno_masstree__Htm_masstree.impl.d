lib/masstree/htm_masstree.ml: Euno_htm Euno_sim Masstree
