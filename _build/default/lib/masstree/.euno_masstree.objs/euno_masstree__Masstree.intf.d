lib/masstree/masstree.mli: Euno_bptree Euno_mem
