(** HTM-Masstree: whole Masstree operations inside one RTM region with
    elided per-node locks (comparison tree (3) of the paper's Section 5.1). *)

type t

val create :
  ?policy:Euno_htm.Htm.policy ->
  fanout:int ->
  map:Euno_mem.Linemap.t ->
  unit ->
  t

val of_tree : ?policy:Euno_htm.Htm.policy -> Masstree.t -> t
(** Wrap an existing tree.  It must have been created with [elide = true]
    (e.g. {!Masstree.bulk_load} [~elide:true]). *)

val tree : t -> Masstree.t
(** The underlying tree, for single-threaded inspection in tests.  Note it
    was created with [elide = true]. *)

val get : t -> int -> int option
val put : t -> int -> int -> unit
val delete : t -> int -> bool
val scan : t -> from:int -> count:int -> (int * int) list
