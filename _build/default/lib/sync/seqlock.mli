(** Sequence lock on one simulated word (even = stable, odd = writing).

    The building block of the Masstree-style "before-and-after" version
    validation and of Eunomia's leaf sequence numbers. *)

val alloc : unit -> int
(** Fresh sequence word on its own line, initially 0 (stable). *)

val read_begin : int -> int
(** Spin until stable; return the observed even version. *)

val read_validate : int -> int -> bool
(** True if the version is unchanged since [read_begin]. *)

val write_begin : int -> unit
(** Acquire the writer side (version becomes odd). *)

val write_end : int -> unit
(** Release (version becomes even, one step up). *)

val read : int -> (unit -> 'a) -> 'a
(** Optimistic read section: retries [f] until it runs under a stable,
    unchanged version. [f] must be side-effect-free. *)

val version : int -> int
