(** Fair FIFO ticket lock (two simulated words on separate lines). *)

type t

val alloc : unit -> t
val acquire : t -> unit
val release : t -> unit
val with_lock : t -> (unit -> 'a) -> 'a
