(* Test-and-test-and-set spinlock on one simulated word with exponential
   backoff.  The word lives on its own cache line (the allocator
   line-aligns), so lock traffic never false-shares with data. *)

module Api = Euno_sim.Api

let unlocked = 0
let locked = 1

(* Allocate a fresh lock word (entire line, kind Lock). *)
let alloc () =
  Api.alloc ~kind:Euno_mem.Linemap.Lock ~words:Euno_mem.Memory.line_words

let try_acquire addr =
  Api.read addr = unlocked && Api.cas addr ~expected:unlocked ~desired:locked

let acquire addr =
  let b = Backoff.create () in
  let rec loop () =
    if Api.read addr = unlocked then begin
      if not (Api.cas addr ~expected:unlocked ~desired:locked) then begin
        Backoff.once b;
        loop ()
      end
    end
    else begin
      Backoff.once b;
      loop ()
    end
  in
  loop ()

let release addr = Api.write addr unlocked

let is_locked addr = Api.read addr = locked

let with_lock addr f =
  acquire addr;
  match f () with
  | v ->
      release addr;
      v
  | exception e ->
      release addr;
      raise e
