lib/sync/backoff.mli:
