lib/sync/spinlock.ml: Backoff Euno_mem Euno_sim
