lib/sync/spinlock.mli:
