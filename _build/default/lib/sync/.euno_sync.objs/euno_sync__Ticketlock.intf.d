lib/sync/ticketlock.mli:
