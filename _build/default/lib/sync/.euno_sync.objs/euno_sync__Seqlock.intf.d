lib/sync/seqlock.mli:
