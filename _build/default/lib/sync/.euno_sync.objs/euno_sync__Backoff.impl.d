lib/sync/backoff.ml: Euno_sim
