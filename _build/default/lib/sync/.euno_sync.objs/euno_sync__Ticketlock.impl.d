lib/sync/ticketlock.ml: Euno_mem Euno_sim
