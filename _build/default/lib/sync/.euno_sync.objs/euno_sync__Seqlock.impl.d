lib/sync/seqlock.ml: Euno_mem Euno_sim
