(** Bounded exponential backoff in simulated cycles, with deterministic
    per-thread jitter. *)

type t

val create : ?base:int -> ?cap:int -> unit -> t
(** Defaults: base 32 cycles, cap 4096 cycles. *)

val reset : t -> unit

val once : t -> unit
(** Spin for the current delay (plus jitter) and double it, up to the cap. *)
