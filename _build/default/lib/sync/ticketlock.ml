(* Fair FIFO ticket lock on two simulated words (next-ticket, now-serving),
   placed on separate cache lines to avoid ping-pong between enqueuers and
   the release path. *)

module Api = Euno_sim.Api
module Memory = Euno_mem.Memory

type t = { next : int; serving : int }

let alloc () =
  let next = Api.alloc ~kind:Euno_mem.Linemap.Lock ~words:Memory.line_words in
  let serving = Api.alloc ~kind:Euno_mem.Linemap.Lock ~words:Memory.line_words in
  { next; serving }

let acquire t =
  let ticket = Api.faa t.next 1 in
  let rec wait () =
    if Api.read t.serving <> ticket then begin
      Api.work 24;
      wait ()
    end
  in
  wait ()

let release t = Api.write t.serving (Api.read t.serving + 1)

let with_lock t f =
  acquire t;
  match f () with
  | v ->
      release t;
      v
  | exception e ->
      release t;
      raise e
