(* Bounded exponential backoff with deterministic jitter, expressed in
   simulated cycles.  Used by spin loops and by the HTM retry policy. *)

module Api = Euno_sim.Api

type t = { base : int; cap : int; mutable current : int }

let create ?(base = 32) ?(cap = 4096) () = { base; cap; current = base }

let reset t = t.current <- t.base

let once t =
  let jitter = Api.rand t.current in
  Api.work (t.current + jitter);
  t.current <- min t.cap (t.current * 2)
