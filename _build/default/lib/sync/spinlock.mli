(** Test-and-test-and-set spinlock on one simulated word.

    A lock is just a word address; {!alloc} returns one on a private cache
    line.  Any line-aligned word a data structure reserves (e.g. the
    Euno-B+Tree per-leaf split lock) works with the same operations. *)

val alloc : unit -> int
(** Fresh lock word on its own line (kind [Lock]), initially unlocked. *)

val try_acquire : int -> bool
val acquire : int -> unit
val release : int -> unit
val is_locked : int -> bool

val with_lock : int -> (unit -> 'a) -> 'a
(** Acquire, run, release (also on exception). *)
