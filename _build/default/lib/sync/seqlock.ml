(* Sequence lock on one simulated word: even = stable, odd = writer in
   critical section.  Readers retry until they observe the same even value
   before and after; writers must be externally serialized (or use
   [write_lock]). *)

module Api = Euno_sim.Api

let alloc () =
  Api.alloc ~kind:Euno_mem.Linemap.Lock ~words:Euno_mem.Memory.line_words

let read_begin addr =
  let rec stable () =
    let v = Api.read addr in
    if v land 1 = 1 then begin
      Api.work 16;
      stable ()
    end
    else v
  in
  stable ()

let read_validate addr v0 = Api.read addr = v0

let write_begin addr =
  let rec try_lock () =
    let v = Api.read addr in
    if v land 1 = 1 || not (Api.cas addr ~expected:v ~desired:(v + 1)) then begin
      Api.work 16;
      try_lock ()
    end
  in
  try_lock ()

let write_end addr = Api.write addr (Api.read addr + 1)

let read addr f =
  let rec attempt () =
    let v0 = read_begin addr in
    let result = f () in
    if read_validate addr v0 then result else attempt ()
  in
  attempt ()

let version addr = Api.read addr
