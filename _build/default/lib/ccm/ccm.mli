(** Conflict control module (paper Section 4.1, Figure 5) with the adaptive
    contention detector.

    Lives on a leaf's lock line, which is only ever accessed with atomic
    operations *outside* HTM regions: lock bits serialize same-key requests
    before they enter the lower region (removing true conflicts); mark bits
    are a one-hash Bloom filter that turns away requests for absent keys;
    the detector engages or bypasses the whole module per leaf depending on
    its recent conflict history. *)

type t

val words : int
(** Words the CCM occupies at its base address. *)

val max_slots : int

val make : base:int -> mode_addr:int -> capacity:int -> t
(** CCM over a pre-allocated block at [base] (on a Lock-kind line), with
    the adaptive mode word at [mode_addr] (callers co-locate it with data
    they already read, e.g. the leaf header).  The bit vectors get
    [min max_slots (2 * capacity)] slots, per the paper's sizing. *)

val nslots : t -> int

val hash : t -> int -> int
(** Slot of a key. *)

val lock_slot : t -> int -> unit
(** Acquire the advisory lock bit of a slot (spins with backoff). *)

val unlock_slot : t -> int -> unit

val marked : t -> int -> bool
(** Mark (Bloom) bit of a slot: false means the key is definitely absent. *)

val set_mark : t -> int -> unit
val clear_mark : t -> int -> unit

val marks_word : t -> int
(** Raw mark vector (for rebuilds during splits). *)

val write_marks : t -> int -> unit

val merge_marks : t -> int -> unit
(** OR a precomputed word into the mark vector (CAS loop; conservative —
    may add false positives, never false negatives). *)

type thresholds = {
  promote_conflicts : int;
  demote_conflicts : int;
  window_ops : int;
}

val default_thresholds : thresholds

val mode_bypass : int
val mode_engaged : int
(** Engaged, mark bits not yet rebuilt: lock bits apply, fast path does
    not. *)

val mode_ready : int
(** Engaged with trustworthy mark bits: the absent-key fast path applies. *)

val mode : t -> int
val engaged : t -> bool
(** Is the CCM currently engaged (mode > bypass)? *)

val set_ready : t -> unit
(** Declare the mark rebuild complete (CAS engaged->ready; loses quietly to
    a concurrent demotion). *)

type event = Promoted | Demoted | Unchanged
(** Mode transition reported by the detector.  On [Promoted] the caller
    must rebuild the leaf's mark bits (bypass-mode insertions do not
    maintain them) and then call {!set_ready}. *)

val note_conflict : t -> thresholds -> event
(** Record a lower-region conflict abort at this leaf; may engage the CCM. *)

val note_ops : t -> thresholds -> int -> event
(** Record [n] completed operations; on window boundaries decays the
    conflict counter and may disengage the CCM. *)
