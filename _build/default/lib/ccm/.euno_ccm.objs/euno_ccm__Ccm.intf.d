lib/ccm/ccm.mli:
