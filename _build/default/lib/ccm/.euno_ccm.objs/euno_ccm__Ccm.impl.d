lib/ccm/ccm.ml: Euno_sim Euno_sync
