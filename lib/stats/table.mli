(** Plain-text benchmark tables: content-sized columns, first column
    left-aligned, the rest right-aligned. *)

type t

val create : title:string -> headers:string list -> t
val add_row : t -> string list -> unit

val cell_f : float -> string
(** Two decimals. *)

val cell_f1 : float -> string
(** One decimal. *)

val cell_i : int -> string
val cell_pct : float -> string

val render : t -> string
val print : t -> unit

val to_csv : t -> string
(** Headers plus rows, minimally quoted. *)

val to_json : t -> Json.t
(** Title, headers, and one object per row keyed by header.  Cells remain
    strings (tables are formatting; typed records live in the harness's
    Report layer). *)

val slug : t -> string
(** Filesystem-safe name derived from the title. *)
