(* ASCII line charts for terminal-only environments: render benchmark
   series (throughput vs. skew, throughput vs. threads) as a plotted grid
   with axes, one mark per series.

   The x axis uses the positions of the sampled points (categorical
   spacing), which matches how the paper's figures place their ticks. *)

type series = { label : string; points : float list }

(* euno-lint: allow domain-shared-state: immutable in practice — a constant glyph table, only ever indexed *)
let marks = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&' |]

let nice_max v =
  (* Round the axis top up to 1/2/5 x 10^k. *)
  if v <= 0.0 then 1.0
  else begin
    let exp10 = Float.pow 10.0 (Float.of_int (int_of_float (Float.log10 v))) in
    let m = v /. exp10 in
    let m' =
      if m <= 1.0 then 1.0
      else if m <= 2.0 then 2.0
      else if m <= 2.5 then 2.5
      else if m <= 5.0 then 5.0
      else 10.0
    in
    m' *. exp10
  end

let render ?(width = 64) ?(height = 16) ~title ~x_labels series =
  let npoints =
    List.fold_left (fun acc s -> max acc (List.length s.points)) 0 series
  in
  if npoints < 2 then invalid_arg "Chart.render: need at least two points";
  let vmax =
    nice_max
      (List.fold_left
         (fun acc s -> List.fold_left Float.max acc s.points)
         0.0 series)
  in
  let grid = Array.make_matrix height width ' ' in
  let col_of i = i * (width - 1) / (npoints - 1) in
  let row_of v =
    let r = int_of_float (v /. vmax *. float_of_int (height - 1)) in
    height - 1 - min (height - 1) (max 0 r)
  in
  (* connect consecutive points with interpolated marks, then overdraw the
     sample points with the series mark *)
  List.iteri
    (fun si s ->
      let mark = marks.(si mod Array.length marks) in
      let pts = Array.of_list s.points in
      for i = 0 to Array.length pts - 2 do
        let c0 = col_of i and c1 = col_of (i + 1) in
        for c = c0 to c1 do
          let frac =
            if c1 = c0 then 0.0
            else float_of_int (c - c0) /. float_of_int (c1 - c0)
          in
          let v = pts.(i) +. (frac *. (pts.(i + 1) -. pts.(i))) in
          let r = row_of v in
          if grid.(r).(c) = ' ' then grid.(r).(c) <- '.'
        done
      done;
      Array.iteri
        (fun i v -> grid.(row_of v).(col_of i) <- mark)
        pts)
    series;
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (title ^ "\n");
  let y_label_width = 8 in
  Array.iteri
    (fun r row ->
      let v = vmax *. float_of_int (height - 1 - r) /. float_of_int (height - 1) in
      let label =
        if r = 0 || r = height - 1 || r = height / 2 then
          Printf.sprintf "%*.1f |" (y_label_width - 2) v
        else String.make (y_label_width - 1) ' ' ^ "|"
      in
      Buffer.add_string buf label;
      Buffer.add_string buf (String.init width (fun c -> row.(c)));
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf (String.make (y_label_width - 1) ' ' ^ "+");
  Buffer.add_string buf (String.make width '-');
  Buffer.add_char buf '\n';
  (* x tick labels: first, middle, last *)
  (match x_labels with
  | [] -> ()
  | labels ->
      let n = List.length labels in
      let first = List.nth labels 0 in
      let mid = List.nth labels (n / 2) in
      let last = List.nth labels (n - 1) in
      let line = Bytes.make (y_label_width + width) ' ' in
      let put col s =
        let start =
          max 0 (min (y_label_width + width - String.length s) (y_label_width + col - (String.length s / 2)))
        in
        String.iteri (fun i ch -> Bytes.set line (start + i) ch) s
      in
      put 0 first;
      put (col_of (n / 2)) mid;
      put (width - 1) last;
      Buffer.add_string buf (Bytes.to_string line);
      Buffer.add_char buf '\n');
  (* legend *)
  List.iteri
    (fun si s ->
      Buffer.add_string buf
        (Printf.sprintf "  %c %s\n" marks.(si mod Array.length marks) s.label))
    series;
  Buffer.contents buf

let print ?width ?height ~title ~x_labels series =
  print_string (render ?width ?height ~title ~x_labels series)
