(** Streaming summary statistics (Welford's algorithm) with optional exact
    percentiles over the retained sample. *)

type t

val create : ?keep_sample:bool -> unit -> t
(** [keep_sample] (default true) retains observations for {!percentile}. *)

val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val variance : t -> float
(** Unbiased sample variance. *)

val stddev : t -> float
val min_value : t -> float
val max_value : t -> float

val percentile : t -> float -> float
(** Exact linear-interpolated percentile, e.g. [percentile t 99.0].
    Raises [Invalid_argument] if the sample was not kept.  The sorted
    sample is cached across calls and invalidated by {!add}, so repeated
    percentile queries cost O(1) after the first. *)

val percentile_int : t -> float -> int
(** {!percentile} rounded to the nearest integer (0 on an empty sample):
    the shared definition for integer-valued series such as latencies. *)

val of_array : float array -> t
(** Summary of a whole array at once. *)

val to_json : ?percentiles:float list -> t -> Json.t
(** Count/mean/stddev/min/max plus the requested percentiles (default
    p50/p90/p99; omitted when no sample is kept). *)
