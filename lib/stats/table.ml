(* Plain-text table rendering for benchmark reports: fixed-width columns
   sized to content, a header rule, and right-aligned numeric cells. *)

type align = Left | Right

type t = {
  title : string;
  headers : string list;
  mutable rows : string list list; (* newest first *)
}

let create ~title ~headers = { title; headers; rows = [] }

let add_row t cells = t.rows <- cells :: t.rows

let cell_f f = Printf.sprintf "%.2f" f
let cell_f1 f = Printf.sprintf "%.1f" f
let cell_i i = string_of_int i
let cell_pct f = Printf.sprintf "%.1f%%" f

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some s -> max acc (String.length s)
        | None -> acc)
      0 all
  in
  let widths = List.init ncols width in
  let align_of c = if c = 0 then Left else Right in
  let pad align w s =
    let n = w - String.length s in
    if n <= 0 then s
    else
      match align with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  let line row =
    String.concat "  "
      (List.mapi
         (fun c cell -> pad (align_of c) (List.nth widths c) cell)
         row)
  in
  let rule =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (line t.headers ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  List.iter
    (fun row ->
      (* Short rows are padded with empty cells. *)
      let row =
        row @ List.init (max 0 (ncols - List.length row)) (fun _ -> "")
      in
      Buffer.add_string buf (line row ^ "\n"))
    rows;
  Buffer.contents buf

let print t = print_string (render t)

(* CSV with a minimal quoting rule (fields with commas or quotes). *)
let csv_field f =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') f then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' f) ^ "\""
  else f

let to_csv t =
  let line cells = String.concat "," (List.map csv_field cells) in
  String.concat "\n" (line t.headers :: List.rev_map line t.rows) ^ "\n"

(* JSON: one object per row, keyed by header (short rows padded with
   nulls, like the text renderer pads with blanks).  Cells stay strings:
   tables are a formatting artifact; typed records come from the Report
   layer. *)
let to_json t =
  let row_obj row =
    Json.Obj
      (List.mapi
         (fun i h ->
           (h, match List.nth_opt row i with
               | Some cell -> Json.Str cell
               | None -> Json.Null))
         t.headers)
  in
  Json.Obj
    [
      ("title", Json.Str t.title);
      ("headers", Json.List (List.map (fun h -> Json.Str h) t.headers));
      ("rows", Json.List (List.rev_map row_obj t.rows));
    ]

(* A filesystem-safe slug of the title, for CSV file names. *)
let slug t =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '_')
    (String.lowercase_ascii t.title)
