(* Streaming summary statistics (Welford) plus exact percentiles over a
   retained sample, used by the harness for latency and ratio reporting.

   The sorted sample backing percentile queries is cached and invalidated
   on [add]: figure rows ask for several percentiles of the same summary,
   and re-sorting the whole sample per query (O(n log n) each) was a
   measurable cost on the reporting path. *)

type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable minv : float;
  mutable maxv : float;
  mutable sample : float list; (* all observations, for exact percentiles *)
  mutable sorted : float array option; (* cache; invalidated by add *)
  keep_sample : bool;
}

let create ?(keep_sample = true) () =
  {
    n = 0;
    mean = 0.0;
    m2 = 0.0;
    minv = infinity;
    maxv = neg_infinity;
    sample = [];
    sorted = None;
    keep_sample;
  }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.minv then t.minv <- x;
  if x > t.maxv then t.maxv <- x;
  if t.keep_sample then begin
    t.sample <- x :: t.sample;
    t.sorted <- None
  end

let count t = t.n
let mean t = if t.n = 0 then nan else t.mean

let variance t =
  if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)
let min_value t = if t.n = 0 then nan else t.minv
let max_value t = if t.n = 0 then nan else t.maxv

let sorted_sample t =
  if not t.keep_sample then invalid_arg "Summary.percentile: no sample kept";
  match t.sorted with
  | Some arr -> arr
  | None ->
      let arr = Array.of_list t.sample in
      Array.sort compare arr;
      t.sorted <- Some arr;
      arr

(* Linear interpolation between closest ranks: the single percentile
   definition shared by every reporting path (Summary users and
   Runner's latency reduction alike). *)
let percentile t p =
  let arr = sorted_sample t in
  let n = Array.length arr in
  if n = 0 then nan
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let rank = Float.max 0.0 (Float.min rank (float_of_int (n - 1))) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    (arr.(lo) *. (1.0 -. frac)) +. (arr.(hi) *. frac)
  end

let percentile_int t p =
  let v = percentile t p in
  if Float.is_nan v then 0 else int_of_float (Float.round v)

let of_array values =
  let t = create () in
  Array.iter (fun v -> add t v) values;
  t

let to_json ?(percentiles = [ 50.0; 90.0; 99.0 ]) t =
  let base =
    [
      ("count", Json.Int t.n);
      ("mean", Json.Float (mean t));
      ("stddev", Json.Float (stddev t));
      ("min", Json.Float (min_value t));
      ("max", Json.Float (max_value t));
    ]
  in
  let pcts =
    if t.keep_sample && t.n > 0 then
      List.map
        (fun p ->
          (Printf.sprintf "p%g" p, Json.Float (percentile t p)))
        percentiles
    else []
  in
  Json.Obj (base @ pcts)
