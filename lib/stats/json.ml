(* Minimal JSON values: enough to emit and parse the telemetry documents
   the harness produces (schema-versioned result records, window series,
   Chrome trace files) without pulling an external dependency into the
   tree.  Emission is compact by default; [to_string ~pretty:true] indents
   for human inspection. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------- emission ---------- *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* JSON has no NaN/Infinity literals; map them to null rather than emit an
   invalid document. *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  let rec go indent v =
    let nl_indent n =
      if pretty then begin
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (2 * n) ' ')
      end
    in
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | Str s -> Buffer.add_string buf (escape_string s)
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            nl_indent (indent + 1);
            go (indent + 1) item)
          items;
        nl_indent indent;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            nl_indent (indent + 1);
            Buffer.add_string buf (escape_string k);
            Buffer.add_char buf ':';
            if pretty then Buffer.add_char buf ' ';
            go (indent + 1) item)
          fields;
        nl_indent indent;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* ---------- parsing ---------- *)

exception Parse_error of string

type parser_state = { src : string; mutable pos : int }

let fail_at st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | _ -> fail_at st (Printf.sprintf "expected '%c'" c)

let parse_literal st lit value =
  let n = String.length lit in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = lit
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail_at st (Printf.sprintf "expected '%s'" lit)

let parse_string_body st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail_at st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
        | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
        | Some 'r' -> advance st; Buffer.add_char buf '\r'; go ()
        | Some 'b' -> advance st; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance st; Buffer.add_char buf '\012'; go ()
        | Some '"' -> advance st; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance st; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance st; Buffer.add_char buf '/'; go ()
        | Some 'u' ->
            advance st;
            if st.pos + 4 > String.length st.src then
              fail_at st "truncated \\u escape";
            let hex = String.sub st.src st.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail_at st "bad \\u escape"
            in
            st.pos <- st.pos + 4;
            (* Encode the BMP code point as UTF-8. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | _ -> fail_at st "bad escape")
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek st with
    | Some c when is_num_char c ->
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  let text = String.sub st.src start (st.pos - start) in
  match int_of_string_opt text with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail_at st (Printf.sprintf "bad number '%s'" text))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail_at st "unexpected end of input"
  | Some 'n' -> parse_literal st "null" Null
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some '"' -> Str (parse_string_body st)
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let items = ref [] in
        let rec elems () =
          items := parse_value st :: !items;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              elems ()
          | Some ']' -> advance st
          | _ -> fail_at st "expected ',' or ']'"
        in
        elems ();
        List (List.rev !items)
      end
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws st;
          let k = parse_string_body st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          fields := (k, v) :: !fields;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members ()
          | Some '}' -> advance st
          | _ -> fail_at st "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail_at st (Printf.sprintf "unexpected character '%c'" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then
        Error (Printf.sprintf "trailing input at offset %d" st.pos)
      else Ok v
  | exception Parse_error msg -> Error msg

(* ---------- accessors ---------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let as_int = function Int i -> Some i | _ -> None

let as_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let as_string = function Str s -> Some s | _ -> None
let as_list = function List l -> Some l | _ -> None
let as_obj = function Obj fields -> Some fields | _ -> None
