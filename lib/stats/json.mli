(** Minimal JSON values for the telemetry layer: emit and parse without an
    external dependency.

    Emission produces valid, compact JSON (non-finite floats become
    [null]); {!of_string} accepts any standard document, which is enough to
    round-trip the harness's own output and to validate it in CI. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Compact by default; [~pretty:true] indents with two spaces. *)

val of_string : string -> (t, string) result
(** Parse one complete document; [Error] carries a message with the
    offending offset. *)

(** Accessors for validation code; all return [None] on shape mismatch. *)

val member : string -> t -> t option
val as_int : t -> int option

val as_float : t -> float option
(** Accepts [Int] too (JSON does not distinguish). *)

val as_string : t -> string option
val as_list : t -> t list option
val as_obj : t -> (string * t) list option
