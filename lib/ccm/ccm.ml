(* Conflict control module (paper Section 4.1, Figure 5) plus the adaptive
   contention detector.

   One CCM sits on a leaf's lock line (a cache line of kind Lock that is
   never touched inside an HTM region, so its CAS traffic cannot doom
   transactions).  It holds:

     - lock bits: fine-grained advisory locks, one per hash slot, that
       serialize concurrent requests to the same key *before* they enter
       the lower HTM region (eliminating true conflicts);
     - mark bits: a one-hash Bloom filter of present keys, letting requests
       for non-existent keys skip the leaf entirely;
     - the contention detector: a decaying conflict counter and a mode word
       that switches the leaf between engaged and bypass (adaptive
       concurrency control, Section 4.1).

   The vector length is twice the leaf capacity, as in the paper (space
   under 5%, false-positive rate under 6%). *)

module Api = Euno_sim.Api
module Sev = Euno_sim.Sev

(* Word offsets within the CCM's line-aligned block.  The mode word lives
   at a caller-chosen address instead (Eunomia puts it on the leaf header
   line, which every operation already reads for the seqno, so checking
   the mode costs no extra cache line). *)
let off_marks = 0
let off_locks = 1
let off_conflicts = 2
let off_ops = 3

let words = 4

type t = { base : int; mode_addr : int; nslots : int }

let max_slots = 62

let make ~base ~mode_addr ~capacity =
  let nslots = min max_slots (2 * capacity) in
  (* The mode word is a benign-race hint by design: operations read it
     plainly while the contention detector writes it plainly, and the
     protocol tolerates stale values (a wrong mode only costs a detour
     through the CCM or one extra conflict).  Register it so the race
     detector does not report it.  (No-op unless the sanitizer is armed;
     host-side, so marks made while preloading carry over.) *)
  Sev.mark_racy mode_addr;
  { base; mode_addr; nslots }

let nslots t = t.nslots

(* Multiplicative hash of a key to a slot (Figure 5's hash function). *)
let hash t key =
  let h = key * 0x9E3779B1 in
  (h lxor (h lsr 16)) land max_int mod t.nslots

(* ---------- bit-vector CAS helpers ---------- *)

let rec set_bit addr bit =
  let cur = Api.read addr in
  if cur land bit <> 0 then false
  else if Api.cas addr ~expected:cur ~desired:(cur lor bit) then true
  else set_bit addr bit

let rec clear_bit addr bit =
  let cur = Api.read addr in
  if cur land bit = 0 then ()
  else if Api.cas addr ~expected:cur ~desired:(cur land lnot bit) then ()
  else clear_bit addr bit

(* ---------- lock bits ---------- *)

(* Sanitizer identity of a slot lock: the lock word's address shifted to
   make room for the slot index (nslots <= 62 < 64), so every (leaf, slot)
   pair is a distinct lock. *)
let slot_lock_id t slot = ((t.base + off_locks) * 64) + slot

let lock_slot t slot =
  let addr = t.base + off_locks in
  let bit = 1 lsl slot in
  let b = Euno_sync.Backoff.create ~base:24 ~cap:2048 () in
  let rec loop () =
    if not (set_bit addr bit) then begin
      Euno_sync.Backoff.once b;
      loop ()
    end
  in
  loop ();
  if Sev.armed () then Api.san_note (Sev.Acquire (Sev.Slot, slot_lock_id t slot))

let unlock_slot t slot =
  (* Announce before the bit clears: once it does, the next holder's
     acquire note may precede ours in the event stream. *)
  if Sev.armed () then Api.san_note (Sev.Release (Sev.Slot, slot_lock_id t slot));
  clear_bit (t.base + off_locks) (1 lsl slot)

(* ---------- mark bits ---------- *)

let marked t slot = Api.read (t.base + off_marks) land (1 lsl slot) <> 0

let set_mark t slot = ignore (set_bit (t.base + off_marks) (1 lsl slot))
let clear_mark t slot = clear_bit (t.base + off_marks) (1 lsl slot)

let marks_word t = Api.read (t.base + off_marks)

let write_marks t word = Api.write (t.base + off_marks) word

(* OR a precomputed word into the mark vector.  Merging (rather than
   overwriting) can only add false positives, never false negatives, so it
   is safe against concurrent set_mark/clear_mark traffic. *)
let rec merge_marks t word =
  let cur = Api.read (t.base + off_marks) in
  if cur lor word = cur then ()
  else if Api.cas (t.base + off_marks) ~expected:cur ~desired:(cur lor word)
  then ()
  else merge_marks t word

(* ---------- adaptive contention detector ---------- *)

type thresholds = {
  promote_conflicts : int; (* conflicts in a window that engage the CCM *)
  demote_conflicts : int; (* conflicts in a window that disengage it *)
  window_ops : int; (* ops per decay window *)
}

let default_thresholds =
  { promote_conflicts = 3; demote_conflicts = 1; window_ops = 128 }

(* Adaptive mode of a leaf: 0 = bypass; 1 = engaged, mark bits being
   rebuilt; 2 = engaged and mark bits trustworthy.  Lock bits apply from
   mode 1; the absent-key fast path only from mode 2. *)
let mode_bypass = 0
let mode_engaged = 1
let mode_ready = 2

let mode t = Api.read t.mode_addr
let engaged t = mode t <> mode_bypass

(* Mark the rebuild complete — unless a demotion won the race (CAS from
   engaged to ready), in which case the marks stay untrusted. *)
let set_ready t =
  ignore (Api.cas t.mode_addr ~expected:mode_engaged ~desired:mode_ready)

type event = Promoted | Demoted | Unchanged
(* Mode transitions are reported to the caller: on Promoted the tree must
   rebuild this leaf's mark bits (bypass-mode insertions do not maintain
   them) and then call set_ready. *)

(* Record a lower-region conflict abort at this leaf.  Called outside any
   transaction.  Promotes the leaf to engaged mode once the recent-conflict
   count crosses the threshold. *)
let note_conflict t (th : thresholds) =
  let c = Api.faa (t.base + off_conflicts) 1 in
  if c + 1 >= th.promote_conflicts && not (engaged t) then begin
    Api.write t.mode_addr mode_engaged;
    Promoted
  end
  else Unchanged

(* Record completed operations (callers batch; [n] ops at once).  On window
   boundaries, decay the conflict counter and demote to bypass mode if the
   leaf has been quiet. *)
let note_ops t (th : thresholds) n =
  let prev = Api.faa (t.base + off_ops) n in
  if prev / th.window_ops <> (prev + n) / th.window_ops then begin
    let c = Api.read (t.base + off_conflicts) in
    Api.write (t.base + off_conflicts) (c / 2);
    if c / 2 < th.demote_conflicts && engaged t then begin
      Api.write t.mode_addr mode_bypass;
      Demoted
    end
    else if c / 2 >= th.promote_conflicts && not (engaged t) then begin
      Api.write t.mode_addr mode_engaged;
      Promoted
    end
    else Unchanged
  end
  else Unchanged
