open Parsetree
module SSet = Set.Make (String)

type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
  msg : string;
}

type file_unit = {
  fu_path : string;
  fu_ast : Parsetree.structure;
  fu_sim_pragma : bool;
}

let rule_names =
  [
    "determinism";
    "lock-paths";
    "san-release-order";
    "counter-ownership";
    "schema-drift";
    "domain-shared-state";
    "suppression";
  ]

(* ------------------------------------------------------------------ *)
(* Scope classification.  Path-scoped rules apply to the simulated     *)
(* world only: the harness/bin layer legitimately reads clocks, files  *)
(* and argv.  The pragma lets the fixture corpus opt in from test/.    *)
(* ------------------------------------------------------------------ *)

let sim_libs =
  [
    "sim";
    "mem";
    "htm";
    "sync";
    "ccm";
    "bptree";
    "eunomia";
    "masstree";
    "fault";
    "san";
    "dura";
  ]

(* Libraries that actually take simulated locks.  lib/san is excluded:
   its [acquire]/[release] are the race checker's *event handlers* for
   lock events, not lock operations. *)
let lock_libs = [ "sync"; "ccm"; "htm"; "bptree"; "eunomia"; "masstree" ]

let lib_of path =
  let rec go = function
    | "lib" :: d :: _ :: _ -> Some d
    | _ :: rest -> go rest
    | [] -> None
  in
  go (String.split_on_char '/' path)

let in_sim_scope fu =
  fu.fu_sim_pragma
  || match lib_of fu.fu_path with Some d -> List.mem d sim_libs | None -> false

let in_lock_scope fu =
  fu.fu_sim_pragma
  ||
  match lib_of fu.fu_path with Some d -> List.mem d lock_libs | None -> false

let in_counter_scope fu = fu.fu_sim_pragma || lib_of fu.fu_path <> None

(* ------------------------------------------------------------------ *)
(* Small AST helpers                                                   *)
(* ------------------------------------------------------------------ *)

let parts_of_lid lid = try Longident.flatten lid with _ -> []

let parts_of_fn e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> parts_of_lid txt
  | _ -> []

let strip_stdlib = function
  | "Stdlib" :: (_ :: _ as rest) -> rest
  | p -> p

let last_part = function
  | [] -> None
  | l -> Some (List.nth l (List.length l - 1))

let cnum e = e.pexp_loc.Location.loc_start.Lexing.pos_cnum

let mk fu loc rule msg =
  let p = loc.Location.loc_start in
  {
    file = fu.fu_path;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    rule;
    msg;
  }

let rec is_fun_literal e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_newtype (_, b) -> is_fun_literal b
  | _ -> false

let is_exception_case c =
  match c.pc_lhs.ppat_desc with Ppat_exception _ -> true | _ -> false

let iter_exprs f ast =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          f e;
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it ast

let iter_exprs_in_expr f e0 =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          f e;
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it e0

(* ------------------------------------------------------------------ *)
(* Rule: determinism                                                   *)
(* ------------------------------------------------------------------ *)

(* Record labels that are mutable, or whose declared type is a mutable
   container: comparing through such a field is the syntactic evidence
   we require before flagging a polymorphic compare (bare [compare] on
   immutable ints is pervasive and fine). *)
let mutable_labels ast =
  let labels = ref SSet.empty in
  let it =
    {
      Ast_iterator.default_iterator with
      type_declaration =
        (fun self td ->
          (match td.ptype_kind with
          | Ptype_record lds ->
              (* Only container-*typed* labels: a [mutable] scalar field
                 holds an immutable value, which is fine to compare. *)
              List.iter
                (fun ld ->
                  let container =
                    match ld.pld_type.ptyp_desc with
                    | Ptyp_constr ({ txt; _ }, _) -> (
                        match strip_stdlib (parts_of_lid txt) with
                        | [ "array" ] | [ "ref" ] | [ "bytes" ]
                        | [ "Bytes"; "t" ] | [ "Buffer"; "t" ]
                        | "Hashtbl" :: _ | "Queue" :: _ | "Stack" :: _ ->
                            true
                        | _ -> false)
                    | _ -> false
                  in
                  if container then labels := SSet.add ld.pld_name.txt !labels)
                lds
          | _ -> ());
          Ast_iterator.default_iterator.type_declaration self td);
    }
  in
  it.structure it ast;
  !labels

let det_forbidden ~is_rng parts =
  match strip_stdlib parts with
  | "Unix" :: _ ->
      Some "Unix.* reads OS state; simulated time comes from Machine.clock"
  | "Random" :: _ when not is_rng ->
      Some "Random.* is ambient unseeded state; draw from Euno_sim.Rng"
  | [ "Sys"; "time" ] ->
      Some "Sys.time reads the wall clock; use Machine.clock / Api.clock"
  | [ "Obj"; "magic" ] ->
      Some "Obj.magic defeats both the type system and the determinism audit"
  | _ -> None

let poly_op parts =
  match strip_stdlib parts with
  | [ "compare" ] -> Some "compare"
  | [ "=" ] -> Some "( = )"
  | [ "<>" ] -> Some "( <> )"
  | [ "Hashtbl"; "hash" ] -> Some "Hashtbl.hash"
  | _ -> None

(* Functions whose *result* is a fresh mutable container.  Element reads
   (Array.get — what [a.(i)] desugars to — length, etc.) return values,
   which are fine to compare. *)
let returns_container parts =
  match strip_stdlib parts with
  | [ "ref" ] -> true
  | [ "Array";
      ( "make" | "create_float" | "init" | "make_matrix" | "append"
      | "concat" | "sub" | "copy" | "of_list" | "of_seq" | "map" | "mapi" )
    ] ->
      true
  | [ "Bytes";
      ("make" | "init" | "create" | "copy" | "of_string" | "sub" | "cat"
      | "concat" | "empty")
    ] ->
      true
  | ("Hashtbl" | "Queue" | "Stack" | "Buffer") :: [ "create" ] -> true
  | _ -> false

let rec mutable_evidence labels e =
  match e.pexp_desc with
  | Pexp_array _ -> true
  | Pexp_field (_, { txt; _ }) -> (
      match last_part (parts_of_lid txt) with
      | Some n -> SSet.mem n labels
      | None -> false)
  | Pexp_apply (f, _) -> returns_container (parts_of_fn f)
  | Pexp_constraint (e, _) | Pexp_open (_, e) -> mutable_evidence labels e
  | _ -> false

let rule_determinism fu acc =
  if not (in_sim_scope fu) then acc
  else begin
    let is_rng = Filename.basename fu.fu_path = "rng.ml" in
    let labels = mutable_labels fu.fu_ast in
    let acc = ref acc in
    iter_exprs
      (fun e ->
        match e.pexp_desc with
        | Pexp_ident { txt; _ } -> (
            match det_forbidden ~is_rng (parts_of_lid txt) with
            | Some why ->
                acc :=
                  mk fu e.pexp_loc "determinism"
                    (Printf.sprintf "%s: %s"
                       (String.concat "." (parts_of_lid txt))
                       why)
                  :: !acc
            | None -> ())
        | Pexp_apply (f, args) -> (
            match poly_op (parts_of_fn f) with
            | Some op
              when List.exists
                     (fun (_, a) -> mutable_evidence labels a)
                     args ->
                acc :=
                  mk fu e.pexp_loc "determinism"
                    (Printf.sprintf
                       "polymorphic %s applied to a mutable structure: \
                        physical state leaks into comparison order; compare \
                        a projection of immutable fields instead"
                       op)
                  :: !acc
            | _ -> ())
        | _ -> ())
      fu.fu_ast;
    !acc
  end

(* ------------------------------------------------------------------ *)
(* Scope extraction (shared by lock-paths and san-release-order).      *)
(* A scope is one function body: analysis never crosses into a nested  *)
(* [fun]/[function] literal, which is its own scope.                   *)
(* ------------------------------------------------------------------ *)

let rec strip_funs e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, b) | Pexp_newtype (_, b) -> strip_funs b
  | _ -> e

let scopes_of ast =
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let add e =
    let key =
      (e.pexp_loc.Location.loc_start.Lexing.pos_cnum,
       e.pexp_loc.Location.loc_end.Lexing.pos_cnum)
    in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      out := e :: !out
    end
  in
  let consider e =
    match e.pexp_desc with
    | Pexp_fun _ | Pexp_newtype _ ->
        let inner = strip_funs e in
        (* [function]-cases are added when the iterator reaches them *)
        (match inner.pexp_desc with Pexp_function _ -> () | _ -> add inner)
    | Pexp_function cases ->
        List.iter
          (fun c ->
            let inner = strip_funs c.pc_rhs in
            match inner.pexp_desc with
            | Pexp_function _ -> ()
            | _ -> add inner)
          cases
    | _ -> ()
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          consider e;
          Ast_iterator.default_iterator.expr self e);
      structure_item =
        (fun self si ->
          (match si.pstr_desc with
          | Pstr_value (_, vbs) ->
              List.iter
                (fun vb ->
                  if not (is_fun_literal vb.pvb_expr) then add vb.pvb_expr)
                vbs
          | Pstr_eval (e, _) -> if not (is_fun_literal e) then add e
          | _ -> ());
          Ast_iterator.default_iterator.structure_item self si);
    }
  in
  it.structure it ast;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Rule: lock-paths                                                    *)
(* ------------------------------------------------------------------ *)

let acq_names = [ "acquire"; "acquire_bounded"; "lock_slot"; "lock_node"; "write_begin" ]

let rel_base =
  [ "release"; "unlock"; "unlock_slot"; "unlock_node"; "write_end" ]

(* File-local release closure: extend the release vocabulary with every
   let-bound function whose body (transitively) calls a release — the
   [let leave () = Spinlock.release ...] idiom in lib/htm. *)
let rel_closure ast =
  let bindings = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      value_binding =
        (fun self vb ->
          (match vb.pvb_pat.ppat_desc with
          | Ppat_var { txt; _ } -> bindings := (txt, vb.pvb_expr) :: !bindings
          | _ -> ());
          Ast_iterator.default_iterator.value_binding self vb);
    }
  in
  it.structure it ast;
  let rels = ref (SSet.of_list rel_base) in
  let contains_rel body =
    let found = ref false in
    iter_exprs_in_expr
      (fun e ->
        match e.pexp_desc with
        | Pexp_apply (f, _) -> (
            match last_part (parts_of_fn f) with
            | Some n when SSet.mem n !rels -> found := true
            | _ -> ())
        | _ -> ())
      body;
    !found
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (n, body) ->
        if (not (SSet.mem n !rels)) && contains_rel body then begin
          rels := SSet.add n !rels;
          changed := true
        end)
      !bindings
  done;
  !rels

(* Calls that cannot raise inside a held region under the simulator's
   fault model: the Api primitives (except [alloc], which direct
   injectors may fail — see lib/fault/plan.mli), backoff, sanitizer
   gating, and a handful of pure stdlib one-worders/operators.
   Everything else — including local closures and explicit raises — is
   treated as a potential exception source. *)
let safe_call parts =
  match strip_stdlib parts with
  | [] -> false
  | [ "Api"; "alloc" ] -> false
  | "Api" :: _ | "Backoff" :: _ | "Sev" :: _ -> true
  | [ ("ignore" | "not" | "incr" | "decr" | "ref" | "min" | "max" | "fst"
      | "snd" | "succ" | "pred" | "abs") ] ->
      true
  | [ op ] ->
      (* operators: + - land lsl etc. never raise (/ and mod can, on
         zero — accepted as out of scope for this lint) *)
      String.length op > 0
      &&
      let c = op.[0] in
      not ((c >= 'a' && c <= 'z') || c = '_')
  | _ -> false

type acq_site = {
  a_loc : Location.t;
  a_name : string;
  a_cnum : int;
  a_cond : bool;  (** acquire sits under a branch/match arm *)
  a_k : bool;  (** continuation guarantees a release on every value path *)
}

let analyze_lock_scope ~rels fu scope acc =
  let acqs = ref [] in
  let rel_after = ref [] in
  let risky = ref [] in
  let handler_rel = ref false in
  let value_cases cs = List.filter (fun c -> not (is_exception_case c)) cs in
  let exn_cases cs = List.filter is_exception_case cs in
  (* [g e]: evaluating [e] to a value guarantees a release call. *)
  let rec g e =
    match e.pexp_desc with
    | Pexp_apply (f, args) -> (
        match last_part (parts_of_fn f) with
        | Some n when SSet.mem n rels -> true
        | _ ->
            List.exists (fun (_, a) -> (not (is_fun_literal a)) && g a) args)
    | Pexp_sequence (a, b) -> g a || g b
    | Pexp_let (_, vbs, body) ->
        List.exists
          (fun vb -> (not (is_fun_literal vb.pvb_expr)) && g vb.pvb_expr)
          vbs
        || g body
    | Pexp_ifthenelse (c, t, eo) ->
        g c || (g t && match eo with Some e -> g e | None -> false)
    | Pexp_match (sc, cases) ->
        g sc
        ||
        let vcs = value_cases cases in
        vcs <> [] && List.for_all (fun c -> g c.pc_rhs) vcs
    | Pexp_try (b, _) -> g b
    | Pexp_constraint (e, _) | Pexp_open (_, e) -> g e
    | _ -> false
  in
  let rec scan e ~k ~cond ~in_handler =
    let sub ?(k = k) ?(cond = cond) ?(in_handler = in_handler) e =
      scan e ~k ~cond ~in_handler
    in
    match e.pexp_desc with
    | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ | Pexp_lazy _ -> ()
    | Pexp_apply (f, args) ->
        let parts = parts_of_fn f in
        (match last_part parts with
        | Some n when SSet.mem n rels ->
            rel_after := cnum e :: !rel_after;
            if in_handler then handler_rel := true
        | Some n when List.mem n acq_names ->
            acqs :=
              { a_loc = e.pexp_loc; a_name = n; a_cnum = cnum e; a_cond = cond; a_k = k }
              :: !acqs
        | _ -> if (not in_handler) && not (safe_call parts) then risky := cnum e :: !risky);
        List.iter (fun (_, a) -> if not (is_fun_literal a) then sub a) args
    | Pexp_sequence (a, b) ->
        sub ~k:(g b || k) a;
        sub b
    | Pexp_let (_, vbs, body) ->
        let kb = g body || k in
        List.iter
          (fun vb -> if not (is_fun_literal vb.pvb_expr) then sub ~k:kb vb.pvb_expr)
          vbs;
        sub body
    | Pexp_ifthenelse (c, t, eo) ->
        let kb = (g t && match eo with Some e -> g e | None -> false) || k in
        sub ~k:kb c;
        sub ~cond:true t;
        Option.iter (fun e -> sub ~cond:true e) eo
    | Pexp_match (sc, cases) ->
        let vcs = value_cases cases and ecs = exn_cases cases in
        let km = (vcs <> [] && List.for_all (fun c -> g c.pc_rhs) vcs) || k in
        sub ~k:km sc;
        List.iter (fun c -> sub ~cond:true c.pc_rhs) vcs;
        List.iter (fun c -> sub ~cond:true ~in_handler:true c.pc_rhs) ecs
    | Pexp_try (b, cases) ->
        sub b;
        List.iter (fun c -> sub ~cond:true ~in_handler:true c.pc_rhs) cases
    | Pexp_while (c, b) ->
        sub c;
        sub ~cond:true b
    | Pexp_for (_, a, b, _, body) ->
        sub a;
        sub b;
        sub ~cond:true body
    | Pexp_assert a ->
        if not in_handler then risky := cnum e :: !risky;
        sub a
    | Pexp_constraint (e, _) | Pexp_open (_, e) | Pexp_letexception (_, e) ->
        sub e
    | Pexp_construct (_, Some e) | Pexp_variant (_, Some e) | Pexp_field (e, _)
      ->
        sub e
    | Pexp_setfield (a, _, b) ->
        sub a;
        sub b
    | Pexp_tuple es | Pexp_array es -> List.iter sub es
    | Pexp_record (fields, base) ->
        List.iter (fun (_, e) -> sub e) fields;
        Option.iter sub base
    | Pexp_letmodule (_, _, e) -> sub e
    | _ -> ()
  in
  scan scope ~k:false ~cond:false ~in_handler:false;
  List.fold_left
    (fun acc a ->
      let acc =
        if (not a.a_cond) && not a.a_k then
          mk fu a.a_loc "lock-paths"
            (Printf.sprintf
               "`%s` here is not matched by a release on every following \
                value path of this function (a branch can exit while \
                holding the lock)"
               a.a_name)
          :: acc
        else if a.a_cond && not (List.exists (fun c -> c > a.a_cnum) !rel_after)
        then
          mk fu a.a_loc "lock-paths"
            (Printf.sprintf
               "conditional `%s` has no release call anywhere after it in \
                this function"
               a.a_name)
          :: acc
        else acc
      in
      if
        List.exists (fun c -> c > a.a_cnum) !risky && not !handler_rel
      then
        mk fu a.a_loc "lock-paths"
          (Printf.sprintf
             "no exception-path release: calls after this `%s` can raise, \
              but no handler in this function releases the lock (the PR 2 \
              lock-leak shape)"
             a.a_name)
        :: acc
      else acc)
    acc (List.rev !acqs)

let rule_lock_paths fu acc =
  if not (in_lock_scope fu) then acc
  else begin
    let rels = rel_closure fu.fu_ast in
    List.fold_left
      (fun acc scope -> analyze_lock_scope ~rels fu scope acc)
      acc (scopes_of fu.fu_ast)
  end

(* ------------------------------------------------------------------ *)
(* Rule: san-release-order                                             *)
(* ------------------------------------------------------------------ *)

let store_names = [ "set_bit"; "clear_bit" ]

let is_store_call parts =
  match strip_stdlib parts with
  | [ "Api"; ("write" | "untracked_write" | "cas" | "faa") ]
  | [ "Euno_sim"; "Api"; ("write" | "untracked_write" | "cas" | "faa") ] ->
      true
  | p -> ( match last_part p with Some n -> List.mem n store_names | None -> false)

let contains_release_construct e0 =
  let found = ref false in
  iter_exprs_in_expr
    (fun e ->
      match e.pexp_desc with
      | Pexp_construct ({ txt; _ }, _) -> (
          match last_part (parts_of_lid txt) with
          | Some "Release" -> found := true
          | _ -> ())
      | _ -> ())
    e0;
  !found

let analyze_san_scope fu scope acc =
  let stores = ref [] in
  let notes = ref [] in
  let rec walk e =
    match e.pexp_desc with
    | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ | Pexp_lazy _ -> ()
    | Pexp_apply (f, args) ->
        let parts = parts_of_fn f in
        (if is_store_call parts then stores := cnum e :: !stores
         else
           match last_part parts with
           | Some "san_note"
             when List.exists (fun (_, a) -> contains_release_construct a) args
             ->
               notes := (e.pexp_loc, cnum e) :: !notes
           | _ -> ());
        List.iter (fun (_, a) -> if not (is_fun_literal a) then walk a) args
    | _ ->
        (* walk children without crossing function literals *)
        let it =
          {
            Ast_iterator.default_iterator with
            expr = (fun _ e -> walk e);
          }
        in
        Ast_iterator.default_iterator.expr it e
  in
  walk scope;
  List.fold_left
    (fun acc (loc, nc) ->
      if List.exists (fun sc -> sc < nc) !stores then
        mk fu loc "san-release-order"
          "Release announced after a store in the same function: the \
           sanitizer must see the release note before the unlocking store \
           (PR 4's ordering rule)"
        :: acc
      else acc)
    acc (List.rev !notes)

let rule_san_order fu acc =
  if not (in_sim_scope fu) then acc
  else
    List.fold_left
      (fun acc scope -> analyze_san_scope fu scope acc)
      acc (scopes_of fu.fu_ast)

(* ------------------------------------------------------------------ *)
(* Rule: counter-ownership                                             *)
(* ------------------------------------------------------------------ *)

type counter_decl = {
  cd_file : string;
  cd_name : string;
  cd_index : int;
  cd_loc : Location.t;
  cd_registered : bool;
}

let is_api_count parts =
  match strip_stdlib parts with
  | [ "Api"; "count" ] | [ "Euno_sim"; "Api"; "count" ] -> true
  | _ -> false

let int_literal e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_integer (s, None)) -> int_of_string_opt s
  | _ -> None

let counter_decls fu =
  let registered = ref false in
  iter_exprs
    (fun e ->
      match e.pexp_desc with
      | Pexp_ident { txt; _ } ->
          if
            List.exists
              (fun p -> p = "register_user_counters")
              (parts_of_lid txt)
          then registered := true
      | _ -> ())
    fu.fu_ast;
  let decls = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      module_binding =
        (fun self mb ->
          (match (mb.pmb_name.txt, mb.pmb_expr.pmod_desc) with
          | Some "Counter", Pmod_structure items ->
              List.iter
                (fun si ->
                  match si.pstr_desc with
                  | Pstr_value (_, vbs) ->
                      List.iter
                        (fun vb ->
                          match (vb.pvb_pat.ppat_desc, int_literal vb.pvb_expr)
                          with
                          | Ppat_var { txt; _ }, Some idx ->
                              decls :=
                                {
                                  cd_file = fu.fu_path;
                                  cd_name = txt;
                                  cd_index = idx;
                                  cd_loc = vb.pvb_loc;
                                  cd_registered = false;
                                }
                                :: !decls
                          | _ -> ())
                        vbs
                  | _ -> ())
                items
          | _ -> ());
          Ast_iterator.default_iterator.module_binding self mb);
    }
  in
  it.structure it fu.fu_ast;
  List.rev_map (fun d -> { d with cd_registered = !registered }) !decls

let rule_counters files acc =
  let in_scope = List.filter in_counter_scope files in
  (* literal indices at call sites *)
  let acc =
    List.fold_left
      (fun acc fu ->
        let hits = ref [] in
        iter_exprs
          (fun e ->
            match e.pexp_desc with
            | Pexp_apply (f, args) when is_api_count (parts_of_fn f) -> (
                match
                  List.find_opt (fun (l, _) -> l = Asttypes.Nolabel) args
                with
                | Some (_, idx_e) -> (
                    match int_literal idx_e with
                    | Some n ->
                        hits :=
                          mk fu e.pexp_loc "counter-ownership"
                            (Printf.sprintf
                               "literal user-counter index %d passed to \
                                Api.count; use the owning module's Counter \
                                names so the registry stays the single \
                                source of truth"
                               n)
                          :: !hits
                    | None -> ())
                | None -> ())
            | _ -> ())
          fu.fu_ast;
        List.rev_append !hits acc)
      acc in_scope
  in
  (* Counter modules: must register, and indices must not collide *)
  let decls = List.concat_map counter_decls in_scope in
  let acc =
    List.fold_left
      (fun acc d ->
        if not d.cd_registered then
          mk
            (List.find (fun fu -> fu.fu_path = d.cd_file) in_scope)
            d.cd_loc "counter-ownership"
            (Printf.sprintf
               "Counter.%s pins user-counter index %d but this file never \
                calls Machine.register_user_counters; only the registering \
                owner may pin indices"
               d.cd_name d.cd_index)
          :: acc
        else acc)
      acc decls
  in
  let registered = List.filter (fun d -> d.cd_registered) decls in
  List.fold_left
    (fun acc d ->
      let claimants =
        List.sort_uniq compare
          (List.filter_map
             (fun d' ->
               if d'.cd_index = d.cd_index then Some d'.cd_file else None)
             registered)
      in
      match claimants with
      | first :: _ :: _ when d.cd_file <> first ->
          mk
            (List.find (fun fu -> fu.fu_path = d.cd_file) in_scope)
            d.cd_loc "counter-ownership"
            (Printf.sprintf
               "user-counter index %d (Counter.%s) is also claimed by %s; \
                indices have exactly one registering owner"
               d.cd_index d.cd_name first)
          :: acc
      | _ -> acc)
    acc registered

(* ------------------------------------------------------------------ *)
(* Rule: domain-shared-state                                           *)
(* ------------------------------------------------------------------ *)

(* Libraries whose code can execute inside a Pool worker domain: the
   whole simulated world plus the workload/stats/harness layers the
   campaign drivers run per cell.  A top-level mutable binding there is
   shared by every domain in the process: at best a silent determinism
   leak between campaign cells, at worst a cross-domain data race.  The
   blessed replacement is [Euno_sim.Domain_ref] (domain-local storage);
   genuinely safe process-globals (written only while no worker domain
   exists) carry a reasoned [allow] instead. *)
let domain_libs = sim_libs @ [ "workload"; "stats"; "harness" ]

let in_domain_scope fu =
  fu.fu_sim_pragma
  ||
  match lib_of fu.fu_path with Some d -> List.mem d domain_libs | None -> false

(* Every label declared [mutable] in this file, whatever its type: a
   top-level literal of such a record is writable shared state even when
   the field holds an immutable scalar. *)
let all_mutable_labels ast =
  let labels = ref SSet.empty in
  let it =
    {
      Ast_iterator.default_iterator with
      type_declaration =
        (fun self td ->
          (match td.ptype_kind with
          | Ptype_record lds ->
              List.iter
                (fun ld ->
                  if ld.pld_mutable = Asttypes.Mutable then
                    labels := SSet.add ld.pld_name.txt !labels)
                lds
          | _ -> ());
          Ast_iterator.default_iterator.type_declaration self td);
    }
  in
  it.structure it ast;
  !labels

(* The binding shapes we flag: a fresh mutable container ([ref],
   [Hashtbl.create], [Array.make], an array literal, ...) or a literal
   of a record with mutable fields.  [Domain_ref.create] deliberately
   does not match — it is the fix, not the disease. *)
let rec shared_mutable_shape labels e =
  match e.pexp_desc with
  | Pexp_array _ -> Some "an array literal"
  | Pexp_apply (f, _) ->
      let parts = strip_stdlib (parts_of_fn f) in
      if returns_container parts then
        Some (String.concat "." parts)
      else None
  | Pexp_record (fields, _) ->
      if
        List.exists
          (fun ({ Location.txt; _ }, _) ->
            match last_part (parts_of_lid txt) with
            | Some n -> SSet.mem n labels
            | None -> false)
          fields
      then Some "a mutable-record literal"
      else None
  | Pexp_constraint (e, _) | Pexp_open (_, e) ->
      shared_mutable_shape labels e
  | _ -> None

let binding_name pat =
  let rec go p =
    match p.ppat_desc with
    | Ppat_var { txt; _ } -> Some txt
    | Ppat_constraint (p, _) -> go p
    | _ -> None
  in
  go pat

let rule_domain_state fu acc =
  if not (in_domain_scope fu) then acc
  else begin
    let labels = all_mutable_labels fu.fu_ast in
    let hits = ref [] in
    (* Structure-level bindings only (including inside nested top-level
       modules): locals inside functions are per-call, not shared. *)
    let rec scan_items items =
      List.iter
        (fun si ->
          match si.pstr_desc with
          | Pstr_value (_, vbs) ->
              List.iter
                (fun vb ->
                  match binding_name vb.pvb_pat with
                  | Some name -> (
                      match shared_mutable_shape labels vb.pvb_expr with
                      | Some what ->
                          hits :=
                            mk fu vb.pvb_loc "domain-shared-state"
                              (Printf.sprintf
                                 "top-level binding %s holds %s, shared by \
                                  every domain: pool cells on worker domains \
                                  would race on it or leak state between \
                                  campaign cells; make it domain-local via \
                                  Euno_sim.Domain_ref, or carry a reasoned \
                                  allow if it is only touched while no \
                                  worker domain exists"
                                 name what)
                            :: !hits
                      | None -> ())
                  | None -> ())
                vbs
          | Pstr_module
              { pmb_expr = { pmod_desc = Pmod_structure sub; _ }; _ } ->
              scan_items sub
          | _ -> ())
        items
    in
    scan_items fu.fu_ast;
    List.rev_append !hits acc
  end

(* ------------------------------------------------------------------ *)
(* Rule: schema-drift                                                  *)
(* ------------------------------------------------------------------ *)

let constructed_kinds fu =
  let out = ref [] in
  iter_exprs
    (fun e ->
      match e.pexp_desc with
      | Pexp_apply (_, args) ->
          List.iter
            (fun (l, a) ->
              match (l, a.pexp_desc) with
              | ( Asttypes.Labelled "record",
                  Pexp_constant (Pconst_string (s, _, _)) ) ->
                  out := (s, a.pexp_loc) :: !out
              | _ -> ())
            args
      | Pexp_tuple
          ({ pexp_desc = Pexp_constant (Pconst_string ("record", _, _)); _ }
           :: rest) ->
          let kind = ref None in
          List.iter
            (iter_exprs_in_expr (fun e ->
                 match e.pexp_desc with
                 | Pexp_constant (Pconst_string (s, _, _)) when !kind = None ->
                     kind := Some s
                 | _ -> ()))
            rest;
          Option.iter (fun s -> out := (s, e.pexp_loc) :: !out) !kind
      | _ -> ())
    fu.fu_ast;
  List.rev !out

let dispatch_kinds fu =
  let out = ref SSet.empty in
  let collect_pats e0 =
    let it =
      {
        Ast_iterator.default_iterator with
        pat =
          (fun self p ->
            (match p.ppat_desc with
            | Ppat_constant (Pconst_string (s, _, _)) -> out := SSet.add s !out
            | _ -> ());
            Ast_iterator.default_iterator.pat self p);
      }
    in
    it.expr it e0
  in
  let it =
    {
      Ast_iterator.default_iterator with
      value_binding =
        (fun self vb ->
          (match vb.pvb_pat.ppat_desc with
          | Ppat_var { txt = "validate_record"; _ } -> collect_pats vb.pvb_expr
          | _ -> ());
          Ast_iterator.default_iterator.value_binding self vb);
    }
  in
  it.structure it fu.fu_ast;
  !out

let rule_schema files acc =
  let dispatch =
    List.fold_left (fun s fu -> SSet.union s (dispatch_kinds fu)) SSet.empty
      files
  in
  if SSet.is_empty dispatch then acc
  else
    List.fold_left
      (fun acc fu ->
        List.fold_left
          (fun acc (kind, loc) ->
            if SSet.mem kind dispatch then acc
            else
              mk fu loc "schema-drift"
                (Printf.sprintf
                   "record kind \"%s\" is constructed here but \
                    validate_record has no dispatch arm for it; \
                    euno_schema_check would reject the emitted document"
                   kind)
              :: acc)
          acc (constructed_kinds fu))
      acc files

(* ------------------------------------------------------------------ *)

let run files =
  let acc = [] in
  let acc = List.fold_left (fun acc fu -> rule_determinism fu acc) acc files in
  let acc = List.fold_left (fun acc fu -> rule_lock_paths fu acc) acc files in
  let acc = List.fold_left (fun acc fu -> rule_san_order fu acc) acc files in
  let acc = List.fold_left (fun acc fu -> rule_domain_state fu acc) acc files in
  let acc = rule_counters files acc in
  let acc = rule_schema files acc in
  acc
