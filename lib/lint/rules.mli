(** The EunoLint rule set: six AST-level checks over the repo's own
    invariants (see docs/LINT.md for the catalog and the historical bug
    behind each rule).

    {b Complexity} O(AST nodes) per file per rule; the lock-paths rule
    adds a per-file fixpoint over let-bindings to learn release-wrapper
    closures (e.g. [let leave () = Spinlock.release ...]).
    {b Determinism} pure function of the parsed sources; findings carry
    source locations only, never wall-clock or environment state. *)

type finding = {
  file : string;  (** path as given on the command line *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, matching compiler convention *)
  rule : string;  (** one of {!rule_names} *)
  msg : string;
}

type file_unit = {
  fu_path : string;
  fu_ast : Parsetree.structure;
  fu_sim_pragma : bool;
      (** [(* euno-lint: scope sim *)] present — forces the file into
          every path-scoped rule's scope (fixture corpus support) *)
}

val rule_names : string list
(** All rule-ids a finding or suppression may name, including the
    engine's own [suppression] rule (malformed directives). *)

val run : file_unit list -> finding list
(** All raw findings over the file set, unsorted and unsuppressed.
    Cross-file rules (counter ownership collisions, schema drift) see
    the whole set at once, so lint the tree in one invocation. *)
