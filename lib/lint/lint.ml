type suppressed = { s_finding : Rules.finding; s_reason : string }

type outcome = {
  findings : Rules.finding list;
  suppressed : suppressed list;
  files_scanned : int;
}

let rule_names = Rules.rule_names

(* ------------------------------------------------------------------ *)
(* File discovery                                                      *)
(* ------------------------------------------------------------------ *)

let skip_dirs = [ "_build"; ".git"; "lint_fixtures" ]

let expand_paths paths =
  let exception Missing of string in
  let rec add path acc =
    if not (Sys.file_exists path) then raise (Missing path)
    else if Sys.is_directory path then
      Array.to_list (Sys.readdir path)
      |> List.sort String.compare
      |> List.fold_left
           (fun acc entry ->
             let sub = Filename.concat path entry in
             if Sys.is_directory sub then
               if List.mem entry skip_dirs then acc else add sub acc
             else if Filename.check_suffix entry ".ml" then sub :: acc
             else acc)
           acc
    else path :: acc
  in
  match List.fold_left (fun acc p -> add p acc) [] paths with
  | files -> Ok (List.sort_uniq String.compare files)
  | exception Missing p -> Error (Printf.sprintf "no such file or directory: %s" p)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let parse_source ~path source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf path;
  Location.input_name := path;
  match Parse.implementation lexbuf with
  | ast -> Ok ast
  | exception exn ->
      let msg =
        match Location.error_of_exn exn with
        | Some (`Ok report) ->
            Format.asprintf "%a" Location.print_report report
        | _ -> Printexc.to_string exn
      in
      Error (Printf.sprintf "%s: parse error: %s" path msg)

(* ------------------------------------------------------------------ *)
(* Suppression application                                             *)
(* ------------------------------------------------------------------ *)

(* A well-formed allow cancels findings of its rule on the directive's
   own line or the line directly below it. *)
let matching_allow allows (f : Rules.finding) =
  List.find_opt
    (fun (a : Suppress.allow) ->
      a.al_rule = f.rule && (a.al_line = f.line || a.al_line = f.line - 1))
    allows

let compare_findings (a : Rules.finding) (b : Rules.finding) =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.msg b.msg

let run_files sources =
  let exception Parse_error of string in
  match
    List.map
      (fun (path, source) ->
        match parse_source ~path source with
        | Ok ast ->
            let sup = Suppress.scan ~known_rules:Rules.rule_names source in
            ( {
                Rules.fu_path = path;
                fu_ast = ast;
                fu_sim_pragma = sup.Suppress.sim_pragma;
              },
              sup )
        | Error e -> raise (Parse_error e))
      sources
  with
  | exception Parse_error e -> Error e
  | units ->
      let raw = Rules.run (List.map fst units) in
      (* malformed directives are findings of the engine's own rule *)
      let raw =
        List.fold_left
          (fun acc (fu, sup) ->
            List.fold_left
              (fun acc (line, msg) ->
                {
                  Rules.file = fu.Rules.fu_path;
                  line;
                  col = 0;
                  rule = "suppression";
                  msg;
                }
                :: acc)
              acc sup.Suppress.malformed)
          raw units
      in
      let allows_of =
        let tbl = Hashtbl.create 16 in
        List.iter
          (fun (fu, sup) ->
            Hashtbl.replace tbl fu.Rules.fu_path sup.Suppress.allows)
          units;
        fun file ->
          match Hashtbl.find_opt tbl file with Some l -> l | None -> []
      in
      let active, muted =
        List.partition_map
          (fun (f : Rules.finding) ->
            match matching_allow (allows_of f.file) f with
            | Some a -> Either.Right { s_finding = f; s_reason = a.al_reason }
            | None -> Either.Left f)
          raw
      in
      Ok
        {
          findings = List.sort compare_findings active;
          suppressed =
            List.sort
              (fun a b -> compare_findings a.s_finding b.s_finding)
              muted;
          files_scanned = List.length units;
        }

let run_paths paths =
  match expand_paths paths with
  | Error _ as e -> e
  | Ok files ->
      let read path =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      run_files (List.map (fun p -> (p, read p)) files)
