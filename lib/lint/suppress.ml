type allow = { al_line : int; al_rule : string; al_reason : string }

type info = {
  sim_pragma : bool;
  allows : allow list;
  malformed : (int * string) list;
}

(* The comment opener is part of the marker: a string literal that
   happens to contain the directive keyword is not a directive.  Built
   from parts so this very literal does not match itself. *)
let marker = "(* " ^ "euno-lint:"

(* First occurrence of [needle] in [hay] at or after [from]. *)
let find_sub hay needle from =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go from

let lines_of src =
  (* Keep empty trailing lines: directive line numbers must match what
     the parser reports for the code around them. *)
  String.split_on_char '\n' src

(* The directive body: text between "euno-lint:" and the closing "*)",
   or to end of line if the comment closes on a later line (multi-line
   directives are not supported; everything after the first line is
   ignored, which at worst makes a directive malformed — never silently
   effective). *)
let body_of line at =
  let start = at + String.length marker in
  let stop =
    match find_sub line "*)" start with
    | Some j -> j
    | None -> String.length line
  in
  String.trim (String.sub line start (stop - start))

let parse_allow ~known_rules lineno body =
  (* body is everything after "allow", e.g. "lock-paths: held region
     cannot raise".  The first ':' splits rule from reason. *)
  match String.index_opt body ':' with
  | None ->
      Error
        ( lineno,
          Printf.sprintf
            "suppression is missing a reason: write 'allow <rule>: <reason>' \
             (got 'allow %s')"
            body )
  | Some colon ->
      let rule = String.trim (String.sub body 0 colon) in
      let reason =
        String.trim
          (String.sub body (colon + 1) (String.length body - colon - 1))
      in
      if not (List.mem rule known_rules) then
        Error
          ( lineno,
            Printf.sprintf
              "suppression names unknown rule '%s' (known: %s)" rule
              (String.concat ", " known_rules) )
      else if reason = "" then
        Error
          ( lineno,
            Printf.sprintf
              "suppression for rule '%s' has an empty reason: a reason is \
               required" rule )
      else Ok { al_line = lineno; al_rule = rule; al_reason = reason }

let scan ~known_rules src =
  let sim = ref false and allows = ref [] and bad = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      match find_sub line marker 0 with
      | None -> ()
      | Some at -> (
          let body = body_of line at in
          if body = "scope sim" then sim := true
          else if String.length body >= 6 && String.sub body 0 6 = "allow " then
            let rest = String.trim (String.sub body 6 (String.length body - 6)) in
            match parse_allow ~known_rules lineno rest with
            | Ok a -> allows := a :: !allows
            | Error e -> bad := e :: !bad
          else if body = "allow" then
            bad :=
              ( lineno,
                "suppression is missing a rule and reason: write 'allow \
                 <rule>: <reason>'" )
              :: !bad
          else
            bad :=
              ( lineno,
                Printf.sprintf
                  "unknown euno-lint directive '%s' (expected 'allow <rule>: \
                   <reason>' or 'scope sim')" body )
              :: !bad))
    (lines_of src);
  { sim_pragma = !sim; allows = List.rev !allows; malformed = List.rev !bad }
