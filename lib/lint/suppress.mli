(** Suppression and scope pragmas for EunoLint.

    Directives live in ordinary comments and are parsed textually (the
    compiler's parser drops comments, so the engine re-scans the raw
    source).  Two forms are recognised, each on a single line:

    - [(* euno-lint: allow <rule>: <reason> *)] — suppress findings of
      [<rule>] on the same line or the line directly below.  The reason
      is mandatory: a reason-free [allow] suppresses nothing and is
      itself reported under the [suppression] rule-id.
    - [(* euno-lint: scope sim *)] — opt the file into the sim-reachable
      scope, so path-scoped rules (determinism, lock-paths,
      san-release-order, counter-ownership) apply regardless of where
      the file lives.  Used by the fixture corpus under
      [test/lint_fixtures/].

    {b Complexity} O(bytes) single pass over the source.
    {b Determinism} pure function of the source text. *)

type allow = {
  al_line : int;  (** 1-based line the directive appears on *)
  al_rule : string;
  al_reason : string;  (** non-empty by construction *)
}

type info = {
  sim_pragma : bool;  (** [scope sim] present anywhere in the file *)
  allows : allow list;  (** well-formed suppressions, in line order *)
  malformed : (int * string) list;
      (** (line, message) for reason-free / unknown-rule / unparseable
          directives; each becomes a [suppression] finding *)
}

val scan : known_rules:string list -> string -> info
(** [scan ~known_rules source] extracts every [euno-lint:] directive.
    [known_rules] is the rule-id vocabulary; an [allow] naming anything
    else is malformed (typos must not silently suppress nothing). *)
