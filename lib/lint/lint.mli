(** EunoLint: source-level static analysis of the repo's concurrency and
    determinism conventions.

    The dynamic layers (EunoSan, EunoCheck, EunoDura) catch invariant
    violations only on schedules that actually run; this lint enforces
    the statically-checkable shapes — lock release on every exit path,
    release notes before unlocking stores, counter-registry ownership,
    determinism hygiene, schema dispatch completeness — on every build.
    See docs/LINT.md for the rule catalog.

    {b Complexity} O(source bytes + AST nodes) per file.
    {b Determinism} output is a pure function of the file contents and
    the (sorted) path list; two runs over the same tree render
    byte-identical reports. *)

type suppressed = {
  s_finding : Rules.finding;
  s_reason : string;  (** from the matching allow directive *)
}

type outcome = {
  findings : Rules.finding list;  (** active findings, sorted *)
  suppressed : suppressed list;  (** allow-matched findings, sorted *)
  files_scanned : int;
}

val rule_names : string list
(** Rule-id vocabulary, including the engine's own [suppression] rule. *)

val expand_paths : string list -> (string list, string) result
(** Directories expand recursively to their [.ml] files in sorted
    order; [_build], [.git] and [lint_fixtures] directories are skipped
    during expansion (explicitly-listed files are always taken).
    [Error] names a path that does not exist. *)

val run_files : (string * string) list -> (outcome, string) result
(** [run_files [(path, source); ...]] parses and lints the given
    sources.  [Error] carries a parse failure message (file + location).
    Suppression directives with a reason cancel same-line/next-line
    findings of the named rule; malformed directives surface as
    [suppression] findings. *)

val run_paths : string list -> (outcome, string) result
(** [expand_paths] + file reads + {!run_files}. *)
