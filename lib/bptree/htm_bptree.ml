(* The HTM-B+Tree baseline (Section 2.2, Algorithm 1): every operation —
   root-to-leaf traversal, leaf access, split propagation — inside one
   monolithic RTM region, with the DBX retry/fallback policy.  Simple and
   fast under low contention; collapses under high contention, which is
   exactly what Figures 1 and 2 measure. *)

module Api = Euno_sim.Api
module Htm = Euno_htm.Htm

type t = { tree : Bptree.t; lock : Htm.lock; policy : Htm.policy }

let create ?(policy = Htm.default_policy) ~fanout ~map () =
  { tree = Bptree.create ~fanout ~map (); lock = Htm.alloc_lock ~policy (); policy }

let of_tree ?(policy = Htm.default_policy) tree =
  { tree; lock = Htm.alloc_lock ~policy (); policy }

let tree t = t.tree

let get t key =
  Api.op_key key;
  Htm.atomic ~policy:t.policy ~lock:t.lock (fun () -> Bptree.get t.tree key)

let put t key value =
  Api.op_key key;
  Htm.atomic ~policy:t.policy ~lock:t.lock (fun () ->
      Bptree.put t.tree key value)

let delete t key =
  Api.op_key key;
  Htm.atomic ~policy:t.policy ~lock:t.lock (fun () -> Bptree.delete t.tree key)

let scan t ~from ~count =
  Api.op_key from;
  Htm.atomic ~policy:t.policy ~lock:t.lock (fun () ->
      Bptree.scan t.tree ~from ~count)
