(* The internal-node index shared by tree variants.

   Internal nodes are conventional sorted-separator nodes (Layout).  Leaves
   are opaque to this module except for the common header offsets [tag] and
   [parent]: both the conventional B+Tree and the Euno-B+Tree chain their
   leaves under this same index, which is exactly the paper's design — the
   Eunomia pattern rebuilds the *leaf layer* and keeps the interior
   ordered. *)

module Api = Euno_sim.Api
module Linemap = Euno_mem.Linemap
module L = Layout

type t = {
  layout : L.t;
  meta : int; (* tree-meta line: root pointer and depth *)
  map : Linemap.t;
}

let null = 0

let create ~fanout ~map ~root () =
  let layout = L.make ~fanout in
  let meta = Api.alloc ~kind:Linemap.Tree_meta ~words:L.meta_words in
  Api.write (meta + L.meta_root) root;
  Api.write (meta + L.meta_depth) 1;
  { layout; meta; map }

let root t = Api.read (t.meta + L.meta_root)
let depth t = Api.read (t.meta + L.meta_depth)

let alloc_internal t =
  let node =
    Api.alloc ~kind:Linemap.Node_meta ~words:t.layout.L.internal_words
  in
  Api.write (L.tag node) L.tag_internal;
  node

(* Index of the first key >= [key] among [n] sorted keys of [node]. *)
let lower_bound t node n key =
  let rec go lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if Api.read (L.key t.layout node mid) < key then go (mid + 1) hi
      else go lo mid
    end
  in
  go 0 n

(* Child covering [key]: separator keys.(i) is the smallest key of
   children.(i+1). *)
let child_for t node key =
  let n = Api.read (L.nkeys node) in
  let rec go lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if key < Api.read (L.key t.layout node mid) then go lo mid
      else go (mid + 1) hi
    end
  in
  let i = go 0 n in
  Api.read (L.child t.layout node i)

(* Root-to-leaf walk (Algorithm 1/2: the depth counter read here is the
   shared tree metadata the paper identifies as a false-conflict source). *)
let find_leaf t key =
  let d = depth t in
  let rec walk node d =
    if d <= 1 then node else walk (child_for t node key) (d - 1)
  in
  walk (root t) d

let internal_insert_at t node n i sep right =
  for j = n downto i + 1 do
    Api.write (L.key t.layout node j) (Api.read (L.key t.layout node (j - 1)))
  done;
  for j = n + 1 downto i + 2 do
    Api.write (L.child t.layout node j)
      (Api.read (L.child t.layout node (j - 1)))
  done;
  Api.write (L.key t.layout node i) sep;
  Api.write (L.child t.layout node (i + 1)) right;
  Api.write (L.parent right) node;
  Api.write (L.nkeys node) (n + 1)

(* Split a full internal node; returns (promoted separator, right node).
   [on_alloc] runs on the fresh right node before anything makes it
   reachable — lock-coupling protocols (Masstree) use it to create the
   node already locked. *)
let split_internal ?(on_alloc = fun (_ : int) -> ()) t node =
  let f = t.layout.L.fanout in
  let mid = f / 2 in
  let right = alloc_internal t in
  on_alloc right;
  let promoted = Api.read (L.key t.layout node mid) in
  let rn = f - mid - 1 in
  for j = 0 to rn - 1 do
    Api.write (L.key t.layout right j)
      (Api.read (L.key t.layout node (mid + 1 + j)))
  done;
  for j = 0 to rn do
    let c = Api.read (L.child t.layout node (mid + 1 + j)) in
    Api.write (L.child t.layout right j) c;
    Api.write (L.parent c) right
  done;
  Api.write (L.nkeys node) mid;
  Api.write (L.nkeys right) rn;
  Api.write (L.level right) (Api.read (L.level node));
  Api.write (L.parent right) (Api.read (L.parent node));
  (promoted, right)

let grow_root t left sep right =
  let newroot = alloc_internal t in
  Api.write (L.nkeys newroot) 1;
  Api.write (L.key t.layout newroot 0) sep;
  Api.write (L.child t.layout newroot 0) left;
  Api.write (L.child t.layout newroot 1) right;
  Api.write (L.parent left) newroot;
  Api.write (L.parent right) newroot;
  Api.write (L.parent newroot) null;
  Api.write (t.meta + L.meta_root) newroot;
  Api.write (t.meta + L.meta_depth) (depth t + 1);
  newroot

(* Propagate a split upwards (Algorithm 1 lines 17-19 / Algorithm 3 lines
   84-86). *)
let rec insert_into_parent t node sep right =
  let parent = Api.read (L.parent node) in
  if parent = null then ignore (grow_root t node sep right)
  else begin
    let n = Api.read (L.nkeys parent) in
    if n < t.layout.L.fanout then begin
      let i = lower_bound t parent n sep in
      internal_insert_at t parent n i sep right
    end
    else begin
      let promoted, pright = split_internal t parent in
      insert_into_parent t parent promoted pright;
      let target = if sep < promoted then parent else pright in
      let tn = Api.read (L.nkeys target) in
      let i = lower_bound t target tn sep in
      internal_insert_at t target tn i sep right
    end
  end

(* Remove separator [i] and child [i+1] from an internal node (the merge
   path).  The caller guarantees the node keeps at least one separator. *)
let internal_remove_at t node i =
  let n = Api.read (L.nkeys node) in
  for j = i to n - 2 do
    Api.write (L.key t.layout node j) (Api.read (L.key t.layout node (j + 1)))
  done;
  for j = i + 1 to n - 1 do
    Api.write (L.child t.layout node j)
      (Api.read (L.child t.layout node (j + 1)))
  done;
  Api.write (L.nkeys node) (n - 1)

(* Position of [child] among a node's children, or -1. *)
let child_index t node child =
  let n = Api.read (L.nkeys node) in
  let rec go i =
    if i > n then -1
    else if Api.read (L.child t.layout node i) = child then i
    else go (i + 1)
  in
  go 0

(* ---------- bulk loading ---------- *)

(* Build the internal levels bottom-up over an ordered, non-empty list of
   (min key, node) children, linking parent pointers, and install the
   root.  Used by the single-threaded bulk loaders of every tree variant:
   each internal node is packed to the fanout, yielding the flattest
   possible index. *)
let build_levels t children =
  let f = t.layout.L.fanout in
  let rec build level nodes =
    match nodes with
    | [] -> invalid_arg "Index.build_levels: no nodes"
    | [ (_, root) ] ->
        Api.write (L.parent root) null;
        Api.write (t.meta + L.meta_root) root;
        Api.write (t.meta + L.meta_depth) level
    | nodes ->
        (* Group up to fanout+1 children per parent. *)
        let rec group acc nodes =
          match nodes with
          | [] -> List.rev acc
          | _ ->
              let rec take n acc = function
                | [] -> (List.rev acc, [])
                | rest when n = 0 -> (List.rev acc, rest)
                | x :: rest -> take (n - 1) (x :: acc) rest
              in
              let chunk, rest = take (f + 1) [] nodes in
              (* Never leave a lone child for the last parent: internal
                 nodes need at least one separator (two children). *)
              let chunk, rest =
                match (rest, List.rev chunk) with
                | [ only ], last :: chunk_rev ->
                    (List.rev chunk_rev, [ last; only ])
                | _ -> (chunk, rest)
              in
              group (chunk :: acc) rest
        in
        let parents =
          List.map
            (fun chunk ->
              let node = alloc_internal t in
              let minkey = fst (List.hd chunk) in
              List.iteri
                (fun i (k, child) ->
                  if i > 0 then Api.write (L.key t.layout node (i - 1)) k;
                  Api.write (L.child t.layout node i) child;
                  Api.write (L.parent child) node)
                chunk;
              Api.write (L.nkeys node) (List.length chunk - 1);
              (minkey, node))
            (group [] nodes)
        in
        build (level + 1) parents
  in
  build 1 children

(* Depth-first iteration over all leaves, left to right. *)
let rec iter_leaves t node f =
  if Api.read (L.tag node) = L.tag_leaf then f node
  else begin
    let n = Api.read (L.nkeys node) in
    for i = 0 to n do
      iter_leaves t (Api.read (L.child t.layout node i)) f
    done
  end

(* Number of internal nodes in a subtree. *)
let rec count_internals t node =
  if Api.read (L.tag node) = L.tag_leaf then 0
  else begin
    let n = Api.read (L.nkeys node) in
    let acc = ref 1 in
    for i = 0 to n do
      acc := !acc + count_internals t (Api.read (L.child t.layout node i))
    done;
    !acc
  end

(* ---------- structural validation (tests) ---------- *)

exception Invariant of string

let fail_inv fmt = Printf.ksprintf (fun s -> raise (Invariant s)) fmt

(* Check the shared structure: internal sortedness, separator bounds,
   parent pointers, uniform leaf depth.  [leaf_keys] returns a leaf's keys
   in ascending order (each variant knows its own leaf layout). *)
let check_structure t ~leaf_keys =
  let f = t.layout.L.fanout in
  let leaf_depths = ref [] in
  let check_bounds node k ~lo ~hi =
    (match lo with
    | Some l when k < l -> fail_inv "node %d: key %d below bound %d" node k l
    | Some _ | None -> ());
    match hi with
    | Some h when k >= h -> fail_inv "node %d: key %d above bound %d" node k h
    | Some _ | None -> ()
  in
  let rec walk node ~lo ~hi ~d ~parent =
    if Api.read (L.parent node) <> parent then
      fail_inv "node %d: bad parent pointer" node;
    if Api.read (L.tag node) = L.tag_leaf then begin
      leaf_depths := d :: !leaf_depths;
      let prev = ref None in
      List.iter
        (fun k ->
          (match !prev with
          | Some p when k <= p -> fail_inv "leaf %d: keys not sorted" node
          | Some _ | None -> ());
          check_bounds node k ~lo ~hi;
          prev := Some k)
        (leaf_keys node)
    end
    else begin
      let n = Api.read (L.nkeys node) in
      if n < 1 then fail_inv "internal %d: no keys" node;
      if n > f then fail_inv "internal %d: overfull (%d > %d)" node n f;
      let prev = ref None in
      for i = 0 to n - 1 do
        let k = Api.read (L.key t.layout node i) in
        (match !prev with
        | Some p when k <= p -> fail_inv "internal %d: keys not sorted" node
        | Some _ | None -> ());
        check_bounds node k ~lo ~hi;
        prev := Some k
      done;
      for i = 0 to n do
        let lo' =
          if i = 0 then lo else Some (Api.read (L.key t.layout node (i - 1)))
        in
        let hi' = if i = n then hi else Some (Api.read (L.key t.layout node i)) in
        walk (Api.read (L.child t.layout node i)) ~lo:lo' ~hi:hi' ~d:(d + 1)
          ~parent:node
      done
    end
  in
  walk (root t) ~lo:None ~hi:None ~d:1 ~parent:null;
  match !leaf_depths with
  | [] -> fail_inv "no leaves"
  | d0 :: rest ->
      if not (List.for_all (fun d -> d = d0) rest) then
        fail_inv "leaves at different depths";
      if d0 <> depth t then
        fail_inv "meta depth %d but leaves at %d" (depth t) d0
