(** Internal-node index shared by the tree variants.

    Sorted-separator internal nodes above an opaque leaf layer.  Leaves only
    need the common header offsets ({!Layout.tag} = [Layout.tag_leaf] and
    {!Layout.parent}); the conventional B+Tree and the Euno-B+Tree both hang
    their leaves under this index. *)

type t = { layout : Layout.t; meta : int; map : Euno_mem.Linemap.t }

val create :
  fanout:int -> map:Euno_mem.Linemap.t -> root:int -> unit -> t
(** Fresh index whose root is the given (already allocated) leaf. *)

val root : t -> int
val depth : t -> int

val find_leaf : t -> int -> int
(** Root-to-leaf traversal for a key. *)

val lower_bound : t -> int -> int -> int -> int
(** [lower_bound t node n key]: first index with [keys.(i) >= key] among the
    [n] sorted keys of any node using this layout. *)

val insert_into_parent : t -> int -> int -> int -> unit
(** [insert_into_parent t node sep right] links the new [right] sibling of
    [node] under its parent, splitting internal nodes and growing the root
    as needed. *)

val child_for : t -> int -> int -> int
(** Child of an internal node covering a key. *)

val internal_insert_at : t -> int -> int -> int -> int -> int -> unit
(** [internal_insert_at t node n i sep right]: place separator [sep] and
    child [right] at position [i] of a non-full internal node with [n]
    keys.  Exposed for lock-coupled split protocols (Masstree). *)

val split_internal : ?on_alloc:(int -> unit) -> t -> int -> int * int
(** Split a full internal node; returns (promoted separator, right node).
    The caller must hold whatever synchronization its protocol requires;
    [on_alloc] runs on the fresh right node before it becomes reachable
    (lock-coupling protocols create it locked). *)

val grow_root : t -> int -> int -> int -> int
(** [grow_root t left sep right]: install a new root above two nodes and
    return it (lock-coupling callers announce it to the sanitizer). *)

val internal_remove_at : t -> int -> int -> unit
(** [internal_remove_at t node i]: drop separator [i] and child [i+1]
    (the leaf-merge path).  The node must keep at least one separator. *)

val child_index : t -> int -> int -> int
(** Position of a child pointer among a node's children, or -1. *)

val build_levels : t -> (int * int) list -> unit
(** [build_levels t children] builds the internal levels bottom-up over an
    ordered, non-empty list of (min key, node) children — packing internal
    nodes to the fanout — and installs the root and depth.  Children link
    back through their parent pointers.  Single-threaded bulk loading. *)

val iter_leaves : t -> int -> (int -> unit) -> unit
(** Depth-first leaf iteration from a subtree root, left to right. *)

val count_internals : t -> int -> int
(** Internal nodes in a subtree (inspection). *)

exception Invariant of string

val check_structure : t -> leaf_keys:(int -> int list) -> unit
(** Validate the shared structure (internal sortedness, separator bounds,
    parent pointers, uniform leaf depth); raises {!Invariant} on violation.
    [leaf_keys] must return a leaf's keys in ascending order. *)
