(** Fine-grained concurrent B+Tree derived from Masstree's concurrency
    discipline (the paper's lock-based baseline).

    Per-node version words (lock bit, vinsert, vsplit); optimistic readers
    with before-and-after validation; writers take per-node spinlocks and
    split with hand-over-hand upward locking.  Pass [~elide:true] (used by
    {!Htm_masstree}) to turn lock acquisitions into version-word reads
    inside an enclosing RTM region. *)

(** Test-only mutation switches: reintroduce historical protocol bugs so
    EunoCheck can prove it detects them.  Never set these outside test
    code. *)
module Testonly : sig
  val widen_read_window : bool Euno_sim.Domain_ref.t
  (** OLC bug: in {!get}, validate the leaf version {e before} the record
      reads instead of after, reopening the TOCTOU window that
      before-and-after validation closes.  EunoCheck's mutation tests
      prove this surfaces as a non-linearizable history. *)
end

type t

val create : ?elide:bool -> fanout:int -> map:Euno_mem.Linemap.t -> unit -> t

val bulk_load :
  ?elide:bool ->
  ?fill:float ->
  fanout:int ->
  map:Euno_mem.Linemap.t ->
  (int * int) list ->
  t
(** Build a tree from sorted, distinct records (single-threaded load
    phase): packed leaves, bottom-up index. *)

val index : t -> Euno_bptree.Index.t

val get : t -> int -> int option
val put : t -> int -> int -> unit
val delete : t -> int -> bool
val scan : t -> from:int -> count:int -> (int * int) list

val to_list : t -> (int * int) list
val size : t -> int

exception Invariant of string

val check_invariants : t -> unit
