(* HTM-Masstree (paper Section 5.1, comparison tree (3)): each whole
   Masstree operation inside one RTM region, subsuming its elided per-node
   locks.  The version-counter writes Masstree performs on every structural
   change land in the transaction write sets, so concurrent operations on
   shared nodes abort each other — the shared-metadata pathology that makes
   this variant scale poorly in Figures 8 and 10. *)

module Api = Euno_sim.Api
module Htm = Euno_htm.Htm

type t = { tree : Masstree.t; lock : Htm.lock; policy : Htm.policy }

let create ?(policy = Htm.default_policy) ~fanout ~map () =
  { tree = Masstree.create ~elide:true ~fanout ~map (); lock = Htm.alloc_lock ~policy (); policy }

let of_tree ?(policy = Htm.default_policy) tree =
  { tree; lock = Htm.alloc_lock ~policy (); policy }

let tree t = t.tree

let get t key =
  Api.op_key key;
  Htm.atomic ~policy:t.policy ~lock:t.lock (fun () -> Masstree.get t.tree key)

let put t key value =
  Api.op_key key;
  Htm.atomic ~policy:t.policy ~lock:t.lock (fun () ->
      Masstree.put t.tree key value)

let delete t key =
  Api.op_key key;
  Htm.atomic ~policy:t.policy ~lock:t.lock (fun () ->
      Masstree.delete t.tree key)

let scan t ~from ~count =
  Api.op_key from;
  Htm.atomic ~policy:t.policy ~lock:t.lock (fun () ->
      Masstree.scan t.tree ~from ~count)
