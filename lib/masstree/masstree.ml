(* A fine-grained concurrent B+Tree derived from Masstree's concurrency
   discipline (Mao et al., EuroSys'12, Section 4.6), the paper's lock-based
   baseline.

   Every node carries a version word: a lock bit, an insert counter
   (vinsert) and a split counter (vsplit).  Readers are optimistic: they
   read a stable version before touching a node and re-check it after
   ("before-and-after" validation), retrying the node when vinsert moved
   and restarting from the root when vsplit moved.  Writers take the
   per-node spinlock, mutate, and release by bumping the counters.  Splits
   lock hand-over-hand upward (child, then parent), re-validating that the
   parent still contains the child after locking.

   The same code also runs as "HTM-Masstree" (elide = true): each whole
   operation is wrapped in one RTM region by Htm_masstree and lock
   acquisitions are elided to version-word reads.  The version-counter
   writes then land in every transaction's write set — the shared-metadata
   aborts that make HTM-Masstree perform poorly in the paper's Figure 8.

   Node layout reuses Euno_bptree.Layout (sorted consecutive keys): the
   version word is header word 4 for both node kinds. *)

module Api = Euno_sim.Api
module Abort = Euno_sim.Abort
module Sev = Euno_sim.Sev
module Linemap = Euno_mem.Linemap
module Index = Euno_bptree.Index
module L = Euno_bptree.Layout
module Backoff = Euno_sync.Backoff
module Spinlock = Euno_sync.Spinlock

(* Test-only mutation switches: reintroduce historical protocol bugs so
   EunoCheck can prove it detects them.  Never set outside test code. *)
module Testonly = struct
  (* Domain-local: armed per pool worker, never bleeds across cells. *)
  let widen_read_window = Euno_sim.Domain_ref.create (fun () -> false)
  (* OLC bug: validate the leaf version *before* the record reads instead
     of after, so a writer mutating between the check and the reads hands
     the reader a torn record — the TOCTOU window before-and-after
     validation exists to close. *)
end

type t = {
  idx : Index.t; (* node layout, tree meta, shared internal-node ops *)
  root_lock : int; (* serializes root growth *)
  elide : bool; (* HTM-Masstree: locks elided inside an RTM region *)
}

let null = 0

(* ---------- version words ---------- *)

(* bit 0: lock; bits 1..30: vinsert; bits 31..: vsplit *)
let lock_bit = 1
let vinsert_unit = 2
let vinsert_mask = (1 lsl 31) - 2
let vsplit_unit = 1 lsl 31

let version_addr node = L.version node
let is_locked v = v land lock_bit <> 0
let vsplit_of v = v lsr 31
let _vinsert_of v = (v land vinsert_mask) lsr 1

exception Retry_root

(* Per-node instruction weight of the real Masstree machinery our skeletal
   OLC does not execute: permutation decoding, border-key slicing, layer
   checks (Mao et al. Sections 4.3-4.6).  The paper measures Masstree
   executing ~2.1x the instructions of Euno-B+Tree; these constants
   reproduce that per-operation instruction weight in the cost model. *)
let node_work = 120
let leaf_work = 140

(* A stable (unlocked) version of a node; spins while a writer is in the
   node.  Each check is the paper's "version manipulation". *)
let stable_version node =
  let b = Backoff.create ~base:16 ~cap:1024 () in
  let rec go () =
    let v = Api.read (version_addr node) in
    if is_locked v then begin
      Backoff.once b;
      go ()
    end
    else v
  in
  go ()

(* Acquire a node's version lock.  In elided mode there is no CAS: the
   transaction reads the word (subscribing to it) and aborts if a fallback
   writer holds it. *)
let lock_node t node =
  if t.elide then begin
    if is_locked (Api.read (version_addr node)) then
      Api.xabort Abort.xabort_lock_held
  end
  else begin
    let b = Backoff.create ~base:24 ~cap:2048 () in
    let rec go () =
      let v = Api.read (version_addr node) in
      if is_locked v then begin
        Backoff.once b;
        go ()
      end
      else if
        not (Api.cas (version_addr node) ~expected:v ~desired:(v lor lock_bit))
      then begin
        Backoff.once b;
        go ()
      end
    in
    go ();
    if Sev.armed () then
      Api.san_note (Sev.Acquire (Sev.Version, version_addr node))
  end

(* Lock a node nothing else can reach yet: fresh split siblings are born
   locked so their creator can keep writing into them after they become
   visible.  (Elided mode needs no node locks: the enclosing transaction —
   or the global fallback lock — already serializes the whole operation.) *)
let lock_fresh t node =
  if not t.elide then begin
    Api.write (version_addr node) lock_bit;
    if Sev.armed () then
      Api.san_note (Sev.Acquire (Sev.Version, version_addr node))
  end

(* Release, bumping vinsert and optionally vsplit. *)
let unlock_node t node ~split =
  let v = Api.read (version_addr node) in
  let v = if t.elide then v else v land lnot lock_bit in
  let v = v + vinsert_unit in
  let v = if split then v + vsplit_unit else v in
  (* Announce before the version write: once the lock bit clears, the next
     holder's acquire note may precede ours in the event stream.  (Elided
     mode takes no lock, so there is nothing to release.) *)
  if (not t.elide) && Sev.armed () then
    Api.san_note (Sev.Release (Sev.Version, version_addr node));
  Api.write (version_addr node) v

(* ---------- construction ---------- *)

let alloc_leaf_with ~(layout : L.t) ~map =
  let node = Api.alloc ~kind:Linemap.Node_meta ~words:layout.L.leaf_words in
  (* Parent pointers are Masstree's by-design benign race: they are read
     outside any common lock and validated after locking (the [contains]
     re-check in [insert_up]), so the race detector must not flag them.
     (Host-side no-op unless the sanitizer is armed.) *)
  Sev.mark_racy (L.parent node);
  Linemap.set_range map
    ~addr:(node + layout.L.records_off)
    ~words:(layout.L.leaf_words - layout.L.records_off)
    Linemap.Record;
  Api.reclassify ~from_kind:Linemap.Node_meta ~to_kind:Linemap.Record
    ~words:(layout.L.leaf_words - layout.L.records_off);
  Api.write (L.tag node) L.tag_leaf;
  node

let alloc_leaf t = alloc_leaf_with ~layout:t.idx.Index.layout ~map:t.idx.Index.map

let create ?(elide = false) ~fanout ~map () =
  let layout = L.make ~fanout in
  let root = alloc_leaf_with ~layout ~map in
  {
    idx = Index.create ~fanout ~map ~root ();
    root_lock = Spinlock.alloc ();
    elide;
  }

(* Bulk load sorted, distinct records (single-threaded YCSB load phase):
   packed leaves, bottom-up index, version words fresh. *)
let bulk_load ?(elide = false) ?(fill = 0.7) ~fanout ~map records =
  let layout = L.make ~fanout in
  let per_leaf =
    max 1 (min fanout (int_of_float (fill *. float_of_int fanout)))
  in
  match records with
  | [] -> create ~elide ~fanout ~map ()
  | _ ->
      let rec chunks acc current n = function
        | [] -> List.rev (List.rev current :: acc)
        | r :: rest when n < per_leaf -> chunks acc (r :: current) (n + 1) rest
        | rest -> chunks (List.rev current :: acc) [] 0 rest
      in
      let make_leaf chunk =
        let leaf = alloc_leaf_with ~layout ~map in
        List.iteri
          (fun i (k, v) ->
            Api.write (L.record_key layout leaf i) k;
            Api.write (L.record_value layout leaf i) v)
          chunk;
        Api.write (L.nkeys leaf) (List.length chunk);
        (fst (List.hd chunk), leaf)
      in
      let leaves = List.map make_leaf (chunks [] [] 0 records) in
      let rec chain = function
        | (_, a) :: ((_, b) :: _ as rest) ->
            Api.write (L.next a) b;
            chain rest
        | [ _ ] | [] -> ()
      in
      chain leaves;
      let idx = Index.create ~fanout ~map ~root:(snd (List.hd leaves)) () in
      Index.build_levels idx leaves;
      { idx; root_lock = Spinlock.alloc (); elide }

let index t = t.idx
let layout t = t.idx.Index.layout

(* ---------- optimistic descent ---------- *)

(* Descend to the leaf covering [key] with hand-over-hand validation:
   capture the child's stable version *before* re-checking the parent, so
   an unchanged parent proves the child covered the key when its version
   was taken (a child split always bumps the parent first).  Returns the
   leaf and its stable version; raises Retry_root when a node changed
   underfoot. *)
let descend t key =
  let rec down node v =
    Api.work node_work;
    if Api.read (L.tag node) = L.tag_leaf then (node, v)
    else begin
      let child = Index.child_for t.idx node key in
      let vc = stable_version child in
      let v' = Api.read (version_addr node) in
      if v' <> v then raise_notrace Retry_root;
      down child vc
    end
  in
  let rec from_root () =
    match down (Index.root t.idx) (stable_version (Index.root t.idx)) with
    | leaf_v -> leaf_v
    | exception Retry_root -> from_root ()
  in
  from_root ()

(* ---------- get ---------- *)

(* First record index with key >= [key] among a leaf's [n] sorted records
   (linear sweep, like Masstree's permuter-ordered scan). *)
let leaf_lower_bound t leaf n key =
  let lay = layout t in
  let rec go i =
    if i >= n || Api.read (L.record_key lay leaf i) >= key then i
    else go (i + 1)
  in
  go 0

let leaf_find t leaf key =
  let lay = layout t in
  let n = Api.read (L.nkeys leaf) in
  let i = leaf_lower_bound t leaf n key in
  if i < n && Api.read (L.record_key lay leaf i) = key then
    Some (Api.read (L.record_value lay leaf i))
  else None

let get t key =
  Api.op_key key;
  (* The whole lookup is one optimistic section: every read is validated
     by the before-and-after version checks, so the race detector must not
     treat them as synchronized accesses. *)
  if Sev.armed () then Api.san_note Sev.Opt_enter;
  let rec attempt () =
    let leaf, v = descend t key in
    let rec read_leaf v =
      Api.work leaf_work;
      if Euno_sim.Domain_ref.get Testonly.widen_read_window then begin
        (* The pre-fix shape: version checked first, records read after —
           a writer landing in between hands us a torn record. *)
        let v' = stable_version leaf in
        if v' = v then leaf_find t leaf key
        else if vsplit_of v' <> vsplit_of v then attempt ()
        else read_leaf v'
      end
      else begin
        let result = leaf_find t leaf key in
        let v' = stable_version leaf in
        if v' = v then result
        else if vsplit_of v' <> vsplit_of v then attempt ()
        else read_leaf v'
      end
    in
    read_leaf v
  in
  let result = attempt () in
  if Sev.armed () then Api.san_note Sev.Opt_exit;
  result

(* ---------- structural modification (writers) ---------- *)

(* Does the locked internal node still list [child]? *)
let contains t parent child =
  let n = Api.read (L.nkeys parent) in
  let rec go i =
    if i > n then false
    else if Api.read (L.child (layout t) parent i) = child then true
    else go (i + 1)
  in
  go 0

(* Link [right] (fresh) as the sibling of the *locked* node [node] under
   separator [sep], locking upward hand-over-hand. *)
let rec insert_up t node sep right =
  let parent = Api.read (L.parent node) in
  if parent = null then begin
    (* Root growth is serialized by a dedicated lock. *)
    if t.elide then begin
      if Spinlock.is_locked t.root_lock then
        Api.xabort Abort.xabort_lock_held
    end
    (* euno-lint: allow lock-paths: root-growth lock: Index.grow_root is raise-free under the plan fault model (plain allocations are spared) and both value branches release below *)
    else Spinlock.acquire t.root_lock;
    if Api.read (L.parent node) = null then begin
      let newroot = Index.grow_root t.idx node sep right in
      Sev.mark_racy (L.parent newroot);
      (* The new root's contents are written under [root_lock] but later
         mutated under its own version lock.  A publish note (zero
         simulated cycles) tells the sanitizer that everything written so
         far happens-before any later holder of that lock. *)
      if (not t.elide) && Sev.armed () then
        Api.san_note (Sev.Publish (Sev.Version, version_addr newroot));
      if not t.elide then Spinlock.release t.root_lock
    end
    else begin
      (* Someone grew the root first; retry against the new parent. *)
      if not t.elide then Spinlock.release t.root_lock;
      insert_up t node sep right
    end
  end
  else begin
    (* euno-lint: allow lock-paths: hand-over-hand parent lock: the region is raise-free under the plan fault model and every value branch unlocks; EunoSan covers the discipline dynamically *)
    lock_node t parent;
    if not (contains t parent node) then begin
      (* The parent split and [node] moved; chase the fresh pointer. *)
      unlock_node t parent ~split:false;
      insert_up t node sep right
    end
    else begin
      let n = Api.read (L.nkeys parent) in
      if n < (layout t).L.fanout then begin
        let i = Index.lower_bound t.idx parent n sep in
        Index.internal_insert_at t.idx parent n i sep right;
        unlock_node t parent ~split:false
      end
      else begin
        (* The new sibling is born locked: rewriting the moved children's
           parent pointers makes it reachable to their splitters. *)
        let promoted, pright =
          Index.split_internal
            ~on_alloc:(fun n ->
              Sev.mark_racy (L.parent n);
              lock_fresh t n)
            t.idx parent
        in
        insert_up t parent promoted pright;
        let target = if sep < promoted then parent else pright in
        let tn = Api.read (L.nkeys target) in
        let i = Index.lower_bound t.idx target tn sep in
        Index.internal_insert_at t.idx target tn i sep right;
        unlock_node t parent ~split:true;
        unlock_node t pright ~split:false
      end
    end
  end

(* Split a locked, full leaf and link it upward with the lock-coupled
   protocol; returns the (still invisible, hence unlocked) right sibling. *)
let split_leaf_locked t leaf =
  let lay = layout t in
  let f = lay.L.fanout in
  let mid = f / 2 in
  let right = alloc_leaf t in
  lock_fresh t right;
  for j = 0 to f - mid - 1 do
    Api.write (L.record_key lay right j) (Api.read (L.record_key lay leaf (mid + j)));
    Api.write (L.record_value lay right j) (Api.read (L.record_value lay leaf (mid + j)))
  done;
  Api.write (L.nkeys leaf) mid;
  Api.write (L.nkeys right) (f - mid);
  Api.write (L.next right) (Api.read (L.next leaf));
  Api.write (L.next leaf) right;
  Api.write (L.parent right) (Api.read (L.parent leaf));
  let sep = Api.read (L.record_key lay right 0) in
  insert_up t leaf sep right;
  right

(* ---------- put / delete ---------- *)

let leaf_insert_at t leaf n i key value =
  let lay = layout t in
  for j = n downto i + 1 do
    Api.write (L.record_key lay leaf j) (Api.read (L.record_key lay leaf (j - 1)));
    Api.write (L.record_value lay leaf j) (Api.read (L.record_value lay leaf (j - 1)))
  done;
  Api.write (L.record_key lay leaf i) key;
  Api.write (L.record_value lay leaf i) value;
  Api.write (L.nkeys leaf) (n + 1)

let put t key value =
  Api.op_key key;
  let lay = layout t in
  let rec attempt () =
    (* The descend-until-locked phase is optimistic; once the leaf lock is
       held the remaining accesses are lock-synchronized and stay visible
       to the race detector. *)
    if Sev.armed () then Api.san_note Sev.Opt_enter;
    let leaf, v = descend t key in
    (* euno-lint: allow lock-paths: put holds the leaf lock across the split path, whose raise-free contract comes from the fault model sparing plain allocations (plan.mli); a handler could not undo a half-linked split anyway *)
    lock_node t leaf;
    if Sev.armed () then Api.san_note Sev.Opt_exit;
    Api.work leaf_work;
    (* Between validation and locking the leaf may have split: its key
       range only ever shrinks, so a moved vsplit forces a restart. *)
    let v' = Api.read (version_addr leaf) in
    if vsplit_of v' <> vsplit_of v then begin
      unlock_node t leaf ~split:false;
      attempt ()
    end
    else begin
      let n = Api.read (L.nkeys leaf) in
      let i = leaf_lower_bound t leaf n key in
      if i < n && Api.read (L.record_key lay leaf i) = key then begin
        Api.write (L.record_value lay leaf i) value;
        unlock_node t leaf ~split:false
      end
      else if n < lay.L.fanout then begin
        leaf_insert_at t leaf n i key value;
        unlock_node t leaf ~split:false
      end
      else begin
        let right = split_leaf_locked t leaf in
        let target =
          if key < Api.read (L.record_key lay right 0) then leaf else right
        in
        let tn = Api.read (L.nkeys target) in
        let ti = leaf_lower_bound t target tn key in
        leaf_insert_at t target tn ti key value;
        unlock_node t leaf ~split:true;
        unlock_node t right ~split:false
      end
    end
  in
  attempt ()

let delete t key =
  Api.op_key key;
  let lay = layout t in
  let rec attempt () =
    if Sev.armed () then Api.san_note Sev.Opt_enter;
    let leaf, v = descend t key in
    (* euno-lint: allow lock-paths: delete holds the leaf lock across in-node edits only: plan-based faults spare plain allocations (plan.mli), so the region cannot raise; EunoSan checks the release dynamically *)
    lock_node t leaf;
    if Sev.armed () then Api.san_note Sev.Opt_exit;
    Api.work leaf_work;
    let v' = Api.read (version_addr leaf) in
    if vsplit_of v' <> vsplit_of v then begin
      unlock_node t leaf ~split:false;
      attempt ()
    end
    else begin
      let n = Api.read (L.nkeys leaf) in
      let i = leaf_lower_bound t leaf n key in
      let found = i < n && Api.read (L.record_key lay leaf i) = key in
      if found then begin
        for j = i to n - 2 do
          Api.write (L.record_key lay leaf j) (Api.read (L.record_key lay leaf (j + 1)));
          Api.write (L.record_value lay leaf j) (Api.read (L.record_value lay leaf (j + 1)))
        done;
        Api.write (L.nkeys leaf) (n - 1)
      end;
      unlock_node t leaf ~split:false;
      found
    end
  in
  attempt ()

(* ---------- range scan ---------- *)

(* Versioned hand-over-hand over the leaf chain. *)
let scan t ~from ~count =
  Api.op_key from;
  (* Lock-free versioned reads throughout: one optimistic section. *)
  if Sev.armed () then Api.san_note Sev.Opt_enter;
  let lay = layout t in
  let rec restart from acc remaining =
    if remaining <= 0 then List.rev acc
    else begin
      let leaf, v = descend t from in
      walk leaf v from acc remaining
    end
  and walk leaf v from acc remaining =
    let rec snapshot v =
      let n = Api.read (L.nkeys leaf) in
      let records = ref [] in
      for j = n - 1 downto 0 do
        records := (Api.read (L.record_key lay leaf j), Api.read (L.record_value lay leaf j)) :: !records
      done;
      let nxt = Api.read (L.next leaf) in
      let nv = if nxt = null then 0 else stable_version nxt in
      let v' = stable_version leaf in
      if v' = v then (!records, nxt, nv)
      else if vsplit_of v' <> vsplit_of v then raise_notrace Retry_root
      else snapshot v'
    in
    match snapshot v with
    | exception Retry_root -> restart from acc remaining
    | records, nxt, nv ->
        let eligible = List.filter (fun (k, _) -> k >= from) records in
        let rec take acc remaining = function
          | [] -> (acc, remaining)
          | kv :: rest ->
              if remaining = 0 then (acc, 0)
              else take (kv :: acc) (remaining - 1) rest
        in
        let acc, remaining = take acc remaining eligible in
        if remaining = 0 || nxt = null then List.rev acc
        else walk nxt nv from acc remaining
  in
  let result = restart from [] count in
  if Sev.armed () then Api.san_note Sev.Opt_exit;
  result

(* ---------- inspection (tests) ---------- *)

let to_list t =
  let lay = layout t in
  let acc = ref [] in
  Index.iter_leaves t.idx (Index.root t.idx) (fun leaf ->
      let n = Api.read (L.nkeys leaf) in
      for i = 0 to n - 1 do
        acc := (Api.read (L.record_key lay leaf i), Api.read (L.record_value lay leaf i)) :: !acc
      done);
  List.rev !acc

let size t = List.length (to_list t)

exception Invariant = Index.Invariant

let check_invariants t =
  let lay = layout t in
  Index.check_structure t.idx ~leaf_keys:(fun leaf ->
      let n = Api.read (L.nkeys leaf) in
      if n > lay.L.fanout then
        raise (Invariant (Printf.sprintf "leaf %d overfull" leaf));
      if is_locked (Api.read (version_addr leaf)) then
        raise (Invariant (Printf.sprintf "leaf %d left locked" leaf));
      List.init n (fun i -> Api.read (L.record_key lay leaf i)));
  let keys = List.map fst (to_list t) in
  if keys <> List.sort compare keys then
    raise (Invariant "leaf chain out of order")
