(* Index-tracked run queue for the machine scheduler.

   The scheduler must always resume the ready thread with the smallest
   (clock, tid) pair — previously found by scanning every thread on every
   step.  This module replaces the scan with a binary min-heap of packed
   (clock, tid) keys: clock in the high bits, tid in the low 6 bits, so
   plain integer comparison is exactly the lexicographic order the scan
   used (smallest clock first, ties to the smallest tid).

   Entries are *lazy*: a parked thread's clock can advance while it waits
   (an attacker charging it the abort penalty), leaving its heap entry
   stale.  Because clocks only ever increase, a stale key is always an
   underestimate, so the true minimum can never be overtaken by it; the
   machine revalidates on pop and re-pushes with the current clock.  This
   keeps push/pop at O(log n) without a decrease-key operation and —
   crucially — picks the exact same thread sequence as the scan did. *)

let tid_bits = 6 (* 2^6 = 64 >= Line_table.max_threads + slack *)
let tid_mask = (1 lsl tid_bits) - 1

let pack ~clock ~tid = (clock lsl tid_bits) lor tid
let tid_of p = p land tid_mask
let clock_of p = p asr tid_bits

type t = { mutable heap : int array; mutable len : int }

let create ~capacity = { heap = Array.make (max 1 capacity) 0; len = 0 }

let clear t = t.len <- 0
let is_empty t = t.len = 0
let length t = t.len

let swap h i j =
  let tmp = h.(i) in
  h.(i) <- h.(j);
  h.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.(i) < h.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h len i =
  let l = (2 * i) + 1 in
  if l < len then begin
    let smallest = if l + 1 < len && h.(l + 1) < h.(l) then l + 1 else l in
    if h.(smallest) < h.(i) then begin
      swap h i smallest;
      sift_down h len smallest
    end
  end

let push t ~clock ~tid =
  if t.len = Array.length t.heap then begin
    let bigger = Array.make (2 * t.len) 0 in
    Array.blit t.heap 0 bigger 0 t.len;
    t.heap <- bigger
  end;
  t.heap.(t.len) <- pack ~clock ~tid;
  t.len <- t.len + 1;
  sift_up t.heap (t.len - 1)

(* Smallest packed key without removing it; raises on empty. *)
let peek t =
  if t.len = 0 then invalid_arg "Sched.peek: empty";
  t.heap.(0)

(* Smallest packed (clock, tid); raises on empty.  Use {!is_empty} first. *)
let pop t =
  if t.len = 0 then invalid_arg "Sched.pop: empty";
  let min = t.heap.(0) in
  t.len <- t.len - 1;
  if t.len > 0 then begin
    t.heap.(0) <- t.heap.(t.len);
    sift_down t.heap t.len 0
  end;
  min
