(** The simulated multicore: deterministic discrete-event execution of
    effect-coroutine "hardware threads" with Intel-RTM transactional
    semantics.

    Conflict detection is eager and requester-wins at 64-byte-line
    granularity: a coherence request from the running thread dooms the
    transactional holder of the line, matching TSX behaviour.  Stores inside
    transactions are buffered and applied at commit; a doomed transaction
    sees {!Eff.Txn_abort} at its next instruction.  Non-transactional
    accesses participate in conflict detection (strong atomicity).

    Given a seed, a run is bit-for-bit reproducible regardless of host
    parallelism.

    {b Complexity:} the access path is flat-array only — line ownership
    ({!Line_table}), last-writer sockets, warmth caches and the per-thread
    transaction arena ({!Txn}) are all indexed by line or address with no
    hashing and no per-access allocation; aborts clear transaction state in
    O(1) by epoch bump.  The scheduler's pick-min step is a lazy binary
    heap ({!Sched}) with a run-ahead fast path that keeps the current
    thread executing while it provably remains the (clock, tid) minimum,
    so single-threaded runs never touch the heap.  See
    docs/SIMULATOR.md "Fast paths".

    {b Determinism:} threads are resumed strictly in (clock, tid) order;
    ties go to the smallest tid; victim dooming iterates reader tids in
    ascending order; all randomness (spurious aborts, thread-local jitter)
    comes from per-thread SplitMix64 streams derived from the seed.  The
    determinism test suite replays recorded seed-42 traces byte-for-byte
    to pin this down. *)

type t

val create :
  threads:int ->
  seed:int ->
  cost:Cost.t ->
  mem:Euno_mem.Memory.t ->
  map:Euno_mem.Linemap.t ->
  alloc:Euno_mem.Alloc.t ->
  t
(** A machine with [threads] hardware threads (max 62), interleaved evenly
    across [cost.sockets] sockets. *)

val run : t -> (int -> unit) -> unit
(** [run m body] executes [body tid] on every thread to completion.  Thread
    code may only interact with simulated state through {!Api} (i.e. the
    {!Eff} effects).  Re-raises the first thread failure, after cleaning up
    its transaction.  A machine is single-shot: create a fresh one per
    measurement phase. *)

val run_single :
  ?seed:int ->
  ?cost:Cost.t ->
  mem:Euno_mem.Memory.t ->
  map:Euno_mem.Linemap.t ->
  alloc:Euno_mem.Alloc.t ->
  (unit -> 'a) ->
  'a
(** Run a one-thread machine and return the body's result.  Used for
    preloading trees and for unit tests. *)

val set_tracer : t -> (Trace.event -> unit) option -> unit
(** Install (or remove) a trace sink; see {!Trace}.  Tracing never affects
    simulated results. *)

exception Crashed of { at_cycle : int }
(** The whole simulated process died (see {!set_crash}).  Escapes {!run};
    the machine's memory, line map, allocator, clocks and counters remain
    inspectable — they model the durable / post-mortem state recovery
    starts from. *)

val set_crash : t -> at_cycle:int -> unit
(** Arm a whole-process crash: the first time the scheduler's minimum
    thread clock reaches [at_cycle], every thread dies at once and {!run}
    raises {!Crashed}.  In-flight transactions are rolled back with RTM
    failure atomicity (buffered writes discarded, transactional
    allocations undone, no abort penalty charged), but parked thread
    continuations are dropped without unwinding — no handler or finalizer
    runs, so held advisory/fallback locks and half-applied plain writes
    are abandoned in simulated memory for recovery to deal with.  The
    default ([max_int]) never fires and costs one integer compare per
    dispatch, so uncrashed runs are byte-identical.  Call before
    {!run}. *)

(** {2 Fault injection}

    Deterministic fault hooks the machine consults at well-defined points.
    Every hook is a pure function of [(tid, clock)] — never of host state —
    so a fixed seed plus a fixed injector reproduces the same faults at the
    same simulated instants on every run.  [Euno_fault.Plan] compiles a
    declarative fault plan into one of these records. *)

type injector = {
  inj_spurious : tid:int -> clock:int -> int;
      (** extra spurious-abort probability (per million transactional
          accesses) on top of [Cost.spurious_per_million]: models an
          interrupt / GC storm *)
  inj_capacity : tid:int -> clock:int -> (int * int) option;
      (** [Some (rs, ws)] overrides the read/write-set line capacities
          while active (an SMT sibling stealing cache); [None] = nominal *)
  inj_preempt : tid:int -> clock:int -> int;
      (** absolute clock the thread is descheduled until; values [<= clock]
          mean runnable.  A preempted transaction aborts first (context
          switches kill RTM transactions). *)
  inj_lock_stall : tid:int -> clock:int -> int;
      (** extra stall cycles charged immediately after a successful
          non-transactional acquisition of a [Lock]-kind word: preemption
          while holding the fallback lock *)
  inj_skew : tid:int -> clock:int -> int;
      (** per-mille slowdown applied to every cycle charge on the thread
          (clock skew / DVFS); [0] = nominal *)
  inj_alloc_fail : tid:int -> clock:int -> in_txn:bool -> bool;
      (** allocation at this instant fails: aborts the enclosing
          transaction with [Abort.Alloc_fault], or raises
          [Euno_mem.Alloc.Alloc_failure] in plain code.  [in_txn] lets a
          plan fail only transactional allocations (safely rolled back)
          while fallback-path allocations still succeed. *)
}

val no_injector : injector
(** Every hook inert; the default for every machine. *)

val set_injector : t -> injector -> unit
(** Install fault hooks.  Call before {!run}. *)

val set_san_hook : t -> (Sev.event -> unit) option -> unit
(** Install (or remove) a sanitizer event sink; see {!Sev} and
    [Euno_san].  Gated behind the same inert-branch pattern as the fault
    injector: with no hook installed the access path tests a single bool
    and builds no event, so disabled-mode runs stay byte-identical.  The
    hook observes counters and protocol announcements only — it must not
    (and cannot, through this interface) perturb simulated state.  Call
    before {!run}. *)

val set_explorer : t -> (tid:int -> point:Explore.point -> int) option -> unit
(** Install (or remove) a schedule-exploration policy consultation; see
    {!Explore}.  While installed, {!run} replaces the heap scheduler with
    an exploration loop: after every interpreted effect the hook is asked
    whether the thread that just ran should be parked for the returned
    number of scheduler picks (0 = keep it schedulable), letting other
    ready threads overtake it.  Parked threads are force-released when
    every runnable thread is parked, so exploration cannot deadlock the
    machine, and an overtaken thread's clock is bumped forward so recorded
    timestamps never contradict execution order.  With no explorer
    installed (the default) the machine never consults {!Explore} and runs
    are byte-identical to builds without it; with [Some
    (Explore.hook policy)] the run is still fully deterministic — the
    schedule is a pure function of (machine seed, policy spec, policy
    seed).  Call before {!run}. *)

val n_threads : t -> int
val memory : t -> Euno_mem.Memory.t
val linemap : t -> Euno_mem.Linemap.t
val allocator : t -> Euno_mem.Alloc.t
val cost : t -> Cost.t

val elapsed : t -> int
(** Max thread clock = simulated wall-clock cycles of the run. *)

val n_user_counters : int

val register_user_counters : owner:string -> (int * string) list -> unit
(** Claim user-counter indices for [owner], naming each.  The registry is
    host-side and domain-local: modules that bump counters through
    {!Api.count} register their indices at module-initialization time (on
    the main domain, before any pool worker spawns — workers inherit a
    copy), and a claim that collides with a different owner's (or renames
    an existing index) raises [Invalid_argument] — two telemetry streams
    can no longer silently alias one counter.  Re-registering an
    identical claim is a no-op, and a registration made on one domain is
    invisible to every other, so parallel campaign cells cannot trip each
    other's collision check. *)

val user_counter_names : unit -> (int * string) list
(** Every registered [(index, name)], ascending by index. *)

val user_counter_owner : int -> string option
(** The owner that registered [idx], if any. *)

(** Per-thread (or aggregated) statistics of a run. *)
type snapshot = {
  s_ops : int;  (** benchmark operations completed (Op_done) *)
  s_commits : int;  (** committed transactions *)
  s_aborts : int array;  (** per {!Abort.index} bucket *)
  s_conflict_kinds : int array;
      (** conflict aborts by the {!Euno_mem.Alloc.kind_index} of the
          conflicting line *)
  s_wasted_cycles : int;  (** cycles spent in aborted transactions *)
  s_committed_cycles : int;
  s_accesses : int;  (** interpreted effects: instruction-count proxy *)
  s_user : int array;
  s_clock : int;
}

val snapshot_thread : t -> int -> snapshot
val aggregate : t -> snapshot
val total_aborts : snapshot -> int

val set_sampling : t -> window:int -> unit
(** Record a cumulative aggregate {!type-snapshot} every [window] simulated
    cycles (plus one final partial window when the run ends).  The sample
    is taken when the scheduler's minimum thread clock crosses the
    boundary, so it reflects the machine state at that simulated instant;
    sampling reads counters only and never perturbs the run.  Must be
    called before {!run}. *)

val samples : t -> (int * snapshot) list
(** [(window_end_clock, cumulative aggregate)] pairs, oldest first; empty
    unless {!set_sampling} was enabled.  Diff consecutive snapshots for
    per-window rates. *)
