(** Index-tracked run queue: the scheduler's pick-min-(clock, tid) step as
    a binary min-heap of packed integer keys instead of an O(threads) scan.

    {b Complexity:} [push] and [pop] are O(log ready-threads); peeking the
    minimum is O(1).  No allocation per operation (the backing array grows
    geometrically and is reused).

    {b Determinism:} keys pack [clock] into the high bits and [tid] into
    the low {!tid_bits} bits, so integer comparison is exactly the
    lexicographic (clock, tid) order — the heap resumes the same thread
    the old linear scan picked, including ties (smallest tid wins).
    Entries may go stale when a parked thread's clock is advanced by an
    attacker (abort-penalty charge); since clocks only increase, stale
    keys are underestimates and the machine simply revalidates on pop and
    re-pushes, never missing the true minimum. *)

type t

val tid_bits : int
(** Low bits of a packed key holding the tid; clocks must stay below
    [2^(63 - tid_bits)], far beyond any simulated run. *)

val pack : clock:int -> tid:int -> int
val tid_of : int -> int
val clock_of : int -> int

val create : capacity:int -> t
(** An empty queue sized for [capacity] threads (grows if exceeded). *)

val clear : t -> unit
val is_empty : t -> bool
val length : t -> int

val push : t -> clock:int -> tid:int -> unit

val peek : t -> int
(** The smallest packed key, not removed.  The machine's run-ahead fast
    path compares the running thread's key against this to keep executing
    it without any heap traffic while it remains the minimum.
    @raise Invalid_argument when empty. *)

val pop : t -> int
(** Remove and return the smallest packed key.  @raise Invalid_argument
    when empty. *)
