(* Effect vocabulary of a simulated hardware thread.

   Tree and benchmark code never touches host state directly: every memory
   access, atomic instruction and RTM primitive is performed as an effect
   that the Machine scheduler interprets, charges cycles for, and checks for
   conflicts.  This is what makes thread interleaving, HTM aborts and clock
   accounting fully deterministic. *)

(* Multi-argument constructors carry their fields inline (no intermediate
   tuple block), so performing an effect costs one allocation, not two:
   this dispatch happens on every simulated instruction. *)
type _ Effect.t +=
  | Read : int -> int Effect.t (* load word *)
  | Write : int * int -> unit Effect.t (* store addr, value *)
  | Cas : int * int * int -> bool Effect.t (* addr, expected, desired *)
  | Faa : int * int -> int Effect.t (* fetch-and-add; returns old *)
  | Work : int -> unit Effect.t (* consume ALU cycles *)
  | Xbegin : unit Effect.t
  | Xend : unit Effect.t
  | Xabort : int -> unit Effect.t (* never returns normally *)
  | Xtest : bool Effect.t (* inside a transaction? *)
  | Tid : int Effect.t
  | Clock : int Effect.t (* own local cycle clock *)
  | Rand : int -> int Effect.t (* deterministic per-thread uniform *)
  | Alloc : Euno_mem.Linemap.kind * int -> int Effect.t (* kind, words *)
  | Free : Euno_mem.Linemap.kind * int * int -> unit Effect.t
    (* kind, addr, words; deferred to commit inside a transaction *)
  | Reclassify : Euno_mem.Linemap.kind * Euno_mem.Linemap.kind * int -> unit Effect.t
    (* move allocator accounting between kinds (reverted on abort) *)
  | Op_key : int -> unit Effect.t (* declare current op's target key *)
  | Op_done : unit Effect.t (* one benchmark operation completed *)
  | Count : int * int -> unit Effect.t (* user counter idx, delta *)
  | Untracked_read : int -> int Effect.t (* stats only: no coherence *)
  | Untracked_write : int * int -> unit Effect.t
  | San_note : Sev.note -> unit Effect.t
    (* sanitizer announcement (lock acquired, optimistic section, ...);
       free of cycles, performed only while Sev.armed *)

exception Txn_abort of Abort.code
(* Delivered into a transaction body when the hardware aborts it.  User code
   must not catch it except via Htm wrappers, which retry or fall back. *)

let null = 0 (* the null simulated pointer *)
