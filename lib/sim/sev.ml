(* Semantic-event vocabulary of the sanitizer (EunoSan).

   The machine already interprets every memory access, atomic, RTM
   primitive and lock operation; when the sanitizer is armed it forwards
   each of them — plus protocol announcements performed by the sync
   libraries via {!Api.san_note} — to an installed hook as one of the
   events below.  Everything here is inert by default: [enabled] is the
   single arming flag, announcement call sites test it before building a
   note, and the machine only consults its hook when one is installed, so
   a disabled run is byte-identical to a build without the sanitizer. *)

(* Which protocol a lock announcement belongs to.  The id paired with a
   kind is the lock's representative simulated address (for [Slot], the
   CCM line base shifted to make room for the slot index), so (kind, id)
   is collision-free across protocols. *)
type lock_kind =
  | Spin (* Euno_sync.Spinlock, incl. the HTM fallback lock *)
  | Ticket (* Euno_sync.Ticketlock *)
  | Seq_writer (* Euno_sync.Seqlock writer side *)
  | Slot (* a CCM per-slot advisory lock *)
  | Version (* a Masstree embedded node-version lock *)

(* Announcements performed by instrumented synchronization code.  These
   travel through the {!Eff.San_note} effect so the machine can stamp
   them with the announcing thread's tid and clock. *)
type note =
  | Acquire of lock_kind * int (* kind, lock id; after the lock is won *)
  | Release of lock_kind * int (* kind, lock id; after the lock is free *)
  | Publish of lock_kind * int
    (* one-way happens-before transfer into a lock the announcer does NOT
       hold: everything it did so far is ordered before any later holder.
       Used when data is initialized under one lock but later protected by
       another (Masstree root growth).  Ignored by the lock-discipline
       checker — no lock changes hands. *)
  | Barrier_arrive of int (* barrier id, before waiting *)
  | Barrier_depart of int (* barrier id, after the episode completes *)
  | Attempt_enter (* Htm.attempt entered *)
  | Attempt_exit (* Htm.attempt exited (any path) *)
  | Opt_enter (* optimistic read section begins (seqlock/OLC reader) *)
  | Opt_exit (* optimistic read section validated or abandoned *)

(* One machine-level event.  [tid]/[clock] are of the thread the event
   happened on (for aborts: the victim, at the instant it was doomed). *)
type event = { tid : int; clock : int; body : body }

and body =
  | Plain_read of { addr : int; kind : Euno_mem.Linemap.kind }
  | Plain_write of { addr : int; kind : Euno_mem.Linemap.kind }
  | Txn_line_read of int (* line id entering the live read set *)
  | Txn_line_write of int (* line id entering the live write set *)
  | Txn_begin
  | Txn_commit
  | Txn_aborted
  | Unsafe_read of int (* untracked access: addr, no coherence *)
  | Unsafe_write of int
  | Alloc_done of { addr : int; words : int }
  | Free_done of { addr : int; words : int }
  | Op_exit (* one benchmark operation retired (Op_done) *)
  | Thread_exit of { failed : bool; aborted : bool }
      (* [aborted]: the thread died with an uncaught {!Eff.Txn_abort} —
         an abort escaped the Htm wrappers *)
  | Note of note

(* ---------- arming ---------- *)

(* True only inside a sanitizer session.  Host-side flag shared by every
   machine of the arming domain (including preload machines, whose hook
   stays uninstalled): announcement sites in simulated code test it
   before performing the San_note effect, so ordinary runs never even
   allocate a note.  Domain-local so a sanitizer cell running on one
   pool worker cannot arm the instrumentation of a plain cell running
   concurrently on another. *)
let enabled : bool Domain_ref.t = Domain_ref.create (fun () -> false)

let armed () = Domain_ref.get enabled
let set_armed v = Domain_ref.set enabled v

(* ---------- intentionally-racy words ---------- *)

(* Words that are racy by design (e.g. the CCM adaptive-mode hint word,
   written and read plainly from concurrent operations on purpose).  The
   registry is host state, not simulated state, so marks survive the
   preload-machine / measurement-machine boundary.  Only consulted by the
   race detector; reset at the start of each sanitizer session so marks
   never leak across address reuse between sessions.  Domain-local like
   the arming flag: each pool worker's sessions mark into their own
   table. *)
let racy : (int, unit) Hashtbl.t Domain_ref.t =
  Domain_ref.create (fun () -> Hashtbl.create 64)

let mark_racy addr = if armed () then Hashtbl.replace (Domain_ref.get racy) addr ()
let is_racy addr = Hashtbl.mem (Domain_ref.get racy) addr
let reset_racy () = Hashtbl.reset (Domain_ref.get racy)
