(* The simulated multicore.

   Each simulated hardware thread is an effects-handler coroutine.  The
   scheduler always resumes the ready thread with the smallest local cycle
   clock, interprets its next effect (memory access, atomic, RTM
   primitive), charges cycles from the Cost model, performs eager
   requester-wins conflict detection at cache-line granularity, and parks
   the continuation again.  Doomed transactions observe their abort as a
   Txn_abort exception delivered at their next instruction, exactly like a
   real RTM abort rolling back to the xbegin point.

   The whole machine runs on one host thread; given a seed, every run is
   bit-for-bit reproducible.

   Fast paths (see docs/SIMULATOR.md "fast paths"): per-access state is
   flat-array only — line ownership and last-writer sockets are arrays
   indexed by line, transaction read/write sets live in the Line_table
   bits plus a per-thread log, buffered stores sit in an epoch-versioned
   table cleared O(1) on abort, the scheduler's pick-min is a lazy binary
   heap (Sched), and the fault-injection hooks are skipped entirely while
   no injector is installed.  None of this changes simulated behavior:
   the determinism suite replays recorded seed-42 traces byte for byte. *)

module Mem = Euno_mem.Memory
module Lmap = Euno_mem.Linemap
module Al = Euno_mem.Alloc

let n_user_counters = 16

(* ---------- user-counter registration ----------

   The user-counter index space is shared by every module that emits
   telemetry through Api.count.  Owners declare their indices here at
   module-initialization time; claiming an index another owner already
   holds is a startup failure instead of two counters silently aliasing
   in every report.  Host-side bookkeeping only — nothing simulated.

   The table is domain-local, seeded from the parent at spawn: the
   module-init registrations (htm, euno_tree) happen on the main domain
   before any pool worker exists, so workers inherit a complete copy,
   and a registration performed on one worker (e.g. by a test) can
   neither race nor collide with another domain's. *)

let user_counter_registry : (int, string * string) Hashtbl.t Domain_ref.t =
  Domain_ref.create ~split:Hashtbl.copy (fun () ->
      Hashtbl.create n_user_counters)

let register_user_counters ~owner names =
  let user_counter_registry = Domain_ref.get user_counter_registry in
  List.iter
    (fun (idx, name) ->
      if idx < 0 || idx >= n_user_counters then
        invalid_arg
          (Printf.sprintf
             "Machine.register_user_counters: %s registers index %d outside \
              0..%d"
             owner idx (n_user_counters - 1));
      match Hashtbl.find_opt user_counter_registry idx with
      | Some (owner', name') when owner' <> owner || name' <> name ->
          invalid_arg
            (Printf.sprintf
               "Machine.register_user_counters: index %d (%s, claimed by %s) \
                collides with %s's %s"
               idx name owner owner' name')
      | Some _ -> () (* identical re-registration is harmless *)
      | None -> Hashtbl.replace user_counter_registry idx (owner, name))
    names

let user_counter_names () =
  Hashtbl.fold (fun idx (_, name) acc -> (idx, name) :: acc)
    (Domain_ref.get user_counter_registry)
    []
  |> List.sort compare

let user_counter_owner idx =
  Option.map fst (Hashtbl.find_opt (Domain_ref.get user_counter_registry) idx)

type counters = {
  mutable ops : int;
  mutable commits : int;
  aborts : int array; (* indexed by Abort.index *)
  conflict_kinds : int array; (* conflicts by Linemap kind of the line *)
  mutable wasted_cycles : int; (* cycles inside aborted transactions *)
  mutable committed_cycles : int; (* cycles inside committed transactions *)
  mutable accesses : int; (* instruction-count proxy: effects interpreted *)
  user : int array;
}

let fresh_counters () =
  {
    ops = 0;
    commits = 0;
    aborts = Array.make Abort.n_classes 0;
    conflict_kinds = Array.make Al.nkinds 0;
    wasted_cycles = 0;
    committed_cycles = 0;
    accesses = 0;
    user = Array.make n_user_counters 0;
  }

(* ---------- fault injection ----------

   Deterministic fault hooks consulted by the machine at well-defined
   points.  Every hook is a pure function of (tid, simulated clock), so for
   a fixed seed the same faults fire at the same simulated instants on
   every run; the hooks themselves never mutate machine state.  See
   Euno_fault for the declarative plan DSL that compiles to one of these. *)

type injector = {
  inj_spurious : tid:int -> clock:int -> int;
      (* extra spurious-abort probability (per million transactional
         accesses) on top of Cost.spurious_per_million: interrupt/GC storm *)
  inj_capacity : tid:int -> clock:int -> (int * int) option;
      (* Some (rs, ws): override the read/write-set line capacities while
         active (SMT sibling stealing half the L1/L2), None: nominal *)
  inj_preempt : tid:int -> clock:int -> int;
      (* absolute clock the thread is descheduled until; <= clock means
         runnable.  A preempted transaction aborts (context switches kill
         RTM transactions), then the thread's clock jumps forward. *)
  inj_lock_stall : tid:int -> clock:int -> int;
      (* extra cycles the thread stalls immediately after a successful
         non-transactional lock acquisition: preemption while holding the
         fallback lock, the lemming-storm trigger *)
  inj_skew : tid:int -> clock:int -> int;
      (* per-mille slowdown applied to every cycle charge on this thread
         (DVFS / thermal clock skew); 0 = nominal speed *)
  inj_alloc_fail : tid:int -> clock:int -> in_txn:bool -> bool;
      (* allocation attempted at this instant takes the allocator's slow
         path: aborts the enclosing transaction (Abort.Alloc_fault) or, in
         plain code, raises Euno_mem.Alloc.Alloc_failure.  [in_txn] lets a
         plan target only transactional allocations (which roll back
         safely) without failing fallback-path allocations mid-update. *)
}

let no_injector =
  {
    inj_spurious = (fun ~tid:_ ~clock:_ -> 0);
    inj_capacity = (fun ~tid:_ ~clock:_ -> None);
    inj_preempt = (fun ~tid:_ ~clock:_ -> 0);
    inj_lock_stall = (fun ~tid:_ ~clock:_ -> 0);
    inj_skew = (fun ~tid:_ ~clock:_ -> 0);
    inj_alloc_fail = (fun ~tid:_ ~clock:_ ~in_txn:_ -> false);
  }

type status =
  | Start of (unit -> unit)
  | Ready : ('a, unit) Effect.Deep.continuation * 'a -> status
      (* parked continuation and the value to resume it with, boxed
         together (one block per interpreted effect, not two) *)
  | Running
  | Done
  | Failed of exn

type tstate = {
  tid : int;
  socket : int;
  mutable clock : int;
  mutable status : status;
  mutable doom : Abort.code option;
  mutable pending_exn : exn option;
    (* non-abort exception to deliver at the next resumption (e.g. an
       injected allocation failure outside a transaction) *)
  mutable txn : Txn.t option;
  arena : Txn.t;
    (* the one Txn value this thread ever uses; [txn = Some arena] while a
       transaction is active.  Reset in O(1) at each xbegin. *)
  rng : Rng.t;
  mutable op_key : int;
  cache : int array; (* direct-mapped warmth cache of line ids *)
  cnt : counters;
}

type t = {
  mem : Mem.t;
  map : Lmap.t;
  alloc : Al.t;
  cost : Cost.t;
  (* Cost-model fields memoized out of the record so the access path does
     one load instead of two; immutable for the machine's lifetime. *)
  c_hit : int;
  c_miss : int;
  c_remote : int;
  c_wextra : int;
  c_cas : int;
  c_xbegin : int;
  c_xend : int;
  c_abort : int;
  c_spur : int;
  c_txn_limit : int;
  c_rs_cap : int;
  c_ws_cap : int;
  c_gran : int; (* conflict-granule shift over line ids; 0 = per-line *)
  lt : Line_table.t;
  threads : tstate array;
  sched : Sched.t;
  mutable current : int;
  mutable owner_socket : int array; (* line -> socket of last writer, -1 *)
  cache_mask : int;
  mutable tracer : (Trace.event -> unit) option;
  mutable inject : injector;
  mutable inj_active : bool;
    (* false while [inject == no_injector]: every hook is inert, so the
       access path skips the closure calls entirely *)
  mutable san : Sev.event -> unit;
  mutable san_active : bool;
    (* same inert-branch pattern as the injector: while no sanitizer hook
       is installed the access path tests one bool and builds no event *)
  mutable explore : tid:int -> point:Explore.point -> int;
  mutable exp_active : bool;
    (* inert-branch pattern again: with no exploration policy installed,
       [run] uses the Sched heap loop untouched and the access path only
       tests this bool before tagging points, so golden traces stay
       byte-identical *)
  mutable exp_point : Explore.point;
    (* point kind of the effect currently being interpreted; reset to
       [Step] before each resumption, upgraded by the process functions *)
  mutable sample_window : int; (* 0 = periodic sampling disabled *)
  mutable next_sample : int; (* next window boundary, simulated cycles *)
  mutable samples : (int * snapshot) list; (* newest first *)
  mutable crash_at : int;
    (* simulated cycle at which the whole process dies (Crashed is raised
       from the scheduler); max_int = never, and the check is one integer
       compare per dispatch, so uncrashed runs are byte-identical *)
}

and snapshot = {
  s_ops : int;
  s_commits : int;
  s_aborts : int array;
  s_conflict_kinds : int array;
  s_wasted_cycles : int;
  s_committed_cycles : int;
  s_accesses : int;
  s_user : int array;
  s_clock : int;
}

let create ~threads ~seed ~cost ~mem ~map ~alloc =
  if threads < 1 || threads > Line_table.max_threads then
    invalid_arg "Machine.create: bad thread count";
  let cache_size = 1 lsl cost.Cost.cache_entries_log2 in
  let mk tid =
    {
      tid;
      socket = tid mod cost.Cost.sockets;
      clock = 0;
      status = Done;
      doom = None;
      pending_exn = None;
      txn = None;
      arena = Txn.create ~tid;
      rng = Rng.create (seed + (tid * 7919) + 1);
      op_key = -1;
      cache = Array.make cache_size (-1);
      cnt = fresh_counters ();
    }
  in
  {
    mem;
    map;
    alloc;
    cost;
    c_hit = cost.Cost.cache_hit;
    c_miss = cost.Cost.cache_miss;
    c_remote = cost.Cost.remote_extra;
    c_wextra = cost.Cost.write_extra;
    c_cas = cost.Cost.cas;
    c_xbegin = cost.Cost.xbegin;
    c_xend = cost.Cost.xend;
    c_abort = cost.Cost.abort_penalty;
    c_spur = cost.Cost.spurious_per_million;
    c_txn_limit = cost.Cost.txn_cycle_limit;
    c_rs_cap = cost.Cost.capacity.Cost.rs_lines;
    c_ws_cap = cost.Cost.capacity.Cost.ws_lines;
    c_gran = cost.Cost.capacity.Cost.granule_log2;
    lt = Line_table.create ();
    threads = Array.init threads mk;
    sched = Sched.create ~capacity:threads;
    current = 0;
    owner_socket = Array.make 64 (-1);
    cache_mask = cache_size - 1;
    tracer = None;
    inject = no_injector;
    inj_active = false;
    san = ignore;
    san_active = false;
    explore = (fun ~tid:_ ~point:_ -> 0);
    exp_active = false;
    exp_point = Explore.Step;
    sample_window = 0;
    next_sample = max_int;
    samples = [];
    crash_at = max_int;
  }

let set_tracer m tracer = m.tracer <- tracer

exception Crashed of { at_cycle : int }

let set_crash m ~at_cycle =
  if at_cycle < 0 then invalid_arg "Machine.set_crash: negative cycle";
  m.crash_at <- at_cycle

let set_injector m inj =
  m.inject <- inj;
  m.inj_active <- inj != no_injector

let set_san_hook m hook =
  match hook with
  | Some f ->
      m.san <- f;
      m.san_active <- true
  | None ->
      m.san <- ignore;
      m.san_active <- false

let set_explorer m hook =
  match hook with
  | Some f ->
      m.explore <- f;
      m.exp_active <- true
  | None ->
      m.explore <- (fun ~tid:_ ~point:_ -> 0);
      m.exp_active <- false

(* Emit a sanitizer event for thread [t].  Callers must test
   [m.san_active] first so the disabled path allocates nothing. *)
let[@inline never] san m (t : tstate) body =
  m.san { Sev.tid = t.tid; clock = t.clock; body }

let set_sampling m ~window =
  if window < 1 then invalid_arg "Machine.set_sampling: window < 1";
  m.sample_window <- window;
  m.next_sample <- window;
  m.samples <- []

let trace m e = match m.tracer with Some f -> f e | None -> ()

let n_threads m = Array.length m.threads
let memory m = m.mem
let linemap m = m.map
let allocator m = m.alloc
let cost m = m.cost

(* ---------- cache warmth and cycle charging ---------- *)

(* Every cycle charge passes through the skew hook, so a fault plan can
   slow one core down uniformly (DVFS / thermal throttling).  Without an
   injector the charge is a single add. *)
let[@inline] charge m t c =
  let c =
    if not m.inj_active then c
    else
      match m.inject.inj_skew ~tid:t.tid ~clock:t.clock with
      | 0 -> c
      | sk -> c + (c * sk / 1000)
  in
  t.clock <- t.clock + c

(* Injected capacity squeeze overrides the nominal read/write-set limits. *)
let[@inline] rs_capacity m t =
  if not m.inj_active then m.c_rs_cap
  else
    match m.inject.inj_capacity ~tid:t.tid ~clock:t.clock with
    | Some (rs, _) -> rs
    | None -> m.c_rs_cap

let[@inline] ws_capacity m t =
  if not m.inj_active then m.c_ws_cap
  else
    match m.inject.inj_capacity ~tid:t.tid ~clock:t.clock with
    | Some (_, ws) -> ws
    | None -> m.c_ws_cap

(* Conflict/capacity tracking granule of a line.  Everything entering the
   Line_table or a transaction's read/write set is granule-numbered, so a
   non-zero [granule_log2] makes adjacent lines collide (coarse conflict
   detection) and fill capacity in granule units.  Cycle charging, cache
   warmth and socket ownership stay per-line. *)
let[@inline] granule m line = line lsr m.c_gran

let[@inline] socket_of_line m line =
  if line < Array.length m.owner_socket then m.owner_socket.(line) else -1

let set_socket_of_line m line socket =
  (if line >= Array.length m.owner_socket then begin
     let n = max (2 * Array.length m.owner_socket) (line + 1) in
     let a = Array.make n (-1) in
     Array.blit m.owner_socket 0 a 0 (Array.length m.owner_socket);
     m.owner_socket <- a
   end);
  m.owner_socket.(line) <- socket

let mem_cost m t line ~write =
  let idx = line land m.cache_mask in
  let c =
    if t.cache.(idx) = line then m.c_hit
    else begin
      let s = socket_of_line m line in
      let remote = if s >= 0 && s <> t.socket then m.c_remote else 0 in
      t.cache.(idx) <- line;
      m.c_miss + remote
    end
  in
  if write then c + m.c_wextra else c

(* A write that becomes visible: invalidate the line in every other thread's
   warmth cache and record which socket owns it now. *)
let publish_write m ~writer line =
  let idx = line land m.cache_mask in
  let threads = m.threads in
  for i = 0 to Array.length threads - 1 do
    let t = Array.unsafe_get threads i in
    if t.tid <> writer && t.cache.(idx) = line then t.cache.(idx) <- -1
  done;
  set_socket_of_line m line m.threads.(writer).socket

(* ---------- aborting transactions ---------- *)

let release_txn m (v : tstate) (txn : Txn.t) =
  Txn.iter_lines txn (fun line -> Line_table.remove_thread m.lt line v.tid)

let rollback_allocs m (txn : Txn.t) =
  List.iter
    (fun (from_kind, to_kind, words) ->
      Al.reclassify m.alloc ~from_kind:to_kind ~to_kind:from_kind ~words)
    (Txn.reclassifies txn);
  List.iter
    (fun (kind, addr, words) -> Al.free m.alloc ~kind ~addr ~words)
    (Txn.allocs txn)

(* Abort a thread's active transaction: release ownership, roll back
   allocations, account wasted cycles, and arrange for Txn_abort to be
   delivered at the victim's next resumption. *)
let abort_txn m (v : tstate) (code : Abort.code) =
  match v.txn with
  | None -> ()
  | Some txn ->
      release_txn m v txn;
      rollback_allocs m txn;
      v.txn <- None;
      v.cnt.aborts.(Abort.index code) <- v.cnt.aborts.(Abort.index code) + 1;
      v.cnt.wasted_cycles <-
        v.cnt.wasted_cycles + (v.clock - Txn.start_clock txn) + m.c_abort;
      charge m v m.c_abort;
      trace m (Trace.Aborted { tid = v.tid; clock = v.clock; code });
      if m.san_active then san m v Sev.Txn_aborted;
      v.doom <- Some code

(* Simulated process death: every hardware thread dies at this instant.
   In-flight transactions keep RTM failure atomicity — buffered writes are
   discarded and transactional allocations rolled back, exactly as if the
   dying core's coherence traffic had aborted them — but nothing else is
   cleaned up: parked continuations are dropped WITHOUT being discontinued,
   so no OCaml finalizer or exception handler runs.  Held advisory and
   fallback locks stay written in simulated memory and half-applied plain
   (fallback-path) updates stay torn — that abandoned state is precisely
   what crash recovery has to cope with.  Raised from scheduler context, so
   every thread is parked (never mid-resume) when it fires.  No abort
   penalty is charged and no abort counter bumped: a power failure is not
   an RTM event. *)
let crash m ~at_cycle =
  Array.iter
    (fun t ->
      (match t.txn with
      | Some txn ->
          release_txn m t txn;
          rollback_allocs m txn;
          t.txn <- None
      | None -> ());
      t.doom <- None;
      t.pending_exn <- None;
      t.status <- Done)
    m.threads;
  raise (Crashed { at_cycle })

(* Requester-wins: the thread currently issuing the access survives; the
   transactional holder is doomed (as in TSX, where the incoming coherence
   request aborts the transaction that owns the line). *)
let doom_holder m ~attacker ~victim_tid line =
  let v = m.threads.(victim_tid) in
  let a = m.threads.(attacker) in
  let kind = Lmap.kind_of_line m.map line in
  let cls =
    Abort.classify ~victim_key:v.op_key ~attacker_key:a.op_key
      ~line_kind:kind
  in
  let ki = Al.kind_index kind in
  v.cnt.conflict_kinds.(ki) <- v.cnt.conflict_kinds.(ki) + 1;
  trace m
    (Trace.Conflict
       { attacker; victim = victim_tid; line; kind; clock = a.clock });
  abort_txn m v (Abort.Conflict cls)

(* The table is granule-indexed; the attacker's concrete [line] is kept for
   kind classification and the trace (with per-line granules the two
   coincide, and with coarse granules the victim's exact line is unknown —
   the access that triggered the doom is the honest thing to report). *)
let[@inline] doom_writer_of m ~attacker line =
  let w = Line_table.writer m.lt (granule m line) in
  if w >= 0 && w <> attacker then doom_holder m ~attacker ~victim_tid:w line

let[@inline] doom_readers_of m ~attacker line =
  Line_table.iter_readers_except m.lt (granule m line) attacker (fun r ->
      doom_holder m ~attacker ~victim_tid:r line)

(* ---------- transactional hazards ---------- *)

(* Spurious (interrupt/GC-like) and timer aborts, checked on every
   transactional access.  Returns true if the transaction just died. *)
let txn_hazards m (t : tstate) (txn : Txn.t) =
  let spur =
    if m.inj_active then m.c_spur + m.inject.inj_spurious ~tid:t.tid ~clock:t.clock
    else m.c_spur
  in
  if spur > 0 && Rng.int t.rng 1_000_000 < spur then begin
    abort_txn m t Abort.Spurious;
    true
  end
  else if t.clock - Txn.start_clock txn > m.c_txn_limit then begin
    abort_txn m t Abort.Timer;
    true
  end
  else false

(* ---------- effect interpretation ---------- *)

let process_read m (t : tstate) addr =
  t.cnt.accesses <- t.cnt.accesses + 1;
  let line = Mem.line_of_addr addr in
  charge m t (mem_cost m t line ~write:false);
  match t.txn with
  | None ->
      doom_writer_of m ~attacker:t.tid line;
      if m.san_active then
        san m t
          (Sev.Plain_read { addr; kind = Lmap.kind_of_line m.map line });
      Mem.get m.mem addr
  | Some txn ->
      if txn_hazards m t txn then 0
      else begin
        if m.san_active then san m t (Sev.Txn_line_read line);
        match Txn.buffered_value txn addr with
        | Some v -> v
        | None ->
            doom_writer_of m ~attacker:t.tid line;
            let g = granule m line in
            if not (Line_table.is_reader m.lt g t.tid) then begin
              Txn.note_read txn g;
              if Txn.reads txn > rs_capacity m t then begin
                abort_txn m t Abort.Capacity_read;
                0
              end
              else begin
                Line_table.add_reader m.lt g t.tid;
                Mem.get m.mem addr
              end
            end
            else Mem.get m.mem addr
      end

let process_write m (t : tstate) addr value =
  t.cnt.accesses <- t.cnt.accesses + 1;
  let line = Mem.line_of_addr addr in
  charge m t (mem_cost m t line ~write:true);
  match t.txn with
  | None ->
      doom_writer_of m ~attacker:t.tid line;
      doom_readers_of m ~attacker:t.tid line;
      if m.san_active then
        san m t
          (Sev.Plain_write { addr; kind = Lmap.kind_of_line m.map line });
      Mem.set m.mem addr value;
      publish_write m ~writer:t.tid line
  | Some txn ->
      if txn_hazards m t txn then ()
      else begin
        if m.san_active then san m t (Sev.Txn_line_write line);
        doom_writer_of m ~attacker:t.tid line;
        doom_readers_of m ~attacker:t.tid line;
        let g = granule m line in
        if Line_table.writer m.lt g <> t.tid then begin
          Txn.note_write txn g;
          if Txn.written txn > ws_capacity m t then
            abort_txn m t Abort.Capacity_write
          else begin
            Line_table.set_writer m.lt g t.tid;
            (* A written line is implicitly monitored for reads too. *)
            if not (Line_table.is_reader m.lt g t.tid) then begin
              Txn.note_read txn g;
              Line_table.add_reader m.lt g t.tid
            end;
            Txn.buffer_write txn addr value
          end
        end
        else begin
          if not (Line_table.is_reader m.lt g t.tid) then begin
            Txn.note_read txn g;
            Line_table.add_reader m.lt g t.tid
          end;
          Txn.buffer_write txn addr value
        end
      end

let current_value m (t : tstate) addr =
  match t.txn with
  | Some txn -> (
      match Txn.buffered_value txn addr with
      | Some v -> v
      | None -> Mem.get m.mem addr)
  | None -> Mem.get m.mem addr

let process_cas m (t : tstate) addr expected desired =
  t.cnt.accesses <- t.cnt.accesses + 1;
  let line = Mem.line_of_addr addr in
  charge m t (m.c_cas + mem_cost m t line ~write:true);
  let old = current_value m t addr in
  let success = old = expected in
  (match t.txn with
  | None ->
      doom_writer_of m ~attacker:t.tid line;
      if success then begin
        doom_readers_of m ~attacker:t.tid line;
        Mem.set m.mem addr desired;
        publish_write m ~writer:t.tid line
      end
  | Some txn ->
      if txn_hazards m t txn then ()
      else begin
        (if m.san_active then begin
           san m t (Sev.Txn_line_read line);
           if success then san m t (Sev.Txn_line_write line)
         end);
        doom_writer_of m ~attacker:t.tid line;
        let g = granule m line in
        if success then begin
          doom_readers_of m ~attacker:t.tid line;
          if Line_table.writer m.lt g <> t.tid then begin
            Txn.note_write txn g;
            if Txn.written txn > ws_capacity m t then
              abort_txn m t Abort.Capacity_write
            else begin
              Line_table.set_writer m.lt g t.tid;
              if not (Line_table.is_reader m.lt g t.tid) then begin
                Txn.note_read txn g;
                Line_table.add_reader m.lt g t.tid
              end;
              Txn.buffer_write txn addr desired
            end
          end
          else begin
            if not (Line_table.is_reader m.lt g t.tid) then begin
              Txn.note_read txn g;
              Line_table.add_reader m.lt g t.tid
            end;
            Txn.buffer_write txn addr desired
          end
        end
        else if not (Line_table.is_reader m.lt g t.tid) then begin
          Txn.note_read txn g;
          if Txn.reads txn > rs_capacity m t then
            abort_txn m t Abort.Capacity_read
          else Line_table.add_reader m.lt g t.tid
        end
      end);
  (* Preemption while holding a lock: a successful non-transactional
     acquisition of a Lock-kind word can be followed by an injected stall,
     so every other thread sees the lock held for that much longer.  This
     is the trigger for the fallback-holder lemming storm.  (Inert, and
     skipped, without an installed injector.) *)
  (* Tag the exploration point: a successful plain CAS is where lock
     handoffs and version bumps become visible, so targeted policies
     preempt right after it. *)
  (if m.exp_active && success && t.txn = None then
     m.exp_point <-
       (if desired <> 0 && Lmap.kind_of_line m.map line = Lmap.Lock then
          Explore.Lock_acquire
        else Explore.Atomic_rmw));
  (if m.inj_active && success && desired <> 0 && t.txn = None
      && Lmap.kind_of_line m.map line = Lmap.Lock
   then
     let stall = m.inject.inj_lock_stall ~tid:t.tid ~clock:t.clock in
     if stall > 0 then begin
       trace m
         (Trace.Injected
            {
              tid = t.tid;
              clock = t.clock;
              fault = Printf.sprintf "lock-holder-stall:+%d" stall;
            });
       t.clock <- t.clock + stall
     end);
  success

let process_faa m (t : tstate) addr delta =
  let old = current_value m t addr in
  let (_ : bool) = process_cas m t addr old (old + delta) in
  old

let process_xbegin m (t : tstate) =
  t.cnt.accesses <- t.cnt.accesses + 1;
  (match t.txn with
  | Some _ -> failwith "Machine: nested transactions are not supported"
  | None -> ());
  charge m t m.c_xbegin;
  if m.exp_active then m.exp_point <- Explore.Xbegin;
  trace m (Trace.Xbegin { tid = t.tid; clock = t.clock });
  if m.san_active then san m t Sev.Txn_begin;
  Txn.reset t.arena ~start_clock:t.clock;
  t.txn <- Some t.arena

let process_xend m (t : tstate) =
  t.cnt.accesses <- t.cnt.accesses + 1;
  match t.txn with
  | None -> failwith "Machine: xend outside a transaction"
  | Some txn ->
      charge m t m.c_xend;
      if m.exp_active then m.exp_point <- Explore.Xcommit;
      (* Eager conflict detection guarantees exclusive ownership of the
         write set here, so commit always succeeds. *)
      Txn.iter_writes txn (fun addr value ->
          Mem.set m.mem addr value;
          publish_write m ~writer:t.tid (Mem.line_of_addr addr));
      List.iter
        (fun (kind, addr, words) ->
          if m.san_active then san m t (Sev.Free_done { addr; words });
          Al.free m.alloc ~kind ~addr ~words)
        (Txn.frees txn);
      release_txn m t txn;
      t.cnt.commits <- t.cnt.commits + 1;
      t.cnt.committed_cycles <-
        t.cnt.committed_cycles + (t.clock - Txn.start_clock txn);
      trace m
        (Trace.Commit
           {
             tid = t.tid;
             clock = t.clock;
             reads = Txn.reads txn;
             writes = Txn.written txn;
           });
      if m.san_active then san m t Sev.Txn_commit;
      t.txn <- None

let process_alloc m (t : tstate) kind words =
  t.cnt.accesses <- t.cnt.accesses + 1;
  charge m t m.c_miss;
  if
    m.inj_active
    && m.inject.inj_alloc_fail ~tid:t.tid ~clock:t.clock
         ~in_txn:(t.txn <> None)
  then begin
    (* The allocator's fast path is exhausted: inside a transaction the
       slow path (page fault / syscall) always aborts, like real RTM;
       outside, the failure surfaces as an exception the caller must
       handle. *)
    trace m
      (Trace.Injected { tid = t.tid; clock = t.clock; fault = "alloc-pressure" });
    (match t.txn with
    | Some _ -> abort_txn m t Abort.Alloc_fault
    | None -> t.pending_exn <- Some Al.Alloc_failure);
    0
  end
  else begin
    let addr = Al.alloc m.alloc ~kind ~words in
    (match t.txn with
    | Some txn -> Txn.record_alloc txn kind addr words
    | None -> ());
    if m.san_active then san m t (Sev.Alloc_done { addr; words });
    addr
  end

let process_reclassify m (t : tstate) from_kind to_kind words =
  Al.reclassify m.alloc ~from_kind ~to_kind ~words;
  match t.txn with
  | Some txn -> Txn.record_reclassify txn from_kind to_kind words
  | None -> ()

let process_free m (t : tstate) kind addr words =
  t.cnt.accesses <- t.cnt.accesses + 1;
  charge m t m.c_hit;
  match t.txn with
  | Some txn -> Txn.record_free txn kind addr words
  | None ->
      if m.san_active then san m t (Sev.Free_done { addr; words });
      Al.free m.alloc ~kind ~addr ~words

(* ---------- aggregated counters ---------- *)

let aggregate m =
  let acc =
    {
      s_ops = 0;
      s_commits = 0;
      s_aborts = Array.make Abort.n_classes 0;
      s_conflict_kinds = Array.make Al.nkinds 0;
      s_wasted_cycles = 0;
      s_committed_cycles = 0;
      s_accesses = 0;
      s_user = Array.make n_user_counters 0;
      s_clock = 0;
    }
  in
  Array.fold_left
    (fun acc t ->
      Array.iteri (fun i v -> acc.s_aborts.(i) <- acc.s_aborts.(i) + v) t.cnt.aborts;
      Array.iteri
        (fun i v -> acc.s_conflict_kinds.(i) <- acc.s_conflict_kinds.(i) + v)
        t.cnt.conflict_kinds;
      Array.iteri (fun i v -> acc.s_user.(i) <- acc.s_user.(i) + v) t.cnt.user;
      {
        acc with
        s_ops = acc.s_ops + t.cnt.ops;
        s_commits = acc.s_commits + t.cnt.commits;
        s_wasted_cycles = acc.s_wasted_cycles + t.cnt.wasted_cycles;
        s_committed_cycles = acc.s_committed_cycles + t.cnt.committed_cycles;
        s_accesses = acc.s_accesses + t.cnt.accesses;
        s_clock = max acc.s_clock t.clock;
      })
    acc m.threads

(* Periodic counter sampling: the scheduler always resumes the thread with
   the smallest clock, so when that minimum crosses a window boundary every
   thread has already run past it — the cumulative aggregate at that moment
   is the machine state "at" the boundary.  Consumers diff consecutive
   samples to get per-window rates (see Euno_harness.Report). *)
let sample_boundaries m clock =
  while clock >= m.next_sample do
    m.samples <- (m.next_sample, aggregate m) :: m.samples;
    m.next_sample <- m.next_sample + m.sample_window
  done

let samples m = List.rev m.samples

(* ---------- scheduler ---------- *)

let run m bodies =
  let handler (t : tstate) : (unit, unit) Effect.Deep.handler =
    let park : type a. (a, unit) Effect.Deep.continuation -> a -> unit =
     fun k v -> t.status <- Ready (k, v)
    in
    {
      retc =
        (fun () ->
          if m.san_active then
            san m t (Sev.Thread_exit { failed = false; aborted = false });
          t.status <- Done);
      exnc =
        (fun e ->
          (match t.txn with
          | Some txn ->
              release_txn m t txn;
              rollback_allocs m txn;
              t.txn <- None
          | None -> ());
          if m.san_active then
            san m t
              (Sev.Thread_exit
                 {
                   failed = true;
                   aborted =
                     (match e with Eff.Txn_abort _ -> true | _ -> false);
                 });
          t.status <- Failed e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Eff.Read addr ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  park k (process_read m t addr))
          | Eff.Write (addr, v) -> Some (fun k -> park k (process_write m t addr v))
          | Eff.Cas (addr, e0, d) -> Some (fun k -> park k (process_cas m t addr e0 d))
          | Eff.Faa (addr, d) -> Some (fun k -> park k (process_faa m t addr d))
          | Eff.Work c ->
              Some
                (fun k ->
                  charge m t (max 0 c);
                  park k ())
          | Eff.Xbegin -> Some (fun k -> park k (process_xbegin m t))
          | Eff.Xend -> Some (fun k -> park k (process_xend m t))
          | Eff.Xabort code ->
              Some
                (fun k ->
                  if m.exp_active then m.exp_point <- Explore.Xabort;
                  abort_txn m t (Abort.Explicit code);
                  park k ())
          | Eff.Xtest -> Some (fun k -> park k (t.txn <> None))
          | Eff.Tid -> Some (fun k -> park k t.tid)
          | Eff.Clock -> Some (fun k -> park k t.clock)
          | Eff.Rand n -> Some (fun k -> park k (Rng.int t.rng n))
          | Eff.Alloc (kind, words) ->
              Some (fun k -> park k (process_alloc m t kind words))
          | Eff.Free (kind, addr, words) ->
              Some (fun k -> park k (process_free m t kind addr words))
          | Eff.Reclassify (from_kind, to_kind, words) ->
              Some (fun k -> park k (process_reclassify m t from_kind to_kind words))
          | Eff.Op_key key ->
              Some
                (fun k ->
                  t.op_key <- key;
                  park k ())
          | Eff.Op_done ->
              Some
                (fun k ->
                  t.cnt.ops <- t.cnt.ops + 1;
                  trace m
                    (Trace.Op_done
                       { tid = t.tid; clock = t.clock; key = t.op_key });
                  if m.san_active then san m t Sev.Op_exit;
                  t.op_key <- -1;
                  park k ())
          | Eff.Count (i, d) ->
              Some
                (fun k ->
                  t.cnt.user.(i) <- t.cnt.user.(i) + d;
                  park k ())
          | Eff.Untracked_read addr ->
              Some
                (fun k ->
                  charge m t 1;
                  if m.san_active then san m t (Sev.Unsafe_read addr);
                  park k (Mem.get m.mem addr))
          | Eff.Untracked_write (addr, v) ->
              Some
                (fun k ->
                  charge m t 1;
                  if m.san_active then san m t (Sev.Unsafe_write addr);
                  park k (Mem.set m.mem addr v))
          | Eff.San_note note ->
              Some
                (fun k ->
                  if m.san_active then san m t (Sev.Note note);
                  park k ())
          | _ -> None)
    }
  in
  Array.iter
    (fun t ->
      t.status <- Start (fun () -> bodies t.tid);
      t.clock <- 0;
      t.doom <- None;
      t.pending_exn <- None;
      t.txn <- None)
    m.threads;
  (* The run queue holds one entry per runnable thread, keyed by the clock
     it was parked at.  A parked thread's clock can still advance (an
     attacker charging it the abort penalty), so entries are validated on
     pop and re-pushed at the thread's current clock when stale — clocks
     only grow, so a stale (under-estimating) key can never hide the true
     minimum.  Pop order equals the old O(n)-scan order exactly: smallest
     clock first, ties to the smallest tid (see Sched). *)
  Sched.clear m.sched;
  Array.iter (fun t -> Sched.push m.sched ~clock:0 ~tid:t.tid) m.threads;
  (* Resume thread [t] exactly once: it runs until its next effect is
     interpreted and parked (or it finishes).  Shared by the heap loop and
     the exploration loop. *)
  let resume_once t =
    m.current <- t.tid;
    match t.status with
    | Start f ->
        t.status <- Running;
        Effect.Deep.match_with f () (handler t)
    | Ready (k, v) -> (
        t.status <- Running;
        match t.doom with
        | Some code ->
            t.doom <- None;
            (* The first effect after a delivered abort is where the
               retry/fallback path begins — a prime preemption target. *)
            if m.exp_active then m.exp_point <- Explore.Xabort;
            Effect.Deep.discontinue k (Eff.Txn_abort code)
        | None -> (
            match t.pending_exn with
            | Some e ->
                t.pending_exn <- None;
                Effect.Deep.discontinue k e
            | None -> Effect.Deep.continue k v))
    | Running | Done | Failed _ -> assert false
  in
  let rec loop () =
    if not (Sched.is_empty m.sched) then begin
      let packed = Sched.pop m.sched in
      let tid = Sched.tid_of packed in
      let t = m.threads.(tid) in
      (match t.status with
      | Running | Done | Failed _ -> assert false
      | Start _ | Ready _ -> ());
      if t.clock <> Sched.clock_of packed then begin
        (* Stale entry: the thread was charged while parked. *)
        Sched.push m.sched ~clock:t.clock ~tid;
        loop ()
      end
      else dispatch t
    end
  (* Pre-step checks (sampling, injected preemption) run before every step,
     whether the thread came off the heap or straight from run-ahead. *)
  and dispatch t =
    (* The dispatched thread is the (clock, tid) minimum, so the crash
       fires exactly when the global minimum clock crosses [crash_at]. *)
    if t.clock >= m.crash_at then crash m ~at_cycle:t.clock;
    if m.sample_window > 0 then sample_boundaries m t.clock;
    (* Injected preemption: the OS descheduled this thread until
       [resume_at].  A live transaction dies (context switches abort RTM
       transactions), the clock jumps, and the scheduler re-picks — other
       threads run right past the stalled one. *)
    let resume_at =
      if m.inj_active then m.inject.inj_preempt ~tid:t.tid ~clock:t.clock
      else 0
    in
    if resume_at > t.clock then begin
      trace m
        (Trace.Injected
           {
             tid = t.tid;
             clock = t.clock;
             fault = Printf.sprintf "preempt:until=%d" resume_at;
           });
      abort_txn m t Abort.Spurious;
      t.clock <- max t.clock resume_at;
      Sched.push m.sched ~clock:t.clock ~tid:t.tid;
      loop ()
    end
    else step t
  and step t =
    resume_once t;
    match t.status with
    | Start _ | Ready _ ->
        (* Run-ahead: keep executing this thread while it is still the
           global minimum, with zero heap traffic.  The comparison against
           [peek] is exact: the thread itself is not in the heap, tids
           differ, and a stale peeked key only under-estimates its
           thread's true key — so [key < peek] proves this thread is the
           unique (clock, tid) minimum, the same pick the pop path would
           make.  This collapses the single-threaded case (tree preloads,
           run_single, the micro-benches) to straight-line execution. *)
        if
          Sched.is_empty m.sched
          || Sched.pack ~clock:t.clock ~tid:t.tid < Sched.peek m.sched
        then dispatch t
        else begin
          Sched.push m.sched ~clock:t.clock ~tid:t.tid;
          loop ()
        end
    | Done | Failed _ -> loop ()
    | Running -> assert false
  in
  (* Exploration scheduler: same min-(clock, tid) pick, but over a linear
     scan (thread counts in explore runs are tiny) with a park overlay.  A
     policy consultation after every interpreted effect may park the
     thread for [span] picks; parked threads are skipped until their span
     drains (one tick per pick of another thread) or until every runnable
     thread is parked, when the minimum parked thread is force-released so
     the machine never deadlocks itself.

     Timestamp truthfulness: linearizability checking orders events by
     their recorded clocks, so execution order must never contradict
     them.  A thread overtaken while parked could otherwise execute "in
     the past" of effects that already ran; bumping its clock to the start
     clock of the last executed effect ([now]) keeps recorded intervals
     consistent with execution order.  Under a pure min-clock policy the
     bump is provably a no-op (the picked minimum never decreases), so an
     inert policy reproduces the heap loop's schedule exactly. *)
  let explore_loop () =
    let n = Array.length m.threads in
    let parked = Array.make n 0 in
    let now = ref 0 in
    let runnable t =
      match t.status with Start _ | Ready _ -> true | _ -> false
    in
    let pick_min pred =
      let b = ref (-1) in
      for i = 0 to n - 1 do
        let t = m.threads.(i) in
        if runnable t && pred i && (!b < 0 || t.clock < m.threads.(!b).clock)
        then b := i
      done;
      !b
    in
    let rec pick () =
      let c =
        match pick_min (fun i -> parked.(i) = 0) with
        | -1 ->
            let p = pick_min (fun i -> parked.(i) > 0) in
            if p >= 0 then parked.(p) <- 0;
            p
        | c -> c
      in
      if c >= 0 then begin
        let t = m.threads.(c) in
        for i = 0 to n - 1 do
          if i <> c && parked.(i) > 0 && runnable m.threads.(i) then
            parked.(i) <- parked.(i) - 1
        done;
        if t.clock < !now then t.clock <- !now;
        now := t.clock;
        (* Crash parity with [dispatch]. *)
        if t.clock >= m.crash_at then crash m ~at_cycle:t.clock;
        if m.sample_window > 0 then sample_boundaries m t.clock;
        (* Injected-preemption parity with [dispatch]. *)
        let resume_at =
          if m.inj_active then m.inject.inj_preempt ~tid:t.tid ~clock:t.clock
          else 0
        in
        if resume_at > t.clock then begin
          trace m
            (Trace.Injected
               {
                 tid = t.tid;
                 clock = t.clock;
                 fault = Printf.sprintf "preempt:until=%d" resume_at;
               });
          abort_txn m t Abort.Spurious;
          t.clock <- max t.clock resume_at
        end
        else begin
          m.exp_point <- Explore.Step;
          resume_once t;
          match t.status with
          | Start _ | Ready _ ->
              let span = m.explore ~tid:t.tid ~point:m.exp_point in
              if span > 0 then begin
                parked.(c) <- span;
                trace m
                  (Trace.Injected
                     {
                       tid = t.tid;
                       clock = t.clock;
                       fault = Printf.sprintf "explore-park:%d" span;
                     })
              end
          | Done | Failed _ -> ()
          | Running -> assert false
        end;
        pick ()
      end
    in
    pick ()
  in
  if m.exp_active then explore_loop () else loop ();
  (* Close the series with a final partial-window sample so the tail of the
     run is never silently dropped. *)
  if m.sample_window > 0 then begin
    let now = Array.fold_left (fun acc t -> max acc t.clock) 0 m.threads in
    match m.samples with
    | (c, _) :: _ when c >= now -> ()
    | _ -> m.samples <- (now, aggregate m) :: m.samples
  end;
  Array.iter
    (fun t -> match t.status with Failed e -> raise e | _ -> ())
    m.threads

(* ---------- results ---------- *)

let snapshot_thread m tid =
  let t = m.threads.(tid) in
  {
    s_ops = t.cnt.ops;
    s_commits = t.cnt.commits;
    s_aborts = Array.copy t.cnt.aborts;
    s_conflict_kinds = Array.copy t.cnt.conflict_kinds;
    s_wasted_cycles = t.cnt.wasted_cycles;
    s_committed_cycles = t.cnt.committed_cycles;
    s_accesses = t.cnt.accesses;
    s_user = Array.copy t.cnt.user;
    s_clock = t.clock;
  }

let elapsed m = Array.fold_left (fun acc t -> max acc t.clock) 0 m.threads

let total_aborts s = Array.fold_left ( + ) 0 s.s_aborts

(* Run a single-threaded computation to completion and return its result.
   Used for tree preloading and unit tests. *)
let run_single ?(seed = 1) ?(cost = Cost.unit_costs) ~mem ~map ~alloc f =
  let m = create ~threads:1 ~seed ~cost ~mem ~map ~alloc in
  let result = ref None in
  run m (fun _ -> result := Some (f ()));
  match !result with
  | Some v -> v
  | None -> assert false
