(* Transactional ownership of cache lines.

   Models the coherence-protocol state real HTM uses for conflict
   detection: each line touched by an active transaction has at most one
   writer (M state) and a bitmask of readers (S state) over thread ids.

   Storage is two flat arrays indexed directly by line number — the hash
   table this replaces cost a lookup (and often an allocation) on every
   simulated access.  Line numbers are small dense integers handed out by
   the allocator, so the arrays grow geometrically to the highest line
   ever owned and are then allocation-free: every operation is one or two
   array reads/writes.  [occupied] counts lines with any owner so [size]
   stays O(1). *)

type t = {
  mutable writer : int array; (* tid or -1, indexed by line *)
  mutable readers : int array; (* bitmask over tids, indexed by line *)
  mutable occupied : int;
}

let max_threads = 62

(* Start small: a machine is created per run_single call on the harness
   fast path, so creation must stay cheap; the arrays double on demand
   and quickly reach a steady size for real workloads. *)
let initial = 64

let create () =
  {
    writer = Array.make initial (-1);
    readers = Array.make initial 0;
    occupied = 0;
  }

(* Grow both arrays to cover [line]; amortized O(1) per distinct line. *)
let grow t line =
  let n = max (2 * Array.length t.writer) (line + 1) in
  let w = Array.make n (-1) and r = Array.make n 0 in
  Array.blit t.writer 0 w 0 (Array.length t.writer);
  Array.blit t.readers 0 r 0 (Array.length t.readers);
  t.writer <- w;
  t.readers <- r

let[@inline] ensure t line = if line >= Array.length t.writer then grow t line

let[@inline] owned t line = t.writer.(line) >= 0 || t.readers.(line) <> 0

let add_reader t line tid =
  ensure t line;
  if not (owned t line) then t.occupied <- t.occupied + 1;
  t.readers.(line) <- t.readers.(line) lor (1 lsl tid)

let set_writer t line tid =
  ensure t line;
  if not (owned t line) then t.occupied <- t.occupied + 1;
  t.writer.(line) <- tid

(* The writing thread of [line], or -1.  Hot path: no option allocation. *)
let[@inline] writer t line =
  if line < Array.length t.writer then t.writer.(line) else -1

let writer_of t line =
  let w = writer t line in
  if w >= 0 then Some w else None

let[@inline] is_reader t line tid =
  line < Array.length t.readers && t.readers.(line) land (1 lsl tid) <> 0

(* Reader tids of [line] except [tid], ascending — the doom order the
   machine charges victims in, so it is part of the deterministic trace. *)
let iter_readers_except t line tid f =
  if line < Array.length t.readers then begin
    let mask = t.readers.(line) land lnot (1 lsl tid) in
    if mask <> 0 then
      for i = 0 to max_threads - 1 do
        if mask land (1 lsl i) <> 0 then f i
      done
  end

let readers_except t line tid =
  let acc = ref [] in
  iter_readers_except t line tid (fun i -> acc := i :: !acc);
  List.rev !acc

let remove_thread t line tid =
  if line < Array.length t.writer && owned t line then begin
    if t.writer.(line) = tid then t.writer.(line) <- -1;
    t.readers.(line) <- t.readers.(line) land lnot (1 lsl tid);
    if not (owned t line) then t.occupied <- t.occupied - 1
  end

let clear t =
  Array.fill t.writer 0 (Array.length t.writer) (-1);
  Array.fill t.readers 0 (Array.length t.readers) 0;
  t.occupied <- 0

let size t = t.occupied
