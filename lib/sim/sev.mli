(** Semantic-event vocabulary of the sanitizer (EunoSan).

    When armed ({!armed}), the machine forwards every memory access,
    transaction event, lock announcement and thread lifecycle point to an
    installed hook ({!Machine.set_san_hook}) as one of these events; the
    checkers in [Euno_san] consume the stream.  With the sanitizer
    disabled nothing here is consulted on the access path — disabled-mode
    runs are byte-identical to a build without it.

    {b Determinism:} events are emitted synchronously from the machine's
    single-threaded interpreter in execution order, so for a fixed seed
    the event stream — and therefore every sanitizer verdict — is
    bit-for-bit reproducible. *)

(** Protocol family of a lock announcement; paired with a representative
    simulated address, [(kind, id)] identifies one lock uniquely. *)
type lock_kind =
  | Spin  (** {!Euno_sync.Spinlock}, incl. the HTM fallback lock *)
  | Ticket  (** {!Euno_sync.Ticketlock} *)
  | Seq_writer  (** {!Euno_sync.Seqlock} writer side *)
  | Slot  (** a CCM per-slot advisory lock *)
  | Version  (** a Masstree embedded node-version lock *)

(** Announcements performed by instrumented synchronization code via
    {!Api.san_note}; the machine stamps them with tid and clock. *)
type note =
  | Acquire of lock_kind * int  (** after the lock is won *)
  | Release of lock_kind * int  (** after the lock is free again *)
  | Publish of lock_kind * int
      (** one-way happens-before transfer into a lock the announcer does
          not hold (data initialized under one lock, later protected by
          another); ignored by the lock-discipline checker *)
  | Barrier_arrive of int  (** barrier id, on arrival *)
  | Barrier_depart of int  (** barrier id, after the episode completes *)
  | Attempt_enter  (** [Htm.attempt] entered *)
  | Attempt_exit  (** [Htm.attempt] exited, on any path *)
  | Opt_enter  (** optimistic read section begins *)
  | Opt_exit  (** optimistic read section validated or abandoned *)

type event = { tid : int; clock : int; body : body }

and body =
  | Plain_read of { addr : int; kind : Euno_mem.Linemap.kind }
  | Plain_write of { addr : int; kind : Euno_mem.Linemap.kind }
  | Txn_line_read of int  (** line id entering the live read set *)
  | Txn_line_write of int  (** line id entering the live write set *)
  | Txn_begin
  | Txn_commit
  | Txn_aborted
  | Unsafe_read of int  (** untracked access (addr): bypasses coherence *)
  | Unsafe_write of int
  | Alloc_done of { addr : int; words : int }
  | Free_done of { addr : int; words : int }
  | Op_exit  (** one benchmark operation retired *)
  | Thread_exit of { failed : bool; aborted : bool }
      (** [aborted]: the thread died with an uncaught [Txn_abort] *)
  | Note of note

val armed : unit -> bool
(** True inside a sanitizer session on the calling domain.  Announcement
    sites in simulated code test this before building a note, so
    ordinary runs pay one load+branch per announcement site and allocate
    nothing.  Domain-local: arming one pool worker's sanitizer leaves
    cells on other domains uninstrumented. *)

val set_armed : bool -> unit
(** Arm/disarm the sanitizer for the calling domain. *)

val mark_racy : int -> unit
(** Register a word as intentionally racy (a benign-race hint word); the
    race detector ignores plain accesses to it.  Host-side, so marks made
    while preloading survive into the measurement machine.  No-op unless
    {!armed}. *)

val is_racy : int -> bool
val reset_racy : unit -> unit
(** Clear the registry; call at the start of each sanitizer session. *)
