(** Schedule-exploration policies for EunoCheck.

    The default scheduler executes the one canonical min-(clock, tid)
    interleaving per seed.  An exploration policy perturbs it: after every
    interpreted effect the machine consults the policy
    ({!Machine.set_explorer}), which may {e park} the thread that just ran
    for a number of scheduler picks, letting other ready threads overtake
    it.  Forced context switches at transaction and lock boundaries open
    exactly the windows where fast-path/fallback atomicity bugs hide.

    {b Complexity:} one consultation is O(1) for the random policies and
    O(|preemptions|) for {!Replay}; policy state is a few words plus the
    per-thread counters.

    {b Determinism:} a policy's decisions are a pure function of its spec,
    its seed and the consultation stream — never of host state — so a
    (policy, seed) pair names one schedule.  The preemptions it fired
    ({!fired}) replay the identical run under {!Replay}, which is what the
    counterexample shrinker in [Euno_harness.Check_run] relies on.  With
    no explorer installed the machine never consults this module at all
    (inert-branch pattern), so golden traces stay byte-identical. *)

(** Where in the instruction stream a consultation happens.  Every
    interpreted effect is at least a {!Step}; protocol-relevant effects
    are tagged more precisely. *)
type point =
  | Step  (** any interpreted effect *)
  | Xbegin  (** a transaction just started *)
  | Xcommit  (** a transaction just committed *)
  | Xabort
      (** an abort was just delivered or explicitly raised: the
          retry/fallback path begins here *)
  | Lock_acquire
      (** successful non-transactional CAS taking a [Lock]-kind word *)
  | Atomic_rmw
      (** successful non-transactional CAS/FAA on any other word (e.g. a
          Masstree embedded version lock) *)

val point_to_string : point -> string

val point_of_string : string -> point
(** Raises [Invalid_argument] on unknown names. *)

val sync_points : point list
(** All protocol boundaries: every point kind except {!Step}. *)

(** One fired preemption: thread [p_tid] was parked for [p_span] scheduler
    picks at its [p_at]-th consultation ([p_point] records what kind of
    point that was).  The (tid, consultation-index) key is stable across
    runs of the same program, which makes preemption lists replayable. *)
type preemption = { p_tid : int; p_at : int; p_point : point; p_span : int }

val preemption_to_string : preemption -> string
(** ["tid@at:point*span"], parsed back by {!preemption_of_string}. *)

val preemption_of_string : string -> preemption

type spec =
  | Min_clock  (** never deviate: the canonical schedule (control) *)
  | Random_walk of { per_1024 : int; span : int }
      (** park with probability [per_1024/1024] at every consultation, for
          a uniform span in [\[1, span\]] *)
  | Pct of { depth : int; span : int; horizon : int }
      (** PCT-style: [depth] consultation indices drawn uniformly from
          [\[0, horizon)]; the thread consulted there parks for [span] *)
  | Targeted of { per_1024 : int; span : int; points : point list }
      (** park only at the listed point kinds *)
  | Replay of preemption list
      (** fire exactly these preemptions; reproduction and shrinking *)

val spec_to_string : spec -> string
(** Compact descriptor (["walk:per=64,span=256"], ["replay:2@5:xbegin*64"]
    …) embedded in repro commands; inverse of {!spec_of_string}. *)

val spec_of_string : string -> spec
(** Raises [Invalid_argument] on malformed descriptors. *)

type t

val create : ?seed:int -> spec -> t
(** A fresh policy instance.  All randomness comes from a SplitMix64
    stream derived from [seed] (default 1). *)

val spec : t -> spec

val hook : t -> tid:int -> point:point -> int
(** One consultation; returns the park span ([0] = stay schedulable).
    Called by the machine after every interpreted effect of a
    still-runnable thread, in execution order — the per-thread and global
    consultation counters advance on every call.  Pass this (partially
    applied) to {!Machine.set_explorer}. *)

val fired : t -> preemption list
(** Preemptions fired so far, oldest first.  Replaying them with
    {!Replay} under the same seedless machine setup reproduces the
    identical schedule. *)
