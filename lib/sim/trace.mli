(** Event tracing for the simulated machine.

    A bounded ring of transaction lifecycle events (begin, commit, abort,
    conflict, completed operation), installed with
    {!Machine.set_tracer}.  Hooks fire only at transaction boundaries and
    conflicts, so tracing never perturbs simulated results.

    {b Complexity:} with no tracer installed the machine pays one branch
    per traceable event; the ring stores events in a fixed circular buffer
    (O(1) per event, oldest overwritten).

    {b Determinism:} events carry simulated clocks and tids only.  The
    recorded seed-42 streams in [test/golden/] are compared byte-for-byte
    against {!event_to_json} output by the determinism suite, which is how
    engine refactors prove they preserved behavior. *)

type event =
  | Xbegin of { tid : int; clock : int }
  | Commit of { tid : int; clock : int; reads : int; writes : int }
  | Aborted of { tid : int; clock : int; code : Abort.code }
  | Conflict of {
      attacker : int;
      victim : int;
      line : int;
      kind : Euno_mem.Linemap.kind;
      clock : int;
    }
  | Op_done of { tid : int; clock : int; key : int }
  | Injected of { tid : int; clock : int; fault : string }
      (** a fault-injection action fired on this thread *)

val event_to_string : event -> string

type ring

val ring : capacity:int -> ring
(** Retains the most recent [capacity] events. *)

val push : ring -> event -> unit

val total : ring -> int
(** Events ever pushed (including evicted ones). *)

val events : ring -> event list
(** Retained events, oldest first. *)

val to_strings : ring -> string list

val for_thread : ring -> int -> event list
(** Retained events involving one thread (as owner, attacker or victim). *)

(** {2 Machine-readable exports} *)

val event_to_json : event -> Euno_stats.Json.t

val to_jsonl : ring -> string list
(** One compact JSON document per retained event, oldest first. *)

val export_jsonl : ring -> out_channel -> unit
(** Write {!to_jsonl} lines to a channel. *)

val chrome_trace : ring -> Euno_stats.Json.t
(** The retained ring as a Chrome [trace_event] document (loadable in
    chrome://tracing or Perfetto): every transaction is a duration slice
    from xbegin to commit/abort, conflicts and completed ops are instant
    events.  Timestamps are simulated cycles. *)
