(** RTM abort codes with the paper's conflict taxonomy.

    Section 2.3 of the paper decomposes HTM aborts into true conflicts (two
    requests to the same record), false conflicts between different records
    sharing a cache line, and false conflicts on shared metadata.  The
    simulator performs this classification at abort time using the victim's
    and attacker's declared operation keys plus the {!Euno_mem.Linemap} kind
    of the conflicting line.

    {b Complexity:} {!classify} and {!index} are O(1) and allocation-free;
    they run once per abort, never per access.

    {b Determinism:} classification is a pure function of the two op keys
    and the line kind, so identical schedules produce identical abort
    tables. *)

type conflict_class =
  | True_conflict
  | False_record
  | False_metadata
  | Subscription
      (** doomed through the elision-lock subscription by a fallback
          acquirer (the lemming-effect cascade), not by a data conflict *)

type code =
  | Conflict of conflict_class
  | Capacity_read
  | Capacity_write
  | Explicit of int
  | Spurious
  | Timer
  | Alloc_fault
      (** transactional allocation forced onto the slow path by injected
          allocator pressure; a page fault / syscall inside an RTM region
          always aborts the transaction *)

val xabort_lock_held : int
(** Conventional [xabort] imm8 meaning "fallback lock observed held". *)

val xabort_user_exn : int
(** imm8 used by {!Euno_htm} when a user exception escapes a transaction
    body and the transaction must be torn down before re-raising. *)

val xabort_fallback_active : int
(** imm8 used by the 3-path strategy's HTM middle path when its
    in-transaction read of the fallback-activity counter observes a
    software fallback in progress. *)

val n_classes : int
(** Number of distinct counter buckets. *)

val index : code -> int
(** Bucket index of a code, in [\[0, n_classes)]. *)

val class_name : int -> string
(** Short name of a bucket. *)

val to_string : code -> string
val is_conflict : code -> bool

val is_data_conflict : code -> bool
(** A conflict on actual tree data (excludes subscription cascades). *)

val classify :
  victim_key:int -> attacker_key:int -> line_kind:Euno_mem.Linemap.kind ->
  conflict_class
(** Paper taxonomy: lock lines are subscription cascades; otherwise same
    declared key => true conflict, record lines false-record, everything
    else false-metadata.  Keys are [-1] when unset. *)
