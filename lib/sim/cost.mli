(** Cycle-cost model of the simulated multicore.

    Calibrated loosely to the paper's two-socket Xeon E5-2650 testbed.  The
    RTM capacity limits live in a named {!capacity_model} (write set bounded
    by the 32 KB L1, larger read set, per-line conflicts in the nominal
    model) so the harness can sweep models and report which one produced a
    number; the spurious-abort and transaction-duration limits model the
    quirks of real Intel TSX.

    {b Complexity:} a plain immutable record; the machine memoizes every
    field it touches per access into its own struct at creation, so the
    model's shape never costs anything on the hot path.

    {b Determinism:} costs are fixed integer cycle charges; the only
    stochastic knob, [spurious_per_million], draws from the machine's
    seeded PRNG, never from host state. *)

type capacity_model = {
  cm_name : string;
  rs_lines : int;  (** max read-set lines before a [Capacity_read] abort *)
  ws_lines : int;  (** max write-set lines before a [Capacity_write] abort *)
  granule_log2 : int;
      (** conflict/capacity tracking granule as a left-shift over 64-byte
          lines: 0 = per-line (Intel RTM), 2 = 256-byte granules.
          Coarsening affects conflict detection and set-size accounting
          only — cycle charging and cache warmth stay per-line, so the
          nominal [granule_log2 = 0] model is byte-identical to the
          pre-promotion behaviour. *)
}

val nominal : capacity_model
(** Intel TSX-like: rs 4096 / ws 512 lines, per-line conflicts. *)

val limited_read_set : capacity_model
(** The FORTH limited-HTM configuration: asymmetric, with a small (64-line)
    dedicated read-set buffer, so read-heavy transactions abort on
    [Capacity_read] long before the write set fills. *)

val coarse_grain : capacity_model
(** Nominal capacities at 256-byte conflict granules: false sharing
    amplified 4x. *)

val capacity_models : (string * capacity_model) list
(** Every named preset, keyed by [cm_name]. *)

val capacity_model_names : string list

val capacity_model_of_name : string -> capacity_model option

type t = {
  freq_ghz : float;
  cache_hit : int;
  cache_miss : int;
  remote_extra : int;
  write_extra : int;
  cas : int;
  xbegin : int;
  xend : int;
  abort_penalty : int;
  sockets : int;
  cache_entries_log2 : int;
  capacity : capacity_model;
  spurious_per_million : int;
  txn_cycle_limit : int;
}

val default : t
(** Calibrated model used by all benchmarks ({!nominal} capacity). *)

val unit_costs : t
(** Unit costs, no spurious aborts: for unit tests with predictable clocks. *)

val with_capacity : t -> capacity_model -> t

val rs_capacity : t -> int
(** [t.capacity.rs_lines]. *)

val ws_capacity : t -> int
(** [t.capacity.ws_lines]. *)

val cycles_to_seconds : t -> int -> float

val mops : t -> ops:int -> cycles:int -> float
(** Throughput in million operations per second. *)
