(** Cycle-cost model of the simulated multicore.

    Calibrated loosely to the paper's two-socket Xeon E5-2650 testbed.  The
    RTM capacity limits (write set bounded by the 32 KB L1, larger read set)
    and the spurious-abort and transaction-duration limits model the quirks
    of real Intel TSX.

    {b Complexity:} a plain immutable record; the machine memoizes every
    field it touches per access into its own struct at creation, so the
    model's shape never costs anything on the hot path.

    {b Determinism:} costs are fixed integer cycle charges; the only
    stochastic knob, [spurious_per_million], draws from the machine's
    seeded PRNG, never from host state. *)

type t = {
  freq_ghz : float;
  cache_hit : int;
  cache_miss : int;
  remote_extra : int;
  write_extra : int;
  cas : int;
  xbegin : int;
  xend : int;
  abort_penalty : int;
  sockets : int;
  cache_entries_log2 : int;
  rs_capacity : int;
  ws_capacity : int;
  spurious_per_million : int;
  txn_cycle_limit : int;
}

val default : t
(** Calibrated model used by all benchmarks. *)

val unit_costs : t
(** Unit costs, no spurious aborts: for unit tests with predictable clocks. *)

val cycles_to_seconds : t -> int -> float

val mops : t -> ops:int -> cycles:int -> float
(** Throughput in million operations per second. *)
