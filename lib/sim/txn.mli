(** Per-thread RTM transaction state, as a reusable arena.

    Eager conflict detection (ownership acquired at access time through
    the machine's {!Line_table}), lazy versioning (stores buffered until
    commit) — the combination used by Intel TSX, where the L1 cache holds
    speculative state and the coherence protocol detects conflicts as
    they happen.

    {b Complexity:} one arena is created per hardware thread and reused
    for every transaction it runs.  {!reset} is O(1) — it bumps an epoch
    stamp that invalidates the buffered-write table wholesale — and no
    operation allocates on the access path (backing arrays grow
    geometrically and are kept).  {!buffer_write} and {!buffered_value}
    are O(1) expected (open addressing at ≤ 50% load); {!iter_lines} and
    {!iter_writes} are linear in the lines/stores actually touched.

    {b Determinism:} the buffered-write table hashes addresses with a
    fixed multiplicative constant — never host-dependent state — so
    iteration and probe order are identical on every run.  Commit replay
    order is the recorded first-write program order, not table order. *)

type t

val create : tid:int -> t
(** A fresh arena; call once per hardware thread. *)

val reset : t -> start_clock:int -> unit
(** Start a new transaction in this arena.  O(1): previous state is
    discarded by epoch bump and log truncation, not traversal. *)

val tid : t -> int
val start_clock : t -> int

val reads : t -> int
(** Distinct lines in the read set (for capacity accounting). *)

val written : t -> int
(** Distinct lines in the write set. *)

val note_read : t -> int -> unit
(** Count a line newly added to the read set and log it for release.
    The caller (the machine) owns the membership test — a line is "new"
    when its reader bit in the Line_table is clear. *)

val note_write : t -> int -> unit

val buffer_write : t -> int -> int -> unit
(** [buffer_write t addr v]: record a speculative store; applied only at
    commit.  Last value per address wins. *)

val buffered_value : t -> int -> int option
(** The speculative value this transaction wrote to [addr], if any
    (read-own-writes). *)

val iter_lines : t -> (int -> unit) -> unit
(** Every line this transaction claimed in the Line_table, in claim
    order.  A read-then-written line appears twice; release is
    idempotent so this is harmless. *)

val iter_writes : t -> (int -> int -> unit) -> unit
(** Buffered writes, first-write program order, final value per address. *)

val record_alloc : t -> Euno_mem.Linemap.kind -> int -> int -> unit
val record_free : t -> Euno_mem.Linemap.kind -> int -> int -> unit

val record_reclassify :
  t -> Euno_mem.Linemap.kind -> Euno_mem.Linemap.kind -> int -> unit

val allocs : t -> (Euno_mem.Linemap.kind * int * int) list
(** Allocations made inside the transaction, newest first (rolled back on
    abort). *)

val frees : t -> (Euno_mem.Linemap.kind * int * int) list
(** Frees deferred to commit, newest first. *)

val reclassifies :
  t -> (Euno_mem.Linemap.kind * Euno_mem.Linemap.kind * int) list
(** Allocator reclassifications to revert on abort, newest first. *)
