(* Per-thread RTM transaction state: eager conflict detection (ownership
   is acquired at access time via the Line_table) with lazy versioning
   (stores are buffered and applied at commit, so an abort simply discards
   the buffer).

   One value of this type is a reusable *arena* owned by a hardware
   thread for its whole life: [reset] starts a new transaction in O(1) by
   bumping an epoch counter, which invalidates every slot of the buffered
   write table at once — no per-transaction hash tables, no per-access
   allocation, nothing to walk on abort.  Read/write-set *membership* is
   not stored here at all: it lives in the machine's flat Line_table
   (reader bit / writer slot per line); the arena only keeps the log of
   lines this transaction claimed, so releasing them on commit or abort
   is a linear walk of exactly the lines touched.

   Allocations performed inside the transaction are recorded for
   rollback; frees are deferred until commit. *)

type t = {
  tid : int;
  mutable start_clock : int;
  (* Buffered stores: open-addressing table addr -> value whose slots are
     valid only when stamped with the current epoch.  Power-of-two
     capacity, linear probing, grown (rarely) at 50% load. *)
  mutable keys : int array;
  mutable vals : int array;
  mutable stamp : int array;
  mutable mask : int;
  mutable epoch : int;
  mutable buffered : int; (* live slots this epoch *)
  (* Addresses in first-write order, for in-order commit replay. *)
  mutable wlog : int array;
  mutable wlog_len : int;
  (* Lines claimed in the Line_table (readers or writer), for release. *)
  mutable lines : int array;
  mutable lines_len : int;
  mutable allocs : (Euno_mem.Linemap.kind * int * int) list;
  mutable frees : (Euno_mem.Linemap.kind * int * int) list;
  mutable reclassifies :
    (Euno_mem.Linemap.kind * Euno_mem.Linemap.kind * int) list;
  mutable reads : int; (* distinct lines in the read set *)
  mutable written : int; (* distinct lines in the write set *)
}

let initial_buf = 64 (* slots; holds 32 buffered addresses before growing *)
let initial_log = 64

let create ~tid =
  {
    tid;
    start_clock = 0;
    keys = Array.make initial_buf 0;
    vals = Array.make initial_buf 0;
    stamp = Array.make initial_buf 0;
    mask = initial_buf - 1;
    epoch = 1;
    buffered = 0;
    wlog = Array.make initial_log 0;
    wlog_len = 0;
    lines = Array.make initial_log 0;
    lines_len = 0;
    allocs = [];
    frees = [];
    reclassifies = [];
    reads = 0;
    written = 0;
  }

let tid t = t.tid
let start_clock t = t.start_clock
let reads t = t.reads
let written t = t.written
let allocs t = t.allocs
let frees t = t.frees
let reclassifies t = t.reclassifies

(* O(1) regardless of what the previous transaction touched: the epoch
   bump invalidates every buffered-write slot, the logs reset by length. *)
let reset t ~start_clock =
  t.start_clock <- start_clock;
  t.epoch <- t.epoch + 1;
  t.buffered <- 0;
  t.wlog_len <- 0;
  t.lines_len <- 0;
  t.allocs <- [];
  t.frees <- [];
  t.reclassifies <- [];
  t.reads <- 0;
  t.written <- 0

(* Deterministic multiplicative hash; any mixing works, host-independent. *)
let[@inline] slot_hash t addr = (addr * 0x9E3779B97F4A7C1) lsr 16 land t.mask

(* Index of [addr]'s slot, or of the empty slot to insert it at. *)
let find_slot t addr =
  let i = ref (slot_hash t addr) in
  while t.stamp.(!i) = t.epoch && t.keys.(!i) <> addr do
    i := (!i + 1) land t.mask
  done;
  !i

let grow_buf t =
  let old_keys = t.keys and old_vals = t.vals and old_stamp = t.stamp in
  let old_cap = t.mask + 1 in
  let cap = 2 * old_cap in
  t.keys <- Array.make cap 0;
  t.vals <- Array.make cap 0;
  t.stamp <- Array.make cap 0;
  t.mask <- cap - 1;
  for i = 0 to old_cap - 1 do
    if old_stamp.(i) = t.epoch then begin
      let j = find_slot t old_keys.(i) in
      t.keys.(j) <- old_keys.(i);
      t.vals.(j) <- old_vals.(i);
      t.stamp.(j) <- t.epoch
    end
  done

let log_line t line =
  if t.lines_len >= Array.length t.lines then begin
    let bigger = Array.make (2 * Array.length t.lines) 0 in
    Array.blit t.lines 0 bigger 0 t.lines_len;
    t.lines <- bigger
  end;
  t.lines.(t.lines_len) <- line;
  t.lines_len <- t.lines_len + 1

(* The machine calls these when the Line_table says the line is new to
   the respective set; the count is compared against the RTM capacity
   *after* the bump, so a capacity abort still counts the line. *)
let note_read t line =
  t.reads <- t.reads + 1;
  log_line t line

let note_write t line =
  t.written <- t.written + 1;
  log_line t line

let buffer_write t addr value =
  let i = find_slot t addr in
  if t.stamp.(i) <> t.epoch then begin
    (* First write to this address: log it and check the load factor. *)
    if t.wlog_len >= Array.length t.wlog then begin
      let bigger = Array.make (2 * Array.length t.wlog) 0 in
      Array.blit t.wlog 0 bigger 0 t.wlog_len;
      t.wlog <- bigger
    end;
    t.wlog.(t.wlog_len) <- addr;
    t.wlog_len <- t.wlog_len + 1;
    t.keys.(i) <- addr;
    t.vals.(i) <- value;
    t.stamp.(i) <- t.epoch;
    t.buffered <- t.buffered + 1;
    if 2 * t.buffered > t.mask then grow_buf t
  end
  else t.vals.(i) <- value

let buffered_value t addr =
  if t.buffered = 0 then None
  else
    let i = find_slot t addr in
    if t.stamp.(i) = t.epoch then Some t.vals.(i) else None

let iter_lines t f =
  for i = 0 to t.lines_len - 1 do
    f t.lines.(i)
  done

(* Buffered writes in program order of first write; last value per addr. *)
let iter_writes t f =
  for i = 0 to t.wlog_len - 1 do
    let addr = t.wlog.(i) in
    f addr t.vals.(find_slot t addr)
  done

let record_alloc t kind addr words = t.allocs <- (kind, addr, words) :: t.allocs
let record_free t kind addr words = t.frees <- (kind, addr, words) :: t.frees

let record_reclassify t from_kind to_kind words =
  t.reclassifies <- (from_kind, to_kind, words) :: t.reclassifies
