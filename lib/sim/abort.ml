(* RTM abort codes, extended with the paper's conflict taxonomy
   (Section 2.3): conflicts are classified at doom time into true conflicts
   (both operations target the same record), false conflicts between
   different records sharing a cache line, and false conflicts on shared
   metadata. *)

type conflict_class =
  | True_conflict (* attacker and victim target the same key *)
  | False_record (* different keys, record-data line *)
  | False_metadata (* different keys, metadata / version line *)
  | Subscription
    (* the line is an elision lock word: a fallback acquirer doomed every
       transaction subscribed to the lock (the cascade of the lemming
       effect), not a data conflict *)

type code =
  | Conflict of conflict_class
  | Capacity_read
  | Capacity_write
  | Explicit of int (* xabort imm8, e.g. lock-elision "lock is held" *)
  | Spurious (* interrupt / GC-like *)
  | Timer (* transaction exceeded its cycle budget *)
  | Alloc_fault
    (* transactional allocation forced onto the allocator's slow path
       (injected allocator pressure): a page fault / syscall inside an RTM
       region always aborts the transaction *)

(* Conventional imm8 used by lock elision when the fallback lock is found
   held inside the transaction. *)
let xabort_lock_held = 0xff

(* imm8 used by Htm.attempt when a user exception escapes the transaction
   body: the transaction is explicitly aborted before the exception is
   re-raised so the machine never carries an open transaction. *)
let xabort_user_exn = 0xfe

(* imm8 used by the 3-path strategy's HTM middle path when its
   in-transaction read of the fallback-activity counter observes a software
   fallback in progress (the 3-path analogue of the elision lock-held
   abort). *)
let xabort_fallback_active = 0xfd

let n_classes = 10

let index = function
  | Conflict True_conflict -> 0
  | Conflict False_record -> 1
  | Conflict False_metadata -> 2
  | Conflict Subscription -> 3
  | Capacity_read -> 4
  | Capacity_write -> 5
  | Explicit _ -> 6
  | Spurious -> 7
  | Timer -> 8
  | Alloc_fault -> 9

let class_name = function
  | 0 -> "conflict:true"
  | 1 -> "conflict:false-record"
  | 2 -> "conflict:false-meta"
  | 3 -> "conflict:subscription"
  | 4 -> "capacity:read"
  | 5 -> "capacity:write"
  | 6 -> "explicit"
  | 7 -> "spurious"
  | 8 -> "timer"
  | 9 -> "alloc"
  | _ -> invalid_arg "Abort.class_name"

let to_string = function
  | Conflict True_conflict -> "conflict(true: same record)"
  | Conflict False_record -> "conflict(false: different records)"
  | Conflict False_metadata -> "conflict(false: shared metadata)"
  | Conflict Subscription -> "conflict(lock subscription)"
  | Capacity_read -> "capacity(read-set)"
  | Capacity_write -> "capacity(write-set)"
  | Explicit n -> Printf.sprintf "explicit(0x%x)" n
  | Spurious -> "spurious"
  | Timer -> "timer"
  | Alloc_fault -> "alloc-fault"

let is_conflict = function Conflict _ -> true | _ -> false

(* True data conflict on the structure (excludes subscription cascades):
   what Eunomia's per-leaf contention detector should count. *)
let is_data_conflict = function
  | Conflict Subscription -> false
  | Conflict (True_conflict | False_record | False_metadata) -> true
  | Capacity_read | Capacity_write | Explicit _ | Spurious | Timer
  | Alloc_fault ->
      false

(* Lock-kind lines are only ever CAS'd outside transactions; the one way a
   transaction holds one is the elision subscription read at xbegin, so a
   conflict there is a fallback-acquisition cascade, not a data conflict. *)
let classify ~victim_key ~attacker_key ~(line_kind : Euno_mem.Linemap.kind) =
  match line_kind with
  | Euno_mem.Linemap.Lock -> Subscription
  | Euno_mem.Linemap.Record | Euno_mem.Linemap.Reserved ->
      if victim_key >= 0 && victim_key = attacker_key then True_conflict
      else False_record
  | Euno_mem.Linemap.Node_meta | Euno_mem.Linemap.Tree_meta
  | Euno_mem.Linemap.Unknown | Euno_mem.Linemap.Scratch ->
      if victim_key >= 0 && victim_key = attacker_key then True_conflict
      else False_metadata
