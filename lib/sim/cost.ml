(* Cycle-cost model of the simulated machine, loosely calibrated to the
   paper's testbed (two-socket Intel Xeon E5-2650 v3, 2.3 GHz, 64-byte
   lines, 32 KB L1D).  Absolute values only set the scale of reported
   throughput; the reproduced *shapes* come from the RTM conflict protocol. *)

(* A named capacity/conflict model: how many lines a transaction may track
   before a capacity abort, and at what granularity conflicts (and
   capacity) are tracked.  Promoted to a first-class named record so the
   harness can sweep models (and report which one a number came from) the
   same way it sweeps fallback strategies. *)
type capacity_model = {
  cm_name : string;
  rs_lines : int; (* max read-set lines before Capacity_read *)
  ws_lines : int; (* max write-set lines before Capacity_write *)
  granule_log2 : int;
      (* conflict/capacity tracking granule, as a left-shift over 64-byte
         lines: 0 = per-line (Intel RTM), 2 = 256-byte granules (false
         sharing amplified 4x).  Coarsening affects conflict detection and
         set-size accounting only — cycle charging and cache warmth stay
         per-line. *)
}

(* Intel TSX-like: write set bounded by the 32 KB L1D, read set by the L2
   bloom-filter-tracked working set, per-line conflicts. *)
let nominal =
  { cm_name = "nominal"; rs_lines = 4096; ws_lines = 512; granule_log2 = 0 }

(* The FORTH limited-HTM configuration: an asymmetric model in which the
   *read* set is the scarce resource (a small dedicated read-set buffer
   instead of cache-wide tracking), so read-heavy transactions — exactly
   the root-to-leaf traversals of a monolithic tree operation — hit
   Capacity_read long before the write set fills. *)
let limited_read_set =
  { cm_name = "limited-read"; rs_lines = 64; ws_lines = 512; granule_log2 = 0 }

(* Nominal capacities but 256-byte conflict granules: four adjacent lines
   share a conflict granule, so unrelated records collide (false sharing)
   four times as often and capacity fills in granule units. *)
let coarse_grain =
  { cm_name = "coarse-grain"; rs_lines = 4096; ws_lines = 512; granule_log2 = 2 }

let capacity_models =
  [
    (nominal.cm_name, nominal);
    (limited_read_set.cm_name, limited_read_set);
    (coarse_grain.cm_name, coarse_grain);
  ]

let capacity_model_names = List.map fst capacity_models
let capacity_model_of_name name = List.assoc_opt name capacity_models

type t = {
  freq_ghz : float; (* converts cycles to wall-clock ops/s *)
  cache_hit : int; (* access to a line warm in the local cache *)
  cache_miss : int; (* local LLC / DRAM fill *)
  remote_extra : int; (* additional cycles if line last written remotely *)
  write_extra : int; (* store vs. load extra *)
  cas : int; (* atomic RMW *)
  xbegin : int;
  xend : int;
  abort_penalty : int; (* pipeline flush + restart *)
  sockets : int;
  cache_entries_log2 : int; (* per-thread warmth cache, direct-mapped *)
  capacity : capacity_model; (* read/write-set limits + conflict granule *)
  spurious_per_million : int; (* interrupt/GC-like aborts per tx access *)
  txn_cycle_limit : int; (* timer-interrupt abort for long transactions *)
}

let default =
  {
    freq_ghz = 2.3;
    cache_hit = 4;
    cache_miss = 170; (* LLC miss to local DRAM at 2.3 GHz *)
    remote_extra = 300; (* cross-socket HITM / dirty remote fill *)
    write_extra = 2;
    cas = 18;
    xbegin = 42;
    xend = 32;
    abort_penalty = 250;
    sockets = 2;
    cache_entries_log2 = 10;
    capacity = nominal;
    spurious_per_million = 5;
    txn_cycle_limit = 500_000;
  }

(* A frictionless variant useful in unit tests: still detects conflicts but
   charges uniform unit costs so expected clocks are easy to compute. *)
let unit_costs =
  {
    default with
    cache_hit = 1;
    cache_miss = 1;
    remote_extra = 0;
    write_extra = 0;
    cas = 1;
    xbegin = 1;
    xend = 1;
    abort_penalty = 1;
    spurious_per_million = 0;
    txn_cycle_limit = max_int;
  }

let with_capacity t capacity = { t with capacity }

(* Legacy accessors, kept so call sites read as before the promotion. *)
let rs_capacity t = t.capacity.rs_lines
let ws_capacity t = t.capacity.ws_lines

let cycles_to_seconds t cycles = float_of_int cycles /. (t.freq_ghz *. 1e9)

let mops t ~ops ~cycles =
  if cycles = 0 then 0.0
  else float_of_int ops /. cycles_to_seconds t cycles /. 1e6
