(* Domain-local mutable cells.

   A [Domain_ref.t] is the pool-safe replacement for a top-level [ref]
   or [Hashtbl]: each OCaml domain sees its own copy, so campaign cells
   running on worker domains (lib/harness Pool) cannot observe arming
   flags, testonly switches or memo tables mutated by a cell on another
   domain.  On the main domain the cell behaves exactly like the ref it
   replaces — the sequential path is byte-identical.

   [split] runs in the parent at [Domain.spawn] time and derives the
   child's initial value from the parent's (e.g. [Hashtbl.copy] for the
   user-counter registry, [Fun.id] for plain flags), so state that is
   legitimately established once at module-init time — before any
   worker exists — is inherited, while later per-domain mutation stays
   local. *)

type 'a t = 'a Domain.DLS.key

let create ?split init =
  match split with
  | None -> Domain.DLS.new_key init
  | Some f -> Domain.DLS.new_key ~split_from_parent:f init

let get = Domain.DLS.get
let set = Domain.DLS.set
