(** Effect vocabulary of a simulated hardware thread.

    Code that runs on the {!Machine} performs these effects (via the
    {!Api} wrappers) for every memory access, atomic instruction and RTM
    primitive; the scheduler interprets them, which is what makes
    interleaving, conflict detection and cycle accounting deterministic.

    {b Complexity:} performing an effect costs a single constructor
    allocation — multi-argument constructors carry their fields inline
    (no tuple box) because this dispatch happens on every simulated
    instruction.

    {b Determinism:} effects carry only integers and allocator kinds;
    interpretation order is fixed by the scheduler's (clock, tid) order,
    never by host state. *)

type _ Effect.t +=
  | Read : int -> int Effect.t
  | Write : int * int -> unit Effect.t
  | Cas : int * int * int -> bool Effect.t
  | Faa : int * int -> int Effect.t
  | Work : int -> unit Effect.t
  | Xbegin : unit Effect.t
  | Xend : unit Effect.t
  | Xabort : int -> unit Effect.t
  | Xtest : bool Effect.t
  | Tid : int Effect.t
  | Clock : int Effect.t
  | Rand : int -> int Effect.t
  | Alloc : Euno_mem.Linemap.kind * int -> int Effect.t
  | Free : Euno_mem.Linemap.kind * int * int -> unit Effect.t
  | Reclassify : Euno_mem.Linemap.kind * Euno_mem.Linemap.kind * int -> unit Effect.t
  | Op_key : int -> unit Effect.t
  | Op_done : unit Effect.t
  | Count : int * int -> unit Effect.t
  | Untracked_read : int -> int Effect.t
  | Untracked_write : int * int -> unit Effect.t
  | San_note : Sev.note -> unit Effect.t
      (** sanitizer announcement; costs no cycles, only performed while
          {!Sev.armed} *)

exception Txn_abort of Abort.code
(** Delivered into a transaction body when the hardware aborts it; only
    the [Euno_htm] wrappers should catch it. *)

val null : int
(** The null simulated pointer (address 0). *)
