(* Schedule-exploration policies for EunoCheck.

   The machine's default scheduler always resumes the ready thread with the
   smallest (clock, tid) — one canonical interleaving per seed.  An
   exploration policy perturbs that order: after every interpreted effect
   the machine asks the policy whether the thread that just ran should be
   *parked* (descheduled) for a number of scheduler picks, letting other
   ready threads overtake it.  Forced context switches at the right
   instants open exactly the windows where fast-path/fallback atomicity
   bugs hide (a fallback holder parked between its read and its write, an
   optimistic reader parked between validation and use).

   Every policy is a pure function of its own state and a SplitMix64
   stream derived from the seed, so a (policy, seed) pair names one
   schedule: running it twice replays the identical interleaving, and the
   preemptions it fired can be replayed verbatim (and shrunk) with
   [Replay].  Policies never see or mutate machine state — the hook input
   is only (tid, point kind), the output only a park span. *)

type point =
  | Step (* any interpreted effect *)
  | Xbegin
  | Xcommit
  | Xabort (* explicit or delivered abort: the retry/fallback path begins *)
  | Lock_acquire (* successful non-transactional CAS on a Lock-kind word *)
  | Atomic_rmw (* successful non-transactional CAS/FAA elsewhere *)

let point_to_string = function
  | Step -> "step"
  | Xbegin -> "xbegin"
  | Xcommit -> "xcommit"
  | Xabort -> "xabort"
  | Lock_acquire -> "lock"
  | Atomic_rmw -> "rmw"

let point_of_string = function
  | "step" -> Step
  | "xbegin" -> Xbegin
  | "xcommit" -> Xcommit
  | "xabort" -> Xabort
  | "lock" -> Lock_acquire
  | "rmw" -> Atomic_rmw
  | s -> invalid_arg ("Explore.point_of_string: " ^ s)

(* All points a policy may target; [sync_points] excludes the per-effect
   [Step] so a targeted policy only fires at protocol boundaries. *)
let sync_points = [ Xbegin; Xcommit; Xabort; Lock_acquire; Atomic_rmw ]

type preemption = {
  p_tid : int;
  p_at : int; (* per-thread consultation index the preemption fired at *)
  p_point : point; (* point kind observed there (informational) *)
  p_span : int; (* scheduler picks the thread stayed parked for *)
}

let preemption_to_string p =
  Printf.sprintf "%d@%d:%s*%d" p.p_tid p.p_at (point_to_string p.p_point)
    p.p_span

let preemption_of_string s =
  match String.split_on_char '@' s with
  | [ tid; rest ] -> (
      match String.split_on_char ':' rest with
      | [ at; rest ] -> (
          match String.split_on_char '*' rest with
          | [ pt; span ] ->
              {
                p_tid = int_of_string tid;
                p_at = int_of_string at;
                p_point = point_of_string pt;
                p_span = int_of_string span;
              }
          | _ -> invalid_arg ("Explore.preemption_of_string: " ^ s))
      | _ -> invalid_arg ("Explore.preemption_of_string: " ^ s))
  | _ -> invalid_arg ("Explore.preemption_of_string: " ^ s)

type spec =
  | Min_clock
      (* never deviate: the canonical schedule (useful as a control) *)
  | Random_walk of { per_1024 : int; span : int }
      (* at every consultation, park with probability per_1024/1024 for a
         uniform span in [1, span] *)
  | Pct of { depth : int; span : int; horizon : int }
      (* PCT-style: [depth] global consultation indices are drawn uniformly
         from [0, horizon); whichever thread is consulted at one of those
         indices is parked for exactly [span] picks *)
  | Targeted of { per_1024 : int; span : int; points : point list }
      (* park only at the listed point kinds, with probability
         per_1024/1024, for a uniform span in [1, span] *)
  | Replay of preemption list
      (* fire exactly the listed preemptions, keyed by (tid, per-thread
         consultation index); used for reproduction and shrinking *)

let spec_to_string = function
  | Min_clock -> "min-clock"
  | Random_walk { per_1024; span } ->
      Printf.sprintf "walk:per=%d,span=%d" per_1024 span
  | Pct { depth; span; horizon } ->
      Printf.sprintf "pct:depth=%d,span=%d,horizon=%d" depth span horizon
  | Targeted { per_1024; span; points } ->
      Printf.sprintf "targeted:per=%d,span=%d,points=%s" per_1024 span
        (String.concat "+" (List.map point_to_string points))
  | Replay [] -> "replay:"
  | Replay ps ->
      "replay:" ^ String.concat "," (List.map preemption_to_string ps)

(* "key=value" fields after the policy tag, comma-separated. *)
let parse_fields tag s =
  List.map
    (fun field ->
      match String.index_opt field '=' with
      | Some i ->
          ( String.sub field 0 i,
            String.sub field (i + 1) (String.length field - i - 1) )
      | None -> invalid_arg (Printf.sprintf "Explore.spec_of_string: %s:%s" tag s))
    (String.split_on_char ',' s)

let spec_of_string s =
  let tag, rest =
    match String.index_opt s ':' with
    | Some i ->
        (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | None -> (s, "")
  in
  let field fields name =
    match List.assoc_opt name fields with
    | Some v -> int_of_string v
    | None ->
        invalid_arg
          (Printf.sprintf "Explore.spec_of_string: %s missing %s" tag name)
  in
  match tag with
  | "min-clock" -> Min_clock
  | "walk" ->
      let f = parse_fields tag rest in
      Random_walk { per_1024 = field f "per"; span = field f "span" }
  | "pct" ->
      let f = parse_fields tag rest in
      Pct
        {
          depth = field f "depth";
          span = field f "span";
          horizon = field f "horizon";
        }
  | "targeted" ->
      let f = parse_fields tag rest in
      let points =
        match List.assoc_opt "points" f with
        | None | Some "" -> sync_points
        | Some ps ->
            List.map point_of_string (String.split_on_char '+' ps)
      in
      Targeted { per_1024 = field f "per"; span = field f "span"; points }
  | "replay" ->
      if rest = "" then Replay []
      else
        Replay
          (List.map preemption_of_string (String.split_on_char ',' rest))
  | _ -> invalid_arg ("Explore.spec_of_string: unknown policy " ^ s)

type t = {
  spec : spec;
  rng : Rng.t;
  counts : int array; (* per-tid consultation counters *)
  mutable global : int; (* total consultations, for Pct change points *)
  pct_points : int array; (* sorted ascending; empty unless Pct *)
  mutable pct_next : int; (* index of the next unfired Pct change point *)
  mutable fired : preemption list; (* newest first *)
}

let create ?(seed = 1) spec =
  let rng = Rng.create (seed * 2 + 0x9e3779b9) in
  let pct_points =
    match spec with
    | Pct { depth; horizon; _ } ->
        if depth < 0 || horizon < 1 then
          invalid_arg "Explore.create: Pct needs depth >= 0, horizon >= 1";
        let a = Array.init depth (fun _ -> Rng.int rng horizon) in
        Array.sort compare a;
        a
    | _ -> [| |]
  in
  {
    spec;
    rng;
    counts = Array.make Line_table.max_threads 0;
    global = 0;
    pct_points;
    pct_next = 0;
    fired = [];
  }

let fired t = List.rev t.fired

let spec t = t.spec

(* One consultation: called by the machine after every interpreted effect
   of a still-runnable thread.  Returns the park span (0 = keep the thread
   schedulable).  Must be called in execution order — the per-thread and
   global counters advance on every call, so decisions are a pure function
   of the consultation stream. *)
let hook t ~tid ~point =
  let at = t.counts.(tid) in
  t.counts.(tid) <- at + 1;
  let g = t.global in
  t.global <- g + 1;
  let span =
    match t.spec with
    | Min_clock -> 0
    | Random_walk { per_1024; span } ->
        (* Draw the coin first so the consumed randomness per consultation
           is fixed, keeping downstream draws aligned across runs. *)
        let coin = Rng.int t.rng 1024 in
        if coin < per_1024 && span > 0 then 1 + Rng.int t.rng span else 0
    | Pct { span; _ } ->
        (* Consultation indices are consecutive, so only duplicate change
           points make the while loop run more than once. *)
        let fire = ref false in
        while
          t.pct_next < Array.length t.pct_points
          && t.pct_points.(t.pct_next) <= g
        do
          if t.pct_points.(t.pct_next) = g then fire := true;
          t.pct_next <- t.pct_next + 1
        done;
        if !fire then span else 0
    | Targeted { per_1024; span; points } ->
        if List.mem point points then begin
          let coin = Rng.int t.rng 1024 in
          if coin < per_1024 && span > 0 then 1 + Rng.int t.rng span else 0
        end
        else 0
    | Replay ps -> (
        match
          List.find_opt (fun p -> p.p_tid = tid && p.p_at = at) ps
        with
        | Some p -> p.p_span
        | None -> 0)
  in
  if span > 0 then
    t.fired <- { p_tid = tid; p_at = at; p_point = point; p_span = span } :: t.fired;
  span
