(** Instruction set of a simulated hardware thread.

    Everything that runs on the {!Machine} — tree operations, locks,
    workload loops — uses these calls exclusively; they perform {!Eff}
    effects that the scheduler interprets, charges cycles for, and subjects
    to RTM conflict detection.

    {b Complexity:} each call performs exactly one effect — one constructor
    allocation plus one coroutine switch into the scheduler; the
    interpretation itself is O(1) per access (flat-array lookups, see
    {!Machine}).

    {b Determinism:} these are the only doors to simulated state.  Thread
    code that sticks to them (and {!rand} rather than host randomness) is
    replayed bit-for-bit by the deterministic scheduler. *)

val read : int -> int
(** Load the word at an address. *)

val write : int -> int -> unit
(** Store a word. *)

val cas : int -> expected:int -> desired:int -> bool
(** Atomic compare-and-swap; true on success. *)

val faa : int -> int -> int
(** Atomic fetch-and-add; returns the previous value. *)

val work : int -> unit
(** Consume ALU cycles (models off-memory computation). *)

val xbegin : unit -> unit
(** Start an RTM transaction.  Aborts surface as {!Eff.Txn_abort} raised at
    some later instruction; use the [Euno_htm] wrappers rather than calling
    this directly. *)

val xend : unit -> unit
(** Commit.  Always succeeds under eager conflict detection. *)

val xabort : int -> unit
(** Explicit abort with an imm8 code (delivered at the next instruction). *)

val xtest : unit -> bool
(** Inside a transaction? *)

val tid : unit -> int
val clock : unit -> int

val rand : int -> int
(** Deterministic per-thread uniform value in [\[0, bound)]. *)

val alloc : kind:Euno_mem.Linemap.kind -> words:int -> int
(** Allocate simulated memory (rolled back if the transaction aborts). *)

val free : kind:Euno_mem.Linemap.kind -> addr:int -> words:int -> unit
(** Free simulated memory (deferred to commit inside a transaction). *)

val reclassify :
  from_kind:Euno_mem.Linemap.kind ->
  to_kind:Euno_mem.Linemap.kind ->
  words:int ->
  unit
(** Move allocator accounting between kinds (reverted if the enclosing
    transaction aborts); pairs with {!Euno_mem.Linemap.set_range}
    re-tagging. *)

val op_key : int -> unit
(** Declare the key targeted by the current operation, enabling the paper's
    true/false conflict classification. *)

val op_done : unit -> unit
(** Mark one benchmark operation complete. *)

val count : int -> int -> unit
(** Bump a per-thread user counter (see {!Machine.n_user_counters}). *)

val untracked_read : int -> int
(** Statistics access: no coherence traffic, no conflicts. *)

val untracked_write : int -> int -> unit

val san_note : Sev.note -> unit
(** Announce a synchronization-protocol event to the sanitizer.  No-op
    (and performs no effect) unless {!Sev.armed}; call sites should
    still test [Sev.armed ()] first so disabled runs never allocate the
    note.  Never charges simulated cycles. *)
