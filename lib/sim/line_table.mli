(** Transactional cache-line ownership table.

    Models the coherence-protocol state real HTM uses for conflict
    detection: each line touched by an active transaction has at most one
    writer (M state) and a set of readers (S state).  Supports up to 62
    simulated hardware threads (reader sets are int bitmasks).

    {b Complexity:} flat arrays indexed by line number — every query and
    update is O(1) with no per-access allocation (the arrays grow
    geometrically to the highest line ever owned).  [readers_except] is
    the one list-allocating query; the machine's hot path uses
    {!iter_readers_except} and {!writer} instead.

    {b Determinism:} iteration order over readers is ascending tid, which
    fixes the order conflict victims are doomed (and charged) in. *)

type t

val max_threads : int

val create : unit -> t

val add_reader : t -> int -> int -> unit
(** [add_reader t line tid]. *)

val set_writer : t -> int -> int -> unit

val writer : t -> int -> int
(** The writing tid of a line, or [-1] — allocation-free hot path. *)

val writer_of : t -> int -> int option

val is_reader : t -> int -> int -> bool
(** [is_reader t line tid]: is [tid] in the line's reader set? O(1). *)

val iter_readers_except : t -> int -> int -> (int -> unit) -> unit
(** Apply to every reader tid of the line except the given one, in
    ascending tid order, without allocating. *)

val readers_except : t -> int -> int -> int list
(** All reader thread ids of a line except the given one, ascending. *)

val remove_thread : t -> int -> int -> unit
(** Drop a thread's ownership of one line. *)

val clear : t -> unit

val size : t -> int
(** Number of lines currently owned by any transaction; O(1). *)
