(* Event tracing for the simulated machine: a bounded ring of transaction
   lifecycle events (begin / commit / abort / conflict / completed op)
   that answers the debugging question an HTM simulator always gets asked:
   "why did this transaction abort?".

   Install with Machine.set_tracer; the hooks fire only at transaction
   boundaries and conflicts, never on individual accesses, so tracing has
   negligible host cost and zero effect on simulated results. *)

type event =
  | Xbegin of { tid : int; clock : int }
  | Commit of { tid : int; clock : int; reads : int; writes : int }
  | Aborted of { tid : int; clock : int; code : Abort.code }
  | Conflict of {
      attacker : int;
      victim : int;
      line : int;
      kind : Euno_mem.Linemap.kind;
      clock : int; (* attacker's clock at the coherence request *)
    }
  | Op_done of { tid : int; clock : int; key : int }
  | Injected of { tid : int; clock : int; fault : string }
    (* a fault-injection action fired on this thread (see Machine.injector) *)

let event_to_string = function
  | Xbegin { tid; clock } -> Printf.sprintf "[%10d] t%-2d xbegin" clock tid
  | Commit { tid; clock; reads; writes } ->
      Printf.sprintf "[%10d] t%-2d commit (rs=%d ws=%d)" clock tid reads writes
  | Aborted { tid; clock; code } ->
      Printf.sprintf "[%10d] t%-2d ABORT %s" clock tid (Abort.to_string code)
  | Conflict { attacker; victim; line; kind; clock } ->
      Printf.sprintf "[%10d] t%-2d dooms t%-2d on line %d (%s)" clock attacker
        victim line
        (Euno_mem.Linemap.kind_to_string kind)
  | Op_done { tid; clock; key } ->
      Printf.sprintf "[%10d] t%-2d op done (key %d)" clock tid key
  | Injected { tid; clock; fault } ->
      Printf.sprintf "[%10d] t%-2d FAULT %s" clock tid fault

(* Bounded ring buffer of the most recent events. *)
type ring = {
  buf : event option array;
  mutable next : int;
  mutable total : int;
}

let ring ~capacity =
  if capacity < 1 then invalid_arg "Trace.ring: capacity < 1";
  { buf = Array.make capacity None; next = 0; total = 0 }

let push r e =
  r.buf.(r.next) <- Some e;
  r.next <- (r.next + 1) mod Array.length r.buf;
  r.total <- r.total + 1

let total r = r.total

(* Oldest-first retained events. *)
let events r =
  let n = Array.length r.buf in
  let out = ref [] in
  for i = n - 1 downto 0 do
    match r.buf.((r.next + i) mod n) with
    | Some e -> out := e :: !out
    | None -> ()
  done;
  !out

let to_strings r = List.map event_to_string (events r)

(* ---------- machine-readable exports ---------- *)

module Json = Euno_stats.Json

let event_to_json = function
  | Xbegin { tid; clock } ->
      Json.Obj
        [ ("ev", Json.Str "xbegin"); ("tid", Json.Int tid); ("clock", Json.Int clock) ]
  | Commit { tid; clock; reads; writes } ->
      Json.Obj
        [
          ("ev", Json.Str "commit");
          ("tid", Json.Int tid);
          ("clock", Json.Int clock);
          ("reads", Json.Int reads);
          ("writes", Json.Int writes);
        ]
  | Aborted { tid; clock; code } ->
      Json.Obj
        [
          ("ev", Json.Str "abort");
          ("tid", Json.Int tid);
          ("clock", Json.Int clock);
          ("class", Json.Str (Abort.class_name (Abort.index code)));
          ("code", Json.Str (Abort.to_string code));
        ]
  | Conflict { attacker; victim; line; kind; clock } ->
      Json.Obj
        [
          ("ev", Json.Str "conflict");
          ("attacker", Json.Int attacker);
          ("victim", Json.Int victim);
          ("line", Json.Int line);
          ("kind", Json.Str (Euno_mem.Linemap.kind_to_string kind));
          ("clock", Json.Int clock);
        ]
  | Op_done { tid; clock; key } ->
      Json.Obj
        [
          ("ev", Json.Str "op_done");
          ("tid", Json.Int tid);
          ("clock", Json.Int clock);
          ("key", Json.Int key);
        ]
  | Injected { tid; clock; fault } ->
      Json.Obj
        [
          ("ev", Json.Str "injected");
          ("tid", Json.Int tid);
          ("clock", Json.Int clock);
          ("fault", Json.Str fault);
        ]

(* One compact JSON document per retained event, oldest first: cat-able
   into any JSONL pipeline. *)
let to_jsonl r = List.map (fun e -> Json.to_string (event_to_json e)) (events r)

let export_jsonl r oc =
  List.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    (to_jsonl r)

(* Chrome trace_event format (chrome://tracing, Perfetto): each
   transaction becomes a complete ("X") duration slice from its xbegin to
   its commit or abort, conflicts become instant events on the attacker's
   row, and op completions become instants on the owner's row.  Timestamps
   are simulated cycles reported through the "ts"/"dur" microsecond
   fields: absolute units don't matter for inspection, ordering does. *)
let chrome_trace r =
  let open_tx = Hashtbl.create 16 in
  let slices = ref [] in
  let emit json = slices := json :: !slices in
  let common ~name ~ph ~tid ~ts extra =
    Json.Obj
      ([
         ("name", Json.Str name);
         ("ph", Json.Str ph);
         ("pid", Json.Int 0);
         ("tid", Json.Int tid);
         ("ts", Json.Int ts);
       ]
      @ extra)
  in
  let close_tx tid clock ~name args =
    match Hashtbl.find_opt open_tx tid with
    | None -> ()
    | Some start ->
        Hashtbl.remove open_tx tid;
        emit
          (common ~name ~ph:"X" ~tid ~ts:start
             [ ("dur", Json.Int (max 1 (clock - start))); ("args", args) ])
  in
  List.iter
    (fun ev ->
      match ev with
      | Xbegin { tid; clock } -> Hashtbl.replace open_tx tid clock
      | Commit { tid; clock; reads; writes } ->
          close_tx tid clock ~name:"txn:commit"
            (Json.Obj [ ("reads", Json.Int reads); ("writes", Json.Int writes) ])
      | Aborted { tid; clock; code } ->
          close_tx tid clock ~name:"txn:abort"
            (Json.Obj
               [ ("class", Json.Str (Abort.class_name (Abort.index code))) ])
      | Conflict { attacker; victim; line; kind; clock } ->
          emit
            (common ~name:"conflict" ~ph:"i" ~tid:attacker ~ts:clock
               [
                 ("s", Json.Str "t");
                 ( "args",
                   Json.Obj
                     [
                       ("victim", Json.Int victim);
                       ("line", Json.Int line);
                       ("kind", Json.Str (Euno_mem.Linemap.kind_to_string kind));
                     ] );
               ])
      | Op_done { tid; clock; key } ->
          emit
            (common ~name:"op" ~ph:"i" ~tid ~ts:clock
               [ ("s", Json.Str "t"); ("args", Json.Obj [ ("key", Json.Int key) ]) ])
      | Injected { tid; clock; fault } ->
          emit
            (common ~name:"fault" ~ph:"i" ~tid ~ts:clock
               [
                 ("s", Json.Str "t");
                 ("args", Json.Obj [ ("fault", Json.Str fault) ]);
               ]))
    (events r);
  Json.Obj
    [
      ("traceEvents", Json.List (List.rev !slices));
      ("displayTimeUnit", Json.Str "ns");
    ]

(* Events selected by thread, oldest first. *)
let for_thread r tid =
  List.filter
    (function
      | Xbegin e -> e.tid = tid
      | Commit e -> e.tid = tid
      | Aborted e -> e.tid = tid
      | Conflict e -> e.attacker = tid || e.victim = tid
      | Op_done e -> e.tid = tid
      | Injected e -> e.tid = tid)
    (events r)
