(** Deterministic SplitMix64 PRNG.

    All simulator randomness (scheduling jitter, workload generation, the
    Eunomia write scheduler) flows through explicitly seeded instances so
    that every experiment replays exactly.

    {b Complexity:} {!next} is a handful of integer multiplies/shifts on one
    mutable cell; no allocation.

    {b Determinism:} the sequence is a pure function of the seed; the
    simulator never consults host entropy, time, or address layout. *)

type t

val create : int -> t
(** Seeded generator. *)

val next : t -> int
(** Uniform non-negative 62-bit integer. *)

val int : t -> int -> int
(** [int t b] is uniform in [\[0, b)]. Raises [Invalid_argument] if [b <= 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val split : t -> t
(** Independent child generator. *)
