(** Domain-local mutable cells.

    The pool-safe replacement for top-level [ref]/[Hashtbl] bindings in
    libraries reachable from parallel campaign cells: each OCaml domain
    sees its own copy, so a cell arming a flag or installing a table on
    one worker domain cannot perturb a cell on another.  On the main
    domain a [Domain_ref] behaves exactly like the ref it replaces.

    {b Determinism:} domain-locality is what keeps parallel campaigns
    byte-identical to sequential ones — no cross-domain state bleed
    means each cell computes the same result it would alone. *)

type 'a t

val create : ?split:('a -> 'a) -> (unit -> 'a) -> 'a t
(** [create ?split init] makes a fresh domain-local cell.  [init] runs
    lazily, once per domain, on first access from that domain.  When
    [split] is given it runs in the parent at [Domain.spawn] time and
    derives the child's initial value from the parent's current value
    (use e.g. [Hashtbl.copy] to inherit module-init-time registrations
    without sharing the table). *)

val get : 'a t -> 'a
val set : 'a t -> 'a -> unit
