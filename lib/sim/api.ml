(* Instruction set of a simulated thread: thin wrappers performing the
   {!Eff} effects.  All code that runs "on" the machine (trees, locks,
   workloads) is written against this module. *)

let read addr = Effect.perform (Eff.Read addr)
let write addr value = Effect.perform (Eff.Write (addr, value))
let cas addr ~expected ~desired = Effect.perform (Eff.Cas (addr, expected, desired))
let faa addr delta = Effect.perform (Eff.Faa (addr, delta))
let work cycles = Effect.perform (Eff.Work cycles)
let xbegin () = Effect.perform Eff.Xbegin
let xend () = Effect.perform Eff.Xend
let xabort code = Effect.perform (Eff.Xabort code)
let xtest () = Effect.perform Eff.Xtest
let tid () = Effect.perform Eff.Tid
let clock () = Effect.perform Eff.Clock
let rand bound = Effect.perform (Eff.Rand bound)
let alloc ~kind ~words = Effect.perform (Eff.Alloc (kind, words))
let free ~kind ~addr ~words = Effect.perform (Eff.Free (kind, addr, words))

let reclassify ~from_kind ~to_kind ~words =
  Effect.perform (Eff.Reclassify (from_kind, to_kind, words))
let op_key key = Effect.perform (Eff.Op_key key)
let op_done () = Effect.perform Eff.Op_done
let count idx delta = Effect.perform (Eff.Count (idx, delta))
let untracked_read addr = Effect.perform (Eff.Untracked_read addr)
let untracked_write addr value = Effect.perform (Eff.Untracked_write (addr, value))

(* Double-gated on Sev.armed: callers test it before building the note
   (so disabled runs allocate nothing), and the re-check here keeps a
   stray ungated call harmless. *)
let san_note note = if Sev.armed () then Effect.perform (Eff.San_note note)
