(** Sequence lock on one simulated word (even = stable, odd = writing).

    The building block of the Masstree-style "before-and-after" version
    validation and of Eunomia's leaf sequence numbers.

    The writer side carries an owner stamp (tid + 1, in the adjacent
    word): {!write_end} by a thread that is not the current writer raises
    {!Not_owner}.  Readers' {!read_begin}/{!read_validate} pairs are
    announced to the sanitizer as optimistic sections when it is armed. *)

exception Not_owner of { lock : int; tid : int; holder : int }
(** Raised by {!write_end} when the caller is not the current writer
    ([holder] is -1 if no writer was active). *)

val alloc : unit -> int
(** Fresh sequence word on its own line, initially 0 (stable). *)

val read_begin : int -> int
(** Spin until stable; return the observed even version.  Must be paired
    with exactly one {!read_validate}. *)

val read_validate : int -> int -> bool
(** True if the version is unchanged since [read_begin]. *)

val write_begin : int -> unit
(** Acquire the writer side (version becomes odd). *)

val write_begin_bounded : max_cycles:int -> int -> bool
(** Like {!write_begin} but gives up (false) after ~[max_cycles] of
    spinning, so a leaked writer lock cannot hang the caller forever. *)

val write_end : int -> unit
(** Release (version becomes even, one step up).  Raises {!Not_owner}
    if the caller did not win {!write_begin}. *)

val writer : int -> int
(** Tid of the active writer, or -1. *)

val read : int -> (unit -> 'a) -> 'a
(** Optimistic read section: retries [f] until it runs under a stable,
    unchanged version. [f] must be side-effect-free. *)

val version : int -> int
