(** Sense-reversing centralized barrier over simulated memory.

    Lets a fixed set of simulated threads rendezvous, e.g. to quiesce the
    machine at an invariant checkpoint (arrive, let one thread validate,
    arrive again, resume).  State lives on a private [Scratch] line, so
    barrier traffic never interferes with tree data or lock fault hooks. *)

type t

exception Timeout of { tid : int; waited : int }
(** A party failed to arrive within the spin bound — under fault injection
    a dead or unreasonably stalled peer must surface as a failure rather
    than spin the simulation forever. *)

val create : parties:int -> t
(** Must be called on the machine (it allocates simulated memory).  All
    [parties] threads must call {!wait} the same number of times. *)

val wait : ?max_cycles:int -> t -> unit
(** Block (spin) until all parties have arrived.  Reusable: each episode
    flips the sense.  @raise Timeout after [max_cycles] simulated cycles
    (default 50M). *)
