(** Fair FIFO ticket lock (two simulated words on separate lines).

    Hardened like {!Spinlock}: a holder stamp (tid + 1) on the serving
    line makes a release by a thread that does not hold the lock raise
    {!Not_owner} instead of corrupting the queue, and
    {!acquire_bounded} gives fallback-style callers a way to give up on
    a leaked or stalled lock.  When the sanitizer is armed, successful
    acquisitions and releases are announced to it ({!Euno_sim.Sev}). *)

type t

exception Not_owner of { lock : int; tid : int; holder : int }
(** Raised by {!release} when the caller is not the current holder
    ([holder] is -1 if the lock was not held at all). *)

val alloc : unit -> t

val acquire : t -> unit
(** Take a ticket and spin (FIFO-fair) until served. *)

val try_acquire : t -> bool
(** Acquire only if the lock is free right now; never queues.  Loses to
    any concurrent enqueuer, preserving fairness for queued waiters. *)

val acquire_bounded : max_cycles:int -> t -> bool
(** Poll {!try_acquire} for ~[max_cycles], then give up (false).  Never
    joins the FIFO queue — an abandoned ticket would deadlock every
    later waiter — so it trades fairness for boundedness. *)

val release : t -> unit
(** Advance the queue.  Raises {!Not_owner} if the caller does not hold
    the lock. *)

val holder : t -> int
(** Tid of the current holder, or -1. *)

val is_locked : t -> bool
val with_lock : t -> (unit -> 'a) -> 'a
