(* Test-and-test-and-set spinlock on one simulated word with exponential
   backoff.  The word lives on its own cache line (the allocator
   line-aligns), so lock traffic never false-shares with data.

   Ownership discipline: the locked value is the holder's tid + 1, so an
   erroneous release of an unheld lock — or of a lock some other thread
   holds — is detected instead of silently corrupting mutual exclusion.
   Elision subscribers only care that the word is non-zero, so the stamp
   is invisible to the HTM fast path. *)

module Api = Euno_sim.Api
module Sev = Euno_sim.Sev

let unlocked = 0

exception Not_owner of { lock : int; tid : int; holder : int }

(* The locked value identifies the holder. *)
let stamp () = Api.tid () + 1

(* Allocate a fresh lock word (entire line, kind Lock). *)
let alloc () =
  Api.alloc ~kind:Euno_mem.Linemap.Lock ~words:Euno_mem.Memory.line_words

let try_acquire addr =
  let ok =
    Api.read addr = unlocked
    && Api.cas addr ~expected:unlocked ~desired:(stamp ())
  in
  if ok && Sev.armed () then Api.san_note (Sev.Acquire (Sev.Spin, addr));
  ok

let acquire addr =
  let b = Backoff.create () in
  let rec loop () =
    if not (try_acquire addr) then begin
      Backoff.once b;
      loop ()
    end
  in
  loop ()

(* Bounded acquisition: gives up after ~[max_cycles] of spinning so a
   leaked or stalled lock cannot hang the caller forever. *)
let acquire_bounded ~max_cycles addr =
  let t0 = Api.clock () in
  let b = Backoff.create () in
  let rec loop () =
    if try_acquire addr then true
    else if Api.clock () - t0 >= max_cycles then false
    else begin
      Backoff.once b;
      loop ()
    end
  in
  loop ()

let holder addr =
  let v = Api.read addr in
  if v = unlocked then -1 else v - 1

let release addr =
  let v = Api.read addr in
  let me = stamp () in
  if v <> me then
    raise (Not_owner { lock = addr; tid = me - 1; holder = v - 1 });
  (* Announce before the unlocking write: once the word goes free the next
     acquirer's note may enter the event stream ahead of ours, and the
     sanitizer would miss the release->acquire edge.  The write itself is
     on a Lock line the race checker never examines. *)
  if Sev.armed () then Api.san_note (Sev.Release (Sev.Spin, addr));
  Api.write addr unlocked

let is_locked addr = Api.read addr <> unlocked

let with_lock addr f =
  acquire addr;
  match f () with
  | v ->
      release addr;
      v
  | exception e ->
      release addr;
      raise e
