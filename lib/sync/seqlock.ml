(* Sequence lock on one simulated word: even = stable, odd = writer in
   critical section.  Readers retry until they observe the same even value
   before and after; writers are serialized by the CAS in write_begin.

   The writer side is hardened like Spinlock: an owner stamp (tid + 1) in
   the word next to the sequence word makes write_end by a thread that is
   not the current writer raise Not_owner instead of silently flipping
   the version to "stable" under a live writer.  When the sanitizer is
   armed, writer acquire/release and the readers' optimistic sections are
   announced to it. *)

module Api = Euno_sim.Api
module Sev = Euno_sim.Sev

exception Not_owner of { lock : int; tid : int; holder : int }

(* Owner stamp, on the same Lock line as the sequence word. *)
let owner_addr addr = addr + 1

let alloc () =
  Api.alloc ~kind:Euno_mem.Linemap.Lock ~words:Euno_mem.Memory.line_words

(* Readers: read_begin/read_validate must be paired — each begin opens an
   optimistic section for the sanitizer and each validate closes it. *)
let read_begin addr =
  if Sev.armed () then Api.san_note Sev.Opt_enter;
  let rec stable () =
    let v = Api.read addr in
    if v land 1 = 1 then begin
      Api.work 16;
      stable ()
    end
    else v
  in
  stable ()

let read_validate addr v0 =
  let ok = Api.read addr = v0 in
  if Sev.armed () then Api.san_note Sev.Opt_exit;
  ok

let announce_acquired addr =
  Api.write (owner_addr addr) (Api.tid () + 1);
  if Sev.armed () then Api.san_note (Sev.Acquire (Sev.Seq_writer, addr))

let write_begin addr =
  let rec try_lock () =
    let v = Api.read addr in
    if v land 1 = 1 || not (Api.cas addr ~expected:v ~desired:(v + 1)) then begin
      Api.work 16;
      try_lock ()
    end
  in
  try_lock ();
  announce_acquired addr

(* Bounded writer acquisition: unlike a ticket queue there is nothing to
   retract — a failed CAS leaves no trace — so bounding is just a clock
   check on the retry loop. *)
let write_begin_bounded ~max_cycles addr =
  let t0 = Api.clock () in
  let rec try_lock () =
    let v = Api.read addr in
    if v land 1 = 0 && Api.cas addr ~expected:v ~desired:(v + 1) then begin
      announce_acquired addr;
      true
    end
    else if Api.clock () - t0 >= max_cycles then false
    else begin
      Api.work 16;
      try_lock ()
    end
  in
  try_lock ()

let write_end addr =
  let me = Api.tid () + 1 in
  let h = Api.read (owner_addr addr) in
  if h <> me then
    raise (Not_owner { lock = addr; tid = me - 1; holder = h - 1 });
  (* Announce before the sequence bump: once the word turns even the next
     writer's acquire note may precede ours in the event stream. *)
  if Sev.armed () then Api.san_note (Sev.Release (Sev.Seq_writer, addr));
  Api.write (owner_addr addr) 0;
  Api.write addr (Api.read addr + 1)

let writer t =
  let v = Api.read (owner_addr t) in
  if v = 0 then -1 else v - 1

let read addr f =
  let rec attempt () =
    let v0 = read_begin addr in
    let result = f () in
    if read_validate addr v0 then result else attempt ()
  in
  attempt ()

let version addr = Api.read addr
