(** Test-and-test-and-set spinlock on one simulated word.

    A lock is just a word address; {!alloc} returns one on a private cache
    line.  Any line-aligned word a data structure reserves (e.g. the
    Euno-B+Tree per-leaf split lock) works with the same operations.

    Ownership discipline: the locked value is the holder's tid + 1.
    {!release} verifies the caller holds the lock and raises {!Not_owner}
    otherwise — a double release or a release of a foreign lock is a bug
    that would silently break mutual exclusion on real hardware.  Elision
    subscribers only test the word against zero, so the holder stamp is
    invisible to the HTM fast path. *)

exception Not_owner of { lock : int; tid : int; holder : int }
(** Raised by {!release} when the lock word does not carry the caller's
    stamp.  [holder] is the offending holder's tid, or [-1] if the lock
    was not held at all. *)

val alloc : unit -> int
(** Fresh lock word on its own line (kind [Lock]), initially unlocked. *)

val try_acquire : int -> bool
val acquire : int -> unit

val acquire_bounded : max_cycles:int -> int -> bool
(** Like {!acquire} but gives up after roughly [max_cycles] simulated
    cycles of spinning; [false] means the lock was never acquired.  The
    escape hatch that keeps a leaked or stalled lock from hanging its
    waiters forever. *)

val release : int -> unit
(** @raise Not_owner if the calling thread does not hold the lock. *)

val is_locked : int -> bool

val holder : int -> int
(** Tid of the current holder, or [-1] when unlocked. *)

val with_lock : int -> (unit -> 'a) -> 'a
(** Acquire, run, release (also on exception). *)
