(* Sense-reversing centralized barrier over simulated memory.

   Used by the chaos harness to quiesce all worker threads at invariant
   checkpoints: every party arrives, one designated thread validates the
   structure while the others hold at a second barrier, then everyone
   resumes.  The count and sense words live on one private Scratch line so
   barrier traffic neither false-shares with data nor triggers the
   machine's Lock-line fault hooks.

   The spin is bounded: if a party never arrives (its thread died or is
   stalled beyond reason), waiters raise Timeout instead of spinning the
   simulation forever — under fault injection a hung barrier must surface
   as a failure, not a livelock. *)

module Api = Euno_sim.Api
module Sev = Euno_sim.Sev

type t = { base : int; parties : int }

exception Timeout of { tid : int; waited : int }

let count_addr t = t.base
let sense_addr t = t.base + 1

let create ~parties =
  if parties < 1 then invalid_arg "Barrier.create: parties < 1";
  let base =
    Api.alloc ~kind:Euno_mem.Linemap.Scratch ~words:Euno_mem.Memory.line_words
  in
  (* allocations are zeroed: count = 0, sense = 0 *)
  { base; parties }

let default_max_wait = 50_000_000

(* Sanitizer happens-before: every party announces arrival before the
   last arriver flips the sense, and departure only after observing the
   flip, so the event stream orders all arrivals before all departures
   of an episode. *)
let wait ?(max_cycles = default_max_wait) t =
  if Sev.armed () then Api.san_note (Sev.Barrier_arrive t.base);
  let sense = Api.read (sense_addr t) in
  let arrived = Api.faa (count_addr t) 1 + 1 in
  if arrived = t.parties then begin
    (* Last arriver: open the next episode, then release everyone. *)
    Api.write (count_addr t) 0;
    Api.write (sense_addr t) (1 - sense);
    if Sev.armed () then Api.san_note (Sev.Barrier_depart t.base)
  end
  else begin
    let t0 = Api.clock () in
    let rec spin () =
      if Api.read (sense_addr t) = sense then begin
        if Api.clock () - t0 > max_cycles then
          raise (Timeout { tid = Api.tid (); waited = Api.clock () - t0 });
        Api.work 64;
        spin ()
      end
    in
    spin ();
    if Sev.armed () then Api.san_note (Sev.Barrier_depart t.base)
  end
