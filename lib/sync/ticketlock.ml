(* Fair FIFO ticket lock on two simulated words (next-ticket, now-serving),
   placed on separate cache lines to avoid ping-pong between enqueuers and
   the release path.

   Ownership discipline mirrors Spinlock's hardening: a third word (on the
   serving line) stamps the holder's tid + 1, so releasing a lock you do
   not hold raises Not_owner instead of silently advancing the queue and
   letting two waiters in at once. *)

module Api = Euno_sim.Api
module Sev = Euno_sim.Sev
module Memory = Euno_mem.Memory

type t = { next : int; serving : int }

exception Not_owner of { lock : int; tid : int; holder : int }

(* The holder stamp shares the serving line: only the winning waiter and
   the releasing holder touch it, never the enqueue path. *)
let owner_addr t = t.serving + 1

let alloc () =
  let next = Api.alloc ~kind:Euno_mem.Linemap.Lock ~words:Memory.line_words in
  let serving = Api.alloc ~kind:Euno_mem.Linemap.Lock ~words:Memory.line_words in
  { next; serving }

let announce_acquired t =
  Api.write (owner_addr t) (Api.tid () + 1);
  if Sev.armed () then Api.san_note (Sev.Acquire (Sev.Ticket, t.serving))

let acquire t =
  let ticket = Api.faa t.next 1 in
  let rec wait () =
    if Api.read t.serving <> ticket then begin
      Api.work 24;
      wait ()
    end
  in
  wait ();
  announce_acquired t

(* Grab the lock only if it is free right now: when next = serving no
   ticket is outstanding, so advancing next claims the ticket currently
   being served.  The CAS loses to any concurrent enqueuer, preserving
   fairness for queued waiters. *)
let try_acquire t =
  let s = Api.read t.serving in
  let ok = Api.read t.next = s && Api.cas t.next ~expected:s ~desired:(s + 1) in
  if ok then announce_acquired t;
  ok

(* Bounded acquisition never joins the FIFO queue: a queued ticket cannot
   be abandoned without deadlocking every later waiter, so the bounded
   path polls try_acquire and gives up after ~[max_cycles].  This trades
   fairness for the guarantee that a leaked or stalled lock cannot hang
   the caller forever — exactly the fallback-path contract. *)
let acquire_bounded ~max_cycles t =
  let t0 = Api.clock () in
  let rec loop () =
    if try_acquire t then true
    else if Api.clock () - t0 >= max_cycles then false
    else begin
      Api.work 24;
      loop ()
    end
  in
  loop ()

let holder t =
  let v = Api.read (owner_addr t) in
  if v = 0 then -1 else v - 1

let is_locked t = Api.read (owner_addr t) <> 0

let release t =
  let me = Api.tid () + 1 in
  let h = Api.read (owner_addr t) in
  if h <> me then
    raise (Not_owner { lock = t.serving; tid = me - 1; holder = h - 1 });
  (* Announce before the serving bump: once serving advances the next
     waiter's acquire note may precede ours in the event stream. *)
  if Sev.armed () then Api.san_note (Sev.Release (Sev.Ticket, t.serving));
  Api.write (owner_addr t) 0;
  Api.write t.serving (Api.read t.serving + 1)

let with_lock t f =
  acquire t;
  match f () with
  | v ->
      release t;
      v
  | exception e ->
      release t;
      raise e
