(* YCSB-style key-popularity distributions (Section 5.1 and 5.5).

   Samplers return a key in [0, n).  Rank 0 is the hottest key and ranks map
   to keys in order, so hot keys are *adjacent* — this matches the paper's
   observation that contended workloads hit consecutive records and is what
   drives false sharing inside leaf nodes.  Pass [~scrambled:true] to hash
   ranks across the key space instead (YCSB's scrambled variant).

   Each sampler owns a seeded host-side PRNG: generation happens on the
   benchmark client side, off the simulated memory system (the harness
   charges a fixed cycle cost per generated operation instead). *)

module Rng = Euno_sim.Rng

type spec =
  | Uniform
  | Zipfian of float (* skew coefficient theta, 0 <= theta < 1 *)
  | Self_similar of float (* h: the hottest h*n keys get (1-h) of accesses *)
  | Poisson_hotspot of { hot_frac : float; hot_mass : float }
  | Normal_hotspot of { sigma_frac : float } (* sigma = sigma_frac * mean *)
  | Latest of float
    (* YCSB's "latest" pattern: zipfian over recency — rank r maps to the
       r-th most recently inserted key.  The caller advances the frontier
       with [advance]; used by YCSB workload D. *)

let spec_to_string = function
  | Uniform -> "uniform"
  | Zipfian theta -> Printf.sprintf "zipfian(%.2f)" theta
  | Self_similar h -> Printf.sprintf "self-similar(%.2f)" h
  | Poisson_hotspot { hot_frac; hot_mass } ->
      Printf.sprintf "poisson(%.0f%%->%.0f%%)" (hot_frac *. 100.)
        (hot_mass *. 100.)
  | Normal_hotspot { sigma_frac } ->
      Printf.sprintf "normal(sigma=%.1f%%)" (sigma_frac *. 100.)
  | Latest theta -> Printf.sprintf "latest(%.2f)" theta

type sampler =
  | S_uniform
  | S_zipf of { theta : float; zetan : float; alpha : float; eta : float }
  | S_selfsim of { k : float }
  | S_poisson of { hot_keys : int; hot_mass : float; lambda : float }
  | S_normal of { mean : float; sigma : float }
  | S_latest of { inner : sampler }

type t = {
  n : int;
  rng : Rng.t;
  sampler : sampler;
  scrambled : bool;
  mutable frontier : int; (* most recent key, for Latest *)
}

let zeta n theta =
  let acc = ref 0.0 in
  for i = 1 to n do
    acc := !acc +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !acc

let make_zipf n theta =
  if theta <= 0.0 then S_uniform
  else begin
    let zetan = zeta n theta in
    let zeta2 = zeta 2 theta in
    let alpha = 1.0 /. (1.0 -. theta) in
    let eta =
      (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
      /. (1.0 -. (zeta2 /. zetan))
    in
    S_zipf { theta; zetan; alpha; eta }
  end

let create ?(scrambled = false) spec ~n ~seed =
  if n < 2 then invalid_arg "Dist.create: n < 2";
  let sampler =
    match spec with
    | Uniform -> S_uniform
    | Zipfian theta ->
        if theta < 0.0 || theta >= 1.0 then
          invalid_arg "Dist.create: zipfian theta must be in [0, 1)";
        make_zipf n theta
    | Self_similar h ->
        if h <= 0.0 || h >= 1.0 then invalid_arg "Dist.create: bad h";
        S_selfsim { k = log h /. log (1.0 -. h) }
    | Poisson_hotspot { hot_frac; hot_mass } ->
        let hot_keys = max 1 (int_of_float (hot_frac *. float_of_int n)) in
        S_poisson { hot_keys; hot_mass; lambda = float_of_int hot_keys /. 4.0 }
    | Normal_hotspot { sigma_frac } ->
        let mean = float_of_int n /. 2.0 in
        S_normal { mean; sigma = sigma_frac *. mean }
    | Latest theta ->
        if theta < 0.0 || theta >= 1.0 then
          invalid_arg "Dist.create: latest theta must be in [0, 1)";
        S_latest { inner = make_zipf n theta }
  in
  { n; rng = Rng.create seed; sampler; scrambled; frontier = n - 1 }

(* Bijective mixer for the scrambled variant: ranks permute onto keys, so
   distinct hot ranks never collide (a collision would merge two hot keys
   into one and inflate contention) and rank 0 moves away from key 0.

   The mix is a permutation of [0, 2^k): xor with a constant, odd-constant
   multiply mod 2^k and xor-shift-right are each invertible on k bits.
   For n that is not a power of two (partitioned workloads divide the key
   space by the thread count), cycle-walking re-mixes until the image
   lands below n, which preserves bijectivity on [0, n). *)
let scramble n rank =
  let k =
    let rec bits k = if 1 lsl k >= n then k else bits (k + 1) in
    bits 1
  in
  let mask = (1 lsl k) - 1 in
  let mix x =
    let x = (x lxor 0x9E3779B9) land mask in
    let x = x * 0x2545F4914F6CDD1D land mask in
    let x = x lxor (x lsr ((k / 2) + 1)) in
    x * 0x9E3779B1 land mask
  in
  let rec walk x =
    let x = mix x in
    if x < n then x else walk x
  in
  walk rank

let gaussian rng =
  (* Box-Muller; one value per call is plenty here. *)
  let u1 = max (Rng.float rng) 1e-12 in
  let u2 = Rng.float rng in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let poisson rng lambda =
  if lambda > 64.0 then
    (* Normal approximation for large lambda. *)
    max 0 (int_of_float (lambda +. (sqrt lambda *. gaussian rng) +. 0.5))
  else begin
    (* Knuth's multiplication method. *)
    let l = exp (-.lambda) in
    let rec go k p =
      let p = p *. Rng.float rng in
      if p > l then go (k + 1) p else k
    in
    go 0 1.0
  end

let rec rank_of t sampler =
  match sampler with
  | S_latest { inner } ->
      (* Recency rank 0 = the newest key; fold back into the key space. *)
      let r = rank_of t inner in
      (t.frontier - r + t.n) mod t.n
  | S_uniform -> Rng.int t.rng t.n
  | S_zipf { theta; zetan; alpha; eta } ->
      let u = Rng.float t.rng in
      let uz = u *. zetan in
      if uz < 1.0 then 0
      else if uz < 1.0 +. Float.pow 0.5 theta then 1
      else
        let r =
          float_of_int t.n
          *. Float.pow ((eta *. u) -. eta +. 1.0) alpha
        in
        min (t.n - 1) (int_of_float r)
  | S_selfsim { k } ->
      let u = max (Rng.float t.rng) 1e-12 in
      min (t.n - 1) (int_of_float (float_of_int t.n *. Float.pow u k))
  | S_poisson { hot_keys; hot_mass; lambda } ->
      (* Mixture: with the calibrated probability, a Poisson-shaped draw
         inside the hot region; otherwise uniform over the whole space.
         hot_mass = p + (1-p) * hot_frac  =>  p below. *)
      let hot_frac = float_of_int hot_keys /. float_of_int t.n in
      let p = (hot_mass -. hot_frac) /. (1.0 -. hot_frac) in
      if Rng.float t.rng < p then min (hot_keys - 1) (poisson t.rng lambda)
      else Rng.int t.rng t.n
  | S_normal { mean; sigma } ->
      let v = int_of_float (mean +. (sigma *. gaussian t.rng)) in
      min (t.n - 1) (max 0 v)

let rank t = rank_of t t.sampler

let next t =
  let r = rank t in
  if t.scrambled then scramble t.n r else r

let advance t = t.frontier <- (t.frontier + 1) mod t.n

let size t = t.n

(* Empirical mass of the hottest [frac] of keys, for calibration tests. *)
let hot_mass t ~samples ~frac =
  let counts = Hashtbl.create 1024 in
  for _ = 1 to samples do
    let k = next t in
    Hashtbl.replace counts k
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  let freqs =
    Hashtbl.fold (fun _ c acc -> c :: acc) counts []
    |> List.sort (fun a b -> compare b a)
  in
  let top = max 1 (int_of_float (frac *. float_of_int t.n)) in
  let rec take n acc = function
    | [] -> acc
    | _ when n = 0 -> acc
    | c :: rest -> take (n - 1) (acc + c) rest
  in
  float_of_int (take top 0 freqs) /. float_of_int samples
