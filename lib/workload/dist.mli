(** YCSB-style key-popularity distributions (paper Sections 5.1, 5.5).

    Rank 0 is the hottest key; by default ranks map to keys in order so hot
    keys are adjacent, which is what drives the false sharing the paper
    analyzes.  All samplers are deterministic given their seed. *)

type spec =
  | Uniform
  | Zipfian of float
      (** Skew coefficient theta in [0, 1); theta = 0 is uniform, 0.99 sends
          41% of requests to the hottest tenth. *)
  | Self_similar of float
      (** Gray et al. self-similar: the hottest [h*n] keys receive [1-h] of
          accesses (h = 0.2 gives the 80-20 rule). *)
  | Poisson_hotspot of { hot_frac : float; hot_mass : float }
      (** Poisson-shaped hot cluster: the hottest [hot_frac] of the key
          space receives [hot_mass] of requests (paper: 10% -> 70%). *)
  | Normal_hotspot of { sigma_frac : float }
      (** Normal around n/2 with sigma = [sigma_frac] * mean (paper: 1%). *)
  | Latest of float
      (** YCSB's "latest" pattern: zipfian over recency.  {!advance} moves
          the frontier when the workload inserts a new key. *)

val spec_to_string : spec -> string

type t

val scramble : int -> int -> int
(** [scramble n rank] hashes a popularity rank to a key, bijectively on
    [0, n): distinct ranks always map to distinct keys, and rank 0 (the
    hottest key) does not stay at key 0.  This is what [~scrambled]
    applies to every draw. *)

val create : ?scrambled:bool -> spec -> n:int -> seed:int -> t
(** Sampler over keys [0, n).  [scrambled] hashes ranks across the key
    space (YCSB scrambled variant); default false = hot keys adjacent. *)

val next : t -> int
(** Draw a key. *)

val advance : t -> unit
(** Advance the recency frontier (after an insert, for [Latest]). *)

val size : t -> int

val hot_mass : t -> samples:int -> frac:float -> float
(** Empirical fraction of draws landing on the hottest [frac] of keys;
    used by calibration tests. *)
