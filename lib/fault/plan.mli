(** Declarative, seed-deterministic fault plans.

    A plan schedules faults — what, on which threads, over which simulated
    cycle window — and compiles to the {!Euno_sim.Machine.injector} hooks.
    Because the compiled hooks are pure functions of [(tid, clock)], a
    fixed plan provokes identical adversity on every run with the same
    seed.  See DESIGN.md §"Fault model" for each fault's hardware
    analogue.

    {b Complexity:} compilation is O(1) (the injector closes over the
    plan); each compiled hook folds over the plan's injections, so every
    query costs O(|plan|) — plans are a handful of injections, never a
    per-op data structure.

    {b Determinism:} the compiled hooks are pure functions of
    [(tid, clock)]; no host state, no hidden randomness — the machine's
    seeded PRNG decides whether a [Spurious_burst] probability fires. *)

type target =
  | All
  | Thread of int

type window = { from_cycle : int; until_cycle : int }

type fault =
  | Spurious_burst of { extra_per_million : int }
      (** interrupt / GC storm: extra spurious-abort probability per
          million transactional accesses *)
  | Capacity_squeeze of { rs : int; ws : int }
      (** SMT cache sharing: shrink the read/write-set line limits *)
  | Preempt
      (** thread descheduled for the whole window; a live transaction
          aborts (context switches kill RTM transactions) *)
  | Lock_holder_stall of { stall : int }
      (** a lock acquired inside the window is held [stall] extra cycles:
          preemption while holding the fallback lock *)
  | Clock_skew of { per_mille : int }
      (** DVFS / thermal throttling: every cycle charge inflated *)
  | Alloc_pressure
      (** allocator slow path: transactional allocations abort with
          [Abort.Alloc_fault] and roll back safely.  Plain (fallback-path)
          allocations are deliberately spared — they model the allocator's
          reserve pool succeeding — so plans never corrupt a half-applied
          update.  Direct injectors can still fail plain allocations with
          [Euno_mem.Alloc.Alloc_failure]. *)
  | Crash
      (** whole-process death at [window.from_cycle]: every thread dies at
          once ([Euno_sim.Machine.Crashed] escapes the run), in-flight
          transactions roll back with RTM failure atomicity, and held
          advisory/fallback locks are abandoned in simulated memory.  Not
          compiled into the injector hooks — the recovery driver reads the
          plan's {!crash_point} and arms [Machine.set_crash].  The
          [target] is ignored: a process death takes all threads. *)

type injection = { fault : fault; target : target; window : window }

type t = injection list
(** Overlapping injections compose: spurious storms and skew add, the
    tightest capacity squeeze wins, the longest preemption wins. *)

val window : from_cycle:int -> until_cycle:int -> window

val crash_at : cycle:int -> injection
(** A {!Crash} injection at [cycle] (zero-span window: the death is an
    instant; the restart is the recovery driver's phase, not a fault
    window). *)

val to_injector : t -> Euno_sim.Machine.injector
(** Compile the plan into the machine's pure fault hooks.  {!Crash}
    injections contribute nothing here — arm them via {!crash_point} and
    [Euno_sim.Machine.set_crash]. *)

val crash_point : t -> int option
(** The effective crash instant, if the plan schedules one.  Multiple (in
    particular overlapping) [Crash] windows compose as {e last crash
    wins}: the machine dies once, at the greatest [from_cycle] — each
    scheduled crash re-arms the same power event, so only the latest
    arming matters. *)

val span : t -> (int * int) option
(** [(earliest onset, latest end)] over all injections; [None] for the
    empty plan.  Used for before/under/after-fault phase bookkeeping. *)

val fault_name : fault -> string
val to_json : t -> Euno_stats.Json.t

val of_json : Euno_stats.Json.t -> (t, string) result
(** Inverse of {!to_json}: strict on shape (unknown fault names, missing
    parameters and negative window spans are errors, not defaults), so a
    plan carried in a report replays the same adversity. *)

val campaign : threads:int -> horizon:int -> t
(** The stock chaos campaign: one window per fault class spread over the
    middle of a run whose fault-free length is [horizon] cycles, leaving a
    clean warm-up and a clean tail (the tail is what recovery time is
    measured against). *)

val lemming_storm : from_cycle:int -> until_cycle:int -> stall:int -> t
(** Directed worst case: whoever acquires the fallback lock inside the
    window sits on it for [stall] extra cycles. *)
