(* Declarative, seed-deterministic fault plans.

   A plan is a list of injections: (what fault, which threads, which cycle
   window).  Plan.to_injector compiles it into the Machine's pure fault
   hooks — every hook is a function of (tid, clock) only, so a fixed plan
   reproduces the same adversity at the same simulated instants on every
   run, regardless of host state.

   Each fault models a concrete hardware/OS pathology; see DESIGN.md
   §"Fault model" for the analogue of each constructor. *)

module Machine = Euno_sim.Machine
module Json = Euno_stats.Json

type target =
  | All
  | Thread of int

type window = { from_cycle : int; until_cycle : int }

type fault =
  | Spurious_burst of { extra_per_million : int }
    (* interrupt / GC storm: extra spurious-abort probability *)
  | Capacity_squeeze of { rs : int; ws : int }
    (* SMT sibling steals cache: shrink read/write-set line limits *)
  | Preempt
    (* thread descheduled for the whole window; a live transaction dies *)
  | Lock_holder_stall of { stall : int }
    (* any lock acquired inside the window is held [stall] extra cycles:
       preemption while holding the fallback lock (lemming storm) *)
  | Clock_skew of { per_mille : int }
    (* DVFS / thermal throttling: every cycle charge inflated *)
  | Alloc_pressure
    (* allocator slow path: transactional allocs abort (and roll back);
       plain allocs are spared so fallback-path updates stay intact *)
  | Crash
    (* whole-process death at window.from_cycle: every thread dies, held
       locks are abandoned, and the run ends in Machine.Crashed.  Compiled
       via [crash_point] (Machine.set_crash), not via the injector hooks;
       the target is ignored — a process death takes all threads. *)

type injection = { fault : fault; target : target; window : window }
type t = injection list

let window ~from_cycle ~until_cycle =
  if until_cycle < from_cycle then invalid_arg "Plan.window: negative span";
  { from_cycle; until_cycle }

let targets target tid =
  match target with All -> true | Thread t -> t = tid

let active i ~tid ~clock =
  targets i.target tid
  && clock >= i.window.from_cycle
  && clock < i.window.until_cycle

(* Compile a plan into the machine's pure hooks.  Overlapping injections
   compose the way real adversity does: storms add up, the tightest
   capacity wins, the longest preemption wins. *)
let to_injector (plan : t) : Machine.injector =
  let fold f init ~tid ~clock =
    List.fold_left
      (fun acc i -> if active i ~tid ~clock then f acc i.fault else acc)
      init plan
  in
  {
    Machine.inj_spurious =
      (fun ~tid ~clock ->
        fold
          (fun acc -> function
            | Spurious_burst { extra_per_million } -> acc + extra_per_million
            | _ -> acc)
          0 ~tid ~clock);
    inj_capacity =
      (fun ~tid ~clock ->
        fold
          (fun acc -> function
            | Capacity_squeeze { rs; ws } -> (
                match acc with
                | None -> Some (rs, ws)
                | Some (r0, w0) -> Some (min r0 rs, min w0 ws))
            | _ -> acc)
          None ~tid ~clock);
    inj_preempt =
      (fun ~tid ~clock ->
        List.fold_left
          (fun acc i ->
            match i.fault with
            | Preempt when active i ~tid ~clock ->
                max acc i.window.until_cycle
            | _ -> acc)
          0 plan);
    inj_lock_stall =
      (fun ~tid ~clock ->
        fold
          (fun acc -> function
            | Lock_holder_stall { stall } -> max acc stall
            | _ -> acc)
          0 ~tid ~clock);
    inj_skew =
      (fun ~tid ~clock ->
        fold
          (fun acc -> function
            | Clock_skew { per_mille } -> acc + per_mille
            | _ -> acc)
          0 ~tid ~clock);
    inj_alloc_fail =
      (fun ~tid ~clock ~in_txn ->
        (* Only transactional allocations fail: the transaction rolls back
           and retries or serializes, so structure is never corrupted.  A
           fallback-path allocation models the allocator's reserve pool:
           the slow path succeeds (graceful degradation).  Tests that want
           the raw non-transactional failure build an injector directly. *)
        in_txn
        && fold (fun acc -> function Alloc_pressure -> true | _ -> acc) false
             ~tid ~clock);
  }

(* The effective crash instant, if the plan contains one.  Composition
   rule for overlapping (or indeed any multiple) Crash windows: the LAST
   crash wins — the machine dies once, at the greatest [from_cycle].  The
   physical picture: each scheduled crash models the same power event
   being re-armed; re-arming before it fires moves it, so only the latest
   arming matters.  Earlier Crash windows contribute nothing (their
   in-window adversity is the restart, which the recovery driver runs
   once, from the winning point). *)
let crash_point (plan : t) =
  List.fold_left
    (fun acc i ->
      match i.fault with
      | Crash -> (
          match acc with
          | None -> Some i.window.from_cycle
          | Some c -> Some (max c i.window.from_cycle))
      | _ -> acc)
    None plan

(* A Crash injection at [cycle]; the window's span is zero (the death is
   an instant; the restart that follows is the recovery driver's phase,
   not a fault window). *)
let crash_at ~cycle =
  { fault = Crash; target = All;
    window = window ~from_cycle:cycle ~until_cycle:cycle }

(* Earliest fault onset and latest fault end, for phase bookkeeping
   (before / under / after fault) in the chaos harness. *)
let span (plan : t) =
  match plan with
  | [] -> None
  | _ ->
      Some
        (List.fold_left
           (fun (lo, hi) i ->
             (min lo i.window.from_cycle, max hi i.window.until_cycle))
           (max_int, min_int) plan)

(* ---------- naming and reporting ---------- *)

let fault_name = function
  | Spurious_burst _ -> "spurious_burst"
  | Capacity_squeeze _ -> "capacity_squeeze"
  | Preempt -> "preempt"
  | Lock_holder_stall _ -> "lock_holder_stall"
  | Clock_skew _ -> "clock_skew"
  | Alloc_pressure -> "alloc_pressure"
  | Crash -> "crash"

let target_to_json = function
  | All -> Json.Str "all"
  | Thread t -> Json.Int t

let fault_params = function
  | Spurious_burst { extra_per_million } ->
      [ ("extra_per_million", Json.Int extra_per_million) ]
  | Capacity_squeeze { rs; ws } ->
      [ ("rs", Json.Int rs); ("ws", Json.Int ws) ]
  | Preempt -> []
  | Lock_holder_stall { stall } -> [ ("stall", Json.Int stall) ]
  | Clock_skew { per_mille } -> [ ("per_mille", Json.Int per_mille) ]
  | Alloc_pressure -> []
  | Crash -> []

let injection_to_json i =
  Json.Obj
    ([
       ("fault", Json.Str (fault_name i.fault));
       ("target", target_to_json i.target);
       ("from_cycle", Json.Int i.window.from_cycle);
       ("until_cycle", Json.Int i.window.until_cycle);
     ]
    @ fault_params i.fault)

let to_json (plan : t) = Json.List (List.map injection_to_json plan)

(* Inverse of [to_json], so plans can ride in documents (e.g. a crash
   cell's exact plan) and be replayed later.  Strict on shape: an unknown
   fault name or a missing parameter is an error, not a default — a plan
   that silently degrades would replay different adversity. *)
let injection_of_json j =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let int_field name =
    match Option.bind (Json.member name j) Json.as_int with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "Plan.of_json: missing int field '%s'" name)
  in
  let* fault_s =
    match Option.bind (Json.member "fault" j) Json.as_string with
    | Some s -> Ok s
    | None -> Error "Plan.of_json: missing fault name"
  in
  let* fault =
    match fault_s with
    | "spurious_burst" ->
        let* extra_per_million = int_field "extra_per_million" in
        Ok (Spurious_burst { extra_per_million })
    | "capacity_squeeze" ->
        let* rs = int_field "rs" in
        let* ws = int_field "ws" in
        Ok (Capacity_squeeze { rs; ws })
    | "preempt" -> Ok Preempt
    | "lock_holder_stall" ->
        let* stall = int_field "stall" in
        Ok (Lock_holder_stall { stall })
    | "clock_skew" ->
        let* per_mille = int_field "per_mille" in
        Ok (Clock_skew { per_mille })
    | "alloc_pressure" -> Ok Alloc_pressure
    | "crash" -> Ok Crash
    | other -> Error (Printf.sprintf "Plan.of_json: unknown fault '%s'" other)
  in
  let* target =
    match Json.member "target" j with
    | Some (Json.Str "all") -> Ok All
    | Some (Json.Int t) -> Ok (Thread t)
    | _ -> Error "Plan.of_json: bad target"
  in
  let* from_cycle = int_field "from_cycle" in
  let* until_cycle = int_field "until_cycle" in
  if until_cycle < from_cycle then Error "Plan.of_json: negative window span"
  else Ok { fault; target; window = { from_cycle; until_cycle } }

let of_json = function
  | Json.List js ->
      List.fold_left
        (fun acc j ->
          match (acc, injection_of_json j) with
          | (Error _ as e), _ -> e
          | _, (Error _ as e) -> e
          | Ok is, Ok i -> Ok (i :: is))
        (Ok []) js
      |> Result.map List.rev
  | _ -> Error "Plan.of_json: expected a list"

(* ---------- stock plans ---------- *)

(* The full chaos campaign, scaled to a calibrated fault-free horizon:
   one window per fault class, spread over the middle of the run so a
   clean warm-up precedes the storm and a clean tail follows it (that tail
   is what the recovery-time metric measures).  Windows target the middle
   threads so tid 0 (the monitor in the chaos harness) keeps observing. *)
let campaign ~threads ~horizon : t =
  let at f = int_of_float (float_of_int horizon *. f) in
  let w a b = window ~from_cycle:(at a) ~until_cycle:(at b) in
  let victim = if threads > 1 then 1 mod threads else 0 in
  let skewed = if threads > 2 then 2 else victim in
  [
    { fault = Spurious_burst { extra_per_million = 20_000 };
      target = All;
      window = w 0.10 0.25 };
    { fault = Capacity_squeeze { rs = 48; ws = 12 };
      target = All;
      window = w 0.25 0.40 };
    { fault = Preempt; target = Thread victim; window = w 0.40 0.48 };
    { fault = Lock_holder_stall { stall = max 1 (horizon / 25) };
      target = All;
      window = w 0.50 0.58 };
    { fault = Clock_skew { per_mille = 600 };
      target = Thread skewed;
      window = w 0.58 0.70 };
    { fault = Alloc_pressure; target = All; window = w 0.70 0.78 };
  ]

(* The nastiest directed scenario: whoever grabs the fallback lock inside
   the window sits on it for [stall] cycles.  Under the naive paper-era
   policy every other thread lemmings into the fallback queue; the polite
   policy (with the watchdog) keeps transacting once the holder leaves. *)
let lemming_storm ~from_cycle ~until_cycle ~stall : t =
  [
    { fault = Lock_holder_stall { stall };
      target = All;
      window = window ~from_cycle ~until_cycle };
  ]
