(** Euno-B+Tree: the paper's contribution (Section 4).

    A concurrent B+Tree applying the four Eunomia design guidelines —
    split HTM regions with version-based consistency validation, scattered
    segmented leaves with a random write scheduler, a conflict control
    module of per-slot advisory locks and Bloom-style mark bits, and
    per-leaf adaptive concurrency control.  Each guideline is switchable
    through {!Config}, giving the Figure 13 ablation ladder.

    Thread-safe on the simulated machine; operations declare their target
    key for the paper's conflict-abort classification. *)

type t

(** Test-only mutation switches: reintroduce historical protocol bugs so
    the sanitizer suite can prove it detects them.  Never set these
    outside test code. *)
module Testonly : sig
  val leak_locks_on_exn : bool Euno_sim.Domain_ref.t
  (** PR 2 bug: skip the exception-path release of the advisory split
      lock and CCM slot bit when an exception escapes the lower region. *)
end

(** User-counter indices published by the tree (0-2 belong to
    {!Euno_htm.Htm.Counter}). *)
module Counter : sig
  val consistency_retries : int
  (** Lower-region executions that found a stale leaf seqno and restarted
      from the root. *)

  val mark_fastpath : int
  (** Absent-key requests answered by the mark bits without entering the
      lower region. *)

  val compactions : int
  val splits : int

  val merges : int
  (** Maintenance merges of underfull sibling leaves. *)

  val names : (int * string) list
  (** Telemetry labels for the user-counter indices this module owns. *)
end

val create :
  ?epoch:Euno_mem.Epoch.t -> cfg:Config.t -> map:Euno_mem.Linemap.t -> unit -> t
(** Allocate an empty tree.  Must run on the machine.  When [epoch] is
    given, operations pin it and leaves merged away by {!maintain} are
    retired through it instead of freed immediately (the DBX deferred-GC
    scheme of Section 4.2.4). *)

val bulk_load :
  ?epoch:Euno_mem.Epoch.t ->
  ?fill:float ->
  cfg:Config.t ->
  map:Euno_mem.Linemap.t ->
  (int * int) list ->
  t
(** Build a tree from sorted, distinct records (single-threaded load
    phase): leaves filled round-robin to [fill] (default 0.7) of capacity,
    mark bits exact, index built bottom-up. *)

val config : t -> Config.t

val get : t -> int -> int option
val put : t -> int -> int -> unit

val delete : t -> int -> bool
(** Removes the record (lazy rebalance: leaves may stay underfull, as in
    the paper's Section 4.2.4 deletion scheme). *)

val maintain : ?max_merges:int -> t -> int
(** Online maintenance (Section 4.2.4's deferred cleanup): walk the leaf
    chain merging adjacent same-parent siblings whose combined records fit
    comfortably in one leaf.  Returns the number of merges performed.

    Concurrent use (one maintenance thread alongside regular operations)
    requires the tree to have been created with an [epoch]: victims are
    then retired and freed only after every pinned operation drains, which
    is what prevents freelist reuse from forging a valid-looking seqno
    under an in-flight operation (ABA).  Without an epoch the victim is
    freed immediately — only safe at a quiescent point. *)

val needs_rebalance : t -> bool
(** True once deletions since the last rebalance pass the threshold
    (Section 4.2.4: "re-balance when the number of delete operations
    exceeds a threshold"). *)

val rebalance : t -> unit
(** Maintenance operation: rebuild the tree from its live records and
    return the old nodes to the allocator.  Must run with no concurrent
    operations in flight (a quiescent point, as the paper's deferred
    rebalance does). *)

val scan : t -> from:int -> count:int -> (int * int) list
(** Ordered range query: up to [count] records with key >= [from].
    Locks each visited leaf's advisory lock and sorts its segments through
    a transient reserved-keys buffer, as in Section 4.2.4. *)

val to_list : t -> (int * int) list
(** All records in key order (single-threaded inspection). *)

val size : t -> int

(** Structural statistics (single-threaded inspection). *)
type tree_stats = {
  st_depth : int;
  st_internals : int;
  st_leaves : int;
  st_records : int;
  st_avg_leaf_fill : float;
  st_engaged_leaves : int;
}

val stats : t -> tree_stats

val iter : t -> (int -> int -> unit) -> unit
(** Ordered iteration over all records (single-threaded inspection). *)

val fold : t -> init:'a -> f:('a -> int -> int -> 'a) -> 'a

val min_binding : t -> (int * int) option
val max_binding : t -> (int * int) option

exception Invariant of string

val check_invariants : t -> unit
(** Structural validation: shared index invariants, per-segment sortedness
    and counts, no duplicate keys, mark-bit coverage of live keys, and
    leaf-chain/tree-order agreement. *)
