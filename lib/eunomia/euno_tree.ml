(* Euno-B+Tree: the paper's contribution (Section 4).

   The four Eunomia design guidelines, each switchable via Config:

   1. Split HTM regions (Algorithm 2): the root-to-leaf traversal runs in
      an *upper* RTM region that returns a leaf pointer plus its sequence
      number; the leaf access runs in a separate *lower* region that
      re-validates the sequence number and restarts from the root only if
      the leaf split in between.  Most conflicts therefore retry only the
      small lower region.
   2. Scattered leaves (Algorithm 3): records live in per-cache-line
      segments; a random write scheduler spreads inserts, and
      reorganization distributes sorted records round-robin so adjacent
      keys sit on different lines.
   3. Conflict control module: per-slot advisory lock bits serialize
      same-key requests before they enter the lower region; mark bits turn
      absent-key requests away without touching the leaf.
   4. Adaptive concurrency control: a per-leaf contention detector engages
      the CCM only while the leaf is actually contended.

   Mark-bit protocol (deviations from the paper text, chosen so the filter
   can never produce a false negative — see DESIGN.md):
   - engaged puts set their mark bit *before* entering the lower region;
     bypass-mode puts do not touch the CCM at all;
   - promotion is three-state: bypass -> engaged (lock bits apply, marks
     untrusted) -> ready (marks rebuilt from an atomic snapshot of the
     leaf, so the fast path may trust them).  The mode word shares the
     leaf-header cache line, so the promotion write dooms every in-flight
     lower region on the leaf — a bypass-mode insert can never commit
     unmarked after the rebuild snapshot was taken;
   - deletions never clear mark bits (clearing races with bypass-mode
     inserts); a split rebuilds the new right leaf's marks exactly, inside
     the splitting transaction, which also bounds false-positive build-up;
   - the absent fast path is taken only in ready mode, while holding the
     slot lock, and only after re-validating the leaf sequence number. *)

module Api = Euno_sim.Api
module Abort = Euno_sim.Abort
module Htm = Euno_htm.Htm
module Spinlock = Euno_sync.Spinlock
module Ccm = Euno_ccm.Ccm
module Index = Euno_bptree.Index
module Linemap = Euno_mem.Linemap

(* Test-only mutation switches: reintroduce historical protocol bugs so
   the sanitizer test suite can prove it detects them.  Never set outside
   test code. *)
module Testonly = struct
  (* Domain-local: armed per pool worker, never bleeds across cells. *)
  let leak_locks_on_exn = Euno_sim.Domain_ref.create (fun () -> false)
  (* PR 2 bug: when an exception escapes the lower region, skip the
     exception-path release of the advisory split lock and CCM slot bit. *)
end

(* User-counter indices published by this tree (0-2 belong to Htm). *)
module Counter = struct
  let consistency_retries = 3 (* lower region saw a stale seqno *)
  let mark_fastpath = 4 (* absent-key requests turned away by mark bits *)
  let compactions = 5
  let splits = 6
  let merges = 7 (* maintenance merges of underfull sibling leaves *)

  (* Telemetry labels for the indices this module owns. *)
  let names =
    [
      (consistency_retries, "consistency_retries");
      (mark_fastpath, "mark_fastpath");
      (compactions, "compactions");
      (splits, "splits");
      (merges, "merges");
    ]
end

let () = Euno_sim.Machine.register_user_counters ~owner:"euno_tree" Counter.names

type t = {
  cfg : Config.t;
  shape : Leaf.shape;
  idx : Index.t;
  lock : Htm.lock; (* global fallback lock shared by both regions *)
  mutable deletes : int; (* since the last rebalance (Section 4.2.4) *)
  epoch : Euno_mem.Epoch.t option;
    (* when present, operations pin it and merged-away leaves are retired
       rather than freed (the DBX GC scheme of Section 4.2.4) *)
}

let create ?epoch ~cfg ~map () =
  let cfg = Config.validate cfg in
  let shape = Leaf.shape cfg ~map in
  let root = Leaf.alloc shape in
  {
    cfg;
    shape;
    idx = Index.create ~fanout:cfg.Config.fanout ~map ~root ();
    lock = Htm.alloc_lock ~policy:cfg.Config.policy ();
    deletes = 0;
    epoch;
  }

(* Pin the reclamation epoch (when configured) for the duration of an
   operation, so retired leaves stay mapped while any in-flight operation
   may still dereference them. *)
let with_epoch t f =
  match t.epoch with
  | None -> f ()
  | Some e ->
      let slot = Api.tid () in
      Euno_mem.Epoch.pin e slot;
      (* Unpin on the exception path too: an operation that gives up
         (Stuck_fallback, injected allocation failure) must not leave its
         slot pinned, or the global epoch can never advance again and
         every retired leaf leaks for the rest of the run. *)
      (match f () with
      | result ->
          Euno_mem.Epoch.unpin e slot;
          result
      | exception ex ->
          Euno_mem.Epoch.unpin e slot;
          raise ex)

(* Bulk load sorted, distinct records (the single-threaded YCSB load
   phase): leaves filled round-robin to [fill] of capacity, mark bits
   written exactly, index built bottom-up. *)
let bulk_load ?epoch ?(fill = 0.7) ~cfg ~map records =
  let cfg = Config.validate cfg in
  let shape = Leaf.shape cfg ~map in
  let cap = Config.capacity cfg in
  let per_leaf = max 1 (min cap (int_of_float (fill *. float_of_int cap))) in
  match records with
  | [] -> create ?epoch ~cfg ~map ()
  | _ ->
      let rec chunks acc current n = function
        | [] -> List.rev (List.rev current :: acc)
        | r :: rest when n < per_leaf -> chunks acc (r :: current) (n + 1) rest
        | rest -> chunks (List.rev current :: acc) [] 0 rest
      in
      let make_leaf chunk =
        let leaf = Leaf.alloc shape in
        Leaf.fill_round_robin shape leaf chunk;
        if cfg.Config.use_mark_bits then begin
          let c = Leaf.ccm shape leaf in
          Ccm.write_marks c (Leaf.marks_word_for c (List.map fst chunk))
        end;
        (fst (List.hd chunk), leaf)
      in
      let leaves = List.map make_leaf (chunks [] [] 0 records) in
      let rec chain = function
        | (_, a) :: ((_, b) :: _ as rest) ->
            Api.write (Leaf.next_addr a) b;
            chain rest
        | [ _ ] | [] -> ()
      in
      chain leaves;
      let idx =
        Index.create ~fanout:cfg.Config.fanout ~map ~root:(snd (List.hd leaves)) ()
      in
      Index.build_levels idx leaves;
      {
        cfg;
        shape;
        idx;
        lock = Htm.alloc_lock ~policy:cfg.Config.policy ();
        deletes = 0;
        epoch;
      }

let config t = t.cfg

type req = R_get | R_put of int | R_del

(* Result of one lower-region execution. *)
type lower =
  | L_stale (* leaf split since the upper region: restart from root *)
  | L_need_lock (* split required but the advisory lock is not held *)
  | L_got of int option
  | L_updated
  | L_inserted
  | L_deleted of bool
  | L_scan of (int * int) list * int * int
    (* records of one leaf, next-leaf pointer, next-leaf seqno *)

(* ---------- upper region (Algorithm 2, lines 23-28) ---------- *)

let upper t key =
  Htm.atomic ~policy:t.cfg.Config.policy ~lock:t.lock (fun () ->
      let leaf = Index.find_leaf t.idx key in
      (leaf, Api.read (Leaf.seqno_addr leaf)))

(* ---------- insertion machinery (Algorithm 3) ---------- *)

(* Random write scheduler: draw a segment, re-drawing (never the same index
   twice in a row) while the draw is full, up to the retry threshold. *)
let schedule t leaf =
  let s = t.shape in
  let nsegs = t.cfg.Config.nsegs in
  let pick last =
    if nsegs = 1 then 0
    else if last < 0 then Api.rand nsegs
    else begin
      let r = Api.rand (nsegs - 1) in
      if r >= last then r + 1 else r
    end
  in
  let rec go idx tries =
    if not (Leaf.seg_full s leaf idx) then Some idx
    else if tries >= t.cfg.Config.sched_retries then None
    else go (pick idx) (tries + 1)
  in
  go (pick (-1)) 0

(* First non-full segment, scanning from a random start (used right after
   compaction or a split, when space is guaranteed). *)
let any_nonfull t leaf =
  let s = t.shape in
  let nsegs = t.cfg.Config.nsegs in
  let start = Api.rand nsegs in
  let rec go i =
    assert (i < nsegs);
    let idx = (start + i) mod nsegs in
    if Leaf.seg_full s leaf idx then go (i + 1) else idx
  in
  go 0

(* Split, inside the lower region and holding the advisory split lock:
   sort everything into a transient reserved buffer, rebuild both halves
   round-robin, bump the sequence number, link the sibling, propagate the
   separator upwards, then place the pending insert (Figure 7). *)
let split_and_insert t leaf key value =
  let s = t.shape in
  Api.count Counter.splits 1;
  let sorted = Leaf.gather s leaf in
  let n = List.length sorted in
  let stash = Leaf.stash_reserved sorted in
  let buf, _ = stash in
  let right = Leaf.alloc s in
  let mid = n / 2 in
  Leaf.clear_segs s leaf;
  Leaf.redistribute_from s leaf buf ~lo:0 ~n:mid;
  Leaf.redistribute_from s right buf ~lo:mid ~n:(n - mid);
  Api.write (Leaf.next_addr right) (Api.read (Leaf.next_addr leaf));
  Api.write (Leaf.next_addr leaf) right;
  Api.write (Leaf.parent_addr right) (Api.read (Leaf.parent_addr leaf));
  Api.write (Leaf.seqno_addr leaf) (Api.read (Leaf.seqno_addr leaf) + 1);
  let sep = Api.read (buf + (2 * mid)) in
  Leaf.free_reserved stash;
  Index.insert_into_parent t.idx leaf sep right;
  let target = if key < sep then leaf else right in
  if t.cfg.Config.use_mark_bits then begin
    (* The new sibling is invisible until this transaction commits, so its
       mark bits can be written exactly, in-transaction, without conflicting
       with anyone's CCM traffic.  The pending insert is included when it
       lands in the sibling (the pre-region set_mark hit the old CCM). *)
    let right_keys =
      List.filteri (fun j _ -> j >= mid) sorted |> List.map fst
    in
    let right_keys = if target == right then key :: right_keys else right_keys in
    let cr = Leaf.ccm s right in
    Ccm.write_marks cr (Leaf.marks_word_for cr right_keys)
  end;
  Leaf.insert_into_seg s target (any_nonfull t target) key value

let insert_body t leaf ~lock_held key value =
  let s = t.shape in
  match schedule t leaf with
  | Some idx ->
      Leaf.insert_into_seg s leaf idx key value;
      L_inserted
  | None ->
      let total = Leaf.total_count s leaf in
      if total < Config.capacity t.cfg then begin
        (* Draws failed but space exists: segments are uneven or near-full.
           Reorganize through the reserved buffer, then insert. *)
        Api.count Counter.compactions 1;
        Leaf.compact s leaf;
        Leaf.insert_into_seg s leaf (any_nonfull t leaf) key value;
        L_inserted
      end
      else if not lock_held then L_need_lock
      else begin
        split_and_insert t leaf key value;
        L_inserted
      end

(* ---------- lower region body (Algorithm 2, lines 41-51) ---------- *)

let lower_body t leaf ~seq ~lock_held ~bypass req key =
  let s = t.shape in
  if Api.read (Leaf.seqno_addr leaf) <> seq then L_stale
  else
    match req with
    | R_get -> (
        match Leaf.locate s leaf key with
        | Some pos -> L_got (Some (Api.read (Leaf.value_addr_of s leaf pos)))
        | None -> L_got None)
    | R_del -> (
        match Leaf.locate s leaf key with
        | Some pos ->
            Leaf.remove_at s leaf pos;
            L_deleted true
        | None -> L_deleted false)
    | R_put value -> (
        match Leaf.locate s leaf key with
        | Some pos ->
            Api.write (Leaf.value_addr_of s leaf pos) value;
            L_updated
        | None ->
            (* A bypass-mode insert would not set its mark bit; if the leaf
               was promoted since this operation chose the bypass path, it
               must retry on the engaged path.  (The mode word shares the
               header line, so a promotion also dooms this region; this
               explicit check keeps correctness independent of that layout
               coincidence.) *)
            if bypass && t.cfg.Config.use_mark_bits
               && Api.read (Leaf.mode_addr leaf) <> Ccm.mode_bypass
            then L_stale
            else insert_body t leaf ~lock_held key value)

(* ---------- the two-step traversal (Algorithm 2) ---------- *)

type outcome = O_got of int option | O_put | O_deleted of bool

(* Rebuild a promoted leaf's mark bits from an atomic snapshot, then allow
   the fast path (Ccm.set_ready).  OR-merging tolerates concurrent engaged
   inserts; the header-line promotion write has already doomed any bypass
   insert that could have slipped under the snapshot. *)
let rebuild_marks t leaf c =
  if t.cfg.Config.use_mark_bits then begin
    let keys =
      Htm.atomic ~policy:t.cfg.Config.policy ~lock:t.lock (fun () ->
          Leaf.keys t.shape leaf)
    in
    Ccm.merge_marks c (Leaf.marks_word_for c keys)
  end;
  Ccm.set_ready c

let run_op t req key =
  Api.op_key key;
  let cfg = t.cfg and s = t.shape in
  with_epoch t @@ fun () ->
  let rec attempt ~force_lock =
    let leaf, seq = upper t key in
    let c = Leaf.ccm s leaf in
    let mode =
      if not cfg.Config.adaptive then Ccm.mode_ready else Ccm.mode c
    in
    let engaged = cfg.Config.use_lock_bits && mode <> Ccm.mode_bypass in
    let slot = Ccm.hash c key in
    if engaged then Ccm.lock_slot c slot;
    let unlock () = if engaged then Ccm.unlock_slot c slot in
    (* Mark-bits fast path: a clear bit means the key is definitely absent
       from this leaf; trusting it requires ready mode (marks rebuilt) and
       the leaf to still be the right one, hence the seqno re-check. *)
    let absent =
      engaged && mode = Ccm.mode_ready && cfg.Config.use_mark_bits
      && not (Ccm.marked c slot)
    in
    if absent && Api.read (Leaf.seqno_addr leaf) <> seq then begin
      unlock ();
      attempt ~force_lock:false
    end
    else if absent && req = R_get then begin
      Api.count Counter.mark_fastpath 1;
      unlock ();
      O_got None
    end
    else if absent && req = R_del then begin
      Api.count Counter.mark_fastpath 1;
      unlock ();
      O_deleted false
    end
    else begin
      let is_put = match req with R_put _ -> true | R_get | R_del -> false in
      (* Engaged puts pre-announce their key in the mark bits (never
         cleared on abort or update: false positives only). *)
      if is_put && engaged && cfg.Config.use_mark_bits then Ccm.set_mark c slot;
      (* Near-full inserts serialize on the per-leaf advisory split lock
         (Algorithm 2, lines 39-40).  The count scan runs only when the
         mark bits already prove this put is an insert; otherwise a split
         need is discovered inside the region (L_need_lock) and the retry
         carries [force_lock]. *)
      let lock_held =
        is_put
        && (force_lock
           || absent
              && Leaf.total_count s leaf
                 >= Config.capacity cfg - cfg.Config.near_full_margin)
      in
      if lock_held then Spinlock.acquire (Leaf.split_lock_addr leaf);
      let promoted = ref false in
      let on_abort code =
        if cfg.Config.adaptive && cfg.Config.use_lock_bits
           && Abort.is_data_conflict code
        then
          match Ccm.note_conflict c cfg.Config.ccm_thresholds with
          | Ccm.Promoted -> promoted := true
          | Ccm.Demoted | Ccm.Unchanged -> ()
      in
      let result =
        match
          Htm.atomic ~policy:cfg.Config.policy ~on_abort ~lock:t.lock
            (fun () ->
              lower_body t leaf ~seq ~lock_held ~bypass:(not engaged) req key)
        with
        | r -> r
        | exception e ->
            (* Graceful-degradation contract: an operation that gives up
               (Stuck_fallback, injected allocation failure) must not leak
               its advisory locks — a leaked split lock or CCM slot bit
               would hang every later operation that needs it. *)
            if not (Euno_sim.Domain_ref.get Testonly.leak_locks_on_exn) then begin
              if lock_held then Spinlock.release (Leaf.split_lock_addr leaf);
              unlock ()
            end;
            raise e
      in
      if lock_held then Spinlock.release (Leaf.split_lock_addr leaf);
      unlock ();
      if cfg.Config.adaptive && cfg.Config.use_lock_bits && Api.rand 8 = 0
      then begin
        match Ccm.note_ops c cfg.Config.ccm_thresholds 8 with
        | Ccm.Promoted -> promoted := true
        | Ccm.Demoted | Ccm.Unchanged -> ()
      end;
      if !promoted then rebuild_marks t leaf c;
      match result with
      | L_stale ->
          Api.count Counter.consistency_retries 1;
          attempt ~force_lock:false
      | L_need_lock -> attempt ~force_lock:true
      | L_got v -> O_got v
      | L_updated | L_inserted -> O_put
      | L_deleted found -> O_deleted found
      | L_scan _ -> assert false
    end
  in
  attempt ~force_lock:false

let get t key =
  match run_op t R_get key with
  | O_got v -> v
  | O_put | O_deleted _ -> assert false

let put t key value =
  match run_op t (R_put value) key with
  | O_put -> ()
  | O_got _ | O_deleted _ -> assert false

let delete t key =
  match run_op t R_del key with
  | O_deleted found ->
      if found then t.deletes <- t.deletes + 1;
      found
  | O_got _ | O_put -> assert false

(* ---------- online leaf merging (Section 4.2.4) ---------- *)

(* One merge attempt of [locked_right] into [left], both advisory locks
   held.  Everything is re-validated and performed inside one HTM region:
   in-flight operations on the victim leaf are doomed or see its bumped
   seqno and retry from the root, while the absorbing leaf keeps its seqno
   (operations already routed to it remain valid, as on the surviving
   side of a split).  Returns the victim and the new successor on
   success. *)
type merge_result =
  | M_merged of int * int (* victim leaf, left's new successor *)
  | M_skip of int (* next leaf to consider *)

let try_merge t left locked_right =
  let s = t.shape in
  let cap = Config.capacity t.cfg in
  Htm.atomic ~policy:t.cfg.Config.policy ~lock:t.lock (fun () ->
      let right = Api.read (Leaf.next_addr left) in
      if right = 0 || right <> locked_right then M_skip right
      else begin
        let parent = Api.read (Leaf.parent_addr left) in
        let nl = Leaf.total_count s left in
        let nr = Leaf.total_count s right in
        let pi =
          if parent = 0 || Api.read (Leaf.parent_addr right) <> parent then -1
          else Index.child_index t.idx parent right
        in
        if
          pi <= 0
          || nl + nr > cap - t.cfg.Config.near_full_margin
          || Api.read (Euno_bptree.Layout.nkeys parent) < 2
        then M_skip right
        else begin
          (* absorb the sibling's records *)
          List.iter
            (fun (k, v) ->
              Leaf.insert_into_seg s left (any_nonfull t left) k v)
            (Leaf.gather s right);
          if t.cfg.Config.use_mark_bits then begin
            (* New traversals for the absorbed keys land on [left]; its
               marks must cover them atomically with the merge.  The lock
               line enters the write set, so concurrent CCM traffic may
               doom this transaction — it just retries. *)
            let cl = Leaf.ccm s left and cr = Leaf.ccm s right in
            Ccm.write_marks cl (Ccm.marks_word cl lor Ccm.marks_word cr)
          end;
          Api.write (Leaf.next_addr left) (Api.read (Leaf.next_addr right));
          Index.internal_remove_at t.idx parent (pi - 1);
          (* invalidate every in-flight operation holding the victim *)
          Api.write (Leaf.seqno_addr right)
            (Api.read (Leaf.seqno_addr right) + 1);
          M_merged (right, Api.read (Leaf.next_addr left))
        end
      end)

(* Maintenance pass (one maintenance thread, concurrent with regular
   operations): walk the leaf chain and merge adjacent same-parent
   siblings whose combined records fit comfortably in one leaf.  Locks
   are taken left-to-right, the order every other lock user respects.
   Merged-away leaves are retired through the tree's epoch when one is
   configured (freed once no pinned operation can still hold a pointer —
   required for concurrent use: immediate freeing lets freelist reuse
   forge a matching seqno under an in-flight operation), or freed
   immediately otherwise (quiescent maintenance only).  Returns the
   number of merges. *)
let maintain ?(max_merges = max_int) t =
  let merged = ref 0 in
  let reclaim victim =
    match t.epoch with
    | Some e -> Euno_mem.Epoch.retire e (fun () -> Leaf.free t.shape victim)
    | None -> Leaf.free t.shape victim
  in
  let leftmost =
    Htm.atomic ~policy:t.cfg.Config.policy ~lock:t.lock (fun () ->
        Index.find_leaf t.idx min_int)
  in
  let rec walk leaf =
    if leaf <> 0 && !merged < max_merges then begin
      let right = Api.read (Leaf.next_addr leaf) in
      if right <> 0 then begin
        Spinlock.acquire (Leaf.split_lock_addr leaf);
        Spinlock.acquire (Leaf.split_lock_addr right);
        let r =
          match try_merge t leaf right with
          | r -> r
          | exception e ->
              (* never leak the advisory locks on a failed merge *)
              Spinlock.release (Leaf.split_lock_addr right);
              Spinlock.release (Leaf.split_lock_addr leaf);
              raise e
        in
        Spinlock.release (Leaf.split_lock_addr right);
        Spinlock.release (Leaf.split_lock_addr leaf);
        match r with
        | M_merged (victim, _) ->
            incr merged;
            Api.count Counter.merges 1;
            reclaim victim;
            (* try to absorb further siblings into the same leaf *)
            walk leaf
        | M_skip next -> walk next
      end
    end
  in
  walk leftmost;
  !merged

(* ---------- range query (Section 4.2.4) ---------- *)

(* Hand-over-hand over the leaf chain: lock each leaf's advisory lock,
   gather its records atomically in a lower region (staging them through a
   transient reserved buffer, as the paper's scans do), validate the seqno
   obtained from the previous hop, and carry (next leaf, next seqno)
   forward.  A failed validation restarts from the root at the first
   still-missing key. *)
let scan t ~from ~count =
  Api.op_key from;
  let s = t.shape in
  with_epoch t @@ fun () ->
  let rec restart from acc remaining =
    if remaining <= 0 then List.rev acc
    else begin
      let leaf, seq = upper t from in
      walk leaf seq from acc remaining
    end
  and walk leaf seq from acc remaining =
    Spinlock.acquire (Leaf.split_lock_addr leaf);
    let r =
      match
        Htm.atomic ~policy:t.cfg.Config.policy ~lock:t.lock (fun () ->
            if Api.read (Leaf.seqno_addr leaf) <> seq then L_stale
            else begin
              let sorted = Leaf.gather s leaf in
              let stash = Leaf.stash_reserved sorted in
              Leaf.free_reserved stash;
              let nxt = Api.read (Leaf.next_addr leaf) in
              let nseq =
                if nxt = 0 then 0 else Api.read (Leaf.seqno_addr nxt)
              in
              L_scan (sorted, nxt, nseq)
            end)
      with
      | r -> r
      | exception e ->
          (* never leak the advisory lock on a failed hop *)
          Spinlock.release (Leaf.split_lock_addr leaf);
          raise e
    in
    Spinlock.release (Leaf.split_lock_addr leaf);
    match r with
    | L_stale ->
        Api.count Counter.consistency_retries 1;
        (* Resume after the last collected key: a mid-chain restart from
           the original key would re-collect earlier leaves. *)
        let resume_from =
          match acc with (k, _) :: _ -> k + 1 | [] -> from
        in
        restart resume_from acc remaining
    | L_scan (sorted, nxt, nseq) ->
        let eligible = List.filter (fun (k, _) -> k >= from) sorted in
        let rec take acc remaining = function
          | [] -> (acc, remaining, None)
          | kv :: rest ->
              if remaining = 0 then (acc, 0, Some kv)
              else take (kv :: acc) (remaining - 1) rest
        in
        let acc, remaining, _ = take acc remaining eligible in
        if remaining = 0 || nxt = 0 then List.rev acc
        else walk nxt nseq from acc remaining
    | L_need_lock | L_got _ | L_updated | L_inserted | L_deleted _ ->
        assert false
  in
  restart from [] count

(* ---------- inspection (tests and tools) ---------- *)

let leaf_keys_sorted t leaf = List.map fst (Leaf.gather t.shape leaf)

let to_list t =
  let chunks = ref [] in
  Index.iter_leaves t.idx (Index.root t.idx) (fun leaf ->
      chunks := Leaf.gather t.shape leaf :: !chunks);
  List.concat (List.rev !chunks)

let size t = List.length (to_list t)

(* Structural statistics (single-threaded inspection). *)
type tree_stats = {
  st_depth : int;
  st_internals : int;
  st_leaves : int;
  st_records : int;
  st_avg_leaf_fill : float; (* records / (leaves * capacity) *)
  st_engaged_leaves : int; (* leaves currently in an engaged CCM mode *)
}

let stats t =
  let leaves = ref 0 and records = ref 0 and engaged = ref 0 in
  Index.iter_leaves t.idx (Index.root t.idx) (fun leaf ->
      incr leaves;
      records := !records + Leaf.total_count t.shape leaf;
      if Api.read (Leaf.mode_addr leaf) <> Ccm.mode_bypass then incr engaged);
  {
    st_depth = Index.depth t.idx;
    st_internals = Index.count_internals t.idx (Index.root t.idx);
    st_leaves = !leaves;
    st_records = !records;
    st_avg_leaf_fill =
      float_of_int !records
      /. float_of_int (max 1 !leaves * Config.capacity t.cfg);
    st_engaged_leaves = !engaged;
  }

(* Ordered iteration helpers (single-threaded inspection, like to_list). *)
let iter t f = List.iter (fun (k, v) -> f k v) (to_list t)

let fold t ~init ~f =
  List.fold_left (fun acc (k, v) -> f acc k v) init (to_list t)

let min_binding t =
  match scan t ~from:min_int ~count:1 with [ kv ] -> Some kv | _ -> None

let max_binding t =
  (* walk the leaf chain to the last non-empty leaf *)
  match List.rev (to_list t) with kv :: _ -> Some kv | [] -> None

(* ---------- deletion rebalance (Section 4.2.4) ---------- *)

(* The paper defers rebalancing (Sen & Tarjan: deletion without
   rebalancing) and reorganizes only once deletions pass a threshold.  We
   reproduce that as an explicit maintenance operation: callers check
   [needs_rebalance] at a quiescent point and invoke [rebalance], which
   rebuilds the tree from its live records and returns the freed nodes to
   the allocator.  It must run with no concurrent operations in flight. *)

let rebalance_threshold = 1 lsl 12

let needs_rebalance t = t.deletes >= rebalance_threshold

let rebalance t =
  let records = to_list t in
  (* Collect every old node before resetting the index. *)
  let old_leaves = ref [] and old_internals = ref [] in
  let rec walk node =
    if Api.read (Euno_bptree.Layout.tag node) = Euno_bptree.Layout.tag_leaf
    then old_leaves := node :: !old_leaves
    else begin
      old_internals := node :: !old_internals;
      let n = Api.read (Euno_bptree.Layout.nkeys node) in
      for i = 0 to n do
        walk (Api.read (Euno_bptree.Layout.child t.idx.Index.layout node i))
      done
    end
  in
  walk (Index.root t.idx);
  (* Fresh root, then bulk reload: half-filled leaves throughout. *)
  let root = Leaf.alloc t.shape in
  Api.write (t.idx.Index.meta + Euno_bptree.Layout.meta_root) root;
  Api.write (t.idx.Index.meta + Euno_bptree.Layout.meta_depth) 1;
  List.iter (fun (k, v) -> put t k v) records;
  List.iter (fun node -> Leaf.free t.shape node) !old_leaves;
  List.iter
    (fun node ->
      Api.free ~kind:Linemap.Node_meta ~addr:node
        ~words:t.idx.Index.layout.Euno_bptree.Layout.internal_words)
    !old_internals;
  t.deletes <- 0


exception Invariant = Index.Invariant

let fail_inv fmt = Printf.ksprintf (fun s -> raise (Invariant s)) fmt

let check_invariants t =
  let s = t.shape in
  Index.check_structure t.idx ~leaf_keys:(fun leaf ->
      (* Per-leaf checks: segment counts in range, keys sorted within each
         segment, no duplicate keys across segments, mark bits cover every
         live key. *)
      let cfg = t.cfg in
      let seen = Hashtbl.create 16 in
      for i = 0 to cfg.Config.nsegs - 1 do
        let c = Leaf.seg_count s leaf i in
        if c < 0 || c > cfg.Config.seg_slots then
          fail_inv "leaf %d seg %d: bad count %d" leaf i c;
        let prev = ref None in
        for j = 0 to c - 1 do
          let k = Api.read (Leaf.seg_key_addr s leaf i j) in
          (match !prev with
          | Some p when k <= p ->
              fail_inv "leaf %d seg %d: keys not sorted" leaf i
          | Some _ | None -> ());
          if Hashtbl.mem seen k then
            fail_inv "leaf %d: duplicate key %d" leaf k;
          Hashtbl.add seen k ();
          prev := Some k
        done
      done;
      (* Mark coverage is an invariant only where the fast path may trust
         the marks: non-adaptive trees, and adaptive leaves in ready mode
         (bypass-mode insertions deliberately skip the CCM). *)
      let c = Leaf.ccm s leaf in
      let marks_trusted =
        cfg.Config.use_mark_bits
        && ((not cfg.Config.adaptive) || Ccm.mode c = Ccm.mode_ready)
      in
      if marks_trusted then
        Hashtbl.iter
          (fun k () ->
            if not (Ccm.marked c (Ccm.hash c k)) then
              fail_inv "leaf %d: live key %d not marked" leaf k)
          seen;
      leaf_keys_sorted t leaf);
  (* The leaf chain must enumerate the same records in order. *)
  let keys = List.map fst (to_list t) in
  let chained = List.map fst (scan t ~from:min_int ~count:max_int) in
  if keys <> chained then fail_inv "leaf chain disagrees with tree order"
