(* Line-aligned bump allocator with size-class free lists and per-kind
   live/peak accounting.  The accounting backs the Section 5.7 memory-
   consumption analysis (reserved-keys and CCM overhead vs. base tree). *)

type stats = {
  mutable live_words : int;
  mutable peak_words : int;
  mutable alloc_count : int;
  mutable free_count : int;
}

let fresh_stats () =
  { live_words = 0; peak_words = 0; alloc_count = 0; free_count = 0 }

(* Raised to thread code when injected allocator pressure makes a
   non-transactional allocation fail (Machine fault injection); the trees
   must surface it cleanly rather than corrupt structure. *)
exception Alloc_failure

let nkinds = 7

let kind_index : Linemap.kind -> int = function
  | Linemap.Unknown -> 0
  | Linemap.Record -> 1
  | Linemap.Node_meta -> 2
  | Linemap.Tree_meta -> 3
  | Linemap.Lock -> 4
  | Linemap.Reserved -> 5
  | Linemap.Scratch -> 6

let all_kinds =
  [
    Linemap.Unknown;
    Linemap.Record;
    Linemap.Node_meta;
    Linemap.Tree_meta;
    Linemap.Lock;
    Linemap.Reserved;
    Linemap.Scratch;
  ]

type t = {
  mem : Memory.t;
  map : Linemap.t;
  mutable next : int; (* bump pointer, always line-aligned *)
  free_lists : (int, int list ref) Hashtbl.t; (* rounded size -> addrs *)
  by_kind : stats array;
  total : stats;
}

let create mem map =
  {
    mem;
    map;
    (* Address 0 is reserved as the null pointer: start at line 1. *)
    next = Memory.line_words;
    free_lists = Hashtbl.create 64;
    by_kind = Array.init nkinds (fun _ -> fresh_stats ());
    total = fresh_stats ();
  }

let round_to_lines words =
  let lw = Memory.line_words in
  (words + lw - 1) / lw * lw

let account_alloc t kind words =
  let bump s =
    s.live_words <- s.live_words + words;
    if s.live_words > s.peak_words then s.peak_words <- s.live_words;
    s.alloc_count <- s.alloc_count + 1
  in
  bump t.by_kind.(kind_index kind);
  bump t.total

let account_free t kind words =
  let drop s =
    s.live_words <- s.live_words - words;
    s.free_count <- s.free_count + 1
  in
  drop t.by_kind.(kind_index kind);
  drop t.total

let alloc t ~kind ~words =
  if words <= 0 then invalid_arg "Alloc.alloc: words <= 0";
  let size = round_to_lines words in
  let addr =
    match Hashtbl.find_opt t.free_lists size with
    | Some ({ contents = a :: rest } as cell) ->
        cell := rest;
        (* Recycled space must read as zero, like fresh space. *)
        for i = a to a + size - 1 do
          Memory.set t.mem i 0
        done;
        a
    | Some { contents = [] } | None ->
        let a = t.next in
        t.next <- t.next + size;
        Memory.ensure t.mem (t.next - 1);
        a
  in
  Linemap.set_range t.map ~addr ~words:size kind;
  account_alloc t kind size;
  addr

let free t ~kind ~addr ~words =
  let size = round_to_lines words in
  (match Hashtbl.find_opt t.free_lists size with
  | Some cell -> cell := addr :: !cell
  | None -> Hashtbl.add t.free_lists size (ref [ addr ]));
  account_free t kind size

(* Move accounting of a sub-range from one kind to another (used when a
   single allocation contains lines of several kinds, e.g. a tree leaf
   whose block holds metadata, lock and record lines). *)
let reclassify t ~from_kind ~to_kind ~words =
  let f = t.by_kind.(kind_index from_kind) in
  let g = t.by_kind.(kind_index to_kind) in
  f.live_words <- f.live_words - words;
  g.live_words <- g.live_words + words;
  if g.live_words > g.peak_words then g.peak_words <- g.live_words

let live_words t = t.total.live_words
let peak_words t = t.total.peak_words

let stats_of_kind t kind = t.by_kind.(kind_index kind)
let total_stats t = t.total

let live_bytes t = live_words t * Memory.word_bytes
let peak_bytes t = peak_words t * Memory.word_bytes
