(** Classification of cache lines by content.

    The allocator records what lives on each line so the HTM simulator can
    attribute a conflict abort to the paper's taxonomy (Section 2.3): true
    conflicts on the same record, false conflicts between different records
    sharing a line, and false conflicts on shared metadata.

    {b Complexity:} storage is a flat byte array indexed by line number
    ([kind_of_line] sits on the simulator's conflict path and on every
    CAS): one bounds check and one load, no hashing.  Tagging grows the
    array geometrically and is amortized O(1) per line.

    {b Determinism:} a pure line → kind mapping driven by the
    deterministic allocator; queries never mutate. *)

type kind =
  | Unknown
  | Record  (** key/value slots of tree nodes *)
  | Node_meta  (** per-node metadata: counts, versions, parent/next *)
  | Tree_meta  (** tree-wide metadata: root pointer, depth *)
  | Lock  (** lock words and CCM bit vectors *)
  | Reserved  (** Eunomia reserved-keys transient buffers *)
  | Scratch  (** harness scratch space *)

val kind_to_string : kind -> string

type t

val create : unit -> t

val set_line : t -> int -> kind -> unit
(** Tag one line. *)

val set_range : t -> addr:int -> words:int -> kind -> unit
(** Tag every line overlapping [addr, addr+words). *)

val kind_of_line : t -> int -> kind
(** Kind of a line ([Unknown] if never tagged). *)

val iter_lines : t -> (int -> kind -> unit) -> unit
(** [iter_lines t f] calls [f line kind] for every tagged
    (non-[Unknown]) line, in ascending line order.  O(highest tagged
    line); used by crash recovery to sweep [Lock]-classified lines, not
    by any simulator hot path. *)
