(* Side map classifying each cache line by what the allocator put there.
   Used by the HTM simulator to attribute conflict aborts to the paper's
   taxonomy (record data vs. shared metadata vs. lock words).

   [kind_of_line] sits on the simulator's conflict path and on every CAS
   (lock-word detection), so the map is a flat byte array indexed by line
   number — one bounds check and one load — rather than a hash table.
   Lines are dense small integers from the bump allocator; the array
   grows geometrically to the highest line ever tagged. *)

type kind =
  | Unknown
  | Record (* key/value slots of tree nodes *)
  | Node_meta (* per-node metadata: counts, versions, parent/next pointers *)
  | Tree_meta (* tree-wide metadata: root pointer, depth *)
  | Lock (* lock words, CCM bit vectors *)
  | Reserved (* Eunomia reserved-keys transient buffers *)
  | Scratch (* harness/benchmark scratch space *)

let kind_to_string = function
  | Unknown -> "unknown"
  | Record -> "record"
  | Node_meta -> "node-meta"
  | Tree_meta -> "tree-meta"
  | Lock -> "lock"
  | Reserved -> "reserved"
  | Scratch -> "scratch"

(* Byte encoding for the flat array; Unknown = 0 so fresh bytes decode
   correctly without initialization. *)
let to_byte = function
  | Unknown -> 0
  | Record -> 1
  | Node_meta -> 2
  | Tree_meta -> 3
  | Lock -> 4
  | Reserved -> 5
  | Scratch -> 6

let of_byte = function
  | 0 -> Unknown
  | 1 -> Record
  | 2 -> Node_meta
  | 3 -> Tree_meta
  | 4 -> Lock
  | 5 -> Reserved
  | 6 -> Scratch
  | _ -> assert false

type t = { mutable kinds : Bytes.t }

let initial = 4096

let create () = { kinds = Bytes.make initial '\000' }

let grow t line =
  let n = max (2 * Bytes.length t.kinds) (line + 1) in
  let b = Bytes.make n '\000' in
  Bytes.blit t.kinds 0 b 0 (Bytes.length t.kinds);
  t.kinds <- b

let set_line t line kind =
  if line >= Bytes.length t.kinds then grow t line;
  Bytes.unsafe_set t.kinds line (Char.chr (to_byte kind))

let set_range t ~addr ~words kind =
  let first = Memory.line_of_addr addr in
  let last = Memory.line_of_addr (addr + words - 1) in
  if last >= Bytes.length t.kinds then grow t last;
  for line = first to last do
    Bytes.unsafe_set t.kinds line (Char.chr (to_byte kind))
  done

let kind_of_line t line =
  if line < Bytes.length t.kinds then
    of_byte (Char.code (Bytes.unsafe_get t.kinds line))
  else Unknown

let iter_lines t f =
  (* Visits tagged lines only, in ascending line order (deterministic). *)
  for line = 0 to Bytes.length t.kinds - 1 do
    match of_byte (Char.code (Bytes.unsafe_get t.kinds line)) with
    | Unknown -> ()
    | kind -> f line kind
  done
