(** Simulated flat memory.

    A growable store of 8-byte words addressed by an integer word index.
    Cache lines are 64 bytes, i.e. 8 consecutive words; the HTM simulator
    detects conflicts at line granularity, exactly like Intel RTM.  Unmapped
    addresses read as 0 and are mapped on first write.

    {b Complexity:} storage is chunked (64 Ki words per chunk) so it grows
    without copying; {!get} and {!set} are O(1) — a shift, a mask and an
    array access, with the already-mapped case branch-predicted first.

    {b Determinism:} contents are a pure function of the store sequence;
    chunk growth is invisible to simulated code (no address ever moves). *)

val word_bytes : int
(** Bytes per word (8). *)

val line_words : int
(** Words per cache line (8). *)

val line_shift : int
(** [line_of_addr a = a lsr line_shift]. *)

val line_bytes : int
(** Bytes per cache line (64). *)

type t
(** A simulated memory. *)

val create : unit -> t
(** Fresh, empty memory. *)

val line_of_addr : int -> int
(** Cache-line id containing a word address. *)

val addr_of_line : int -> int
(** First word address of a cache line. *)

val get : t -> int -> int
(** [get m a] reads the word at address [a] (0 if never written). *)

val set : t -> int -> int -> unit
(** [set m a v] writes [v] at address [a], mapping the chunk if needed. *)

val ensure : t -> int -> unit
(** [ensure m a] maps the chunk containing [a] without writing. *)

val words : t -> int
(** Number of words currently mapped (capacity, not liveness). *)
