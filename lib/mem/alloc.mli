(** Line-aligned allocator over simulated memory with per-kind accounting.

    Every allocation is rounded up to whole 64-byte cache lines and tagged in
    the {!Linemap}, so (a) distinct allocations never share a line unless a
    data structure deliberately packs them, and (b) the HTM simulator can
    classify conflicts.  Live/peak word counts per kind back the paper's
    Section 5.7 memory-overhead analysis.

    {b Complexity:} allocation is a bump pointer plus one {!Linemap} range
    tag — O(lines in the allocation); free and reclassify only adjust the
    per-kind accounting, O(1).

    {b Determinism:} addresses are handed out in strictly increasing order
    from a single bump pointer, so a given allocation sequence always
    yields the same simulated addresses (and therefore the same cache-line
    conflicts) on every run. *)

type stats = {
  mutable live_words : int;
  mutable peak_words : int;
  mutable alloc_count : int;
  mutable free_count : int;
}

type t

exception Alloc_failure
(** Delivered to thread code when injected allocator pressure fails a
    non-transactional allocation (see [Machine.injector]).  Inside a
    transaction the same fault instead aborts the transaction with
    [Abort.Alloc_fault]. *)

val create : Memory.t -> Linemap.t -> t

val round_to_lines : int -> int
(** Round a word count up to a whole number of cache lines. *)

val alloc : t -> kind:Linemap.kind -> words:int -> int
(** Allocate [words] (rounded up to lines), zeroed, line-aligned.  Returns
    the word address.  Address 0 is never returned (it is the null pointer). *)

val free : t -> kind:Linemap.kind -> addr:int -> words:int -> unit
(** Return a block to the size-class free list.  [words] must match the
    original request (it is rounded the same way). *)

val reclassify :
  t -> from_kind:Linemap.kind -> to_kind:Linemap.kind -> words:int -> unit
(** Move [words] of live accounting between kinds (for allocations whose
    lines are re-tagged after the fact).  Total liveness is unchanged. *)

val live_words : t -> int
val peak_words : t -> int
val live_bytes : t -> int
val peak_bytes : t -> int

val stats_of_kind : t -> Linemap.kind -> stats
val total_stats : t -> stats

val nkinds : int
(** Number of distinct {!Linemap.kind} values. *)

val kind_index : Linemap.kind -> int
(** Stable index of a kind in [0, nkinds). *)

val all_kinds : Linemap.kind list
(** All kinds, in {!kind_index} order. *)
