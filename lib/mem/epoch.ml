(* Epoch-based memory reclamation, standing in for the deletion / garbage
   collection scheme Euno-B+Tree reuses from DBX (Section 4.2.4).

   Each simulated thread pins the global epoch for the duration of an
   operation.  A block retired in epoch [e] may still be reachable by
   operations pinned in [e] or [e-1]; it is physically freed once the global
   epoch has advanced two steps past [e].  The whole simulator runs on one
   host thread, so plain mutable state is safe and deterministic. *)

type retired = { epoch : int; reclaim : unit -> unit }

type t = {
  slots : int array; (* per-thread pinned epoch; -1 = quiescent *)
  mutable global : int;
  mutable retired : retired list;
  mutable retired_count : int;
  mutable freed_count : int;
  advance_every : int;
  mutable pins_since_advance : int;
  mutable hook : (epoch:int -> pinned:int -> unit) option;
    (* observer of successful global advances; None (the default) keeps
       the advance path exactly as before, so runs without a durability
       layer stay byte-identical *)
}

let create ~slots ?(advance_every = 64) () =
  {
    slots = Array.make slots (-1);
    global = 2;
    retired = [];
    retired_count = 0;
    freed_count = 0;
    advance_every;
    pins_since_advance = 0;
    hook = None;
  }

let min_pinned t =
  Array.fold_left
    (fun acc e -> if e >= 0 && e < acc then e else acc)
    max_int t.slots

let pinned_slots t =
  Array.fold_left (fun acc e -> if e >= 0 then acc + 1 else acc) 0 t.slots

let set_advance_hook t hook = t.hook <- hook

let collect t =
  let horizon = min (min_pinned t) t.global in
  let keep, drop =
    List.partition (fun r -> r.epoch + 2 > horizon) t.retired
  in
  List.iter
    (fun r ->
      r.reclaim ();
      t.freed_count <- t.freed_count + 1)
    drop;
  t.retired <- keep;
  t.retired_count <- List.length keep

let try_advance t =
  (* The global epoch may advance only when no thread is pinned in an
     older epoch. *)
  if min_pinned t >= t.global then begin
    t.global <- t.global + 1;
    collect t;
    match t.hook with
    | None -> ()
    | Some f -> f ~epoch:t.global ~pinned:(pinned_slots t)
  end

let advance t = try_advance t

let pin t slot =
  t.slots.(slot) <- t.global;
  t.pins_since_advance <- t.pins_since_advance + 1;
  if t.pins_since_advance >= t.advance_every then begin
    t.pins_since_advance <- 0;
    try_advance t
  end

let unpin t slot = t.slots.(slot) <- -1

let retire t reclaim =
  t.retired <- { epoch = t.global; reclaim } :: t.retired;
  t.retired_count <- t.retired_count + 1

let flush t =
  (* Force-clearing a live pin would let the collector free a block an
     in-flight operation still points at — the contract ("only valid when
     no operation is in flight") is now enforced instead of documented. *)
  Array.iteri
    (fun i e ->
      if e >= 0 then
        invalid_arg
          (Printf.sprintf "Epoch.flush: slot %d still pinned (epoch %d)" i e))
    t.slots;
  t.global <- t.global + 2;
  collect t

let crash_reset t =
  (* Simulated process death: the pinning threads are gone, so their pins
     are abandoned rather than unpinned, and pending retire callbacks are
     dropped without running — their referents belong to the dead
     process's reclamation protocol, not the recovered one. *)
  Array.iteri (fun i _ -> t.slots.(i) <- -1) t.slots;
  t.pins_since_advance <- 0;
  t.retired <- [];
  t.retired_count <- 0

let pending t = t.retired_count
let freed t = t.freed_count
let global_epoch t = t.global
