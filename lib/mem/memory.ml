(* Simulated flat memory: a growable store of 8-byte words addressed by
   integer word index.  64-byte cache lines group 8 consecutive words; the
   line of address [a] is [a lsr line_shift].  The store is chunked so it can
   grow without copying. *)

let word_bytes = 8
let line_words = 8
let line_shift = 3
let line_bytes = word_bytes * line_words

let chunk_shift = 16
let chunk_words = 1 lsl chunk_shift
let chunk_mask = chunk_words - 1

type t = {
  mutable chunks : int array array;
  mutable nchunks : int; (* chunks allocated so far *)
}

let create () = { chunks = Array.make 16 [||]; nchunks = 0 }

let line_of_addr addr = addr lsr line_shift
let addr_of_line line = line lsl line_shift

(* Ensure the chunk containing [addr] exists. *)
let ensure t addr =
  let c = addr lsr chunk_shift in
  if c >= Array.length t.chunks then begin
    let n = Array.make (max (2 * Array.length t.chunks) (c + 1)) [||] in
    Array.blit t.chunks 0 n 0 t.nchunks;
    t.chunks <- n
  end;
  if c >= t.nchunks then
    for i = t.nchunks to c do
      t.chunks.(i) <- Array.make chunk_words 0;
      t.nchunks <- i + 1
    done

let[@inline] get t addr =
  let c = addr lsr chunk_shift in
  if c >= t.nchunks then 0 else Array.unsafe_get t.chunks.(c) (addr land chunk_mask)

let[@inline] set t addr v =
  let c = addr lsr chunk_shift in
  if c < t.nchunks then
    Array.unsafe_set (Array.unsafe_get t.chunks c) (addr land chunk_mask) v
  else begin
    ensure t addr;
    Array.unsafe_set t.chunks.(c) (addr land chunk_mask) v
  end

let words t = t.nchunks * chunk_words
