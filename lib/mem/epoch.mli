(** Epoch-based memory reclamation.

    Stands in for the DBX deletion/GC scheme the paper reuses
    (Section 4.2.4): nodes unlinked from the tree are retired and physically
    freed only once no in-flight operation can still hold a pointer to
    them.

    {b Complexity:} pin/unpin are O(1) counter updates (all bookkeeping
    lives in simulated memory, so they cost simulated cycles too); the
    opportunistic advance scans the [slots] pin words.

    {b Determinism:} epoch advancement depends only on pin/unpin order,
    which the deterministic scheduler fixes — retired nodes are freed at
    the same simulated instant on every run. *)

type t

val create : slots:int -> ?advance_every:int -> unit -> t
(** [slots] is the number of participating threads.  The global epoch is
    opportunistically advanced every [advance_every] pins (default 64). *)

val pin : t -> int -> unit
(** Enter an operation on the given thread slot. *)

val unpin : t -> int -> unit
(** Leave the current operation. *)

val retire : t -> (unit -> unit) -> unit
(** Schedule a reclamation callback for when the current epoch expires. *)

val flush : t -> unit
(** Force reclamation of everything retired so far.  Only valid when no
    operation is in flight (e.g. at the end of a benchmark run). *)

val pending : t -> int
(** Retired blocks not yet reclaimed. *)

val freed : t -> int
(** Blocks reclaimed so far. *)

val global_epoch : t -> int
