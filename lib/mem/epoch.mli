(** Epoch-based memory reclamation.

    Stands in for the DBX deletion/GC scheme the paper reuses
    (Section 4.2.4): nodes unlinked from the tree are retired and physically
    freed only once no in-flight operation can still hold a pointer to
    them.

    {b Complexity:} pin/unpin are O(1) counter updates (all bookkeeping
    lives in simulated memory, so they cost simulated cycles too); the
    opportunistic advance scans the [slots] pin words.

    {b Determinism:} epoch advancement depends only on pin/unpin order,
    which the deterministic scheduler fixes — retired nodes are freed at
    the same simulated instant on every run. *)

type t

val create : slots:int -> ?advance_every:int -> unit -> t
(** [slots] is the number of participating threads.  The global epoch is
    opportunistically advanced every [advance_every] pins (default 64). *)

val pin : t -> int -> unit
(** Enter an operation on the given thread slot. *)

val unpin : t -> int -> unit
(** Leave the current operation. *)

val retire : t -> (unit -> unit) -> unit
(** Schedule a reclamation callback for when the current epoch expires. *)

val advance : t -> unit
(** Explicitly attempt a global-epoch advance (the same opportunistic
    advance {!pin} performs every [advance_every] pins).  Succeeds only
    when no slot is pinned in an older epoch.  Used by quiesced
    checkpoints to turn a known-quiescent instant into an epoch boundary
    (and hence a snapshot opportunity, see {!set_advance_hook}). *)

val set_advance_hook : t -> (epoch:int -> pinned:int -> unit) option -> unit
(** Install (or remove) an observer of successful global advances:
    [f ~epoch ~pinned] runs after the epoch has advanced to [epoch] with
    [pinned] slots currently pinned.  [pinned <= 1] witnesses a quiescent
    point (at most the advancing thread itself is inside an operation) —
    the hook the durability layer snapshots from.  [None] (the default)
    keeps the advance path exactly as before, so runs without the hook
    are byte-identical. *)

val pinned_slots : t -> int
(** Number of slots currently pinned. *)

val flush : t -> unit
(** Force reclamation of everything retired so far.  Only valid when no
    operation is in flight (e.g. at the end of a benchmark run).
    @raise Invalid_argument if any slot is still pinned. *)

val crash_reset : t -> unit
(** Recovery after a simulated process death: abandon every pin (the
    pinning threads are dead) and drop pending retire callbacks without
    running them.  Unlike {!flush} this reclaims nothing — the dead
    process's reclamation protocol does not survive it. *)

val pending : t -> int
(** Retired blocks not yet reclaimed. *)

val freed : t -> int
(** Blocks reclaimed so far. *)

val global_epoch : t -> int
