(* EunoSan: four checkers over one pass of the semantic-event stream.

   Everything is host state driven by events the machine emits in
   execution order, so verdicts are deterministic per seed.

   Race detection is FastTrack-shaped (Flanagan & Freund, PLDI'09):
   per-thread vector clocks, per-address adaptive read representation
   (last-reader epoch, widened to a read vector clock only when reads are
   genuinely concurrent), per-lock and per-barrier vector clocks.
   Happens-before edges come from

     - lock release -> later acquire of the same (kind, id);
     - publish notes (one-way initialization edges, e.g. Masstree root
       growth);
     - barrier episodes (arrivals join into the barrier clock, departures
       join out of it);
     - transaction commits: a commit stamps the committing thread's clock
       on every line its write set touched, and a later transactional
       access of that line joins the stamp back in (eager conflict
       detection guarantees the later transaction really is ordered after
       the commit);
     - sequential thread incarnations: Machine.run returns only when all
       its threads exited, so a thread's first event after an exit joins
       the clocks of everything that already exited (this is what orders
       a single-threaded preload before the worker phase).

   Aborted transactions transfer nothing (their effects are rolled back;
   dropping the edge is conservative: it can only add reports on
   genuinely racy programs, never hide a race on clean ones — and plain
   accesses made *inside* a transaction are invisible here anyway, the
   machine classifies them as transactional). *)

module Sev = Euno_sim.Sev
module Linemap = Euno_mem.Linemap

let nthreads = Euno_sim.Line_table.max_threads

type kind =
  | Race
  | Lock_leak
  | Bad_release
  | Lock_cycle
  | Atomicity
  | Txn_unbalanced
  | Escaped_abort

let kind_name = function
  | Race -> "race"
  | Lock_leak -> "lock-leak"
  | Bad_release -> "bad-release"
  | Lock_cycle -> "lock-cycle"
  | Atomicity -> "atomicity"
  | Txn_unbalanced -> "txn-unbalanced"
  | Escaped_abort -> "escaped-abort"

type finding = {
  f_kind : kind;
  f_subject : string;
  f_tid : int;
  f_clock : int;
  f_detail : string;
}

type summary = { events : int; findings : finding list; total : int }

(* ---------- vector clocks ---------- *)

let vc_fresh () = Array.make nthreads 0
let vc_join dst src =
  for i = 0 to nthreads - 1 do
    if src.(i) > dst.(i) then dst.(i) <- src.(i)
  done

(* ---------- per-address FastTrack state ---------- *)

(* [r_tid] is the last-reader tid, [-1] for no reads since the last
   write, [-2] once reads went concurrent and [rvc] took over. *)
type astate = {
  mutable w_tid : int;
  mutable w_clk : int;
  mutable r_tid : int;
  mutable r_clk : int;
  mutable rvc : int array;
}

let no_reader = -1
let shared = -2

(* ---------- per-thread state ---------- *)

type lock_id = Sev.lock_kind * int

type tstate = {
  vc : int array;
  mutable active : bool;
  mutable opt_depth : int;
  mutable attempt_depth : int;
  mutable in_txn : bool;
  mutable held : lock_id list; (* most recent acquisition first *)
  rlines : (int, unit) Hashtbl.t; (* live transactional read lines *)
  wlines : (int, unit) Hashtbl.t; (* live transactional write lines *)
}

type t = {
  max_findings : int;
  mutable events : int;
  mutable last_clock : int;
  mutable findings_rev : finding list;
  mutable kept : int;
  mutable total : int;
  dedup : (string, unit) Hashtbl.t;
  threads : tstate array;
  finished : int array; (* join of every exited incarnation's clock *)
  addrs : (int, astate) Hashtbl.t;
  sync_words : (int, unit) Hashtbl.t; (* e.g. Masstree version words *)
  locks : (lock_id, int array) Hashtbl.t;
  barriers : (int, int array) Hashtbl.t;
  lines : (int, int array) Hashtbl.t; (* committed-write line clocks *)
  live : (int, (int, bool) Hashtbl.t) Hashtbl.t;
      (* line -> live tids, true when the line is in that tid's write set *)
  adj : (lock_id, lock_id list ref) Hashtbl.t; (* acquisition order *)
  edges : (lock_id * lock_id, unit) Hashtbl.t;
}

let create ?(max_findings = 200) () =
  {
    max_findings;
    events = 0;
    last_clock = 0;
    findings_rev = [];
    kept = 0;
    total = 0;
    dedup = Hashtbl.create 64;
    threads =
      Array.init nthreads (fun _ ->
          {
            vc = vc_fresh ();
            active = false;
            opt_depth = 0;
            attempt_depth = 0;
            in_txn = false;
            held = [];
            rlines = Hashtbl.create 8;
            wlines = Hashtbl.create 8;
          });
    finished = vc_fresh ();
    addrs = Hashtbl.create 4096;
    sync_words = Hashtbl.create 256;
    locks = Hashtbl.create 256;
    barriers = Hashtbl.create 8;
    lines = Hashtbl.create 1024;
    live = Hashtbl.create 64;
    adj = Hashtbl.create 256;
    edges = Hashtbl.create 256;
  }

let report t ~kind ~subject ~tid ~clock ~detail =
  let key = kind_name kind ^ "|" ^ subject in
  if not (Hashtbl.mem t.dedup key) then begin
    Hashtbl.replace t.dedup key ();
    t.total <- t.total + 1;
    if t.kept < t.max_findings then begin
      t.kept <- t.kept + 1;
      t.findings_rev <-
        {
          f_kind = kind;
          f_subject = subject;
          f_tid = tid;
          f_clock = clock;
          f_detail = detail;
        }
        :: t.findings_rev
    end
  end

let lk_name : Sev.lock_kind -> string = function
  | Sev.Spin -> "spin"
  | Sev.Ticket -> "ticket"
  | Sev.Seq_writer -> "seqlock"
  | Sev.Slot -> "slot"
  | Sev.Version -> "version"

let lock_subject ((k, id) : lock_id) = Printf.sprintf "%s %d" (lk_name k) id

(* ---------- race detector ---------- *)

let astate_of t addr =
  match Hashtbl.find_opt t.addrs addr with
  | Some st -> st
  | None ->
      let st =
        { w_tid = -1; w_clk = 0; r_tid = no_reader; r_clk = 0; rvc = [||] }
      in
      Hashtbl.replace t.addrs addr st;
      st

let skip_addr t addr (kind : Linemap.kind) =
  (match kind with Linemap.Lock | Linemap.Scratch -> true | _ -> false)
  || Hashtbl.mem t.sync_words addr
  || Sev.is_racy addr

let plain_read t tid clock addr kind =
  if not (skip_addr t addr kind) then begin
    let ts = t.threads.(tid) in
    (* Reads inside an optimistic section are version-validated by the
       protocol itself; checking them would flag every seqlock/OLC reader.
       Writes are never suppressed this way. *)
    if ts.opt_depth = 0 then begin
      let st = astate_of t addr in
      if st.w_tid >= 0 && st.w_tid <> tid && st.w_clk > ts.vc.(st.w_tid) then
        report t ~kind:Race
          ~subject:(Printf.sprintf "addr %d" addr)
          ~tid ~clock
          ~detail:
            (Printf.sprintf
               "read of %s word %d by t%d races with write by t%d"
               (Linemap.kind_to_string kind) addr tid st.w_tid);
      if st.r_tid = shared then st.rvc.(tid) <- ts.vc.(tid)
      else if st.r_tid = tid then st.r_clk <- ts.vc.(tid)
      else if st.r_tid >= 0 && st.r_clk > ts.vc.(st.r_tid) then begin
        (* Two concurrent readers: widen to a read vector clock. *)
        let rvc = vc_fresh () in
        rvc.(st.r_tid) <- st.r_clk;
        rvc.(tid) <- ts.vc.(tid);
        st.rvc <- rvc;
        st.r_tid <- shared
      end
      else begin
        st.r_tid <- tid;
        st.r_clk <- ts.vc.(tid)
      end
    end
  end

let plain_write t tid clock addr kind =
  if not (skip_addr t addr kind) then begin
    let ts = t.threads.(tid) in
    let st = astate_of t addr in
    if st.w_tid >= 0 && st.w_tid <> tid && st.w_clk > ts.vc.(st.w_tid) then
      report t ~kind:Race
        ~subject:(Printf.sprintf "addr %d" addr)
        ~tid ~clock
        ~detail:
          (Printf.sprintf
             "write of %s word %d by t%d races with write by t%d"
             (Linemap.kind_to_string kind) addr tid st.w_tid);
    (if st.r_tid = shared then begin
       let racing = ref (-1) in
       for u = 0 to nthreads - 1 do
         if u <> tid && st.rvc.(u) > ts.vc.(u) && !racing < 0 then racing := u
       done;
       if !racing >= 0 then
         report t ~kind:Race
           ~subject:(Printf.sprintf "addr %d" addr)
           ~tid ~clock
           ~detail:
             (Printf.sprintf
                "write of %s word %d by t%d races with read by t%d"
                (Linemap.kind_to_string kind) addr tid !racing)
     end
     else if st.r_tid >= 0 && st.r_tid <> tid && st.r_clk > ts.vc.(st.r_tid)
     then
       report t ~kind:Race
         ~subject:(Printf.sprintf "addr %d" addr)
         ~tid ~clock
         ~detail:
           (Printf.sprintf
              "write of %s word %d by t%d races with read by t%d"
              (Linemap.kind_to_string kind) addr tid st.r_tid));
    st.w_tid <- tid;
    st.w_clk <- ts.vc.(tid);
    (* This write is ordered after every checked read above, so transitive
       ordering through the write epoch keeps future checks sound. *)
    st.r_tid <- no_reader;
    st.rvc <- [||]
  end

(* A word announced as a lock (Masstree version words live on Node_meta
   lines, so kind-based skipping cannot see them) stops being data:
   forget its access history and suppress it from now on. *)
let mark_sync_word t (k : Sev.lock_kind) id =
  match k with
  | Sev.Version ->
      if not (Hashtbl.mem t.sync_words id) then begin
        Hashtbl.replace t.sync_words id ();
        Hashtbl.remove t.addrs id
      end
  | Sev.Spin | Sev.Ticket | Sev.Seq_writer | Sev.Slot -> ()

(* ---------- lock-discipline ---------- *)

let remove_first x l =
  let rec go acc = function
    | [] -> None
    | y :: rest when y = x -> Some (List.rev_append acc rest)
    | y :: rest -> go (y :: acc) rest
  in
  go [] l

let note_order t ts lock =
  List.iter
    (fun h ->
      if h <> lock && not (Hashtbl.mem t.edges (h, lock)) then begin
        Hashtbl.replace t.edges (h, lock) ();
        let l =
          match Hashtbl.find_opt t.adj h with
          | Some l -> l
          | None ->
              let l = ref [] in
              Hashtbl.replace t.adj h l;
              l
        in
        l := lock :: !l
      end)
    ts.held

let lock_vc t lock =
  match Hashtbl.find_opt t.locks lock with
  | Some vc -> vc
  | None ->
      let vc = vc_fresh () in
      Hashtbl.replace t.locks lock vc;
      vc

let acquire t tid lock =
  let ts = t.threads.(tid) in
  mark_sync_word t (fst lock) (snd lock);
  note_order t ts lock;
  ts.held <- lock :: ts.held;
  match Hashtbl.find_opt t.locks lock with
  | Some lvc -> vc_join ts.vc lvc
  | None -> ()

let release t tid clock lock =
  let ts = t.threads.(tid) in
  (match remove_first lock ts.held with
  | Some held -> ts.held <- held
  | None ->
      report t ~kind:Bad_release ~subject:(lock_subject lock) ~tid ~clock
        ~detail:
          (Printf.sprintf "t%d released %s it does not hold" tid
             (lock_subject lock)));
  (* Join rather than overwrite so publish edges into the same lock are
     never erased by a release that predates knowing about them. *)
  vc_join (lock_vc t lock) ts.vc;
  ts.vc.(tid) <- ts.vc.(tid) + 1

let publish t tid lock =
  let ts = t.threads.(tid) in
  mark_sync_word t (fst lock) (snd lock);
  vc_join (lock_vc t lock) ts.vc;
  ts.vc.(tid) <- ts.vc.(tid) + 1

let leak_check t tid clock where ts =
  List.iter
    (fun lock ->
      report t ~kind:Lock_leak ~subject:(lock_subject lock) ~tid ~clock
        ~detail:
          (Printf.sprintf "%s still held by t%d at %s" (lock_subject lock)
             tid where))
    ts.held

(* ---------- transactions ---------- *)

let live_tids t line =
  match Hashtbl.find_opt t.live line with
  | Some tids -> tids
  | None ->
      let tids = Hashtbl.create 4 in
      Hashtbl.replace t.live line tids;
      tids

let txn_clear t tid =
  let ts = t.threads.(tid) in
  let drop line () =
    match Hashtbl.find_opt t.live line with
    | Some tids ->
        Hashtbl.remove tids tid;
        if Hashtbl.length tids = 0 then Hashtbl.remove t.live line
    | None -> ()
  in
  Hashtbl.iter drop ts.rlines;
  Hashtbl.iter drop ts.wlines;
  Hashtbl.reset ts.rlines;
  Hashtbl.reset ts.wlines;
  ts.in_txn <- false

let txn_line t tid ~wrote set line =
  let ts = t.threads.(tid) in
  Hashtbl.replace set line ();
  let tids = live_tids t line in
  let wrote =
    wrote || match Hashtbl.find_opt tids tid with Some w -> w | None -> false
  in
  Hashtbl.replace tids tid wrote;
  (* Eager conflict detection means a transaction touching a committed
     line really is ordered after that commit. *)
  match Hashtbl.find_opt t.lines line with
  | Some lvc -> vc_join ts.vc lvc
  | None -> ()

(* Strong-atomicity lint.  An untracked *write* into any line of a live
   transaction's footprint is a hazard either way: against a read set it
   is the update the transaction will never see (and on real RTM the doom
   conflict detection owes it), against a write set a lost update.  An
   untracked *read* is only a hazard against a live *write* set (it can
   observe the pre-transactional value of a line mid-rewrite); reading a
   line other transactions merely read is benign — that read-vs-read shape
   is exactly the 3-path fast path's unsubscribed peek of the
   fallback-activity counter, which is correct by protocol design. *)
let unsafe_access t tid clock addr what ~is_write =
  let line = Euno_mem.Memory.line_of_addr addr in
  match Hashtbl.find_opt t.live line with
  | None -> ()
  | Some tids ->
      Hashtbl.iter
        (fun tid' wrote' ->
          if tid' <> tid && (is_write || wrote') then
            report t ~kind:Atomicity
              ~subject:(Printf.sprintf "line %d" line)
              ~tid ~clock
              ~detail:
                (Printf.sprintf
                   "untracked %s of word %d by t%d hits line %d inside \
                    t%d's live transaction %s set"
                   what addr tid line tid'
                   (if wrote' then "write" else "read")))
        tids

(* ---------- the hook ---------- *)

(* Machine.run returns only once every thread it ran has exited, so a
   thread's first event — first ever, or first after its own exit — is
   ordered after everything already folded into [finished].  The bump
   separates the new incarnation's epochs from the old one's. *)
let ensure_active t tid =
  let ts = t.threads.(tid) in
  if not ts.active then begin
    vc_join ts.vc t.finished;
    ts.vc.(tid) <- ts.vc.(tid) + 1;
    ts.active <- true
  end

let clear_range t addr words =
  for a = addr to addr + words - 1 do
    Hashtbl.remove t.addrs a;
    Hashtbl.remove t.sync_words a
  done

let hook t (ev : Sev.event) =
  t.events <- t.events + 1;
  t.last_clock <- ev.Sev.clock;
  let tid = ev.Sev.tid and clock = ev.Sev.clock in
  ensure_active t tid;
  let ts = t.threads.(tid) in
  match ev.Sev.body with
  | Sev.Plain_read { addr; kind } -> plain_read t tid clock addr kind
  | Sev.Plain_write { addr; kind } -> plain_write t tid clock addr kind
  | Sev.Txn_line_read line -> txn_line t tid ~wrote:false ts.rlines line
  | Sev.Txn_line_write line -> txn_line t tid ~wrote:true ts.wlines line
  | Sev.Txn_begin ->
      if ts.in_txn then
        report t ~kind:Txn_unbalanced
          ~subject:(Printf.sprintf "tid %d" tid)
          ~tid ~clock
          ~detail:(Printf.sprintf "t%d began a transaction inside one" tid);
      ts.in_txn <- true
  | Sev.Txn_commit ->
      if not ts.in_txn then
        report t ~kind:Txn_unbalanced
          ~subject:(Printf.sprintf "tid %d" tid)
          ~tid ~clock
          ~detail:(Printf.sprintf "t%d committed with no open transaction" tid);
      Hashtbl.iter
        (fun line () ->
          let lvc =
            match Hashtbl.find_opt t.lines line with
            | Some lvc -> lvc
            | None ->
                let lvc = vc_fresh () in
                Hashtbl.replace t.lines line lvc;
                lvc
          in
          vc_join lvc ts.vc)
        ts.wlines;
      txn_clear t tid;
      ts.vc.(tid) <- ts.vc.(tid) + 1
  | Sev.Txn_aborted ->
      txn_clear t tid;
      (* The abort unwinds to the enclosing attempt, abandoning any
         optimistic section opened inside the transaction. *)
      ts.opt_depth <- 0;
      if ts.attempt_depth = 0 then
        report t ~kind:Escaped_abort
          ~subject:(Printf.sprintf "tid %d" tid)
          ~tid ~clock
          ~detail:
            (Printf.sprintf "t%d received an abort outside Htm.attempt" tid)
  | Sev.Unsafe_read addr -> unsafe_access t tid clock addr "read" ~is_write:false
  | Sev.Unsafe_write addr -> unsafe_access t tid clock addr "write" ~is_write:true
  | Sev.Alloc_done { addr; words } -> clear_range t addr words
  | Sev.Free_done { addr; words } -> clear_range t addr words
  | Sev.Op_exit ->
      leak_check t tid clock "operation exit" ts;
      ts.opt_depth <- 0
  | Sev.Thread_exit { failed = _; aborted } ->
      if aborted then
        report t ~kind:Escaped_abort
          ~subject:(Printf.sprintf "tid %d" tid)
          ~tid ~clock
          ~detail:
            (Printf.sprintf "t%d died with an uncaught Txn_abort" tid);
      if ts.in_txn then
        report t ~kind:Txn_unbalanced
          ~subject:(Printf.sprintf "tid %d" tid)
          ~tid ~clock
          ~detail:
            (Printf.sprintf "t%d exited with a transaction still open" tid);
      leak_check t tid clock "thread exit" ts;
      txn_clear t tid;
      ts.held <- [];
      ts.opt_depth <- 0;
      ts.attempt_depth <- 0;
      vc_join t.finished ts.vc;
      ts.active <- false
  | Sev.Note note -> (
      match note with
      | Sev.Acquire (k, id) -> acquire t tid (k, id)
      | Sev.Release (k, id) -> release t tid clock (k, id)
      | Sev.Publish (k, id) -> publish t tid (k, id)
      | Sev.Barrier_arrive id ->
          let bvc =
            match Hashtbl.find_opt t.barriers id with
            | Some bvc -> bvc
            | None ->
                let bvc = vc_fresh () in
                Hashtbl.replace t.barriers id bvc;
                bvc
          in
          vc_join bvc ts.vc;
          ts.vc.(tid) <- ts.vc.(tid) + 1
      | Sev.Barrier_depart id -> (
          match Hashtbl.find_opt t.barriers id with
          | Some bvc -> vc_join ts.vc bvc
          | None -> ())
      | Sev.Attempt_enter -> ts.attempt_depth <- ts.attempt_depth + 1
      | Sev.Attempt_exit ->
          if ts.attempt_depth > 0 then ts.attempt_depth <- ts.attempt_depth - 1
      | Sev.Opt_enter -> ts.opt_depth <- ts.opt_depth + 1
      | Sev.Opt_exit ->
          if ts.opt_depth > 0 then ts.opt_depth <- ts.opt_depth - 1)

(* ---------- lock-order cycles ---------- *)

(* DFS over the observed acquired-while-holding digraph.  A cycle means
   two threads can close a deadlock; clean protocols (Eunomia's
   slot -> split -> fallback order, Masstree's strictly bottom-up
   coupling) keep this graph acyclic. *)
let find_cycle t =
  let color = Hashtbl.create 64 in
  (* 1 = on the current DFS stack, 2 = finished *)
  let cycle = ref None in
  let rec dfs path node =
    match Hashtbl.find_opt color node with
    | Some 2 -> ()
    | Some 1 ->
        if !cycle = None then begin
          let rec cut acc = function
            | [] -> acc
            | x :: _ when x = node -> x :: acc
            | x :: rest -> cut (x :: acc) rest
          in
          cycle := Some (cut [] path)
        end
    | _ ->
        Hashtbl.replace color node 1;
        (match Hashtbl.find_opt t.adj node with
        | Some succs ->
            List.iter (fun s -> if !cycle = None then dfs (node :: path) s) !succs
        | None -> ());
        Hashtbl.replace color node 2
  in
  Hashtbl.iter (fun node _ -> if !cycle = None then dfs [] node) t.adj;
  !cycle

let finish t =
  (match find_cycle t with
  | None -> ()
  | Some cycle ->
      let names = List.map lock_subject cycle in
      report t ~kind:Lock_cycle
        ~subject:(String.concat " -> " (List.sort compare names))
        ~tid:(-1) ~clock:t.last_clock
        ~detail:
          ("lock-order cycle: " ^ String.concat " -> " names ^ " -> ..."));
  { events = t.events; findings = List.rev t.findings_rev; total = t.total }
