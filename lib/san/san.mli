(** EunoSan: deterministic race / lock-discipline / atomicity checking
    over the simulated machine's semantic-event stream.

    A checker consumes {!Euno_sim.Sev.event}s (install {!hook} with
    {!Euno_sim.Machine.set_san_hook}) and runs four analyses:

    - a FastTrack-style vector-clock data-race detector over plain
      (non-transactional) accesses, with happens-before edges from lock
      release→acquire, barrier episodes, transaction commits and
      sequential thread incarnations;
    - an Eraser-style lock-discipline checker: locks still held when an
      operation or thread finishes, releases by non-owners, and
      lock-order cycles;
    - a strong-atomicity / transaction-hygiene checker: untracked
      accesses overlapping another thread's live transaction footprint,
      and unbalanced xbegin/xend;
    - an escaped-abort detector: [Txn_abort] deliveries outside
      [Htm.attempt] and threads dying with an uncaught abort.

    {b Determinism:} the event stream is emitted in execution order by a
    deterministic machine, and the checker is pure state over that
    stream, so findings are bit-for-bit reproducible for a fixed seed.

    Known limits (see [docs/SANITIZER.md]): happens-before from aborted
    transactions is dropped (sound, loses detection power), line vector
    clocks survive address reuse (same direction), and barrier episodes
    reuse one vector clock (late departers may over-synchronize). *)

(** Diagnostic classes. *)
type kind =
  | Race  (** conflicting plain accesses with no happens-before edge *)
  | Lock_leak  (** lock still held at operation or thread exit *)
  | Bad_release  (** release of a lock the thread does not hold *)
  | Lock_cycle  (** cycle in the observed lock-acquisition order *)
  | Atomicity
      (** untracked access overlapping a live transaction's footprint *)
  | Txn_unbalanced  (** xbegin without commit/abort (or vice versa) *)
  | Escaped_abort  (** abort delivered or propagated outside Htm.attempt *)

val kind_name : kind -> string

type finding = {
  f_kind : kind;
  f_subject : string;  (** dedup key within the kind: what is implicated *)
  f_tid : int;  (** thread observing the defect *)
  f_clock : int;  (** simulated cycle of the observation *)
  f_detail : string;  (** human-readable one-liner *)
}

type summary = {
  events : int;  (** events consumed *)
  findings : finding list;  (** deduplicated, capped, in discovery order *)
  total : int;  (** deduplicated findings before the cap *)
}

type t

val create : ?max_findings:int -> unit -> t
(** Fresh checker.  [max_findings] caps the retained list (default 200);
    deduplicated findings past the cap are still counted in [total]. *)

val hook : t -> Euno_sim.Sev.event -> unit
(** Feed one event; pass [hook t] to {!Euno_sim.Machine.set_san_hook}. *)

val finish : t -> summary
(** Run end-of-stream analyses (lock-order cycles) and summarize.  The
    checker may keep consuming events afterwards, but findings already
    reported are not re-reported. *)
