(** Domain-parallel campaign cell executor.

    Fans a list of independent, per-(config, seed) deterministic
    campaign cells out across OCaml 5 domains and merges the results in
    canonical index order, so every report and JSON document is
    byte-identical to the sequential run regardless of domain count or
    completion order.  See ARCHITECTURE.md §"Parallel campaign
    execution" for the design and the domain-safety rules cells must
    obey (own your world; no process-global mutable state — the
    [domain-shared-state] lint enforces the latter).

    {b Complexity:} [map] spawns [min domains n] worker domains once per
    call; workers claim cells from one atomic counter (O(1) per cell,
    dynamic load balancing for uneven cell costs).

    {b Determinism:} results are deposited into an index-addressed slot
    array and merged in index order; telemetry a cell delivers through
    the domain-local {!Runner.on_result} observer is captured per cell
    and replayed into the main domain's observer in cell order after the
    join.  The sequential path ([domains <= 1], the default) is a plain
    [List.map] — no spawn, no capture, no replay. *)

val default_domains : unit -> int
(** Domain count from the [EUNO_DOMAINS] environment variable (the CI
    knob), else 1.  An explicit [--domains] flag should win over this —
    the CLIs pass their flag value straight to [map] and default the
    flag to this.  Raises [Invalid_argument] if the variable is set to
    anything but a positive integer. *)

val merge : (int * 'a) list -> 'a list
(** The canonical merge: sort by cell index, drop the indices.  A pure
    function of the result set — any permutation of the input yields the
    same output (the QCheck property in [test_pool.ml]). *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f cells] = [List.map f cells], computed by [domains]
    worker domains when [domains > 1].  Cells must be independent: each
    builds its own simulator world and touches no cross-domain mutable
    state.  If a cell raises, the lowest-indexed failing cell's
    exception is re-raised after all workers join — the same failure a
    sequential run would surface.  [domains] defaults to
    {!default_domains}[ ()]. *)

(** Completion-order adversary for the differential determinism suite:
    an installed hook runs on the claiming worker with the cell index
    before the cell executes (e.g. a pseudo-random sleep, shuffling
    completion order).  Write only while no worker domain is running. *)
module Testonly : sig
  val cell_delay : (int -> unit) option ref
end
