(* Chaos harness: run a tree under a deterministic fault-injection
   campaign and measure how gracefully it degrades.

   Unlike Runner (which measures steady-state figures), a chaos run keeps
   a host-side model of the map contents and checks every operation's
   result against it online, quiesces the machine at fixed checkpoints to
   run the tree's structural validator plus model-agreement spot checks,
   and splits throughput into before / under / after-fault phases to
   report a recovery time.

   Correct-by-construction model checking under concurrency: the key
   space is interleave-partitioned (thread t only touches keys = t mod
   threads), so each key has a single writer and the host model — updated
   in host code, which is atomic w.r.t. other simulated threads — is an
   exact oracle, while physically adjacent keys keep cross-thread false
   sharing (and hence the fault-sensitive abort traffic) alive. *)

module Plan = Euno_fault.Plan
module Machine = Euno_sim.Machine
module Cost = Euno_sim.Cost
module Api = Euno_sim.Api
module Abort = Euno_sim.Abort
module Rng = Euno_sim.Rng
module Memory = Euno_mem.Memory
module Linemap = Euno_mem.Linemap
module Alloc = Euno_mem.Alloc
module Barrier = Euno_sync.Barrier
module Htm = Euno_htm.Htm
module Json = Euno_stats.Json

type config = {
  threads : int;
  ops_per_thread : int;
  seed : int;
  key_space : int;
  fanout : int;
  cost : Cost.t;
  policy : Htm.policy option; (* None: each tree's own default *)
  checkpoints : int; (* quiesce-and-validate points during the run *)
  windows : int; (* sampling windows across the calibrated horizon *)
}

let default_config =
  {
    threads = 8;
    ops_per_thread = 1200;
    seed = 42;
    key_space = 1 lsl 12;
    fanout = 16;
    cost = Cost.default;
    policy = Some Htm.polite_policy;
    checkpoints = 4;
    windows = 40;
  }

let quick_config =
  {
    default_config with
    threads = 6;
    ops_per_thread = 400;
    key_space = 1 lsl 10;
    checkpoints = 3;
    windows = 24;
  }

(* Model-agreement spot checks per checkpoint (random keys across all
   partitions, swept by thread 0 while everyone else is quiesced). *)
let spot_checks = 128

(* Per-operation client-side cost, as in Runner. *)
let client_work = 25

(* Raw counters of one machine run (fault-free calibration or chaos). *)
type raw = {
  raw_name : string;
  raw_ops : int;
  raw_failed_ops : int;
  raw_violations : int;
  raw_mismatches : int;
  raw_checkpoints : int;
  raw_cycles : int;
  raw_work_cycles : int;
    (* clock when the last thread finished its operation loop — excludes
       the final quiesce/validate drain, during which only thread 0 runs.
       Fault windows and phase throughputs are scaled against this, not
       raw_cycles, or the drain would push the campaign past the real
       work and swallow the clean tail. *)
  raw_agg : Machine.snapshot;
  raw_samples : (int * Machine.snapshot) list;
}

let run_plan ?(plan = []) ?sampling kind cfg =
  if cfg.threads < 1 then invalid_arg "Chaos.run_plan: threads < 1";
  if cfg.key_space < cfg.threads then
    invalid_arg "Chaos.run_plan: key_space < threads";
  let mem = Memory.create () in
  let map = Linemap.create () in
  let alloc = Alloc.create mem map in
  (* Preload every even key so deletes hit existing records from op one
     and the measurement phase's inserts land between existing leaves. *)
  let records =
    List.filter_map
      (fun k -> if k land 1 = 0 then Some (k, k) else None)
      (List.init cfg.key_space (fun k -> k))
  in
  let kv, bar =
    Machine.run_single ~seed:cfg.seed ~cost:Cost.unit_costs ~mem ~map ~alloc
      (fun () ->
        let kv =
          Kv.build ?policy:cfg.policy ~records kind ~fanout:cfg.fanout ~map
        in
        (* The checkpoint barrier lives in the same simulated world and
           survives into the measurement machine. *)
        (kv, Barrier.create ~parties:cfg.threads))
  in
  let model : (int, int) Hashtbl.t = Hashtbl.create (cfg.key_space * 2) in
  List.iter (fun (k, v) -> Hashtbl.replace model k v) records;
  let m =
    Machine.create ~threads:cfg.threads ~seed:cfg.seed ~cost:cfg.cost ~mem ~map
      ~alloc
  in
  if plan <> [] then Machine.set_injector m (Plan.to_injector plan);
  (match sampling with
  | Some window -> Machine.set_sampling m ~window:(max 1 window)
  | None -> ());
  let failed = ref 0 in
  let violations = ref 0 in
  let mismatches = ref 0 in
  let n_checkpoints = ref 0 in
  let sweep_rng = Rng.create ((cfg.seed * 31337) lxor 0x5eed) in
  (* Quiesce: everyone rendezvous, thread 0 validates the frozen tree
     against its invariants and against the model, rendezvous again. *)
  let checkpoint () =
    Barrier.wait bar;
    if Api.tid () = 0 then begin
      incr n_checkpoints;
      (try kv.Kv.check ()
       with
      | Htm.Stuck_fallback _ | Alloc.Alloc_failure -> incr failed
      | _ -> incr violations);
      for _ = 1 to spot_checks do
        let key = Rng.int sweep_rng cfg.key_space in
        match kv.Kv.get key with
        | got -> if got <> Hashtbl.find_opt model key then incr mismatches
        | exception (Htm.Stuck_fallback _ | Alloc.Alloc_failure) -> incr failed
      done
    end;
    Barrier.wait bar
  in
  let cp_every =
    max 1 (cfg.ops_per_thread / max 1 cfg.checkpoints)
  in
  let work_done = ref 0 in
  Machine.run m (fun tid ->
      let rng = Rng.create ((cfg.seed * 104729) + (tid * 7919) + 13) in
      let ranks = cfg.key_space / cfg.threads in
      let key_of rank = (rank * cfg.threads) + tid in
      for i = 1 to cfg.ops_per_thread do
        Api.work client_work;
        let key = key_of (Rng.int rng ranks) in
        let r = Rng.int rng 100 in
        (try
           if r < 40 then begin
             let got = kv.Kv.get key in
             if got <> Hashtbl.find_opt model key then incr mismatches
           end
           else if r < 75 then begin
             let v = (i * cfg.threads) + tid in
             kv.Kv.put key v;
             Hashtbl.replace model key v
           end
           else if r < 90 then begin
             let was = kv.Kv.delete key in
             if was <> Hashtbl.mem model key then incr mismatches;
             Hashtbl.remove model key
           end
           else begin
             (* read-modify-write through the tree *)
             let prev = kv.Kv.get key in
             if prev <> Hashtbl.find_opt model key then incr mismatches;
             let v = Option.value ~default:0 prev + 1 in
             kv.Kv.put key v;
             Hashtbl.replace model key v
           end
         with
        | Htm.Stuck_fallback _ | Alloc.Alloc_failure ->
            (* graceful failure: the operation reports defeat but the
               structure is untouched, so the model stays in agreement *)
            incr failed);
        Api.op_done ();
        if i mod cp_every = 0 && i < cfg.ops_per_thread then checkpoint ()
      done;
      work_done := max !work_done (Api.clock ());
      checkpoint ());
  {
    raw_name = kv.Kv.name;
    raw_ops = (Machine.aggregate m).Machine.s_ops;
    raw_failed_ops = !failed;
    raw_violations = !violations;
    raw_mismatches = !mismatches;
    raw_checkpoints = !n_checkpoints;
    raw_cycles = Machine.elapsed m;
    raw_work_cycles = !work_done;
    raw_agg = Machine.aggregate m;
    raw_samples = Machine.samples m;
  }

(* ---------- phase split and recovery time ---------- *)

(* Attribute each sampling window of the chaos run to before / under /
   after the plan's fault span (a window overlapping the span counts as
   under-fault), and find the first post-fault window whose op rate is
   back to at least half the clean-phase mean: its end is the recovery
   point.  When no such window exists the verdict is explicit —
   [Unrecovered observed] with the observation horizon saturated to the
   post-fault tail we actually watched — rather than a sentinel that
   downstream arithmetic could silently average. *)
type recovery_verdict =
  | Recovered of int (* cycles after the last fault until rate restored *)
  | Unrecovered of int (* post-fault cycles observed without recovery *)

type phases = {
  ph_clean : int * int; (* ops, cycles *)
  ph_fault : int * int;
  ph_after : int * int;
  ph_recovery : recovery_verdict;
}

let split_phases ~span ~work_end ~samples =
  (* Windows past [work_end] are the single-threaded validation drain:
     near-zero op rate by construction, so attributing them to the after-
     fault phase would fake a throughput collapse that never happened. *)
  let ws =
    List.filter
      (fun w -> w.Report.w_start < work_end)
      (Report.windows_of_snapshots samples)
  in
  let add (ops, cyc) w =
    (ops + w.Report.w_ops, cyc + (w.Report.w_end - w.Report.w_start))
  in
  match span with
  | None ->
      let all = List.fold_left add (0, 0) ws in
      { ph_clean = all; ph_fault = (0, 0); ph_after = (0, 0);
        ph_recovery = Recovered 0 }
  | Some (f0, f1) ->
      let clean, fault, after =
        List.fold_left
          (fun (c, f, a) w ->
            if w.Report.w_end <= f0 then (add c w, f, a)
            else if w.Report.w_start >= f1 then (c, f, add a w)
            else (c, add f w, a))
          ((0, 0), (0, 0), (0, 0))
          ws
      in
      let rate (ops, cyc) =
        if cyc <= 0 then 0.0 else float_of_int ops /. float_of_int cyc
      in
      let clean_rate = rate clean in
      let recovered =
        List.find_opt
          (fun w ->
            w.Report.w_start >= f1
            && rate (w.Report.w_ops, w.Report.w_end - w.Report.w_start)
               >= 0.5 *. clean_rate)
          ws
      in
      {
        ph_clean = clean;
        ph_fault = fault;
        ph_after = after;
        ph_recovery =
          (match recovered with
          | Some w -> Recovered (w.Report.w_end - f1)
          | None -> Unrecovered (max 0 (work_end - f1)));
      }

(* ---------- the campaign ---------- *)

type outcome = {
  o_name : string;
  o_threads : int;
  o_seed : int;
  o_horizon : int; (* fault-free calibrated run length, cycles *)
  o_plan : Plan.t;
  o_ops : int;
  o_failed_ops : int;
  o_cycles : int;
  o_mops : float;
  o_mops_clean : float;
  o_mops_fault : float;
  o_mops_after : float;
  o_recovery : recovery_verdict;
  o_invariant_violations : int;
  o_model_mismatches : int;
  o_checkpoints : int;
  o_fallbacks : int;
  o_watchdog_trips : int;
  o_starvation_backoffs : int;
  o_convoy_events : int;
  o_aborts : int array;
  o_snapshots : (int * Machine.snapshot) list;
}

let run_campaign kind cfg =
  (* Calibrate the fault-free horizon first, on an identical world, so
     the campaign's windows land over the middle of the run and a clean
     tail remains to measure recovery against. *)
  let calib = run_plan kind cfg in
  let horizon = calib.raw_work_cycles in
  let plan = Plan.campaign ~threads:cfg.threads ~horizon in
  let raw =
    run_plan ~plan ~sampling:(horizon / max 1 cfg.windows) kind cfg
  in
  let ph =
    split_phases ~span:(Plan.span plan) ~work_end:raw.raw_work_cycles
      ~samples:raw.raw_samples
  in
  let mops (ops, cycles) =
    if cycles <= 0 then 0.0 else Cost.mops cfg.cost ~ops ~cycles
  in
  let user i = raw.raw_agg.Machine.s_user.(i) in
  {
    o_name = raw.raw_name;
    o_threads = cfg.threads;
    o_seed = cfg.seed;
    o_horizon = horizon;
    o_plan = plan;
    o_ops = raw.raw_ops;
    o_failed_ops = raw.raw_failed_ops;
    o_cycles = raw.raw_cycles;
    o_mops = mops (raw.raw_ops, raw.raw_cycles);
    o_mops_clean = mops ph.ph_clean;
    o_mops_fault = mops ph.ph_fault;
    o_mops_after = mops ph.ph_after;
    o_recovery = ph.ph_recovery;
    o_invariant_violations = raw.raw_violations;
    o_model_mismatches = raw.raw_mismatches;
    o_checkpoints = raw.raw_checkpoints;
    o_fallbacks = user Htm.Counter.fallbacks;
    o_watchdog_trips = user Htm.Counter.watchdog_trips;
    o_starvation_backoffs = user Htm.Counter.starvation_backoffs;
    o_convoy_events = user Htm.Counter.convoy_events;
    o_aborts = raw.raw_agg.Machine.s_aborts;
    o_snapshots = raw.raw_samples;
  }

(* One pool cell per tree: calibration and the chaos run both live in
   the cell, so cells stay independent and the merge keeps Kv.all_kinds
   order. *)
let run_all ?domains cfg =
  Pool.map ?domains (fun kind -> run_campaign kind cfg) Kv.all_kinds

(* ---------- reporting ---------- *)

let outcome_to_json ?experiment o =
  Json.Obj
    ([
       ("schema_version", Json.Int Report.schema_version);
       ("record", Json.Str "chaos");
     ]
    @ (match experiment with
      | Some e -> [ ("experiment", Json.Str e) ]
      | None -> [])
    @ [
        ("tree", Json.Str o.o_name);
        ("threads", Json.Int o.o_threads);
        ("seed", Json.Int o.o_seed);
        ("horizon_cycles", Json.Int o.o_horizon);
        ("plan", Plan.to_json o.o_plan);
        ("ops", Json.Int o.o_ops);
        ("failed_ops", Json.Int o.o_failed_ops);
        ("cycles", Json.Int o.o_cycles);
        ("mops", Json.Float o.o_mops);
        ("mops_clean", Json.Float o.o_mops_clean);
        ("mops_fault", Json.Float o.o_mops_fault);
        ("mops_after", Json.Float o.o_mops_after);
        (* recovery_cycles stays an int in both verdicts: for Unrecovered
           it is the saturated observation horizon, and [recovered] says
           which reading applies. *)
        ( "recovery_cycles",
          Json.Int
            (match o.o_recovery with Recovered c | Unrecovered c -> c) );
        ( "recovered",
          Json.Bool (match o.o_recovery with Recovered _ -> true
                                           | Unrecovered _ -> false) );
        ("invariant_violations", Json.Int o.o_invariant_violations);
        ("model_mismatches", Json.Int o.o_model_mismatches);
        ("checkpoints", Json.Int o.o_checkpoints);
        ( "aborts",
          Json.Obj
            (List.init (Array.length o.o_aborts) (fun i ->
                 (Abort.class_name i, Json.Int o.o_aborts.(i)))) );
        ( "degradation",
          Json.Obj
            [
              ("fallbacks", Json.Int o.o_fallbacks);
              ("watchdog_trips", Json.Int o.o_watchdog_trips);
              ("starvation_backoffs", Json.Int o.o_starvation_backoffs);
              ("convoy_events", Json.Int o.o_convoy_events);
            ] );
        ( "snapshots",
          Json.List
            (List.map Report.window_to_json
               (Report.windows_of_snapshots o.o_snapshots)) );
      ])

let print_outcomes outs =
  Printf.printf
    "%-14s %8s %6s %8s %8s %8s %9s %5s %5s %5s %5s %5s\n"
    "tree" "ops" "fail" "clean" "fault" "after" "recovery" "inv" "mism"
    "wdog" "starv" "conv";
  List.iter
    (fun o ->
      Printf.printf
        "%-14s %8d %6d %8.3f %8.3f %8.3f %9s %5d %5d %5d %5d %5d\n" o.o_name
        o.o_ops o.o_failed_ops o.o_mops_clean o.o_mops_fault o.o_mops_after
        (match o.o_recovery with
        | Recovered c -> string_of_int c
        | Unrecovered _ -> "never")
        o.o_invariant_violations o.o_model_mismatches o.o_watchdog_trips
        o.o_starvation_backoffs o.o_convoy_events)
    outs;
  print_newline ()
