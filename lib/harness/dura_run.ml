(* EunoDura driver: crash-recovery campaigns over the tree variants.

   One cell = two phases on one simulated world.

   Phase A (the doomed run) mirrors the Chaos workload — partitioned
   single-writer-per-key random ops with a host-side committed shadow as
   oracle — and adds the durability pipeline: a driver-owned epoch whose
   quiescent advances trigger snapshot capture (Dura), and a committed-op
   log (Oplog) appended at each acknowledgement with group-flush
   batching.  A Crash injection in the plan arms [Machine.set_crash]; the
   power failure kills every thread at once, abandoning held locks and
   in-flight work in simulated memory.

   Phase B (recovery) runs a fresh single-thread machine over the same
   world: sweep abandoned Lock lines, restore the latest snapshot
   (rebuild from the image, or reconcile the surviving tree in place),
   replay the durable log suffix past the snapshot, re-run the lost
   (unflushed) suffix — the ops the workload generator re-issues — then
   validate the tree and hand the final image to the recovery checker.

   Snapshot consistency: a snapshot may only be captured at *sustained*
   quiescence — the checkpoint rendezvous, where every other thread is
   parked at a barrier for the whole scan.  A momentary pinned <= 1 at an
   opportunistic advance is NOT enough: an op starting mid-scan could be
   captured before its acknowledgement is logged, and a crash in that gap
   turns the captured effect into a phantom.  The
   [Dura.Testonly.snapshot_while_pinned] mutant seeds exactly that bug.

   Ack latency: a mutation becomes visible in the tree strictly before
   the client acknowledgement (shadow update + log append), separated by
   [ack_delay] simulated cycles of commit-to-ack latency.  A crash inside
   that window loses an unacknowledged op whose effect is already in tree
   state — which is why recovery restores from a snapshot instead of
   trusting the surviving tree. *)

module Plan = Euno_fault.Plan
module Machine = Euno_sim.Machine
module Cost = Euno_sim.Cost
module Api = Euno_sim.Api
module Rng = Euno_sim.Rng
module Memory = Euno_mem.Memory
module Linemap = Euno_mem.Linemap
module Alloc = Euno_mem.Alloc
module Epoch = Euno_mem.Epoch
module Barrier = Euno_sync.Barrier
module Htm = Euno_htm.Htm
module Json = Euno_stats.Json
module Oplog = Euno_dura.Oplog
module Dura = Euno_dura.Dura
module Checker = Euno_dura.Checker

type restore_mode = Rebuild | In_place

let restore_mode_name = function
  | Rebuild -> "rebuild"
  | In_place -> "in-place"

type config = {
  threads : int;
  ops_per_thread : int;
  seed : int;
  key_space : int;
  fanout : int;
  cost : Cost.t;
  policy : Htm.policy option; (* None: each tree's own default *)
  checkpoints : int; (* quiescent rendezvous = snapshot opportunities *)
  advance_every : int; (* driver epoch's opportunistic-advance period *)
  snapshot_min_cycles : int; (* cadence: min cycles between snapshots *)
  group_size : int; (* log entries per group flush *)
  fsync_horizon : int; (* max cycles an acked entry may stay volatile *)
  ack_delay : int; (* commit-to-acknowledgement latency, cycles *)
  crash_frac : float; (* crash point as a fraction of the horizon *)
  restore_mode : restore_mode;
}

let default_config =
  {
    threads = 8;
    ops_per_thread = 1200;
    seed = 42;
    key_space = 1 lsl 12;
    fanout = 16;
    cost = Cost.default;
    policy = Some Htm.polite_policy;
    checkpoints = 4;
    advance_every = 64;
    snapshot_min_cycles = 5_000;
    group_size = 16;
    fsync_horizon = 50_000;
    ack_delay = 40;
    crash_frac = 0.6;
    restore_mode = Rebuild;
  }

let quick_config =
  {
    default_config with
    threads = 6;
    ops_per_thread = 400;
    key_space = 1 lsl 10;
    checkpoints = 3;
    group_size = 8;
    fsync_horizon = 20_000;
  }

(* Per-operation client-side cost, as in Chaos. *)
let client_work = 25

(* Simulated durability costs, charged through [Api.work] so the tax is
   visible in cycle accounting. *)
let append_cost = 4
let flush_cost_base = 120
let flush_cost_per_entry = 3
let snap_cost_base = 400
let snap_cost_per_entry = 2

(* Linear recovery-work allowance: a base grant plus a per-record term
   for restore/validate/final-scan and a per-replayed-op term, plus the
   lock sweep.  Anything past this is an [Unbounded_recovery] finding —
   recovery must scale with state size and lost work, never with
   pre-crash history. *)
let rb_base = 60_000
let rb_per_record = 900
let rb_per_line = 120

let work_bound ~image ~replayed ~rerun ~swept =
  rb_base + (rb_per_record * (image + replayed + rerun)) + (rb_per_line * swept)

type cell = {
  d_name : string;
  d_threads : int;
  d_seed : int;
  d_horizon : int; (* fault-free calibrated run length, cycles *)
  d_plan : Plan.t;
  d_crashed : bool;
  d_crash_cycle : int; (* = run end when no crash fired *)
  d_restore : restore_mode;
  d_ops : int;
  d_failed_ops : int;
  d_snapshots_taken : int;
  d_snapshot_lsn : int; (* lsn of the snapshot recovery restored *)
  d_log_len : int; (* acked mutations at the crash *)
  d_flushed_lsn : int;
  d_lost : int; (* unflushed suffix lost to the crash *)
  d_replayed : int; (* durable entries reapplied past the snapshot *)
  d_rerun : int; (* lost entries re-issued by the generator *)
  d_swept_locks : int; (* Lock lines zeroed on restart *)
  d_stuck_ops : int; (* recovery ops wedged or validator failures *)
  d_recovery_cycles : int;
  d_work_bound : int;
  d_findings : Checker.finding list;
}

let run_cell ?(plan = []) ?horizon kind cfg =
  if cfg.threads < 1 then invalid_arg "Dura_run.run_cell: threads < 1";
  if cfg.key_space < cfg.threads then
    invalid_arg "Dura_run.run_cell: key_space < threads";
  let mem = Memory.create () in
  let map = Linemap.create () in
  let alloc = Alloc.create mem map in
  (* Preload every even key, as in Chaos. *)
  let records =
    List.filter_map
      (fun k -> if k land 1 = 0 then Some (k, k) else None)
      (List.init cfg.key_space (fun k -> k))
  in
  let kv, bar =
    Machine.run_single ~seed:cfg.seed ~cost:Cost.unit_costs ~mem ~map ~alloc
      (fun () ->
        let kv =
          Kv.build ?policy:cfg.policy ~records kind ~fanout:cfg.fanout ~map
        in
        (kv, Barrier.create ~parties:cfg.threads))
  in
  (* Committed shadow: the acked prefix the recovered tree must equal.
     [acked] additionally remembers every (key, value) binding any ack
     (or the preload) ever established, for phantom classification. *)
  let shadow : (int, int) Hashtbl.t = Hashtbl.create (cfg.key_space * 2) in
  let acked : (int * int, unit) Hashtbl.t =
    Hashtbl.create (cfg.key_space * 2)
  in
  List.iter
    (fun (k, v) ->
      Hashtbl.replace shadow k v;
      Hashtbl.replace acked (k, v) ())
    records;
  let epoch =
    Epoch.create ~slots:cfg.threads ~advance_every:cfg.advance_every ()
  in
  let log =
    Oplog.create ~group_size:cfg.group_size ~fsync_horizon:cfg.fsync_horizon ()
  in
  let store =
    Dura.store_create
      ~initial:
        {
          Dura.snap_epoch = Epoch.global_epoch epoch;
          snap_lsn = 0;
          snap_clock = 0;
          snap_image = Array.of_list records;
        }
  in
  let m =
    Machine.create ~threads:cfg.threads ~seed:cfg.seed ~cost:cfg.cost ~mem ~map
      ~alloc
  in
  if plan <> [] then Machine.set_injector m (Plan.to_injector plan);
  (match Plan.crash_point plan with
  | Some c -> Machine.set_crash m ~at_cycle:c
  | None -> ());
  let failed = ref 0 in
  let in_quiesce = ref false in
  let last_snap = ref 0 in
  Epoch.set_advance_hook epoch
    (Some
       (fun ~epoch:e ~pinned ->
         (* Sustained quiescence (checkpoint) only — see the header note.
            The mutant ref bypasses the gate to seed torn snapshots. *)
         let safe = pinned <= 1 && !in_quiesce in
         if
           (safe || Euno_sim.Domain_ref.get Dura.Testonly.snapshot_while_pinned)
           && Api.clock () - !last_snap >= cfg.snapshot_min_cycles
         then
           (* lsn before the scan: an op acked mid-scan (possible only on
              the torn path) then replays on recovery instead of silently
              aging the image *)
           let lsn = Oplog.length log in
           match kv.Kv.snapshot () with
           | image ->
               Api.work
                 (snap_cost_base + (snap_cost_per_entry * List.length image));
               last_snap := Api.clock ();
               Dura.record store
                 {
                   Dura.snap_epoch = e;
                   snap_lsn = lsn;
                   snap_clock = !last_snap;
                   snap_image = Array.of_list image;
                 }
           | exception (Htm.Stuck_fallback _ | Alloc.Alloc_failure) ->
               (* capture failed; keep the previous snapshot *)
               incr failed));
  let checkpoint () =
    Barrier.wait bar;
    if Api.tid () = 0 then begin
      in_quiesce := true;
      Epoch.pin epoch 0;
      Epoch.advance epoch;
      Epoch.unpin epoch 0;
      in_quiesce := false
    end;
    Barrier.wait bar
  in
  let cp_every = max 1 (cfg.ops_per_thread / max 1 cfg.checkpoints) in
  let crashed_at = ref None in
  (try
     Machine.run m (fun tid ->
         let rng = Rng.create ((cfg.seed * 104729) + (tid * 7919) + 13) in
         let ranks = cfg.key_space / cfg.threads in
         let key_of rank = (rank * cfg.threads) + tid in
         (* Acknowledge one committed mutation: append to the log (with
            group-flush accounting) and update the shadow.  The fallback
            mutant drops the append — the client still gets its ack, so
            the orphan survives only in volatile tree state. *)
         let ack ~fb_before op =
           let fb_now =
             (Machine.snapshot_thread m tid).Machine.s_user.(Htm.Counter
                                                            .fallbacks)
           in
           let skip = Euno_sim.Domain_ref.get Dura.Testonly.skip_fallback_log && fb_now > fb_before in
           if not skip then begin
             Api.work append_cost;
             match Oplog.append log ~tid ~clock:(Api.clock ()) op with
             | `Buffered -> ()
             | `Flushed n ->
                 Api.work (flush_cost_base + (flush_cost_per_entry * n))
           end;
           match op with
           | Oplog.Put { key; value } ->
               Hashtbl.replace shadow key value;
               Hashtbl.replace acked (key, value) ()
           | Oplog.Delete { key } -> Hashtbl.remove shadow key
         in
         for i = 1 to cfg.ops_per_thread do
           Api.work client_work;
           let key = key_of (Rng.int rng ranks) in
           let r = Rng.int rng 100 in
           Epoch.pin epoch tid;
           let fb_before =
             (Machine.snapshot_thread m tid).Machine.s_user.(Htm.Counter
                                                            .fallbacks)
           in
           (try
              if r < 40 then ignore (kv.Kv.get key)
              else if r < 75 then begin
                let v = (i * cfg.threads) + tid in
                kv.Kv.put key v;
                Api.work cfg.ack_delay;
                ack ~fb_before (Oplog.Put { key; value = v })
              end
              else if r < 90 then begin
                ignore (kv.Kv.delete key);
                Api.work cfg.ack_delay;
                ack ~fb_before (Oplog.Delete { key })
              end
              else begin
                (* read-modify-write through the tree *)
                let v = Option.value ~default:0 (kv.Kv.get key) + 1 in
                kv.Kv.put key v;
                Api.work cfg.ack_delay;
                ack ~fb_before (Oplog.Put { key; value = v })
              end
            with Htm.Stuck_fallback _ | Alloc.Alloc_failure ->
              (* graceful failure: no ack, structure untouched *)
              incr failed);
           Epoch.unpin epoch tid;
           Api.op_done ();
           if i mod cp_every = 0 && i < cfg.ops_per_thread then checkpoint ()
         done;
         checkpoint ())
   with Machine.Crashed { at_cycle } -> crashed_at := Some at_cycle);
  Epoch.set_advance_hook epoch None;
  let crashed, crash_cycle =
    match !crashed_at with
    | Some c -> (true, c)
    | None -> (false, Machine.elapsed m)
  in
  (* A graceful shutdown fsyncs its tail; a power failure loses it. *)
  if not crashed then ignore (Oplog.flush log);
  let log_len = Oplog.length log in
  let flushed_lsn = Oplog.flushed_lsn log in
  let lost = Oplog.crash log in
  let snap = Dura.latest store in
  (* ---------- phase B: restart and recover ---------- *)
  Epoch.crash_reset epoch;
  let swept = ref 0 in
  let stuck = ref 0 in
  let replayed = ref 0 in
  let rerun = ref 0 in
  let recovered = ref [] in
  let rm =
    Machine.create ~threads:1 ~seed:(cfg.seed + 1) ~cost:cfg.cost ~mem ~map
      ~alloc
  in
  Machine.run rm (fun _tid ->
      (* 1. Sweep abandoned locks: the dead process's held advisory and
         fallback locks (and CCM reservations — same line kind) would
         wedge every recovery operation.  The mutant skips this. *)
      if not (Euno_sim.Domain_ref.get Dura.Testonly.skip_lock_reset) then
        Linemap.iter_lines map (fun line kind ->
            if kind = Linemap.Lock then begin
              incr swept;
              let base = Memory.addr_of_line line in
              for w = 0 to Memory.line_words - 1 do
                Api.untracked_write (base + w) 0
              done
            end);
      (* 2. Restore the latest snapshot. *)
      let rebuild () =
        Kv.build ?policy:cfg.policy
          ~records:(Array.to_list snap.Dura.snap_image)
          kind ~fanout:cfg.fanout ~map
      in
      let rkv =
        match cfg.restore_mode with
        | Rebuild -> rebuild ()
        | In_place -> (
            try
              kv.Kv.restore (Array.to_list snap.Dura.snap_image);
              kv
            with Htm.Stuck_fallback _ | Alloc.Alloc_failure ->
              (* in-place recovery wedged; salvage via rebuild so the
                 cell still yields a comparable end state — the checker
                 flags the wedge regardless *)
              incr stuck;
              rebuild ())
      in
      (* 3. Replay the durable suffix past the snapshot, then re-run the
         lost suffix in acknowledgement (= lsn) order. *)
      let apply (e : Oplog.entry) counter =
        if e.Oplog.lsn > snap.Dura.snap_lsn then
          try
            (match e.Oplog.op with
            | Oplog.Put { key; value } -> rkv.Kv.put key value
            | Oplog.Delete { key } -> ignore (rkv.Kv.delete key));
            incr counter
          with Htm.Stuck_fallback _ | Alloc.Alloc_failure -> incr stuck
      in
      List.iter (fun e -> apply e replayed) (Oplog.entries log);
      List.iter (fun e -> apply e rerun) lost;
      (* 4. Validate and capture the recovered image.  Any validator
         failure means recovery left the tree unusable. *)
      (try rkv.Kv.check () with _ -> incr stuck);
      match rkv.Kv.snapshot () with
      | image -> recovered := image
      | exception (Htm.Stuck_fallback _ | Alloc.Alloc_failure) -> incr stuck);
  let recovery_cycles = Machine.elapsed rm in
  let bound =
    work_bound
      ~image:(Array.length snap.Dura.snap_image)
      ~replayed:!replayed ~rerun:!rerun ~swept:!swept
  in
  let findings =
    Checker.check ~expected:shadow ~recovered:!recovered
      ~ever_acked:(fun k v -> Hashtbl.mem acked (k, v))
      ~stats:
        {
          Checker.stuck_ops = !stuck;
          recovery_cycles;
          work_bound = bound;
        }
  in
  {
    d_name = kv.Kv.name;
    d_threads = cfg.threads;
    d_seed = cfg.seed;
    d_horizon = (match horizon with Some h -> h | None -> crash_cycle);
    d_plan = plan;
    d_crashed = crashed;
    d_crash_cycle = crash_cycle;
    d_restore = cfg.restore_mode;
    d_ops = (Machine.aggregate m).Machine.s_ops;
    d_failed_ops = !failed;
    d_snapshots_taken = Dura.taken store;
    d_snapshot_lsn = snap.Dura.snap_lsn;
    d_log_len = log_len;
    d_flushed_lsn = flushed_lsn;
    d_lost = List.length lost;
    d_replayed = !replayed;
    d_rerun = !rerun;
    d_swept_locks = !swept;
    d_stuck_ops = !stuck;
    d_recovery_cycles = recovery_cycles;
    d_work_bound = bound;
    d_findings = findings;
  }

(* ---------- the campaign ---------- *)

let run_campaign kind cfg =
  (* Calibrate the fault-free horizon on an identical world, then crash
     at [crash_frac] of it. *)
  let calib = run_cell kind cfg in
  let horizon = calib.d_crash_cycle in
  let crash = int_of_float (cfg.crash_frac *. float_of_int horizon) in
  let plan = [ Plan.crash_at ~cycle:crash ] in
  run_cell ~plan ~horizon kind cfg

(* One pool cell per tree, calibration included — see Chaos.run_all. *)
let run_all ?domains cfg =
  Pool.map ?domains (fun kind -> run_campaign kind cfg) Kv.all_kinds

(* ---------- mutation validation ---------- *)

type mutant = Skip_fallback_log | Skip_lock_reset | Snapshot_while_pinned

let all_mutants = [ Skip_fallback_log; Skip_lock_reset; Snapshot_while_pinned ]

let mutant_name = function
  | Skip_fallback_log -> "skip-fallback-log"
  | Skip_lock_reset -> "skip-lock-reset"
  | Snapshot_while_pinned -> "snapshot-while-pinned"

let expected_kind = function
  | Skip_fallback_log -> Checker.Lost_ack
  | Skip_lock_reset -> Checker.Ineffective_recovery
  | Snapshot_while_pinned -> Checker.Phantom

let arm_mutant = function
  | Skip_fallback_log -> Euno_sim.Domain_ref.set Dura.Testonly.skip_fallback_log true
  | Skip_lock_reset -> Euno_sim.Domain_ref.set Dura.Testonly.skip_lock_reset true
  | Snapshot_while_pinned -> Euno_sim.Domain_ref.set Dura.Testonly.snapshot_while_pinned true

(* Directed cell per mutant: a config and plan shaped so the seeded bug
   has real opportunities to corrupt recovery.  All three run the
   conventional HTM-B+Tree under its default (DBX) policy — the variant
   with the busiest global fallback lock. *)
let mutant_setup mutant ~seed =
  let base =
    {
      quick_config with
      threads = 6;
      ops_per_thread = 300;
      key_space = 512;
      checkpoints = 2;
      seed;
      policy = None;
      snapshot_min_cycles = max_int;
    }
  in
  match mutant with
  | Skip_fallback_log ->
      (* A lock-holder stall mid-run herds ops onto the fallback path, so
         plenty of fallback commits go unlogged; crash after the storm,
         recover by rebuild + full replay — the orphans are simply
         missing. *)
      let plan h =
        Plan.lemming_storm
          ~from_cycle:(3 * h / 10)
          ~until_cycle:(h / 2)
          ~stall:2_000
        @ [ Plan.crash_at ~cycle:(11 * h / 20) ]
      in
      (base, plan)
  | Skip_lock_reset ->
      (* Crash inside a long stall window: the stalled holder dies
         sitting on the fallback lock (the stall is charged before its
         body writes, so the tree underneath is intact).  In-place
         recovery must sweep that lock or wedge. *)
      let base = { base with restore_mode = In_place } in
      let plan h =
        Plan.lemming_storm
          ~from_cycle:(2 * h / 5)
          ~until_cycle:(7 * h / 10)
          ~stall:(3 * h / 10)
        @ [ Plan.crash_at ~cycle:(h / 2) ]
      in
      (base, plan)
  | Snapshot_while_pinned ->
      (* Opportunistic advances on every pin + no cadence floor: with the
         quiescence gate ignored, snapshots scan while peers sit in their
         commit-to-ack window ([ack_delay] wide), capturing effects whose
         acks the crash then discards — phantoms. *)
      let base =
        {
          base with
          advance_every = 1;
          snapshot_min_cycles = 400;
          ack_delay = 250;
        }
      in
      let plan h = [ Plan.crash_at ~cycle:(3 * h / 5) ] in
      (base, plan)

type mutant_outcome = {
  m_mutant : mutant;
  m_caught_seed : int option; (* first seed the checker flagged it at *)
  m_seeds_tried : int;
  m_caught : bool; (* flagged with the expected finding kind *)
  m_clean_on_fixed : bool; (* same cell, mutant off: no findings *)
}

(* Seed-search validation: a crash must actually land where the seeded
   bug bites (a stall window, an ack gap), so each mutant gets up to
   [seeds] attempts; the checker must flag the first biting seed with the
   right kind, and the unmutated system must be clean on that exact
   cell. *)
let run_mutant ?(seeds = 40) ?(base_seed = 42) mutant =
  let kind = Kv.Htm_bptree in
  let cfg0, plan_of = mutant_setup mutant ~seed:base_seed in
  Dura.Testonly.reset ();
  let calib = run_cell kind cfg0 in
  let horizon = calib.d_crash_cycle in
  let plan = plan_of horizon in
  let expected = expected_kind mutant in
  let rec search i =
    if i >= seeds then (None, seeds)
    else begin
      let cfg = { cfg0 with seed = base_seed + i } in
      arm_mutant mutant;
      let cell =
        Fun.protect
          ~finally:(fun () -> Dura.Testonly.reset ())
          (fun () -> run_cell ~plan ~horizon kind cfg)
      in
      if Checker.has_kind expected cell.d_findings then (Some (base_seed + i), i + 1)
      else search (i + 1)
    end
  in
  let caught_seed, tried = search 0 in
  let clean_on_fixed =
    match caught_seed with
    | None -> false
    | Some seed ->
        Dura.Testonly.reset ();
        let cell = run_cell ~plan ~horizon kind { cfg0 with seed } in
        Checker.clean cell.d_findings
  in
  {
    m_mutant = mutant;
    m_caught_seed = caught_seed;
    m_seeds_tried = tried;
    m_caught = caught_seed <> None;
    m_clean_on_fixed = clean_on_fixed;
  }

let run_mutants ?seeds ?base_seed () =
  List.map (fun m -> run_mutant ?seeds ?base_seed m) all_mutants

(* ---------- reporting ---------- *)

let cell_to_json ?experiment c =
  Json.Obj
    (Report.context_fields ?experiment ~record:"recovery" ()
    @ [
        ("tree", Json.Str c.d_name);
        ("threads", Json.Int c.d_threads);
        ("seed", Json.Int c.d_seed);
        ("horizon_cycles", Json.Int c.d_horizon);
        ("plan", Plan.to_json c.d_plan);
        ("crashed", Json.Bool c.d_crashed);
        ("crash_cycle", Json.Int c.d_crash_cycle);
        ("restore_mode", Json.Str (restore_mode_name c.d_restore));
        ("ops", Json.Int c.d_ops);
        ("failed_ops", Json.Int c.d_failed_ops);
        ("snapshots_taken", Json.Int c.d_snapshots_taken);
        ("snapshot_lsn", Json.Int c.d_snapshot_lsn);
        ("log_len", Json.Int c.d_log_len);
        ("flushed_lsn", Json.Int c.d_flushed_lsn);
        ("lost_suffix", Json.Int c.d_lost);
        ("replayed", Json.Int c.d_replayed);
        ("rerun", Json.Int c.d_rerun);
        ("swept_locks", Json.Int c.d_swept_locks);
        ("stuck_recovery_ops", Json.Int c.d_stuck_ops);
        ("recovery_cycles", Json.Int c.d_recovery_cycles);
        ("work_bound_cycles", Json.Int c.d_work_bound);
        ("recovered", Json.Bool (Checker.clean c.d_findings));
        ("findings_total", Json.Int (List.length c.d_findings));
        ( "findings",
          Json.List (List.map Checker.finding_to_json c.d_findings) );
      ])

let print_cells cells =
  Printf.printf "%-14s %8s %6s %5s %5s %5s %5s %5s %9s %9s %s\n" "tree" "ops"
    "crash" "snaps" "lost" "repl" "rerun" "stuck" "recovery" "bound" "verdict";
  List.iter
    (fun c ->
      Printf.printf "%-14s %8d %6s %5d %5d %5d %5d %5d %9d %9d %s\n" c.d_name
        c.d_ops
        (if c.d_crashed then string_of_int c.d_crash_cycle else "-")
        c.d_snapshots_taken c.d_lost c.d_replayed c.d_rerun c.d_stuck_ops
        c.d_recovery_cycles c.d_work_bound
        (if Checker.clean c.d_findings then "recovered"
         else
           String.concat ","
             (List.map
                (fun f -> Checker.kind_name f.Checker.f_kind)
                c.d_findings)))
    cells;
  print_newline ()

let print_mutants outs =
  Printf.printf "%-24s %-22s %6s %6s %s\n" "mutant" "expected" "seeds"
    "caught" "clean-on-fixed";
  List.iter
    (fun o ->
      Printf.printf "%-24s %-22s %6d %6s %s\n"
        (mutant_name o.m_mutant)
        (Checker.kind_name (expected_kind o.m_mutant))
        o.m_seeds_tried
        (match o.m_caught_seed with
        | Some s -> Printf.sprintf "@%d" s
        | None -> "NO")
        (if not o.m_caught then "-"
         else if o.m_clean_on_fixed then "yes"
         else "NO"))
    outs;
  print_newline ()
