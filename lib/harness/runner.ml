(* Experiment driver: builds a tree, preloads the key space, runs a
   YCSB-style measurement phase on N simulated threads, and reduces the
   machine counters to the quantities the paper's figures report. *)

module Machine = Euno_sim.Machine
module Cost = Euno_sim.Cost
module Api = Euno_sim.Api
module Abort = Euno_sim.Abort
module Rng = Euno_sim.Rng
module Memory = Euno_mem.Memory
module Linemap = Euno_mem.Linemap
module Alloc = Euno_mem.Alloc
module Dist = Euno_workload.Dist
module Opgen = Euno_workload.Opgen

type workload = {
  dist : Dist.spec;
  mix : Opgen.mix;
  key_space : int;
  preload_permille : int; (* fraction of the key space preloaded, 0..1000 *)
  scan_len : int;
  scrambled : bool; (* hash ranks over the key space (YCSB scrambled) *)
  partitioned : bool;
    (* interleave-partition the key space across threads (thread t only
       touches keys = t mod threads): the paper's Figure 2 methodology for
       estimating the same-record share — true conflicts become
       impossible while hot keys stay adjacent *)
}

let default_workload =
  {
    dist = Dist.Zipfian 0.5;
    mix = Opgen.ycsb_default;
    key_space = 1 lsl 16;
    preload_permille = 900;
    scan_len = 16;
    scrambled = false;
    partitioned = false;
  }

type setup = {
  threads : int;
  ops_per_thread : int;
  seed : int;
  cost : Cost.t;
  fanout : int;
  policy : Euno_htm.Htm.policy option; (* None: each tree's own default *)
  check_after : bool; (* validate invariants when the run ends *)
  snapshot_window : int option;
    (* record cumulative machine counters every N simulated cycles,
       exposing collapse dynamics (lemming ignition, theta sweeps) as a
       time series in [r_snapshots] *)
  fault_plan : Euno_fault.Plan.t;
    (* deterministic fault injections compiled into the machine's hooks
       before the measurement phase; [] (the default) = no faults *)
  sanitize : bool;
    (* arm EunoSan for the measurement phase: the machine streams semantic
       events into a checker and the findings land in [r_san].  Slower and
       schedule-perturbing (announcement notes enter the event stream), so
       never combine with golden-trace or perf measurements *)
}

let default_setup =
  {
    threads = 16;
    ops_per_thread = 2000;
    seed = 42;
    cost = Cost.default;
    fanout = 16;
    policy = None;
    check_after = false;
    snapshot_window = None;
    fault_plan = [];
    sanitize = false;
  }

type result = {
  r_name : string;
  r_strategy : string;
    (* Htm.strategy_name of the fallback strategy the run's policy selects
       (setup.policy, or the trees' default when None) *)
  r_capacity_model : string; (* Cost.capacity.cm_name of the run's machine *)
  r_threads : int;
  r_ops : int;
  r_cycles : int;
  r_mops : float;
  r_aborts_per_op : float;
  r_abort_classes : float array; (* per op, indexed by Abort.index *)
  r_commits_per_op : float;
  r_wasted_pct : float; (* CPU cycles burnt in aborted transactions *)
  r_fallbacks_per_op : float;
  r_retries_per_op : float;
  r_lock_wait_pct : float; (* CPU time queueing on the fallback lock *)
  r_consistency_retries_per_op : float;
  r_watchdog_trips_per_op : float; (* polite waits cut short by the watchdog *)
  r_starvation_backoffs_per_op : float;
  r_convoy_events_per_op : float; (* fallback entries at convoy depth *)
  r_fast_path_wins_per_op : float; (* template strategies: unsubscribed commits *)
  r_middle_path_wins_per_op : float; (* template strategies: subscribed commits *)
  r_software_path_wins_per_op : float; (* lockfree: descriptor-served ops *)
  r_helped_ops_per_op : float; (* lockfree: descriptors applied for others *)
  r_instr_per_op : float; (* interpreted accesses: instruction proxy *)
  r_lat_p50 : int; (* per-op latency percentiles, simulated cycles *)
  r_lat_p99 : int;
  r_mem_preload_bytes : int; (* live bytes right after preload *)
  r_mem_live_bytes : int; (* live bytes after the measured run *)
  r_mem_reserved_peak_bytes : int;
  r_mem_lock_bytes : int; (* CCM + lock lines *)
  r_snapshots : (int * Machine.snapshot) list;
    (* cumulative aggregate counters at each sampled window boundary
       (oldest first); empty unless setup.snapshot_window was set *)
  r_san : Euno_san.San.summary option;
    (* sanitizer verdict; Some only when setup.sanitize was set *)
}

(* Observers (the Report telemetry collector) subscribe here; called with
   every completed result, including each run of [run_many].  Domain-local
   so each pool worker observes exactly its own cells; the pool replays
   worker-observed results into the main domain's observer in canonical
   cell order. *)
let on_result : (result -> unit) option Euno_sim.Domain_ref.t =
  Euno_sim.Domain_ref.create (fun () -> None)

let is_power_of_two n = n land (n - 1) = 0

(* Preloaded keys are a hash-scattered subset of the key space, so the
   fresh keys the measurement phase inserts are interleaved among existing
   records: every leaf keeps receiving occasional inserts (splits stay
   exercised) and no region of the tree becomes an artificial insert
   funnel. *)
let preloaded ~permille ~key_space:_ key =
  let h = key * 0x9E3779B1 in
  (h lxor (h lsr 13)) land 1023 * 1000 / 1024 < permille

(* Per-operation client-side cost: key generation and request dispatch. *)
let client_work = 25

(* Keys a partitioned-mode scan visits: [len] consecutive ranks of the
   thread's own interleaved stride (rank r -> key r*threads + tid), capped
   at the partition end.  A plain [Kv.scan] over consecutive keys would
   cross partition boundaries and read other threads' records — quietly
   reintroducing the same-record conflicts the Figure 2 methodology's
   partitioning exists to rule out. *)
let partition_scan_keys ~key_space ~threads ~tid ~from ~len =
  if threads < 1 then invalid_arg "Runner.partition_scan_keys: threads < 1";
  let n = key_space / threads in
  let from = min from (max 0 (n - 1)) in
  List.init (max 0 (min len (n - from))) (fun i -> ((from + i) * threads) + tid)

let run kind workload setup =
  if not (is_power_of_two workload.key_space) then
    invalid_arg "Runner.run: key_space must be a power of two";
  (* Arm the sanitizer before the preload: benign-race registrations
     (Sev.mark_racy) happen while trees are built, and the host registry
     carries them into the measurement machine, whose event hook is the
     only one installed.  Disarmed on every exit path so an aborted run
     cannot leak arming into later (golden-trace) runs. *)
  let san = if setup.sanitize then Some (Euno_san.San.create ()) else None in
  if setup.sanitize then begin
    Euno_sim.Sev.set_armed true;
    Euno_sim.Sev.reset_racy ()
  end;
  Fun.protect ~finally:(fun () ->
      if setup.sanitize then begin
        Euno_sim.Sev.set_armed false;
        Euno_sim.Sev.reset_racy ()
      end)
  @@ fun () ->
  let mem = Memory.create () in
  let map = Linemap.create () in
  let alloc = Alloc.create mem map in
  (* Build and bulk-load on a frictionless single-thread machine: the
     paper's load phase is not part of the measurement. *)
  let records =
    List.filter_map
      (fun key ->
        if
          preloaded ~permille:workload.preload_permille
            ~key_space:workload.key_space key
        then Some (key, key)
        else None)
      (List.init workload.key_space (fun k -> k))
  in
  let kv =
    Machine.run_single ~seed:setup.seed ~cost:Cost.unit_costs ~mem ~map ~alloc
      (fun () ->
        Kv.build ?policy:setup.policy ~records kind ~fanout:setup.fanout ~map)
  in
  let mem_preload = Alloc.live_bytes alloc in
  let m =
    Machine.create ~threads:setup.threads ~seed:setup.seed ~cost:setup.cost
      ~mem ~map ~alloc
  in
  let latencies =
    Array.init setup.threads (fun _ -> Array.make setup.ops_per_thread 0)
  in
  if setup.fault_plan <> [] then
    Machine.set_injector m (Euno_fault.Plan.to_injector setup.fault_plan);
  (match setup.snapshot_window with
  | Some window -> Machine.set_sampling m ~window
  | None -> ());
  (match san with
  | Some checker -> Machine.set_san_hook m (Some (Euno_san.San.hook checker))
  | None -> ());
  Machine.run m (fun tid ->
      let n =
        if workload.partitioned then workload.key_space / setup.threads
        else workload.key_space
      in
      let remap k = if workload.partitioned then (k * setup.threads) + tid else k in
      let dist =
        Dist.create ~scrambled:workload.scrambled workload.dist ~n
          ~seed:((setup.seed * 7919) + (tid * 131) + 1)
      in
      let gen =
        Opgen.create ~scan_len:workload.scan_len ~dist ~mix:workload.mix
          ~seed:((setup.seed * 104729) + tid) ()
      in
      for i = 0 to setup.ops_per_thread - 1 do
        Api.work client_work;
        let t0 = Api.clock () in
        (try
          match Opgen.next gen with
        | Opgen.Get k -> ignore (kv.Kv.get (remap k))
        | Opgen.Put (k, v) ->
            kv.Kv.put (remap k) v;
            (* the recency frontier, for Latest-distributed workloads *)
            Dist.advance dist
        | Opgen.Scan (k, len) ->
            if workload.partitioned then
              (* Range scans must not leave the thread's stride (see
                 partition_scan_keys); visit the same number of records as
                 a consecutive scan would, as point reads. *)
              List.iter
                (fun key -> ignore (kv.Kv.get key))
                (partition_scan_keys ~key_space:workload.key_space
                   ~threads:setup.threads ~tid ~from:k ~len)
            else ignore (kv.Kv.scan ~from:(remap k) ~count:len)
        | Opgen.Delete k -> ignore (kv.Kv.delete (remap k))
        | Opgen.Rmw (k, v) ->
            let k = remap k in
            let prev = Option.value ~default:0 (kv.Kv.get k) in
            kv.Kv.put k (prev + v)
        with
        | (Euno_htm.Htm.Stuck_fallback _ | Alloc.Alloc_failure)
          when setup.fault_plan <> [] ->
            (* Injected faults may defeat an operation gracefully (the
               chaos driver counts these the same way); the structure is
               untouched, so just move on to the next op. *)
            ());
        latencies.(tid).(i) <- Api.clock () - t0;
        Api.op_done ()
      done);
  if setup.check_after then
    Machine.run_single ~seed:setup.seed ~cost:Cost.unit_costs ~mem ~map ~alloc
      kv.Kv.check;
  let s = Machine.aggregate m in
  let lat =
    (* One percentile definition repo-wide: Summary's interpolated ranks
       (the previous ad-hoc nearest-rank pick was off by one for small
       samples and disagreed with Summary.percentile). *)
    let all = Array.concat (Array.to_list latencies) in
    let summ = Euno_stats.Summary.of_array (Array.map float_of_int all) in
    ( Euno_stats.Summary.percentile_int summ 50.0,
      Euno_stats.Summary.percentile_int summ 99.0 )
  in
  let ops = s.Machine.s_ops in
  let fops = float_of_int (max 1 ops) in
  let cycles = Machine.elapsed m in
  let total_cycles =
    (* total CPU time = sum of thread clocks; wasted% is relative to it *)
    float_of_int setup.threads *. float_of_int (max 1 cycles)
  in
  let result =
  {
    r_name = kv.Kv.name;
    r_strategy =
      Euno_htm.Htm.strategy_name
        (Option.value ~default:Euno_htm.Htm.default_policy setup.policy)
          .Euno_htm.Htm.strategy;
    r_capacity_model = setup.cost.Cost.capacity.Cost.cm_name;
    r_threads = setup.threads;
    r_ops = ops;
    r_cycles = cycles;
    r_mops = Cost.mops setup.cost ~ops ~cycles;
    r_aborts_per_op = float_of_int (Machine.total_aborts s) /. fops;
    r_abort_classes =
      Array.map (fun a -> float_of_int a /. fops) s.Machine.s_aborts;
    r_commits_per_op = float_of_int s.Machine.s_commits /. fops;
    r_wasted_pct =
      100.0
      *. float_of_int
           (s.Machine.s_wasted_cycles
           + s.Machine.s_user.(Euno_htm.Htm.Counter.lock_wait_cycles))
      /. total_cycles;
    r_lock_wait_pct =
      100.0
      *. float_of_int s.Machine.s_user.(Euno_htm.Htm.Counter.lock_wait_cycles)
      /. total_cycles;
    r_fallbacks_per_op =
      float_of_int s.Machine.s_user.(Euno_htm.Htm.Counter.fallbacks) /. fops;
    r_retries_per_op =
      float_of_int s.Machine.s_user.(Euno_htm.Htm.Counter.retries) /. fops;
    r_consistency_retries_per_op =
      float_of_int
        s.Machine.s_user.(Eunomia.Euno_tree.Counter.consistency_retries)
      /. fops;
    r_watchdog_trips_per_op =
      float_of_int s.Machine.s_user.(Euno_htm.Htm.Counter.watchdog_trips)
      /. fops;
    r_starvation_backoffs_per_op =
      float_of_int s.Machine.s_user.(Euno_htm.Htm.Counter.starvation_backoffs)
      /. fops;
    r_convoy_events_per_op =
      float_of_int s.Machine.s_user.(Euno_htm.Htm.Counter.convoy_events)
      /. fops;
    r_fast_path_wins_per_op =
      float_of_int s.Machine.s_user.(Euno_htm.Htm.Counter.fast_path_wins)
      /. fops;
    r_middle_path_wins_per_op =
      float_of_int s.Machine.s_user.(Euno_htm.Htm.Counter.middle_path_wins)
      /. fops;
    r_software_path_wins_per_op =
      float_of_int s.Machine.s_user.(Euno_htm.Htm.Counter.software_path_wins)
      /. fops;
    r_helped_ops_per_op =
      float_of_int s.Machine.s_user.(Euno_htm.Htm.Counter.helped_ops) /. fops;
    r_instr_per_op = float_of_int s.Machine.s_accesses /. fops;
    r_lat_p50 = fst lat;
    r_lat_p99 = snd lat;
    r_mem_preload_bytes = mem_preload;
    r_mem_live_bytes = Alloc.live_bytes alloc;
    r_mem_reserved_peak_bytes =
      (Alloc.stats_of_kind alloc Linemap.Reserved).Alloc.peak_words
      * Memory.word_bytes;
    r_mem_lock_bytes =
      (Alloc.stats_of_kind alloc Linemap.Lock).Alloc.live_words
      * Memory.word_bytes;
    r_snapshots = Machine.samples m;
    r_san = Option.map Euno_san.San.finish san;
  }
  in
  (match Euno_sim.Domain_ref.get on_result with
  | Some observe -> observe result
  | None -> ());
  result

(* Repeat a run over several seeds and summarize throughput variation
   (deterministic per seed, so this measures schedule sensitivity, the
   simulator's analogue of run-to-run noise). *)
type aggregate = {
  a_runs : result list;
  a_mean_mops : float;
  a_stddev_mops : float;
  a_min_mops : float;
  a_max_mops : float;
}

let run_many ?(seeds = 5) kind workload setup =
  if seeds < 1 then invalid_arg "Runner.run_many: seeds < 1";
  let runs =
    List.init seeds (fun i ->
        run kind workload { setup with seed = setup.seed + (i * 7919) })
  in
  let s = Euno_stats.Summary.create () in
  List.iter (fun r -> Euno_stats.Summary.add s r.r_mops) runs;
  {
    a_runs = runs;
    a_mean_mops = Euno_stats.Summary.mean s;
    a_stddev_mops = Euno_stats.Summary.stddev s;
    a_min_mops = Euno_stats.Summary.min_value s;
    a_max_mops = Euno_stats.Summary.max_value s;
  }

(* Aborts attributed to the paper's Figure 2 taxonomy. *)
let class_true r = r.r_abort_classes.(Abort.index (Abort.Conflict Abort.True_conflict))
let class_false_record r =
  r.r_abort_classes.(Abort.index (Abort.Conflict Abort.False_record))
let class_false_meta r =
  r.r_abort_classes.(Abort.index (Abort.Conflict Abort.False_metadata))

let class_subscription r =
  r.r_abort_classes.(Abort.index (Abort.Conflict Abort.Subscription))

let class_other r =
  r.r_aborts_per_op -. class_true r -. class_false_record r
  -. class_false_meta r -. class_subscription r
