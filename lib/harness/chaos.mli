(** Chaos harness: fault-injection campaigns with online correctness
    checking and graceful-degradation metrics.

    A chaos run executes a partitioned random workload (each key has a
    single writer thread, so a host-side map is an exact oracle while
    physical false sharing stays alive), checks every operation against
    the oracle, quiesces the machine at fixed checkpoints to run the
    tree's structural validator plus model-agreement spot checks, and
    splits throughput into before / under / after-fault phases.

    Everything is deterministic for a fixed config: the campaign plan is
    scaled to a fault-free calibration run of the same world, and the
    compiled fault hooks are pure functions of [(tid, clock)]. *)

module Plan = Euno_fault.Plan

type config = {
  threads : int;
  ops_per_thread : int;
  seed : int;
  key_space : int;  (** partitioned across threads; even keys preloaded *)
  fanout : int;
  cost : Euno_sim.Cost.t;
  policy : Euno_htm.Htm.policy option;
      (** HTM retry policy; [None] = each tree's own default *)
  checkpoints : int;  (** quiesce-and-validate points during the run *)
  windows : int;  (** sampling windows across the calibrated horizon *)
}

val default_config : config
(** 8 threads, 4Ki keys, polite (hardened) policy, 4 checkpoints. *)

val quick_config : config
(** CI smoke scale. *)

(** Raw counters of one machine run under an explicit plan. *)
type raw = {
  raw_name : string;
  raw_ops : int;
  raw_failed_ops : int;
      (** operations that surfaced {!Euno_htm.Htm.Stuck_fallback} or
          {!Euno_mem.Alloc.Alloc_failure} (graceful failures: structure
          untouched) *)
  raw_violations : int;  (** structural-validator failures at checkpoints *)
  raw_mismatches : int;  (** operations or spot checks disagreeing with the
          host model *)
  raw_checkpoints : int;
  raw_cycles : int;
  raw_work_cycles : int;
      (** clock when the last thread finished its operation loop (excludes
          the final single-threaded validation drain) *)
  raw_agg : Euno_sim.Machine.snapshot;
  raw_samples : (int * Euno_sim.Machine.snapshot) list;
}

val run_plan : ?plan:Plan.t -> ?sampling:int -> Kv.kind -> config -> raw
(** Run the chaos workload under [plan] (default: no faults), sampling
    cumulative counters every [sampling] cycles if given.  Used directly
    by tests for directed scenarios (e.g. lemming storms). *)

(** Recovery verdict after the last fault window.  [Unrecovered n] is
    explicit — [n] is the post-fault observation horizon we watched
    without the op rate returning to half the clean-phase mean — so
    downstream arithmetic can never average a sentinel. *)
type recovery_verdict =
  | Recovered of int  (** cycles until the op rate was restored *)
  | Unrecovered of int  (** post-fault cycles observed without recovery *)

(** One tree's campaign result. *)
type outcome = {
  o_name : string;
  o_threads : int;
  o_seed : int;
  o_horizon : int;
      (** fault-free calibrated working time in cycles (excluding the
          final validation drain); the campaign windows scale to it *)
  o_plan : Plan.t;
  o_ops : int;
  o_failed_ops : int;
  o_cycles : int;
  o_mops : float;
  o_mops_clean : float;  (** throughput before the first fault window *)
  o_mops_fault : float;  (** throughput while any fault window is active *)
  o_mops_after : float;  (** throughput after the last fault window *)
  o_recovery : recovery_verdict;
      (** cycles after the last fault until the op rate is back to at
          least half the clean-phase mean, or the explicit
          [Unrecovered] horizon *)
  o_invariant_violations : int;
  o_model_mismatches : int;
  o_checkpoints : int;
  o_fallbacks : int;
  o_watchdog_trips : int;
  o_starvation_backoffs : int;
  o_convoy_events : int;
  o_aborts : int array;
  o_snapshots : (int * Euno_sim.Machine.snapshot) list;
}

val run_campaign : Kv.kind -> config -> outcome
(** Calibrate a fault-free horizon on an identical world, compile
    {!Plan.campaign} scaled to it, and run the chaos workload under it. *)

val run_all : ?domains:int -> config -> outcome list
(** {!run_campaign} over the paper's four tree variants; [domains] > 1
    fans the per-tree cells across worker domains via {!Pool.map} with
    byte-identical outcomes in {!Kv.all_kinds} order. *)

val outcome_to_json : ?experiment:string -> outcome -> Euno_stats.Json.t
(** One schema-v1 ["chaos"] record ({!Report.validate_chaos} is the
    contract). *)

val print_outcomes : outcome list -> unit
(** ASCII summary table. *)
