(* EunoCheck: adversarial schedule exploration with linearizability
   checking.

   One "execution" runs a small, hotly contended workload on the machine
   under an exploration policy (Machine.set_explorer + Explore), records
   every completed operation with exact simulated-cycle intervals, and
   checks the history with History.check.  A campaign sweeps trees x op
   mixes x key distributions x seeds x policies; any Illegal verdict is a
   found atomicity bug.

   On a violation the preemption set the policy fired is greedily shrunk:
   each preemption is dropped in turn and the run replayed under
   Explore.Replay — everything is deterministic, so a subset either still
   reproduces the violation or provably does not.  The survivors (usually
   one to three forced context switches) plus the run configuration make a
   one-line repro descriptor that `euno_check --repro` replays verbatim.

   Validation is mutation-driven: the Testonly switches in Htm
   (skip_subscription) and Masstree (widen_read_window) reintroduce real
   atomicity bugs, and the campaign must catch each as a non-linearizable
   history while the unmutated trees sweep clean. *)

module Machine = Euno_sim.Machine
module Explore = Euno_sim.Explore
module Cost = Euno_sim.Cost
module Api = Euno_sim.Api
module Memory = Euno_mem.Memory
module Linemap = Euno_mem.Linemap
module Alloc = Euno_mem.Alloc
module Dist = Euno_workload.Dist
module Opgen = Euno_workload.Opgen
module Htm = Euno_htm.Htm
module IntMap = Map.Make (Int)

(* ---------- mutations ---------- *)

(* Registered Testonly switches, by the name used in repro descriptors.
   Each entry reintroduces one historical atomicity bug. *)
let mutations =
  [
    ("htm-skip-subscription", Htm.Testonly.skip_subscription);
    ("htm-skip-activity-read", Htm.Testonly.skip_activity_read);
    ("htm-lf-skip-announce", Htm.Testonly.lf_skip_announce);
    ("masstree-widen-read-window", Euno_masstree.Masstree.Testonly.widen_read_window);
  ]

let mutation_names = List.map fst mutations

let with_mutation name f =
  if name = "none" then f ()
  else
    match List.assoc_opt name mutations with
    | None -> invalid_arg ("Check_run: unknown mutation " ^ name)
    | Some switch ->
        Euno_sim.Domain_ref.set switch true;
        Fun.protect ~finally:(fun () -> Euno_sim.Domain_ref.set switch false) f

(* ---------- one execution ---------- *)

type config = {
  tree : Kv.kind;
  mix : string; (* "point" (scan-free) or "scan" *)
  dist : string; (* "uniform" or "zipf" *)
  strategy : Htm.strategy; (* fallback strategy the tree's policy selects *)
  threads : int;
  ops : int; (* per thread *)
  keys : int; (* key-space size; tiny so operations genuinely race *)
  seed : int;
  mutation : string; (* "none" or a key of [mutations] *)
}

let kind_of_name n =
  match
    List.find_opt
      (fun k -> Kv.kind_name k = n)
      (Kv.all_kinds @ [ Kv.Lock_bptree ])
  with
  | Some k -> k
  | None -> invalid_arg ("Check_run: unknown tree " ^ n)

let mix_of_name = function
  | "point" -> { Opgen.get = 40; put = 40; scan = 0; delete = 15; rmw = 5 }
  | "scan" -> { Opgen.get = 30; put = 40; scan = 15; delete = 15; rmw = 0 }
  | m -> invalid_arg ("Check_run: unknown mix " ^ m)

let dist_of_name = function
  | "uniform" -> Dist.Uniform
  | "zipf" -> Dist.Zipfian 0.9
  | d -> invalid_arg ("Check_run: unknown distribution " ^ d)

(* Tiny retry budgets so operations keep crossing the fast-path/fallback
   boundary — exactly where the bugs EunoCheck hunts live. *)
let check_htm_policy =
  {
    Htm.default_policy with
    Htm.conflict_retries = 1;
    capacity_retries = 1;
    lock_busy_retries = 2;
    other_retries = 1;
    backoff_base = 16;
    backoff_cap = 128;
  }

(* The same tiny budgets under either fallback strategy; for three-path a
   single unsubscribed attempt per op keeps the fast/middle/fallback
   boundary crossings dense. *)
let check_policy strategy =
  { check_htm_policy with Htm.strategy; fast_path_attempts = 1 }

type exec = {
  x_verdict : History.verdict;
  x_events : int;
  x_fired : Explore.preemption list; (* preemptions the policy fired *)
}

(* Preloaded records: every even key, with values disjoint from the ones
   the workload writes (operation values are >= 1_000_000 and unique per
   (thread, op), so any torn or lost write shows up as an impossible
   observation). *)
let preload_records keys =
  List.filter_map
    (fun k -> if k land 1 = 0 then Some (k, 100_000 + k) else None)
    (List.init keys (fun k -> k))

let op_value ~tid ~i = ((tid + 1) * 1_000_000) + i

let execute config ~policy =
  with_mutation config.mutation @@ fun () ->
  let mem = Memory.create () in
  let map = Linemap.create () in
  let alloc = Alloc.create mem map in
  let records = preload_records config.keys in
  let kv =
    Machine.run_single ~seed:config.seed ~cost:Cost.unit_costs ~mem ~map ~alloc
      (fun () ->
        Kv.build
          ~policy:(check_policy config.strategy)
          ~records config.tree ~fanout:8 ~map)
  in
  let m =
    Machine.create ~threads:config.threads ~seed:config.seed ~cost:Cost.default
      ~mem ~map ~alloc
  in
  let expl = Explore.create ~seed:config.seed policy in
  Machine.set_explorer m (Some (Explore.hook expl));
  let r = History.recorder () in
  let mix = mix_of_name config.mix in
  Machine.run m (fun tid ->
      let dist =
        Dist.create (dist_of_name config.dist) ~n:config.keys
          ~seed:((config.seed * 7919) + (tid * 131) + 1)
      in
      let gen =
        Opgen.create ~scan_len:4 ~dist ~mix
          ~seed:((config.seed * 104729) + tid)
          ()
      in
      for i = 0 to config.ops - 1 do
        Api.work 10;
        let invoked = Api.clock () in
        (try
           match Opgen.next gen with
           | Opgen.Get k ->
               let v = kv.Kv.get k in
               History.record r ~tid ~invoked ~responded:(Api.clock ())
                 (History.Get (k, v))
           | Opgen.Put (k, _) ->
               let v = op_value ~tid ~i in
               kv.Kv.put k v;
               History.record r ~tid ~invoked ~responded:(Api.clock ())
                 (History.Put (k, v))
           | Opgen.Delete k ->
               let ok = kv.Kv.delete k in
               History.record r ~tid ~invoked ~responded:(Api.clock ())
                 (History.Delete (k, ok))
           | Opgen.Rmw (k, _) ->
               (* The trees implement read-modify-write as a non-atomic get
                  then put, so the history must record it as two point
                  operations — recording an atomic Rmw event would assert
                  atomicity the implementation never promises. *)
               let prev = kv.Kv.get k in
               let mid = Api.clock () in
               History.record r ~tid ~invoked ~responded:mid
                 (History.Get (k, prev));
               let v = op_value ~tid ~i in
               kv.Kv.put k v;
               History.record r ~tid ~invoked:mid ~responded:(Api.clock ())
                 (History.Put (k, v))
           | Opgen.Scan (k, len) ->
               let bs = kv.Kv.scan ~from:k ~count:len in
               History.record r ~tid ~invoked ~responded:(Api.clock ())
                 (History.Scan (k, len, bs))
         with Htm.Stuck_fallback _ ->
           (* Tiny budgets plus long forced preemptions can trip the
              fallback watchdog; the op gave up before mutating anything,
              so skip it and keep exploring. *)
           ());
        Api.op_done ()
      done);
  let evs = History.events r in
  let init =
    List.fold_left (fun acc (k, v) -> IntMap.add k v acc) IntMap.empty records
  in
  {
    x_verdict = History.check ~init evs;
    x_events = List.length evs;
    x_fired = Explore.fired expl;
  }

(* ---------- repro descriptors ---------- *)

let config_to_string c =
  Printf.sprintf
    "tree=%s;mix=%s;dist=%s;strategy=%s;threads=%d;ops=%d;keys=%d;seed=%d;mut=%s"
    (Kv.kind_name c.tree) c.mix c.dist
    (Htm.strategy_name c.strategy)
    c.threads c.ops c.keys c.seed c.mutation

let repro_to_string c policy =
  config_to_string c ^ ";policy=" ^ Explore.spec_to_string policy

let repro_of_string s =
  let fields =
    List.map
      (fun field ->
        match String.index_opt field '=' with
        | Some i ->
            ( String.sub field 0 i,
              String.sub field (i + 1) (String.length field - i - 1) )
        | None -> invalid_arg ("Check_run: bad repro field " ^ field))
      (String.split_on_char ';' s)
  in
  let get name =
    match List.assoc_opt name fields with
    | Some v -> v
    | None -> invalid_arg ("Check_run: repro missing " ^ name)
  in
  let strategy =
    (* Absent in descriptors recorded before strategies existed: elision. *)
    match List.assoc_opt "strategy" fields with
    | None -> Htm.Elision
    | Some name -> (
        match Htm.strategy_of_name name with
        | Some s -> s
        | None -> invalid_arg ("Check_run: unknown strategy " ^ name))
  in
  let config =
    {
      tree = kind_of_name (get "tree");
      mix = get "mix";
      dist = get "dist";
      strategy;
      threads = int_of_string (get "threads");
      ops = int_of_string (get "ops");
      keys = int_of_string (get "keys");
      seed = int_of_string (get "seed");
      mutation = get "mut";
    }
  in
  (config, Explore.spec_of_string (get "policy"))

(* ---------- counterexample shrinking ---------- *)

let is_illegal x =
  match x.x_verdict with History.Illegal _ -> true | _ -> false

(* Delta-debugging over the fired preemption set: replay without each
   preemption (latest first — later context switches are most often
   incidental), iterate the pass to a fixed point, and if the survivors
   still exceed the three-preemption target, brute-force their subsets of
   size <= 3 (dropping one element at a time is not monotone, so a small
   subset can reproduce even when no single further drop does).
   Deterministic replay makes every trial conclusive, and executions are
   milliseconds, so the extra trials are cheap. *)
let shrink config fired =
  let reproduces ps = is_illegal (execute config ~policy:(Explore.Replay ps)) in
  if reproduces [] then []
  else begin
    let pass ps =
      let rec drop_each kept = function
        | [] -> List.rev kept
        | p :: rest ->
            if reproduces (List.rev_append kept rest) then drop_each kept rest
            else drop_each (p :: kept) rest
      in
      drop_each [] ps
    in
    let rec fix ps =
      let ps' = pass ps in
      if List.length ps' = List.length ps then ps' else fix ps'
    in
    let survivors = fix (List.rev fired) in
    if List.length survivors <= 3 then survivors
    else begin
      let arr = Array.of_list survivors in
      let n = Array.length arr in
      let found = ref None in
      let try_subset idxs =
        if !found = None then begin
          let ps = List.map (fun i -> arr.(i)) idxs in
          if reproduces ps then found := Some ps
        end
      in
      for i = 0 to n - 1 do
        try_subset [ i ]
      done;
      if !found = None then
        for i = 0 to n - 1 do
          for j = i + 1 to n - 1 do
            try_subset [ i; j ]
          done
        done;
      if !found = None then
        for i = 0 to n - 1 do
          for j = i + 1 to n - 1 do
            for k = j + 1 to n - 1 do
              try_subset [ i; j; k ]
            done
          done
        done;
      match !found with Some ps -> ps | None -> survivors
    end
  end

(* ---------- campaigns ---------- *)

type violation = {
  v_core : History.event list; (* minimized non-linearizable core *)
  v_fired : Explore.preemption list; (* preemptions of the failing run *)
  v_minimized : Explore.preemption list; (* after shrinking *)
  v_repro : string; (* replays the minimized counterexample *)
}

type outcome = {
  o_config : config;
  o_policy : string; (* descriptor of the policy (or pool) used *)
  o_runs : int;
  o_events : int; (* total history events checked *)
  o_violation : violation option;
}

(* The hunting pool: diverse policies so no single bug shape can hide from
   all of them.  Indexed round-robin by run number; the seed varies with
   every run, so 64 runs cover 64 distinct (policy, seed) schedules. *)
(* euno-lint: allow domain-shared-state: immutable in practice — built once at module init and only ever indexed, never written *)
let policy_pool =
  [|
    Explore.Targeted
      { per_1024 = 700; span = 400; points = [ Explore.Lock_acquire ] };
    Explore.Targeted
      { per_1024 = 400; span = 150; points = Explore.sync_points };
    Explore.Random_walk { per_1024 = 20; span = 80 };
    Explore.Random_walk { per_1024 = 60; span = 30 };
    Explore.Pct { depth = 3; span = 200; horizon = 3000 };
    Explore.Pct { depth = 6; span = 60; horizon = 4000 };
  |]

let violation_of config exec =
  match exec.x_verdict with
  | History.Linearizable _ -> None
  | History.Illegal core ->
      let minimized = shrink config exec.x_fired in
      (* Report the core of the minimized replay (shrink verified it is
         still illegal), so the printed history is exactly what the repro
         command reproduces. *)
      let core =
        match
          (execute config ~policy:(Explore.Replay minimized)).x_verdict
        with
        | History.Illegal c -> c
        | History.Linearizable _ -> core
      in
      Some
        {
          v_core = core;
          v_fired = exec.x_fired;
          v_minimized = minimized;
          v_repro = repro_to_string config (Explore.Replay minimized);
        }

(* Run up to [budget] (policy, seed) schedules of [config]; stop at the
   first violation and shrink it. *)
let hunt ?(budget = 64) config =
  let rec go run events =
    if run >= budget then
      {
        o_config = config;
        o_policy = "pool";
        o_runs = budget;
        o_events = events;
        o_violation = None;
      }
    else begin
      let policy = policy_pool.(run mod Array.length policy_pool) in
      let config = { config with seed = config.seed + (run * 7919) } in
      let x = execute config ~policy in
      match violation_of config x with
      | Some v ->
          {
            o_config = config;
            o_policy = Explore.spec_to_string policy;
            o_runs = run + 1;
            o_events = events + x.x_events;
            o_violation = Some v;
          }
      | None -> go (run + 1) (events + x.x_events)
    end
  in
  go 0 0

let base_config tree =
  {
    tree;
    mix = "point";
    dist = "zipf";
    strategy = Htm.Elision;
    threads = 4;
    ops = 12;
    keys = 8;
    seed = 1;
    mutation = "none";
  }

(* The clean sweep: every strategy x tree x mix x distribution, several
   (policy, seed) schedules each, no mutations.  Any violation here is a
   real bug in the trees, the fallback strategies (or the checker).  One
   [hunt] is one pool cell — hunts are independent per config, so
   [Pool.map] fans them across domains; the early-exit-at-first-violation
   behaviour inside a hunt is untouched, and the index merge keeps the
   canonical strategy > tree > mix > dist outcome order. *)
let sweep ?(quick = false) ?(seed = 42) ?(strategies = Htm.all_strategies)
    ?domains () =
  let runs_per_cell = if quick then 4 else 12 in
  let scan_ops = 4 (* 4 threads x 4 ops stays within the 62-event bound *) in
  let cells =
    List.concat_map
      (fun strategy ->
        List.concat_map
          (fun tree ->
            List.concat_map
              (fun (mix, ops) ->
                List.map
                  (fun dist ->
                    { (base_config tree) with mix; dist; ops; seed; strategy })
                  [ "uniform"; "zipf" ])
              [ ("point", 12); ("scan", scan_ops) ])
          Kv.all_kinds)
      strategies
  in
  Pool.map ?domains (fun config -> hunt ~budget:runs_per_cell config) cells

(* Mutation campaign: each registered bug hunted on the tree (and under
   the fallback strategy) it lives in.  The expectation is inverted — not
   finding the bug is the failure. *)
let mutation_targets =
  [
    ("htm-skip-subscription", Kv.Htm_bptree, Htm.Elision);
    ("htm-skip-activity-read", Kv.Htm_bptree, Htm.Three_path);
    ("htm-lf-skip-announce", Kv.Htm_bptree, Htm.Lockfree);
    ("masstree-widen-read-window", Kv.Masstree, Htm.Elision);
  ]

let hunt_mutations ?(budget = 64) ?(seed = 42) ?domains () =
  Pool.map ?domains
    (fun (mutation, tree, strategy) ->
      hunt ~budget { (base_config tree) with mutation; seed; strategy })
    mutation_targets

let clean outcomes = List.for_all (fun o -> o.o_violation = None) outcomes

(* ---------- reporting ---------- *)

let print oc outcomes =
  Printf.fprintf oc "%-14s %-6s %-8s %-10s %-10s %5s %7s %s\n" "tree" "mix"
    "dist" "strategy" "mutation" "runs" "events" "verdict";
  List.iter
    (fun o ->
      let c = o.o_config in
      Printf.fprintf oc "%-14s %-6s %-8s %-10s %-10s %5d %7d %s\n"
        (Kv.kind_name c.tree) c.mix c.dist
        (Htm.strategy_name c.strategy)
        c.mutation o.o_runs o.o_events
        (match o.o_violation with
        | None -> "clean"
        | Some v ->
            Printf.sprintf "VIOLATION (%d preemption%s after shrink)"
              (List.length v.v_minimized)
              (if List.length v.v_minimized = 1 then "" else "s"));
      match o.o_violation with
      | None -> ()
      | Some v ->
          Printf.fprintf oc "  policy: %s\n" o.o_policy;
          Printf.fprintf oc "  minimized preemptions: [%s]\n"
            (String.concat ", "
               (List.map Explore.preemption_to_string v.v_minimized));
          Printf.fprintf oc "  non-linearizable core:\n%s\n"
            (History.to_string v.v_core);
          Printf.fprintf oc "  repro: euno_check --repro '%s'\n" v.v_repro)
    outcomes

let to_records ?experiment outcomes =
  List.mapi
    (fun i o ->
      let c = o.o_config in
      Report.check_to_json ?experiment ~run:i ~tree:(Kv.kind_name c.tree)
        ~mix:c.mix ~dist:c.dist ~mutation:c.mutation
        ~strategy:(Htm.strategy_name c.strategy)
        ~capacity_model:Cost.default.Cost.capacity.Cost.cm_name
        ~threads:c.threads ~seed:c.seed ~policy:o.o_policy ~runs:o.o_runs
        ~events:o.o_events
        ~violation:
          (Option.map
             (fun v ->
               ( List.length v.v_fired,
                 List.length v.v_minimized,
                 List.length v.v_core,
                 v.v_repro ))
             o.o_violation)
        ())
    outcomes
