(** Experiment driver: preload, measure, reduce to the paper's metrics.

    A run builds one tree on a fresh simulated world, preloads a fraction
    of the key space (the YCSB load phase, executed off the clock on a
    frictionless machine), then runs the measurement phase on N simulated
    threads with private operation streams, and aggregates machine
    counters into the quantities Figures 1-13 plot. *)

type workload = {
  dist : Euno_workload.Dist.spec;
  mix : Euno_workload.Opgen.mix;
  key_space : int;  (** must be a power of two *)
  preload_permille : int;  (** fraction of keys loaded up front *)
  scan_len : int;
  scrambled : bool;
      (** hash ranks across the key space (YCSB's scrambled variant);
          default false = hot keys adjacent, as the paper's analysis
          assumes *)
  partitioned : bool;
      (** interleave-partition keys across threads (no two threads ever
          touch the same record): the paper's Figure 2 estimation
          methodology *)
}

val default_workload : workload
(** Zipfian(0.5), 50/50 get-put, 64 Ki keys, 10% preloaded (the paper loads ~10-17M of a 100M key range: average tree depth 6 at fanout 16), so puts are insert-heavy. *)

type setup = {
  threads : int;
  ops_per_thread : int;
  seed : int;
  cost : Euno_sim.Cost.t;
  fanout : int;
  policy : Euno_htm.Htm.policy option;
  check_after : bool;
  snapshot_window : int option;
      (** sample cumulative machine counters every N simulated cycles into
          [r_snapshots] (time-resolved telemetry); default off *)
  fault_plan : Euno_fault.Plan.t;
      (** deterministic fault injections installed on the measurement
          machine before the run; [[]] (the default) = no faults *)
  sanitize : bool;
      (** arm EunoSan for the measurement phase; findings land in
          [r_san].  Announcement notes perturb schedules, so never
          combine with golden-trace or perf measurements *)
}

val default_setup : setup

type result = {
  r_name : string;
  r_strategy : string;
      (** {!Euno_htm.Htm.strategy_name} of the fallback strategy the run's
          policy selects ([setup.policy], or the trees' default when
          [None]) *)
  r_capacity_model : string;
      (** [Cost.capacity.cm_name] of the measurement machine *)
  r_threads : int;
  r_ops : int;
  r_cycles : int;
  r_mops : float;
  r_aborts_per_op : float;
  r_abort_classes : float array;
  r_commits_per_op : float;
  r_wasted_pct : float;
      (** share of total CPU burnt in aborted transactions or queueing on
          the fallback lock (the paper's "wasted cycles") *)
  r_fallbacks_per_op : float;
  r_retries_per_op : float;
  r_lock_wait_pct : float;
  r_consistency_retries_per_op : float;
  r_watchdog_trips_per_op : float;
      (** polite lock waits cut short by the bounded-wait watchdog *)
  r_starvation_backoffs_per_op : float;
      (** escalating backoffs taken after consecutive fallbacks *)
  r_convoy_events_per_op : float;
      (** fallback entries that found a convoy already queued *)
  r_fast_path_wins_per_op : float;
      (** {!Euno_htm.Htm.Three_path}/{!Euno_htm.Htm.Lockfree}: commits on
          the unsubscribed fast path; 0 under elision *)
  r_middle_path_wins_per_op : float;
      (** template strategies: commits on the activity-subscribed middle
          path *)
  r_software_path_wins_per_op : float;
      (** {!Euno_htm.Htm.Lockfree}: operations served through a published
          descriptor (own combining tenure or helped) *)
  r_helped_ops_per_op : float;
      (** {!Euno_htm.Htm.Lockfree}: descriptors a combiner applied on
          behalf of other threads *)
  r_instr_per_op : float;
  r_lat_p50 : int;
      (** median per-operation latency in simulated cycles *)
  r_lat_p99 : int;
  r_mem_preload_bytes : int;
  r_mem_live_bytes : int;
  r_mem_reserved_peak_bytes : int;
  r_mem_lock_bytes : int;
  r_snapshots : (int * Euno_sim.Machine.snapshot) list;
      (** [(window_end_clock, cumulative aggregate)] series, oldest first;
          non-empty only when [setup.snapshot_window] was set *)
  r_san : Euno_san.San.summary option;
      (** sanitizer verdict; [Some] only when [setup.sanitize] was set *)
}

val on_result : (result -> unit) option Euno_sim.Domain_ref.t
(** Observer invoked with every completed result (including each seed of
    {!run_many}); the telemetry collector in {!Report} installs itself
    here.  Purely observational — results are unchanged.  Domain-local:
    each pool worker domain has its own (initially absent) observer, so
    parallel cells never interleave into one collector. *)

val partition_scan_keys :
  key_space:int -> threads:int -> tid:int -> from:int -> len:int -> int list
(** The keys a partitioned-mode scan visits: [len] consecutive ranks of
    thread [tid]'s interleaved stride starting at partition rank [from],
    capped at the partition end.  Every returned key satisfies
    [key mod threads = tid], preserving the Figure 2 methodology's
    guarantee that no two threads ever touch the same record. *)

val run : Kv.kind -> workload -> setup -> result

(** Throughput variation over several seeds (schedule sensitivity). *)
type aggregate = {
  a_runs : result list;
  a_mean_mops : float;
  a_stddev_mops : float;
  a_min_mops : float;
  a_max_mops : float;
}

val run_many : ?seeds:int -> Kv.kind -> workload -> setup -> aggregate

val class_true : result -> float
(** Conflict aborts on the same record, per op (true conflicts). *)

val class_false_record : result -> float
val class_false_meta : result -> float

val class_subscription : result -> float
(** Elision-lock subscription cascades (fallback acquirers dooming every
    running transaction), per op. *)

val class_other : result -> float
(** Capacity, explicit, spurious and timer aborts, per op. *)
