(** EunoCheck campaigns: adversarial schedule exploration (via
    {!Euno_sim.Explore} policies plugged into the machine scheduler) with
    linearizability checking of the recorded histories
    ({!History.check}).

    A campaign runs many small, hotly contended executions — trees x op
    mixes x key distributions x (policy, seed) schedules — and reports any
    [Illegal] verdict as a found atomicity bug, with the fired preemption
    set greedily shrunk to a minimal deterministic counterexample and a
    one-line repro descriptor that [euno_check --repro] replays.

    Validation is mutation-driven: {!hunt_mutations} flips the [Testonly]
    switches that reintroduce historical protocol bugs and must catch each
    one, while {!sweep} must pass the unmutated trees clean. *)

(** {1 Configuration} *)

type config = {
  tree : Kv.kind;
  mix : string;  (** ["point"] (scan-free) or ["scan"] *)
  dist : string;  (** ["uniform"] or ["zipf"] *)
  strategy : Euno_htm.Htm.strategy;
      (** fallback strategy the tree's HTM policy selects *)
  threads : int;
  ops : int;  (** operations per thread *)
  keys : int;  (** key-space size; tiny so operations genuinely race *)
  seed : int;
  mutation : string;  (** ["none"] or a name in {!mutation_names} *)
}

val base_config : Kv.kind -> config
(** The standard hunting cell: 4 threads x 12 ops over 8 keys, zipfian
    point mix, elision strategy, no mutation. *)

val mutation_names : string list
(** Registered [Testonly] mutation switches, by repro-descriptor name. *)

val check_htm_policy : Euno_htm.Htm.policy
(** Tiny retry budgets so operations keep crossing the
    fast-path/fallback boundary — where the hunted bugs live. *)

val check_policy : Euno_htm.Htm.strategy -> Euno_htm.Htm.policy
(** {!check_htm_policy} under the given strategy (one unsubscribed fast
    attempt for three-path, keeping boundary crossings dense). *)

(** {1 One execution} *)

type exec = {
  x_verdict : History.verdict;
  x_events : int;
  x_fired : Euno_sim.Explore.preemption list;
      (** preemptions the policy fired, oldest first *)
}

val execute : config -> policy:Euno_sim.Explore.spec -> exec
(** Run one execution of [config] under [policy] and check its history.
    Deterministic: same [config] and [policy] reproduce the same verdict
    and the same fired preemptions. *)

(** {1 Repro descriptors} *)

val config_to_string : config -> string

val repro_to_string : config -> Euno_sim.Explore.spec -> string
(** One-line descriptor: the config fields plus
    [;policy=<Explore.spec_to_string>]. *)

val repro_of_string : string -> config * Euno_sim.Explore.spec
(** Inverse of {!repro_to_string}; raises [Invalid_argument] on a
    malformed descriptor.  A descriptor without a [strategy=] field (one
    recorded before strategies existed) replays under elision. *)

(** {1 Counterexample shrinking} *)

val shrink : config -> Euno_sim.Explore.preemption list -> Euno_sim.Explore.preemption list
(** Greedy delta-debugging over a failing run's fired preemptions: replay
    under [Explore.Replay] with each preemption dropped in turn and keep
    only the ones the violation needs. *)

(** {1 Campaigns} *)

type violation = {
  v_core : History.event list;  (** minimized non-linearizable core *)
  v_fired : Euno_sim.Explore.preemption list;
  v_minimized : Euno_sim.Explore.preemption list;  (** after {!shrink} *)
  v_repro : string;  (** replays the minimized counterexample *)
}

type outcome = {
  o_config : config;
  o_policy : string;  (** descriptor of the policy (or pool) used *)
  o_runs : int;
  o_events : int;  (** total history events checked *)
  o_violation : violation option;
}

val hunt : ?budget:int -> config -> outcome
(** Run up to [budget] (default 64) (policy, seed) schedules of [config],
    round-robin over a diverse policy pool; stop at the first violation
    and shrink it. *)

val sweep :
  ?quick:bool ->
  ?seed:int ->
  ?strategies:Euno_htm.Htm.strategy list ->
  ?domains:int ->
  unit ->
  outcome list
(** The clean sweep: every strategy (default all) x tree x mix x
    distribution, several (policy, seed) schedules each, no mutations.
    Any violation is a real bug in the trees, the fallback strategies (or
    the checker).  Each hunt is one {!Pool.map} cell: [domains] > 1 fans
    them across worker domains with byte-identical outcomes in the same
    canonical order. *)

val hunt_mutations :
  ?budget:int -> ?seed:int -> ?domains:int -> unit -> outcome list
(** Mutation campaign: each registered bug hunted on the tree — and under
    the fallback strategy — it lives in.  The expectation is inverted —
    not finding the bug is the failure. *)

val clean : outcome list -> bool

(** {1 Reporting} *)

val print : out_channel -> outcome list -> unit

val to_records : ?experiment:string -> outcome list -> Euno_stats.Json.t list
(** Schema-v1 ["check"] records, one per outcome
    ({!Report.check_to_json}). *)
