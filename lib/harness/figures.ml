(* One function per figure of the paper's evaluation (plus the Section 5.7
   memory analysis), each printing the table its plot is drawn from.
   Scale knobs shrink the runs for smoke tests; shapes, not absolute
   numbers, are the reproduction target (see EXPERIMENTS.md). *)

module Dist = Euno_workload.Dist
module Opgen = Euno_workload.Opgen
module Config = Eunomia.Config
module Table = Euno_stats.Table

type scale = {
  key_space : int;
  ops_per_thread : int;
  max_threads : int;
  seed : int;
  charts : bool; (* also render ASCII charts after the tables *)
  snapshot_window : int option;
      (* sample machine counters every N simulated cycles (telemetry) *)
  strategy : Euno_htm.Htm.strategy option;
      (* force every run's fallback strategy (None = the trees' default
         elision policy, byte-identical to the historical runs) *)
  capacity : Euno_sim.Cost.capacity_model option;
      (* force the capacity/conflict model (None = the setup's default) *)
}

let default_scale =
  {
    key_space = 1 lsl 17;
    ops_per_thread = 2500;
    max_threads = 20;
    seed = 42;
    charts = false;
    snapshot_window = None;
    strategy = None;
    capacity = None;
  }

let quick_scale = { default_scale with key_space = 1 lsl 12; ops_per_thread = 400; max_threads = 8 }

let theta_sweep = [ 0.0; 0.2; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 0.99 ]

let thread_sweep scale =
  List.filter (fun t -> t <= scale.max_threads) [ 1; 2; 4; 8; 12; 16; 20 ]

let workload_of scale dist mix =
  { Runner.default_workload with Runner.dist; mix; key_space = scale.key_space }

let setup_of scale threads =
  let setup =
    {
      Runner.default_setup with
      Runner.threads = min threads scale.max_threads;
      ops_per_thread = scale.ops_per_thread;
      seed = scale.seed;
      snapshot_window = scale.snapshot_window;
    }
  in
  let setup =
    match scale.strategy with
    | None -> setup
    | Some strategy ->
        {
          setup with
          Runner.policy =
            Some { Euno_htm.Htm.default_policy with Euno_htm.Htm.strategy };
        }
  in
  match scale.capacity with
  | None -> setup
  | Some cm ->
      { setup with Runner.cost = Euno_sim.Cost.with_capacity setup.Runner.cost cm }

let run scale kind ~dist ~mix ~threads =
  Runner.run kind (workload_of scale dist mix) (setup_of scale threads)

let theta_label theta = Printf.sprintf "theta=%.2f" theta

(* Optional CSV sink: when set, every printed table is also written to
   <dir>/<slug>.csv (output formatting only; no effect on the runs). *)
let csv_dir : string option ref = ref None

let emit table =
  Table.print table;
  match !csv_dir with
  | None -> ()
  | Some dir ->
      let path = Filename.concat dir (Table.slug table ^ ".csv") in
      let oc = open_out path in
      output_string oc (Table.to_csv table);
      close_out oc

(* ---------- Figure 1: HTM-B+Tree throughput vs contention ---------- *)

let fig1 scale =
  let t =
    Table.create ~title:"Figure 1: HTM-B+Tree throughput under contention (16 threads)"
      ~headers:[ "skew"; "Mops/s"; "aborts/op"; "wasted CPU" ]
  in
  List.iter
    (fun theta ->
      let r =
        run scale Kv.Htm_bptree ~dist:(Dist.Zipfian theta)
          ~mix:Opgen.ycsb_default ~threads:16
      in
      Table.add_row t
        [
          theta_label theta;
          Table.cell_f r.Runner.r_mops;
          Table.cell_f r.Runner.r_aborts_per_op;
          Table.cell_pct r.Runner.r_wasted_pct;
        ])
    theta_sweep;
  emit t

(* ---------- Figure 2: abort decomposition vs contention ---------- *)

let fig2 scale =
  let t =
    Table.create
      ~title:
        "Figure 2: HTM-B+Tree aborts by cause (aborts/op; shares of conflict aborts)"
      ~headers:
        [
          "skew";
          "aborts/op";
          "false:diff-record";
          "false:metadata";
          "true:same-record";
          "lock-subscr";
          "other";
        ]
  in
  List.iter
    (fun theta ->
      let r =
        run scale Kv.Htm_bptree ~dist:(Dist.Zipfian theta)
          ~mix:Opgen.ycsb_default ~threads:16
      in
      let conflicts =
        Runner.class_true r +. Runner.class_false_record r
        +. Runner.class_false_meta r
      in
      let share x =
        if conflicts <= 0.0 then "-"
        else Printf.sprintf "%s (%.0f%%)" (Table.cell_f x) (100.0 *. x /. conflicts)
      in
      Table.add_row t
        [
          theta_label theta;
          Table.cell_f r.Runner.r_aborts_per_op;
          share (Runner.class_false_record r);
          share (Runner.class_false_meta r);
          share (Runner.class_true r);
          Table.cell_f (Runner.class_subscription r);
          Table.cell_f (Runner.class_other r);
        ])
    theta_sweep;
  emit t

(* ---------- Figure 8: throughput of the four trees vs contention ----- *)

let fig8 scale =
  let t =
    Table.create
      ~title:"Figure 8: throughput under different contention rates (16 threads, Mops/s)"
      ~headers:
        ("skew" :: List.map Kv.kind_name Kv.all_kinds)
  in
  let columns =
    List.map
      (fun kind ->
        ( Kv.kind_name kind,
          List.map
            (fun theta ->
              (run scale kind ~dist:(Dist.Zipfian theta)
                 ~mix:Opgen.ycsb_default ~threads:16)
                .Runner.r_mops)
            theta_sweep ))
      Kv.all_kinds
  in
  List.iteri
    (fun i theta ->
      Table.add_row t
        (theta_label theta
        :: List.map (fun (_, col) -> Table.cell_f (List.nth col i)) columns))
    theta_sweep;
  emit t;
  if scale.charts then
    Euno_stats.Chart.print ~title:"Figure 8 (Mops/s vs skew)"
      ~x_labels:(List.map theta_label theta_sweep)
      (List.map
         (fun (label, points) -> { Euno_stats.Chart.label; points })
         columns)

(* ---------- Figure 9: aborts per op, Euno vs HTM-B+Tree ---------- *)

let fig9 scale =
  let t =
    Table.create
      ~title:"Figure 9: HTM aborts per operation by cause (16 threads)"
      ~headers:
        [
          "skew";
          "tree";
          "aborts/op";
          "false:diff-record";
          "false:metadata";
          "true:same-record";
          "lock-subscr";
          "other";
        ]
  in
  List.iter
    (fun theta ->
      List.iter
        (fun kind ->
          let r =
            run scale kind ~dist:(Dist.Zipfian theta) ~mix:Opgen.ycsb_default
              ~threads:16
          in
          Table.add_row t
            [
              theta_label theta;
              r.Runner.r_name;
              Table.cell_f r.Runner.r_aborts_per_op;
              Table.cell_f (Runner.class_false_record r);
              Table.cell_f (Runner.class_false_meta r);
              Table.cell_f (Runner.class_true r);
              Table.cell_f (Runner.class_subscription r);
              Table.cell_f (Runner.class_other r);
            ])
        [ Kv.Htm_bptree; Kv.Euno Config.full ])
    [ 0.5; 0.7; 0.9; 0.99 ];
  emit t

(* ---------- Figure 10: scalability panels ---------- *)

let scalability_panel scale ~title ~dist ~mix =
  let t =
    Table.create ~title ~headers:("threads" :: List.map Kv.kind_name Kv.all_kinds)
  in
  let sweep = thread_sweep scale in
  let columns =
    List.map
      (fun kind ->
        ( Kv.kind_name kind,
          List.map
            (fun threads -> (run scale kind ~dist ~mix ~threads).Runner.r_mops)
            sweep ))
      Kv.all_kinds
  in
  List.iteri
    (fun i threads ->
      Table.add_row t
        (string_of_int threads
        :: List.map (fun (_, col) -> Table.cell_f (List.nth col i)) columns))
    sweep;
  emit t;
  if scale.charts then
    Euno_stats.Chart.print ~title:(title ^ " [chart]")
      ~x_labels:(List.map string_of_int sweep)
      (List.map
         (fun (label, points) -> { Euno_stats.Chart.label; points })
         columns)

let fig10 scale =
  List.iter
    (fun (label, theta) ->
      scalability_panel scale
        ~title:
          (Printf.sprintf "Figure 10%s: scalability, %s contention (Zipfian %.2f, Mops/s)"
             (fst label) (snd label) theta)
        ~dist:(Dist.Zipfian theta) ~mix:Opgen.ycsb_default)
    [
      (("a", "low"), 0.2);
      (("b", "modest"), 0.6);
      (("c", "high"), 0.9);
      (("d", "extremely high"), 0.99);
    ]

(* ---------- Figure 11: get/put ratios at theta = 0.9 ---------- *)

let fig11 scale =
  List.iter
    (fun (panel, get_pct) ->
      scalability_panel scale
        ~title:
          (Printf.sprintf
             "Figure 11%s: %d%% get / %d%% put, Zipfian 0.9 (Mops/s)" panel
             get_pct (100 - get_pct))
        ~dist:(Dist.Zipfian 0.9)
        ~mix:(Opgen.read_write ~get_pct))
    [ ("a", 0); ("b", 20); ("c", 50); ("d", 70) ]

(* ---------- Figure 12: input distributions ---------- *)

let fig12 scale =
  List.iter
    (fun (panel, name, dist) ->
      scalability_panel scale
        ~title:(Printf.sprintf "Figure 12%s: %s distribution (Mops/s)" panel name)
        ~dist ~mix:Opgen.ycsb_default)
    [
      ("a", "Poisson",
       Dist.Poisson_hotspot { hot_frac = 0.1; hot_mass = 0.7 });
      ("b", "Normal", Dist.Normal_hotspot { sigma_frac = 0.003 });
      (* sigma covers a few dozen leaves: the paper sets the mean over "a
         moving range of leaf nodes", i.e. a very tight cluster *)
      ("c", "Self-Similar", Dist.Self_similar 0.2);
      ("d", "Zipfian (0.9)", Dist.Zipfian 0.9);
    ]

(* ---------- Figure 13: design-choice ablation ---------- *)

let fig13 scale =
  List.iter
    (fun (label, theta) ->
      let t =
        Table.create
          ~title:
            (Printf.sprintf "Figure 13 (%s contention, Zipfian %.2f, 20 threads)"
               label theta)
          ~headers:[ "design"; "Mops/s"; "relative"; "aborts/op" ]
      in
      let base =
        run scale Kv.Htm_bptree ~dist:(Dist.Zipfian theta)
          ~mix:Opgen.ycsb_default ~threads:20
      in
      Table.add_row t
        [
          "Baseline";
          Table.cell_f base.Runner.r_mops;
          "1.00x";
          Table.cell_f base.Runner.r_aborts_per_op;
        ];
      List.iter
        (fun (name, cfg) ->
          let r =
            run scale (Kv.Euno cfg) ~dist:(Dist.Zipfian theta)
              ~mix:Opgen.ycsb_default ~threads:20
          in
          Table.add_row t
            [
              name;
              Table.cell_f r.Runner.r_mops;
              Printf.sprintf "%.2fx" (r.Runner.r_mops /. base.Runner.r_mops);
              Table.cell_f r.Runner.r_aborts_per_op;
            ])
        Config.ablation_ladder;
      emit t)
    [ ("high", 0.9); ("extreme", 0.99); ("low", 0.2) ]

(* ---------- Section 5.7: memory consumption ---------- *)

let mem_row scale ~label ~dist ~mix =
  let euno =
    run scale (Kv.Euno Config.full) ~dist ~mix ~threads:16
  in
  let base = run scale Kv.Htm_bptree ~dist ~mix ~threads:16 in
  let b = float_of_int base.Runner.r_mem_live_bytes in
  let e = float_of_int euno.Runner.r_mem_live_bytes in
  [
    label;
    Printf.sprintf "%.2f" (e /. 1048576.0);
    Printf.sprintf "%.2f" (b /. 1048576.0);
    Table.cell_pct (100.0 *. (e -. b) /. b);
    Printf.sprintf "%.1f" (float_of_int euno.Runner.r_mem_reserved_peak_bytes /. 1024.0);
    Table.cell_pct
      (100.0 *. float_of_int euno.Runner.r_mem_reserved_peak_bytes /. e);
    Table.cell_pct (100.0 *. float_of_int euno.Runner.r_mem_lock_bytes /. e);
  ]

let mem scale =
  let t =
    Table.create
      ~title:
        "Section 5.7: memory consumption (Euno vs HTM-B+Tree; reserved keys are transient)"
      ~headers:
        [
          "workload";
          "euno MB";
          "base MB";
          "total ovh";
          "reserved peak KB";
          "reserved ovh";
          "CCM+locks ovh";
        ]
  in
  List.iter
    (fun theta ->
      Table.add_row t
        (mem_row scale
           ~label:(Printf.sprintf "zipf %.1f 50/50" theta)
           ~dist:(Dist.Zipfian theta) ~mix:Opgen.ycsb_default))
    [ 0.0; 0.5; 0.9 ];
  List.iter
    (fun get_pct ->
      Table.add_row t
        (mem_row scale
           ~label:(Printf.sprintf "zipf 0.9 %d/%d" get_pct (100 - get_pct))
           ~dist:(Dist.Zipfian 0.9)
           ~mix:(Opgen.read_write ~get_pct)))
    [ 20; 80 ];
  List.iter
    (fun (name, dist) ->
      Table.add_row t
        (mem_row scale ~label:name ~dist ~mix:Opgen.ycsb_default))
    [
      ("self-similar", Dist.Self_similar 0.2);
      ("poisson", Dist.Poisson_hotspot { hot_frac = 0.1; hot_mass = 0.7 });
      ("uniform", Dist.Uniform);
    ];
  emit t

(* ---------- extensions beyond the paper ---------- *)

(* Per-operation latency percentiles: a dimension the paper does not
   report, but the natural companion to its throughput story — the
   monolithic tree's collapse shows up as a two-order-of-magnitude p99
   blow-up while Eunomia's tail stays flat. *)
let latency scale =
  let t =
    Table.create
      ~title:"Extension: per-op latency (simulated cycles; 16 threads)"
      ~headers:[ "workload"; "tree"; "p50"; "p99"; "Mops/s" ]
  in
  List.iter
    (fun theta ->
      List.iter
        (fun kind ->
          let r =
            run scale kind ~dist:(Dist.Zipfian theta) ~mix:Opgen.ycsb_default
              ~threads:16
          in
          Table.add_row t
            [
              theta_label theta;
              r.Runner.r_name;
              Table.cell_i r.Runner.r_lat_p50;
              Table.cell_i r.Runner.r_lat_p99;
              Table.cell_f r.Runner.r_mops;
            ])
        Kv.all_kinds)
    [ 0.2; 0.9 ];
  emit t

(* Retry-policy ablation: the collapse mechanism.  The paper-era policy
   (small conflict budget, naive retry against a held fallback lock)
   suffers the lemming effect; the post-fix "polite" policy (wait for the
   lock outside the transaction) resists it on the same tree. *)
let policy scale =
  let t =
    Table.create
      ~title:
        "Extension: HTM-B+Tree under DBX-era vs post-lemming-fix retry policy (16 threads)"
      ~headers:
        [
          "skew"; "policy"; "Mops/s"; "aborts/op"; "fallbacks/op"; "wasted";
          "convoys/op"; "starv/op";
        ]
  in
  List.iter
    (fun theta ->
      List.iter
        (fun (name, p) ->
          let workload = workload_of scale (Dist.Zipfian theta) Opgen.ycsb_default in
          let setup =
            { (setup_of scale 16) with Runner.policy = Some p }
          in
          let r = Runner.run Kv.Htm_bptree workload setup in
          Table.add_row t
            [
              theta_label theta;
              name;
              Table.cell_f r.Runner.r_mops;
              Table.cell_f r.Runner.r_aborts_per_op;
              Table.cell_f r.Runner.r_fallbacks_per_op;
              Table.cell_pct r.Runner.r_wasted_pct;
              Table.cell_f r.Runner.r_convoy_events_per_op;
              Table.cell_f r.Runner.r_starvation_backoffs_per_op;
            ])
        [
          ("dbx-era", Euno_htm.Htm.default_policy);
          ("polite", Euno_htm.Htm.polite_policy);
        ])
    [ 0.2; 0.9; 0.99 ];
  emit t

(* YCSB core workloads A-F across the four trees: the harness exercising
   its full op vocabulary (reads, updates, scans, read-modify-writes,
   recency-skewed inserts). *)
let ycsb scale =
  let t =
    Table.create
      ~title:"Extension: YCSB core workloads A-F (zipfian 0.9 unless noted; 16 threads, Mops/s)"
      ~headers:("workload" :: List.map Kv.kind_name Kv.all_kinds)
  in
  let presets =
    [
      ("A 50/50 update", Dist.Zipfian 0.9, Opgen.ycsb_a);
      ("B 95/5 read-mostly", Dist.Zipfian 0.9, Opgen.ycsb_b);
      ("C read-only", Dist.Zipfian 0.9, Opgen.ycsb_c);
      ("D read-latest", Dist.Latest 0.9, Opgen.ycsb_d);
      ("E scan-heavy", Dist.Zipfian 0.9, Opgen.ycsb_e);
      ("F read-modify-write", Dist.Zipfian 0.9, Opgen.ycsb_f);
    ]
  in
  List.iter
    (fun (name, dist, mix) ->
      let cells =
        List.map
          (fun kind ->
            let r = run scale kind ~dist ~mix ~threads:16 in
            Table.cell_f r.Runner.r_mops)
          Kv.all_kinds
      in
      Table.add_row t (name :: cells))
    presets;
  emit t

(* Design-choice ablation the paper does not show: how many segments
   should a leaf have?  One segment is the conventional layout; more
   segments scatter contended keys across more cache lines but cost more
   search probes. *)
let segments scale =
  let t =
    Table.create
      ~title:"Extension: Euno-B+Tree segments-per-leaf ablation (16 threads, Mops/s)"
      ~headers:[ "layout"; "low (zipf 0.2)"; "high (zipf 0.9)" ]
  in
  List.iter
    (fun (nsegs, seg_slots) ->
      let cfg =
        Config.validate
          { Config.full with Config.nsegs; seg_slots }
      in
      let cell theta =
        let r =
          run scale (Kv.Euno cfg) ~dist:(Dist.Zipfian theta)
            ~mix:Opgen.ycsb_default ~threads:16
        in
        Table.cell_f r.Runner.r_mops
      in
      Table.add_row t
        [
          Printf.sprintf "%d segs x %d slots" nsegs seg_slots;
          cell 0.2;
          cell 0.9;
        ])
    [ (1, 15); (3, 5); (5, 3); (7, 2) ];
  emit t

(* What lock elision buys: the same conventional tree under a plain
   global spinlock (flat), under the elided lock (scales until the storm),
   and the Euno-B+Tree. *)
let coarse scale =
  let t =
    Table.create
      ~title:"Extension: coarse lock vs lock elision vs Eunomia (zipf 0.2, Mops/s)"
      ~headers:[ "threads"; "Lock-B+Tree"; "HTM-B+Tree"; "Euno-B+Tree" ]
  in
  List.iter
    (fun threads ->
      let cell kind =
        let r =
          run scale kind ~dist:(Dist.Zipfian 0.2) ~mix:Opgen.ycsb_default
            ~threads
        in
        Table.cell_f r.Runner.r_mops
      in
      Table.add_row t
        [
          string_of_int threads;
          cell Kv.Lock_bptree;
          cell Kv.Htm_bptree;
          cell (Kv.Euno Config.full);
        ])
    (thread_sweep scale);
  emit t

(* Schedule sensitivity: every run is deterministic per seed, so variance
   across seeds is the simulator's analogue of run-to-run noise. *)
let variance scale =
  let t =
    Table.create
      ~title:"Extension: throughput variation over 5 seeds (16 threads, Mops/s)"
      ~headers:[ "workload"; "tree"; "mean"; "stddev"; "min"; "max" ]
  in
  List.iter
    (fun theta ->
      List.iter
        (fun kind ->
          let a =
            Runner.run_many ~seeds:5 kind
              (workload_of scale (Dist.Zipfian theta) Opgen.ycsb_default)
              (setup_of scale 16)
          in
          Table.add_row t
            [
              theta_label theta;
              Kv.kind_name kind;
              Table.cell_f a.Runner.a_mean_mops;
              Table.cell_f a.Runner.a_stddev_mops;
              Table.cell_f a.Runner.a_min_mops;
              Table.cell_f a.Runner.a_max_mops;
            ])
        [ Kv.Euno Config.full; Kv.Htm_bptree ])
    [ 0.2; 0.9 ];
  emit t

(* Does key adjacency matter?  The paper's false-sharing analysis assumes
   hot keys are consecutive; YCSB's scrambled variant hashes them apart.
   Comparing both isolates how much of the baseline's collapse is
   same-line sharing between *different* hot records. *)
let adjacency scale =
  let t =
    Table.create
      ~title:
        "Extension: adjacent vs scrambled hot keys (zipf 0.9, 16 threads)"
      ~headers:[ "tree"; "keys"; "Mops/s"; "aborts/op"; "false:diff-record" ]
  in
  List.iter
    (fun kind ->
      List.iter
        (fun (label, scrambled) ->
          let workload =
            {
              (workload_of scale (Dist.Zipfian 0.9) Opgen.ycsb_default) with
              Runner.scrambled;
            }
          in
          let r = Runner.run kind workload (setup_of scale 16) in
          Table.add_row t
            [
              r.Runner.r_name;
              label;
              Table.cell_f r.Runner.r_mops;
              Table.cell_f r.Runner.r_aborts_per_op;
              Table.cell_f (Runner.class_false_record r);
            ])
        [ ("adjacent", false); ("scrambled", true) ])
    [ Kv.Htm_bptree; Kv.Euno Config.full ];
  emit t

(* Replicate the paper's own Figure 2 estimation methodology — modify the
   workload so no two threads ever touch the same record (interleaved
   partitions keep hot keys adjacent) — and cross-validate it against the
   simulator's exact attribution. *)
let methodology scale =
  let t =
    Table.create
      ~title:
        "Extension: paper's Fig.2 methodology (partitioned keys) vs exact attribution (16 threads)"
      ~headers:
        [ "skew"; "keys"; "Mops/s"; "aborts/op"; "true:same-record" ]
  in
  List.iter
    (fun theta ->
      List.iter
        (fun (label, partitioned) ->
          let workload =
            {
              (workload_of scale (Dist.Zipfian theta) Opgen.ycsb_default) with
              Runner.partitioned;
            }
          in
          let r = Runner.run Kv.Htm_bptree workload (setup_of scale 16) in
          Table.add_row t
            [
              theta_label theta;
              label;
              Table.cell_f r.Runner.r_mops;
              Table.cell_f r.Runner.r_aborts_per_op;
              Table.cell_f (Runner.class_true r);
            ])
        [ ("shared", false); ("partitioned", true) ])
    [ 0.8; 0.9; 0.99 ];
  emit t

(* ---------- strategy-sweep: {strategy} x {capacity} campaign ---------- *)

(* The Figure 1/8/10 cells re-run as the full {elision, three-path,
   lockfree} x {nominal, limited-read, coarse-grain} matrix.  The tables
   come out as GitHub markdown (they are comparison artifacts for
   EXPERIMENTS.md, not paper-figure reproductions) and every cell also
   lands in [sweep_acc] as a schema-validated "sweep" record, which
   euno_repro flushes into the --json document. *)

let sweep_acc : Report.Json.t list ref = ref []
let sweep_records () = List.rev !sweep_acc

let sweep_combos =
  List.concat_map
    (fun s -> List.map (fun (_, cm) -> (s, cm)) Euno_sim.Cost.capacity_models)
    Euno_htm.Htm.all_strategies

let combo_label (s, cm) =
  Printf.sprintf "%s/%s" (Euno_htm.Htm.strategy_name s) cm.Euno_sim.Cost.cm_name

(* Reduced cell sets: enough thetas/threads for the collapse shape to
   move, small enough that 9 combos per cell stay tractable. *)
let sweep_fig1_thetas = [ 0.0; 0.6; 0.9; 0.99 ]
let sweep_fig8_thetas = [ 0.2; 0.9 ]
let sweep_fig10_thetas = [ 0.2; 0.9 ]
let sweep_fig10_kinds = [ Kv.Htm_bptree; Kv.Euno Config.full ]
let sweep_fig10_threads scale =
  List.filter (fun t -> t <= scale.max_threads) [ 1; 4; 16 ]

let markdown_table ~title ~headers rows =
  Printf.printf "\n### %s\n\n" title;
  Printf.printf "| %s |\n" (String.concat " | " headers);
  Printf.printf "|%s|\n" (String.concat "|" (List.map (fun _ -> " --- ") headers));
  List.iter
    (fun row -> Printf.printf "| %s |\n" (String.concat " | " row))
    rows

let sweep_cell scale ~figure ~kind ~theta ~threads (s, cm) =
  let scale = { scale with strategy = Some s; capacity = Some cm } in
  let r =
    run scale kind ~dist:(Dist.Zipfian theta) ~mix:Opgen.ycsb_default ~threads
  in
  sweep_acc := Report.sweep_to_json ~figure ~theta r :: !sweep_acc;
  r

let strategy_sweep scale =
  sweep_acc := [];
  let headers = "cell" :: List.map combo_label sweep_combos in
  let mops rs = List.map (fun r -> Table.cell_f r.Runner.r_mops) rs in
  (* Figure 1 cells: the HTM-B+Tree contention storm at 16 threads.  Two
     tables, because the strategies differ most in *how* they spend the
     storm: throughput, then fallback entries per op. *)
  let fig1_rows =
    List.map
      (fun theta ->
        ( theta_label theta,
          List.map
            (sweep_cell scale ~figure:"fig1" ~kind:Kv.Htm_bptree ~theta
               ~threads:16)
            sweep_combos ))
      sweep_fig1_thetas
  in
  markdown_table
    ~title:"Strategy sweep, Figure 1 cells: HTM-B+Tree Mops/s (16 threads)"
    ~headers
    (List.map (fun (label, rs) -> label :: mops rs) fig1_rows);
  markdown_table
    ~title:"Strategy sweep, Figure 1 cells: fallbacks/op (16 threads)"
    ~headers
    (List.map
       (fun (label, rs) ->
         label
         :: List.map (fun r -> Table.cell_f r.Runner.r_fallbacks_per_op) rs)
       fig1_rows);
  (* Figure 8 cells: all four trees at low and high contention. *)
  let fig8_rows =
    List.concat_map
      (fun kind ->
        List.map
          (fun theta ->
            ( Printf.sprintf "%s %s" (Kv.kind_name kind) (theta_label theta),
              List.map
                (sweep_cell scale ~figure:"fig8" ~kind ~theta ~threads:16)
                sweep_combos ))
          sweep_fig8_thetas)
      Kv.all_kinds
  in
  markdown_table
    ~title:"Strategy sweep, Figure 8 cells: Mops/s (16 threads)" ~headers
    (List.map (fun (label, rs) -> label :: mops rs) fig8_rows);
  (* Figure 10 cells: scalability of the two B+Trees whose fallback
     discipline the strategies actually change. *)
  let fig10_rows =
    List.concat_map
      (fun kind ->
        List.concat_map
          (fun theta ->
            List.map
              (fun threads ->
                ( Printf.sprintf "%s %s t=%d" (Kv.kind_name kind)
                    (theta_label theta) threads,
                  List.map
                    (sweep_cell scale ~figure:"fig10" ~kind ~theta ~threads)
                    sweep_combos ))
              (sweep_fig10_threads scale))
          sweep_fig10_thetas)
      sweep_fig10_kinds
  in
  markdown_table ~title:"Strategy sweep, Figure 10 cells: Mops/s" ~headers
    (List.map (fun (label, rs) -> label :: mops rs) fig10_rows)

(* ---------- everything ---------- *)

let all scale =
  fig1 scale;
  print_newline ();
  fig2 scale;
  print_newline ();
  fig8 scale;
  print_newline ();
  fig9 scale;
  print_newline ();
  fig10 scale;
  print_newline ();
  fig11 scale;
  print_newline ();
  fig12 scale;
  print_newline ();
  fig13 scale;
  print_newline ();
  mem scale;
  print_newline ();
  latency scale;
  print_newline ();
  policy scale;
  print_newline ();
  ycsb scale;
  print_newline ();
  segments scale;
  print_newline ();
  coarse scale;
  print_newline ();
  variance scale;
  print_newline ();
  adjacency scale;
  print_newline ();
  methodology scale

let by_name =
  [
    ("fig1", fig1);
    ("fig2", fig2);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("mem", mem);
    ("latency", latency);
    ("policy", policy);
    ("ycsb", ycsb);
    ("segments", segments);
    ("coarse", coarse);
    ("variance", variance);
    ("adjacency", adjacency);
    ("methodology", methodology);
    ("strategy-sweep", strategy_sweep);
    ("all", all);
  ]
