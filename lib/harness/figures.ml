(* One function per figure of the paper's evaluation (plus the Section 5.7
   memory analysis), each printing the table its plot is drawn from.
   Scale knobs shrink the runs for smoke tests; shapes, not absolute
   numbers, are the reproduction target (see EXPERIMENTS.md).

   Every figure separates compute from render: it first enumerates its
   simulation cells in the canonical (historical, sequential) order, runs
   them through [Pool.map] — sequential by default, fanned across worker
   domains under [--domains N] — and only then builds its tables from the
   merged results on the main domain.  Output is byte-identical at any
   domain count: the pool merges in enumeration order, rendering happens
   on one domain, and each cell's telemetry is replayed in cell order. *)

module Dist = Euno_workload.Dist
module Opgen = Euno_workload.Opgen
module Config = Eunomia.Config
module Table = Euno_stats.Table

type scale = {
  key_space : int;
  ops_per_thread : int;
  max_threads : int;
  seed : int;
  charts : bool; (* also render ASCII charts after the tables *)
  snapshot_window : int option;
      (* sample machine counters every N simulated cycles (telemetry) *)
  strategy : Euno_htm.Htm.strategy option;
      (* force every run's fallback strategy (None = the trees' default
         elision policy, byte-identical to the historical runs) *)
  capacity : Euno_sim.Cost.capacity_model option;
      (* force the capacity/conflict model (None = the setup's default) *)
}

let default_scale =
  {
    key_space = 1 lsl 17;
    ops_per_thread = 2500;
    max_threads = 20;
    seed = 42;
    charts = false;
    snapshot_window = None;
    strategy = None;
    capacity = None;
  }

let quick_scale = { default_scale with key_space = 1 lsl 12; ops_per_thread = 400; max_threads = 8 }

let theta_sweep = [ 0.0; 0.2; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 0.99 ]

let thread_sweep scale =
  List.filter (fun t -> t <= scale.max_threads) [ 1; 2; 4; 8; 12; 16; 20 ]

let workload_of scale dist mix =
  { Runner.default_workload with Runner.dist; mix; key_space = scale.key_space }

let setup_of scale threads =
  let setup =
    {
      Runner.default_setup with
      Runner.threads = min threads scale.max_threads;
      ops_per_thread = scale.ops_per_thread;
      seed = scale.seed;
      snapshot_window = scale.snapshot_window;
    }
  in
  let setup =
    match scale.strategy with
    | None -> setup
    | Some strategy ->
        {
          setup with
          Runner.policy =
            Some { Euno_htm.Htm.default_policy with Euno_htm.Htm.strategy };
        }
  in
  match scale.capacity with
  | None -> setup
  | Some cm ->
      { setup with Runner.cost = Euno_sim.Cost.with_capacity setup.Runner.cost cm }

let run scale kind ~dist ~mix ~threads =
  Runner.run kind (workload_of scale dist mix) (setup_of scale threads)

let theta_label theta = Printf.sprintf "theta=%.2f" theta

(* Split [l] into consecutive groups of [n] (render-side regrouping of a
   flat pool result list back into a figure's rows/columns). *)
let chunk n l =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
        if k = n then go (List.rev cur :: acc) [ x ] 1 rest
        else go acc (x :: cur) (k + 1) rest
  in
  if n <= 0 then invalid_arg "Figures.chunk" else go [] [] 0 l

(* Optional CSV sink: when set, every printed table is also written to
   <dir>/<slug>.csv (output formatting only; no effect on the runs). *)
(* euno-lint: allow domain-shared-state: main-domain rendering state, never touched inside a pool cell *)
let csv_dir : string option ref = ref None

let emit table =
  Table.print table;
  match !csv_dir with
  | None -> ()
  | Some dir ->
      let path = Filename.concat dir (Table.slug table ^ ".csv") in
      let oc = open_out path in
      output_string oc (Table.to_csv table);
      close_out oc

(* ---------- Figure 1: HTM-B+Tree throughput vs contention ---------- *)

let fig1 ?domains scale =
  let rs =
    Pool.map ?domains
      (fun theta ->
        run scale Kv.Htm_bptree ~dist:(Dist.Zipfian theta)
          ~mix:Opgen.ycsb_default ~threads:16)
      theta_sweep
  in
  let t =
    Table.create ~title:"Figure 1: HTM-B+Tree throughput under contention (16 threads)"
      ~headers:[ "skew"; "Mops/s"; "aborts/op"; "wasted CPU" ]
  in
  List.iter2
    (fun theta r ->
      Table.add_row t
        [
          theta_label theta;
          Table.cell_f r.Runner.r_mops;
          Table.cell_f r.Runner.r_aborts_per_op;
          Table.cell_pct r.Runner.r_wasted_pct;
        ])
    theta_sweep rs;
  emit t

(* ---------- Figure 2: abort decomposition vs contention ---------- *)

let fig2 ?domains scale =
  let rs =
    Pool.map ?domains
      (fun theta ->
        run scale Kv.Htm_bptree ~dist:(Dist.Zipfian theta)
          ~mix:Opgen.ycsb_default ~threads:16)
      theta_sweep
  in
  let t =
    Table.create
      ~title:
        "Figure 2: HTM-B+Tree aborts by cause (aborts/op; shares of conflict aborts)"
      ~headers:
        [
          "skew";
          "aborts/op";
          "false:diff-record";
          "false:metadata";
          "true:same-record";
          "lock-subscr";
          "other";
        ]
  in
  List.iter2
    (fun theta r ->
      let conflicts =
        Runner.class_true r +. Runner.class_false_record r
        +. Runner.class_false_meta r
      in
      let share x =
        if conflicts <= 0.0 then "-"
        else Printf.sprintf "%s (%.0f%%)" (Table.cell_f x) (100.0 *. x /. conflicts)
      in
      Table.add_row t
        [
          theta_label theta;
          Table.cell_f r.Runner.r_aborts_per_op;
          share (Runner.class_false_record r);
          share (Runner.class_false_meta r);
          share (Runner.class_true r);
          Table.cell_f (Runner.class_subscription r);
          Table.cell_f (Runner.class_other r);
        ])
    theta_sweep rs;
  emit t

(* ---------- Figure 8: throughput of the four trees vs contention ----- *)

let fig8 ?domains scale =
  let t =
    Table.create
      ~title:"Figure 8: throughput under different contention rates (16 threads, Mops/s)"
      ~headers:
        ("skew" :: List.map Kv.kind_name Kv.all_kinds)
  in
  let cells =
    List.concat_map
      (fun kind -> List.map (fun theta -> (kind, theta)) theta_sweep)
      Kv.all_kinds
  in
  let rs =
    Pool.map ?domains
      (fun (kind, theta) ->
        (run scale kind ~dist:(Dist.Zipfian theta) ~mix:Opgen.ycsb_default
           ~threads:16)
          .Runner.r_mops)
      cells
  in
  let columns =
    List.map2
      (fun kind col -> (Kv.kind_name kind, col))
      Kv.all_kinds
      (chunk (List.length theta_sweep) rs)
  in
  List.iteri
    (fun i theta ->
      Table.add_row t
        (theta_label theta
        :: List.map (fun (_, col) -> Table.cell_f (List.nth col i)) columns))
    theta_sweep;
  emit t;
  if scale.charts then
    Euno_stats.Chart.print ~title:"Figure 8 (Mops/s vs skew)"
      ~x_labels:(List.map theta_label theta_sweep)
      (List.map
         (fun (label, points) -> { Euno_stats.Chart.label; points })
         columns)

(* ---------- Figure 9: aborts per op, Euno vs HTM-B+Tree ---------- *)

let fig9 ?domains scale =
  let t =
    Table.create
      ~title:"Figure 9: HTM aborts per operation by cause (16 threads)"
      ~headers:
        [
          "skew";
          "tree";
          "aborts/op";
          "false:diff-record";
          "false:metadata";
          "true:same-record";
          "lock-subscr";
          "other";
        ]
  in
  let cells =
    List.concat_map
      (fun theta ->
        List.map (fun kind -> (theta, kind)) [ Kv.Htm_bptree; Kv.Euno Config.full ])
      [ 0.5; 0.7; 0.9; 0.99 ]
  in
  let rs =
    Pool.map ?domains
      (fun (theta, kind) ->
        run scale kind ~dist:(Dist.Zipfian theta) ~mix:Opgen.ycsb_default
          ~threads:16)
      cells
  in
  List.iter2
    (fun (theta, _) r ->
      Table.add_row t
        [
          theta_label theta;
          r.Runner.r_name;
          Table.cell_f r.Runner.r_aborts_per_op;
          Table.cell_f (Runner.class_false_record r);
          Table.cell_f (Runner.class_false_meta r);
          Table.cell_f (Runner.class_true r);
          Table.cell_f (Runner.class_subscription r);
          Table.cell_f (Runner.class_other r);
        ])
    cells rs;
  emit t

(* ---------- Figure 10: scalability panels ---------- *)

let scalability_panel ?domains scale ~title ~dist ~mix =
  let t =
    Table.create ~title ~headers:("threads" :: List.map Kv.kind_name Kv.all_kinds)
  in
  let sweep = thread_sweep scale in
  let cells =
    List.concat_map
      (fun kind -> List.map (fun threads -> (kind, threads)) sweep)
      Kv.all_kinds
  in
  let rs =
    Pool.map ?domains
      (fun (kind, threads) -> (run scale kind ~dist ~mix ~threads).Runner.r_mops)
      cells
  in
  let columns =
    List.map2
      (fun kind col -> (Kv.kind_name kind, col))
      Kv.all_kinds
      (chunk (List.length sweep) rs)
  in
  List.iteri
    (fun i threads ->
      Table.add_row t
        (string_of_int threads
        :: List.map (fun (_, col) -> Table.cell_f (List.nth col i)) columns))
    sweep;
  emit t;
  if scale.charts then
    Euno_stats.Chart.print ~title:(title ^ " [chart]")
      ~x_labels:(List.map string_of_int sweep)
      (List.map
         (fun (label, points) -> { Euno_stats.Chart.label; points })
         columns)

let fig10 ?domains scale =
  List.iter
    (fun (label, theta) ->
      scalability_panel ?domains scale
        ~title:
          (Printf.sprintf "Figure 10%s: scalability, %s contention (Zipfian %.2f, Mops/s)"
             (fst label) (snd label) theta)
        ~dist:(Dist.Zipfian theta) ~mix:Opgen.ycsb_default)
    [
      (("a", "low"), 0.2);
      (("b", "modest"), 0.6);
      (("c", "high"), 0.9);
      (("d", "extremely high"), 0.99);
    ]

(* ---------- Figure 11: get/put ratios at theta = 0.9 ---------- *)

let fig11 ?domains scale =
  List.iter
    (fun (panel, get_pct) ->
      scalability_panel ?domains scale
        ~title:
          (Printf.sprintf
             "Figure 11%s: %d%% get / %d%% put, Zipfian 0.9 (Mops/s)" panel
             get_pct (100 - get_pct))
        ~dist:(Dist.Zipfian 0.9)
        ~mix:(Opgen.read_write ~get_pct))
    [ ("a", 0); ("b", 20); ("c", 50); ("d", 70) ]

(* ---------- Figure 12: input distributions ---------- *)

let fig12 ?domains scale =
  List.iter
    (fun (panel, name, dist) ->
      scalability_panel ?domains scale
        ~title:(Printf.sprintf "Figure 12%s: %s distribution (Mops/s)" panel name)
        ~dist ~mix:Opgen.ycsb_default)
    [
      ("a", "Poisson",
       Dist.Poisson_hotspot { hot_frac = 0.1; hot_mass = 0.7 });
      ("b", "Normal", Dist.Normal_hotspot { sigma_frac = 0.003 });
      (* sigma covers a few dozen leaves: the paper sets the mean over "a
         moving range of leaf nodes", i.e. a very tight cluster *)
      ("c", "Self-Similar", Dist.Self_similar 0.2);
      ("d", "Zipfian (0.9)", Dist.Zipfian 0.9);
    ]

(* ---------- Figure 13: design-choice ablation ---------- *)

let fig13 ?domains scale =
  let thetas = [ ("high", 0.9); ("extreme", 0.99); ("low", 0.2) ] in
  let ladder = Config.ablation_ladder in
  (* One cell per (theta, design): the baseline run first, then the
     ablation ladder, exactly the sequential order. *)
  let cells =
    List.concat_map
      (fun (_, theta) ->
        (theta, None)
        :: List.map (fun (_, cfg) -> (theta, Some cfg)) ladder)
      thetas
  in
  let rs =
    Pool.map ?domains
      (fun (theta, design) ->
        let kind =
          match design with None -> Kv.Htm_bptree | Some cfg -> Kv.Euno cfg
        in
        run scale kind ~dist:(Dist.Zipfian theta) ~mix:Opgen.ycsb_default
          ~threads:20)
      cells
  in
  List.iter2
    (fun (label, theta) group ->
      let t =
        Table.create
          ~title:
            (Printf.sprintf "Figure 13 (%s contention, Zipfian %.2f, 20 threads)"
               label theta)
          ~headers:[ "design"; "Mops/s"; "relative"; "aborts/op" ]
      in
      match group with
      | base :: ladder_rs ->
          Table.add_row t
            [
              "Baseline";
              Table.cell_f base.Runner.r_mops;
              "1.00x";
              Table.cell_f base.Runner.r_aborts_per_op;
            ];
          List.iter2
            (fun (name, _) r ->
              Table.add_row t
                [
                  name;
                  Table.cell_f r.Runner.r_mops;
                  Printf.sprintf "%.2fx" (r.Runner.r_mops /. base.Runner.r_mops);
                  Table.cell_f r.Runner.r_aborts_per_op;
                ])
            ladder ladder_rs;
          emit t
      | [] -> assert false)
    thetas
    (chunk (1 + List.length ladder) rs)

(* ---------- Section 5.7: memory consumption ---------- *)

let mem_row scale ~label ~dist ~mix =
  let euno =
    run scale (Kv.Euno Config.full) ~dist ~mix ~threads:16
  in
  let base = run scale Kv.Htm_bptree ~dist ~mix ~threads:16 in
  let b = float_of_int base.Runner.r_mem_live_bytes in
  let e = float_of_int euno.Runner.r_mem_live_bytes in
  [
    label;
    Printf.sprintf "%.2f" (e /. 1048576.0);
    Printf.sprintf "%.2f" (b /. 1048576.0);
    Table.cell_pct (100.0 *. (e -. b) /. b);
    Printf.sprintf "%.1f" (float_of_int euno.Runner.r_mem_reserved_peak_bytes /. 1024.0);
    Table.cell_pct
      (100.0 *. float_of_int euno.Runner.r_mem_reserved_peak_bytes /. e);
    Table.cell_pct (100.0 *. float_of_int euno.Runner.r_mem_lock_bytes /. e);
  ]

let mem ?domains scale =
  let t =
    Table.create
      ~title:
        "Section 5.7: memory consumption (Euno vs HTM-B+Tree; reserved keys are transient)"
      ~headers:
        [
          "workload";
          "euno MB";
          "base MB";
          "total ovh";
          "reserved peak KB";
          "reserved ovh";
          "CCM+locks ovh";
        ]
  in
  (* One cell per table row (= two runs, Euno first, base second). *)
  let cells =
    List.map
      (fun theta ->
        ( Printf.sprintf "zipf %.1f 50/50" theta,
          Dist.Zipfian theta,
          Opgen.ycsb_default ))
      [ 0.0; 0.5; 0.9 ]
    @ List.map
        (fun get_pct ->
          ( Printf.sprintf "zipf 0.9 %d/%d" get_pct (100 - get_pct),
            Dist.Zipfian 0.9,
            Opgen.read_write ~get_pct ))
        [ 20; 80 ]
    @ List.map
        (fun (name, dist) -> (name, dist, Opgen.ycsb_default))
        [
          ("self-similar", Dist.Self_similar 0.2);
          ("poisson", Dist.Poisson_hotspot { hot_frac = 0.1; hot_mass = 0.7 });
          ("uniform", Dist.Uniform);
        ]
  in
  let rows =
    Pool.map ?domains
      (fun (label, dist, mix) -> mem_row scale ~label ~dist ~mix)
      cells
  in
  List.iter (Table.add_row t) rows;
  emit t

(* ---------- extensions beyond the paper ---------- *)

(* Per-operation latency percentiles: a dimension the paper does not
   report, but the natural companion to its throughput story — the
   monolithic tree's collapse shows up as a two-order-of-magnitude p99
   blow-up while Eunomia's tail stays flat. *)
let latency ?domains scale =
  let t =
    Table.create
      ~title:"Extension: per-op latency (simulated cycles; 16 threads)"
      ~headers:[ "workload"; "tree"; "p50"; "p99"; "Mops/s" ]
  in
  let cells =
    List.concat_map
      (fun theta -> List.map (fun kind -> (theta, kind)) Kv.all_kinds)
      [ 0.2; 0.9 ]
  in
  let rs =
    Pool.map ?domains
      (fun (theta, kind) ->
        run scale kind ~dist:(Dist.Zipfian theta) ~mix:Opgen.ycsb_default
          ~threads:16)
      cells
  in
  List.iter2
    (fun (theta, _) r ->
      Table.add_row t
        [
          theta_label theta;
          r.Runner.r_name;
          Table.cell_i r.Runner.r_lat_p50;
          Table.cell_i r.Runner.r_lat_p99;
          Table.cell_f r.Runner.r_mops;
        ])
    cells rs;
  emit t

(* Retry-policy ablation: the collapse mechanism.  The paper-era policy
   (small conflict budget, naive retry against a held fallback lock)
   suffers the lemming effect; the post-fix "polite" policy (wait for the
   lock outside the transaction) resists it on the same tree. *)
let policy ?domains scale =
  let t =
    Table.create
      ~title:
        "Extension: HTM-B+Tree under DBX-era vs post-lemming-fix retry policy (16 threads)"
      ~headers:
        [
          "skew"; "policy"; "Mops/s"; "aborts/op"; "fallbacks/op"; "wasted";
          "convoys/op"; "starv/op";
        ]
  in
  let cells =
    List.concat_map
      (fun theta ->
        List.map
          (fun (name, p) -> (theta, name, p))
          [
            ("dbx-era", Euno_htm.Htm.default_policy);
            ("polite", Euno_htm.Htm.polite_policy);
          ])
      [ 0.2; 0.9; 0.99 ]
  in
  let rs =
    Pool.map ?domains
      (fun (theta, _, p) ->
        let workload = workload_of scale (Dist.Zipfian theta) Opgen.ycsb_default in
        let setup = { (setup_of scale 16) with Runner.policy = Some p } in
        Runner.run Kv.Htm_bptree workload setup)
      cells
  in
  List.iter2
    (fun (theta, name, _) r ->
      Table.add_row t
        [
          theta_label theta;
          name;
          Table.cell_f r.Runner.r_mops;
          Table.cell_f r.Runner.r_aborts_per_op;
          Table.cell_f r.Runner.r_fallbacks_per_op;
          Table.cell_pct r.Runner.r_wasted_pct;
          Table.cell_f r.Runner.r_convoy_events_per_op;
          Table.cell_f r.Runner.r_starvation_backoffs_per_op;
        ])
    cells rs;
  emit t

(* YCSB core workloads A-F across the four trees: the harness exercising
   its full op vocabulary (reads, updates, scans, read-modify-writes,
   recency-skewed inserts). *)
let ycsb ?domains scale =
  let t =
    Table.create
      ~title:"Extension: YCSB core workloads A-F (zipfian 0.9 unless noted; 16 threads, Mops/s)"
      ~headers:("workload" :: List.map Kv.kind_name Kv.all_kinds)
  in
  let presets =
    [
      ("A 50/50 update", Dist.Zipfian 0.9, Opgen.ycsb_a);
      ("B 95/5 read-mostly", Dist.Zipfian 0.9, Opgen.ycsb_b);
      ("C read-only", Dist.Zipfian 0.9, Opgen.ycsb_c);
      ("D read-latest", Dist.Latest 0.9, Opgen.ycsb_d);
      ("E scan-heavy", Dist.Zipfian 0.9, Opgen.ycsb_e);
      ("F read-modify-write", Dist.Zipfian 0.9, Opgen.ycsb_f);
    ]
  in
  let cells =
    List.concat_map
      (fun (name, dist, mix) ->
        List.map (fun kind -> (name, dist, mix, kind)) Kv.all_kinds)
      presets
  in
  let rs =
    Pool.map ?domains
      (fun (_, dist, mix, kind) ->
        Table.cell_f (run scale kind ~dist ~mix ~threads:16).Runner.r_mops)
      cells
  in
  List.iter2
    (fun (name, _, _) row -> Table.add_row t (name :: row))
    presets
    (chunk (List.length Kv.all_kinds) rs);
  emit t

(* Design-choice ablation the paper does not show: how many segments
   should a leaf have?  One segment is the conventional layout; more
   segments scatter contended keys across more cache lines but cost more
   search probes. *)
let segments ?domains scale =
  let t =
    Table.create
      ~title:"Extension: Euno-B+Tree segments-per-leaf ablation (16 threads, Mops/s)"
      ~headers:[ "layout"; "low (zipf 0.2)"; "high (zipf 0.9)" ]
  in
  let layouts = [ (1, 15); (3, 5); (5, 3); (7, 2) ] in
  let cells =
    List.concat_map
      (fun (nsegs, seg_slots) ->
        List.map (fun theta -> (nsegs, seg_slots, theta)) [ 0.2; 0.9 ])
      layouts
  in
  let rs =
    Pool.map ?domains
      (fun (nsegs, seg_slots, theta) ->
        let cfg =
          Config.validate { Config.full with Config.nsegs; seg_slots }
        in
        Table.cell_f
          (run scale (Kv.Euno cfg) ~dist:(Dist.Zipfian theta)
             ~mix:Opgen.ycsb_default ~threads:16)
            .Runner.r_mops)
      cells
  in
  List.iter2
    (fun (nsegs, seg_slots) row ->
      Table.add_row t
        (Printf.sprintf "%d segs x %d slots" nsegs seg_slots :: row))
    layouts (chunk 2 rs);
  emit t

(* What lock elision buys: the same conventional tree under a plain
   global spinlock (flat), under the elided lock (scales until the storm),
   and the Euno-B+Tree. *)
let coarse ?domains scale =
  let t =
    Table.create
      ~title:"Extension: coarse lock vs lock elision vs Eunomia (zipf 0.2, Mops/s)"
      ~headers:[ "threads"; "Lock-B+Tree"; "HTM-B+Tree"; "Euno-B+Tree" ]
  in
  let kinds = [ Kv.Lock_bptree; Kv.Htm_bptree; Kv.Euno Config.full ] in
  let sweep = thread_sweep scale in
  let cells =
    List.concat_map
      (fun threads -> List.map (fun kind -> (threads, kind)) kinds)
      sweep
  in
  let rs =
    Pool.map ?domains
      (fun (threads, kind) ->
        Table.cell_f
          (run scale kind ~dist:(Dist.Zipfian 0.2) ~mix:Opgen.ycsb_default
             ~threads)
            .Runner.r_mops)
      cells
  in
  List.iter2
    (fun threads row -> Table.add_row t (string_of_int threads :: row))
    sweep
    (chunk (List.length kinds) rs);
  emit t

(* Schedule sensitivity: every run is deterministic per seed, so variance
   across seeds is the simulator's analogue of run-to-run noise. *)
let variance ?domains scale =
  let t =
    Table.create
      ~title:"Extension: throughput variation over 5 seeds (16 threads, Mops/s)"
      ~headers:[ "workload"; "tree"; "mean"; "stddev"; "min"; "max" ]
  in
  let cells =
    List.concat_map
      (fun theta ->
        List.map
          (fun kind -> (theta, kind))
          [ Kv.Euno Config.full; Kv.Htm_bptree ])
      [ 0.2; 0.9 ]
  in
  let rs =
    Pool.map ?domains
      (fun (theta, kind) ->
        Runner.run_many ~seeds:5 kind
          (workload_of scale (Dist.Zipfian theta) Opgen.ycsb_default)
          (setup_of scale 16))
      cells
  in
  List.iter2
    (fun (theta, kind) a ->
      Table.add_row t
        [
          theta_label theta;
          Kv.kind_name kind;
          Table.cell_f a.Runner.a_mean_mops;
          Table.cell_f a.Runner.a_stddev_mops;
          Table.cell_f a.Runner.a_min_mops;
          Table.cell_f a.Runner.a_max_mops;
        ])
    cells rs;
  emit t

(* Does key adjacency matter?  The paper's false-sharing analysis assumes
   hot keys are consecutive; YCSB's scrambled variant hashes them apart.
   Comparing both isolates how much of the baseline's collapse is
   same-line sharing between *different* hot records. *)
let adjacency ?domains scale =
  let t =
    Table.create
      ~title:
        "Extension: adjacent vs scrambled hot keys (zipf 0.9, 16 threads)"
      ~headers:[ "tree"; "keys"; "Mops/s"; "aborts/op"; "false:diff-record" ]
  in
  let cells =
    List.concat_map
      (fun kind ->
        List.map
          (fun (label, scrambled) -> (kind, label, scrambled))
          [ ("adjacent", false); ("scrambled", true) ])
      [ Kv.Htm_bptree; Kv.Euno Config.full ]
  in
  let rs =
    Pool.map ?domains
      (fun (kind, _, scrambled) ->
        let workload =
          {
            (workload_of scale (Dist.Zipfian 0.9) Opgen.ycsb_default) with
            Runner.scrambled;
          }
        in
        Runner.run kind workload (setup_of scale 16))
      cells
  in
  List.iter2
    (fun (_, label, _) r ->
      Table.add_row t
        [
          r.Runner.r_name;
          label;
          Table.cell_f r.Runner.r_mops;
          Table.cell_f r.Runner.r_aborts_per_op;
          Table.cell_f (Runner.class_false_record r);
        ])
    cells rs;
  emit t

(* Replicate the paper's own Figure 2 estimation methodology — modify the
   workload so no two threads ever touch the same record (interleaved
   partitions keep hot keys adjacent) — and cross-validate it against the
   simulator's exact attribution. *)
let methodology ?domains scale =
  let t =
    Table.create
      ~title:
        "Extension: paper's Fig.2 methodology (partitioned keys) vs exact attribution (16 threads)"
      ~headers:
        [ "skew"; "keys"; "Mops/s"; "aborts/op"; "true:same-record" ]
  in
  let cells =
    List.concat_map
      (fun theta ->
        List.map
          (fun (label, partitioned) -> (theta, label, partitioned))
          [ ("shared", false); ("partitioned", true) ])
      [ 0.8; 0.9; 0.99 ]
  in
  let rs =
    Pool.map ?domains
      (fun (theta, _, partitioned) ->
        let workload =
          {
            (workload_of scale (Dist.Zipfian theta) Opgen.ycsb_default) with
            Runner.partitioned;
          }
        in
        Runner.run Kv.Htm_bptree workload (setup_of scale 16))
      cells
  in
  List.iter2
    (fun (theta, label, _) r ->
      Table.add_row t
        [
          theta_label theta;
          label;
          Table.cell_f r.Runner.r_mops;
          Table.cell_f r.Runner.r_aborts_per_op;
          Table.cell_f (Runner.class_true r);
        ])
    cells rs;
  emit t

(* ---------- strategy-sweep: {strategy} x {capacity} campaign ---------- *)

(* The Figure 1/8/10 cells re-run as the full {elision, three-path,
   lockfree} x {nominal, limited-read, coarse-grain} matrix.  The tables
   come out as GitHub markdown (they are comparison artifacts for
   EXPERIMENTS.md, not paper-figure reproductions) and every cell also
   lands in [sweep_acc] as a schema-validated "sweep" record, which
   euno_repro flushes into the --json document. *)

(* euno-lint: allow domain-shared-state: main-domain accumulator; cells return results, main appends in canonical order *)
let sweep_acc : Report.Json.t list ref = ref []
let sweep_records () = List.rev !sweep_acc

let sweep_combos =
  List.concat_map
    (fun s -> List.map (fun (_, cm) -> (s, cm)) Euno_sim.Cost.capacity_models)
    Euno_htm.Htm.all_strategies

let combo_label (s, cm) =
  Printf.sprintf "%s/%s" (Euno_htm.Htm.strategy_name s) cm.Euno_sim.Cost.cm_name

(* Reduced cell sets: enough thetas/threads for the collapse shape to
   move, small enough that 9 combos per cell stay tractable. *)
let sweep_fig1_thetas = [ 0.0; 0.6; 0.9; 0.99 ]
let sweep_fig8_thetas = [ 0.2; 0.9 ]
let sweep_fig10_thetas = [ 0.2; 0.9 ]
let sweep_fig10_kinds = [ Kv.Htm_bptree; Kv.Euno Config.full ]
let sweep_fig10_threads scale =
  List.filter (fun t -> t <= scale.max_threads) [ 1; 4; 16 ]

let markdown_table ~title ~headers rows =
  Printf.printf "\n### %s\n\n" title;
  Printf.printf "| %s |\n" (String.concat " | " headers);
  Printf.printf "|%s|\n" (String.concat "|" (List.map (fun _ -> " --- ") headers));
  List.iter
    (fun row -> Printf.printf "| %s |\n" (String.concat " | " row))
    rows

let strategy_sweep ?domains scale =
  sweep_acc := [];
  let headers = "cell" :: List.map combo_label sweep_combos in
  let mops rs = List.map (fun r -> Table.cell_f r.Runner.r_mops) rs in
  (* One pool cell per (figure row, combo) run; the main domain appends
     each cell's "sweep" record in enumeration order after the batch, so
     record order — like the tables — is byte-identical to the
     sequential campaign. *)
  let batch cells =
    let rs =
      Pool.map ?domains
        (fun (_, kind, theta, threads, (s, cm)) ->
          let scale = { scale with strategy = Some s; capacity = Some cm } in
          run scale kind ~dist:(Dist.Zipfian theta) ~mix:Opgen.ycsb_default
            ~threads)
        cells
    in
    List.iter2
      (fun (figure, _, theta, _, _) r ->
        sweep_acc := Report.sweep_to_json ~figure ~theta r :: !sweep_acc)
      cells rs;
    chunk (List.length sweep_combos) rs
  in
  let rows_of labels groups = List.map2 (fun l g -> (l, g)) labels groups in
  (* Figure 1 cells: the HTM-B+Tree contention storm at 16 threads.  Two
     tables, because the strategies differ most in *how* they spend the
     storm: throughput, then fallback entries per op. *)
  let fig1_rows =
    rows_of
      (List.map theta_label sweep_fig1_thetas)
      (batch
         (List.concat_map
            (fun theta ->
              List.map
                (fun combo -> ("fig1", Kv.Htm_bptree, theta, 16, combo))
                sweep_combos)
            sweep_fig1_thetas))
  in
  markdown_table
    ~title:"Strategy sweep, Figure 1 cells: HTM-B+Tree Mops/s (16 threads)"
    ~headers
    (List.map (fun (label, rs) -> label :: mops rs) fig1_rows);
  markdown_table
    ~title:"Strategy sweep, Figure 1 cells: fallbacks/op (16 threads)"
    ~headers
    (List.map
       (fun (label, rs) ->
         label
         :: List.map (fun r -> Table.cell_f r.Runner.r_fallbacks_per_op) rs)
       fig1_rows);
  (* Figure 8 cells: all four trees at low and high contention. *)
  let fig8_labels =
    List.concat_map
      (fun kind ->
        List.map
          (fun theta ->
            Printf.sprintf "%s %s" (Kv.kind_name kind) (theta_label theta))
          sweep_fig8_thetas)
      Kv.all_kinds
  in
  let fig8_rows =
    rows_of fig8_labels
      (batch
         (List.concat_map
            (fun kind ->
              List.concat_map
                (fun theta ->
                  List.map
                    (fun combo -> ("fig8", kind, theta, 16, combo))
                    sweep_combos)
                sweep_fig8_thetas)
            Kv.all_kinds))
  in
  markdown_table
    ~title:"Strategy sweep, Figure 8 cells: Mops/s (16 threads)" ~headers
    (List.map (fun (label, rs) -> label :: mops rs) fig8_rows);
  (* Figure 10 cells: scalability of the two B+Trees whose fallback
     discipline the strategies actually change. *)
  let fig10_labels =
    List.concat_map
      (fun kind ->
        List.concat_map
          (fun theta ->
            List.map
              (fun threads ->
                Printf.sprintf "%s %s t=%d" (Kv.kind_name kind)
                  (theta_label theta) threads)
              (sweep_fig10_threads scale))
          sweep_fig10_thetas)
      sweep_fig10_kinds
  in
  let fig10_rows =
    rows_of fig10_labels
      (batch
         (List.concat_map
            (fun kind ->
              List.concat_map
                (fun theta ->
                  List.map
                    (fun threads ->
                      List.map
                        (fun combo -> ("fig10", kind, theta, threads, combo))
                        sweep_combos)
                    (sweep_fig10_threads scale)
                  |> List.concat)
                sweep_fig10_thetas)
            sweep_fig10_kinds))
  in
  markdown_table ~title:"Strategy sweep, Figure 10 cells: Mops/s" ~headers
    (List.map (fun (label, rs) -> label :: mops rs) fig10_rows)

(* ---------- everything ---------- *)

let all ?domains scale =
  fig1 ?domains scale;
  print_newline ();
  fig2 ?domains scale;
  print_newline ();
  fig8 ?domains scale;
  print_newline ();
  fig9 ?domains scale;
  print_newline ();
  fig10 ?domains scale;
  print_newline ();
  fig11 ?domains scale;
  print_newline ();
  fig12 ?domains scale;
  print_newline ();
  fig13 ?domains scale;
  print_newline ();
  mem ?domains scale;
  print_newline ();
  latency ?domains scale;
  print_newline ();
  policy ?domains scale;
  print_newline ();
  ycsb ?domains scale;
  print_newline ();
  segments ?domains scale;
  print_newline ();
  coarse ?domains scale;
  print_newline ();
  variance ?domains scale;
  print_newline ();
  adjacency ?domains scale;
  print_newline ();
  methodology ?domains scale

let by_name : (string * (?domains:int -> scale -> unit)) list =
  [
    ("fig1", fig1);
    ("fig2", fig2);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("mem", mem);
    ("latency", latency);
    ("policy", policy);
    ("ycsb", ycsb);
    ("segments", segments);
    ("coarse", coarse);
    ("variance", variance);
    ("adjacency", adjacency);
    ("methodology", methodology);
    ("strategy-sweep", strategy_sweep);
    ("all", all);
  ]
