(* The perf-regression gate's comparison logic.

   The bench driver writes "perf" probe records (engine micro timings and
   fixed-scale tree throughput) into BENCH_results.json; a baseline copy of
   those probes is committed as bench/baseline.json.  This module compares
   the two by probe name inside a multiplicative tolerance band, and
   bin/euno_perf_check turns the verdicts into an exit code.

   Verdicts are expressed through a single "degradation factor" regardless
   of the metric's direction: for lower-is-better metrics (nanoseconds) it
   is current/baseline, for higher-is-better (throughput) it is
   baseline/current — so factor > band means "worse than allowed" either
   way, and re-baselining is a plain copy of the current probe set. *)

module Json = Euno_stats.Json

type direction = Lower_is_better | Higher_is_better

(* The metric string names the unit and implies the direction; unknown
   metrics default to lower-is-better, the conservative reading for the
   cost-like units we are likely to add next. *)
let direction_of_metric = function
  | "sim_ops_per_wall_sec" | "campaign_cells_per_wall_sec" -> Higher_is_better
  | "ns_per_call" | _ -> Lower_is_better

type probe = {
  p_name : string;
  p_strategy : string;
  p_capacity_model : string;
  p_metric : string;
  p_value : float;
}

type comparison = {
  c_name : string;
  c_metric : string;
  c_baseline : float option;  (* None: probe new in current, informational *)
  c_current : float option;  (* None: probe disappeared, always a failure *)
  c_factor : float option;  (* degradation factor; > band fails *)
  c_ok : bool;
}

let probes_of_document json =
  match Json.member "records" json with
  | Some (Json.List records) ->
      let rec collect acc = function
        | [] -> Ok (List.rev acc)
        | r :: rest -> (
            match Json.member "record" r with
            | Some (Json.Str "perf") -> (
                match Report.validate_perf r with
                | Error e -> Error e
                | Ok () ->
                    let str f = Option.get (Json.as_string (Option.get (Json.member f r))) in
                    let num f = Option.get (Json.as_float (Option.get (Json.member f r))) in
                    let p =
                      {
                        p_name = str "name";
                        p_strategy = str "strategy";
                        p_capacity_model = str "capacity_model";
                        p_metric = str "metric";
                        p_value = num "value";
                      }
                    in
                    collect (p :: acc) rest)
            | _ -> collect acc rest)
      in
      collect [] records
  | _ -> Error "missing records list"

let factor ~baseline ~current ~metric =
  match direction_of_metric metric with
  | Lower_is_better -> current /. baseline
  | Higher_is_better -> baseline /. current

(* Compare every baseline probe against the current set (matched by name),
   then append current-only probes as informational passes.  [band] is the
   allowed degradation factor, e.g. 1.5 = up to 50% worse. *)
let compare_probes ~band ~baseline ~current =
  if band < 1.0 then invalid_arg "Perf_gate.compare_probes: band < 1.0";
  let find name probes = List.find_opt (fun p -> p.p_name = name) probes in
  let of_baseline b =
    match find b.p_name current with
    | None ->
        {
          c_name = b.p_name;
          c_metric = b.p_metric;
          c_baseline = Some b.p_value;
          c_current = None;
          c_factor = None;
          c_ok = false;
        }
    | Some c ->
        let f = factor ~baseline:b.p_value ~current:c.p_value ~metric:b.p_metric in
        {
          c_name = b.p_name;
          c_metric = b.p_metric;
          c_baseline = Some b.p_value;
          c_current = Some c.p_value;
          c_factor = Some f;
          c_ok = f <= band;
        }
  in
  let new_probes =
    List.filter_map
      (fun c ->
        match find c.p_name baseline with
        | Some _ -> None
        | None ->
            Some
              {
                c_name = c.p_name;
                c_metric = c.p_metric;
                c_baseline = None;
                c_current = Some c.p_value;
                c_factor = None;
                c_ok = true;
              })
      current
  in
  List.map of_baseline baseline @ new_probes

let all_ok = List.for_all (fun c -> c.c_ok)

let probe_to_json p =
  Json.Obj
    [
      ("schema_version", Json.Int Report.schema_version);
      ("record", Json.Str "perf");
      ("name", Json.Str p.p_name);
      ("strategy", Json.Str p.p_strategy);
      ("capacity_model", Json.Str p.p_capacity_model);
      ("metric", Json.Str p.p_metric);
      ("value", Json.Float p.p_value);
    ]

(* A baseline file is itself a schema-versioned document holding only perf
   records, so euno_schema_check validates it too. *)
let baseline_document probes =
  Report.document ~experiment:"perf-baseline" (List.map probe_to_json probes)
