(** Experiment definitions: one function per figure of the paper's
    evaluation (and the Section 5.7 memory analysis), each printing the
    table its plot is drawn from.

    Every figure separates compute from render: it enumerates its
    simulation cells in the canonical sequential order, fans them through
    {!Pool.map} ([?domains], default {!Pool.default_domains}), and builds
    its tables from the merged results on the main domain — so output is
    byte-identical at any domain count. *)

type scale = {
  key_space : int;  (** power of two; paper: 100 M, scaled down here *)
  ops_per_thread : int;
  max_threads : int;
  seed : int;
  charts : bool;  (** also render ASCII charts after the tables *)
  snapshot_window : int option;
      (** sample machine counters every N simulated cycles into each
          result's snapshot series (time-resolved telemetry) *)
  strategy : Euno_htm.Htm.strategy option;
      (** force every run's fallback strategy; [None] keeps the trees'
          default (elision), byte-identical to the historical runs *)
  capacity : Euno_sim.Cost.capacity_model option;
      (** force the capacity/conflict model; [None] keeps the setup's
          default *)
}

val default_scale : scale
val quick_scale : scale

val csv_dir : string option ref
(** When set, every printed table is also written to [<dir>/<slug>.csv]
    (output formatting only; simulation results are unaffected).  Main
    domain only — rendering never happens inside pool cells. *)

val fig1 : ?domains:int -> scale -> unit
val fig2 : ?domains:int -> scale -> unit
val fig8 : ?domains:int -> scale -> unit
val fig9 : ?domains:int -> scale -> unit
val fig10 : ?domains:int -> scale -> unit
val fig11 : ?domains:int -> scale -> unit
val fig12 : ?domains:int -> scale -> unit
val fig13 : ?domains:int -> scale -> unit

val mem : ?domains:int -> scale -> unit
(** Section 5.7 memory-consumption analysis. *)

val latency : ?domains:int -> scale -> unit
(** Extension: per-operation latency percentiles per tree. *)

val policy : ?domains:int -> scale -> unit
(** Extension: DBX-era vs post-lemming-fix retry policy on the baseline
    (the collapse-mechanism ablation). *)

val ycsb : ?domains:int -> scale -> unit
(** Extension: YCSB core workloads A-F across the four trees. *)

val segments : ?domains:int -> scale -> unit
(** Extension: segments-per-leaf design ablation of the Euno-B+Tree. *)

val coarse : ?domains:int -> scale -> unit
(** Extension: coarse global lock vs the elided lock vs Eunomia. *)

val variance : ?domains:int -> scale -> unit
(** Extension: throughput variation across seeds (schedule sensitivity). *)

val adjacency : ?domains:int -> scale -> unit
(** Extension: adjacent vs scrambled hot keys — how much of the collapse
    is same-line sharing between different records. *)

val methodology : ?domains:int -> scale -> unit
(** Extension: the paper's Figure 2 estimation methodology (per-thread key
    partitions) cross-validated against exact abort attribution. *)

val strategy_sweep : ?domains:int -> scale -> unit
(** The strategy contention campaign: the Figure 1/8/10 cells re-run as
    the full [{elision, three-path, lockfree}] x [{nominal, limited-read,
    coarse-grain}] matrix, rendered as per-figure markdown comparison
    tables (Mops/s, plus fallbacks/op for the Figure 1 storm).  Every cell
    also lands in {!sweep_records} as a schema-validated ["sweep"] record
    — appended on the main domain in canonical cell order, so record order
    is independent of the domain count.  Cells: Figure 1 = HTM-B+Tree at
    16 threads over 4 thetas; Figure 8 = all four trees at 16 threads over
    2 thetas; Figure 10 = the two B+Trees over 2 thetas x the [{1, 4, 16}]
    thread points that fit [scale.max_threads]. *)

val sweep_records : unit -> Report.Json.t list
(** The ["sweep"] records of the last {!strategy_sweep} run (emission
    order); cleared at the start of each run. *)

val all : ?domains:int -> scale -> unit

val by_name : (string * (?domains:int -> scale -> unit)) list
(** Experiment ids accepted by the CLI: fig1..fig13, mem, all. *)
