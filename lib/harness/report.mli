(** Machine-readable telemetry: schema-versioned JSON records for runner
    results, seed aggregates and windowed counter time series.

    The figure CLI ([euno_repro <fig> --json out.json --snapshots out.jsonl])
    and the bench driver ([BENCH_results.json]) write these records so perf
    trajectories and figure shapes can be diffed and plotted rather than
    eyeballed from the ASCII tables.  Every document and every JSONL line
    carries [schema_version]. *)

module Json = Euno_stats.Json

val schema_version : int
(** Version stamped on (and required of) every record.  Currently 1. *)

val user_counter_label : int -> string
(** Telemetry label for a user-counter index, from the machine's
    counter registry ({!Euno_sim.Machine.register_user_counters});
    ["userN"] for unclaimed indices. *)

(** {1 Windowed time series} *)

(** Per-window deltas between consecutive cumulative snapshots of
    {!Runner.result.r_snapshots} — the time-resolved view in which
    contention collapse shows up as a rising aborts/op series. *)
type window = {
  w_start : int;  (** window start, simulated cycles *)
  w_end : int;
  w_ops : int;
  w_commits : int;
  w_aborts : int array;  (** by {!Euno_sim.Abort.class_index} *)
  w_fallbacks : int;
  w_lock_wait_cycles : int;
  w_wasted_cycles : int;
  w_accesses : int;
}

val windows_of_snapshots :
  (int * Euno_sim.Machine.snapshot) list -> window list

val window_aborts_total : window -> int
val window_to_json : window -> Json.t

(** {1 Records} *)

val context_fields :
  ?experiment:string ->
  ?run:int ->
  record:string ->
  unit ->
  (string * Json.t) list
(** The standard record header — [schema_version], the ["record"]
    discriminator, and optional experiment/run context — for harnesses
    that assemble their own record bodies. *)

val result_to_json : ?experiment:string -> ?run:int -> Runner.result -> Json.t
(** One ["result"] record: throughput, abort classes, wasted cycles,
    latency percentiles, memory footprint and embedded window series.
    [run] is the record's position in the experiment's run sequence, which
    is how sweep points (e.g. fig1's thetas) are told apart downstream. *)

val aggregate_to_json : ?experiment:string -> Runner.aggregate -> Json.t

val san_to_json :
  ?experiment:string ->
  ?run:int ->
  tree:string ->
  workload:string ->
  strategy:string ->
  capacity_model:string ->
  threads:int ->
  seed:int ->
  Euno_san.San.summary ->
  Json.t
(** One ["san"] record: the EunoSan verdict of a sanitized run — event
    count, finding total, and the capped finding list (kind, subject,
    announcing thread, logical clock, detail). *)

val check_to_json :
  ?experiment:string ->
  ?run:int ->
  tree:string ->
  mix:string ->
  dist:string ->
  mutation:string ->
  strategy:string ->
  capacity_model:string ->
  threads:int ->
  seed:int ->
  policy:string ->
  runs:int ->
  events:int ->
  violation:(int * int * int * string) option ->
  unit ->
  Json.t
(** One ["check"] record: an EunoCheck campaign cell — the tree, op mix,
    distribution and mutation explored, the (policy, seed) budget spent,
    the history events checked, and on a violation the counterexample
    sizes (preemptions fired, preemptions after shrinking, core events)
    plus the one-line repro descriptor. *)

val sweep_to_json :
  ?experiment:string ->
  ?run:int ->
  figure:string ->
  theta:float ->
  Runner.result ->
  Json.t
(** One ["sweep"] record: a strategy-campaign cell — the figure cell it
    belongs to ([figure], tree, [theta], threads), the strategy and
    capacity model it ran under, and the flattened metrics the per-figure
    comparison tables read (throughput, aborts, fallbacks, lock wait,
    per-path commit and helping rates). *)

val lint_to_json :
  ?experiment:string ->
  file:string ->
  line:int ->
  col:int ->
  rule:string ->
  msg:string ->
  ?reason:string ->
  unit ->
  Json.t
(** One ["lint"] record: an EunoLint finding — source coordinate
    (file/line/col), the rule-id, the message, and [suppressed]/[reason]
    when a reasoned allow-directive muted it ([bin/euno_lint --json]
    emits both active and suppressed findings so the CI artifact is the
    complete audit). *)

val snapshot_lines : ?experiment:string -> ?run:int -> Runner.result -> Json.t list
(** One self-describing ["window"] record per sampling window (for JSONL
    export); empty when the run had no [snapshot_window]. *)

val document : experiment:string -> Json.t list -> Json.t
(** Wrap records in the top-level schema-versioned document. *)

val write_file : string -> Json.t -> unit
(** Pretty-print one document to [path]. *)

val write_jsonl : string -> Json.t list -> unit
(** One compact JSON value per line. *)

(** {1 Validation}

    Field-presence/type checks over our own output, used by the CI schema
    smoke check and the round-trip tests. *)

val validate_result : Json.t -> (unit, string) result
val validate_window : Json.t -> (unit, string) result
val validate_aggregate : Json.t -> (unit, string) result

val validate_chaos : Json.t -> (unit, string) result
(** Contract for the ["chaos"] records {!Chaos.outcome_to_json} emits. *)

val validate_recovery : Json.t -> (unit, string) result
(** Contract for the ["recovery"] records {!Dura_run.outcome_to_json}
    emits: one per crash cell — durability state at the crash (snapshot /
    log positions, lost suffix), recovery work (replayed, re-run, stuck
    ops, cycles vs. the linear bound) and the checker's findings. *)

val validate_perf : Json.t -> (unit, string) result
(** Contract for the ["perf"] probe records the bench driver emits and the
    [euno_perf_check] regression gate consumes: [name], [strategy],
    [capacity_model], [metric] (unit and better-direction, e.g.
    ["ns_per_call"] lower-is-better or ["sim_ops_per_wall_sec"]
    higher-is-better) and numeric [value].  The strategy and
    capacity-model names must be ones the binaries accept. *)

val validate_san : Json.t -> (unit, string) result
(** Contract for the ["san"] records {!san_to_json} emits. *)

val validate_check : Json.t -> (unit, string) result
(** Contract for the ["check"] records {!check_to_json} emits. *)

val validate_sweep : Json.t -> (unit, string) result
(** Contract for the ["sweep"] records {!sweep_to_json} emits: figure cell
    coordinates, a strategy/capacity-model pair the binaries accept, and
    the flattened metric set. *)

val validate_lint : Json.t -> (unit, string) result
(** Contract for the ["lint"] records {!lint_to_json} emits: the rule-id
    must be in {!Eunolint.Lint.rule_names}, and [reason] must be
    present exactly when [suppressed] is true. *)

val validate_record : Json.t -> (unit, string) result
(** Dispatch on the ["record"] discriminator. *)

val validate_document : Json.t -> (unit, string) result

(** {1 Collection}

    The collector observes {!Runner.on_result}, so every run — whichever
    figure helper produced it — lands in the flushed document. *)

val start_collecting : unit -> unit
val collected : unit -> Runner.result list
val stop_collecting : unit -> unit

val flush_collected :
  experiment:string -> ?json:string -> ?snapshots:string -> unit -> unit
(** Write everything collected since {!start_collecting}: [json] gets the
    full document, [snapshots] the windowed series as JSONL. *)
