module Dist = Euno_workload.Dist
module Plan = Euno_fault.Plan
module Cost = Euno_sim.Cost
module Htm = Euno_htm.Htm

type outcome = {
  o_tree : string;
  o_workload : string;
  o_strategy : string;
  o_capacity_model : string;
  o_threads : int;
  o_seed : int;
  o_summary : Euno_san.San.summary;
}

(* Wider than ycsb_default so the lint exercises the scan (seqlock /
   optimistic traversal) and delete (merge / GC) paths too. *)
let coverage_mix : Euno_workload.Opgen.mix =
  { get = 40; put = 35; scan = 10; delete = 10; rmw = 5 }

let thetas = [ 0.2; 0.8; 0.99 ]

let outcome_of ~tree ~label ~strategy ~capacity ~seed (r : Runner.result) =
  match r.Runner.r_san with
  | Some s ->
      {
        o_tree = tree;
        o_workload = label;
        o_strategy = Htm.strategy_name strategy;
        o_capacity_model = capacity.Cost.cm_name;
        o_threads = r.Runner.r_threads;
        o_seed = seed;
        o_summary = s;
      }
  | None -> invalid_arg "San_run: result carries no sanitizer summary"

(* One campaign cell = (strategy, capacity model, tree): the zipf ladder
   plus a chaos run, sanitized.  The chaos horizon depends on the cell's
   own mid-contention zipf run, so the whole quadruple stays inside one
   cell — cells are independent and [Pool.map] can fan them across
   domains with the canonical (strategy, capacity, tree) nesting order
   preserved by the index merge.  [run] sweeps the requested grid; the
   default covers every strategy under the nominal capacity model (the
   capacity ladder is a perf question more than a protocol one, but
   limited-read cells catch fallback-path bugs that only fire when
   capacity aborts force operations off the fast path). *)
let run ?(quick = false) ?(seed = 42) ?(strategies = Htm.all_strategies)
    ?(capacities = [ Cost.nominal ]) ?domains () =
  let base = Runner.default_setup in
  let cell (strategy, capacity, kind) =
    let setup =
      {
        base with
        Runner.sanitize = true;
        check_after = true;
        seed;
        cost = Cost.with_capacity Cost.default capacity;
        (* Elision cells keep each tree's own default policy (the
           pre-strategy behaviour); other strategies override just the
           strategy selector. *)
        policy =
          (match strategy with
          | Htm.Elision -> None
          | s -> Some { Htm.default_policy with Htm.strategy = s });
        threads = (if quick then 8 else base.Runner.threads);
        ops_per_thread = (if quick then 300 else base.Runner.ops_per_thread);
      }
    in
    let workload theta =
      {
        Runner.default_workload with
        Runner.dist = Dist.Zipfian theta;
        mix = coverage_mix;
        key_space =
          (if quick then 1 lsl 12
           else Runner.default_workload.Runner.key_space);
      }
    in
    let tree = Kv.kind_name kind in
    let zipf_runs =
      List.map (fun theta -> (theta, Runner.run kind (workload theta) setup))
        thetas
    in
    (* Chaos horizon from this tree's own mid-contention run, so the
       campaign windows line up with where the run actually spends its
       cycles. *)
    let horizon =
      match zipf_runs with
      | _ :: (_, mid) :: _ -> mid.Runner.r_cycles
      | _ -> 200_000
    in
    let chaos_setup =
      {
        setup with
        Runner.fault_plan = Plan.campaign ~threads:setup.Runner.threads ~horizon;
      }
    in
    let chaos = Runner.run kind (workload 0.8) chaos_setup in
    List.map
      (fun (theta, r) ->
        outcome_of ~tree
          ~label:(Printf.sprintf "zipf-%.2f" theta)
          ~strategy ~capacity ~seed r)
      zipf_runs
    @ [
        outcome_of ~tree ~label:"chaos-zipf-0.80" ~strategy ~capacity ~seed
          chaos;
      ]
  in
  let cells =
    List.concat_map
      (fun strategy ->
        List.concat_map
          (fun capacity ->
            List.map (fun kind -> (strategy, capacity, kind)) Kv.all_kinds)
          capacities)
      strategies
  in
  List.concat (Pool.map ?domains cell cells)

let clean outcomes =
  List.for_all (fun o -> o.o_summary.Euno_san.San.total = 0) outcomes

let print oc outcomes =
  Printf.fprintf oc "%-14s %-16s %-10s %-12s %8s %10s %9s\n" "tree" "workload"
    "strategy" "capacity" "threads" "events" "findings";
  List.iter
    (fun o ->
      Printf.fprintf oc "%-14s %-16s %-10s %-12s %8d %10d %9d\n" o.o_tree
        o.o_workload o.o_strategy o.o_capacity_model o.o_threads
        o.o_summary.Euno_san.San.events o.o_summary.total)
    outcomes;
  List.iter
    (fun o ->
      List.iter
        (fun (f : Euno_san.San.finding) ->
          Printf.fprintf oc "  [%s/%s] %s %s (tid %d, clock %d): %s\n" o.o_tree
            o.o_workload
            (Euno_san.San.kind_name f.Euno_san.San.f_kind)
            f.f_subject f.f_tid f.f_clock f.f_detail)
        o.o_summary.Euno_san.San.findings)
    outcomes;
  if clean outcomes then Printf.fprintf oc "san: clean\n"
  else Printf.fprintf oc "san: FINDINGS PRESENT\n"

let to_records ?experiment outcomes =
  List.mapi
    (fun i o ->
      Report.san_to_json ?experiment ~run:i ~tree:o.o_tree
        ~workload:o.o_workload ~strategy:o.o_strategy
        ~capacity_model:o.o_capacity_model ~threads:o.o_threads ~seed:o.o_seed
        o.o_summary)
    outcomes
