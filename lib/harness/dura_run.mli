(** EunoDura driver: crash-recovery campaigns over the tree variants.

    One cell runs two phases on one simulated world.  Phase A executes
    the Chaos-style partitioned workload with the durability pipeline
    attached — epoch-quiescent snapshots ([Euno_dura.Dura]) and a
    committed-op log with group-flush batching ([Euno_dura.Oplog]) —
    until a {!Euno_fault.Plan.Crash} kills every thread at once.  Phase B
    restarts on the surviving memory: sweep abandoned Lock lines, restore
    the latest snapshot (rebuild or in-place reconcile), replay the
    durable log suffix, re-run the lost suffix, then hand the recovered
    image to the recovery checker ([Euno_dura.Checker]).

    Everything is deterministic per (plan, seed): the crash point, the
    snapshot instants, the lost suffix and the recovered image are pure
    functions of the schedule. *)

module Plan = Euno_fault.Plan

type restore_mode =
  | Rebuild  (** bulk-load a fresh tree from the snapshot image *)
  | In_place
      (** reconcile the surviving tree to the image through its own ops —
          exercises recovery over crashed state (abandoned locks, torn
          writes) *)

val restore_mode_name : restore_mode -> string

type config = {
  threads : int;
  ops_per_thread : int;
  seed : int;
  key_space : int;  (** partitioned across threads; even keys preloaded *)
  fanout : int;
  cost : Euno_sim.Cost.t;
  policy : Euno_htm.Htm.policy option;
      (** HTM retry policy; [None] = each tree's own default *)
  checkpoints : int;
      (** quiescent rendezvous during the run — the only points a
          snapshot may be captured at (sustained quiescence) *)
  advance_every : int;
      (** the driver epoch's opportunistic-advance period *)
  snapshot_min_cycles : int;
      (** cadence policy: minimum cycles between snapshot captures *)
  group_size : int;  (** log entries per group flush *)
  fsync_horizon : int;
      (** max cycles an acknowledged entry may stay volatile — bounds
          what a crash can lose *)
  ack_delay : int;
      (** commit-to-acknowledgement latency in cycles; a crash inside
          this window loses an unacked op whose effect is already in
          tree state *)
  crash_frac : float;  (** crash point as a fraction of the horizon *)
  restore_mode : restore_mode;
}

val default_config : config
val quick_config : config

(** One crash-recovery cell result. *)
type cell = {
  d_name : string;
  d_threads : int;
  d_seed : int;
  d_horizon : int;  (** fault-free calibrated run length, cycles *)
  d_plan : Plan.t;
  d_crashed : bool;
  d_crash_cycle : int;  (** = run end when no crash fired *)
  d_restore : restore_mode;
  d_ops : int;
  d_failed_ops : int;
  d_snapshots_taken : int;
  d_snapshot_lsn : int;  (** lsn of the snapshot recovery restored *)
  d_log_len : int;  (** acknowledged mutations at the crash *)
  d_flushed_lsn : int;
  d_lost : int;  (** unflushed suffix lost to the crash *)
  d_replayed : int;  (** durable entries reapplied past the snapshot *)
  d_rerun : int;  (** lost entries re-issued by the generator *)
  d_swept_locks : int;  (** Lock lines zeroed on restart *)
  d_stuck_ops : int;  (** recovery ops wedged or validator failures *)
  d_recovery_cycles : int;
  d_work_bound : int;  (** linear allowance; exceeding it is a finding *)
  d_findings : Euno_dura.Checker.finding list;
}

val run_cell : ?plan:Plan.t -> ?horizon:int -> Kv.kind -> config -> cell
(** Run one cell under [plan] (default: no faults — a graceful run whose
    recovery must be exact).  [horizon] is recorded for reporting;
    defaults to the measured run end. *)

val run_campaign : Kv.kind -> config -> cell
(** Calibrate a fault-free horizon on an identical world, then crash at
    [crash_frac] of it and recover. *)

val run_all : ?domains:int -> config -> cell list
(** {!run_campaign} over the paper's four tree variants; [domains] > 1
    fans the per-tree cells across worker domains via {!Pool.map} with
    byte-identical outcomes in {!Kv.all_kinds} order. *)

(** {1 Mutation validation}

    Three seeded recovery bugs ([Euno_dura.Dura.Testonly]); the checker
    must flag each with the expected finding kind and stay clean on the
    unmutated system over the same cell. *)

type mutant = Skip_fallback_log | Skip_lock_reset | Snapshot_while_pinned

val all_mutants : mutant list
val mutant_name : mutant -> string
val expected_kind : mutant -> Euno_dura.Checker.kind

type mutant_outcome = {
  m_mutant : mutant;
  m_caught_seed : int option;
      (** first seed the checker flagged it at, if any *)
  m_seeds_tried : int;
  m_caught : bool;  (** flagged with the expected finding kind *)
  m_clean_on_fixed : bool;  (** same cell, mutant off: no findings *)
}

val run_mutant : ?seeds:int -> ?base_seed:int -> mutant -> mutant_outcome
(** Seed-search up to [seeds] attempts (default 40): a crash must land
    where the seeded bug bites, so the directed cell is retried across
    seeds until the checker flags it, then re-run unmutated on the
    caught seed. *)

val run_mutants : ?seeds:int -> ?base_seed:int -> unit -> mutant_outcome list

(** {1 Reporting} *)

val cell_to_json : ?experiment:string -> cell -> Euno_stats.Json.t
(** One schema-v1 ["recovery"] record ({!Report.validate_recovery} is the
    contract). *)

val print_cells : cell list -> unit
val print_mutants : mutant_outcome list -> unit
