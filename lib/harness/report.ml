(* Machine-readable telemetry: schema-versioned JSON records for runner
   results, seed aggregates and windowed counter time series.

   Everything the ASCII tables print is derived from Runner.result; this
   module is the durable counterpart — the figure CLI and the bench driver
   write these records so perf trajectories and figure shapes can be
   diffed, gated and plotted instead of eyeballed.  The schema is
   deliberately flat (one object per record, snake_case keys) and carries
   [schema_version] on every document and every JSONL line so downstream
   consumers can evolve with it. *)

module Json = Euno_stats.Json
module Machine = Euno_sim.Machine
module Abort = Euno_sim.Abort
module Htm = Euno_htm.Htm

let schema_version = 1

(* ---------- counter labels ---------- *)

(* User-counter indices are owned by the modules that bump them; each owner
   claims its indices in the machine's registry at module-initialization
   time, so the labels here can no longer drift from (or collide with) the
   counters actually in use.  Looked up lazily: linking order already
   guarantees owners initialize before any report is rendered, but there is
   no reason to freeze the registry at this module's own init. *)
let user_counter_label i =
  match List.assoc_opt i (Machine.user_counter_names ()) with
  | Some name -> name
  | None -> Printf.sprintf "user%d" i

let abort_classes_json values =
  Json.Obj
    (List.init (Array.length values) (fun i ->
         (Abort.class_name i, values.(i))))

(* ---------- windowed time series ---------- *)

(* Per-window deltas between consecutive cumulative snapshots: the
   time-resolved view in which the lemming-effect ignition and the
   theta > 0.6 collapse onset are visible as a rising aborts/op series
   rather than a single end-of-run average. *)
type window = {
  w_start : int;
  w_end : int;
  w_ops : int;
  w_commits : int;
  w_aborts : int array;
  w_fallbacks : int;
  w_lock_wait_cycles : int;
  w_wasted_cycles : int;
  w_accesses : int;
}

let windows_of_snapshots snaps =
  let zero = ([||] : int array) in
  let delta_aborts prev cur =
    Array.mapi
      (fun i v -> v - (if prev == zero || Array.length prev = 0 then 0 else prev.(i)))
      cur
  in
  let rec go prev_clock (prev : Machine.snapshot option) acc = function
    | [] -> List.rev acc
    | (clock, (s : Machine.snapshot)) :: rest ->
        let p_ops, p_commits, p_aborts, p_user, p_wasted, p_accesses =
          match prev with
          | None -> (0, 0, zero, [||], 0, 0)
          | Some p ->
              (p.Machine.s_ops, p.s_commits, p.s_aborts, p.s_user,
               p.s_wasted_cycles, p.s_accesses)
        in
        let user i arr = if Array.length arr = 0 then 0 else arr.(i) in
        let w =
          {
            w_start = prev_clock;
            w_end = clock;
            w_ops = s.Machine.s_ops - p_ops;
            w_commits = s.s_commits - p_commits;
            w_aborts = delta_aborts p_aborts s.s_aborts;
            w_fallbacks =
              user Htm.Counter.fallbacks s.s_user
              - user Htm.Counter.fallbacks p_user;
            w_lock_wait_cycles =
              user Htm.Counter.lock_wait_cycles s.s_user
              - user Htm.Counter.lock_wait_cycles p_user;
            w_wasted_cycles = s.s_wasted_cycles - p_wasted;
            w_accesses = s.s_accesses - p_accesses;
          }
        in
        go clock (Some s) (w :: acc) rest
  in
  go 0 None [] snaps

let window_aborts_total w = Array.fold_left ( + ) 0 w.w_aborts

let window_to_json w =
  let fops = float_of_int (max 1 w.w_ops) in
  Json.Obj
    [
      ("window_start", Json.Int w.w_start);
      ("window_end", Json.Int w.w_end);
      ("ops", Json.Int w.w_ops);
      ("commits", Json.Int w.w_commits);
      ("aborts_total", Json.Int (window_aborts_total w));
      ( "aborts",
        abort_classes_json (Array.map (fun v -> Json.Int v) w.w_aborts) );
      ("aborts_per_op", Json.Float (float_of_int (window_aborts_total w) /. fops));
      ("fallbacks", Json.Int w.w_fallbacks);
      ("lock_wait_cycles", Json.Int w.w_lock_wait_cycles);
      ("wasted_cycles", Json.Int w.w_wasted_cycles);
      ("accesses", Json.Int w.w_accesses);
    ]

(* ---------- result and aggregate records ---------- *)

let context_fields ?experiment ?run ~record () =
  ("schema_version", Json.Int schema_version)
  :: ("record", Json.Str record)
  ::
  ((match experiment with
   | Some e -> [ ("experiment", Json.Str e) ]
   | None -> [])
  @
  match run with
  | Some i -> [ ("run", Json.Int i) ]
  | None -> [])

let result_to_json ?experiment ?run (r : Runner.result) =
  Json.Obj
    (context_fields ?experiment ?run ~record:"result" ()
    @ [
        ("tree", Json.Str r.Runner.r_name);
        ("strategy", Json.Str r.r_strategy);
        ("capacity_model", Json.Str r.r_capacity_model);
        ("threads", Json.Int r.r_threads);
        ("ops", Json.Int r.r_ops);
        ("cycles", Json.Int r.r_cycles);
        ("mops", Json.Float r.r_mops);
        ("aborts_per_op", Json.Float r.r_aborts_per_op);
        ( "abort_classes",
          abort_classes_json (Array.map (fun v -> Json.Float v) r.r_abort_classes)
        );
        ("commits_per_op", Json.Float r.r_commits_per_op);
        ("wasted_pct", Json.Float r.r_wasted_pct);
        ("fallbacks_per_op", Json.Float r.r_fallbacks_per_op);
        ("retries_per_op", Json.Float r.r_retries_per_op);
        ("lock_wait_pct", Json.Float r.r_lock_wait_pct);
        ("consistency_retries_per_op", Json.Float r.r_consistency_retries_per_op);
        ("watchdog_trips_per_op", Json.Float r.r_watchdog_trips_per_op);
        ("starvation_backoffs_per_op", Json.Float r.r_starvation_backoffs_per_op);
        ("convoy_events_per_op", Json.Float r.r_convoy_events_per_op);
        ("fast_path_wins_per_op", Json.Float r.r_fast_path_wins_per_op);
        ("middle_path_wins_per_op", Json.Float r.r_middle_path_wins_per_op);
        ("software_path_wins_per_op", Json.Float r.r_software_path_wins_per_op);
        ("helped_ops_per_op", Json.Float r.r_helped_ops_per_op);
        ("instr_per_op", Json.Float r.r_instr_per_op);
        ("lat_p50", Json.Int r.r_lat_p50);
        ("lat_p99", Json.Int r.r_lat_p99);
        ( "mem",
          Json.Obj
            [
              ("preload_bytes", Json.Int r.r_mem_preload_bytes);
              ("live_bytes", Json.Int r.r_mem_live_bytes);
              ("reserved_peak_bytes", Json.Int r.r_mem_reserved_peak_bytes);
              ("lock_bytes", Json.Int r.r_mem_lock_bytes);
            ] );
        ( "snapshots",
          Json.List
            (List.map window_to_json (windows_of_snapshots r.r_snapshots)) );
      ])

(* ---------- sanitizer records ---------- *)

let san_finding_to_json (f : Euno_san.San.finding) =
  Json.Obj
    [
      ("kind", Json.Str (Euno_san.San.kind_name f.Euno_san.San.f_kind));
      ("subject", Json.Str f.f_subject);
      ("tid", Json.Int f.f_tid);
      ("clock", Json.Int f.f_clock);
      ("detail", Json.Str f.f_detail);
    ]

(* One record per sanitized run: the verdict of the EunoSan pass
   (bin/euno_san and the euno_repro san subcommand emit these). *)
let san_to_json ?experiment ?run ~tree ~workload ~strategy ~capacity_model
    ~threads ~seed (s : Euno_san.San.summary) =
  Json.Obj
    (context_fields ?experiment ?run ~record:"san" ()
    @ [
        ("tree", Json.Str tree);
        ("workload", Json.Str workload);
        ("strategy", Json.Str strategy);
        ("capacity_model", Json.Str capacity_model);
        ("threads", Json.Int threads);
        ("seed", Json.Int seed);
        ("events", Json.Int s.Euno_san.San.events);
        ("findings_total", Json.Int s.total);
        ("findings", Json.List (List.map san_finding_to_json s.findings));
      ])

(* One record per EunoCheck campaign cell: the exploration budget spent
   and, on a violation, the size of the counterexample before/after
   shrinking plus the one-line repro descriptor (bin/euno_check and the
   euno_repro check subcommand emit these). *)
let check_to_json ?experiment ?run ~tree ~mix ~dist ~mutation ~strategy
    ~capacity_model ~threads ~seed ~policy ~runs ~events ~violation () =
  Json.Obj
    (context_fields ?experiment ?run ~record:"check" ()
    @ [
        ("tree", Json.Str tree);
        ("mix", Json.Str mix);
        ("dist", Json.Str dist);
        ("mutation", Json.Str mutation);
        ("strategy", Json.Str strategy);
        ("capacity_model", Json.Str capacity_model);
        ("threads", Json.Int threads);
        ("seed", Json.Int seed);
        ("policy", Json.Str policy);
        ("runs", Json.Int runs);
        ("events", Json.Int events);
        ("violations", Json.Int (match violation with None -> 0 | Some _ -> 1));
      ]
    @
    match violation with
    | None -> []
    | Some (fired, minimized, core, repro) ->
        [
          ( "violation",
            Json.Obj
              [
                ("preemptions_fired", Json.Int fired);
                ("preemptions_minimized", Json.Int minimized);
                ("core_events", Json.Int core);
                ("repro", Json.Str repro);
              ] );
        ])

(* One record per strategy-sweep campaign cell: a figure cell (figure,
   tree, theta, threads) crossed with the {strategy} x {capacity model}
   matrix, flattened to the metrics the per-figure comparison tables and
   EXPERIMENTS.md's collapse-shape analysis read (Figures.strategy_sweep
   emits these through euno_repro's --json sink). *)
let sweep_to_json ?experiment ?run ~figure ~theta (r : Runner.result) =
  Json.Obj
    (context_fields ?experiment ?run ~record:"sweep" ()
    @ [
        ("figure", Json.Str figure);
        ("tree", Json.Str r.Runner.r_name);
        ("strategy", Json.Str r.r_strategy);
        ("capacity_model", Json.Str r.r_capacity_model);
        ("threads", Json.Int r.r_threads);
        ("theta", Json.Float theta);
        ("ops", Json.Int r.r_ops);
        ("mops", Json.Float r.r_mops);
        ("aborts_per_op", Json.Float r.r_aborts_per_op);
        ("commits_per_op", Json.Float r.r_commits_per_op);
        ("wasted_pct", Json.Float r.r_wasted_pct);
        ("fallbacks_per_op", Json.Float r.r_fallbacks_per_op);
        ("lock_wait_pct", Json.Float r.r_lock_wait_pct);
        ("fast_path_wins_per_op", Json.Float r.r_fast_path_wins_per_op);
        ("middle_path_wins_per_op", Json.Float r.r_middle_path_wins_per_op);
        ("software_path_wins_per_op", Json.Float r.r_software_path_wins_per_op);
        ("helped_ops_per_op", Json.Float r.r_helped_ops_per_op);
      ])

let aggregate_to_json ?experiment (a : Runner.aggregate) =
  Json.Obj
    (context_fields ?experiment ~record:"aggregate" ()
    @ [
        ("runs", Json.Int (List.length a.Runner.a_runs));
        ("mean_mops", Json.Float a.a_mean_mops);
        ("stddev_mops", Json.Float a.a_stddev_mops);
        ("min_mops", Json.Float a.a_min_mops);
        ("max_mops", Json.Float a.a_max_mops);
        ( "results",
          Json.List (List.map (fun r -> result_to_json r) a.Runner.a_runs) );
      ])

(* One JSONL line per window of one run, self-describing (schema version,
   experiment, tree, threads) so lines from different runs can be
   concatenated and still grouped downstream. *)
let snapshot_lines ?experiment ?run (r : Runner.result) =
  List.map
    (fun w ->
      match window_to_json w with
      | Json.Obj fields ->
          Json.Obj
            (context_fields ?experiment ?run ~record:"window" ()
            @ [
                ("tree", Json.Str r.Runner.r_name);
                ("threads", Json.Int r.r_threads);
              ]
            @ fields)
      | other -> other)
    (windows_of_snapshots r.Runner.r_snapshots)

(* ---------- documents and files ---------- *)

let document ~experiment records =
  Json.Obj
    [
      ("schema_version", Json.Int schema_version);
      ("generator", Json.Str "euno-repro");
      ("experiment", Json.Str experiment);
      ("records", Json.List records);
    ]

let write_file path json =
  let oc = open_out path in
  output_string oc (Json.to_string ~pretty:true json);
  output_char oc '\n';
  close_out oc

let write_jsonl path lines =
  let oc = open_out path in
  List.iter
    (fun json ->
      output_string oc (Json.to_string json);
      output_char oc '\n')
    lines;
  close_out oc

(* ---------- schema validation ---------- *)

(* Field-presence/type validation of our own output: cheap enough for CI
   smoke checks and round-trip tests, strict enough to catch a renamed or
   dropped field before a downstream plotting script does. *)

let check cond msg = if cond then Ok () else Error msg

let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e

let require_field obj name kind_ok =
  match Json.member name obj with
  | None -> Error (Printf.sprintf "missing field '%s'" name)
  | Some v -> check (kind_ok v) (Printf.sprintf "field '%s' has wrong type" name)

let is_int v = Json.as_int v <> None
let is_num v = Json.as_float v <> None
let is_str v = Json.as_string v <> None
let is_obj v = Json.as_obj v <> None
let is_list v = Json.as_list v <> None
let is_bool v = match v with Json.Bool _ -> true | _ -> false

let validate_version obj =
  match Json.member "schema_version" obj with
  | Some (Json.Int v) when v = schema_version -> Ok ()
  | Some (Json.Int v) ->
      Error (Printf.sprintf "schema_version %d, expected %d" v schema_version)
  | _ -> Error "missing schema_version"

(* Records that describe a run carry the fallback strategy and capacity
   model it was executed under; both must be names the binaries actually
   accept, so a sweep writing a typo'd cell fails schema check instead of
   silently partitioning downstream plots. *)
let require_strategy_fields obj =
  let named field names =
    match Json.member field obj with
    | None -> Error (Printf.sprintf "missing field '%s'" field)
    | Some v -> (
        match Json.as_string v with
        | None -> Error (Printf.sprintf "field '%s' has wrong type" field)
        | Some s ->
            check (List.mem s names)
              (Printf.sprintf "field '%s' has unknown value '%s'" field s))
  in
  let* () = named "strategy" Htm.strategy_names in
  named "capacity_model" Euno_sim.Cost.capacity_model_names

let validate_result obj =
  let* () = validate_version obj in
  let* () = require_field obj "tree" is_str in
  let* () = require_strategy_fields obj in
  let* () = require_field obj "threads" is_int in
  let* () = require_field obj "ops" is_int in
  let* () = require_field obj "cycles" is_int in
  let* () = require_field obj "mops" is_num in
  let* () = require_field obj "aborts_per_op" is_num in
  let* () = require_field obj "abort_classes" is_obj in
  let* () = require_field obj "wasted_pct" is_num in
  let* () = require_field obj "watchdog_trips_per_op" is_num in
  let* () = require_field obj "starvation_backoffs_per_op" is_num in
  let* () = require_field obj "convoy_events_per_op" is_num in
  let* () = require_field obj "fast_path_wins_per_op" is_num in
  let* () = require_field obj "middle_path_wins_per_op" is_num in
  let* () = require_field obj "software_path_wins_per_op" is_num in
  let* () = require_field obj "helped_ops_per_op" is_num in
  let* () = require_field obj "lat_p50" is_int in
  let* () = require_field obj "lat_p99" is_int in
  let* () = require_field obj "mem" is_obj in
  require_field obj "snapshots" is_list

let validate_window obj =
  let* () = validate_version obj in
  let* () = require_field obj "window_start" is_int in
  let* () = require_field obj "window_end" is_int in
  let* () = require_field obj "ops" is_int in
  let* () = require_field obj "commits" is_int in
  let* () = require_field obj "aborts" is_obj in
  let* () = require_field obj "aborts_per_op" is_num in
  let* () = require_field obj "fallbacks" is_int in
  require_field obj "wasted_cycles" is_int

let validate_aggregate obj =
  let* () = validate_version obj in
  let* () = require_field obj "runs" is_int in
  let* () = require_field obj "mean_mops" is_num in
  let* () =
    match Json.member "results" obj with
    | Some (Json.List rs) ->
        List.fold_left
          (fun acc r -> match acc with Error _ -> acc | Ok () -> validate_result r)
          (Ok ()) rs
    | _ -> Error "missing results list"
  in
  Ok ()

(* Chaos records are produced by the Chaos harness (fault-injection
   campaigns); Chaos builds the JSON, this is its contract. *)
let validate_chaos obj =
  let* () = validate_version obj in
  let* () = require_field obj "tree" is_str in
  let* () = require_field obj "threads" is_int in
  let* () = require_field obj "seed" is_int in
  let* () = require_field obj "horizon_cycles" is_int in
  let* () = require_field obj "plan" is_list in
  let* () = require_field obj "ops" is_int in
  let* () = require_field obj "failed_ops" is_int in
  let* () = require_field obj "cycles" is_int in
  let* () = require_field obj "mops_clean" is_num in
  let* () = require_field obj "mops_fault" is_num in
  let* () = require_field obj "mops_after" is_num in
  let* () = require_field obj "recovery_cycles" is_int in
  let* () = require_field obj "recovered" is_bool in
  let* () = require_field obj "invariant_violations" is_int in
  let* () = require_field obj "model_mismatches" is_int in
  let* () = require_field obj "checkpoints" is_int in
  let* () = require_field obj "aborts" is_obj in
  let* () = require_field obj "degradation" is_obj in
  require_field obj "snapshots" is_list

(* Recovery records are produced by the Dura_run harness (crash-recovery
   campaigns): one record per crash cell, carrying the durability state
   at the crash (snapshot/log positions, lost suffix), the recovery work
   actually done (replayed / re-run / stuck ops, cycles vs. the linear
   bound) and the checker verdict. *)
let validate_recovery obj =
  let* () = validate_version obj in
  let* () = require_field obj "tree" is_str in
  let* () = require_field obj "threads" is_int in
  let* () = require_field obj "seed" is_int in
  let* () = require_field obj "horizon_cycles" is_int in
  let* () = require_field obj "crash_cycle" is_int in
  let* () = require_field obj "plan" is_list in
  let* () = require_field obj "snapshots_taken" is_int in
  let* () = require_field obj "snapshot_lsn" is_int in
  let* () = require_field obj "log_len" is_int in
  let* () = require_field obj "flushed_lsn" is_int in
  let* () = require_field obj "lost_suffix" is_int in
  let* () = require_field obj "replayed" is_int in
  let* () = require_field obj "rerun" is_int in
  let* () = require_field obj "stuck_recovery_ops" is_int in
  let* () = require_field obj "recovery_cycles" is_int in
  let* () = require_field obj "work_bound_cycles" is_int in
  let* () = require_field obj "recovered" is_bool in
  let* () = require_field obj "findings_total" is_int in
  match Json.member "findings" obj with
  | Some (Json.List fs) ->
      List.fold_left
        (fun acc f ->
          match acc with
          | Error _ -> acc
          | Ok () ->
              let* () = require_field f "kind" is_str in
              require_field f "detail" is_str)
        (Ok ()) fs
  | _ -> Error "missing findings list"

(* Perf records feed the regression gate (bin/euno_perf_check): one probe
   per record, compared against bench/baseline.json by name.  [metric]
   names the unit and implies the direction of "worse" (see Perf_gate). *)
let validate_perf obj =
  let* () = validate_version obj in
  let* () = require_field obj "name" is_str in
  let* () = require_strategy_fields obj in
  let* () = require_field obj "metric" is_str in
  require_field obj "value" is_num

(* San records carry the sanitizer verdict of one run; [findings] entries
   are objects with kind/subject/tid/clock/detail. *)
let validate_san obj =
  let* () = validate_version obj in
  let* () = require_field obj "tree" is_str in
  let* () = require_field obj "workload" is_str in
  let* () = require_strategy_fields obj in
  let* () = require_field obj "threads" is_int in
  let* () = require_field obj "seed" is_int in
  let* () = require_field obj "events" is_int in
  let* () = require_field obj "findings_total" is_int in
  match Json.member "findings" obj with
  | Some (Json.List fs) ->
      List.fold_left
        (fun acc f ->
          match acc with
          | Error _ -> acc
          | Ok () ->
              let* () = require_field f "kind" is_str in
              let* () = require_field f "subject" is_str in
              let* () = require_field f "tid" is_int in
              let* () = require_field f "clock" is_int in
              require_field f "detail" is_str)
        (Ok ()) fs
  | _ -> Error "missing findings list"

(* Check records carry one EunoCheck campaign cell; a nested [violation]
   object (with the shrunk counterexample and repro line) appears exactly
   when [violations] is non-zero. *)
let validate_check obj =
  let* () = validate_version obj in
  let* () = require_field obj "tree" is_str in
  let* () = require_field obj "mix" is_str in
  let* () = require_field obj "dist" is_str in
  let* () = require_field obj "mutation" is_str in
  let* () = require_strategy_fields obj in
  let* () = require_field obj "threads" is_int in
  let* () = require_field obj "seed" is_int in
  let* () = require_field obj "policy" is_str in
  let* () = require_field obj "runs" is_int in
  let* () = require_field obj "events" is_int in
  let* () = require_field obj "violations" is_int in
  match (Json.member "violations" obj, Json.member "violation" obj) with
  | Some (Json.Int 0), None -> Ok ()
  | Some (Json.Int 0), Some _ -> Error "violation object with violations = 0"
  | Some (Json.Int _), Some v ->
      let* () = require_field v "preemptions_fired" is_int in
      let* () = require_field v "preemptions_minimized" is_int in
      let* () = require_field v "core_events" is_int in
      require_field v "repro" is_str
  | _ -> Error "missing violation object"

(* Sweep records carry one strategy x capacity-model campaign cell: the
   figure cell coordinates plus the flattened throughput/abort/path-win
   metrics (Figures.strategy_sweep emits them via sweep_to_json). *)
let validate_sweep obj =
  let* () = validate_version obj in
  let* () = require_field obj "figure" is_str in
  let* () = require_field obj "tree" is_str in
  let* () = require_strategy_fields obj in
  let* () = require_field obj "threads" is_int in
  let* () = require_field obj "theta" is_num in
  let* () = require_field obj "ops" is_int in
  let* () = require_field obj "mops" is_num in
  let* () = require_field obj "aborts_per_op" is_num in
  let* () = require_field obj "commits_per_op" is_num in
  let* () = require_field obj "wasted_pct" is_num in
  let* () = require_field obj "fallbacks_per_op" is_num in
  let* () = require_field obj "lock_wait_pct" is_num in
  let* () = require_field obj "fast_path_wins_per_op" is_num in
  let* () = require_field obj "middle_path_wins_per_op" is_num in
  let* () = require_field obj "software_path_wins_per_op" is_num in
  require_field obj "helped_ops_per_op" is_num

(* Lint records carry one EunoLint finding (bin/euno_lint --json): the
   source coordinate, the rule-id (closed vocabulary — drift between the
   engine and the schema is itself a schema error), and whether a
   reasoned allow-directive muted it. *)
let lint_to_json ?experiment ~file ~line ~col ~rule ~msg ?reason () =
  Json.Obj
    (context_fields ?experiment ~record:"lint" ()
    @ [
        ("file", Json.Str file);
        ("line", Json.Int line);
        ("col", Json.Int col);
        ("rule", Json.Str rule);
        ("msg", Json.Str msg);
        ("suppressed", Json.Bool (reason <> None));
      ]
    @ match reason with Some r -> [ ("reason", Json.Str r) ] | None -> [])

let validate_lint obj =
  let* () = validate_version obj in
  let* () = require_field obj "file" is_str in
  let* () = require_field obj "line" is_int in
  let* () = require_field obj "col" is_int in
  let* () = require_field obj "rule" is_str in
  let* () = require_field obj "msg" is_str in
  let* () = require_field obj "suppressed" is_bool in
  let rule =
    match Json.member "rule" obj with Some (Json.Str r) -> r | _ -> ""
  in
  if not (List.mem rule Eunolint.Lint.rule_names) then
    Error (Printf.sprintf "unknown lint rule '%s'" rule)
  else
    match (Json.member "suppressed" obj, Json.member "reason" obj) with
    | Some (Json.Bool true), _ -> require_field obj "reason" is_str
    | Some (Json.Bool false), Some _ ->
        Error "reason present on an unsuppressed lint finding"
    | _ -> Ok ()

let validate_record obj =
  match Json.member "record" obj with
  | Some (Json.Str "result") -> validate_result obj
  | Some (Json.Str "window") -> validate_window obj
  | Some (Json.Str "aggregate") -> validate_aggregate obj
  | Some (Json.Str "chaos") -> validate_chaos obj
  | Some (Json.Str "recovery") -> validate_recovery obj
  | Some (Json.Str "perf") -> validate_perf obj
  | Some (Json.Str "san") -> validate_san obj
  | Some (Json.Str "check") -> validate_check obj
  | Some (Json.Str "sweep") -> validate_sweep obj
  | Some (Json.Str "lint") -> validate_lint obj
  | Some (Json.Str "micro") ->
      let* () = require_field obj "name" is_str in
      require_field obj "ns_per_call" is_num
  | Some (Json.Str other) -> Error (Printf.sprintf "unknown record type '%s'" other)
  | _ -> Error "missing record type"

let validate_document json =
  let* () = validate_version json in
  let* () = require_field json "experiment" is_str in
  match Json.member "records" json with
  | Some (Json.List records) ->
      List.fold_left
        (fun acc r -> match acc with Error _ -> acc | Ok () -> validate_record r)
        (Ok ()) records
  | _ -> Error "missing records list"

(* ---------- collection ---------- *)

(* The collector observes Runner.on_result, so every run — whatever figure
   helper or ad-hoc path produced it — lands in the document.  Both the
   collector slot and the observer it installs are domain-local: a pool
   worker that needs local collection gets its own, and the main domain's
   document only ever contains results delivered on the main domain (its
   own runs plus the pool's canonical-order replay). *)
type collector = { mutable results : Runner.result list (* newest first *) }

let active : collector option Euno_sim.Domain_ref.t =
  Euno_sim.Domain_ref.create (fun () -> None)

let start_collecting () =
  let c = { results = [] } in
  Euno_sim.Domain_ref.set active (Some c);
  Euno_sim.Domain_ref.set Runner.on_result
    (Some (fun r -> c.results <- r :: c.results))

let collected () =
  match Euno_sim.Domain_ref.get active with
  | Some c -> List.rev c.results
  | None -> []

let stop_collecting () =
  Euno_sim.Domain_ref.set active None;
  Euno_sim.Domain_ref.set Runner.on_result None

(* Write everything collected since [start_collecting]:
   [json] gets the full schema-versioned document, [snapshots] gets the
   windowed time series as JSONL (one line per window per run). *)
let flush_collected ~experiment ?json ?snapshots () =
  let results = collected () in
  (match json with
  | Some path ->
      write_file path
        (document ~experiment
           (List.mapi (fun i r -> result_to_json ~experiment ~run:i r) results))
  | None -> ());
  match snapshots with
  | Some path ->
      write_jsonl path
        (List.concat_map
           (fun (i, r) -> snapshot_lines ~experiment ~run:i r)
           (List.mapi (fun i r -> (i, r)) results))
  | None -> ()
