(* Linearizability checking of concurrent key-value histories.

   Test harnesses record one event per completed operation — invocation
   and response timestamps in simulated cycles (exact, thanks to the
   deterministic machine) plus the operation and its observed result — and
   the checker searches for a linearization: a total order that respects
   real time (if op A responded before op B was invoked, A precedes B) and
   agrees with the sequential specification of a map.

   Two engines share the work:

   - Scan-free histories are checked *compositionally*.  Every point
     operation touches exactly one key, keys are independent sub-objects
     of the map, and linearizability is local (Herlihy & Wing): the
     history is linearizable iff each per-key sub-history is.  Each
     sub-history is searched with Wing & Gong's algorithm over the tiny
     per-key state (one [int option]) with a sorted-by-invocation
     candidate frontier, so thousands of events check in milliseconds and
     the old 62-event cap does not apply.

   - Histories containing Scan (which reads many keys atomically) fall
     back to the bounded whole-history Wing & Gong search over the full
     map state, capped at 62 events exactly as before.

   Either way the checker returns a witness linearization on success, or a
   greedily minimized non-linearizable core on failure (a debugging aid:
   the core is itself non-linearizable from the same initial state, and
   shrinking never reintroduces legality). *)

type op =
  | Get of int * int option (* key, observed result *)
  | Put of int * int
  | Delete of int * bool (* key, observed success *)
  | Rmw of int * int option * int (* key, observed prior, stored value *)
  | Scan of int * int * (int * int) list (* from, count, observed bindings *)

type event = {
  tid : int;
  invoked : int; (* simulated cycles *)
  responded : int;
  op : op;
}

let op_to_string = function
  | Get (k, Some v) -> Printf.sprintf "get %d = Some %d" k v
  | Get (k, None) -> Printf.sprintf "get %d = None" k
  | Put (k, v) -> Printf.sprintf "put %d %d" k v
  | Delete (k, ok) -> Printf.sprintf "delete %d = %b" k ok
  | Rmw (k, Some p, v) -> Printf.sprintf "rmw %d (Some %d -> %d)" k p v
  | Rmw (k, None, v) -> Printf.sprintf "rmw %d (None -> %d)" k v
  | Scan (from, count, obs) ->
      Printf.sprintf "scan %d #%d = [%s]" from count
        (String.concat "; "
           (List.map (fun (k, v) -> Printf.sprintf "%d:%d" k v) obs))

let key_of_op = function
  | Get (k, _) | Put (k, _) | Delete (k, _) | Rmw (k, _, _) -> Some k
  | Scan _ -> None

(* A recorder for one run: threads append from the machine body. *)
type recorder = { mutable events : event list }

let recorder () = { events = [] }

let record r ~tid ~invoked ~responded op =
  if invoked < 0 || responded < invoked then
    invalid_arg
      (Printf.sprintf
         "History.record: bad interval [%d, %d] (negative or responded < \
          invoked)"
         invoked responded);
  r.events <- { tid; invoked; responded; op } :: r.events

let events r = List.rev r.events

module IntMap = Map.Make (Int)

(* ---------- sequential specification ---------- *)

let scan_model state ~from ~count =
  let rec take n seq =
    if n = 0 then []
    else
      match seq () with
      | Seq.Nil -> []
      | Seq.Cons (kv, rest) -> kv :: take (n - 1) rest
  in
  take count (IntMap.to_seq_from from state)

(* Apply an operation to the full-map model; None if the observed result
   contradicts the model state. *)
let apply state = function
  | Get (k, observed) ->
      if IntMap.find_opt k state = observed then Some state else None
  | Put (k, v) -> Some (IntMap.add k v state)
  | Delete (k, observed) ->
      if IntMap.mem k state = observed then Some (IntMap.remove k state)
      else None
  | Rmw (k, observed, v) ->
      if IntMap.find_opt k state = observed then Some (IntMap.add k v state)
      else None
  | Scan (from, count, observed) ->
      if scan_model state ~from ~count = observed then Some state else None

(* Apply a point operation to its key's sub-state. *)
let apply_key (state : int option) op : int option option =
  match op with
  | Get (_, observed) -> if observed = state then Some state else None
  | Put (_, v) -> Some (Some v)
  | Delete (_, observed) ->
      if observed = (state <> None) then Some None else None
  | Rmw (_, observed, v) -> if observed = state then Some (Some v) else None
  | Scan _ -> assert false (* never partitioned by key *)

(* ---------- bounded whole-history search (handles Scan) ---------- *)

exception Found

(* Wing & Gong over the full map state, n <= 62, int done-mask, memo on
   (done-mask, state).  Returns the witness order as indices, or None. *)
let wg_full init (evs : event array) : int list option =
  let n = Array.length evs in
  if n > 62 then
    invalid_arg "History: histories with Scan are limited to 62 events";
  let full = (1 lsl n) - 1 in
  let memo = Hashtbl.create 4096 in
  let path = ref [] in
  (* ev i may be linearized next (given pending set) iff no other pending
     event responded before its invocation. *)
  let minimal pending i =
    let rec go j =
      if j >= n then true
      else if
        j <> i
        && pending land (1 lsl j) <> 0
        && evs.(j).responded < evs.(i).invoked
      then false
      else go (j + 1)
    in
    go 0
  in
  let rec search done_mask state =
    if done_mask = full then raise Found;
    let key = (done_mask, IntMap.bindings state) in
    if not (Hashtbl.mem memo key) then begin
      Hashtbl.add memo key ();
      let pending = full land lnot done_mask in
      for i = 0 to n - 1 do
        if pending land (1 lsl i) <> 0 && minimal pending i then
          match apply state evs.(i).op with
          | Some state' ->
              path := i :: !path;
              search (done_mask lor (1 lsl i)) state';
              path := List.tl !path
          | None -> ()
      done
    end
  in
  match search 0 init with
  | () -> None
  | exception Found -> Some (List.rev !path)

(* ---------- per-key search (unbounded length) ---------- *)

(* Wing & Gong over one key's sub-history.  The state is one [int option],
   the done-set a byte mask (no 62-event cap), and candidates come from a
   frontier scan: with events sorted by invocation, an event is a legal
   next linearization exactly while its invocation does not exceed the
   minimum response among pending events scanned before it — every later
   event responds after its own (later) invocation, so the scan stops at
   the first pending event past the bound.  The frontier is at most the
   run's thread count wide, which keeps the search effectively quadratic
   on real histories. *)
let wg_key (init : int option) (evs : event array) : int list option =
  let n = Array.length evs in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = compare evs.(a).invoked evs.(b).invoked in
      if c <> 0 then c
      else
        let c = compare evs.(a).responded evs.(b).responded in
        if c <> 0 then c else compare a b)
    order;
  let sorted = Array.map (fun i -> evs.(i)) order in
  let mask = Bytes.make ((n + 7) / 8) '\000' in
  let is_done i =
    Char.code (Bytes.get mask (i lsr 3)) land (1 lsl (i land 7)) <> 0
  in
  let set_done i v =
    let b = Char.code (Bytes.get mask (i lsr 3)) in
    let bit = 1 lsl (i land 7) in
    Bytes.set mask (i lsr 3) (Char.chr (if v then b lor bit else b land lnot bit))
  in
  let memo = Hashtbl.create 4096 in
  let memo_key state =
    Bytes.to_string mask
    ^ match state with None -> "N" | Some v -> string_of_int v
  in
  let path = ref [] in
  (* Pending candidates in sorted order, smallest invocation first. *)
  let candidates () =
    let rec go i bound acc =
      if i >= n then List.rev acc
      else if is_done i then go (i + 1) bound acc
      else if sorted.(i).invoked > bound then List.rev acc
      else go (i + 1) (min bound sorted.(i).responded) (i :: acc)
    in
    go 0 max_int []
  in
  let rec search remaining state =
    if remaining = 0 then raise Found;
    let key = memo_key state in
    if not (Hashtbl.mem memo key) then begin
      Hashtbl.add memo key ();
      List.iter
        (fun i ->
          match apply_key state sorted.(i).op with
          | Some state' ->
              set_done i true;
              path := i :: !path;
              search (remaining - 1) state';
              path := List.tl !path;
              set_done i false
          | None -> ())
        (candidates ())
    end
  in
  match search n init with
  | () -> None
  | exception Found -> Some (List.rev_map (fun i -> order.(i)) !path)

(* ---------- compositional checking and witness merging ---------- *)

type verdict =
  | Linearizable of event list (* a witness linearization, in order *)
  | Illegal of event list (* a minimized non-linearizable core *)

let validate evs =
  List.iter
    (fun e ->
      if e.invoked < 0 || e.responded < e.invoked then
        invalid_arg
          (Printf.sprintf "History: bad interval [%d, %d]" e.invoked
             e.responded))
    evs

(* Assign linearization points to one key's witness: each event gets
   (base, tick) with base = max(own invocation, predecessor's base) and
   tick counting ties.  Because the witness respects per-key real time,
   base never exceeds the event's own response — so if event A responded
   before event B (of any key) was invoked, A's base is strictly smaller
   than B's and a global sort by (base, tick) respects cross-key real time
   while preserving every per-key order: a valid whole-history witness. *)
let assign_points evs_in_order =
  let rec go base tick acc = function
    | [] -> List.rev acc
    | e :: rest ->
        if e.invoked > base then go e.invoked 0 ((e.invoked, 0, e) :: acc) rest
        else go base (tick + 1) ((base, tick + 1, e) :: acc) rest
  in
  go (-1) 0 [] evs_in_order

(* Greedy shrink of a non-linearizable sub-history: drop events (latest
   invocation first) while the remainder stays non-linearizable under
   [still_illegal].  The result is a genuine counterexample from the same
   initial state, kept small for human eyes. *)
let minimize_core still_illegal evs =
  let sorted =
    List.sort (fun a b -> compare b.invoked a.invoked) evs
  in
  let rec drop_each kept = function
    | [] -> List.rev kept
    | e :: rest ->
        let without = List.rev_append kept rest in
        if still_illegal without then drop_each kept rest
        else drop_each (e :: kept) rest
  in
  let core = drop_each [] sorted in
  List.sort (fun a b -> compare a.invoked b.invoked) core

let check ?(init = IntMap.empty) evs =
  validate evs;
  let has_scan =
    List.exists (fun e -> match e.op with Scan _ -> true | _ -> false) evs
  in
  if has_scan then begin
    let arr = Array.of_list evs in
    match wg_full init arr with
    | Some order -> Linearizable (List.map (fun i -> arr.(i)) order)
    | None ->
        let illegal sub = wg_full init (Array.of_list sub) = None in
        Illegal (minimize_core illegal evs)
  end
  else begin
    (* Partition by key (ascending, deterministic), check each key's
       sub-history independently, merge witnesses. *)
    let by_key =
      List.fold_left
        (fun acc e ->
          match key_of_op e.op with
          | Some k ->
              IntMap.update k
                (function Some l -> Some (e :: l) | None -> Some [ e ])
                acc
          | None -> acc)
        IntMap.empty evs
    in
    let result =
      IntMap.fold
        (fun k rev_evs acc ->
          match acc with
          | Error _ -> acc
          | Ok witnesses -> (
              let arr = Array.of_list (List.rev rev_evs) in
              match wg_key (IntMap.find_opt k init) arr with
              | Some order ->
                  Ok (List.map (fun i -> arr.(i)) order :: witnesses)
              | None -> Error (k, Array.to_list arr)))
        by_key (Ok [])
    in
    match result with
    | Ok witnesses ->
        let pointed = List.concat_map assign_points witnesses in
        let sorted =
          List.sort
            (fun (b1, t1, e1) (b2, t2, e2) ->
              let c = compare b1 b2 in
              if c <> 0 then c
              else
                let c = compare t1 t2 in
                if c <> 0 then c else compare (key_of_op e1.op) (key_of_op e2.op))
            pointed
        in
        Linearizable (List.map (fun (_, _, e) -> e) sorted)
    | Error (k, sub) ->
        let illegal s =
          wg_key (IntMap.find_opt k init) (Array.of_list s) = None
        in
        Illegal (minimize_core illegal sub)
  end

let linearizable ?init evs =
  match check ?init evs with Linearizable _ -> true | Illegal _ -> false

(* A human-readable dump for failing tests. *)
let to_string evs =
  String.concat "\n"
    (List.map
       (fun e ->
         Printf.sprintf "  t%d [%d, %d] %s" e.tid e.invoked e.responded
           (op_to_string e.op))
       evs)
