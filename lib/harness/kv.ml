(* A uniform key-value interface over the four tree variants the paper
   evaluates (Section 5.1): the conventional HTM-B+Tree, the Euno-B+Tree
   (any Config, for the Figure 13 ablation), the Masstree-derived
   lock-based tree, and HTM-Masstree. *)

module Config = Eunomia.Config

type kind =
  | Htm_bptree
  | Euno of Config.t
  | Masstree
  | Htm_masstree
  | Lock_bptree (* coarse-lock baseline, not part of the paper's four *)

let kind_name = function
  | Htm_bptree -> "HTM-B+Tree"
  | Euno _ -> "Euno-B+Tree"
  | Masstree -> "Masstree"
  | Htm_masstree -> "HTM-Masstree"
  | Lock_bptree -> "Lock-B+Tree"

(* The paper's four comparison systems, in plotting order. *)
let all_kinds = [ Euno Config.full; Htm_bptree; Masstree; Htm_masstree ]

type t = {
  name : string;
  get : int -> int option;
  put : int -> int -> unit;
  delete : int -> bool;
  scan : from:int -> count:int -> (int * int) list;
  check : unit -> unit; (* single-threaded invariant validation *)
  snapshot : unit -> (int * int) list; (* full image, ascending keys *)
  restore : (int * int) list -> unit; (* reconcile tree to the image *)
}

(* All facades go through [make] so every variant gets the same derived
   durability operations: [snapshot] is a full-range scan, [restore] a
   reconciliation (delete what the image lacks, put what differs).  Both
   run through the normal tree ops, so their cost is charged in simulated
   cycles like any other traversal — a snapshot is not free. *)
let make ~name ~get ~put ~delete ~scan ~check =
  let snapshot () = scan ~from:0 ~count:max_int in
  let restore image =
    let current = snapshot () in
    let wanted = Hashtbl.create (List.length image * 2 + 16) in
    List.iter (fun (k, v) -> Hashtbl.replace wanted k v) image;
    List.iter
      (fun (k, _) -> if not (Hashtbl.mem wanted k) then ignore (delete k))
      current;
    let have = Hashtbl.create (List.length current * 2 + 16) in
    List.iter (fun (k, v) -> Hashtbl.replace have k v) current;
    List.iter
      (fun (k, v) -> if Hashtbl.find_opt have k <> Some v then put k v)
      image
  in
  { name; get; put; delete; scan; check; snapshot; restore }

(* ---------- facades over concrete trees ---------- *)

let of_htm_bptree name t =
  make ~name
    ~get:(Euno_bptree.Htm_bptree.get t)
    ~put:(Euno_bptree.Htm_bptree.put t)
    ~delete:(Euno_bptree.Htm_bptree.delete t)
    ~scan:(fun ~from ~count -> Euno_bptree.Htm_bptree.scan t ~from ~count)
    ~check:(fun () ->
      Euno_bptree.Bptree.check_invariants (Euno_bptree.Htm_bptree.tree t))

let of_euno name t =
  make ~name ~get:(Eunomia.Euno_tree.get t) ~put:(Eunomia.Euno_tree.put t)
    ~delete:(Eunomia.Euno_tree.delete t)
    ~scan:(fun ~from ~count -> Eunomia.Euno_tree.scan t ~from ~count)
    ~check:(fun () -> Eunomia.Euno_tree.check_invariants t)

let of_masstree name t =
  make ~name
    ~get:(Euno_masstree.Masstree.get t)
    ~put:(Euno_masstree.Masstree.put t)
    ~delete:(Euno_masstree.Masstree.delete t)
    ~scan:(fun ~from ~count -> Euno_masstree.Masstree.scan t ~from ~count)
    ~check:(fun () -> Euno_masstree.Masstree.check_invariants t)

let of_htm_masstree name t =
  make ~name
    ~get:(Euno_masstree.Htm_masstree.get t)
    ~put:(Euno_masstree.Htm_masstree.put t)
    ~delete:(Euno_masstree.Htm_masstree.delete t)
    ~scan:(fun ~from ~count -> Euno_masstree.Htm_masstree.scan t ~from ~count)
    ~check:(fun () ->
      Euno_masstree.Masstree.check_invariants
        (Euno_masstree.Htm_masstree.tree t))

(* Build a tree on the machine (run inside Machine.run/run_single).
   [policy] overrides the HTM retry policy; by default the baselines use
   the DBX policy and the Euno tree keeps its config's (cost-proportional)
   policy.  [records], when given, bulk-loads sorted distinct records (the
   YCSB load phase) instead of starting empty. *)
let build ?name ?policy ?records kind ~fanout ~map =
  let name = match name with Some n -> n | None -> kind_name kind in
  let policy_or d = Option.value policy ~default:d in
  let base_policy = policy_or Euno_htm.Htm.default_policy in
  match kind with
  | Htm_bptree ->
      let t =
        match records with
        | Some rs -> Euno_bptree.Bptree.bulk_load ~fanout ~map rs
        | None -> Euno_bptree.Bptree.create ~fanout ~map ()
      in
      of_htm_bptree name (Euno_bptree.Htm_bptree.of_tree ~policy:base_policy t)
  | Euno cfg ->
      let cfg =
        { cfg with Config.fanout; policy = policy_or cfg.Config.policy }
      in
      let t =
        match records with
        | Some rs -> Eunomia.Euno_tree.bulk_load ~cfg ~map rs
        | None -> Eunomia.Euno_tree.create ~cfg ~map ()
      in
      of_euno name t
  | Masstree ->
      let t =
        match records with
        | Some rs -> Euno_masstree.Masstree.bulk_load ~fanout ~map rs
        | None -> Euno_masstree.Masstree.create ~fanout ~map ()
      in
      of_masstree name t
  | Htm_masstree ->
      let t =
        match records with
        | Some rs ->
            Euno_masstree.Masstree.bulk_load ~elide:true ~fanout ~map rs
        | None -> Euno_masstree.Masstree.create ~elide:true ~fanout ~map ()
      in
      of_htm_masstree name
        (Euno_masstree.Htm_masstree.of_tree ~policy:base_policy t)
  | Lock_bptree ->
      let t =
        match records with
        | Some rs -> Euno_bptree.Bptree.bulk_load ~fanout ~map rs
        | None -> Euno_bptree.Bptree.create ~fanout ~map ()
      in
      let t = Euno_bptree.Lock_bptree.of_tree t in
      make ~name
        ~get:(Euno_bptree.Lock_bptree.get t)
        ~put:(Euno_bptree.Lock_bptree.put t)
        ~delete:(Euno_bptree.Lock_bptree.delete t)
        ~scan:(fun ~from ~count -> Euno_bptree.Lock_bptree.scan t ~from ~count)
        ~check:(fun () ->
          Euno_bptree.Bptree.check_invariants (Euno_bptree.Lock_bptree.tree t))
