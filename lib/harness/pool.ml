(* Domain-parallel campaign cell executor.

   Every campaign the harness runs — bench figure grids, San_run's
   strategy×capacity×tree matrix, Check_run's hunt sweeps, the
   Chaos/Dura per-tree campaigns, the Figures strategy sweep — is a list
   of independent cells, each deterministic per (config, seed): a cell
   builds its own Memory/Linemap/Alloc/Machine world and never touches
   another cell's.  [map] fans those cells out across OCaml 5 domains
   and merges the results in canonical index order, so the output is
   byte-identical to the sequential run regardless of domain count or
   completion order.

   Determinism discipline, in three parts:

   - {b Per-domain state.}  Everything process-global that a cell can
     touch is domain-local ([Euno_sim.Domain_ref]): the sanitizer arming
     flag and racy-word registry (Sev), the user-counter registry
     (Machine), the lockfree descriptor tables and every Testonly
     mutation switch (Htm/Masstree/Euno_tree/Dura), and the telemetry
     observer (Runner.on_result / Report's collector).  A cell running
     on one worker computes exactly what it would compute alone.

   - {b Canonical merge.}  Workers claim cell indices from a shared
     atomic counter (dynamic load balancing — cells have very uneven
     costs) and deposit results into an index-addressed slot array;
     [merge] then reads them back in index order.  Arrival order never
     reaches an observer.

   - {b Ordered replay.}  Results a cell delivers through the
     domain-local [Runner.on_result] observer are captured per cell and
     replayed into the {e main} domain's observer in cell order after
     the join, so a [Report.start_collecting] document assembled around
     a parallel campaign lists runs in exactly the sequential order.

   Exceptions: each cell's outcome is stored as a [result]; after every
   worker joins, the lowest-indexed failing cell's exception is re-raised
   (with its backtrace), matching which failure a sequential run would
   have surfaced.  Cells after it have already executed — their effects
   are discarded, not replayed.

   The sequential path ([domains <= 1], the default) is a plain
   [List.map] with no spawning, no capture and no replay: the historical
   byte streams (golden traces, every committed JSON) are reproduced by
   construction. *)

module Domain_ref = Euno_sim.Domain_ref

(* Testonly: completion-order adversary.  The differential determinism
   suite installs a per-cell delay here so workers finish in a shuffled
   order; the merged output must not move.  A plain (not domain-local)
   ref on purpose: it is written only while no worker domain exists
   (before spawn / after join, with Domain.spawn/join providing the
   happens-before edges), and workers only read it. *)
module Testonly = struct
  (* euno-lint: allow domain-shared-state: written only before spawn/after join (spawn/join give the happens-before); workers read-only *)
  let cell_delay : (int -> unit) option ref = ref None
end

(* EUNO_DOMAINS env override (CI knob); an explicit --domains flag wins
   over it, absence of both means sequential. *)
let default_domains () =
  match Sys.getenv_opt "EUNO_DOMAINS" with
  | None | Some "" -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> invalid_arg (Printf.sprintf "EUNO_DOMAINS=%S is not a positive integer" s))

(* The canonical merge: index order, independent of arrival order.  The
   QCheck permutation property pins this down as a pure function of the
   result *set*. *)
let merge cells =
  List.sort (fun (i, _) (j, _) -> compare (i : int) j) cells |> List.map snd

type ('a, 'b) outcome = {
  cell_result : ('b, exn * Printexc.raw_backtrace) result;
  observed : 'a list; (* Runner.on_result deliveries, oldest first *)
}

let map (type a b) ?domains (f : a -> b) (items : a list) : b list =
  let domains = match domains with Some n -> n | None -> default_domains () in
  if domains <= 1 then List.map f items
  else begin
    let cells = Array.of_list items in
    let n = Array.length cells in
    if n = 0 then []
    else begin
      let slots :
          (Runner.result, b) outcome option array =
        Array.make n None
      in
      let next = Atomic.make 0 in
      let delay = !Testonly.cell_delay in
      let run_cell i =
        (match delay with Some d -> d i | None -> ());
        (* Capture this cell's telemetry on the worker's own domain-local
           observer; the main domain replays it in cell order. *)
        let captured = ref [] in
        Domain_ref.set Runner.on_result
          (Some (fun r -> captured := r :: !captured));
        let cell_result =
          match f cells.(i) with
          | v -> Ok v
          | exception e -> Error (e, Printexc.get_raw_backtrace ())
        in
        Domain_ref.set Runner.on_result None;
        slots.(i) <- Some { cell_result; observed = List.rev !captured }
      in
      let rec worker () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          run_cell i;
          worker ()
        end
      in
      let workers =
        List.init (min domains n) (fun _ -> Domain.spawn worker)
      in
      List.iter Domain.join workers;
      let observe =
        match Domain_ref.get Runner.on_result with
        | Some obs -> fun rs -> List.iter obs rs
        | None -> fun _ -> ()
      in
      let indexed = ref [] in
      Array.iteri
        (fun i slot ->
          match slot with
          | None -> assert false (* every index < n was claimed *)
          | Some { cell_result = Ok v; observed } ->
              observe observed;
              indexed := (i, v) :: !indexed
          | Some { cell_result = Error (e, bt); observed } ->
              (* the sequential run would have observed this cell's
                 partial telemetry, then died on this exception *)
              observe observed;
              Printexc.raise_with_backtrace e bt)
        slots;
      merge !indexed
    end
  end
