(** The EunoSan lint sweep: every tree under representative contention.

    One sweep runs all four trees (see {!Kv.all_kinds}) under a
    mixed-operation workload at zipfian theta 0.2 / 0.8 / 0.99, then once
    more under the stock chaos campaign ({!Euno_fault.Plan.campaign},
    horizon taken from the tree's own zipf-0.8 run), each with the
    sanitizer armed and post-run invariant checks on.  A healthy repo
    reports zero findings everywhere; [bin/euno_san] and the
    [euno_repro san] subcommand are thin shells over this module. *)

type outcome = {
  o_tree : string;
  o_workload : string;  (** e.g. ["zipf-0.80"] or ["chaos-zipf-0.80"] *)
  o_threads : int;
  o_seed : int;
  o_summary : Euno_san.San.summary;
}

val run : ?quick:bool -> ?seed:int -> unit -> outcome list
(** Execute the sweep.  [quick] shrinks threads, operation count and key
    space for smoke-test latitude (CI); default scale matches
    {!Runner.default_setup}.  Outcomes appear tree-major in
    {!Kv.all_kinds} order, thetas ascending, chaos last. *)

val clean : outcome list -> bool
(** No findings anywhere in the sweep. *)

val print : out_channel -> outcome list -> unit
(** Human-readable verdict table; findings (if any) listed underneath. *)

val to_records :
  ?experiment:string -> outcome list -> Euno_stats.Json.t list
(** One schema-v1 ["san"] record per outcome, [run]-indexed in order. *)
