(** The EunoSan lint sweep: every tree under representative contention.

    One sweep runs all four trees (see {!Kv.all_kinds}) under a
    mixed-operation workload at zipfian theta 0.2 / 0.8 / 0.99, then once
    more under the stock chaos campaign ({!Euno_fault.Plan.campaign},
    horizon taken from the tree's own zipf-0.8 run), each with the
    sanitizer armed and post-run invariant checks on.  A healthy repo
    reports zero findings everywhere; [bin/euno_san] and the
    [euno_repro san] subcommand are thin shells over this module. *)

type outcome = {
  o_tree : string;
  o_workload : string;  (** e.g. ["zipf-0.80"] or ["chaos-zipf-0.80"] *)
  o_strategy : string;  (** {!Euno_htm.Htm.strategy_name} of the cell *)
  o_capacity_model : string;  (** [Cost.capacity.cm_name] of the cell *)
  o_threads : int;
  o_seed : int;
  o_summary : Euno_san.San.summary;
}

val run :
  ?quick:bool ->
  ?seed:int ->
  ?strategies:Euno_htm.Htm.strategy list ->
  ?capacities:Euno_sim.Cost.capacity_model list ->
  ?domains:int ->
  unit ->
  outcome list
(** Execute the sweep over each (strategy x capacity-model x tree) cell
    of the requested grid — by default every strategy under the nominal
    capacity model.  Elision cells keep each tree's own default policy
    (the pre-strategy behaviour); other strategies override only the
    policy's strategy selector.  [quick] shrinks threads, operation count
    and key space for smoke-test latitude (CI); default scale matches
    {!Runner.default_setup}.  [domains] fans the cells across that many
    worker domains via {!Pool.map} (default {!Pool.default_domains}) —
    outcomes are byte-identical to the sequential sweep either way:
    strategy-major, then capacity, then tree-major in {!Kv.all_kinds}
    order, thetas ascending, chaos last. *)

val clean : outcome list -> bool
(** No findings anywhere in the sweep. *)

val print : out_channel -> outcome list -> unit
(** Human-readable verdict table; findings (if any) listed underneath. *)

val to_records :
  ?experiment:string -> outcome list -> Euno_stats.Json.t list
(** One schema-v1 ["san"] record per outcome, [run]-indexed in order. *)
