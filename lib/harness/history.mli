(** Linearizability checking of concurrent key-value histories.

    Record one event per completed operation (exact simulated-cycle
    invocation/response times plus the observed result), then search for a
    linearization against the sequential map specification.

    {b Complexity:} scan-free histories are checked compositionally —
    linearizability is local, so the history is split into per-key
    sub-histories each searched with Wing & Gong over a one-value state
    and a sorted invocation frontier; thousands of events check quickly
    and there is no hard length cap.  Histories containing {!Scan} (an
    atomic multi-key read) fall back to the whole-history Wing & Gong
    search, memoized, bounded at 62 events.

    {b Determinism:} the search explores candidates in a fixed order and
    uses no host entropy, so verdicts, witnesses and minimized cores are
    stable across runs. *)

type op =
  | Get of int * int option  (** key, observed result *)
  | Put of int * int
  | Delete of int * bool  (** key, observed success *)
  | Rmw of int * int option * int
      (** key, observed prior value, stored value: an atomic
          read-modify-write that saw the prior and installed the new *)
  | Scan of int * int * (int * int) list
      (** from, count, observed bindings: an atomic snapshot of the first
          [count] bindings with key [>= from], ascending *)

type event = { tid : int; invoked : int; responded : int; op : op }

val op_to_string : op -> string

val key_of_op : op -> int option
(** The single key a point operation touches; [None] for {!Scan}. *)

type recorder

val recorder : unit -> recorder

val record : recorder -> tid:int -> invoked:int -> responded:int -> op -> unit
(** Append one completed operation (host-side; deterministic under the
    machine).  Raises [Invalid_argument] if [invoked < 0] or
    [responded < invoked] — a malformed interval would silently weaken
    every real-time ordering constraint derived from it. *)

val events : recorder -> event list
(** All events in recording order. *)

(** Outcome of a check: either a witness linearization (every event, in a
    legal sequential order respecting real time), or a greedily minimized
    non-linearizable core — a subset of the history that is itself
    non-linearizable from the same initial state, kept small for
    debugging. *)
type verdict = Linearizable of event list | Illegal of event list

val check : ?init:int Map.Make(Int).t -> event list -> verdict
(** Full check with witness or core.  [init] is the starting map state
    (e.g. the preloaded records).  Raises [Invalid_argument] on malformed
    intervals, or beyond 62 events if the history contains {!Scan}. *)

val linearizable : ?init:int Map.Make(Int).t -> event list -> bool
(** [check] collapsed to a boolean.  Scan-free histories of thousands of
    events are fine; histories with {!Scan} raise [Invalid_argument]
    beyond 62 events (the old whole-history bound). *)

val to_string : event list -> string
(** Debug dump for failing tests. *)
