(** Uniform key-value interface over the paper's four tree variants. *)

type kind =
  | Htm_bptree  (** monolithic-RTM conventional B+Tree (DBX-style) *)
  | Euno of Eunomia.Config.t  (** the Euno-B+Tree, any configuration *)
  | Masstree  (** fine-grained lock-based baseline *)
  | Htm_masstree  (** whole-op RTM with elided Masstree locks *)
  | Lock_bptree  (** coarse-lock baseline (not one of the paper's four) *)

val kind_name : kind -> string

val all_kinds : kind list
(** The four comparison systems in the paper's plotting order. *)

type t = {
  name : string;
  get : int -> int option;
  put : int -> int -> unit;
  delete : int -> bool;
  scan : from:int -> count:int -> (int * int) list;
  check : unit -> unit;
  snapshot : unit -> (int * int) list;
      (** full tree image (ascending keys), via a full-range scan: the
          cost lands in simulated cycles like any other traversal *)
  restore : (int * int) list -> unit;
      (** reconcile the tree to an image: delete keys the image lacks,
          put keys that differ — in-place recovery over surviving
          structure, exercising the tree's own ops *)
}

val build :
  ?name:string ->
  ?policy:Euno_htm.Htm.policy ->
  ?records:(int * int) list ->
  kind ->
  fanout:int ->
  map:Euno_mem.Linemap.t ->
  t
(** Instantiate a tree (must run on the machine).  For [Euno] the config's
    fanout is overridden by [fanout] so all variants share index shape.
    Without [policy], baselines use {!Euno_htm.Htm.default_policy} and the
    Euno tree keeps its config's cost-proportional policy.  [records]
    bulk-loads sorted distinct records (the YCSB load phase). *)
