(** Perf-regression gate: compare the ["perf"] probe records of a bench run
    against a committed baseline inside a multiplicative tolerance band.

    Used by [bin/euno_perf_check]; see docs/EXPERIMENTS.md for the
    methodology (band choice, when and how to re-baseline). *)

module Json = Euno_stats.Json

type direction = Lower_is_better | Higher_is_better

val direction_of_metric : string -> direction
(** ["ns_per_call"] (and unknown metrics) are lower-is-better;
    ["sim_ops_per_wall_sec"] and ["campaign_cells_per_wall_sec"] are
    higher-is-better. *)

type probe = {
  p_name : string;
  p_strategy : string;  (** fallback strategy the probe ran under *)
  p_capacity_model : string;  (** capacity model the probe ran under *)
  p_metric : string;
  p_value : float;
}

type comparison = {
  c_name : string;
  c_metric : string;
  c_baseline : float option;  (** [None]: probe new in current (pass) *)
  c_current : float option;  (** [None]: probe disappeared (fail) *)
  c_factor : float option;
      (** degradation factor, direction-normalized so that > band is worse:
          current/baseline for lower-is-better metrics, baseline/current
          for higher-is-better *)
  c_ok : bool;
}

val probes_of_document : Json.t -> (probe list, string) result
(** Extract and schema-validate every ["perf"] record of a telemetry
    document (other record types are ignored). *)

val compare_probes :
  band:float -> baseline:probe list -> current:probe list -> comparison list
(** One comparison per baseline probe (matched to current by name, missing
    = fail), then one informational pass per current-only probe.  [band]
    is the allowed degradation factor (1.5 = up to 50% worse).
    @raise Invalid_argument when [band < 1.0]. *)

val all_ok : comparison list -> bool

val probe_to_json : probe -> Json.t

val baseline_document : probe list -> Json.t
(** Wrap probes as a schema-versioned document suitable for committing as
    [bench/baseline.json] (re-baselining). *)
