(** Committed-op log: write-ahead record of acknowledged mutations with
    group-flush batching and a bounded-loss [fsync] horizon.

    {b Complexity:} O(1) append (cons + counters); {!entries} and
    {!crash} are O(n) list walks, used off the hot path.

    {b Determinism:} pure host-side bookkeeping — the log contents are a
    function of the append sequence only; the driver charges the
    simulated cost of appends and flushes separately. *)

type op =
  | Put of { key : int; value : int }
  | Delete of { key : int }

type entry = { lsn : int; tid : int; clock : int; op : op }
(** [lsn]s are contiguous from 1 in acknowledgement order; [clock] is the
    simulated instant the op was acknowledged. *)

type t

val create : group_size:int -> fsync_horizon:int -> unit -> t
(** A flush covers the unflushed suffix when it reaches [group_size]
    entries, or when the oldest unflushed entry has been buffered for
    [fsync_horizon] simulated cycles — so a crash can lose at most
    [group_size - 1] acknowledged entries, none older than the
    horizon. *)

val append : t -> tid:int -> clock:int -> op -> [ `Buffered | `Flushed of int ]
(** Record one acknowledged op; [`Flushed n] when the append triggered a
    group flush covering [n] entries (the driver charges the flush
    cost). *)

val flush : t -> int
(** Force a flush; returns the number of entries made durable (0 if the
    log was already clean). *)

val length : t -> int
(** Highest lsn appended = total acknowledged mutations. *)

val flushed_lsn : t -> int
(** Highest durable lsn; entries past it are the volatile suffix. *)

val unflushed : t -> int
val flush_count : t -> int

val entries : t -> entry list
(** All entries, ascending lsn. *)

val crash : t -> entry list
(** Power loss: truncate the log to its durable prefix and return the
    lost (volatile) suffix, ascending lsn — the ops the workload
    generator re-issues during recovery. *)
