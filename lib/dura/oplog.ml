(* Committed-op log: the write-ahead record of acknowledged mutations.

   Host-side pure bookkeeping — the log itself costs nothing in simulated
   cycles; the driver charges append/flush costs through Api.work so the
   durability tax shows up in latency.  Entries are appended in ack order
   and stamped with the simulated clock, so the log is a deterministic
   function of the run.

   Durability model: an entry is volatile (buffered) until a group flush
   covers it.  A flush happens when the unflushed batch reaches
   [group_size] entries or the oldest unflushed entry has been buffered
   for more than [fsync_horizon] simulated cycles — so a crash loses at
   most [group_size - 1] entries, none older than the horizon. *)

type op =
  | Put of { key : int; value : int }
  | Delete of { key : int }

type entry = { lsn : int; tid : int; clock : int; op : op }

type t = {
  mutable entries : entry list; (* newest first *)
  mutable n : int; (* highest lsn appended; lsns are 1-based *)
  mutable flushed : int; (* highest durable lsn; 0 = nothing flushed *)
  mutable oldest_unflushed_clock : int; (* min_int = no unflushed entry *)
  mutable flushes : int;
  group_size : int;
  fsync_horizon : int;
}

let create ~group_size ~fsync_horizon () =
  if group_size < 1 then invalid_arg "Oplog.create: group_size < 1";
  if fsync_horizon < 0 then invalid_arg "Oplog.create: negative fsync_horizon";
  {
    entries = [];
    n = 0;
    flushed = 0;
    oldest_unflushed_clock = min_int;
    flushes = 0;
    group_size;
    fsync_horizon;
  }

let length t = t.n
let flushed_lsn t = t.flushed
let flush_count t = t.flushes
let unflushed t = t.n - t.flushed

let flush t =
  let made_durable = t.n - t.flushed in
  if made_durable > 0 then begin
    t.flushed <- t.n;
    t.oldest_unflushed_clock <- min_int;
    t.flushes <- t.flushes + 1
  end;
  made_durable

let append t ~tid ~clock op =
  t.n <- t.n + 1;
  t.entries <- { lsn = t.n; tid; clock; op } :: t.entries;
  if t.oldest_unflushed_clock = min_int then t.oldest_unflushed_clock <- clock;
  if
    t.n - t.flushed >= t.group_size
    || clock - t.oldest_unflushed_clock >= t.fsync_horizon
  then `Flushed (flush t)
  else `Buffered

let entries t = List.rev t.entries

let crash t =
  (* Power loss: the volatile suffix is gone from the durable medium.
     Returns the lost entries (ascending lsn) so the driver can model the
     workload generator re-issuing them during recovery. *)
  let lost, kept = List.partition (fun e -> e.lsn > t.flushed) t.entries in
  t.entries <- kept;
  t.n <- t.flushed;
  t.oldest_unflushed_clock <- min_int;
  List.rev lost
