(* Recovery checker: the host-side oracle that decides whether a
   crash-restart-replay cycle actually recovered.

   The contract it validates: the recovered tree must equal the pre-crash
   COMMITTED prefix — every acknowledged op's effect present (modulo later
   acknowledged ops on the same key), nothing present that no acknowledged
   op ever wrote — and the recovery itself must have been effective (no
   operation wedged on an abandoned lock) and bounded (work linear in
   state size + replayed suffix, not in pre-crash history).

   Losing ops beyond the declared fsync horizon is NOT a finding by
   itself: the driver re-runs the lost suffix (the workload generator
   re-issues unacknowledged-durable ops), so the expected state already
   accounts for it.  What the horizon does bound is checked structurally
   by Oplog; what this checker sees is only the end state. *)

module Json = Euno_stats.Json

type kind =
  | Phantom (* recovered state contains an effect no acked op justifies *)
  | Lost_ack (* an acknowledged op's effect is missing *)
  | Ineffective_recovery (* recovery ops wedged (abandoned lock survived) *)
  | Unbounded_recovery (* recovery work exceeded its linear bound *)

let kind_name = function
  | Phantom -> "phantom"
  | Lost_ack -> "lost_ack"
  | Ineffective_recovery -> "ineffective_recovery"
  | Unbounded_recovery -> "unbounded_recovery"

type finding = { f_kind : kind; f_detail : string }

type stats = {
  stuck_ops : int; (* recovery ops that raised Stuck_fallback *)
  recovery_cycles : int;
  work_bound : int; (* linear allowance computed by the driver *)
}

let finding_to_json f =
  Json.Obj
    [
      ("kind", Json.Str (kind_name f.f_kind));
      ("detail", Json.Str f.f_detail);
    ]

(* Classify one diverging key.  [ever_acked key value] answers whether any
   acknowledged put (or the preload) ever wrote [value] to [key]: a
   recovered value nobody ever acked is a phantom (torn snapshot, effect
   of an op that died unacknowledged); a recovered value that WAS acked
   but is not the latest — or a missing/stale record — is a lost ack. *)
let classify ~ever_acked key ~expected ~got =
  match (expected, got) with
  | None, Some v when not (ever_acked key v) ->
      { f_kind = Phantom;
        f_detail =
          Printf.sprintf "key %d: recovered value %d was never acknowledged"
            key v }
  | Some e, Some v when not (ever_acked key v) ->
      { f_kind = Phantom;
        f_detail =
          Printf.sprintf
            "key %d: recovered value %d was never acknowledged (expected %d)"
            key v e }
  | None, Some v ->
      { f_kind = Lost_ack;
        f_detail =
          Printf.sprintf
            "key %d: acknowledged delete lost (stale value %d resurfaced)"
            key v }
  | Some e, None ->
      { f_kind = Lost_ack;
        f_detail =
          Printf.sprintf "key %d: acknowledged value %d missing" key e }
  | Some e, Some v ->
      { f_kind = Lost_ack;
        f_detail =
          Printf.sprintf
            "key %d: stale acknowledged value %d resurfaced (expected %d)"
            key v e }
  | None, None -> assert false

let check ~expected ~recovered ~ever_acked ~stats =
  let divergences = ref [] in
  let recovered_tbl = Hashtbl.create (List.length recovered * 2) in
  List.iter (fun (k, v) -> Hashtbl.replace recovered_tbl k v) recovered;
  (* Keys the committed prefix expects, in ascending order for
     deterministic finding order. *)
  let expected_keys =
    Hashtbl.fold (fun k _ acc -> k :: acc) expected [] |> List.sort compare
  in
  List.iter
    (fun k ->
      let e = Hashtbl.find_opt expected k in
      let got = Hashtbl.find_opt recovered_tbl k in
      if e <> got then
        divergences := classify ~ever_acked k ~expected:e ~got :: !divergences)
    expected_keys;
  (* Keys recovered but never expected (ascending, skipping those already
     classified above — by construction these have expected = None). *)
  List.iter
    (fun (k, v) ->
      if not (Hashtbl.mem expected k) then
        divergences :=
          classify ~ever_acked k ~expected:None ~got:(Some v) :: !divergences)
    (List.sort compare recovered);
  let findings = List.rev !divergences in
  let findings =
    if stats.stuck_ops > 0 then
      findings
      @ [
          { f_kind = Ineffective_recovery;
            f_detail =
              Printf.sprintf
                "%d recovery operation(s) wedged on an abandoned lock"
                stats.stuck_ops };
        ]
    else findings
  in
  if stats.recovery_cycles > stats.work_bound then
    findings
    @ [
        { f_kind = Unbounded_recovery;
          f_detail =
            Printf.sprintf "recovery took %d cycles, bound was %d"
              stats.recovery_cycles stats.work_bound };
      ]
  else findings

let clean findings = findings = []

let has_kind kind findings = List.exists (fun f -> f.f_kind = kind) findings
