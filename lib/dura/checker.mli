(** Recovery checker: host-side oracle for crash-restart-replay runs.

    Validates that the recovered tree equals the pre-crash committed
    prefix — no phantom effects, no lost acknowledged ops — and that the
    recovery itself was effective (nothing wedged on an abandoned lock)
    and bounded (work linear in state size + replayed suffix).

    {b Complexity:} O((|expected| + |recovered|) log n) — two sorted
    sweeps over host-side state.

    {b Determinism:} pure; findings come out in ascending-key order
    followed by the two aggregate checks. *)

type kind =
  | Phantom
      (** recovered state contains an effect no acknowledged op justifies
          (torn snapshot, resurrected in-flight write) *)
  | Lost_ack  (** an acknowledged op's effect is missing or stale *)
  | Ineffective_recovery
      (** recovery operations wedged — an abandoned fallback/advisory
          lock survived the restart *)
  | Unbounded_recovery
      (** recovery work exceeded its declared linear bound *)

val kind_name : kind -> string

type finding = { f_kind : kind; f_detail : string }

type stats = {
  stuck_ops : int;  (** recovery ops that raised a stuck-lock exception *)
  recovery_cycles : int;
  work_bound : int;  (** linear allowance computed by the driver *)
}

val check :
  expected:(int, int) Hashtbl.t ->
  recovered:(int * int) list ->
  ever_acked:(int -> int -> bool) ->
  stats:stats ->
  finding list
(** [expected] is the committed shadow at the moment every lost op has
    been re-run; [recovered] the post-recovery tree image;
    [ever_acked key value] whether any acknowledged put (or the preload)
    ever bound [key] to [value]. *)

val clean : finding list -> bool
val has_kind : kind -> finding list -> bool
val finding_to_json : finding -> Euno_stats.Json.t
