(* EunoDura: epoch-consistent snapshots for crash recovery.

   A snapshot is a consistent tree image taken at a quiescent point —
   when the global epoch advances with (almost) no slot pinned, no
   operation is mid-flight, so a plain tree scan observes a prefix-closed
   state.  The driver wires [Epoch.set_advance_hook] to a capture
   function gated on the pinned count and a cadence knob; the snapshot
   stamp records the epoch, the log position (so replay knows where to
   resume) and the simulated clock.

   Host-side pure bookkeeping: the scan cost is charged by the driver in
   simulated cycles through the machine, not here. *)

type snapshot = {
  snap_epoch : int;
  snap_lsn : int; (* log position the image is consistent with *)
  snap_clock : int;
  snap_image : (int * int) array; (* ascending keys *)
}

type store = {
  mutable latest : snapshot;
  mutable taken : int; (* snapshots after the initial one *)
}

let store_create ~initial = { latest = initial; taken = 0 }

let record store snap =
  store.latest <- snap;
  store.taken <- store.taken + 1

let latest store = store.latest
let taken store = store.taken

(* Seeded recovery bugs for mutation-validating the checker.  Each ref
   flips one guard in the driver; the recovery checker must flag the
   resulting corruption with the right finding kind, and stay clean when
   the refs are off.  Not reachable from any production path. *)
module Testonly = struct
  (* Domain-local: a mutant armed by one pool worker's crash cell must
     not corrupt recovery in cells on other domains. *)
  let skip_fallback_log = Euno_sim.Domain_ref.create (fun () -> false)
  (* drop the log append when an op committed via the fallback path:
     the orphaned op survives in tree state (and snapshots) but never
     reaches the durable log → Lost_ack after a crash that discards it *)

  let skip_lock_reset = Euno_sim.Domain_ref.create (fun () -> false)
  (* skip the recovery sweep that zeroes abandoned Lock lines: replay
     wedges on a lock whose holder died → Ineffective_recovery *)

  let snapshot_while_pinned = Euno_sim.Domain_ref.create (fun () -> false)
  (* ignore the quiescence gate on the snapshot hook: the scan can
     interleave with in-flight mutations → torn image → Phantom *)

  let reset () =
    Euno_sim.Domain_ref.set skip_fallback_log false;
    Euno_sim.Domain_ref.set skip_lock_reset false;
    Euno_sim.Domain_ref.set snapshot_while_pinned false
end
