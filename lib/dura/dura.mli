(** EunoDura: epoch-consistent snapshots for crash recovery.

    A snapshot is a consistent tree image captured at a quiescent epoch
    advance (no slot pinned ⇒ no operation mid-flight); its stamp ties
    the image to a log position so replay knows where to resume.  The
    driver in [Euno_harness.Dura_run] owns the capture hook and charges
    the scan cost in simulated cycles; this module is pure bookkeeping.

    {b Complexity:} [record]/[latest]/[taken] are O(1) (the store keeps
    only the newest snapshot plus a count); capturing the image itself is
    O(live keys), charged by the driver at the capture point.

    {b Determinism:} snapshot contents are a function of the capture
    points, which are a function of the schedule — deterministic per
    (plan, seed). *)

type snapshot = {
  snap_epoch : int;
  snap_lsn : int;  (** log position the image is consistent with *)
  snap_clock : int;
  snap_image : (int * int) array;  (** ascending keys *)
}

type store

val store_create : initial:snapshot -> store
(** Seed the store with the post-preload image (lsn 0) so recovery always
    has a base to restore from. *)

val record : store -> snapshot -> unit
val latest : store -> snapshot
val taken : store -> int
(** Snapshots recorded after the initial one. *)

(** Seeded recovery bugs for mutation-validating the checker — see
    EXPERIMENTS.md §"Crash campaign".  Off by default; never reachable
    from a production path. *)
module Testonly : sig
  val skip_fallback_log : bool Euno_sim.Domain_ref.t
  (** Drop the log append for fallback-path commits → [Lost_ack]. *)

  val skip_lock_reset : bool Euno_sim.Domain_ref.t
  (** Skip the abandoned-lock sweep on restart → [Ineffective_recovery]. *)

  val snapshot_while_pinned : bool Euno_sim.Domain_ref.t
  (** Ignore the quiescence gate on the snapshot hook → torn image →
      [Phantom]. *)

  val reset : unit -> unit
end
