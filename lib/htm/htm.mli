(** User-level RTM: retry policy and lock-elision fallback.

    Reproduces the DBX/DrTM fallback strategy the paper reuses: per-abort-
    type retry budgets, then serialization on a global fallback lock that
    elided transactions subscribe to.

    Hardened for graceful degradation: polite lock waits are bounded by a
    watchdog, fallback acquisition is bounded (a leaked lock raises
    {!Stuck_fallback} instead of hanging), starving threads escalate a
    jittered backoff, and fallback convoys are counted in telemetry. *)

type policy = {
  conflict_retries : int;
  capacity_retries : int;
  lock_busy_retries : int;
  other_retries : int;
  backoff_base : int;
  backoff_cap : int;
  wait_for_lock : bool;
      (** spin outside the transaction while the fallback lock is held;
          paper-era implementations did not, which is what produces the
          fallback death spiral under contention *)
  max_lock_wait : int;
      (** watchdog bound (cycles) on a [wait_for_lock] queue: past it the
          waiter stops queueing for free and falls through to the budget
          path, so a stalled fallback holder cannot hang it forever *)
  stuck_limit : int;
      (** bound (cycles) on acquiring the fallback lock itself; exceeded
          means the lock is leaked, and the operation raises
          {!Stuck_fallback} *)
  starvation_threshold : int;
      (** consecutive fallbacks by one thread before it starts escalating
          jittered backoff ahead of the lock; [max_int] disables *)
}

(** Test-only mutation switches: reintroduce historical protocol bugs so
    the sanitizer suite can prove it detects them.  Never set these
    outside test code. *)
module Testonly : sig
  val escape_xbegin_park : bool ref
  (** PR 2 bug: start the transaction before the match scrutinee in
      {!attempt}, letting an abort delivered at the xbegin park point
      escape uncaught. *)

  val skip_subscription : bool ref
  (** Lock-elision bug: skip the fallback-lock subscription check in
      elided attempts, so a transaction can commit in the middle of a
      fallback holder's critical section.  EunoCheck's mutation tests
      prove this surfaces as a non-linearizable history. *)
end

val default_policy : policy
(** The DBX-style paper-era policy (naive lock retry, starvation
    detection disabled so the paper's collapse shapes are preserved). *)

val polite_policy : policy
(** A modern post-lemming-fix policy, for ablations. *)

(** User-counter indices used by this module (via {!Euno_sim.Api.count}).
    This module owns 0-2 and 8-10; [Euno_tree] owns 3-7. *)
module Counter : sig
  val fallbacks : int
  val retries : int

  val lock_wait_cycles : int
  (** Cycles spent queueing on the fallback lock (serialization wait). *)

  val watchdog_trips : int
  (** Bounded polite lock waits that gave up on a stalled holder. *)

  val starvation_backoffs : int
  (** Escalating backoffs taken by threads past the starvation
      threshold. *)

  val convoy_events : int
  (** Fallback entries that found {!convoy_depth} or more threads already
      past the fallback entry. *)

  val names : (int * string) list
  (** Telemetry labels for the user-counter indices this module owns. *)
end

val convoy_depth : int
(** Simultaneous fallback-path threads that count as a convoy. *)

type lock = { word : int; aux : int }
(** Fallback lock: the spinlock word plus a bookkeeping sidecar (fallback
    depth + per-thread consecutive-fallback slots) used by the convoy and
    starvation detectors.  The sidecar is accessed untracked / outside
    transactions only, so it never dooms a transaction. *)

val alloc_lock : unit -> lock

val lock_word : lock -> int
(** The spinlock word, for code that drives the lock directly
    (tests, holders simulated outside {!atomic}). *)

exception Stuck_fallback of { lock : int; waited : int }
(** The fallback path spun [policy.stuck_limit] cycles without acquiring
    the lock: it is leaked or its holder is stalled beyond reason. *)

val attempt : (unit -> 'a) -> ('a, Euno_sim.Abort.code) result
(** One raw transactional attempt (no lock subscription, no retry).  If
    [f] raises a non-abort exception, the open transaction is explicitly
    aborted (buffered writes rolled back) before the exception
    propagates. *)

val attempt_elided : lock:lock -> (unit -> 'a) -> ('a, Euno_sim.Abort.code) result
(** One attempt that subscribes to the fallback lock: aborts explicitly if
    the lock is held, and is doomed if a fallback holder appears later. *)

val atomic :
  ?policy:policy ->
  ?on_abort:(Euno_sim.Abort.code -> unit) ->
  lock:lock ->
  (unit -> 'a) ->
  'a
(** Execute atomically: elided transactional attempts with per-abort-type
    budgets and backoff, then the fallback lock.  [f] may run multiple
    times (aborted attempts have no visible effects) and must not catch
    {!Euno_sim.Eff.Txn_abort}.  [on_abort] runs outside the transaction
    after each aborted attempt.
    @raise Stuck_fallback when the fallback lock cannot be acquired within
    [policy.stuck_limit] cycles. *)
