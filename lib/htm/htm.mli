(** User-level RTM: retry policy and lock-elision fallback.

    Reproduces the DBX/DrTM fallback strategy the paper reuses: per-abort-
    type retry budgets, then serialization on a global fallback lock that
    elided transactions subscribe to. *)

type policy = {
  conflict_retries : int;
  capacity_retries : int;
  lock_busy_retries : int;
  other_retries : int;
  backoff_base : int;
  backoff_cap : int;
  wait_for_lock : bool;
      (** spin outside the transaction while the fallback lock is held;
          paper-era implementations did not, which is what produces the
          fallback death spiral under contention *)
}

val default_policy : policy
(** The DBX-style paper-era policy (naive lock retry). *)

val polite_policy : policy
(** A modern post-lemming-fix policy, for ablations. *)

(** User-counter indices used by this module (via {!Euno_sim.Api.count}). *)
module Counter : sig
  val fallbacks : int
  val retries : int

  val lock_wait_cycles : int
  (** Cycles spent queueing on the fallback lock (serialization wait). *)

  val names : (int * string) list
  (** Telemetry labels for the user-counter indices this module owns. *)
end

type lock = int
(** Fallback lock: a spinlock word address. *)

val alloc_lock : unit -> lock

val attempt : (unit -> 'a) -> ('a, Euno_sim.Abort.code) result
(** One raw transactional attempt (no lock subscription, no retry). *)

val attempt_elided : lock:lock -> (unit -> 'a) -> ('a, Euno_sim.Abort.code) result
(** One attempt that subscribes to the fallback lock: aborts explicitly if
    the lock is held, and is doomed if a fallback holder appears later. *)

val atomic :
  ?policy:policy ->
  ?on_abort:(Euno_sim.Abort.code -> unit) ->
  lock:lock ->
  (unit -> 'a) ->
  'a
(** Execute atomically: elided transactional attempts with per-abort-type
    budgets and backoff, then the fallback lock.  [f] may run multiple
    times (aborted attempts have no visible effects) and must not catch
    {!Euno_sim.Eff.Txn_abort}.  [on_abort] runs outside the transaction
    after each aborted attempt. *)
