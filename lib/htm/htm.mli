(** User-level RTM: retry policies behind pluggable fallback strategies.

    A {!STRATEGY} packages everything around the raw transactional attempt
    — how attempts subscribe to concurrent fallback activity, how retries
    are budgeted, and how the software fallback serializes.  Trees call
    {!atomic}, which dispatches on [policy.strategy], so a new strategy
    needs no tree-code changes.  Three strategies ship:

    - {!Elision}: the DBX/DrTM lock elision the paper reuses — per-abort-
      type retry budgets, then serialization on a global fallback lock
      that elided transactions subscribe to.
    - {!Three_path}: Brown's template — an unsubscribed HTM fast path, an
      HTM middle path subscribed to a fallback-activity counter, and a
      bounded lock-serialized software fallback that announces itself and
      waits out in-flight fast-path attempts before entering.
    - {!Lockfree}: Brown's full template — the same fast/middle
      discipline, but the software path publishes a per-op descriptor and
      is served by the current combiner tenure (helping), so a helped
      operation completes without its thread ever touching the fallback
      lock.

    All are hardened for graceful degradation: polite waits are bounded
    by a watchdog, fallback acquisition (and the 3-path grace wait) is
    bounded (a leaked lock raises {!Stuck_fallback} instead of hanging),
    starving threads escalate a jittered backoff, and fallback convoys
    are counted in telemetry. *)

type strategy = Elision | Three_path | Lockfree

val strategy_name : strategy -> string
(** ["elision"] / ["three-path"] / ["lockfree"] — the names used by CLIs,
    report records and the schema checker. *)

val strategy_of_name : string -> strategy option
val all_strategies : strategy list
val strategy_names : string list

type policy = {
  strategy : strategy;
  conflict_retries : int;
  capacity_retries : int;
  lock_busy_retries : int;
  other_retries : int;
  fast_path_attempts : int;
      (** {!Three_path}/{!Lockfree}: unsubscribed fast-path attempts
          before the operation drops to the subscribed middle path.
          Failed fast attempts still spend their abort-type budgets. *)
  backoff_base : int;
  backoff_cap : int;
  wait_for_lock : bool;
      (** spin outside the transaction while the fallback lock (or, for
          {!Three_path}, fallback activity) is observed; paper-era
          implementations did not, which is what produces the fallback
          death spiral under contention *)
  max_lock_wait : int;
      (** watchdog bound (cycles) on a [wait_for_lock] queue: past it the
          waiter stops queueing for free and falls through to the budget
          path, so a stalled fallback holder cannot hang it forever *)
  stuck_limit : int;
      (** bound (cycles) on acquiring the fallback lock itself — and on
          the {!Three_path} grace wait; exceeded means the lock is leaked
          (or a fast flag is), and the operation raises
          {!Stuck_fallback} *)
  starvation_threshold : int;
      (** consecutive fallbacks by one thread before it starts escalating
          jittered backoff ahead of the lock; [max_int] disables *)
}

(** Test-only mutation switches: reintroduce historical protocol bugs so
    the sanitizer suite can prove it detects them.  Never set these
    outside test code.  Each switch is domain-local
    ({!Euno_sim.Domain_ref}): arming a mutation in one pool worker's
    campaign cell leaves cells on other domains unmutated. *)
module Testonly : sig
  val escape_xbegin_park : bool Euno_sim.Domain_ref.t
  (** PR 2 bug: start the transaction before the match scrutinee in
      {!attempt}, letting an abort delivered at the xbegin park point
      escape uncaught. *)

  val skip_subscription : bool Euno_sim.Domain_ref.t
  (** Lock-elision bug: skip the fallback-lock subscription check in
      elided attempts, so a transaction can commit in the middle of a
      fallback holder's critical section.  EunoCheck's mutation tests
      prove this surfaces as a non-linearizable history. *)

  val skip_activity_read : bool Euno_sim.Domain_ref.t
  (** 3-path bug: skip the middle path's in-transaction read of the
      fallback-activity counter, so a middle-path transaction can commit
      in the middle of a software fallback's critical section — the
      3-path analogue of [skip_subscription]. *)

  val lf_skip_announce : bool Euno_sim.Domain_ref.t
  (** {!Lockfree} bug: skip the software path's announcement FAA on the
      activity counter (and the matching decrement).  An unannounced
      descriptor neither dooms middle-path subscribers nor fences off new
      fast-path transactions, so a combiner's plain application can
      overlap an unsubscribed commit — a lost-doom torn commit EunoCheck
      must surface as a non-linearizable history. *)
end

val default_policy : policy
(** The DBX-style paper-era policy: [Elision], naive lock retry,
    starvation detection disabled so the paper's collapse shapes are
    preserved. *)

val polite_policy : policy
(** A modern post-lemming-fix policy, for ablations. *)

val three_path_policy : policy
(** {!default_policy} with [strategy = Three_path]. *)

val lockfree_policy : policy
(** {!default_policy} with [strategy = Lockfree]. *)

(** User-counter indices used by this module (via {!Euno_sim.Api.count}),
    claimed through {!Euno_sim.Machine.register_user_counters} under owner
    ["htm"].  [Euno_tree] owns 3-7. *)
module Counter : sig
  val fallbacks : int
  val retries : int

  val lock_wait_cycles : int
  (** Cycles spent queueing on the fallback lock (serialization wait). *)

  val watchdog_trips : int
  (** Bounded polite lock waits that gave up on a stalled holder. *)

  val starvation_backoffs : int
  (** Escalating backoffs taken by threads past the starvation
      threshold. *)

  val convoy_events : int
  (** Fallback entries that found {!convoy_depth} or more threads already
      past the fallback entry. *)

  val fast_path_wins : int
  (** {!Three_path}/{!Lockfree}: commits on the unsubscribed fast path. *)

  val middle_path_wins : int
  (** {!Three_path}/{!Lockfree}: commits on the activity-subscribed middle
      path. *)

  val grace_wait_cycles : int
  (** {!Three_path}/{!Lockfree}: cycles fallback entrants (combiner
      tenures) spent waiting out in-flight fast-path attempts before
      entering the critical section. *)

  val software_path_wins : int
  (** {!Lockfree}: operations served through a published descriptor — by
      the thread's own combining tenure or helped by another's. *)

  val helped_ops : int
  (** {!Lockfree}: descriptors a combiner applied on behalf of {e other}
      threads during its tenure. *)

  val names : (int * string) list
  (** Telemetry labels for the user-counter indices this module owns. *)
end

val convoy_depth : int
(** Simultaneous fallback-path threads that count as a convoy. *)

type lock = { word : int; aux : int; tp : int }
(** Fallback lock: the spinlock word plus a bookkeeping sidecar (fallback
    depth + per-thread consecutive-fallback slots) used by the convoy and
    starvation detectors.  The sidecar is accessed untracked / outside
    transactions only, so it never dooms a transaction.  [tp] is the
    template protocol sidecar (fallback-activity counter + per-thread
    in-fast-attempt flags + — {!Lockfree} only — per-thread
    descriptor-status words), allocated only for {!Three_path} and
    {!Lockfree} policies; [-1] when absent. *)

val alloc_lock : ?policy:policy -> unit -> lock
(** Allocate the fallback lock for [policy] (default {!default_policy}).
    Only the policy's [strategy] matters: {!Three_path} additionally
    allocates the protocol sidecar, and {!Lockfree} the wider sidecar
    (descriptor-status stripe) plus the host-side descriptor table the
    combiner reads closures from.  Elision locks keep the historical
    allocation stream exactly, so golden traces are unaffected. *)

val lock_word : lock -> int
(** The spinlock word, for code that drives the lock directly
    (tests, holders simulated outside {!atomic}). *)

val tp_flag : lock -> int -> int
(** [tp_flag lock tid]: address of [tid]'s in-fast-attempt flag in the
    template sidecar.  Each flag (and the activity counter) lives on its
    own cache line, so untracked flag traffic never lands inside a
    middle-path subscriber's read-set line. *)

val lf_desc : lock -> int -> int
(** [lf_desc lock tid]: address of [tid]'s descriptor-status word in the
    {!Lockfree} sidecar (0 empty, 1 pending, 2 taken by a combiner,
    3 done) — padded one word per line like the fast flags.  Only
    meaningful for locks allocated under a {!Lockfree} policy. *)

exception Stuck_fallback of { lock : int; waited : int }
(** The fallback path spun [policy.stuck_limit] cycles without acquiring
    the lock (or, for the template strategies, without the grace period
    quiescing / without its descriptor being served): it is leaked or its
    holder is stalled beyond reason.  {!Lockfree} raises this only after
    withdrawing its still-pending descriptor — an operation a combiner
    already claimed is waited out and returns normally instead. *)

val attempt : (unit -> 'a) -> ('a, Euno_sim.Abort.code) result
(** One raw transactional attempt (no subscription, no retry).  If [f]
    raises a non-abort exception, the open transaction is explicitly
    aborted (buffered writes rolled back) before the exception
    propagates. *)

val attempt_elided : lock:lock -> (unit -> 'a) -> ('a, Euno_sim.Abort.code) result
(** One attempt that subscribes to the fallback lock: aborts explicitly if
    the lock is held, and is doomed if a fallback holder appears later. *)

val attempt_middle : lock:lock -> (unit -> 'a) -> ('a, Euno_sim.Abort.code) result
(** One {!Three_path} middle-path attempt: subscribes to the
    fallback-activity counter — aborts explicitly (with
    {!Euno_sim.Abort.xabort_fallback_active}) if a fallback is in
    progress, and is doomed if one announces itself later.  Requires a
    lock with the 3-path sidecar. *)

type budgets = {
  mutable conflict : int;
  mutable capacity : int;
  mutable lock_busy : int;
  mutable other : int;
}
(** Remaining per-abort-type retries for one operation. *)

val budgets_of : policy -> budgets
val budgets_total : budgets -> int

val spend : budgets -> Euno_sim.Abort.code -> bool
(** Consume one retry from the bucket matching the code; [false] when that
    bucket is exhausted and the caller must take the fallback path.
    Conflicts spend [conflict]; capacity aborts spend [capacity]; explicit
    aborts (lock-held, fallback-active, user-exception teardown) spend
    [lock_busy]; spurious/timer/alloc-fault spend [other]. *)

(** A pluggable fallback strategy: the full retry-and-serialize discipline
    for one operation. *)
module type STRATEGY = sig
  val name : string

  val needs_sidecar : bool
  (** Whether locks driven by this strategy need the 3-path protocol
      sidecar ([lock.tp]). *)

  val run :
    policy:policy ->
    on_abort:(Euno_sim.Abort.code -> unit) ->
    lock:lock ->
    (unit -> 'a) ->
    'a
end

module Elision : STRATEGY
module Three_path : STRATEGY
module Lockfree : STRATEGY

val strategy_impl : strategy -> (module STRATEGY)
val strategies : (string * (module STRATEGY)) list
(** Registry of shipped strategies, keyed by {!strategy_name}. *)

val atomic :
  ?policy:policy ->
  ?on_abort:(Euno_sim.Abort.code -> unit) ->
  lock:lock ->
  (unit -> 'a) ->
  'a
(** Execute atomically under [policy.strategy]: transactional attempts
    with per-abort-type budgets and backoff, then the software fallback.
    [f] may run multiple times (aborted attempts have no visible effects)
    and must not catch {!Euno_sim.Eff.Txn_abort}.  [on_abort] runs outside
    the transaction after each aborted attempt.
    @raise Stuck_fallback when the fallback lock cannot be acquired (or
    the 3-path grace period does not quiesce) within
    [policy.stuck_limit] cycles. *)
