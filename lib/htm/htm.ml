(* User-level RTM interface: retry policy and lock-elision fallback.

   Mirrors the strategy the paper reuses from DBX/DrTM (Section 4.2.1):
   each abort type has its own retry budget; when a budget is exhausted the
   operation falls back to a global lock.  Transactions read the fallback
   lock word right after xbegin, so a fallback holder aborts them
   (lock elision). *)

module Api = Euno_sim.Api
module Abort = Euno_sim.Abort
module Eff = Euno_sim.Eff
module Spinlock = Euno_sync.Spinlock
module Backoff = Euno_sync.Backoff

type policy = {
  conflict_retries : int;
  capacity_retries : int;
  lock_busy_retries : int; (* explicit aborts: fallback lock observed held *)
  other_retries : int; (* spurious / timer *)
  backoff_base : int;
  backoff_cap : int;
  wait_for_lock : bool;
      (* spin outside the transaction while the fallback lock is held,
         instead of burning transactional attempts against it.  The
         paper-era implementations (DBX; pre-fix glibc elision) did NOT do
         this — retrying straight into a held lock is what produces the
         fallback death spiral ("lemming effect") under contention. *)
}

(* The DBX-style policy the paper's baselines use: a small conflict budget,
   mild backoff, and naive retry against a held fallback lock. *)
let default_policy =
  {
    conflict_retries = 2;
    capacity_retries = 2;
    lock_busy_retries = 24;
    other_retries = 4;
    backoff_base = 16;
    backoff_cap = 1024;
    wait_for_lock = false;
  }

(* A modern, well-behaved policy (post-lemming-fix), for ablations. *)
let polite_policy =
  {
    conflict_retries = 16;
    capacity_retries = 2;
    lock_busy_retries = 16;
    other_retries = 4;
    backoff_base = 64;
    backoff_cap = 8192;
    wait_for_lock = true;
  }

(* User-counter indices (see Machine.n_user_counters). *)
module Counter = struct
  let fallbacks = 0
  let retries = 1
  let lock_wait_cycles = 2 (* cycles spent queueing on the fallback lock *)

  (* Telemetry labels for the indices this module owns. *)
  let names =
    [
      (fallbacks, "fallbacks");
      (retries, "retries");
      (lock_wait_cycles, "lock_wait_cycles");
    ]
end

type lock = int
(* The fallback lock is a plain spinlock word. *)

let alloc_lock () = Spinlock.alloc ()

exception Unreachable_after_xabort

(* One transactional attempt of [f].  Returns the abort code on failure. *)
let attempt f =
  Api.xbegin ();
  match
    let v = f () in
    Api.xend ();
    v
  with
  | v -> Ok v
  | exception Eff.Txn_abort code -> Error code

(* One *elided* attempt: subscribe to the fallback lock first. *)
let attempt_elided ~lock f =
  attempt (fun () ->
      if Spinlock.is_locked lock then begin
        Api.xabort Abort.xabort_lock_held;
        raise Unreachable_after_xabort
      end;
      f ())

type budgets = {
  mutable conflict : int;
  mutable capacity : int;
  mutable lock_busy : int;
  mutable other : int;
}

let budgets_of policy =
  {
    conflict = policy.conflict_retries;
    capacity = policy.capacity_retries;
    lock_busy = policy.lock_busy_retries;
    other = policy.other_retries;
  }

(* Consume one retry from the bucket matching [code]; false when that
   bucket is exhausted and the caller must take the fallback path. *)
let spend budgets (code : Abort.code) =
  let take get set =
    let v = get () in
    if v <= 0 then false
    else begin
      set (v - 1);
      true
    end
  in
  match code with
  | Abort.Conflict _ ->
      take (fun () -> budgets.conflict) (fun v -> budgets.conflict <- v)
  | Abort.Capacity_read | Abort.Capacity_write ->
      take (fun () -> budgets.capacity) (fun v -> budgets.capacity <- v)
  | Abort.Explicit _ ->
      take (fun () -> budgets.lock_busy) (fun v -> budgets.lock_busy <- v)
  | Abort.Spurious | Abort.Timer ->
      take (fun () -> budgets.other) (fun v -> budgets.other <- v)

(* Execute [f] atomically: transactionally with retries, then under the
   fallback lock.  [f] runs either inside a transaction or while holding
   [lock]; it must not catch Txn_abort itself.  [on_abort] runs outside the
   transaction after every aborted attempt (used by Eunomia's per-leaf
   contention detector). *)
let atomic ?(policy = default_policy) ?(on_abort = fun (_ : Abort.code) -> ())
    ~lock f =
  let budgets = budgets_of policy in
  let backoff = Backoff.create ~base:policy.backoff_base ~cap:policy.backoff_cap () in
  let wait_unlocked () =
    let rec spin () =
      if Spinlock.is_locked lock then begin
        Api.work 64;
        spin ()
      end
    in
    spin ()
  in
  let rec go () =
    match attempt_elided ~lock f with
    | Ok v -> v
    | Error code ->
        on_abort code;
        (* A lock-held abort under a waiting policy is not a failed attempt:
           the thread queues outside the transaction until the holder leaves
           and retries with its budgets intact.  Charging the lock_busy
           bucket here would let a politely-queueing thread exhaust it and
           grab the fallback lock itself — amplifying the very convoy
           wait_for_lock exists to prevent. *)
        if policy.wait_for_lock && code = Abort.Explicit Abort.xabort_lock_held
        then begin
          Api.count Counter.retries 1;
          wait_unlocked ();
          go ()
        end
        else if spend budgets code then begin
          Api.count Counter.retries 1;
          (match code with
          | Abort.Conflict _ | Abort.Explicit _ -> Backoff.once backoff
          | Abort.Capacity_read | Abort.Capacity_write | Abort.Spurious
          | Abort.Timer ->
              ());
          (* Post-fix implementations spin outside the transaction while
             the fallback lock is held; paper-era ones dive right back in. *)
          if policy.wait_for_lock then wait_unlocked ();
          go ()
        end
        else begin
          Api.count Counter.fallbacks 1;
          let t0 = Api.clock () in
          Spinlock.acquire lock;
          Api.count Counter.lock_wait_cycles (Api.clock () - t0);
          match f () with
          | v ->
              Spinlock.release lock;
              v
          | exception e ->
              Spinlock.release lock;
              raise e
        end
  in
  go ()
