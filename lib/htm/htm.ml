(* User-level RTM interface: retry policies behind pluggable fallback
   strategies.

   A strategy decides what happens around the raw transactional attempt:
   how attempts subscribe to concurrent fallback activity, when retries
   give up, and how the software fallback serializes.  Three strategies
   are provided:

   - [Elision] mirrors the DBX/DrTM lock elision the paper reuses
     (Section 4.2.1): each abort type has its own retry budget; when a
     budget is exhausted the operation falls back to a global lock.
     Transactions read the fallback lock word right after xbegin, so a
     fallback holder aborts them.

   - [Three_path] adapts Brown's template ("A Template for Implementing
     Fast Lock-free Trees Using HTM"): an HTM fast path that assumes no
     concurrent fallback (no subscription read at all), an HTM middle
     path that subscribes to a fallback-activity counter instead of the
     lock word, and a bounded lock-serialized software fallback that
     announces itself on that counter and waits out in-flight fast-path
     attempts (a grace period) before entering its critical section.

   - [Lockfree] is Brown's full template: the same fast/middle discipline,
     but the software path makes progress without queueing on a global
     fallback lock.  An operation that exhausts its budgets publishes a
     per-op descriptor in the padded sidecar, announces itself on the
     activity counter (dooming middle-path subscribers and fencing off new
     fast-path attempts), and is then served by whichever thread currently
     holds the combiner claim — its own claim if it wins the single
     try-acquire, or another thread's tenure that applies every pending
     descriptor (helping).  A helped operation completes without its
     thread ever touching the fallback lock, which is the progress
     property the serialized fallbacks lack.

   Graceful degradation (all strategies): the polite wait spin is bounded
   by a watchdog (a stalled fallback holder cannot hang a waiter forever —
   the waiter falls through to the budget path and eventually serializes),
   the fallback acquisition itself is bounded (a leaked lock surfaces as
   Stuck_fallback instead of a livelock), threads that keep losing the
   fast path are detected as starving and back off with escalating jitter,
   and a convoy on the fallback lock is counted through user-counter
   telemetry. *)

module Api = Euno_sim.Api
module Abort = Euno_sim.Abort
module Eff = Euno_sim.Eff
module Sev = Euno_sim.Sev
module Domain_ref = Euno_sim.Domain_ref
module Spinlock = Euno_sync.Spinlock
module Backoff = Euno_sync.Backoff

(* Test-only mutation switches: reintroduce historical protocol bugs so
   the sanitizer test suite can prove it detects them.  Never set outside
   test code. *)
module Testonly = struct
  (* Domain-local (Domain_ref): a mutation armed by a campaign cell on
     one pool worker must not bleed into cells on other domains. *)
  let escape_xbegin_park = Domain_ref.create (fun () -> false)
  (* PR 2 bug: evaluate xbegin *before* the match scrutinee, so an abort
     delivered while parked at the xbegin call site escapes [attempt]
     uncaught. *)

  let skip_subscription = Domain_ref.create (fun () -> false)
  (* Lock-elision bug: skip the fallback-lock subscription check in
     [attempt_elided].  An unsubscribed transaction neither aborts when a
     fallback holder is active nor joins its read set, so it can commit in
     the middle of the holder's critical section — the classic lost-update
     window EunoCheck must catch as a non-linearizable history. *)

  let skip_activity_read = Domain_ref.create (fun () -> false)
  (* 3-path bug: skip the middle path's in-transaction read of the
     fallback-activity counter.  The unsubscribed middle-path transaction
     neither aborts while a software fallback is active nor is doomed when
     one arrives — the same lost-update window as skip_subscription, in
     the strategy whose *fast* path legitimately has no subscription. *)

  let lf_skip_announce = Domain_ref.create (fun () -> false)
  (* Lockfree bug: skip the software path's announcement FAA on the
     activity counter (and its matching decrement).  An unannounced
     software op neither dooms middle-path subscribers nor fences off new
     fast-path transactions, so the combiner's plain application can
     overlap an unsubscribed commit — the lost-doom torn commit EunoCheck
     must catch as a non-linearizable history. *)
end

type strategy = Elision | Three_path | Lockfree

let strategy_name = function
  | Elision -> "elision"
  | Three_path -> "three-path"
  | Lockfree -> "lockfree"

let strategy_of_name = function
  | "elision" -> Some Elision
  | "three-path" -> Some Three_path
  | "lockfree" -> Some Lockfree
  | _ -> None

let all_strategies = [ Elision; Three_path; Lockfree ]
let strategy_names = List.map strategy_name all_strategies

type policy = {
  strategy : strategy;
  conflict_retries : int;
  capacity_retries : int;
  lock_busy_retries : int;
      (* explicit aborts: fallback lock (or fallback activity) observed *)
  other_retries : int; (* spurious / timer / alloc-fault *)
  fast_path_attempts : int;
      (* [Three_path] only: unsubscribed fast-path attempts before the
         operation drops to the subscribed middle path.  Each failed fast
         attempt still spends its abort-type budget. *)
  backoff_base : int;
  backoff_cap : int;
  wait_for_lock : bool;
      (* spin outside the transaction while the fallback lock is held,
         instead of burning transactional attempts against it.  The
         paper-era implementations (DBX; pre-fix glibc elision) did NOT do
         this — retrying straight into a held lock is what produces the
         fallback death spiral ("lemming effect") under contention. *)
  max_lock_wait : int;
      (* watchdog: cycles a wait_for_lock spin may queue on a held
         fallback lock before giving up and falling through to the budget
         path.  Keeps a preempted/stalled holder from hanging waiters. *)
  stuck_limit : int;
      (* cycles the fallback path may spin acquiring the lock (or, for
         [Three_path], waiting out in-flight fast attempts) before the
         operation raises Stuck_fallback: past this point the lock is
         considered leaked, not merely contended *)
  starvation_threshold : int;
      (* consecutive fallbacks by one thread before it is considered
         starving and starts escalating jittered backoff ahead of the
         lock; max_int disables detection (paper-era behaviour) *)
}

(* The DBX-style policy the paper's baselines use: a small conflict budget,
   mild backoff, and naive retry against a held fallback lock.  Starvation
   detection is disabled so the paper's collapse shapes are preserved. *)
let default_policy =
  {
    strategy = Elision;
    conflict_retries = 2;
    capacity_retries = 2;
    lock_busy_retries = 24;
    other_retries = 4;
    fast_path_attempts = 2;
    backoff_base = 16;
    backoff_cap = 1024;
    wait_for_lock = false;
    max_lock_wait = 50_000;
    stuck_limit = 5_000_000;
    starvation_threshold = max_int;
  }

(* A modern, well-behaved policy (post-lemming-fix), for ablations. *)
let polite_policy =
  {
    default_policy with
    conflict_retries = 16;
    capacity_retries = 2;
    lock_busy_retries = 16;
    other_retries = 4;
    backoff_base = 64;
    backoff_cap = 8192;
    wait_for_lock = true;
    starvation_threshold = 3;
  }

(* Brown's 3-path template with the default budgets: two unsubscribed fast
   attempts, then the activity-subscribed middle path, then the bounded
   software fallback. *)
let three_path_policy = { default_policy with strategy = Three_path }

(* Brown's full template with the lock-free software fallback: same
   fast/middle budgets, but exhausted operations publish descriptors and
   are served by the current combiner instead of queueing on the lock. *)
let lockfree_policy = { default_policy with strategy = Lockfree }

(* User-counter indices (see Machine.n_user_counters), claimed through the
   machine's registry below so a new strategy cannot silently alias an
   index another module owns.  Euno_tree owns 3-7. *)
module Counter = struct
  let fallbacks = 0
  let retries = 1
  let lock_wait_cycles = 2 (* cycles spent queueing on the fallback lock *)
  let watchdog_trips = 8 (* bounded lock waits that gave up *)
  let starvation_backoffs = 9 (* escalating backoffs by starving threads *)
  let convoy_events = 10 (* fallback entries that joined a convoy *)
  let fast_path_wins = 11 (* [Three_path] commits on the unsubscribed path *)
  let middle_path_wins = 12 (* [Three_path] commits on the subscribed path *)
  let grace_wait_cycles = 13
  (* [Three_path]/[Lockfree] cycles fallback entrants (combiner tenures)
     spent waiting out in-flight fast-path attempts before entering the
     critical section *)

  let software_path_wins = 14
  (* [Lockfree] operations served through a published descriptor — by the
     thread's own combining tenure or by another thread's (helped) *)

  let helped_ops = 15
  (* [Lockfree] descriptors a combiner applied on behalf of *other*
     threads during its tenure *)

  (* Telemetry labels for the indices this module owns. *)
  let names =
    [
      (fallbacks, "fallbacks");
      (retries, "retries");
      (lock_wait_cycles, "lock_wait_cycles");
      (watchdog_trips, "watchdog_trips");
      (starvation_backoffs, "starvation_backoffs");
      (convoy_events, "convoy_events");
      (fast_path_wins, "fast_path_wins");
      (middle_path_wins, "middle_path_wins");
      (grace_wait_cycles, "grace_wait_cycles");
      (software_path_wins, "software_path_wins");
      (helped_ops, "helped_ops");
    ]
end

let () = Euno_sim.Machine.register_user_counters ~owner:"htm" Counter.names

(* Threads simultaneously past the fallback entry (queued or holding) that
   count as a convoy. *)
let convoy_depth = 3

(* The fallback lock plus its degradation-tracking sidecar: one word of
   fallback depth (how many threads are past the fallback entry right
   now), then a per-thread consecutive-fallback slot.  The sidecar is
   bookkeeping, not protocol data: the depth word is FAA'd outside
   transactions and the slots use untracked accesses, so none of it can
   doom a transaction or join a read set.

   [tp] is the template protocol sidecar, allocated only when the lock is
   created for a [Three_path] or [Lockfree] policy (so elision-only worlds
   keep the exact allocation stream the golden traces were recorded
   against): word 0 is the fallback-activity counter the middle path
   subscribes to and fallback entrants FAA, then one untracked
   in-fast-attempt flag per thread, then — [Lockfree] only — one
   descriptor-status word per thread.  [tp = -1] when absent. *)
type lock = { word : int; aux : int; tp : int }

let aux_words = 1 + Euno_sim.Line_table.max_threads

(* The 3-path sidecar is laid out one word per cache line: the middle path
   reads the activity counter transactionally, so if the per-thread fast
   flags shared its line every untracked flag write would land inside a
   middle-path subscriber's read-set line (an atomicity-lint finding in
   EunoSan, and a spurious doom on real RTM).  Brown's implementations pad
   these variables apart for exactly this reason. *)
let tp_stride = Euno_mem.Memory.line_words
let tp_words = tp_stride * (1 + Euno_sim.Line_table.max_threads)
let tp_flag lock tid = lock.tp + (tp_stride * (1 + tid))

(* The lockfree sidecar extends the 3-path layout with one padded
   descriptor-status word per thread (empty / pending / taken / done),
   after the activity counter and the fast flags.  Status transitions
   cross threads, so they use CAS (publish and retire are owner-only plain
   writes); polling spins use untracked reads, like the grace wait. *)
let lf_empty = 0
let lf_pending = 1
let lf_taken = 2
let lf_done = 3
let lf_tp_words = tp_stride * (1 + (2 * Euno_sim.Line_table.max_threads))

let lf_desc lock tid =
  lock.tp + (tp_stride * (1 + Euno_sim.Line_table.max_threads + tid))

(* Host-side descriptor bodies: the status word lives in simulated memory,
   but the operation closure and its result cannot, so they ride in a
   per-lock table keyed by the sidecar base address.  [alloc_lock]
   (re)installs the entry, so a sidecar address recycled by a later
   simulated world never leaks stale descriptors; the table itself holds
   no simulated state, so determinism is untouched.  Domain-local:
   concurrent campaign cells simulate disjoint worlds that can allocate
   identical sidecar addresses, so each pool worker keeps its own table.
   Results are monomorphised through [Obj] — sound because only the
   owning thread ever reads its own slot's result, with the type the
   closure it published produced. *)
type lf_cell = {
  mutable lf_fn : (unit -> Obj.t) option;
  mutable lf_res : (Obj.t, exn) result;
}

let lf_tables : (int, lf_cell array) Hashtbl.t Domain_ref.t =
  Domain_ref.create (fun () -> Hashtbl.create 7)

let alloc_lock ?(policy = default_policy) () =
  let word = Spinlock.alloc () in
  let aux = Api.alloc ~kind:Euno_mem.Linemap.Scratch ~words:aux_words in
  let tp =
    match policy.strategy with
    | Elision -> -1
    | Three_path ->
        (* Lock-kind, so a conflict cascade on the activity counter
           classifies as Subscription — it is the 3-path analogue of the
           elision lock word, not a data conflict. *)
        let tp = Api.alloc ~kind:Euno_mem.Linemap.Lock ~words:tp_words in
        (* A recycled address must not alias an earlier world's lockfree
           descriptor table: this sidecar has no descriptor stripe. *)
        Hashtbl.remove (Domain_ref.get lf_tables) tp;
        tp
    | Lockfree ->
        let tp = Api.alloc ~kind:Euno_mem.Linemap.Lock ~words:lf_tp_words in
        Hashtbl.replace (Domain_ref.get lf_tables) tp
          (Array.init Euno_sim.Line_table.max_threads (fun _ ->
               { lf_fn = None; lf_res = Error Not_found }));
        tp
  in
  { word; aux; tp }

let lock_word l = l.word

exception Unreachable_after_xabort
exception Stuck_fallback of { lock : int; waited : int }

(* One transactional attempt of [f].  Returns the abort code on failure.

   [Api.xbegin] must be evaluated *inside* the match scrutinee: the machine
   starts the transaction eagerly when the effect is performed, so the
   thread can already be doomed (e.g. by an injected preemption) while
   parked at the xbegin call site — the abort is then delivered exactly
   there, and a scrutinee that starts after xbegin would let it escape. *)
let attempt_body f =
  if Domain_ref.get Testonly.escape_xbegin_park then begin
    (* The pre-fix shape: the transaction starts before the match
       scrutinee, so a doom delivered at the xbegin park point is raised
       outside the handler below and escapes. *)
    Api.xbegin ();
    match
      let v = f () in
      Api.xend ();
      v
    with
    | v -> Ok v
    | exception Eff.Txn_abort code -> Error code
    | exception e ->
        (try if Api.xtest () then Api.xabort Abort.xabort_user_exn
         with Eff.Txn_abort _ -> ());
        raise e
  end
  else
    match
      Api.xbegin ();
      let v = f () in
      Api.xend ();
      v
    with
    | v -> Ok v
    | exception Eff.Txn_abort code -> Error code
    | exception e ->
        (* A user exception escaping [f] must not leave the machine with an
           open transaction: explicitly abort (rolling back buffered writes)
           before re-raising.  The xabort itself is observed as Txn_abort at
           its own call site, and the transaction may already have been
           doomed before [e] was raised — swallow that delivery, the user
           exception is what propagates. *)
        (try if Api.xtest () then Api.xabort Abort.xabort_user_exn
         with Eff.Txn_abort _ -> ());
        raise e

(* The sanitizer brackets every attempt so it can tell aborts delivered
   inside the wrapper (normal) from ones escaping it (the bug class the
   scrutinee placement above exists to prevent).  The exit note fires on
   the exception path too: escape detection keys off the thread dying
   with Txn_abort, not off bracket imbalance. *)
let attempt f =
  if Sev.armed () then begin
    Api.san_note Sev.Attempt_enter;
    match attempt_body f with
    | r ->
        Api.san_note Sev.Attempt_exit;
        r
    | exception e ->
        Api.san_note Sev.Attempt_exit;
        raise e
  end
  else attempt_body f

(* One *elided* attempt: subscribe to the fallback lock first.  The
   subscription read is what makes elision safe — it both aborts the
   attempt while a fallback holder is active and puts the lock word in the
   transaction's read set so a later acquisition dooms it. *)
let attempt_elided ~lock f =
  attempt (fun () ->
      if
        (not (Domain_ref.get Testonly.skip_subscription)) && Spinlock.is_locked lock.word
      then begin
        Api.xabort Abort.xabort_lock_held;
        raise Unreachable_after_xabort
      end;
      f ())

(* One *middle-path* attempt of the 3-path strategy: subscribe to the
   fallback-activity counter instead of the lock word.  The transactional
   read both aborts the attempt while a software fallback is in progress
   and puts the activity line in the read set, so a fallback announcing
   itself later (FAA) dooms the attempt — exactly the elision subscription
   property, against a counter the fast path can peek without joining. *)
let attempt_middle ~lock f =
  attempt (fun () ->
      if (not (Domain_ref.get Testonly.skip_activity_read)) && Api.read lock.tp > 0 then begin
        Api.xabort Abort.xabort_fallback_active;
        raise Unreachable_after_xabort
      end;
      f ())

type budgets = {
  mutable conflict : int;
  mutable capacity : int;
  mutable lock_busy : int;
  mutable other : int;
}

let budgets_of policy =
  {
    conflict = policy.conflict_retries;
    capacity = policy.capacity_retries;
    lock_busy = policy.lock_busy_retries;
    other = policy.other_retries;
  }

let budgets_total b = b.conflict + b.capacity + b.lock_busy + b.other

(* Consume one retry from the bucket matching [code]; false when that
   bucket is exhausted and the caller must take the fallback path. *)
let spend budgets (code : Abort.code) =
  let take get set =
    let v = get () in
    if v <= 0 then false
    else begin
      set (v - 1);
      true
    end
  in
  match code with
  | Abort.Conflict _ ->
      take (fun () -> budgets.conflict) (fun v -> budgets.conflict <- v)
  | Abort.Capacity_read | Abort.Capacity_write ->
      take (fun () -> budgets.capacity) (fun v -> budgets.capacity <- v)
  | Abort.Explicit _ ->
      take (fun () -> budgets.lock_busy) (fun v -> budgets.lock_busy <- v)
  | Abort.Spurious | Abort.Timer | Abort.Alloc_fault ->
      take (fun () -> budgets.other) (fun v -> budgets.other <- v)

(* ---------- the strategy interface ---------- *)

(* A fallback strategy is everything around the raw transactional attempt:
   how attempts subscribe, how retries are budgeted, and how the software
   fallback serializes.  [run] is the whole discipline for one operation;
   trees call [atomic], which dispatches here on [policy.strategy], so a
   new strategy needs no tree-code changes. *)
module type STRATEGY = sig
  val name : string

  val needs_sidecar : bool
  (** Whether locks driven by this strategy need the 3-path protocol
      sidecar ([lock.tp]); {!alloc_lock} consults the policy's strategy. *)

  val run :
    policy:policy ->
    on_abort:(Euno_sim.Abort.code -> unit) ->
    lock:lock ->
    (unit -> 'a) ->
    'a
end

(* ---------- shared degradation bookkeeping ---------- *)

(* Bounded polite wait on [quiet] coming true: true when it did, false
   when the watchdog fired first (holder preempted, stalled, or leaked). *)
let bounded_wait ~policy quiet =
  let t0 = Api.clock () in
  let rec spin () =
    if quiet () then true
    else if Api.clock () - t0 > policy.max_lock_wait then false
    else begin
      Api.work 64;
      spin ()
    end
  in
  spin ()

(* Convoy + starvation accounting at fallback entry.  Returns the
   consecutive-fallback count *including* this entry; exits through
   [fallback_abandoned] must give the entry back. *)
let fallback_enter ~policy ~lock ~starvation_slot =
  Api.count Counter.fallbacks 1;
  let consecutive = Api.untracked_read starvation_slot + 1 in
  Api.untracked_write starvation_slot consecutive;
  let depth = Api.faa lock.aux 1 + 1 in
  if depth >= convoy_depth then Api.count Counter.convoy_events 1;
  if consecutive > policy.starvation_threshold then begin
    (* Starving: this thread keeps losing the fast path.  Escalate a
       jittered backoff ahead of the lock so the convoy can drain and
       other threads regain the fast path (the anti-lemming valve). *)
    Api.count Counter.starvation_backoffs 1;
    let over = min 10 (consecutive - policy.starvation_threshold) in
    let d = min policy.backoff_cap (policy.backoff_base * (1 lsl over)) in
    Api.work (d + Api.rand (d + 1))
  end;
  consecutive

(* An operation that entered the fallback but was abandoned by an exception
   (Stuck_fallback, or a user/injected fault escaping [f]) was never served:
   it must not count toward this thread's consecutive-fallback starvation
   score, or a chaos run that defeats a few operations leaves the thread
   escalating starvation backoff forever after (the slot is otherwise only
   reset by a fast-path win). *)
let fallback_abandoned ~starvation_slot ~consecutive =
  Api.untracked_write starvation_slot (consecutive - 1)

(* ---------- strategy 1: DBX-style lock elision ---------- *)

module Elision : STRATEGY = struct
  let name = "elision"
  let needs_sidecar = false

  (* Execute [f] atomically: elided transactional attempts with retries,
     then under the fallback lock. *)
  let run ~policy ~on_abort ~lock f =
    let budgets = budgets_of policy in
    let backoff =
      Backoff.create ~base:policy.backoff_base ~cap:policy.backoff_cap ()
    in
    let wait_unlocked () =
      bounded_wait ~policy (fun () -> not (Spinlock.is_locked lock.word))
    in
    let starvation_slot = lock.aux + 1 + Api.tid () in
    (* Serialize under the fallback lock, with convoy and starvation
       accounting around the bounded acquisition. *)
    let fallback () =
      let consecutive = fallback_enter ~policy ~lock ~starvation_slot in
      let t0 = Api.clock () in
      let acquired =
        Spinlock.acquire_bounded ~max_cycles:policy.stuck_limit lock.word
      in
      Api.count Counter.lock_wait_cycles (Api.clock () - t0);
      if not acquired then begin
        ignore (Api.faa lock.aux (-1));
        fallback_abandoned ~starvation_slot ~consecutive;
        raise (Stuck_fallback { lock = lock.word; waited = Api.clock () - t0 })
      end;
      let leave () =
        Spinlock.release lock.word;
        ignore (Api.faa lock.aux (-1))
      in
      match f () with
      | v ->
          leave ();
          v
      | exception e ->
          leave ();
          fallback_abandoned ~starvation_slot ~consecutive;
          raise e
    in
    let rec go () =
      match attempt_elided ~lock f with
      | Ok v ->
          (* Fast path won: the thread is not starving. *)
          if Api.untracked_read starvation_slot <> 0 then
            Api.untracked_write starvation_slot 0;
          v
      | Error code ->
          on_abort code;
          (* A lock-held abort under a waiting policy is not a failed
             attempt: the thread queues outside the transaction until the
             holder leaves and retries with its budgets intact.  Charging
             the lock_busy bucket here would let a politely-queueing thread
             exhaust it and grab the fallback lock itself — amplifying the
             very convoy wait_for_lock exists to prevent.  The queueing is
             bounded by the watchdog: when the holder outlasts
             max_lock_wait the wait stops being free and the abort falls
             through to the budget path. *)
          let queued =
            policy.wait_for_lock && code = Abort.Explicit Abort.xabort_lock_held
          in
          if queued && wait_unlocked () then begin
            Api.count Counter.retries 1;
            go ()
          end
          else begin
            if queued then Api.count Counter.watchdog_trips 1;
            if spend budgets code then begin
              Api.count Counter.retries 1;
              (match code with
              | Abort.Conflict _ | Abort.Explicit _ -> Backoff.once backoff
              | Abort.Capacity_read | Abort.Capacity_write | Abort.Spurious
              | Abort.Timer | Abort.Alloc_fault ->
                  ());
              (* Post-fix implementations spin outside the transaction while
                 the fallback lock is held; paper-era ones dive right back
                 in.  (Bounded: a watchdog trip here just means the next
                 attempt aborts lock-held and spends budget.) *)
              if policy.wait_for_lock && not queued then ignore (wait_unlocked ());
              go ()
            end
            else fallback ()
          end
    in
    go ()
end

(* ---------- the shared fast/middle template (Brown) ---------- *)

(* Protocol recap, shared by [Three_path] and [Lockfree].  The sidecar
   carries an activity counter A (word [lock.tp]) and one per-thread
   in-fast-attempt flag (untracked).

   Fast path: set own flag, peek A untracked; if A = 0, attempt the
   transaction with NO subscription read, clear the flag when the
   attempt finishes (commit or abort).  If A > 0, clear the flag and
   drop to the middle path.

   Middle path: attempt with an in-transaction read of A, aborting
   explicitly when A > 0 — the elision subscription discipline against
   A instead of the lock word.

   Software path ([software], the strategy-specific part): announce on A
   (dooming every middle-path subscriber), then wait until every fast
   flag reads 0 — the grace period.  A fast attempt that set its flag
   before the FAA is waited out; one that sets it afterwards peeks A > 0
   and never starts a transaction.  Only then run [f] plainly —
   serialized on the fallback lock ([Three_path]) or applied by the
   current combiner tenure ([Lockfree]) — and FAA A back down.  Mutual
   exclusion between the unsubscribed fast path and the software path
   therefore never depends on conflict detection — it is the flag/counter
   handshake. *)
let template_run ~policy ~on_abort ~lock ~software f =
    let activity = lock.tp in
    let fast_flag = tp_flag lock (Api.tid ()) in
    let budgets = budgets_of policy in
    let backoff =
      Backoff.create ~base:policy.backoff_base ~cap:policy.backoff_cap ()
    in
    let starvation_slot = lock.aux + 1 + Api.tid () in
    let won counter v =
      Api.count counter 1;
      if Api.untracked_read starvation_slot <> 0 then
        Api.untracked_write starvation_slot 0;
      v
    in
    let rec middle () =
      match attempt_middle ~lock f with
      | Ok v -> won Counter.middle_path_wins v
      | Error code ->
          on_abort code;
          (* Same queueing discipline as elision, keyed on fallback
             activity instead of the lock word. *)
          let queued =
            policy.wait_for_lock
            && code = Abort.Explicit Abort.xabort_fallback_active
          in
          if
            queued
            && bounded_wait ~policy (fun () -> Api.untracked_read activity = 0)
          then begin
            Api.count Counter.retries 1;
            middle ()
          end
          else begin
            if queued then Api.count Counter.watchdog_trips 1;
            if spend budgets code then begin
              Api.count Counter.retries 1;
              (match code with
              | Abort.Conflict _ | Abort.Explicit _ -> Backoff.once backoff
              | Abort.Capacity_read | Abort.Capacity_write | Abort.Spurious
              | Abort.Timer | Abort.Alloc_fault ->
                  ());
              middle ()
            end
            else software ()
          end
    in
    let rec fast attempts_left =
      if attempts_left <= 0 then middle ()
      else begin
        (* Flag before peeking: a fallback that FAAs A after our peek is
           guaranteed to see the flag during its grace wait. *)
        Api.untracked_write fast_flag 1;
        if Api.untracked_read activity > 0 then begin
          Api.untracked_write fast_flag 0;
          middle ()
        end
        else begin
          let r =
            match attempt f with
            | r ->
                Api.untracked_write fast_flag 0;
                r
            | exception e ->
                Api.untracked_write fast_flag 0;
                raise e
          in
          match r with
          | Ok v -> won Counter.fast_path_wins v
          | Error code ->
              on_abort code;
              if spend budgets code then begin
                Api.count Counter.retries 1;
                (match code with
                | Abort.Conflict _ | Abort.Explicit _ -> Backoff.once backoff
                | Abort.Capacity_read | Abort.Capacity_write | Abort.Spurious
                | Abort.Timer | Abort.Alloc_fault ->
                    ());
                fast (attempts_left - 1)
              end
              else software ()
        end
      end
    in
    fast policy.fast_path_attempts

(* ---------- strategy 2: Brown's 3-path template ---------- *)

module Three_path : STRATEGY = struct
  let name = "three-path"
  let needs_sidecar = true

  (* The template with a lock-serialized software path: announce, grace
     wait, then a bounded acquisition of the fallback lock. *)
  let run ~policy ~on_abort ~lock f =
    if lock.tp < 0 then
      invalid_arg
        "Htm: three-path strategy requires a lock from alloc_lock with a \
         three-path policy";
    let software () =
      let activity = lock.tp in
      let starvation_slot = lock.aux + 1 + Api.tid () in
      let consecutive = fallback_enter ~policy ~lock ~starvation_slot in
      (* Announce before the grace wait: once A > 0 is visible no new
         fast-path transaction starts, so every flag only needs to be
         observed clear once. *)
      ignore (Api.faa activity 1);
      let abandon () =
        ignore (Api.faa activity (-1));
        ignore (Api.faa lock.aux (-1));
        fallback_abandoned ~starvation_slot ~consecutive
      in
      let t0 = Api.clock () in
      let rec grace tid =
        if tid >= Euno_sim.Line_table.max_threads then true
        else if Api.untracked_read (tp_flag lock tid) = 0 then grace (tid + 1)
        else if Api.clock () - t0 > policy.stuck_limit then false
        else begin
          Api.work 64;
          grace tid
        end
      in
      let quiesced = grace 0 in
      Api.count Counter.grace_wait_cycles (Api.clock () - t0);
      if not quiesced then begin
        abandon ();
        raise (Stuck_fallback { lock = lock.word; waited = Api.clock () - t0 })
      end;
      let t1 = Api.clock () in
      let acquired =
        Spinlock.acquire_bounded ~max_cycles:policy.stuck_limit lock.word
      in
      Api.count Counter.lock_wait_cycles (Api.clock () - t1);
      if not acquired then begin
        abandon ();
        raise (Stuck_fallback { lock = lock.word; waited = Api.clock () - t1 })
      end;
      let leave () =
        Spinlock.release lock.word;
        ignore (Api.faa activity (-1));
        ignore (Api.faa lock.aux (-1))
      in
      match f () with
      | v ->
          leave ();
          v
      | exception e ->
          leave ();
          fallback_abandoned ~starvation_slot ~consecutive;
          raise e
    in
    template_run ~policy ~on_abort ~lock ~software f
end

(* ---------- strategy 3: Brown's full template, lock-free software
   fallback (descriptor publication + combining/helping) ---------- *)

module Lockfree : STRATEGY = struct
  let name = "lockfree"
  let needs_sidecar = true

  (* Software-path protocol.  A thread whose budgets run out:

     1. publishes: stores its operation closure in the host-side cell and
        plain-writes its status word empty→pending (owner-only
        transition);
     2. announces: FAA on the activity counter — middle-path subscribers
        are doomed, new fast attempts fenced off (the [Testonly.
        lf_skip_announce] mutation deletes exactly this edge);
     3. serves: polls its own status; when the single [try_acquire] on
        the fallback word wins, it becomes the combiner — one grace wait
        over the fast flags, then every pending descriptor is claimed
        (CAS pending→taken), applied plainly, and marked done.  A thread
        that loses the try_acquire just keeps polling: the current
        combiner applies its descriptor for it (helping), and the op
        completes without this thread ever touching the lock.

     The combiner's own announcement spans its whole tenure (it retires
     it only after taking its result, post-release), so activity ≥ 1
     covers every plain application, and each tenure begins with a grace
     wait — no unsubscribed fast transaction ever overlaps one.

     Abandonment (watchdog past [stuck_limit]) must leave no droppable
     op behind: withdrawing CASes pending→empty; if that fails a combiner
     already owns the descriptor and its effects will land, so the thread
     waits for done and returns normally instead of raising. *)

  let run ~policy ~on_abort ~lock f =
    let cells =
      match
        if lock.tp < 0 then None else Hashtbl.find_opt (Domain_ref.get lf_tables) lock.tp
      with
      | Some cells -> cells
      | None ->
          invalid_arg
            "Htm: lockfree strategy requires a lock from alloc_lock with a \
             lockfree policy"
    in
    let software () =
      let tid = Api.tid () in
      let activity = lock.tp in
      let starvation_slot = lock.aux + 1 + tid in
      let desc = lf_desc lock tid in
      let cell = cells.(tid) in
      let consecutive = fallback_enter ~policy ~lock ~starvation_slot in
      cell.lf_fn <- Some (fun () -> Obj.repr (f ()));
      Api.write desc lf_pending;
      if not (Domain_ref.get Testonly.lf_skip_announce) then ignore (Api.faa activity 1);
      let t0 = Api.clock () in
      (* Status is done: take the result, retire slot + announcement. *)
      let finish () =
        let r = cell.lf_res in
        cell.lf_fn <- None;
        cell.lf_res <- Error Not_found;
        Api.write desc lf_empty;
        if not (Domain_ref.get Testonly.lf_skip_announce) then ignore (Api.faa activity (-1));
        ignore (Api.faa lock.aux (-1));
        match r with
        | Ok v ->
            Api.count Counter.software_path_wins 1;
            Obj.obj v
        | Error e ->
            (* The op ran but raised (injected fault / user exception):
               like its siblings, it was not served — give the starvation
               entry back before propagating. *)
            fallback_abandoned ~starvation_slot ~consecutive;
            raise e
      in
      let withdraw waited =
        if Api.cas desc ~expected:lf_pending ~desired:lf_empty then begin
          cell.lf_fn <- None;
          if not (Domain_ref.get Testonly.lf_skip_announce) then
            ignore (Api.faa activity (-1));
          ignore (Api.faa lock.aux (-1));
          fallback_abandoned ~starvation_slot ~consecutive;
          raise (Stuck_fallback { lock = lock.word; waited })
        end
        else begin
          (* A combiner claimed the descriptor between the timeout and the
             CAS: the op's effects will land, so abandoning now would
             drop a served op.  Application is plain and bounded — wait
             for done and return normally. *)
          while Api.untracked_read desc <> lf_done do
            Api.work 64
          done;
          finish ()
        end
      in
      (* We hold the combiner claim (lock.word). *)
      let combine () =
        if Api.untracked_read desc = lf_done then begin
          (* The previous tenure served us between our poll and our
             claim; nothing left to combine for. *)
          Spinlock.release lock.word;
          finish ()
        end
        else begin
          let tg = Api.clock () in
          let rec grace t =
            if t >= Euno_sim.Line_table.max_threads then true
            else if Api.untracked_read (tp_flag lock t) = 0 then grace (t + 1)
            else if Api.clock () - tg > policy.stuck_limit then false
            else begin
              Api.work 64;
              grace t
            end
          in
          let quiesced = grace 0 in
          Api.count Counter.grace_wait_cycles (Api.clock () - tg);
          if not quiesced then begin
            Spinlock.release lock.word;
            withdraw (Api.clock () - t0)
          end
          else begin
            (* Between claim and release no other combiner runs and
               every status is empty, pending or done — [lf_taken] is
               tenure-local.  Our own descriptor was pending (checked
               above), so it is done when the loop finishes. *)
            for u = 0 to Euno_sim.Line_table.max_threads - 1 do
              let du = lf_desc lock u in
              if
                Api.untracked_read du = lf_pending
                && Api.cas du ~expected:lf_pending ~desired:lf_taken
              then begin
                let cu = cells.(u) in
                (match (Option.get cu.lf_fn) () with
                | v -> cu.lf_res <- Ok v
                | exception e -> cu.lf_res <- Error e);
                Api.write du lf_done;
                if u <> tid then Api.count Counter.helped_ops 1
              end
            done;
            Spinlock.release lock.word;
            finish ()
          end
        end
      in
      let rec serve () =
        if Api.untracked_read desc = lf_done then finish ()
        else if Spinlock.try_acquire lock.word then combine ()
        else if Api.clock () - t0 > policy.stuck_limit then
          withdraw (Api.clock () - t0)
        else begin
          Api.work 64;
          serve ()
        end
      in
      serve ()
    in
    template_run ~policy ~on_abort ~lock ~software f
end

let strategy_impl = function
  | Elision -> (module Elision : STRATEGY)
  | Three_path -> (module Three_path : STRATEGY)
  | Lockfree -> (module Lockfree : STRATEGY)

let strategies =
  List.map (fun s -> (strategy_name s, strategy_impl s)) all_strategies

(* Execute [f] atomically under the policy's strategy: transactionally
   with retries, then under the software fallback.  [f] runs either inside
   a transaction or while the fallback serializes it; it must not catch
   Txn_abort itself.  [on_abort] runs outside the transaction after every
   aborted attempt (used by Eunomia's per-leaf contention detector). *)
let atomic ?(policy = default_policy) ?(on_abort = fun (_ : Abort.code) -> ())
    ~lock f =
  let (module S : STRATEGY) = strategy_impl policy.strategy in
  S.run ~policy ~on_abort ~lock f
