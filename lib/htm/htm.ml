(* User-level RTM interface: retry policy and lock-elision fallback.

   Mirrors the strategy the paper reuses from DBX/DrTM (Section 4.2.1):
   each abort type has its own retry budget; when a budget is exhausted the
   operation falls back to a global lock.  Transactions read the fallback
   lock word right after xbegin, so a fallback holder aborts them
   (lock elision).

   Graceful degradation: the polite wait-for-lock spin is bounded by a
   watchdog (a stalled fallback holder cannot hang a waiter forever — the
   waiter falls through to the budget path and eventually serializes), the
   fallback acquisition itself is bounded (a leaked lock surfaces as
   Stuck_fallback instead of a livelock), threads that keep losing the
   fast path are detected as starving and back off with escalating jitter,
   and a convoy on the fallback lock is counted through user-counter
   telemetry. *)

module Api = Euno_sim.Api
module Abort = Euno_sim.Abort
module Eff = Euno_sim.Eff
module Sev = Euno_sim.Sev
module Spinlock = Euno_sync.Spinlock
module Backoff = Euno_sync.Backoff

(* Test-only mutation switches: reintroduce historical protocol bugs so
   the sanitizer test suite can prove it detects them.  Never set outside
   test code. *)
module Testonly = struct
  let escape_xbegin_park = ref false
  (* PR 2 bug: evaluate xbegin *before* the match scrutinee, so an abort
     delivered while parked at the xbegin call site escapes [attempt]
     uncaught. *)

  let skip_subscription = ref false
  (* Lock-elision bug: skip the fallback-lock subscription check in
     [attempt_elided].  An unsubscribed transaction neither aborts when a
     fallback holder is active nor joins its read set, so it can commit in
     the middle of the holder's critical section — the classic lost-update
     window EunoCheck must catch as a non-linearizable history. *)
end

type policy = {
  conflict_retries : int;
  capacity_retries : int;
  lock_busy_retries : int; (* explicit aborts: fallback lock observed held *)
  other_retries : int; (* spurious / timer / alloc-fault *)
  backoff_base : int;
  backoff_cap : int;
  wait_for_lock : bool;
      (* spin outside the transaction while the fallback lock is held,
         instead of burning transactional attempts against it.  The
         paper-era implementations (DBX; pre-fix glibc elision) did NOT do
         this — retrying straight into a held lock is what produces the
         fallback death spiral ("lemming effect") under contention. *)
  max_lock_wait : int;
      (* watchdog: cycles a wait_for_lock spin may queue on a held
         fallback lock before giving up and falling through to the budget
         path.  Keeps a preempted/stalled holder from hanging waiters. *)
  stuck_limit : int;
      (* cycles the fallback path may spin acquiring the lock before the
         operation raises Stuck_fallback: past this point the lock is
         considered leaked, not merely contended *)
  starvation_threshold : int;
      (* consecutive fallbacks by one thread before it is considered
         starving and starts escalating jittered backoff ahead of the
         lock; max_int disables detection (paper-era behaviour) *)
}

(* The DBX-style policy the paper's baselines use: a small conflict budget,
   mild backoff, and naive retry against a held fallback lock.  Starvation
   detection is disabled so the paper's collapse shapes are preserved. *)
let default_policy =
  {
    conflict_retries = 2;
    capacity_retries = 2;
    lock_busy_retries = 24;
    other_retries = 4;
    backoff_base = 16;
    backoff_cap = 1024;
    wait_for_lock = false;
    max_lock_wait = 50_000;
    stuck_limit = 5_000_000;
    starvation_threshold = max_int;
  }

(* A modern, well-behaved policy (post-lemming-fix), for ablations. *)
let polite_policy =
  {
    conflict_retries = 16;
    capacity_retries = 2;
    lock_busy_retries = 16;
    other_retries = 4;
    backoff_base = 64;
    backoff_cap = 8192;
    wait_for_lock = true;
    max_lock_wait = 50_000;
    stuck_limit = 5_000_000;
    starvation_threshold = 3;
  }

(* User-counter indices (see Machine.n_user_counters).  This module owns
   0-2 and 8-10; Euno_tree owns 3-7. *)
module Counter = struct
  let fallbacks = 0
  let retries = 1
  let lock_wait_cycles = 2 (* cycles spent queueing on the fallback lock *)
  let watchdog_trips = 8 (* bounded lock waits that gave up *)
  let starvation_backoffs = 9 (* escalating backoffs by starving threads *)
  let convoy_events = 10 (* fallback entries that joined a convoy *)

  (* Telemetry labels for the indices this module owns. *)
  let names =
    [
      (fallbacks, "fallbacks");
      (retries, "retries");
      (lock_wait_cycles, "lock_wait_cycles");
      (watchdog_trips, "watchdog_trips");
      (starvation_backoffs, "starvation_backoffs");
      (convoy_events, "convoy_events");
    ]
end

(* Threads simultaneously past the fallback entry (queued or holding) that
   count as a convoy. *)
let convoy_depth = 3

(* The fallback lock plus its degradation-tracking sidecar: one word of
   fallback depth (how many threads are past the fallback entry right
   now), then a per-thread consecutive-fallback slot.  The sidecar is
   bookkeeping, not protocol data: the depth word is FAA'd outside
   transactions and the slots use untracked accesses, so none of it can
   doom a transaction or join a read set. *)
type lock = { word : int; aux : int }

let aux_words = 1 + Euno_sim.Line_table.max_threads

let alloc_lock () =
  {
    word = Spinlock.alloc ();
    aux = Api.alloc ~kind:Euno_mem.Linemap.Scratch ~words:aux_words;
  }

let lock_word l = l.word

exception Unreachable_after_xabort
exception Stuck_fallback of { lock : int; waited : int }

(* One transactional attempt of [f].  Returns the abort code on failure.

   [Api.xbegin] must be evaluated *inside* the match scrutinee: the machine
   starts the transaction eagerly when the effect is performed, so the
   thread can already be doomed (e.g. by an injected preemption) while
   parked at the xbegin call site — the abort is then delivered exactly
   there, and a scrutinee that starts after xbegin would let it escape. *)
let attempt_body f =
  if !Testonly.escape_xbegin_park then begin
    (* The pre-fix shape: the transaction starts before the match
       scrutinee, so a doom delivered at the xbegin park point is raised
       outside the handler below and escapes. *)
    Api.xbegin ();
    match
      let v = f () in
      Api.xend ();
      v
    with
    | v -> Ok v
    | exception Eff.Txn_abort code -> Error code
    | exception e ->
        (try if Api.xtest () then Api.xabort Abort.xabort_user_exn
         with Eff.Txn_abort _ -> ());
        raise e
  end
  else
    match
      Api.xbegin ();
      let v = f () in
      Api.xend ();
      v
    with
    | v -> Ok v
    | exception Eff.Txn_abort code -> Error code
    | exception e ->
        (* A user exception escaping [f] must not leave the machine with an
           open transaction: explicitly abort (rolling back buffered writes)
           before re-raising.  The xabort itself is observed as Txn_abort at
           its own call site, and the transaction may already have been
           doomed before [e] was raised — swallow that delivery, the user
           exception is what propagates. *)
        (try if Api.xtest () then Api.xabort Abort.xabort_user_exn
         with Eff.Txn_abort _ -> ());
        raise e

(* The sanitizer brackets every attempt so it can tell aborts delivered
   inside the wrapper (normal) from ones escaping it (the bug class the
   scrutinee placement above exists to prevent).  The exit note fires on
   the exception path too: escape detection keys off the thread dying
   with Txn_abort, not off bracket imbalance. *)
let attempt f =
  if !Sev.enabled then begin
    Api.san_note Sev.Attempt_enter;
    match attempt_body f with
    | r ->
        Api.san_note Sev.Attempt_exit;
        r
    | exception e ->
        Api.san_note Sev.Attempt_exit;
        raise e
  end
  else attempt_body f

(* One *elided* attempt: subscribe to the fallback lock first.  The
   subscription read is what makes elision safe — it both aborts the
   attempt while a fallback holder is active and puts the lock word in the
   transaction's read set so a later acquisition dooms it. *)
let attempt_elided ~lock f =
  attempt (fun () ->
      if
        (not !Testonly.skip_subscription) && Spinlock.is_locked lock.word
      then begin
        Api.xabort Abort.xabort_lock_held;
        raise Unreachable_after_xabort
      end;
      f ())

type budgets = {
  mutable conflict : int;
  mutable capacity : int;
  mutable lock_busy : int;
  mutable other : int;
}

let budgets_of policy =
  {
    conflict = policy.conflict_retries;
    capacity = policy.capacity_retries;
    lock_busy = policy.lock_busy_retries;
    other = policy.other_retries;
  }

(* Consume one retry from the bucket matching [code]; false when that
   bucket is exhausted and the caller must take the fallback path. *)
let spend budgets (code : Abort.code) =
  let take get set =
    let v = get () in
    if v <= 0 then false
    else begin
      set (v - 1);
      true
    end
  in
  match code with
  | Abort.Conflict _ ->
      take (fun () -> budgets.conflict) (fun v -> budgets.conflict <- v)
  | Abort.Capacity_read | Abort.Capacity_write ->
      take (fun () -> budgets.capacity) (fun v -> budgets.capacity <- v)
  | Abort.Explicit _ ->
      take (fun () -> budgets.lock_busy) (fun v -> budgets.lock_busy <- v)
  | Abort.Spurious | Abort.Timer | Abort.Alloc_fault ->
      take (fun () -> budgets.other) (fun v -> budgets.other <- v)

(* Execute [f] atomically: transactionally with retries, then under the
   fallback lock.  [f] runs either inside a transaction or while holding
   [lock]; it must not catch Txn_abort itself.  [on_abort] runs outside the
   transaction after every aborted attempt (used by Eunomia's per-leaf
   contention detector). *)
let atomic ?(policy = default_policy) ?(on_abort = fun (_ : Abort.code) -> ())
    ~lock f =
  let budgets = budgets_of policy in
  let backoff = Backoff.create ~base:policy.backoff_base ~cap:policy.backoff_cap () in
  (* Bounded polite wait: true when the lock came free, false when the
     watchdog fired first (holder preempted, stalled, or leaked). *)
  let wait_unlocked () =
    let t0 = Api.clock () in
    let rec spin () =
      if not (Spinlock.is_locked lock.word) then true
      else if Api.clock () - t0 > policy.max_lock_wait then false
      else begin
        Api.work 64;
        spin ()
      end
    in
    spin ()
  in
  let starvation_slot = lock.aux + 1 + Api.tid () in
  (* Serialize under the fallback lock, with convoy and starvation
     accounting around the bounded acquisition. *)
  let fallback () =
    Api.count Counter.fallbacks 1;
    let consecutive = Api.untracked_read starvation_slot + 1 in
    Api.untracked_write starvation_slot consecutive;
    let depth = Api.faa lock.aux 1 + 1 in
    if depth >= convoy_depth then Api.count Counter.convoy_events 1;
    (if consecutive > policy.starvation_threshold then begin
       (* Starving: this thread keeps losing the fast path.  Escalate a
          jittered backoff ahead of the lock so the convoy can drain and
          other threads regain the fast path (the anti-lemming valve). *)
       Api.count Counter.starvation_backoffs 1;
       let over = min 10 (consecutive - policy.starvation_threshold) in
       let d = min policy.backoff_cap (policy.backoff_base * (1 lsl over)) in
       Api.work (d + Api.rand (d + 1))
     end);
    let t0 = Api.clock () in
    let acquired =
      Spinlock.acquire_bounded ~max_cycles:policy.stuck_limit lock.word
    in
    Api.count Counter.lock_wait_cycles (Api.clock () - t0);
    if not acquired then begin
      ignore (Api.faa lock.aux (-1));
      raise (Stuck_fallback { lock = lock.word; waited = Api.clock () - t0 })
    end;
    let leave () =
      Spinlock.release lock.word;
      ignore (Api.faa lock.aux (-1))
    in
    match f () with
    | v ->
        leave ();
        v
    | exception e ->
        leave ();
        raise e
  in
  let rec go () =
    match attempt_elided ~lock f with
    | Ok v ->
        (* Fast path won: the thread is not starving. *)
        if Api.untracked_read starvation_slot <> 0 then
          Api.untracked_write starvation_slot 0;
        v
    | Error code ->
        on_abort code;
        (* A lock-held abort under a waiting policy is not a failed attempt:
           the thread queues outside the transaction until the holder leaves
           and retries with its budgets intact.  Charging the lock_busy
           bucket here would let a politely-queueing thread exhaust it and
           grab the fallback lock itself — amplifying the very convoy
           wait_for_lock exists to prevent.  The queueing is bounded by the
           watchdog: when the holder outlasts max_lock_wait the wait stops
           being free and the abort falls through to the budget path. *)
        let queued =
          policy.wait_for_lock && code = Abort.Explicit Abort.xabort_lock_held
        in
        if queued && wait_unlocked () then begin
          Api.count Counter.retries 1;
          go ()
        end
        else begin
          if queued then Api.count Counter.watchdog_trips 1;
          if spend budgets code then begin
            Api.count Counter.retries 1;
            (match code with
            | Abort.Conflict _ | Abort.Explicit _ -> Backoff.once backoff
            | Abort.Capacity_read | Abort.Capacity_write | Abort.Spurious
            | Abort.Timer | Abort.Alloc_fault ->
                ());
            (* Post-fix implementations spin outside the transaction while
               the fallback lock is held; paper-era ones dive right back
               in.  (Bounded: a watchdog trip here just means the next
               attempt aborts lock-held and spends budget.) *)
            if policy.wait_for_lock && not queued then ignore (wait_unlocked ());
            go ()
          end
          else fallback ()
        end
  in
  go ()
