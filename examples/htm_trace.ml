(* A guided tour of the simulated RTM machine itself: two threads collide
   on one cache line while a tracer records every transaction event, then
   the run replays with a different seed to show determinism.

     dune exec examples/htm_trace.exe
*)

module Memory = Euno_mem.Memory
module Linemap = Euno_mem.Linemap
module Alloc = Euno_mem.Alloc
module Machine = Euno_sim.Machine
module Cost = Euno_sim.Cost
module Api = Euno_sim.Api
module Trace = Euno_sim.Trace
module Htm = Euno_htm.Htm

let run_traced seed =
  let mem = Memory.create () in
  let map = Linemap.create () in
  let alloc = Alloc.create mem map in
  let hot = Alloc.alloc alloc ~kind:Linemap.Record ~words:8 in
  let lock =
    Machine.run_single ~mem ~map ~alloc (fun () -> Htm.alloc_lock ())
  in
  let ring = Trace.ring ~capacity:64 in
  let m =
    Machine.create ~threads:2 ~seed ~cost:Cost.default ~mem ~map ~alloc
  in
  Machine.set_tracer m (Some (Trace.push ring));
  Machine.run m (fun tid ->
      for i = 1 to 3 do
        Api.op_key ((tid * 10) + i);
        Htm.atomic ~lock (fun () ->
            (* both threads read-modify-write the same line: guaranteed
               transactional conflicts, resolved requester-wins *)
            let v = Api.read hot in
            Api.work 400;
            Api.write hot (v + 1));
        Api.op_done ()
      done);
  (ring, Memory.get mem hot, Machine.elapsed m)

let () =
  let ring, total, cycles = run_traced 1 in
  print_endline "Two simulated threads increment one hot line under RTM;";
  print_endline "every transaction event, as the machine saw it:\n";
  List.iter print_endline (Trace.to_strings ring);
  Printf.printf
    "\nfinal counter = %d (6 increments, none lost), %d simulated cycles\n"
    total cycles;
  (* Determinism: identical seed => identical simulated execution. *)
  let _, total2, cycles2 = run_traced 1 in
  let _, _, cycles3 = run_traced 2 in
  Printf.printf "replay with seed 1: %d cycles (%s)\n" cycles2
    (if cycles2 = cycles && total2 = total then "bit-for-bit identical"
     else "MISMATCH!");
  Printf.printf "replay with seed 2: %d cycles (different schedule)\n" cycles3;
  (* The same ring, machine-readable: JSONL for ad-hoc analysis, and the
     Chrome trace_event form chrome://tracing or Perfetto can open to show
     each transaction's lifecycle on a per-thread timeline. *)
  print_endline "\nthe first three events again, as JSONL:";
  List.iteri
    (fun i line -> if i < 3 then print_endline ("  " ^ line))
    (Trace.to_jsonl ring);
  let chrome = "_trace_htm.json" in
  let oc = open_out chrome in
  output_string oc (Euno_stats.Json.to_string ~pretty:true (Trace.chrome_trace ring));
  close_out oc;
  Printf.printf
    "full transaction timeline written to %s (open in chrome://tracing)\n"
    chrome
