(* Benchmark entry point, in two parts:

   1. Bechamel micro-benchmarks of the building blocks (host-side cost of
      the simulator and of each substrate's hot path), one Test.make per
      component.
   2. The full paper reproduction: every figure of the evaluation section
      and the Section 5.7 memory analysis, printed as tables
      (Euno_harness.Figures).

     dune exec bench/main.exe             # micro + all figures (~20 min)
     dune exec bench/main.exe -- --quick  # smoke-test scale
     dune exec bench/main.exe -- --micro-only
     dune exec bench/main.exe -- --figures-only
*)

open Bechamel
open Toolkit
module Memory = Euno_mem.Memory
module Linemap = Euno_mem.Linemap
module Alloc = Euno_mem.Alloc
module Machine = Euno_sim.Machine
module Api = Euno_sim.Api
module Rng = Euno_sim.Rng
module Dist = Euno_workload.Dist
module Htm = Euno_htm.Htm
module Ccm = Euno_ccm.Ccm
module Bptree = Euno_bptree.Bptree
module Euno = Eunomia.Euno_tree
module Masstree = Euno_masstree.Masstree

(* ---------- worlds reused across micro-benchmark iterations ---------- *)

type world = { mem : Memory.t; map : Linemap.t; alloc : Alloc.t }

let fresh_world () =
  let mem = Memory.create () in
  let map = Linemap.create () in
  let alloc = Alloc.create mem map in
  { mem; map; alloc }

let on_machine w f =
  Machine.run_single ~mem:w.mem ~map:w.map ~alloc:w.alloc f

(* Batched tree-operation benchmark: host nanoseconds per 100 simulated
   operations (one machine instantiation amortized across the batch). *)
let tree_op_bench name ~build ~op =
  let w = fresh_world () in
  let tree = on_machine w (fun () -> build w) in
  let counter = ref 0 in
  Test.make ~name:(name ^ " x100")
    (Staged.stage (fun () ->
         on_machine w (fun () ->
             for _ = 1 to 100 do
               incr counter;
               op tree !counter
             done)))

let micro_tests () =
  let simple name f = Test.make ~name (Staged.stage f) in
  [
    (* raw simulator effect dispatch *)
    (let w = fresh_world () in
     let addr = Alloc.alloc w.alloc ~kind:Linemap.Scratch ~words:8 in
     simple "sim: 100 read/write effects" (fun () ->
         on_machine w (fun () ->
             for i = 0 to 49 do
               Api.write addr i;
               ignore (Api.read addr)
             done)));
    (let w = fresh_world () in
     let lock = on_machine w (fun () -> Htm.alloc_lock ()) in
     let addr = Alloc.alloc w.alloc ~kind:Linemap.Scratch ~words:8 in
     simple "htm: one-write elided txn x100" (fun () ->
         on_machine w (fun () ->
             for _ = 1 to 100 do
               Htm.atomic ~lock (fun () -> Api.write addr 1)
             done)));
    (let rng = Rng.create 1 in
     simple "rng: splitmix64 draw" (fun () -> ignore (Rng.next rng)));
    (let d = Dist.create (Dist.Zipfian 0.99) ~n:1_000_000 ~seed:3 in
     simple "workload: zipfian(0.99) sample" (fun () -> ignore (Dist.next d)));
    (let d = Dist.create (Dist.Self_similar 0.2) ~n:1_000_000 ~seed:4 in
     simple "workload: self-similar sample" (fun () -> ignore (Dist.next d)));
    tree_op_bench "bptree: sequential put"
      ~build:(fun w -> Bptree.create ~fanout:16 ~map:w.map ())
      ~op:(fun t i -> Bptree.put t (i * 7919 mod 100_000) i);
    tree_op_bench "bptree: sequential get"
      ~build:(fun w ->
        let t = Bptree.create ~fanout:16 ~map:w.map () in
        for k = 0 to 9_999 do
          Bptree.put t k k
        done;
        t)
      ~op:(fun t i -> ignore (Bptree.get t (i mod 10_000)));
    tree_op_bench "euno: sequential put"
      ~build:(fun w -> Euno.create ~cfg:Eunomia.Config.default ~map:w.map ())
      ~op:(fun t i -> Euno.put t (i * 7919 mod 100_000) i);
    tree_op_bench "euno: sequential get"
      ~build:(fun w ->
        let t = Euno.create ~cfg:Eunomia.Config.default ~map:w.map () in
        for k = 0 to 9_999 do
          Euno.put t k k
        done;
        t)
      ~op:(fun t i -> ignore (Euno.get t (i mod 10_000)));
    tree_op_bench "masstree: sequential get"
      ~build:(fun w ->
        let t = Masstree.create ~fanout:16 ~map:w.map () in
        for k = 0 to 9_999 do
          Masstree.put t k k
        done;
        t)
      ~op:(fun t i -> ignore (Masstree.get t (i mod 10_000)));
    (let w = fresh_world () in
     let c =
       on_machine w (fun () ->
           let base = Alloc.alloc w.alloc ~kind:Linemap.Lock ~words:8 in
           Ccm.make ~base ~mode_addr:(base + 7) ~capacity:15)
     in
     simple "ccm: lock+mark+unlock slot x100" (fun () ->
         on_machine w (fun () ->
             for _ = 1 to 100 do
               let slot = Ccm.hash c 12345 in
               Ccm.lock_slot c slot;
               ignore (Ccm.marked c slot);
               Ccm.unlock_slot c slot
             done)));
  ]

(* Runs every micro-benchmark and returns [(name, host ns/call)] for the
   machine-readable BENCH_results.json record stream. *)
let run_micro () =
  print_endline "== Micro-benchmarks (host ns per simulated call) ==";
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let estimates = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:true
             ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
              Printf.printf "  %-36s %10.0f ns/call\n%!" name est;
              estimates := (name, est) :: !estimates
          | Some _ | None -> Printf.printf "  %-36s (no estimate)\n%!" name)
        ols)
    (micro_tests ());
  print_newline ();
  List.rev !estimates

(* ---------- perf-regression probes ---------- *)

(* Fixed-scale engine-throughput probes for the perf gate
   (bin/euno_perf_check): simulated tree operations per host wall-second,
   one probe per (tree, zipfian theta), plus the engine micro timings.
   The scale is deliberately independent of --quick so every
   BENCH_results.json is comparable against the committed
   bench/baseline.json; wall time covers the whole run (world build,
   preload, measurement), making the probe an end-to-end engine-cost
   proxy rather than a paper metric. *)

let perf_trees =
  [
    ("bptree-htm", Euno_harness.Kv.Htm_bptree);
    ("euno", Euno_harness.Kv.Euno Eunomia.Config.default);
    ("masstree", Euno_harness.Kv.Masstree);
  ]

let perf_thetas = [ 0.2; 0.8; 0.99 ]

(* Micro timings that double as perf probes: the two engine hot paths the
   fast-path work targets. *)
let perf_micro_names =
  [ "sim: 100 read/write effects"; "htm: one-write elided txn x100" ]

(* One probe: (name, strategy name, capacity-model name, ops/wall-sec). *)
let perf_probe ~tname ~kind ~theta ~policy ~capacity ~name_fmt =
  let workload =
    {
      Euno_harness.Runner.default_workload with
      dist = Euno_workload.Dist.Zipfian theta;
      key_space = 16_384;
    }
  in
  let setup =
    {
      Euno_harness.Runner.default_setup with
      threads = 4;
      ops_per_thread = 5_000;
      seed = 7;
      cost = Euno_sim.Cost.with_capacity Euno_sim.Cost.default capacity;
      policy;
      check_after = false;
    }
  in
  let t0 = Unix.gettimeofday () in
  let r = Euno_harness.Runner.run kind workload setup in
  let dt = Unix.gettimeofday () -. t0 in
  let ops_per_sec = float_of_int r.Euno_harness.Runner.r_ops /. dt in
  let name = name_fmt tname theta in
  Printf.printf "  %-44s %12.0f ops/s\n%!" name ops_per_sec;
  (name, r.Euno_harness.Runner.r_strategy, r.r_capacity_model, ops_per_sec)

let run_perf () =
  print_endline "== Perf probes (simulated ops per host wall-second) ==";
  (* The historical grid: every tree x theta under the default policy
     (elision) and nominal capacity, names unchanged so old baselines
     stay comparable. *)
  let default_grid =
    List.concat_map
      (fun (tname, kind) ->
        List.map
          (fun theta ->
            perf_probe ~tname ~kind ~theta ~policy:None
              ~capacity:Euno_sim.Cost.nominal
              ~name_fmt:(Printf.sprintf "tree:%s:zipf-%.2f"))
          perf_thetas)
      perf_trees
  in
  (* The (strategy x capacity-model) sweep on the HTM-heaviest tree at
     mid contention: one probe per combination, so a fallback-strategy or
     capacity-model regression cannot hide behind the default cell. *)
  let sweep_grid =
    List.concat_map
      (fun strategy ->
        List.map
          (fun (_, capacity) ->
            perf_probe ~tname:"bptree-htm" ~kind:Euno_harness.Kv.Htm_bptree
              ~theta:0.8
              ~policy:(Some { Htm.default_policy with Htm.strategy })
              ~capacity
              ~name_fmt:(fun tname theta ->
                Printf.sprintf "sweep:%s:zipf-%.2f:%s:%s" tname theta
                  (Htm.strategy_name strategy)
                  capacity.Euno_sim.Cost.cm_name))
          Euno_sim.Cost.capacity_models)
      Htm.all_strategies
  in
  print_newline ();
  default_grid @ sweep_grid

(* Campaign-runner probe: end-to-end host cost of a campaign cell (world
   build, preload, run, merge) through the Pool executor's sequential
   path, over a fixed 9-cell grid.  Guards the pool plumbing and the
   domain-local state conversions (Sev, counters, collectors) against
   host-side regressions that the per-op probes amortize away.  Fixed
   scale, independent of --quick, like the other perf probes. *)
let run_campaign_probe () =
  let cells =
    List.concat_map
      (fun (_, kind) -> List.map (fun theta -> (kind, theta)) perf_thetas)
      perf_trees
  in
  let workload theta =
    {
      Euno_harness.Runner.default_workload with
      dist = Euno_workload.Dist.Zipfian theta;
      key_space = 4_096;
    }
  in
  let setup =
    {
      Euno_harness.Runner.default_setup with
      threads = 4;
      ops_per_thread = 1_000;
      seed = 7;
      check_after = false;
    }
  in
  let t0 = Unix.gettimeofday () in
  let rs =
    Euno_harness.Pool.map ~domains:1
      (fun (kind, theta) ->
        (Euno_harness.Runner.run kind (workload theta) setup)
          .Euno_harness.Runner.r_ops)
      cells
  in
  let dt = Unix.gettimeofday () -. t0 in
  ignore (List.fold_left ( + ) 0 rs);
  let v = float_of_int (List.length cells) /. dt in
  let name = "campaign:quick-grid" in
  Printf.printf "  %-44s %12.2f cells/s\n\n%!" name v;
  (name, "elision", "nominal", v)

(* ---------- figure reproduction ---------- *)

let run_figures ?domains scale =
  print_endline "== Paper reproduction: every figure of the evaluation ==";
  Printf.printf
    "(key space %d, %d ops/thread, up to %d simulated threads, seed %d)\n\n%!"
    scale.Euno_harness.Figures.key_space
    scale.Euno_harness.Figures.ops_per_thread
    scale.Euno_harness.Figures.max_threads scale.Euno_harness.Figures.seed;
  Euno_harness.Figures.all ?domains scale

(* ---------- machine-readable output ---------- *)

module Json = Euno_stats.Json
module Report = Euno_harness.Report

let micro_record (name, ns) =
  Json.Obj
    [
      ("schema_version", Json.Int Report.schema_version);
      ("record", Json.Str "micro");
      ("name", Json.Str name);
      ("ns_per_call", Json.Float ns);
    ]

let perf_record ~metric (name, strategy, capacity_model, value) =
  Euno_harness.Perf_gate.probe_to_json
    {
      Euno_harness.Perf_gate.p_name = name;
      p_strategy = strategy;
      p_capacity_model = capacity_model;
      p_metric = metric;
      p_value = value;
    }

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  let micro_only = Array.exists (( = ) "--micro-only") Sys.argv in
  let figures_only = Array.exists (( = ) "--figures-only") Sys.argv in
  let flag_value name =
    let rec find i =
      if i + 1 >= Array.length Sys.argv then None
      else if Sys.argv.(i) = name then Some Sys.argv.(i + 1)
      else find (i + 1)
    in
    find 1
  in
  let json_path =
    Option.value (flag_value "--json") ~default:"BENCH_results.json"
  in
  (* Parallelizes the deterministic figures phase only; the wall-clock
     micro/perf probes always run sequentially on the main domain. *)
  let domains =
    match flag_value "--domains" with
    | None -> None
    | Some s -> (
        match int_of_string_opt s with
        | Some d when d >= 1 -> Some d
        | _ ->
            prerr_endline "bench: --domains must be a positive integer";
            exit 2)
  in
  (* Surface a malformed EUNO_DOMAINS as a usage error up front, not an
     uncaught exception from inside the figures phase. *)
  (if domains = None then
     match Euno_harness.Pool.default_domains () with
     | _ -> ()
     | exception Invalid_argument msg ->
         prerr_endline ("bench: " ^ msg);
         exit 2);
  let scale =
    if quick then Euno_harness.Figures.quick_scale
    else Euno_harness.Figures.default_scale
  in
  let micro = if not figures_only then run_micro () else [] in
  let perf =
    if figures_only then []
    else
      List.map (perf_record ~metric:"sim_ops_per_wall_sec") (run_perf ())
      @ [
          perf_record ~metric:"campaign_cells_per_wall_sec"
            (run_campaign_probe ());
        ]
      @ List.filter_map
          (fun (n, ns) ->
            if List.mem n perf_micro_names then
              Some
                (perf_record ~metric:"ns_per_call"
                   ("micro:" ^ n, "elision", "nominal", ns))
            else None)
          micro
  in
  Report.start_collecting ();
  if not micro_only then run_figures ?domains scale;
  let records =
    List.map micro_record micro
    @ perf
    @ List.mapi
        (fun i r -> Report.result_to_json ~run:i r)
        (Report.collected ())
  in
  Report.stop_collecting ();
  Report.write_file json_path (Report.document ~experiment:"bench" records);
  Printf.printf "wrote %s (%d records, schema v%d)\n%!" json_path
    (List.length records) Report.schema_version
