#!/usr/bin/env bash
# Doc-drift gate: the README's command listings must cover what the
# binaries actually accept.  For every CLI this dumps the real --help
# output and fails if it advertises a flag (or, for euno_repro, an
# experiment name) that README.md never mentions — so a new subcommand
# or flag cannot land without its documentation.  It also diffs the
# lib/ and docs/ directory listings against docs/ARCHITECTURE.md's
# module index, so a new library or doc cannot land unindexed.
#
# Run from the repo root after `dune build @all`:
#   scripts/check_doc_drift.sh
set -u
cd "$(dirname "$0")/.."

BIN=_build/default/bin
fail=0

mention() {
  # Word-ish match: '--json' must not be satisfied by '--jsonl'.
  grep -Eq -- "$1([^a-z-]|\$)" README.md
}

check_flags() {
  local name="$1"
  shift
  local help flag
  help="$("$@" 2>/dev/null)"
  if [ -z "$help" ]; then
    echo "doc drift: could not get help output from $name" >&2
    fail=1
    return
  fi
  for flag in $(printf '%s\n' "$help" | grep -oE -- '--[a-z][a-z-]*' | sort -u); do
    case "$flag" in
    --help | --version) continue ;;
    esac
    if ! mention "$flag"; then
      echo "doc drift: $name accepts '$flag' but README.md does not document it" >&2
      fail=1
    fi
  done
}

check_flags euno_repro "$BIN/euno_repro.exe" --help=plain
check_flags euno_san "$BIN/euno_san.exe" --help
check_flags euno_check "$BIN/euno_check.exe" --help
check_flags euno_schema_check "$BIN/euno_schema_check.exe" --help
check_flags euno_perf_check "$BIN/euno_perf_check.exe" --help
check_flags euno_lint "$BIN/euno_lint.exe" --help

# Every experiment euno_repro's EXPERIMENT enum accepts must appear in the
# README synopsis.  The enum is printed by the invalid-value error, one
# quoted name each.
experiments="$("$BIN/euno_repro.exe" __nosuch__ 2>&1 | grep -oE "'[a-z0-9-]+'" | tr -d "'" | sort -u)"
if [ -z "$experiments" ]; then
  echo "doc drift: could not extract euno_repro's experiment list" >&2
  fail=1
fi
for exp in $experiments; do
  case "$exp" in
  __nosuch__) continue ;;
  esac
  if ! grep -Eq "(^|[^a-z0-9-])$exp([^a-z0-9-]|\$)" README.md; then
    echo "doc drift: euno_repro experiment '$exp' is not documented in README.md" >&2
    fail=1
  fi
done

# Module-index drift: docs/ARCHITECTURE.md carries a per-library module
# index ('### lib/<name> — ...' sections).  A new lib/ directory must get
# its section, and every docs/*.md file must be reachable from the
# architecture overview, or the doc tree silently forks from the code.
for dir in lib/*/; do
  name="$(basename "$dir")"
  if ! grep -Eq "^### lib/$name( |$)" docs/ARCHITECTURE.md; then
    echo "doc drift: lib/$name has no '### lib/$name' section in docs/ARCHITECTURE.md" >&2
    fail=1
  fi
done
for doc in docs/*.md; do
  base="$(basename "$doc")"
  case "$base" in
  ARCHITECTURE.md) continue ;;
  esac
  if ! grep -q "$base" docs/ARCHITECTURE.md; then
    echo "doc drift: $doc is never referenced from docs/ARCHITECTURE.md" >&2
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "doc-drift gate FAILED: update README.md's command listings" >&2
  exit 1
fi
echo "doc-drift gate passed: README.md, ARCHITECTURE.md module index, and docs/ are in sync"
