(* EunoLint CLI: static analysis of the repo's concurrency/determinism
   conventions (see docs/LINT.md for the rule catalog).

     euno_lint lib/ bin/ test/                 # human-readable findings
     euno_lint --json lint.json lib/ bin/      # + schema-v1 "lint" document
     euno_lint --list-rules                    # rule-id vocabulary

   Directories expand recursively to .ml files (skipping _build, .git and
   lint_fixtures); cross-file rules (counter ownership, schema drift) see
   the whole set at once, so lint the tree in one invocation.  Exits 1 on
   any unsuppressed finding, 2 on a parse/IO error. *)

module Lint = Eunolint.Lint
module Rules = Eunolint.Rules
module Report = Euno_harness.Report

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt

let json_of_outcome (o : Lint.outcome) =
  let active =
    List.map
      (fun (f : Rules.finding) ->
        Report.lint_to_json ~file:f.file ~line:f.line ~col:f.col ~rule:f.rule
          ~msg:f.msg ())
      o.Lint.findings
  in
  let muted =
    List.map
      (fun (s : Lint.suppressed) ->
        let f = s.Lint.s_finding in
        Report.lint_to_json ~file:f.file ~line:f.line ~col:f.col ~rule:f.rule
          ~msg:f.msg ~reason:s.Lint.s_reason ())
      o.Lint.suppressed
  in
  Report.document ~experiment:"lint" (active @ muted)

let () =
  let json_out = ref "" in
  let quiet = ref false in
  let list_rules = ref false in
  let paths = ref [] in
  Arg.parse
    [
      ( "--json",
        Arg.Set_string json_out,
        "FILE write all findings (active + suppressed) as a schema-v1 \
         \"lint\" document" );
      ("--quiet", Arg.Set quiet, " print only the summary line");
      ("--list-rules", Arg.Set list_rules, " print the rule-ids and exit");
    ]
    (fun p -> paths := p :: !paths)
    "euno_lint [--json FILE] [--quiet] [--list-rules] PATH...";
  if !list_rules then begin
    List.iter print_endline Lint.rule_names;
    exit 0
  end;
  let paths = List.rev !paths in
  if paths = [] then
    fail "usage: euno_lint [--json FILE] [--quiet] [--list-rules] PATH...";
  match Lint.run_paths paths with
  | Error e -> fail "euno-lint: %s" e
  | Ok o ->
      if not !quiet then
        List.iter
          (fun (f : Rules.finding) ->
            Printf.printf "%s:%d:%d: [%s] %s\n" f.file f.line f.col f.rule
              f.msg)
          o.Lint.findings;
      if !json_out <> "" then
        Report.write_file !json_out (json_of_outcome o);
      Printf.printf "euno-lint: %d finding(s), %d suppressed, %d file(s)\n"
        (List.length o.Lint.findings)
        (List.length o.Lint.suppressed)
        o.Lint.files_scanned;
      if o.Lint.findings <> [] then exit 1
