(* Command-line entry point: regenerate any figure of the paper.

     euno_repro fig8                    # paper-scale defaults
     euno_repro fig10 --quick          # smoke-test scale
     euno_repro all --keys 15 --ops 5000 --threads 20 --seed 7
*)

let () = Printexc.record_backtrace true

open Cmdliner
module Figures = Euno_harness.Figures
module Report = Euno_harness.Report
module Htm = Euno_htm.Htm
module Cost = Euno_sim.Cost

let experiment =
  (* "chaos", "san", "check" and "crash" are not figures: the
     fault-injection campaign, the sanitizer sweep, the
     linearizability-checking campaign and the crash-recovery campaign
     are handled by their own drivers below. *)
  let names =
    List.map fst Figures.by_name @ [ "chaos"; "san"; "check"; "crash" ]
  in
  let doc =
    Printf.sprintf "Experiment to run: one of %s." (String.concat ", " names)
  in
  Arg.(
    required
    & pos 0 (some (enum (List.map (fun n -> (n, n)) names))) None
    & info [] ~docv:"EXPERIMENT" ~doc)

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"Small smoke-test scale.")

let keys_log2 =
  Arg.(
    value
    & opt (some int) None
    & info [ "keys" ] ~docv:"LOG2"
        ~doc:"Key-space size as a power of two (default 16, i.e. 64Ki keys).")

let ops =
  Arg.(
    value
    & opt (some int) None
    & info [ "ops" ] ~docv:"N" ~doc:"Operations per simulated thread.")

let max_threads =
  Arg.(
    value
    & opt (some int) None
    & info [ "threads" ] ~docv:"N" ~doc:"Cap on simulated thread counts (max 20).")

let seed =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Simulation seed.")

let charts =
  Arg.(
    value & flag
    & info [ "charts" ] ~doc:"Render ASCII charts after the tables.")

let csv =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"DIR"
        ~doc:"Also write every table to DIR/<name>.csv.")

let json =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"PATH"
        ~doc:
          "Write every run's result as a schema-versioned JSON document to \
           $(docv).")

let snapshots =
  Arg.(
    value
    & opt (some string) None
    & info [ "snapshots" ] ~docv:"PATH"
        ~doc:
          "Write windowed counter time series (one JSON object per sampling \
           window per run) to $(docv) as JSONL.  Implies periodic sampling; \
           see $(b,--window).")

let window =
  Arg.(
    value
    & opt (some int) None
    & info [ "window" ] ~docv:"CYCLES"
        ~doc:
          "Counter sampling window in simulated cycles (default 2000 when \
           $(b,--snapshots) or $(b,--json) is given).")

let strategy =
  let strat_conv =
    Arg.enum (List.map (fun s -> (Htm.strategy_name s, s)) Htm.all_strategies)
  in
  let doc =
    Printf.sprintf
      "HTM fallback strategy for every run: one of %s.  Default: the trees' \
       own elision policy.  For $(b,san) and $(b,check) this restricts the \
       sweep to the named strategy instead of covering all of them."
      (String.concat ", " Htm.strategy_names)
  in
  Arg.(value & opt (some strat_conv) None & info [ "strategy" ] ~docv:"STRATEGY" ~doc)

let capacity =
  let cap_conv = Arg.enum Cost.capacity_models in
  let doc =
    Printf.sprintf
      "Capacity/conflict model of the simulated RTM: one of %s (default \
       nominal).  For $(b,san) this restricts the sweep to the named model."
      (String.concat ", " Cost.capacity_model_names)
  in
  Arg.(value & opt (some cap_conv) None & info [ "capacity" ] ~docv:"MODEL" ~doc)

let domains =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Fan independent campaign cells across $(docv) worker domains.  \
           Output is byte-identical to the sequential run at any value.  \
           Default: the EUNO_DOMAINS environment variable, else 1 \
           (sequential).")

let mutations =
  Arg.(
    value & flag
    & info [ "mutations" ]
        ~doc:
          "For $(b,crash): validate the recovery checker against the three \
           seeded recovery mutants instead of running the tree campaign.  \
           Non-zero exit unless every mutant is caught with the expected \
           finding kind and the unmutated system is clean on the same cell.")

(* Crash-recovery campaign: for each tree, calibrate a fault-free
   horizon, kill the machine mid-run, then restore the latest
   epoch-consistent snapshot, replay the durable log suffix and re-run
   the lost suffix; the recovery checker validates the result.
   Deterministic per (plan, seed).  Non-zero exit on any finding. *)
let run_crash quick keys_log2 ops max_threads seed json mutations domains =
  let module Dura_run = Euno_harness.Dura_run in
  if mutations then begin
    print_endline
      "Recovery-mutation validation: skip-fallback-log, skip-lock-reset, \
       snapshot-while-pinned";
    let outs = Dura_run.run_mutants ~base_seed:seed () in
    Dura_run.print_mutants outs;
    if
      not
        (List.for_all
           (fun o -> o.Dura_run.m_caught && o.Dura_run.m_clean_on_fixed)
           outs)
    then exit 1
  end
  else begin
    let base =
      if quick then Dura_run.quick_config else Dura_run.default_config
    in
    let cfg =
      {
        base with
        Dura_run.seed;
        key_space =
          (match keys_log2 with
          | Some k -> 1 lsl k
          | None -> base.Dura_run.key_space);
        ops_per_thread =
          Option.value ops ~default:base.Dura_run.ops_per_thread;
        threads =
          min 20 (Option.value max_threads ~default:base.Dura_run.threads);
      }
    in
    print_endline
      "Crash campaign: epoch-consistent snapshots + committed-op log; power \
       failure mid-run, then restore / replay / re-run and check";
    let cells = Dura_run.run_all ~domains cfg in
    Dura_run.print_cells cells;
    (match json with
    | Some path ->
        Report.write_file path
          (Report.document ~experiment:"crash"
             (List.map (Dura_run.cell_to_json ~experiment:"crash") cells));
        Printf.printf "wrote %s\n%!" path
    | None -> ());
    if List.exists (fun c -> c.Dura_run.d_findings <> []) cells then exit 1
  end

(* Fault-injection campaign over the four trees: calibrate, inject,
   validate, report phase throughputs and recovery time.  Deterministic
   for a fixed seed, so two runs of the same command produce identical
   JSON. *)
let run_chaos quick keys_log2 ops max_threads seed json domains =
  let module Chaos = Euno_harness.Chaos in
  let base = if quick then Chaos.quick_config else Chaos.default_config in
  let cfg =
    {
      base with
      Chaos.seed;
      key_space =
        (match keys_log2 with
        | Some k -> 1 lsl k
        | None -> base.Chaos.key_space);
      ops_per_thread = Option.value ops ~default:base.Chaos.ops_per_thread;
      threads = min 20 (Option.value max_threads ~default:base.Chaos.threads);
    }
  in
  print_endline
    "Chaos campaign: spurious storm, capacity squeeze, preemption, \
     lock-holder stall, clock skew, alloc pressure";
  let outs = Chaos.run_all ~domains cfg in
  Chaos.print_outcomes outs;
  match json with
  | Some path ->
      Report.write_file path
        (Report.document ~experiment:"chaos"
           (List.map (Chaos.outcome_to_json ~experiment:"chaos") outs));
      Printf.printf "wrote %s\n%!" path
  | None -> ()

(* EunoSan lint sweep: every tree under zipf 0.2/0.8/0.99 plus the chaos
   campaign, sanitizer armed.  Non-zero exit when anything is flagged. *)
let run_san quick seed json strategy capacity domains =
  let module San_run = Euno_harness.San_run in
  print_endline
    "EunoSan sweep: race / lockset / atomicity / txn-hygiene lint over all \
     trees";
  let outs =
    San_run.run ~quick ~seed
      ?strategies:(Option.map (fun s -> [ s ]) strategy)
      ?capacities:(Option.map (fun c -> [ c ]) capacity)
      ~domains ()
  in
  San_run.print stdout outs;
  (match json with
  | Some path ->
      Report.write_file path
        (Report.document ~experiment:"san"
           (San_run.to_records ~experiment:"san" outs));
      Printf.printf "wrote %s\n%!" path
  | None -> ());
  if not (San_run.clean outs) then exit 1

(* EunoCheck sweep: adversarial schedule exploration plus linearizability
   checking over every tree.  Non-zero exit on any non-linearizable
   history — which here would be a real tree (or checker) bug, since the
   Testonly mutations stay off. *)
let run_check quick seed json strategy domains =
  let module Check_run = Euno_harness.Check_run in
  print_endline
    "EunoCheck sweep: adversarial schedule exploration + linearizability \
     checking over all trees";
  let outs =
    Check_run.sweep ~quick ~seed
      ?strategies:(Option.map (fun s -> [ s ]) strategy)
      ~domains ()
  in
  Check_run.print stdout outs;
  (match json with
  | Some path ->
      Report.write_file path
        (Report.document ~experiment:"check"
           (Check_run.to_records ~experiment:"check" outs));
      Printf.printf "wrote %s\n%!" path
  | None -> ());
  if not (Check_run.clean outs) then exit 1

let run_experiment name quick keys_log2 ops max_threads seed charts csv json
    snapshots window strategy capacity mutations domains =
  (* Explicit --domains wins over the EUNO_DOMAINS environment knob. *)
  let domains =
    match domains with
    | Some d ->
        if d < 1 then begin
          prerr_endline "euno_repro: --domains must be at least 1";
          exit 2
        end;
        d
    | None -> (
        match Euno_harness.Pool.default_domains () with
        | d -> d
        | exception Invalid_argument msg ->
            prerr_endline ("euno_repro: " ^ msg);
            exit 2)
  in
  if name = "san" then run_san quick seed json strategy capacity domains
  else if name = "check" then run_check quick seed json strategy domains
  else if name = "chaos" then
    run_chaos quick keys_log2 ops max_threads seed json domains
  else if name = "crash" then
    run_crash quick keys_log2 ops max_threads seed json mutations domains
  else begin
  (match csv with
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      Figures.csv_dir := Some dir
  | None -> ());
  (match window with
  | Some w when w < 1 ->
      prerr_endline "euno_repro: --window must be at least 1 cycle";
      exit 2
  | _ -> ());
  let telemetry = json <> None || snapshots <> None in
  let base = if quick then Figures.quick_scale else Figures.default_scale in
  let scale =
    {
      Figures.key_space =
        (match keys_log2 with
        | Some k -> 1 lsl k
        | None -> base.Figures.key_space);
      ops_per_thread = Option.value ops ~default:base.Figures.ops_per_thread;
      max_threads =
        min 20 (Option.value max_threads ~default:base.Figures.max_threads);
      seed;
      charts;
      snapshot_window =
        (match window with
        | Some w -> Some w
        | None -> if telemetry then Some 2000 else None);
      strategy;
      capacity;
    }
  in
  if telemetry then Report.start_collecting ();
  let f = List.assoc name Figures.by_name in
  f ~domains scale;
  if telemetry then begin
    (* strategy-sweep's own per-cell "sweep" records are the document the
       campaign is about; the generic per-run "result" records would bury
       them, so the sweep document replaces them (snapshots still flow). *)
    if name = "strategy-sweep" then begin
      Report.flush_collected ~experiment:name ?snapshots ();
      match json with
      | Some path ->
          Report.write_file path
            (Report.document ~experiment:name (Figures.sweep_records ()))
      | None -> ()
    end
    else Report.flush_collected ~experiment:name ?json ?snapshots ();
    Report.stop_collecting ();
    (match json with
    | Some path -> Printf.printf "wrote %s\n%!" path
    | None -> ());
    match snapshots with
    | Some path -> Printf.printf "wrote %s\n%!" path
    | None -> ()
  end
  end

let cmd =
  let doc =
    "Reproduce the evaluation of 'Eunomia: Scaling Concurrent Search Trees \
     under Contention Using HTM' (PPoPP'17) on a simulated RTM multicore."
  in
  Cmd.v
    (Cmd.info "euno_repro" ~version:"1.0.0" ~doc)
    Term.(
      const run_experiment $ experiment $ quick $ keys_log2 $ ops $ max_threads
      $ seed $ charts $ csv $ json $ snapshots $ window $ strategy $ capacity
      $ mutations $ domains)

let () = exit (Cmd.eval cmd)
