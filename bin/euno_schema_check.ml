(* CI schema gate: parse telemetry output back and validate it against the
   current schema version.

     euno_schema_check out.json            # document
     euno_schema_check --jsonl out.jsonl   # one window/record object per line

   Exits non-zero on the first parse error or schema violation, so the CI
   smoke run catches a renamed or dropped field before a plotting script
   does. *)

module Json = Euno_stats.Json
module Report = Euno_harness.Report

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let read_file path =
  let ic = try open_in_bin path with Sys_error e -> fail "%s" e in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let check_document path =
  match Json.of_string (read_file path) with
  | Error e -> fail "%s: parse error: %s" path e
  | Ok json -> (
      match Report.validate_document json with
      | Ok () -> ()
      | Error e -> fail "%s: schema error: %s" path e)

let check_jsonl path =
  let lines =
    String.split_on_char '\n' (read_file path)
    |> List.filteri (fun _ l -> String.trim l <> "")
  in
  if lines = [] then fail "%s: no records" path;
  List.iteri
    (fun i line ->
      match Json.of_string line with
      | Error e -> fail "%s:%d: parse error: %s" path (i + 1) e
      | Ok json -> (
          match Report.validate_record json with
          | Ok () -> ()
          | Error e -> fail "%s:%d: schema error: %s" path (i + 1) e))
    lines

let () =
  let jsonl = ref false in
  let paths = ref [] in
  Arg.parse
    [ ("--jsonl", Arg.Set jsonl, " validate as JSONL (one record per line)") ]
    (fun p -> paths := p :: !paths)
    "euno_schema_check [--jsonl] FILE...";
  let paths = List.rev !paths in
  if paths = [] then fail "usage: euno_schema_check [--jsonl] FILE...";
  List.iter (if !jsonl then check_jsonl else check_document) paths;
  Printf.printf "%d file(s) valid (schema v%d)\n" (List.length paths)
    Report.schema_version
