(* Standalone EunoCheck driver for CI and local hunts.

     euno_check                     # clean sweep, all trees (exit 1 on bug)
     euno_check --quick             # CI smoke scale
     euno_check --mutations         # prove the checker catches the seeded
                                    # Testonly bugs (exit 1 if one hides)
     euno_check --repro 'tree=...'  # replay a minimized counterexample
     euno_check --json out.json     # also write schema-v1 "check" records

   The clean sweep exits 0 iff no tree produced a non-linearizable
   history; the mutation campaign inverts that — every registered
   mutation must be caught within the budget. *)

let () = Printexc.record_backtrace true

module Check_run = Euno_harness.Check_run
module History = Euno_harness.History
module Report = Euno_harness.Report
module Htm = Euno_htm.Htm

let write_json path outcomes =
  Report.write_file path
    (Report.document ~experiment:"check"
       (Check_run.to_records ~experiment:"check" outcomes));
  Printf.printf "wrote %s\n%!" path

let run_repro descriptor =
  let config, policy = Check_run.repro_of_string descriptor in
  Printf.printf "replaying %s\n%!" (Check_run.config_to_string config);
  let x = Check_run.execute config ~policy in
  match x.Check_run.x_verdict with
  | History.Illegal core ->
      Printf.printf "REPRODUCED: non-linearizable core\n%s\n"
        (History.to_string core);
      exit 0
  | History.Linearizable _ ->
      Printf.printf "did not reproduce: %d events linearizable\n"
        x.Check_run.x_events;
      exit 1

let run_mutations ~budget ~seed ~json ~domains =
  print_endline
    "EunoCheck mutation campaign: every seeded Testonly bug must surface \
     as a non-linearizable history";
  let outs = Check_run.hunt_mutations ~budget ~seed ?domains () in
  Check_run.print stdout outs;
  Option.iter (fun p -> write_json p outs) json;
  let missed =
    List.filter (fun o -> o.Check_run.o_violation = None) outs
  in
  List.iter
    (fun o ->
      Printf.printf "MISSED: mutation %s survived %d runs undetected\n"
        o.Check_run.o_config.Check_run.mutation o.Check_run.o_runs)
    missed;
  exit (if missed = [] then 0 else 1)

let run_sweep ~quick ~seed ~json ~strategies ~domains =
  print_endline
    "EunoCheck sweep: adversarial schedule exploration + linearizability \
     checking over all trees";
  let outs = Check_run.sweep ~quick ~seed ?strategies ?domains () in
  Check_run.print stdout outs;
  Option.iter (fun p -> write_json p outs) json;
  exit (if Check_run.clean outs then 0 else 1)

let () =
  let quick = ref false in
  let mutations = ref false in
  let budget = ref 64 in
  let seed = ref 42 in
  let json = ref None in
  let repro = ref None in
  let strategies = ref None in
  let domains = ref None in
  let usage =
    "euno_check [--quick] [--mutations] [--budget N] [--seed N] [--json \
     PATH] [--repro DESCRIPTOR] [--strategy NAME] [--domains N]"
  in
  Arg.parse
    [
      ("--quick", Arg.Set quick, " Smoke-test scale (CI).");
      ( "--domains",
        Arg.Int
          (fun d ->
            if d < 1 then raise (Arg.Bad "--domains must be at least 1");
            domains := Some d),
        "N Fan sweep/hunt cells across N worker domains (byte-identical \
         output; default EUNO_DOMAINS, else 1)." );
      ( "--mutations",
        Arg.Set mutations,
        " Hunt the seeded Testonly bugs instead of sweeping clean trees." );
      ( "--budget",
        Arg.Set_int budget,
        "N (policy, seed) schedules per mutation hunt (default 64)." );
      ("--seed", Arg.Set_int seed, "N Base campaign seed (default 42).");
      ( "--json",
        Arg.String (fun p -> json := Some p),
        "PATH Write schema-versioned check records to PATH." );
      ( "--repro",
        Arg.String (fun s -> repro := Some s),
        "DESCRIPTOR Replay one counterexample descriptor and exit 0 iff it \
         reproduces." );
      ( "--strategy",
        Arg.String
          (fun n ->
            if n = "all" then strategies := None
            else
              match Htm.strategy_of_name n with
              | Some s -> strategies := Some [ s ]
              | None ->
                  raise
                    (Arg.Bad
                       (Printf.sprintf "unknown strategy %S (one of %s, all)" n
                          (String.concat ", " Htm.strategy_names)))),
        Printf.sprintf
          "NAME Restrict the clean sweep to one fallback strategy: %s or all \
           (default all).  Mutation hunts ignore this: each registered bug \
           is hunted under the strategy it lives in."
          (String.concat ", " Htm.strategy_names) );
    ]
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    usage;
  (* Surface a malformed EUNO_DOMAINS as a usage error up front, not an
     uncaught exception from inside the sweep. *)
  (if !domains = None then
     match Euno_harness.Pool.default_domains () with
     | _ -> ()
     | exception Invalid_argument msg ->
         prerr_endline ("euno_check: " ^ msg);
         exit 2);
  match !repro with
  | Some descriptor -> run_repro descriptor
  | None ->
      if !mutations then
        run_mutations ~budget:!budget ~seed:!seed ~json:!json
          ~domains:!domains
      else
        run_sweep ~quick:!quick ~seed:!seed ~json:!json
          ~strategies:!strategies ~domains:!domains
