(* CI perf gate: compare the perf probes of a fresh bench run against the
   committed baseline.

     euno_perf_check                        # BENCH_results.json vs bench/baseline.json
     euno_perf_check --band 3 --current out.json --baseline bench/baseline.json
     euno_perf_check --write-baseline       # re-baseline from --current

   A probe fails when its degradation factor (direction-normalized, see
   Euno_harness.Perf_gate) exceeds the band; any failure exits non-zero.
   [--write-baseline] instead rewrites the baseline file from the current
   run's probes — commit the result together with the change that moved
   the numbers (see docs/EXPERIMENTS.md for when that is legitimate). *)

module Json = Euno_stats.Json
module Gate = Euno_harness.Perf_gate
module Report = Euno_harness.Report

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let read_probes path =
  let contents =
    let ic = try open_in_bin path with Sys_error e -> fail "%s" e in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  match Json.of_string contents with
  | Error e -> fail "%s: parse error: %s" path e
  | Ok json -> (
      match Gate.probes_of_document json with
      | Error e -> fail "%s: %s" path e
      | Ok [] -> fail "%s: no perf records" path
      | Ok probes -> probes)

let () =
  let current = ref "BENCH_results.json" in
  let baseline = ref "bench/baseline.json" in
  let band = ref 1.5 in
  let write_baseline = ref false in
  Arg.parse
    [
      ("--current", Arg.Set_string current, "FILE bench output to check (default BENCH_results.json)");
      ("--baseline", Arg.Set_string baseline, "FILE committed baseline (default bench/baseline.json)");
      ("--band", Arg.Set_float band, "N allowed degradation factor (default 1.5)");
      ("--write-baseline", Arg.Set write_baseline, " rewrite the baseline from --current and exit");
    ]
    (fun a -> fail "unexpected argument '%s'" a)
    "euno_perf_check [--band N] [--current FILE] [--baseline FILE] [--write-baseline]";
  let probes = read_probes !current in
  if !write_baseline then begin
    Report.write_file !baseline (Gate.baseline_document probes);
    Printf.printf "wrote %s (%d probes)\n" !baseline (List.length probes)
  end
  else begin
    let comparisons =
      Gate.compare_probes ~band:!band ~baseline:(read_probes !baseline)
        ~current:probes
    in
    Printf.printf "perf gate: band %.2fx, %s vs %s\n" !band !current !baseline;
    List.iter
      (fun c ->
        let show = function Some v -> Printf.sprintf "%14.1f" v | None -> "             -" in
        Printf.printf "  %-4s %-44s %s -> %s%s\n"
          (if c.Gate.c_ok then "ok" else "FAIL")
          c.Gate.c_name
          (show c.Gate.c_baseline)
          (show c.Gate.c_current)
          (match c.Gate.c_factor with
          | Some f -> Printf.sprintf "  (x%.2f)" f
          | None -> if c.Gate.c_baseline = None then "  (new probe)" else "  (missing)"))
      comparisons;
    if not (Gate.all_ok comparisons) then begin
      prerr_endline
        "perf gate FAILED: a probe degraded beyond the tolerance band \
         (re-baseline only with a justified bench/baseline.json update)";
      exit 1
    end;
    print_endline "perf gate passed"
  end
