(* Standalone EunoSan driver for CI and local lint runs.

     euno_san                  # full-scale sweep, all trees
     euno_san --quick          # CI smoke scale
     euno_san --json out.json  # also write schema-v1 "san" records

   Exit status 0 iff the sweep reports zero findings. *)

let () = Printexc.record_backtrace true

module San_run = Euno_harness.San_run
module Report = Euno_harness.Report
module Htm = Euno_htm.Htm
module Cost = Euno_sim.Cost

let () =
  let quick = ref false in
  let seed = ref 42 in
  let json = ref None in
  let strategies = ref Htm.all_strategies in
  let capacities = ref [ Cost.nominal ] in
  let domains = ref None in
  let usage =
    "euno_san [--quick] [--seed N] [--json PATH] [--strategy NAME] \
     [--capacity NAME] [--domains N]"
  in
  Arg.parse
    [
      ("--quick", Arg.Set quick, " Smoke-test scale (CI).");
      ("--seed", Arg.Set_int seed, "N Simulation seed (default 42).");
      ( "--domains",
        Arg.Int
          (fun d ->
            if d < 1 then raise (Arg.Bad "--domains must be at least 1");
            domains := Some d),
        "N Fan sweep cells across N worker domains (byte-identical output; \
         default EUNO_DOMAINS, else 1)." );
      ( "--json",
        Arg.String (fun p -> json := Some p),
        "PATH Write schema-versioned san records to PATH." );
      ( "--strategy",
        Arg.String
          (fun n ->
            if n = "all" then strategies := Htm.all_strategies
            else
              match Htm.strategy_of_name n with
              | Some s -> strategies := [ s ]
              | None ->
                  raise
                    (Arg.Bad
                       (Printf.sprintf "unknown strategy %S (one of %s, all)" n
                          (String.concat ", " Htm.strategy_names)))),
        Printf.sprintf
          "NAME Fallback strategy to sweep: %s or all (default all)."
          (String.concat ", " Htm.strategy_names) );
      ( "--capacity",
        Arg.String
          (fun n ->
            if n = "all" then capacities := List.map snd Cost.capacity_models
            else
              match Cost.capacity_model_of_name n with
              | Some m -> capacities := [ m ]
              | None ->
                  raise
                    (Arg.Bad
                       (Printf.sprintf
                          "unknown capacity model %S (one of %s, all)" n
                          (String.concat ", " Cost.capacity_model_names)))),
        Printf.sprintf
          "NAME Capacity/conflict model to sweep: %s or all (default nominal)."
          (String.concat ", " Cost.capacity_model_names) );
    ]
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    usage;
  (* Surface a malformed EUNO_DOMAINS as a usage error up front, not an
     uncaught exception from inside the sweep. *)
  (if !domains = None then
     match Euno_harness.Pool.default_domains () with
     | _ -> ()
     | exception Invalid_argument msg ->
         prerr_endline ("euno_san: " ^ msg);
         exit 2);
  print_endline
    "EunoSan sweep: race / lockset / atomicity / txn-hygiene lint over all \
     trees";
  let outs =
    San_run.run ~quick:!quick ~seed:!seed ~strategies:!strategies
      ~capacities:!capacities ?domains:!domains ()
  in
  San_run.print stdout outs;
  (match !json with
  | Some path ->
      Report.write_file path
        (Report.document ~experiment:"san"
           (San_run.to_records ~experiment:"san" outs));
      Printf.printf "wrote %s\n%!" path
  | None -> ());
  exit (if San_run.clean outs then 0 else 1)
