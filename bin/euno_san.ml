(* Standalone EunoSan driver for CI and local lint runs.

     euno_san                  # full-scale sweep, all trees
     euno_san --quick          # CI smoke scale
     euno_san --json out.json  # also write schema-v1 "san" records

   Exit status 0 iff the sweep reports zero findings. *)

let () = Printexc.record_backtrace true

module San_run = Euno_harness.San_run
module Report = Euno_harness.Report

let () =
  let quick = ref false in
  let seed = ref 42 in
  let json = ref None in
  let usage = "euno_san [--quick] [--seed N] [--json PATH]" in
  Arg.parse
    [
      ("--quick", Arg.Set quick, " Smoke-test scale (CI).");
      ("--seed", Arg.Set_int seed, "N Simulation seed (default 42).");
      ( "--json",
        Arg.String (fun p -> json := Some p),
        "PATH Write schema-versioned san records to PATH." );
    ]
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    usage;
  print_endline
    "EunoSan sweep: race / lockset / atomicity / txn-hygiene lint over all \
     trees";
  let outs = San_run.run ~quick:!quick ~seed:!seed () in
  San_run.print stdout outs;
  (match !json with
  | Some path ->
      Report.write_file path
        (Report.document ~experiment:"san"
           (San_run.to_records ~experiment:"san" outs));
      Printf.printf "wrote %s\n%!" path
  | None -> ());
  exit (if San_run.clean outs then 0 else 1)
