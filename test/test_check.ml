(* EunoCheck tests: exploration-policy determinism and program-order
   preservation, the campaign's mutation catching / counterexample
   shrinking / deterministic repro, the clean sweep of the unmutated
   trees, and a differential oracle of all four trees against a host
   map. *)

open Util
module Explore = Euno_sim.Explore
module Trace = Euno_sim.Trace
module Sev = Euno_sim.Sev
module Linemap = Euno_mem.Linemap
module Json = Euno_stats.Json
module Check_run = Euno_harness.Check_run
module History = Euno_harness.History
module Kv = Euno_harness.Kv
module Dist = Euno_workload.Dist
module Opgen = Euno_workload.Opgen
module IntMap = Map.Make (Int)

(* ---------- policy descriptors ---------- *)

let test_spec_roundtrip () =
  List.iter
    (fun spec ->
      let s = Explore.spec_to_string spec in
      if Explore.spec_of_string s <> spec then
        Alcotest.failf "spec does not round-trip: %s" s)
    [
      Explore.Min_clock;
      Explore.Random_walk { per_1024 = 20; span = 80 };
      Explore.Pct { depth = 3; span = 200; horizon = 3000 };
      Explore.Targeted
        { per_1024 = 700; span = 400; points = [ Explore.Lock_acquire ] };
      Explore.Targeted
        { per_1024 = 400; span = 150; points = Explore.sync_points };
      Explore.Replay [];
      Explore.Replay
        [
          { Explore.p_tid = 2; p_at = 11; p_point = Explore.Xabort; p_span = 23 };
          { Explore.p_tid = 0; p_at = 4; p_point = Explore.Step; p_span = 7 };
        ];
    ]

(* ---------- exploration semantics on the machine ---------- *)

(* A contended tree workload with the full trace captured as JSON lines
   (clocks included), for byte-identical comparisons. *)
let traced_tree_run ?policy ~seed () =
  let w = fresh_world () in
  let kv =
    run_one w (fun () ->
        let kv = Kv.build Kv.Htm_bptree ~fanout:8 ~map:w.map in
        for k = 0 to 15 do
          kv.Kv.put (k * 2) k
        done;
        kv)
  in
  let m =
    Machine.create ~threads:4 ~seed ~cost:Cost.default ~mem:w.mem ~map:w.map
      ~alloc:w.alloc
  in
  (match policy with
  | None -> ()
  | Some spec ->
      Machine.set_explorer m (Some (Explore.hook (Explore.create ~seed spec))));
  let trace = ref [] in
  Machine.set_tracer m
    (Some (fun e -> trace := Json.to_string (Trace.event_to_json e) :: !trace));
  Machine.run m (fun _tid ->
      for _ = 1 to 20 do
        let k = Api.rand 32 in
        let c = Api.rand 100 in
        Api.op_key k;
        if c < 50 then ignore (kv.Kv.get k)
        else if c < 90 then kv.Kv.put k (c + k)
        else ignore (kv.Kv.delete k);
        Api.op_done ()
      done);
  List.rev !trace

(* Installing the Min_clock policy must be observationally identical to
   running with no explorer at all: the exploration scheduler's pick
   order, clock handling and sampling all have to agree with the default
   path.  This is the guard that keeps golden traces byte-identical. *)
let test_min_clock_parity () =
  let a = traced_tree_run ~seed:42 () in
  let b = traced_tree_run ~policy:Explore.Min_clock ~seed:42 () in
  check_int "min-clock parity: line count" (List.length a) (List.length b);
  List.iteri
    (fun i (x, y) ->
      if x <> y then
        Alcotest.failf "min-clock parity: divergence at event %d:\n  %s\n  %s"
          (i + 1) x y)
    (List.combine a b)

(* Conflict-free workload on per-thread scratch lines: with no shared
   state, a thread's own event sequence cannot legitimately depend on the
   schedule, so it must survive any exploration policy unchanged. *)
let disjoint_trace ?explorer ~seed () =
  let w = fresh_world () in
  let base =
    run_one w (fun () -> Api.alloc ~kind:Linemap.Scratch ~words:64)
  in
  let m =
    Machine.create ~threads:4 ~seed ~cost:Cost.default ~mem:w.mem ~map:w.map
      ~alloc:w.alloc
  in
  (match explorer with
  | None -> ()
  | Some e -> Machine.set_explorer m (Some (Explore.hook e)));
  let trace = ref [] in
  Machine.set_tracer m (Some (fun e -> trace := e :: !trace));
  Machine.run m (fun tid ->
      let mine = base + (tid * 16) in
      for round = 1 to 10 do
        Api.op_key round;
        Api.write mine round;
        ignore (Api.read mine);
        (try
           Api.xbegin ();
           Api.write (mine + 2) round;
           ignore (Api.read (mine + 3));
           Api.xend ()
         with Euno_sim.Eff.Txn_abort _ -> ());
        Api.work (5 + tid);
        Api.op_done ()
      done);
  List.rev !trace

(* Clock-insensitive per-event tag: exploration legitimately shifts
   clocks (a parked thread is bumped forward on resume), but never what a
   thread does. *)
let tag = function
  | Trace.Xbegin { tid; _ } -> (tid, "xbegin")
  | Trace.Commit { tid; reads; writes; _ } ->
      (tid, Printf.sprintf "commit:%d:%d" reads writes)
  | Trace.Aborted { tid; _ } -> (tid, "abort")
  | Trace.Conflict { attacker; victim; line; _ } ->
      (attacker, Printf.sprintf "conflict:%d:%d" victim line)
  | Trace.Op_done { tid; key; _ } -> (tid, Printf.sprintf "op:%d" key)
  | Trace.Injected { tid; fault; _ } -> (tid, "inj:" ^ fault)

let project tid evs =
  List.filter_map
    (fun e ->
      let t, s = tag e in
      if t = tid && not (String.length s >= 16 && String.sub s 0 16 = "inj:explore-park")
      then Some s
      else None)
    evs

let test_program_order_preserved () =
  let seed = 11 in
  let base = disjoint_trace ~seed () in
  let e =
    Explore.create ~seed (Explore.Random_walk { per_1024 = 300; span = 40 })
  in
  let explored = disjoint_trace ~explorer:e ~seed () in
  check_bool "the walk actually preempted" true (Explore.fired e <> []);
  for tid = 0 to 3 do
    let b = project tid base and x = project tid explored in
    if b <> x then
      Alcotest.failf
        "tid %d: program order changed under exploration:\n  base:     %s\n  explored: %s"
        tid (String.concat " " b) (String.concat " " x)
  done

(* Same (policy, seed) pair twice -> bit-identical Sev event stream: the
   exploration schedule is a pure function of its inputs, with no host
   entropy.  The Sev stream sees every access and sync event, so equality
   here pins the whole interleaving. *)
let sev_stream spec ~seed =
  let w = fresh_world () in
  let kv = run_one w (fun () -> Kv.build Kv.Htm_bptree ~fanout:8 ~map:w.map) in
  let m =
    Machine.create ~threads:4 ~seed ~cost:Cost.default ~mem:w.mem ~map:w.map
      ~alloc:w.alloc
  in
  Machine.set_explorer m (Some (Explore.hook (Explore.create ~seed spec)));
  let evs = ref [] in
  Sev.set_armed true;
  Fun.protect ~finally:(fun () -> Sev.set_armed false) @@ fun () ->
  Machine.set_san_hook m (Some (fun e -> evs := e :: !evs));
  Machine.run m (fun tid ->
      for i = 1 to 8 do
        let k = (tid + i) mod 12 in
        if i mod 3 = 0 then ignore (kv.Kv.get k)
        else kv.Kv.put k ((tid * 100) + i);
        Api.op_done ()
      done);
  List.rev !evs

let test_policies_deterministic () =
  List.iter
    (fun spec ->
      let a = sev_stream spec ~seed:7 in
      let b = sev_stream spec ~seed:7 in
      check_int
        (Explore.spec_to_string spec ^ ": event count")
        (List.length a) (List.length b);
      if a <> b then
        Alcotest.failf "%s: Sev streams differ between identical runs"
          (Explore.spec_to_string spec))
    [
      Explore.Random_walk { per_1024 = 60; span = 30 };
      Explore.Pct { depth = 3; span = 200; horizon = 3000 };
      Explore.Targeted
        { per_1024 = 700; span = 400; points = [ Explore.Lock_acquire ] };
      Explore.Targeted
        { per_1024 = 400; span = 150; points = Explore.sync_points };
    ]

(* ---------- the campaign ---------- *)

(* Every registered Testonly mutation must be caught as a non-linearizable
   history within the 64-run budget, its counterexample must shrink to at
   most 3 forced preemptions, and the emitted repro descriptor must replay
   the violation deterministically (same core twice). *)
let test_mutations_caught () =
  let outs = Check_run.hunt_mutations ~budget:64 ~seed:42 () in
  check_int "all registered mutations hunted" 4 (List.length outs);
  List.iter
    (fun o ->
      let c = o.Check_run.o_config in
      match o.Check_run.o_violation with
      | None ->
          Alcotest.failf "mutation %s survived %d runs undetected"
            c.Check_run.mutation o.Check_run.o_runs
      | Some v ->
          let n = List.length v.Check_run.v_minimized in
          if n > 3 then
            Alcotest.failf
              "mutation %s: counterexample needs %d preemptions (want <= 3)"
              c.Check_run.mutation n;
          let config, policy = Check_run.repro_of_string v.Check_run.v_repro in
          let x1 = Check_run.execute config ~policy in
          let x2 = Check_run.execute config ~policy in
          (match (x1.Check_run.x_verdict, x2.Check_run.x_verdict) with
          | History.Illegal c1, History.Illegal c2 ->
              if c1 <> c2 then
                Alcotest.failf "mutation %s: repro replays non-deterministically"
                  c.Check_run.mutation;
              if c1 <> v.Check_run.v_core then
                Alcotest.failf
                  "mutation %s: repro core differs from the reported core"
                  c.Check_run.mutation
          | _ ->
              Alcotest.failf "mutation %s: repro did not reproduce"
                c.Check_run.mutation))
    outs

(* With the mutations off, the full sweep must come back clean: any
   violation would be a real bug in a tree or in the checker itself. *)
let test_unmutated_sweep_clean () =
  let outs = Check_run.sweep ~seed:42 () in
  List.iter
    (fun o ->
      match o.Check_run.o_violation with
      | None -> ()
      | Some v ->
          Alcotest.failf
            "clean sweep violation on %s (%s/%s, %s):\n%s\nrepro: %s"
            (Kv.kind_name o.Check_run.o_config.Check_run.tree)
            o.Check_run.o_config.Check_run.mix
            o.Check_run.o_config.Check_run.dist
            (Euno_htm.Htm.strategy_name
               o.Check_run.o_config.Check_run.strategy)
            (History.to_string v.Check_run.v_core)
            v.Check_run.v_repro)
    outs

(* Repro descriptors round-trip through their string form. *)
let test_repro_roundtrip () =
  let config = Check_run.base_config Kv.Masstree in
  let policy = Explore.Pct { depth = 4; span = 120; horizon = 2500 } in
  let s = Check_run.repro_to_string config policy in
  let config', policy' = Check_run.repro_of_string s in
  check_bool "repro round-trips" true (config = config' && policy = policy')

(* ---------- differential oracle ---------- *)

(* Single-threaded on the machine, every tree must agree with a host map
   over random streams drawing all five operation kinds.  This is the
   sequential ground truth the linearizability checker's model is held
   to. *)
let differential_oracle kind =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:20
       ~name:
         (Printf.sprintf "%s agrees with host map (oracle)"
            (Kv.kind_name kind))
       QCheck.(int_bound 100_000)
       (fun seed ->
         let w = fresh_world () in
         let preload = List.init 8 (fun i -> (i * 3, 9_000 + i)) in
         let kv =
           run_one w (fun () ->
               Kv.build ~records:preload kind ~fanout:8 ~map:w.map)
         in
         let model = ref (IntMap.of_seq (List.to_seq preload)) in
         let expect_scan from count =
           let rec take n seq =
             if n = 0 then []
             else
               match seq () with
               | Seq.Nil -> []
               | Seq.Cons (b, rest) -> b :: take (n - 1) rest
           in
           take count (IntMap.to_seq_from from !model)
         in
         let ok = ref true in
         run_one ~seed:(seed + 3) w (fun () ->
             let dist = Dist.create Dist.Uniform ~n:24 ~seed:(seed + 1) in
             let gen =
               Opgen.create ~scan_len:5 ~dist
                 ~mix:{ Opgen.get = 30; put = 30; scan = 15; delete = 15; rmw = 10 }
                 ~seed:(seed + 2) ()
             in
             for _ = 1 to 60 do
               match Opgen.next gen with
               | Opgen.Get k ->
                   if kv.Kv.get k <> IntMap.find_opt k !model then ok := false
               | Opgen.Put (k, v) ->
                   kv.Kv.put k v;
                   model := IntMap.add k v !model
               | Opgen.Delete k ->
                   if kv.Kv.delete k <> IntMap.mem k !model then ok := false;
                   model := IntMap.remove k !model
               | Opgen.Rmw (k, v) ->
                   if kv.Kv.get k <> IntMap.find_opt k !model then ok := false;
                   kv.Kv.put k v;
                   model := IntMap.add k v !model
               | Opgen.Scan (k, len) ->
                   if kv.Kv.scan ~from:k ~count:len <> expect_scan k len then
                     ok := false
             done);
         !ok))

let suite =
  [
    Alcotest.test_case "spec descriptors round-trip" `Quick test_spec_roundtrip;
    Alcotest.test_case "min-clock policy is trace-identical to no explorer"
      `Quick test_min_clock_parity;
    Alcotest.test_case "exploration preserves program order" `Quick
      test_program_order_preserved;
    Alcotest.test_case "same (policy, seed) replays the same Sev stream"
      `Quick test_policies_deterministic;
    Alcotest.test_case "repro descriptors round-trip" `Quick
      test_repro_roundtrip;
    Alcotest.test_case "mutations caught, shrunk, and replayed" `Slow
      test_mutations_caught;
    Alcotest.test_case "unmutated trees sweep clean" `Slow
      test_unmutated_sweep_clean;
  ]
  @ List.map differential_oracle Kv.all_kinds
