(* Tests of the Euno-B+Tree: model-based correctness under every ablation
   configuration, structural invariants, concurrent atomicity, range
   queries, the CCM, and the adaptive contention detector. *)

open Util
module Api = Euno_sim.Api
module Cost = Euno_sim.Cost
module Machine = Euno_sim.Machine
module Euno = Eunomia.Euno_tree
module Config = Eunomia.Config
module Ccm = Euno_ccm.Ccm
module IntMap = Map.Make (Int)

let all_configs =
  ("full", Config.full)
  :: List.map (fun (n, c) -> (n, c)) Config.ablation_ladder

let with_tree ?(cfg = Config.default) w f =
  run_one w (fun () ->
      let t = Euno.create ~cfg ~map:w.map () in
      f t)

let test_empty () =
  let w = fresh_world () in
  with_tree w (fun t ->
      check_bool "get on empty" true (Euno.get t 7 = None);
      check_bool "delete on empty" false (Euno.delete t 7);
      check_int "size" 0 (Euno.size t);
      Euno.check_invariants t)

let test_insert_get_all_configs () =
  List.iter
    (fun (name, cfg) ->
      let w = fresh_world () in
      with_tree ~cfg w (fun t ->
          for k = 0 to 399 do
            Euno.put t k (k * 3)
          done;
          for k = 0 to 399 do
            if Euno.get t k <> Some (k * 3) then
              Alcotest.failf "[%s] missing key %d" name k
          done;
          if Euno.get t 1_000_000 <> None then
            Alcotest.failf "[%s] phantom key" name;
          Euno.check_invariants t;
          check_int (name ^ " size") 400 (Euno.size t)))
    all_configs

let test_update_overwrites () =
  let w = fresh_world () in
  with_tree w (fun t ->
      Euno.put t 5 1;
      Euno.put t 5 2;
      check_bool "updated" true (Euno.get t 5 = Some 2);
      check_int "no duplicate" 1 (Euno.size t))

let test_descending_inserts () =
  let w = fresh_world () in
  with_tree w (fun t ->
      for k = 299 downto 0 do
        Euno.put t k k
      done;
      Euno.check_invariants t;
      check_int "all present" 300 (Euno.size t))

let test_delete_all_configs () =
  List.iter
    (fun (name, cfg) ->
      let w = fresh_world () in
      with_tree ~cfg w (fun t ->
          for k = 0 to 149 do
            Euno.put t k k
          done;
          for k = 0 to 149 do
            if k mod 3 = 0 then
              if not (Euno.delete t k) then
                Alcotest.failf "[%s] delete %d failed" name k
          done;
          for k = 0 to 149 do
            let expect = if k mod 3 = 0 then None else Some k in
            if Euno.get t k <> expect then
              Alcotest.failf "[%s] wrong presence for %d" name k
          done;
          check_bool "re-delete fails" false (Euno.delete t 0);
          (* Deleted keys can be reinserted. *)
          Euno.put t 0 77;
          check_bool "reinsert" true (Euno.get t 0 = Some 77);
          Euno.check_invariants t))
    all_configs

let test_scan_sorted_and_complete () =
  let w = fresh_world () in
  with_tree w (fun t ->
      for k = 0 to 499 do
        Euno.put t (k * 2) k
      done;
      let r = Euno.scan t ~from:100 ~count:20 in
      check_int "scan length" 20 (List.length r);
      check_bool "starts at 100" true (fst (List.hd r) = 100);
      let keys = List.map fst r in
      check_bool "sorted" true (keys = List.sort compare keys);
      check_bool "consecutive evens" true
        (keys = List.init 20 (fun i -> 100 + (2 * i)));
      let tail = Euno.scan t ~from:990 ~count:50 in
      check_int "tail clipped" 5 (List.length tail))

let prop_model_all_configs =
  List.map
    (fun (name, cfg) ->
      QCheck_alcotest.to_alcotest
        (QCheck.Test.make ~count:30
           ~name:(Printf.sprintf "euno[%s] matches Map model" name)
           QCheck.(
             pair (int_bound 1_000_000)
               (list_of_size Gen.(50 -- 300) (pair (int_bound 150) (int_bound 4))))
           (fun (salt, ops) ->
             let w = fresh_world () in
             with_tree ~cfg w (fun t ->
                 let model = ref IntMap.empty in
                 let ok = ref true in
                 List.iteri
                   (fun i (key, kind) ->
                     let key = (key + salt) mod 150 in
                     match kind with
                     | 0 | 3 ->
                         Euno.put t key i;
                         model := IntMap.add key i !model
                     | 1 ->
                         if Euno.get t key <> IntMap.find_opt key !model then
                           ok := false
                     | 2 ->
                         if Euno.delete t key <> IntMap.mem key !model then
                           ok := false;
                         model := IntMap.remove key !model
                     | _ ->
                         let got = Euno.scan t ~from:key ~count:5 in
                         let expect =
                           IntMap.bindings !model
                           |> List.filter (fun (k, _) -> k >= key)
                           |> List.filteri (fun i _ -> i < 5)
                         in
                         if got <> expect then ok := false)
                   ops;
                 Euno.check_invariants t;
                 !ok && Euno.to_list t = IntMap.bindings !model))))
    all_configs

let prop_invariants_every_step =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:20 ~name:"euno invariants after every op"
       QCheck.(list_of_size Gen.(10 -- 150) (int_bound 80))
       (fun keys ->
         let w = fresh_world () in
         with_tree w (fun t ->
             List.iter
               (fun k ->
                 Euno.put t k k;
                 Euno.check_invariants t)
               keys;
             true)))

(* ---------- concurrent ---------- *)

let make_tree w cfg = run_one w (fun () -> Euno.create ~cfg ~map:w.map ())

let preload w t ~n =
  run_one w (fun () ->
      for k = 0 to n - 1 do
        Euno.put t k k
      done)

let test_concurrent_disjoint_inserts_all_configs () =
  List.iter
    (fun (name, cfg) ->
      let w = fresh_world () in
      let t = make_tree w cfg in
      let threads = 6 and per = 80 in
      let (_ : Machine.t) =
        run_threads ~threads ~cost:Cost.default ~seed:31 w (fun tid ->
            for i = 0 to per - 1 do
              let k = (tid * 10_000) + i in
              Euno.put t k (k * 2)
            done)
      in
      run_one w (fun () ->
          Euno.check_invariants t;
          if Euno.size t <> threads * per then
            Alcotest.failf "[%s] lost inserts: %d of %d" name (Euno.size t)
              (threads * per);
          for tid = 0 to threads - 1 do
            for i = 0 to per - 1 do
              let k = (tid * 10_000) + i in
              if Euno.get t k <> Some (k * 2) then
                Alcotest.failf "[%s] missing %d" name k
            done
          done))
    all_configs

let test_concurrent_hot_conflicts () =
  let w = fresh_world () in
  let t = make_tree w Config.full in
  preload w t ~n:64;
  let threads = 8 and per = 60 in
  let (_ : Machine.t) =
    run_threads ~threads ~cost:Cost.default ~seed:37 w (fun tid ->
        for i = 1 to per do
          let k = i mod 4 in
          Euno.put t k ((tid * 1000) + i)
        done)
  in
  run_one w (fun () ->
      Euno.check_invariants t;
      for k = 0 to 3 do
        match Euno.get t k with
        | Some v ->
            let tid = v / 1000 and i = v mod 1000 in
            if not (tid >= 0 && tid < threads && i >= 1 && i <= per) then
              Alcotest.failf "impossible value %d at key %d" v k
        | None -> Alcotest.failf "key %d vanished" k
      done)

(* Concurrent same-key inserts from many threads must never duplicate the
   key (the race the slot locks/HTM must close). *)
let test_concurrent_same_key_insert_no_duplicates () =
  List.iter
    (fun (name, cfg) ->
      let w = fresh_world () in
      let t = make_tree w cfg in
      let (_ : Machine.t) =
        run_threads ~threads:8 ~cost:Cost.default ~seed:41 w (fun tid ->
            for i = 0 to 30 do
              Euno.put t (i mod 8) ((tid * 100) + i)
            done)
      in
      run_one w (fun () ->
          Euno.check_invariants t;
          if Euno.size t <> 8 then
            Alcotest.failf "[%s] duplicates or losses: size %d" name
              (Euno.size t)))
    all_configs

let test_concurrent_mixed_with_deletes () =
  let w = fresh_world () in
  let t = make_tree w Config.full in
  preload w t ~n:200;
  let (_ : Machine.t) =
    run_threads ~threads:6 ~cost:Cost.default ~seed:43 w (fun tid ->
        for i = 1 to 70 do
          let k = Api.rand 300 in
          match (tid + i) mod 4 with
          | 0 -> ignore (Euno.get t k)
          | 1 | 2 -> Euno.put t k ((tid * 10_000) + i)
          | _ -> ignore (Euno.delete t k)
        done)
  in
  run_one w (fun () -> Euno.check_invariants t)

let test_concurrent_scans_sorted () =
  let w = fresh_world () in
  let t = make_tree w Config.full in
  preload w t ~n:150;
  let bad = ref 0 in
  let (_ : Machine.t) =
    run_threads ~threads:4 ~cost:Cost.default ~seed:47 w (fun tid ->
        if tid < 2 then
          for i = 0 to 50 do
            Euno.put t (150 + (tid * 1000) + i) i
          done
        else
          for _ = 0 to 15 do
            let r = Euno.scan t ~from:0 ~count:60 in
            let keys = List.map fst r in
            if keys <> List.sort_uniq compare keys then incr bad
          done)
  in
  check_int "scans always sorted, no duplicates" 0 !bad

(* Mark bits: a get for an absent key on an engaged leaf should be turned
   away without entering the lower region. *)
let test_mark_fastpath_counts () =
  let w = fresh_world () in
  let cfg = Config.ccm_markbits in
  (* adaptive off => CCM always engaged *)
  let t = make_tree w cfg in
  preload w t ~n:10;
  let m =
    run_threads ~threads:1 ~cost:Cost.default ~seed:53 w (fun _ ->
        for k = 1000 to 1063 do
          ignore (Euno.get t k)
        done)
  in
  let s = Machine.snapshot_thread m 0 in
  check_bool "some absent gets short-circuited" true
    (s.Machine.s_user.(Euno.Counter.mark_fastpath) > 0)

(* The adaptive detector engages a hammered leaf and leaves a cold tree
   bypassed. *)
let test_adaptive_detector () =
  let w = fresh_world () in
  let t = make_tree w Config.full in
  preload w t ~n:32;
  let (_ : Machine.t) =
    run_threads ~threads:8 ~cost:Cost.default ~seed:59 w (fun tid ->
        for i = 1 to 80 do
          Euno.put t (i mod 3) ((tid * 100) + i)
        done)
  in
  (* We can't reach leaf internals from here; instead check the tree still
     answers correctly after mode churn. *)
  run_one w (fun () ->
      Euno.check_invariants t;
      for k = 0 to 31 do
        if Euno.get t k = None then Alcotest.failf "key %d lost" k
      done)

let test_splits_and_compactions_happen () =
  let w = fresh_world () in
  let t = make_tree w Config.full in
  let m =
    run_threads ~threads:1 ~cost:Cost.default ~seed:61 w (fun _ ->
        for k = 0 to 599 do
          Euno.put t k k
        done)
  in
  let s = Machine.snapshot_thread m 0 in
  check_bool "splits happened" true (s.Machine.s_user.(Euno.Counter.splits) > 30);
  run_one w (fun () -> Euno.check_invariants t)

let test_deterministic_replay () =
  let run () =
    let w = fresh_world () in
    let t = make_tree w Config.full in
    preload w t ~n:64;
    let m =
      run_threads ~threads:6 ~cost:Cost.default ~seed:67 w (fun tid ->
          for i = 1 to 50 do
            Euno.put t (i mod 8) ((tid * 100) + i)
          done)
    in
    let s = Machine.aggregate m in
    (Machine.elapsed m, s.Machine.s_commits, Machine.total_aborts s,
     run_one w (fun () -> Euno.to_list t))
  in
  check_bool "identical replay" true (run () = run ())

(* Concurrent insert/delete churn on a small key set: the mark-bit
   protocol must never produce a false negative (a present key that a get
   misses).  Runs with the always-engaged markbits config, the most
   demanding setting. *)
let test_concurrent_insert_delete_churn_markbits () =
  List.iter
    (fun cfg_name_cfg ->
      let name, cfg = cfg_name_cfg in
      let w = fresh_world () in
      let t = make_tree w cfg in
      preload w t ~n:32;
      let misses = ref 0 in
      let (_ : Machine.t) =
        run_threads ~threads:8 ~cost:Cost.default ~seed:103 w (fun tid ->
            for i = 1 to 60 do
              let k = (tid + i) mod 12 in
              match i mod 3 with
              | 0 -> ignore (Euno.delete t k)
              | 1 -> Euno.put t k ((tid * 1000) + i)
              | _ -> ignore (Euno.get t k)
            done)
      in
      run_one w (fun () ->
          Euno.check_invariants t;
          (* every key the tree reports live must be gettable: a false
             negative in the marks would break this *)
          List.iter
            (fun (k, v) -> if Euno.get t k <> Some v then incr misses)
            (Euno.to_list t));
      if !misses > 0 then
        Alcotest.failf "[%s] %d false negatives after churn" name !misses)
    [ ("markbits", Config.ccm_markbits); ("full", Config.full) ]

(* Scans racing splits must stay complete: keys that are never deleted
   must appear in every full scan. *)
let test_concurrent_scan_completeness () =
  let w = fresh_world () in
  let t = make_tree w Config.full in
  preload w t ~n:100;
  let incomplete = ref 0 in
  let (_ : Machine.t) =
    run_threads ~threads:4 ~cost:Cost.default ~seed:107 w (fun tid ->
        if tid < 2 then
          for i = 0 to 80 do
            Euno.put t (1000 + (tid * 500) + i) i
          done
        else
          for _ = 0 to 10 do
            let r = Euno.scan t ~from:0 ~count:max_int in
            let keys = List.map fst r in
            (* all 100 preloaded keys must be present in every scan *)
            let ok =
              List.for_all (fun k -> List.mem k keys)
                (List.init 100 (fun i -> i))
            in
            if not ok then incr incomplete
          done)
  in
  check_int "every scan complete" 0 !incomplete

(* Scans racing splits of the very leaves being scanned: the mid-chain
   seqno-stale restart must resume after the last collected key, never
   duplicating records. *)
let test_scan_restart_no_duplicates () =
  List.iter
    (fun seed ->
      let w = fresh_world () in
      let t = make_tree w Config.full in
      preload w t ~n:60;
      let bad = ref 0 in
      let (_ : Machine.t) =
        run_threads ~threads:6 ~cost:Cost.default ~seed w (fun tid ->
            if tid < 4 then
              (* insert into the middle of the scanned range, forcing
                 splits of mid-chain leaves during scans *)
              for i = 0 to 50 do
                Euno.put t (20 + (tid * 1000) + i) i
              done
            else
              for _ = 0 to 20 do
                let r = Euno.scan t ~from:0 ~count:max_int in
                let keys = List.map fst r in
                if keys <> List.sort_uniq compare keys then incr bad
              done)
      in
      if !bad > 0 then
        Alcotest.failf "seed %d: %d scans had duplicates/disorder" seed !bad)
    [ 3; 17; 29; 71 ]

(* Fault injection on the full tree: heavy spurious aborts in both HTM
   regions; the tree must stay correct and lose nothing. *)
let test_euno_under_spurious_aborts () =
  let w = fresh_world () in
  let t = make_tree w Config.full in
  preload w t ~n:64;
  let cost =
    { Cost.default with Euno_sim.Cost.spurious_per_million = 5_000 }
  in
  let (_ : Machine.t) =
    run_threads ~threads:6 ~cost ~seed:113 w (fun tid ->
        for i = 0 to 50 do
          Euno.put t ((tid * 1000) + 64 + i) i
        done)
  in
  run_one w (fun () ->
      Euno.check_invariants t;
      check_int "nothing lost under fault injection" (64 + (6 * 51))
        (Euno.size t))

(* ---------- online maintenance (leaf merging) ---------- *)

let test_maintain_merges_underfull_leaves () =
  let w = fresh_world () in
  with_tree w (fun t ->
      for k = 0 to 599 do
        Euno.put t k k
      done;
      (* delete most records: many underfull leaves *)
      for k = 0 to 599 do
        if k mod 4 <> 0 then ignore (Euno.delete t k)
      done;
      let st_before = Euno.stats t in
      let contents = Euno.to_list t in
      let merges = Euno.maintain t in
      check_bool "merges happened" true (merges > 0);
      Euno.check_invariants t;
      check_bool "contents preserved" true (Euno.to_list t = contents);
      let st_after = Euno.stats t in
      check_bool "fewer leaves" true
        (st_after.Euno.st_leaves < st_before.Euno.st_leaves);
      check_bool "fill improved" true
        (st_after.Euno.st_avg_leaf_fill > st_before.Euno.st_avg_leaf_fill);
      (* tree still fully usable *)
      Euno.put t 1000 1;
      check_bool "usable" true (Euno.get t 1000 = Some 1))

let test_maintain_concurrent_with_ops () =
  let w = fresh_world () in
  (* concurrent maintenance requires epoch-based reclamation *)
  let epoch = Euno_mem.Epoch.create ~slots:8 () in
  let t =
    run_one w (fun () -> Euno.create ~epoch ~cfg:Config.full ~map:w.map ())
  in
  run_one w (fun () ->
      for k = 0 to 799 do
        Euno.put t k k
      done;
      for k = 0 to 799 do
        if k mod 3 <> 0 then ignore (Euno.delete t k)
      done);
  let misses = ref 0 in
  let (_ : Machine.t) =
    run_threads ~threads:6 ~cost:Cost.default ~seed:131 w (fun tid ->
        if tid = 0 then
          (* one maintenance thread merging while others operate *)
          ignore (Euno.maintain t)
        else
          for i = 0 to 80 do
            let k = 3 * ((i + (tid * 40)) mod 260) in
            (* surviving keys must remain visible through merges *)
            (match Euno.get t k with Some _ -> () | None -> incr misses);
            if i mod 7 = 0 then Euno.put t (10_000 + (tid * 100) + i) i
          done)
  in
  check_int "no key lost during online merging" 0 !misses;
  run_one w (fun () -> Euno.check_invariants t)

let test_maintain_with_epoch_defers_reclaim () =
  let w = fresh_world () in
  let epoch = Euno_mem.Epoch.create ~slots:4 () in
  let t =
    run_one w (fun () -> Euno.create ~epoch ~cfg:Config.full ~map:w.map ())
  in
  run_one w (fun () ->
      for k = 0 to 399 do
        Euno.put t k k
      done;
      for k = 0 to 399 do
        if k mod 4 <> 0 then ignore (Euno.delete t k)
      done;
      let live_before = Euno_mem.Alloc.live_words w.alloc in
      let merges = Euno.maintain t in
      check_bool "merges happened" true (merges > 0);
      (* retired but not yet reclaimed: memory still live *)
      check_int "reclaim deferred" live_before
        (Euno_mem.Alloc.live_words w.alloc);
      check_bool "retirements pending" true (Euno_mem.Epoch.pending epoch > 0);
      Euno_mem.Epoch.flush epoch;
      check_bool "reclaimed after quiescence" true
        (Euno_mem.Alloc.live_words w.alloc < live_before);
      Euno.check_invariants t)

(* Regression for the with_epoch exception path: an operation defeated
   mid-flight (injected allocation failure during a split) must unpin its
   epoch slot.  A leaked pin would freeze the global epoch forever, so
   nothing retired afterwards could ever be reclaimed without a flush. *)
let test_epoch_unpinned_after_failed_op () =
  let w = fresh_world () in
  let epoch = Euno_mem.Epoch.create ~slots:1 ~advance_every:1 () in
  let t =
    run_one w (fun () -> Euno.create ~epoch ~cfg:Config.full ~map:w.map ())
  in
  let m =
    Machine.create ~threads:1 ~seed:7 ~cost:Cost.unit_costs ~mem:w.mem
      ~map:w.map ~alloc:w.alloc
  in
  let starve = ref false in
  Machine.set_injector m
    {
      Machine.no_injector with
      inj_alloc_fail = (fun ~tid:_ ~clock:_ ~in_txn:_ -> !starve);
    };
  Machine.run m (fun _ ->
      (* fill one leaf, then starve the allocator so a split dies with
         Alloc_failure inside with_epoch *)
      (try
         for k = 0 to 40 do
           if k = 12 then starve := true;
           Euno.put t k k
         done;
         Alcotest.fail "expected a starved split to fail"
       with Euno_mem.Alloc.Alloc_failure -> ());
      starve := false;
      for k = 13 to 399 do
        Euno.put t k k
      done;
      for k = 0 to 399 do
        if k mod 4 <> 0 then ignore (Euno.delete t k)
      done;
      ignore (Euno.maintain t);
      (* pin/unpin traffic advances the epoch only if the failed
         operation really unpinned its slot *)
      for k = 0 to 99 do
        ignore (Euno.get t k)
      done;
      check_bool "epoch advanced past the failed operation" true
        (Euno_mem.Epoch.freed epoch > 0);
      Euno.check_invariants t)

let prop_maintain_preserves_contents =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:25
       ~name:"maintain preserves contents for any delete pattern"
       QCheck.(pair (int_bound 1_000_000) (int_range 50 400))
       (fun (salt, n) ->
         let w = fresh_world () in
         with_tree w (fun t ->
             for k = 0 to n - 1 do
               Euno.put t k k
             done;
             (* pseudo-random deletions *)
             for k = 0 to n - 1 do
               if (k * 2654435761) + salt land 7 < 5 then
                 ignore (Euno.delete t k)
             done;
             let contents = Euno.to_list t in
             let (_ : int) = Euno.maintain t in
             Euno.check_invariants t;
             let once = Euno.to_list t = contents in
             (* idempotent on contents *)
             let (_ : int) = Euno.maintain t in
             Euno.check_invariants t;
             once && Euno.to_list t = contents)))

(* ---------- CCM unit behaviour ---------- *)

let test_ccm_bits () =
  let w = fresh_world () in
  run_one w (fun () ->
      let base =
        Euno_mem.Alloc.alloc w.alloc ~kind:Euno_mem.Linemap.Lock ~words:8
      in
      let c = Ccm.make ~base ~mode_addr:(base + 7) ~capacity:15 in
      check_int "nslots" 30 (Ccm.nslots c);
      let slot = Ccm.hash c 12345 in
      check_bool "slot in range" true (slot >= 0 && slot < 30);
      check_bool "initially unmarked" false (Ccm.marked c slot);
      Ccm.set_mark c slot;
      check_bool "marked" true (Ccm.marked c slot);
      Ccm.clear_mark c slot;
      check_bool "cleared" false (Ccm.marked c slot);
      Ccm.merge_marks c 0b1010;
      check_bool "merged bit 1" true (Ccm.marked c 1);
      check_bool "merged bit 3" true (Ccm.marked c 3);
      check_bool "bit 0 clear" false (Ccm.marked c 0);
      Ccm.lock_slot c 5;
      Ccm.unlock_slot c 5;
      check_bool "hash deterministic" true (Ccm.hash c 42 = Ccm.hash c 42))

let test_ccm_slot_locks_exclusive () =
  let w = fresh_world () in
  let base =
    run_one w (fun () ->
        Euno_mem.Alloc.alloc w.alloc ~kind:Euno_mem.Linemap.Lock ~words:8)
  in
  let counter = scratch w ~words:8 in
  let c = Ccm.make ~base ~mode_addr:(base + 7) ~capacity:15 in
  let threads = 6 and iters = 40 in
  let (_ : Machine.t) =
    run_threads ~threads ~cost:Cost.default ~seed:71 w (fun _ ->
        for _ = 1 to iters do
          Ccm.lock_slot c 3;
          (* Non-atomic increment: only safe if the slot lock excludes. *)
          let v = Api.read counter in
          Api.work 30;
          Api.write counter (v + 1);
          Ccm.unlock_slot c 3
        done)
  in
  check_int "slot lock mutual exclusion"
    (threads * iters)
    (run_one w (fun () -> Api.read counter))

let test_ccm_detector_promotes_and_demotes () =
  let w = fresh_world () in
  run_one w (fun () ->
      let base =
        Euno_mem.Alloc.alloc w.alloc ~kind:Euno_mem.Linemap.Lock ~words:8
      in
      let c = Ccm.make ~base ~mode_addr:(base + 7) ~capacity:15 in
      let th = Ccm.default_thresholds in
      check_bool "starts bypassed" false (Ccm.engaged c);
      let promoted = ref false in
      for _ = 1 to th.Ccm.promote_conflicts do
        match Ccm.note_conflict c th with
        | Ccm.Promoted -> promoted := true
        | Ccm.Demoted | Ccm.Unchanged -> ()
      done;
      check_bool "promoted after conflicts" true !promoted;
      check_bool "engaged" true (Ccm.engaged c);
      (* Quiet windows decay the counter and demote. *)
      let demoted = ref false in
      for _ = 1 to 20 do
        match Ccm.note_ops c th th.Ccm.window_ops with
        | Ccm.Demoted -> demoted := true
        | Ccm.Promoted | Ccm.Unchanged -> ()
      done;
      check_bool "demoted after quiet" true !demoted;
      check_bool "bypassed again" false (Ccm.engaged c))

let test_rebalance_reclaims_nodes () =
  let w = fresh_world () in
  with_tree w (fun t ->
      for k = 0 to 599 do
        Euno.put t k k
      done;
      for k = 0 to 599 do
        if k mod 2 = 0 then ignore (Euno.delete t k)
      done;
      let live_before = Euno_mem.Alloc.live_words w.alloc in
      let contents = Euno.to_list t in
      Euno.rebalance t;
      Euno.check_invariants t;
      check_bool "contents preserved" true (Euno.to_list t = contents);
      check_bool "memory reclaimed" true
        (Euno_mem.Alloc.live_words w.alloc < live_before);
      (* per-kind accounting stays consistent through reclassified frees *)
      List.iter
        (fun kind ->
          let st = Euno_mem.Alloc.stats_of_kind w.alloc kind in
          if st.Euno_mem.Alloc.live_words < 0 then
            Alcotest.failf "negative accounting for %s"
              (Euno_mem.Linemap.kind_to_string kind))
        Euno_mem.Alloc.all_kinds;
      check_bool "counter reset" false (Euno.needs_rebalance t);
      (* the tree still works after maintenance *)
      Euno.put t 1000 1;
      check_bool "usable after rebalance" true (Euno.get t 1000 = Some 1))

let test_needs_rebalance_threshold () =
  let w = fresh_world () in
  with_tree w (fun t ->
      check_bool "fresh tree" false (Euno.needs_rebalance t);
      (* deletes of absent keys do not count *)
      for k = 0 to 99 do
        ignore (Euno.delete t k)
      done;
      check_bool "misses don't count" false (Euno.needs_rebalance t))

let test_bulk_load_all_configs () =
  List.iter
    (fun (name, cfg) ->
      let w = fresh_world () in
      let records = List.init 500 (fun i -> (i * 2, i)) in
      let t = run_one w (fun () -> Euno.bulk_load ~cfg ~map:w.map records) in
      run_one w (fun () ->
          Euno.check_invariants t;
          if Euno.to_list t <> records then Alcotest.failf "[%s] contents" name;
          if Euno.get t 100 <> Some 50 then Alcotest.failf "[%s] hit" name;
          if Euno.get t 101 <> None then Alcotest.failf "[%s] miss" name;
          Euno.put t 101 7;
          if Euno.get t 101 <> Some 7 then Alcotest.failf "[%s] insert" name;
          Euno.check_invariants t))
    all_configs

let test_bulk_load_then_concurrent () =
  let w = fresh_world () in
  let records = List.init 2000 (fun i -> (i, i)) in
  let t =
    run_one w (fun () -> Euno.bulk_load ~cfg:Config.full ~map:w.map records)
  in
  let (_ : Machine.t) =
    run_threads ~threads:8 ~cost:Cost.default ~seed:91 w (fun tid ->
        for i = 0 to 60 do
          Euno.put t ((tid * 4000) + 2000 + i) i
        done)
  in
  run_one w (fun () ->
      Euno.check_invariants t;
      check_int "all present" (2000 + (8 * 61)) (Euno.size t))

let test_tree_stats () =
  let w = fresh_world () in
  with_tree w (fun t ->
      for k = 0 to 299 do
        Euno.put t k k
      done;
      let st = Euno.stats t in
      check_int "records" 300 st.Euno.st_records;
      check_bool "leaves plausible" true
        (st.Euno.st_leaves >= 300 / 15 && st.Euno.st_leaves <= 300 / 5);
      check_bool "fill in (0,1]" true
        (st.Euno.st_avg_leaf_fill > 0.0 && st.Euno.st_avg_leaf_fill <= 1.0);
      check_int "depth consistent" st.Euno.st_depth
        (let rec levels n acc = if n <= 1 then acc else levels (n / 17 + 1) (acc + 1) in
         ignore (levels 1 1);
         st.Euno.st_depth);
      check_bool "internals present" true (st.Euno.st_internals > 0))

let test_iteration_helpers () =
  let w = fresh_world () in
  with_tree w (fun t ->
      check_bool "min of empty" true (Euno.min_binding t = None);
      check_bool "max of empty" true (Euno.max_binding t = None);
      for k = 1 to 50 do
        Euno.put t (k * 2) k
      done;
      check_bool "min" true (Euno.min_binding t = Some (2, 1));
      check_bool "max" true (Euno.max_binding t = Some (100, 50));
      let sum = Euno.fold t ~init:0 ~f:(fun acc _ v -> acc + v) in
      check_int "fold sums values" (50 * 51 / 2) sum;
      let seen = ref 0 in
      Euno.iter t (fun _ _ -> incr seen);
      check_int "iter visits all" 50 !seen)

let test_config_validation () =
  let expect_invalid cfg =
    match Config.validate cfg with
    | (_ : Config.t) -> Alcotest.fail "invalid config accepted"
    | exception Invalid_argument _ -> ()
  in
  expect_invalid { Config.default with Config.fanout = 3 };
  expect_invalid { Config.default with Config.fanout = 7 };
  expect_invalid { Config.default with Config.nsegs = 0 };
  expect_invalid { Config.default with Config.seg_slots = 0 };
  (* mark bits without lock bits break the insert/delete atomicity *)
  expect_invalid
    { Config.default with Config.use_lock_bits = false; use_mark_bits = true };
  (* capacity too large for the CCM bit vectors *)
  expect_invalid { Config.default with Config.nsegs = 8; seg_slots = 8 };
  expect_invalid { Config.default with Config.near_full_margin = 0 };
  check_int "default capacity" 15 (Config.capacity Config.default)

let suite =
  [
    Alcotest.test_case "empty tree" `Quick test_empty;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "iteration helpers" `Quick test_iteration_helpers;
    Alcotest.test_case "tree stats" `Quick test_tree_stats;
    Alcotest.test_case "bulk load under every config" `Quick
      test_bulk_load_all_configs;
    Alcotest.test_case "bulk load then concurrent inserts" `Quick
      test_bulk_load_then_concurrent;
    Alcotest.test_case "rebalance reclaims nodes" `Quick
      test_rebalance_reclaims_nodes;
    Alcotest.test_case "rebalance threshold" `Quick
      test_needs_rebalance_threshold;
    Alcotest.test_case "insert+get under every config" `Quick
      test_insert_get_all_configs;
    Alcotest.test_case "update overwrites" `Quick test_update_overwrites;
    Alcotest.test_case "descending inserts" `Quick test_descending_inserts;
    Alcotest.test_case "delete under every config" `Quick
      test_delete_all_configs;
    Alcotest.test_case "scan sorted and complete" `Quick
      test_scan_sorted_and_complete;
    prop_invariants_every_step;
    Alcotest.test_case "concurrent disjoint inserts (all configs)" `Slow
      test_concurrent_disjoint_inserts_all_configs;
    Alcotest.test_case "concurrent hot conflicts" `Quick
      test_concurrent_hot_conflicts;
    Alcotest.test_case "concurrent same-key inserts: no duplicates" `Slow
      test_concurrent_same_key_insert_no_duplicates;
    Alcotest.test_case "concurrent mixed ops with deletes" `Quick
      test_concurrent_mixed_with_deletes;
    Alcotest.test_case "concurrent scans stay sorted" `Quick
      test_concurrent_scans_sorted;
    Alcotest.test_case "insert/delete churn: no mark false negatives" `Quick
      test_concurrent_insert_delete_churn_markbits;
    Alcotest.test_case "concurrent scan completeness" `Quick
      test_concurrent_scan_completeness;
    Alcotest.test_case "correct under spurious aborts" `Quick
      test_euno_under_spurious_aborts;
    Alcotest.test_case "scan restart never duplicates" `Quick
      test_scan_restart_no_duplicates;
    Alcotest.test_case "maintain merges underfull leaves" `Quick
      test_maintain_merges_underfull_leaves;
    Alcotest.test_case "maintain concurrent with ops" `Quick
      test_maintain_concurrent_with_ops;
    Alcotest.test_case "maintain + epoch defers reclaim" `Quick
      test_maintain_with_epoch_defers_reclaim;
    Alcotest.test_case "epoch unpinned after failed op" `Quick
      test_epoch_unpinned_after_failed_op;
    prop_maintain_preserves_contents;
    Alcotest.test_case "mark-bit fast path fires" `Quick
      test_mark_fastpath_counts;
    Alcotest.test_case "adaptive detector churn is safe" `Quick
      test_adaptive_detector;
    Alcotest.test_case "splits and compactions happen" `Quick
      test_splits_and_compactions_happen;
    Alcotest.test_case "deterministic replay" `Quick test_deterministic_replay;
    Alcotest.test_case "ccm bit operations" `Quick test_ccm_bits;
    Alcotest.test_case "ccm slot locks are exclusive" `Quick
      test_ccm_slot_locks_exclusive;
    Alcotest.test_case "ccm detector promotes/demotes" `Quick
      test_ccm_detector_promotes_and_demotes;
  ]
  @ prop_model_all_configs
