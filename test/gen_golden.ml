(* Regenerate the determinism fixtures under test/golden/.

     dune exec test/gen_golden.exe -- test/golden

   Run this ONLY when a change is *meant* to alter simulated behavior;
   the point of the fixtures is that pure-performance changes keep them
   byte-identical. *)

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/golden" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun (name, scenario) ->
      let out = scenario () in
      let write file lines =
        let oc = open_out (Filename.concat dir file) in
        List.iter
          (fun l ->
            output_string oc l;
            output_char oc '\n')
          lines;
        close_out oc;
        Printf.printf "wrote %s (%d lines)\n%!" (Filename.concat dir file)
          (List.length lines)
      in
      write (Golden_scenarios.trace_file name) out.Golden_scenarios.trace;
      write (Golden_scenarios.summary_file name) out.Golden_scenarios.summary)
    Golden_scenarios.all
