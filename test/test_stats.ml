(* Tests of the statistics utilities: table rendering and summary
   statistics. *)

open Util
module Table = Euno_stats.Table
module Summary = Euno_stats.Summary
module Json = Euno_stats.Json

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i =
    if i + n > h then false
    else if String.sub haystack i n = needle then true
    else go (i + 1)
  in
  go 0

let test_table_alignment () =
  let t = Table.create ~title:"T" ~headers:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1.00" ];
  Table.add_row t [ "a-much-longer-name"; "2.50" ];
  let out = Table.render t in
  let lines = String.split_on_char '\n' out in
  (match lines with
  | title :: header :: rule :: row1 :: row2 :: _ ->
      check_bool "title marker" true (String.length title > 0 && title.[0] = '=');
      check_int "header and rule same width" (String.length header)
        (String.length rule);
      check_int "rows same width" (String.length row1) (String.length row2)
  | _ -> Alcotest.fail "unexpected shape");
  check_bool "contains first row" true (contains out "alpha")

let test_table_rows_in_order () =
  let t = Table.create ~title:"T" ~headers:[ "k" ] in
  Table.add_row t [ "first" ];
  Table.add_row t [ "second" ];
  let out = Table.render t in
  let pos needle =
    let n = String.length needle in
    let rec find i =
      if i + n > String.length out then -1
      else if String.sub out i n = needle then i
      else find (i + 1)
    in
    find 0
  in
  check_bool "rows render in insertion order" true
    (pos "first" >= 0 && pos "second" > pos "first")

let test_table_cells () =
  check_bool "cell_f" true (Table.cell_f 1.234 = "1.23");
  check_bool "cell_f1" true (Table.cell_f1 1.26 = "1.3");
  check_bool "cell_i" true (Table.cell_i 42 = "42");
  check_bool "cell_pct" true (Table.cell_pct 12.34 = "12.3%")

let test_summary_basic () =
  let s = Summary.create () in
  List.iter (Summary.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_int "count" 8 (Summary.count s);
  check_bool "mean" true (abs_float (Summary.mean s -. 5.0) < 1e-9);
  check_bool "stddev" true (abs_float (Summary.stddev s -. 2.13809) < 1e-3);
  check_bool "min" true (Summary.min_value s = 2.0);
  check_bool "max" true (Summary.max_value s = 9.0)

let test_summary_percentiles () =
  let s = Summary.create () in
  for i = 1 to 100 do
    Summary.add s (float_of_int i)
  done;
  check_bool "p50" true (abs_float (Summary.percentile s 50.0 -. 50.5) < 1e-9);
  check_bool "p0" true (Summary.percentile s 0.0 = 1.0);
  check_bool "p100" true (Summary.percentile s 100.0 = 100.0);
  check_bool "p99 close to 99" true
    (abs_float (Summary.percentile s 99.0 -. 99.01) < 0.1)

let test_summary_no_sample () =
  let s = Summary.create ~keep_sample:false () in
  Summary.add s 1.0;
  match Summary.percentile s 50.0 with
  | (_ : float) -> Alcotest.fail "percentile without sample"
  | exception Invalid_argument _ -> ()

let prop_summary_mean_matches_naive =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"welford mean = naive mean"
       QCheck.(list_of_size Gen.(1 -- 100) (float_range 0.0 1000.0))
       (fun xs ->
         let s = Summary.create ~keep_sample:false () in
         List.iter (Summary.add s) xs;
         let naive =
           List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
         in
         abs_float (Summary.mean s -. naive) < 1e-6))

module Chart = Euno_stats.Chart

let test_chart_renders () =
  let out =
    Chart.render ~width:40 ~height:8 ~title:"T" ~x_labels:[ "a"; "b"; "c" ]
      [
        { Chart.label = "up"; points = [ 1.0; 2.0; 3.0 ] };
        { Chart.label = "down"; points = [ 3.0; 2.0; 1.0 ] };
      ]
  in
  check_bool "has title" true (contains out "T");
  check_bool "has legend up" true (contains out "* up");
  check_bool "has legend down" true (contains out "o down");
  check_bool "has x labels" true (contains out "a" && contains out "c");
  check_bool "has marks" true (contains out "*" && contains out "o");
  (* every line bounded by the grid width *)
  List.iter
    (fun l ->
      if String.length l > 8 + 40 + 2 then
        Alcotest.failf "line too long: %d" (String.length l))
    (String.split_on_char '
' out)

let test_chart_rejects_single_point () =
  match
    Chart.render ~title:"T" ~x_labels:[ "a" ]
      [ { Chart.label = "s"; points = [ 1.0 ] } ]
  with
  | (_ : string) -> Alcotest.fail "accepted single point"
  | exception Invalid_argument _ -> ()

let test_chart_axis_rounding () =
  (* max 23 should give a 25-high axis, not 50 *)
  let out =
    Chart.render ~width:30 ~height:6 ~title:"T" ~x_labels:[]
      [ { Chart.label = "s"; points = [ 3.0; 23.0 ] } ]
  in
  check_bool "nice axis top" true (contains out "25.0")

(* ---------- percentile caching (regression) ---------- *)

(* Naive reference: sort a fresh copy on every query. *)
let naive_percentile values p =
  let a = Array.copy values in
  Array.sort compare a;
  let n = Array.length a in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = min (n - 1) (lo + 1) in
  let frac = rank -. float_of_int lo in
  (a.(lo) *. (1.0 -. frac)) +. (a.(hi) *. frac)

(* Regression: percentile used to re-sort the whole retained sample on
   every call; now the sorted array is cached and invalidated by add.
   Interleave queries and adds to prove the cache never serves stale
   data. *)
let test_percentile_cache_invalidation () =
  let s = Summary.create () in
  List.iter (Summary.add s) [ 5.0; 1.0; 9.0 ];
  Alcotest.(check (float 1e-9)) "p50 of 3" 5.0 (Summary.percentile s 50.0);
  Summary.add s 0.0;
  (* after invalidation the new minimum must be visible *)
  Alcotest.(check (float 1e-9)) "p0 sees new min" 0.0 (Summary.percentile s 0.0);
  Summary.add s 100.0;
  Alcotest.(check (float 1e-9)) "p100 sees new max" 100.0
    (Summary.percentile s 100.0);
  (* repeated queries (cache hits) agree with the naive reference *)
  let values = [| 5.0; 1.0; 9.0; 0.0; 100.0 |] in
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "p%.0f matches naive" p)
        (naive_percentile values p) (Summary.percentile s p))
    [ 25.0; 50.0; 75.0; 99.0 ]

let prop_percentile_matches_naive =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"cached percentile = naive re-sort"
       QCheck.(
         pair
           (list_of_size Gen.(1 -- 64) (float_range 0.0 1e6))
           (float_range 0.0 100.0))
       (fun (values, p) ->
         let values = Array.of_list values in
         let s = Summary.of_array values in
         let reference = naive_percentile values p in
         let got = Summary.percentile s p in
         Float.abs (got -. reference) <= 1e-6 *. (1.0 +. Float.abs reference)))

(* ---------- JSON codec ---------- *)

let rec json_equal a b =
  match (a, b) with
  | Json.Float x, Json.Float y -> Float.abs (x -. y) <= 1e-9 *. (1.0 +. Float.abs x)
  | Json.List xs, Json.List ys ->
      List.length xs = List.length ys && List.for_all2 json_equal xs ys
  | Json.Obj xs, Json.Obj ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> k1 = k2 && json_equal v1 v2)
           xs ys
  | _ -> a = b

let sample_json =
  Json.Obj
    [
      ("int", Json.Int (-42));
      ("float", Json.Float 3.25);
      ("string", Json.Str "quote \" slash \\ newline \n tab \t");
      ("null", Json.Null);
      ("flags", Json.List [ Json.Bool true; Json.Bool false ]);
      ("nested", Json.Obj [ ("empty_list", Json.List []); ("empty_obj", Json.Obj []) ]);
    ]

let test_json_roundtrip () =
  List.iter
    (fun pretty ->
      match Json.of_string (Json.to_string ~pretty sample_json) with
      | Ok parsed ->
          check_bool
            (Printf.sprintf "roundtrip pretty:%b" pretty)
            true
            (json_equal sample_json parsed)
      | Error e -> Alcotest.failf "parse failed: %s" e)
    [ false; true ]

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed %S" s)
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "{\"a\":1} x" ]

let test_json_member_access () =
  match Json.of_string {|{"a": {"b": [1, 2.5, "x"]}, "n": null}|} with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok j -> (
      check_bool "missing member" true (Json.member "zz" j = None);
      match Json.member "a" j with
      | Some inner -> (
          match Option.bind (Json.member "b" inner) Json.as_list with
          | Some [ one; _; three ] ->
              check_bool "int elem" true (Json.as_int one = Some 1);
              check_bool "str elem" true (Json.as_string three = Some "x")
          | _ -> Alcotest.fail "bad list shape")
      | None -> Alcotest.fail "missing a")

let test_summary_to_json () =
  let s = Summary.of_array [| 1.0; 2.0; 3.0; 4.0 |] in
  let j = Summary.to_json s in
  check_bool "count" true
    (Option.bind (Json.member "count" j) Json.as_int = Some 4);
  check_bool "mean" true
    (match Option.bind (Json.member "mean" j) Json.as_float with
    | Some m -> Float.abs (m -. 2.5) < 1e-9
    | None -> false);
  check_bool "p50 present" true (Json.member "p50" j <> None)

let test_table_to_json () =
  let t = Table.create ~title:"T" ~headers:[ "k"; "v" ] in
  Table.add_row t [ "a"; "1" ];
  Table.add_row t [ "b" ];
  match Table.to_json t with
  | Json.Obj _ as j -> (
      match Option.bind (Json.member "rows" j) Json.as_list with
      | Some [ r1; r2 ] ->
          check_bool "row value" true
            (Option.bind (Json.member "v" r1) Json.as_string = Some "1");
          (* short rows pad with null *)
          check_bool "padded" true (Json.member "v" r2 = Some Json.Null)
      | _ -> Alcotest.fail "bad rows")
  | _ -> Alcotest.fail "not an object"

let suite =
  [
    Alcotest.test_case "chart renders" `Quick test_chart_renders;
    Alcotest.test_case "chart rejects single point" `Quick
      test_chart_rejects_single_point;
    Alcotest.test_case "chart axis rounding" `Quick test_chart_axis_rounding;
    Alcotest.test_case "table alignment" `Quick test_table_alignment;
    Alcotest.test_case "table row order" `Quick test_table_rows_in_order;
    Alcotest.test_case "table cells" `Quick test_table_cells;
    Alcotest.test_case "summary basics" `Quick test_summary_basic;
    Alcotest.test_case "summary percentiles" `Quick test_summary_percentiles;
    Alcotest.test_case "summary without sample" `Quick test_summary_no_sample;
    prop_summary_mean_matches_naive;
    Alcotest.test_case "percentile cache invalidation" `Quick
      test_percentile_cache_invalidation;
    prop_percentile_matches_naive;
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json parse errors" `Quick test_json_parse_errors;
    Alcotest.test_case "json member access" `Quick test_json_member_access;
    Alcotest.test_case "summary to_json" `Quick test_summary_to_json;
    Alcotest.test_case "table to_json" `Quick test_table_to_json;
  ]
