(* EunoDura: the committed-op log, the recovery checker, and the full
   crash-restart-replay pipeline — clean on the fixed system, flagged on
   each seeded recovery mutant, deterministic per (plan, seed). *)

open Util
module Oplog = Euno_dura.Oplog
module Checker = Euno_dura.Checker
module Dura_run = Euno_harness.Dura_run
module Kv = Euno_harness.Kv
module Report = Euno_harness.Report
module Json = Euno_stats.Json

(* ---------- the committed-op log ---------- *)

let put k v = Oplog.Put { key = k; value = v }

let test_oplog_group_flush () =
  let log = Oplog.create ~group_size:3 ~fsync_horizon:max_int () in
  check_bool "first append buffers" true
    (Oplog.append log ~tid:0 ~clock:10 (put 1 11) = `Buffered);
  check_bool "second append buffers" true
    (Oplog.append log ~tid:1 ~clock:20 (put 2 22) = `Buffered);
  check_bool "group boundary flushes the batch" true
    (Oplog.append log ~tid:0 ~clock:30 (put 3 33) = `Flushed 3);
  check_int "all three durable" 3 (Oplog.flushed_lsn log);
  check_bool "fourth append starts a new group" true
    (Oplog.append log ~tid:1 ~clock:40 (Oplog.Delete { key = 1 }) = `Buffered);
  check_int "one entry volatile" 1 (Oplog.unflushed log);
  check_int "forced flush drains the remainder" 1 (Oplog.flush log);
  check_int "nothing left volatile" 0 (Oplog.unflushed log);
  check_int "idle flush is a no-op" 0 (Oplog.flush log);
  check_int "two flushes happened" 2 (Oplog.flush_count log)

let test_oplog_fsync_horizon () =
  let log = Oplog.create ~group_size:1_000 ~fsync_horizon:100 () in
  check_bool "young entry buffers" true
    (Oplog.append log ~tid:0 ~clock:0 (put 1 11) = `Buffered);
  check_bool "still inside the horizon" true
    (Oplog.append log ~tid:0 ~clock:50 (put 2 22) = `Buffered);
  (* The OLDEST unflushed entry has now been volatile for the full
     horizon: the group criterion is nowhere near met, the age criterion
     forces the flush. *)
  check_bool "aged-out entry forces the flush" true
    (Oplog.append log ~tid:0 ~clock:100 (put 3 33) = `Flushed 3);
  check_int "horizon flush covers the suffix" 3 (Oplog.flushed_lsn log)

let test_oplog_crash_truncates () =
  let log = Oplog.create ~group_size:4 ~fsync_horizon:max_int () in
  for i = 1 to 6 do
    ignore (Oplog.append log ~tid:0 ~clock:i (put i (i * 10)))
  done;
  check_int "six acknowledged" 6 (Oplog.length log);
  check_int "four durable" 4 (Oplog.flushed_lsn log);
  let lost = Oplog.crash log in
  check_int "volatile suffix lost" 2 (List.length lost);
  check_bool "lost suffix ascending, past the durable prefix" true
    (List.map (fun e -> e.Oplog.lsn) lost = [ 5; 6 ]);
  check_int "log truncated to the durable prefix" 4 (Oplog.length log);
  check_bool "surviving entries ascending" true
    (List.map (fun e -> e.Oplog.lsn) (Oplog.entries log) = [ 1; 2; 3; 4 ]);
  check_int "nothing volatile after the crash" 0 (Oplog.unflushed log)

(* ---------- the recovery checker ---------- *)

let tbl pairs =
  let h = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace h k v) pairs;
  h

let ok_stats =
  { Checker.stuck_ops = 0; recovery_cycles = 10; work_bound = 1_000 }

let test_checker_kinds () =
  (* Ack history: key 3 was acked at 30 then re-acked at 31; key 4 was
     acked at 40 and then its delete was acked (so it is absent from the
     committed prefix). *)
  let acked = [ (1, 10); (2, 20); (3, 30); (3, 31); (4, 40) ] in
  let ever_acked k v = List.mem (k, v) acked in
  let expected = tbl [ (1, 10); (2, 20); (3, 31) ] in
  let run recovered = Checker.check ~expected ~recovered ~ever_acked ~stats:ok_stats in
  check_bool "exact recovery is clean" true
    (Checker.clean (run [ (1, 10); (2, 20); (3, 31) ]));
  let missing = run [ (1, 10); (2, 20) ] in
  check_bool "missing acknowledged value is a lost ack" true
    (Checker.has_kind Checker.Lost_ack missing);
  let stale = run [ (1, 10); (2, 20); (3, 30) ] in
  check_bool "stale (superseded) ack is a lost ack, not a phantom" true
    (Checker.has_kind Checker.Lost_ack stale
    && not (Checker.has_kind Checker.Phantom stale));
  let resurrected = run [ (1, 10); (2, 20); (3, 31); (4, 40) ] in
  check_bool "lost acknowledged delete is a lost ack" true
    (Checker.has_kind Checker.Lost_ack resurrected
    && not (Checker.has_kind Checker.Phantom resurrected));
  check_bool "never-acked extra key is a phantom" true
    (Checker.has_kind Checker.Phantom (run [ (1, 10); (2, 20); (3, 31); (9, 99) ]));
  check_bool "never-acked value on an expected key is a phantom" true
    (Checker.has_kind Checker.Phantom (run [ (1, 11); (2, 20); (3, 31) ]));
  (* the aggregate checks ride on stats, not on the image *)
  let image = [ (1, 10); (2, 20); (3, 31) ] in
  check_bool "wedged recovery ops are ineffective recovery" true
    (Checker.has_kind Checker.Ineffective_recovery
       (Checker.check ~expected ~recovered:image ~ever_acked
          ~stats:{ ok_stats with Checker.stuck_ops = 2 }));
  check_bool "busting the linear bound is unbounded recovery" true
    (Checker.has_kind Checker.Unbounded_recovery
       (Checker.check ~expected ~recovered:image ~ever_acked
          ~stats:{ ok_stats with Checker.recovery_cycles = 2_000 }));
  check_bool "bound is inclusive" true
    (Checker.clean
       (Checker.check ~expected ~recovered:image ~ever_acked
          ~stats:{ ok_stats with Checker.recovery_cycles = 1_000 }))

let test_checker_deterministic_order () =
  let expected = tbl [ (5, 50); (1, 10); (3, 30) ] in
  let ever_acked _ _ = false in
  let run () =
    Checker.check ~expected ~recovered:[ (9, 99); (7, 77) ] ~ever_acked
      ~stats:{ ok_stats with Checker.stuck_ops = 1 }
  in
  let fs = run () in
  check_bool "two calls, identical findings" true (fs = run ());
  (* expected-key sweep first (ascending), then extra keys (ascending),
     then the aggregate finding *)
  check_bool "ascending deterministic order" true
    (List.map (fun f -> f.Checker.f_kind) fs
    = [ Checker.Lost_ack; Checker.Lost_ack; Checker.Lost_ack;
        Checker.Phantom; Checker.Phantom; Checker.Ineffective_recovery ])

(* ---------- the full pipeline ---------- *)

let tiny_config =
  {
    Dura_run.quick_config with
    Dura_run.threads = 4;
    ops_per_thread = 200;
    key_space = 512;
    checkpoints = 2;
  }

let test_pipeline_graceful_run_exact () =
  (* No crash: the log drains at the end, nothing is lost, and recovery
     from snapshot + full replay must reproduce the tree exactly. *)
  let c = Dura_run.run_cell Kv.Htm_bptree tiny_config in
  check_bool "no crash fired" false c.Dura_run.d_crashed;
  check_int "nothing lost" 0 c.Dura_run.d_lost;
  check_int "nothing re-run" 0 c.Dura_run.d_rerun;
  check_bool "recovery exact" true (c.Dura_run.d_findings = [])

let test_pipeline_crash_recovers_deterministically () =
  let run () = Dura_run.run_campaign Kv.Htm_bptree tiny_config in
  let c1 = run () in
  check_bool "the crash fired" true c1.Dura_run.d_crashed;
  check_bool "crash recovery is clean on the fixed system" true
    (c1.Dura_run.d_findings = []);
  check_bool "recovery inside its linear bound" true
    (c1.Dura_run.d_recovery_cycles <= c1.Dura_run.d_work_bound);
  check_bool "bounded loss: at most group_size-1 volatile entries" true
    (c1.Dura_run.d_lost < tiny_config.Dura_run.group_size);
  check_bool "lost suffix re-run in full" true
    (c1.Dura_run.d_rerun = c1.Dura_run.d_lost);
  (* same plan, same seed: the whole cell — crash point, snapshot lsn,
     lost suffix, recovered image — is reproducible *)
  let c2 = run () in
  check_bool "crash-restart-replay deterministic" true (c1 = c2)

let test_pipeline_in_place_restore () =
  (* In-place reconcile recovers over the crashed tree itself (abandoned
     locks swept first) instead of bulk-loading a fresh one. *)
  let c =
    Dura_run.run_campaign Kv.Htm_bptree
      { tiny_config with Dura_run.restore_mode = Dura_run.In_place }
  in
  check_bool "the crash fired" true c.Dura_run.d_crashed;
  check_int "no wedged recovery ops" 0 c.Dura_run.d_stuck_ops;
  check_bool "in-place recovery clean" true (c.Dura_run.d_findings = [])

let test_recovery_record_schema () =
  let c = Dura_run.run_campaign Kv.Htm_bptree tiny_config in
  let json = Dura_run.cell_to_json ~experiment:"crash" c in
  (match Report.validate_record json with
  | Ok () -> ()
  | Error e -> Alcotest.failf "recovery record invalid: %s" e);
  let stripped =
    match json with
    | Json.Obj fields ->
        Json.Obj (List.filter (fun (k, _) -> k <> "snapshot_lsn") fields)
    | j -> j
  in
  match Report.validate_record stripped with
  | Error _ -> ()
  | Ok () ->
      Alcotest.fail "validator accepted a recovery record without snapshot_lsn"

(* ---------- mutation validation ---------- *)

(* The three seeded recovery bugs must each be caught with the expected
   finding kind, and the unmutated system must be clean on the very cell
   that caught them — the checker detects real divergence, not noise. *)
let test_mutants_caught_and_clean () =
  let outs = Dura_run.run_mutants ~seeds:40 ~base_seed:42 () in
  check_int "all three mutants exercised" 3 (List.length outs);
  List.iter
    (fun o ->
      let name = Dura_run.mutant_name o.Dura_run.m_mutant in
      check_bool (name ^ " caught with the expected kind") true
        o.Dura_run.m_caught;
      check_bool (name ^ " clean on the fixed system") true
        o.Dura_run.m_clean_on_fixed;
      check_bool (name ^ " reports the catching seed") true
        (o.Dura_run.m_caught_seed <> None))
    outs

let suite =
  [
    Alcotest.test_case "oplog: group boundary flushes" `Quick
      test_oplog_group_flush;
    Alcotest.test_case "oplog: fsync horizon bounds volatility" `Quick
      test_oplog_fsync_horizon;
    Alcotest.test_case "oplog: crash keeps the durable prefix" `Quick
      test_oplog_crash_truncates;
    Alcotest.test_case "checker: classifies every finding kind" `Quick
      test_checker_kinds;
    Alcotest.test_case "checker: deterministic finding order" `Quick
      test_checker_deterministic_order;
    Alcotest.test_case "pipeline: graceful run recovers exactly" `Quick
      test_pipeline_graceful_run_exact;
    Alcotest.test_case "pipeline: crash recovery clean and deterministic"
      `Quick test_pipeline_crash_recovers_deterministically;
    Alcotest.test_case "pipeline: in-place restore over crashed state" `Quick
      test_pipeline_in_place_restore;
    Alcotest.test_case "recovery record validates" `Quick
      test_recovery_record_schema;
    Alcotest.test_case "recovery mutants caught, fixed system clean" `Slow
      test_mutants_caught_and_clean;
  ]
